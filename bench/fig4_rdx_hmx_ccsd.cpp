// Figure 4 reproduction: RHF CCSD scaling for RDX (C3H6N6O6) and HMX
// (C4H8N8O8) on the ORNL Cray XT5 (jaguar), 1000-8000 processors.
//
// Paper plots wall time (minutes) and efficiency relative to the
// 1000-processor run for both molecules, and notes that "the larger HMX
// molecule displays much better strong scaling" — in our model because
// HMX has ~3x more pardo tasks to spread over the same processors.
#include <cstdio>
#include <map>
#include <iostream>

#include "chem/system.hpp"
#include "common/stats.hpp"
#include "sim/des.hpp"
#include "sim/machine.hpp"
#include "sim/report.hpp"
#include "sim/workload.hpp"

int main() {
  using namespace sia;
  std::printf("=== Fig. 4: RDX and HMX RHF CCSD on Cray XT5 "
              "(simulated) ===\n");

  const sim::MachineModel machine = sim::cray_xt5();
  const sim::SimOptions options;
  const std::vector<long> procs = {1000, 2000, 4000, 6000, 8000};
  constexpr int kIterations = 16;

  TablePrinter table(
      std::cout,
      {"molecule", "procs", "time[min]", "efficiency%"},
      {9, 6, 10, 12});
  table.print_header();

  std::map<std::string, std::vector<double>> eff;
  for (const chem::MolecularSystem& system : {chem::rdx(), chem::hmx()}) {
    const sim::WorkloadModel workload =
        sim::ccsd_energy(system, 24, kIterations);
    std::vector<double> times;
    for (const long p : procs) {
      times.push_back(
          sim::simulate_workload(machine, workload, p, options).seconds);
    }
    const std::vector<double> efficiency =
        sim::scaling_efficiency(procs, times, 0);
    eff[system.name] = efficiency;
    for (std::size_t k = 0; k < procs.size(); ++k) {
      table.print_row({system.name, std::to_string(procs[k]),
                       sim::fmt(sim::to_minutes(times[k]), 1),
                       sim::fmt(efficiency[k], 1)});
    }
    table.print_rule();
  }

  const bool hmx_scales_better = eff["hmx"].back() > eff["rdx"].back();
  std::printf("shape check: HMX efficiency at 8000 procs (%.1f%%) exceeds "
              "RDX (%.1f%%): %s  — the paper's headline observation\n",
              eff["hmx"].back(), eff["rdx"].back(),
              hmx_scales_better ? "yes" : "NO");
  return 0;
}
