// Figure 3 reproduction: RHF CCSD for the protonated water cluster
// (H2O)21H+ on a Cray XT4 (kraken, up to 4096 cores) and a Cray XT5
// (pingo, up to 2048 cores). Paper plots time per CCSD iteration
// (minutes) against processor count for both machines; the XT5 (faster
// cores, faster network) sits below the XT4 at equal counts.
#include <cstdio>
#include <iostream>

#include "chem/system.hpp"
#include "common/stats.hpp"
#include "sim/des.hpp"
#include "sim/machine.hpp"
#include "sim/report.hpp"
#include "sim/workload.hpp"

int main() {
  using namespace sia;
  std::printf("=== Fig. 3: (H2O)21H+ RHF CCSD, Cray XT4 vs XT5 "
              "(simulated) ===\n");

  const sim::WorkloadModel iteration =
      sim::ccsd_iteration(chem::water_cluster(), 24);
  const sim::SimOptions options;

  struct Series {
    sim::MachineModel machine;
    std::vector<long> procs;
  };
  const std::vector<Series> series = {
      {sim::cray_xt4(), {512, 1024, 2048, 4096}},
      {sim::cray_xt5(), {512, 1024, 2048}},
  };

  TablePrinter table(std::cout, {"machine", "procs", "min/iter"},
                     {10, 7, 10});
  table.print_header();
  std::vector<double> xt4_times, xt5_times;
  for (const Series& s : series) {
    for (const long p : s.procs) {
      const double t =
          sim::simulate_workload(s.machine, iteration, p, options).seconds;
      (s.machine.name == "cray-xt4" ? xt4_times : xt5_times).push_back(t);
      table.print_row({s.machine.name, std::to_string(p),
                       sim::fmt(sim::to_minutes(t), 2)});
    }
  }
  // Shape claims of the figure.
  const bool xt5_faster = xt5_times[0] < xt4_times[0];
  bool both_scale = true;
  for (std::size_t k = 1; k < xt4_times.size(); ++k) {
    both_scale = both_scale && xt4_times[k] < xt4_times[k - 1];
  }
  for (std::size_t k = 1; k < xt5_times.size(); ++k) {
    both_scale = both_scale && xt5_times[k] < xt5_times[k - 1];
  }
  std::printf("\nshape check: XT5 faster than XT4 at 512 procs: %s; "
              "both curves decrease through the sweep: %s\n",
              xt5_faster ? "yes" : "NO", both_scale ? "yes" : "NO");
  return 0;
}
