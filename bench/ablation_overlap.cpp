// Ablation: communication/computation overlap (the SIA's central
// performance mechanism, paper §III and §V-A).
//
// Two views:
//   1. the cluster-scale simulator with the overlap pipeline on vs off
//      (off = blocking gets, the style GA programs get by default);
//   2. the real threaded runtime, where prefetch depth controls how much
//      of the fetch latency is hidden; the result is identical either
//      way, only the wait profile moves.
#include <cstdio>
#include <iostream>

#include "chem/integrals.hpp"
#include "chem/programs.hpp"
#include "chem/system.hpp"
#include "common/stats.hpp"
#include "common/timer.hpp"
#include "sim/des.hpp"
#include "sim/machine.hpp"
#include "sim/report.hpp"
#include "sim/workload.hpp"
#include "sip/launch.hpp"

int main() {
  using namespace sia;
  std::printf("=== Ablation: overlap of communication and computation "
              "===\n");

  const sim::MachineModel machine = sim::cray_xt5();
  // A small segment makes each inner step's transfer comparable to its
  // compute, which is where overlap pays (larger segments hide transfers
  // even without prefetch; see ablation_segment_size).
  const sim::WorkloadModel workload =
      sim::ccsd_iteration(chem::rdx(), 6);

  TablePrinter table(std::cout,
                     {"procs", "overlap[s]", "blocking[s]", "speedup"},
                     {6, 11, 12, 8});
  table.print_header();
  for (const long p : {512, 1024, 2048, 4096}) {
    sim::SimOptions on;
    sim::SimOptions off;
    off.overlap = false;
    const double t_on =
        sim::simulate_workload(machine, workload, p, on).seconds;
    const double t_off =
        sim::simulate_workload(machine, workload, p, off).seconds;
    table.print_row({std::to_string(p), sim::fmt(t_on, 1),
                     sim::fmt(t_off, 1), sim::fmt(t_off / t_on, 2)});
  }

  std::printf("\n--- real-runtime check (single host core: workers are\n"
              "    time-sliced, so absolute wait%% is dominated by the\n"
              "    interleaving; the invariant is the unchanged result) ---\n");
  chem::register_chem_superinstructions();
  for (const int depth : {0, 2, 4}) {
    SipConfig config;
    config.workers = 4;
    config.io_servers = 0;
    config.default_segment = 4;
    config.prefetch_depth = depth;
    config.constants = {{"norb", 12}, {"nocc", 4}, {"maxiter", 2}};
    sip::Sip sip(config);
    const sip::RunResult result =
        sip.run_source(chem::ccd_energy_source());
    std::printf("prefetch depth %d: wait %.2f%% of work time, "
                "energy %.10f\n",
                depth, result.profile.wait_percent(),
                result.scalar("energy"));
  }

  std::printf("\n--- comm-bound workload: zero-copy + put coalescing +\n"
              "    batched gets on vs off (comm_storm, wall clock) ---\n");
  for (const bool overlap : {true, false}) {
    SipConfig config;
    config.workers = 4;
    config.io_servers = 0;
    config.default_segment = 4;
    config.constants = {{"norb", 96}};
    config.coalesce_puts = overlap;
    config.batch_gets = overlap;
    double best = 0.0;
    sip::RunResult result;
    for (int rep = 0; rep < 3; ++rep) {
      sip::Sip sip(config);
      const double t0 = wall_seconds();
      result = sip.run_source(chem::comm_storm_source());
      const double dt = wall_seconds() - t0;
      if (rep == 0 || dt < best) best = dt;
    }
    std::printf("overlap engine %-3s: %.3f s, %lld messages, %lld payload "
                "doubles (%lld zero-copy), cnorm2 %.6e\n",
                overlap ? "on" : "off", best,
                static_cast<long long>(result.traffic.messages_sent),
                static_cast<long long>(result.traffic.payload_doubles_sent),
                static_cast<long long>(result.traffic.zero_copy_doubles),
                result.scalar("cnorm2"));
  }

  std::printf("\n--- disk-bound workload: threaded disk service + request\n"
              "    look-ahead + batched write-behind on vs off (io_storm,\n"
              "    cold I/O, wall clock) ---\n");
  for (const bool pipelined : {true, false}) {
    SipConfig config;
    config.workers = 4;
    config.io_servers = 1;
    config.default_segment = 96;
    config.server_cache_bytes = 2u << 20;
    config.server_cold_io = true;
    config.server_disk_threads = pipelined ? 4 : 0;
    config.prefetch_depth = pipelined ? 4 : 0;
    config.constants = {{"norb", 768}, {"nsweeps", 3}, {"nshared", 768}};
    double best = 0.0;
    sip::RunResult result;
    for (int rep = 0; rep < 3; ++rep) {
      sip::Sip sip(config);
      const double t0 = wall_seconds();
      result = sip.run_source(chem::io_storm_source());
      const double dt = wall_seconds() - t0;
      if (rep == 0 || dt < best) best = dt;
    }
    const auto& s = result.profile.served;
    std::printf("disk pipeline %-3s: %.3f s, %lld disk reads "
                "(%lld coalesced), %lld look-ahead requests, "
                "%lld write batches, snorm2 %.1f\n",
                pipelined ? "on" : "off", best,
                static_cast<long long>(s.server_disk_reads),
                static_cast<long long>(s.reads_coalesced),
                static_cast<long long>(s.server_lookahead_requests),
                static_cast<long long>(s.write_batches),
                result.scalar("snorm2"));
  }
  return 0;
}
