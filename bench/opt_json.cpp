// Machine-readable mid-end benchmark: runs two workloads at -O0 / -O1 /
// -O2, serial and with the 2-thread dataflow window, and writes wall
// time, fabric traffic, barrier executions, and executor counters as
// JSON so each PR can diff the optimizer's effect against the committed
// baseline (`cmake --build build --target bench_json`).
//
//   * comm_storm (shipped): the window-safety proof lets the threaded
//     engine retire the sweep pardo without per-iteration drains, so
//     -O1/-O2 show drains and drain_wait collapsing versus -O0.
//   * opt_defensive (below): an application-style sweep written the way
//     production SIAL often is — doubled "just in case" barriers, a
//     wrong-class server_barrier, and a loop-invariant get re-issued
//     every do iteration. Barrier elimination and prefetch hoisting
//     cut barrier executions and get issues at -O1/-O2.
//
// Both workloads run with workers=1: the pardo chunk schedule — and so
// the order of every put-accumulate and worker-partial reduction — is
// then deterministic, and the bench hard-fails if any level or engine
// perturbs the checksum bit-for-bit. (With multiple workers the dynamic
// chunk assignment is timing-dependent and the low bits of the
// collective sums legitimately wander, even at -O0.)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "chem/integrals.hpp"
#include "chem/programs.hpp"
#include "common/timer.hpp"
#include "sip/launch.hpp"

namespace {

using namespace sia;

const char* opt_defensive_source() {
  return R"SIAL(
sial opt_defensive
aoindex a = 1, norb
aoindex b = 1, norb
index it = 1, niter

distributed A(a,b)
temp t(a,b)
temp w(a,b)
scalar s
scalar fnorm2

pardo a, b
  execute random_block t(a,b) 5
  put A(a,b) = t(a,b)
endpardo a, b
sip_barrier
sip_barrier

s = 0.0
pardo a, b
  do it
    get A(a,b)
    w(a,b) = A(a,b)
    s += w(a,b) * w(a,b)
  enddo it
endpardo a, b
sip_barrier
sip_barrier
server_barrier
fnorm2 = 0.0
collective fnorm2 += s
endsial
)SIAL";
}

struct Sample {
  double seconds = 0.0;
  double checksum = 0.0;
  std::int64_t messages = 0;
  std::int64_t payload_doubles = 0;
  std::int64_t barriers = 0;
  std::int64_t get_executions = 0;
  std::int64_t prefetches = 0;
  sip::ProfileReport::Executor executor;
};

std::int64_t count_opcodes(const sip::ProfileReport& profile,
                           std::initializer_list<const char*> names) {
  std::int64_t total = 0;
  for (const auto& line : profile.lines) {
    for (const char* name : names) {
      if (line.opcode == name) total += line.count;
    }
  }
  return total;
}

Sample run_once(const std::string& source, const char* checksum_name,
                SipConfig config) {
  sip::Sip sip(std::move(config));
  const double t0 = wall_seconds();
  const sip::RunResult result = sip.run_source(source);
  Sample sample;
  sample.seconds = wall_seconds() - t0;
  sample.checksum = result.scalar(checksum_name);
  sample.messages = result.traffic.messages_sent;
  sample.payload_doubles = result.traffic.payload_doubles_sent;
  sample.barriers =
      count_opcodes(result.profile, {"sip_barrier", "server_barrier"});
  sample.get_executions =
      count_opcodes(result.profile, {"get", "request"});
  sample.prefetches = count_opcodes(result.profile, {"prefetch"});
  sample.executor = result.profile.executor;
  return sample;
}

// Median of the collected samples by wall time (counters come from the
// median run): stable under host-load drift, unlike a single run.
Sample median_of(std::vector<Sample> samples) {
  std::sort(samples.begin(), samples.end(),
            [](const Sample& a, const Sample& b) {
              return a.seconds < b.seconds;
            });
  return samples[samples.size() / 2];
}

void emit(std::FILE* out, const char* name, int level, int worker_threads,
          const Sample& sample, bool last) {
  const auto& x = sample.executor;
  std::fprintf(
      out,
      "    {\n"
      "      \"name\": \"%s\",\n"
      "      \"opt_level\": %d,\n"
      "      \"worker_threads\": %d,\n"
      "      \"wall_seconds\": %.6f,\n"
      "      \"checksum\": %.17g,\n"
      "      \"messages_sent\": %lld,\n"
      "      \"payload_doubles\": %lld,\n"
      "      \"barriers_executed\": %lld,\n"
      "      \"get_executions\": %lld,\n"
      "      \"prefetches\": %lld,\n"
      "      \"hazard_stalls\": %lld,\n"
      "      \"raw_deps\": %lld,\n"
      "      \"war_deps\": %lld,\n"
      "      \"waw_deps\": %lld,\n"
      "      \"drains\": %lld,\n"
      "      \"drain_wait_ms\": %.3f\n"
      "    }%s\n",
      name, level, worker_threads, sample.seconds, sample.checksum,
      static_cast<long long>(sample.messages),
      static_cast<long long>(sample.payload_doubles),
      static_cast<long long>(sample.barriers),
      static_cast<long long>(sample.get_executions),
      static_cast<long long>(sample.prefetches),
      static_cast<long long>(x.hazard_stalls),
      static_cast<long long>(x.raw_deps),
      static_cast<long long>(x.war_deps),
      static_cast<long long>(x.waw_deps),
      static_cast<long long>(x.drains), x.drain_wait_seconds * 1e3,
      last ? "" : ",");
}

struct Workload {
  const char* name;
  std::string source;
  const char* checksum;
  SipConfig config;  // opt_level / worker_threads overwritten per cell
};

}  // namespace

int main(int argc, char** argv) {
  chem::register_chem_superinstructions();
  const std::string path = argc > 1 ? argv[1] : "BENCH_opt.json";
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }

  SipConfig storm;
  storm.workers = 1;  // single writer => deterministic put-accumulates
  storm.io_servers = 0;
  storm.default_segment = 128;
  storm.constants = {{"norb", 768}};

  SipConfig defensive;
  defensive.workers = 1;
  defensive.io_servers = 1;  // server_barrier needs a server to talk to
  defensive.default_segment = 64;
  defensive.constants = {{"norb", 768}, {"niter", 16}};

  Workload workloads[] = {
      {"comm_storm_n768_s128", chem::comm_storm_source(), "cnorm2", storm},
      {"opt_defensive_n768_s64", opt_defensive_source(), "fnorm2",
       defensive},
  };

  constexpr int kReps = 5;
  const int levels[] = {0, 1, 2};
  const int threads[] = {0, 2};

  std::fprintf(out, "{\n  \"benchmarks\": [\n");
  bool checksum_fail = false;
  for (std::size_t w = 0; w < 2; ++w) {
    Workload& load = workloads[w];
    // Alternate cells rep-by-rep so slow host-load drift hits all sides
    // of every comparison equally.
    std::vector<Sample> cells[3][2];
    for (int rep = 0; rep < kReps; ++rep) {
      for (int li = 0; li < 3; ++li) {
        for (int ti = 0; ti < 2; ++ti) {
          SipConfig config = load.config;
          config.opt_level = levels[li];
          config.worker_threads = threads[ti];
          cells[li][ti].push_back(
              run_once(load.source, load.checksum, std::move(config)));
        }
      }
    }
    Sample medians[3][2];
    for (int li = 0; li < 3; ++li) {
      for (int ti = 0; ti < 2; ++ti) {
        medians[li][ti] = median_of(std::move(cells[li][ti]));
        const bool last = w == 1 && li == 2 && ti == 1;
        emit(out, load.name, levels[li], threads[ti], medians[li][ti],
             last);
        if (medians[li][ti].checksum != medians[0][0].checksum) {
          std::fprintf(stderr,
                       "FAIL: %s checksum at -O%d threads=%d differs "
                       "from -O0 serial (%.17g vs %.17g)\n",
                       load.name, levels[li], threads[ti],
                       medians[li][ti].checksum, medians[0][0].checksum);
          checksum_fail = true;
        }
      }
    }
    const Sample& o0s = medians[0][0];
    const Sample& o2s = medians[2][0];
    const Sample& o0t = medians[0][1];
    const Sample& o2t = medians[2][1];
    std::printf(
        "%s: -O0 %.3f s / -O2 %.3f s serial, %.3f s / %.3f s threaded; "
        "messages %lld -> %lld, barriers %lld -> %lld, gets %lld -> "
        "%lld (+%lld prefetch), drains %lld -> %lld, "
        "drain wait %.1f -> %.1f ms\n",
        load.name, o0s.seconds, o2s.seconds, o0t.seconds, o2t.seconds,
        static_cast<long long>(o0s.messages),
        static_cast<long long>(o2s.messages),
        static_cast<long long>(o0s.barriers),
        static_cast<long long>(o2s.barriers),
        static_cast<long long>(o0s.get_executions),
        static_cast<long long>(o2s.get_executions),
        static_cast<long long>(o2s.prefetches),
        static_cast<long long>(o0t.executor.drains),
        static_cast<long long>(o2t.executor.drains),
        o0t.executor.drain_wait_seconds * 1e3,
        o2t.executor.drain_wait_seconds * 1e3);
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);

  if (checksum_fail) return 1;
  std::printf("wrote %s (all checksums bit-identical across levels)\n",
              path.c_str());
  return 0;
}
