// Figure 2 reproduction: RHF CCSD energy for Luciferin (C11H8O3S2N2) on a
// Sun Opteron/InfiniBand cluster, 32-256 processors.
//
// Paper reports three series: average elapsed time per CCSD iteration
// (minutes), scaling efficiency relative to 32 processors, and the
// percentage of time spent waiting for communication (8.4-13.4%).
//
// The scaling series comes from the discrete-event simulator (no cluster
// here — see DESIGN.md §4); a real threaded SIP run of the CCD-like
// program cross-checks that the real runtime produces the same profiling
// observables (per-pardo wait times). Its absolute wait percentage is an
// artifact of time-slicing all ranks onto this host's core count, not a
// network measurement.
#include <cstdio>
#include <iostream>

#include "chem/integrals.hpp"
#include "chem/programs.hpp"
#include "chem/system.hpp"
#include "common/stats.hpp"
#include "sim/des.hpp"
#include "sim/machine.hpp"
#include "sim/report.hpp"
#include "sim/workload.hpp"
#include "sip/launch.hpp"

int main() {
  using namespace sia;

  std::printf("=== Fig. 2: Luciferin RHF CCSD on Sun Opteron/IB "
              "(simulated cluster) ===\n");
  const sim::MachineModel machine = sim::sun_opteron_ib();
  const sim::WorkloadModel iteration =
      sim::ccsd_iteration(chem::luciferin(), 24);
  const sim::SimOptions options;

  const std::vector<long> procs = {32, 64, 128, 256};
  std::vector<double> times;
  std::vector<double> waits;
  for (const long p : procs) {
    const sim::WorkloadResult result =
        sim::simulate_workload(machine, iteration, p, options);
    times.push_back(result.seconds);
    waits.push_back(result.wait_percent);
  }
  const std::vector<double> efficiency =
      sim::scaling_efficiency(procs, times, 0);

  TablePrinter table(std::cout,
                     {"procs", "min/iter", "efficiency%", "wait%"},
                     {6, 10, 12, 7});
  table.print_header();
  for (std::size_t k = 0; k < procs.size(); ++k) {
    table.print_row({std::to_string(procs[k]),
                     sim::fmt(sim::to_minutes(times[k]), 2),
                     sim::fmt(efficiency[k], 1), sim::fmt(waits[k], 1)});
  }
  std::printf("paper shape: ~tens of minutes/iteration at 32 procs, "
              "efficiency decaying gently, wait around 8-13%%\n\n");

  // Cross-check with the real runtime: a small CCD-like run on threads.
  std::printf("--- real SIP cross-check (threaded, interpreter scale) ---\n");
  chem::register_chem_superinstructions();
  SipConfig config;
  config.workers = 4;
  config.io_servers = 0;
  config.default_segment = 4;
  config.constants = {{"norb", 12}, {"nocc", 4}, {"maxiter", 2}};
  sip::Sip sip(config);
  const sip::RunResult run = sip.run_source(chem::ccd_energy_source());
  std::printf("real runtime profile: wait %.1f%% of work time on this "
              "host (energy %.10f matches the dense reference)\n",
              run.profile.wait_percent(), run.scalar("energy"));
  return 0;
}
