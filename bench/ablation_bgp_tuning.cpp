// Ablation: the BlueGene/P port anecdote (paper §VI-A).
//
// "A test case that ran in 1,500 seconds on a Cray XT5 with 512
// processors initially took more than 6 hours on the 512 cores of a
// BlueGene/P. ... It was necessary to modify the prefetching mechanism to
// avoid blocks arriving too early, causing eviction and refetching of
// blocks that would be reused. After tuning the SIP, the times are within
// a factor of four commensurate with the ratio of the processor speeds."
//
// Model: the untuned port's over-eager prefetch is a refetch multiplier
// (every block moved several times) plus untuned kernels; the tuned port
// removes both. The bench also demonstrates the *mechanism* on the real
// runtime: an aggressive prefetch depth against a tiny worker cache
// produces measurable evictions and re-issued gets.
#include <cstdio>
#include <iostream>

#include "chem/integrals.hpp"
#include "chem/programs.hpp"
#include "chem/system.hpp"
#include "common/stats.hpp"
#include "sim/des.hpp"
#include "sim/machine.hpp"
#include "sim/report.hpp"
#include "sim/workload.hpp"
#include "sip/launch.hpp"

int main() {
  using namespace sia;
  std::printf("=== Ablation: BlueGene/P port tuning (paper section "
              "VI-A) ===\n");

  const sim::WorkloadModel workload =
      sim::ccsd_iteration(chem::water_cluster(), 16);
  const long procs = 512;

  const double xt5 = sim::simulate_workload(sim::cray_xt5(), workload,
                                            procs, sim::SimOptions{})
                         .seconds;

  sim::SimOptions untuned;
  untuned.refetch_factor = 16.0;  // premature prefetch: blocks evicted and
                                  // refetched several times, synchronously
  untuned.overlap = false;        // ...which defeats the overlap pipeline
  untuned.compute_scale = 2.5;    // kernels not yet using the PPC450's
                                  // double-hummer FPU
  const double bgp_untuned =
      sim::simulate_workload(sim::bluegene_p(), workload, procs, untuned)
          .seconds;

  const double bgp_tuned = sim::simulate_workload(
                               sim::bluegene_p(), workload, procs,
                               sim::SimOptions{})
                               .seconds;

  TablePrinter table(std::cout, {"configuration", "time[s]", "vs XT5"},
                     {22, 10, 8});
  table.print_header();
  table.print_row({"Cray XT5 (512)", sim::fmt(xt5, 0), "1.0x"});
  table.print_row({"BG/P untuned (512)", sim::fmt(bgp_untuned, 0),
                   sim::fmt(bgp_untuned / xt5, 1) + "x"});
  table.print_row({"BG/P tuned (512)", sim::fmt(bgp_tuned, 0),
                   sim::fmt(bgp_tuned / xt5, 1) + "x"});

  std::printf("\nshape check: untuned >> tuned (paper: >14x vs ~4x): "
              "untuned/XT5 = %.1f, tuned/XT5 = %.1f -> %s\n",
              bgp_untuned / xt5, bgp_tuned / xt5,
              (bgp_untuned / xt5 > 8.0 && bgp_tuned / xt5 < 6.0) ? "yes"
                                                                 : "NO");

  // Mechanism demo on the real runtime: deep prefetch + tiny cache causes
  // evictions of not-yet-used blocks and re-issued gets.
  std::printf("\n--- real-runtime mechanism check (tiny cache) ---\n");
  chem::register_chem_superinstructions();
  for (const int depth : {0, 8}) {
    SipConfig config;
    config.workers = 2;
    config.io_servers = 0;
    config.default_segment = 2;
    config.prefetch_depth = depth;
    // Memory sized so the worker block cache holds only a fraction of the
    // amplitude blocks a ladder sweep touches.
    config.worker_memory_bytes = 4096 * sizeof(double) * 4;
    config.constants = {{"norb", 28}, {"nocc", 4}, {"maxiter", 1}};
    sip::Sip sip(config);
    const sip::RunResult result =
        sip.run_source(chem::ccd_energy_source());
    std::printf("prefetch depth %d: gets issued %lld, cache evictions "
                "%lld, energy %.10f\n",
                depth,
                static_cast<long long>(result.workers.gets_issued),
                static_cast<long long>(result.workers.cache_evictions),
                result.scalar("energy"));
  }
  std::printf("(the ladder sweep touches far more blocks than the cache "
              "holds: thousands of evictions and refetches of a few "
              "hundred distinct blocks -- the section VI-A thrash "
              "mechanism -- and no prefetch depth can fix it; only "
              "resizing the cache or segments can, while the result is "
              "unchanged)\n");
  return 0;
}
