// Machine-readable block-sparsity benchmark: a threshold sweep (0,
// 1e-12, 1e-8) over the banded sparse_fock contraction and the
// sparse_mp2 served workload, writing wall time plus the screening
// counters as JSON so each PR can diff screening behavior against the
// committed baseline (`cmake --build build --target bench_json`).
//
// Acceptance gates enforced here: at threshold 1e-8 sparse_fock must
// screen at least half of the sparse arrays' blocks and run at least 2x
// faster than the exact threshold-0 run, and at threshold 0 the sparse
// build must be bit-identical to the same program with the `sparse`
// attributes stripped (single worker, so the float accumulation order
// is reproducible between the two runs).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "chem/integrals.hpp"
#include "chem/programs.hpp"
#include "common/timer.hpp"
#include "sip/launch.hpp"

namespace {

using namespace sia;

struct Sample {
  double seconds = 0.0;
  double checksum = 0.0;
  std::int64_t blocks_screened = 0;  // fabric payload transfers elided
  std::int64_t bytes_elided = 0;
  sip::ProfileReport::Screening screening;
};

Sample run_once(const std::string& source, const char* result_scalar,
                SipConfig config) {
  sip::Sip sip(std::move(config));
  const double t0 = wall_seconds();
  const sip::RunResult result = sip.run_source(source);
  Sample sample;
  sample.seconds = wall_seconds() - t0;
  sample.checksum = result.scalar(result_scalar);
  sample.blocks_screened = result.traffic.blocks_screened;
  sample.bytes_elided = result.traffic.bytes_elided;
  sample.screening = result.profile.screening;
  return sample;
}

// Median by wall time (counters come from the median run); runs for the
// different thresholds are alternated so host-load drift hits every
// threshold equally.
Sample median_of(std::vector<Sample> samples) {
  std::sort(samples.begin(), samples.end(),
            [](const Sample& a, const Sample& b) {
              return a.seconds < b.seconds;
            });
  return samples[samples.size() / 2];
}

// Fraction of the sparse arrays' blocks that never materialized.
double screened_fraction(const Sample& sample) {
  std::int64_t screened = 0, total = 0;
  for (const auto& census : sample.screening.arrays) {
    screened += census.screened;
    total += census.total;
  }
  return total > 0 ? static_cast<double>(screened) /
                         static_cast<double>(total)
                   : 0.0;
}

void emit(std::FILE* out, const char* name, double threshold,
          const Sample& sample, bool last) {
  const auto& s = sample.screening;
  std::fprintf(
      out,
      "    {\n"
      "      \"name\": \"%s\",\n"
      "      \"sparse_threshold\": %g,\n"
      "      \"wall_seconds\": %.6f,\n"
      "      \"checksum\": %.17g,\n"
      "      \"blocks_screened\": %lld,\n"
      "      \"bytes_elided\": %lld,\n"
      "      \"kernels_screened\": %lld,\n"
      "      \"puts_screened\": %lld,\n"
      "      \"gets_screened\": %lld,\n"
      "      \"prepares_screened\": %lld,\n"
      "      \"requests_screened\": %lld,\n"
      "      \"zero_reads\": %lld,\n"
      "      \"evictions_screened\": %lld,\n"
      "      \"array_blocks_screened_pct\": %.1f\n"
      "    }%s\n",
      name, threshold, sample.seconds, sample.checksum,
      static_cast<long long>(sample.blocks_screened),
      static_cast<long long>(sample.bytes_elided),
      static_cast<long long>(s.kernels_screened),
      static_cast<long long>(s.puts_screened),
      static_cast<long long>(s.gets_screened),
      static_cast<long long>(s.prepares_screened),
      static_cast<long long>(s.requests_screened),
      static_cast<long long>(s.zero_reads),
      static_cast<long long>(s.evictions_screened),
      100.0 * screened_fraction(sample), last ? "" : ",");
}

// norb=768 elements at segment 32 is a 24x24 block grid; with decay
// rate 0.75 the band that survives 1e-8 is tridiagonal-plus-one, so
// ~80% of the operand blocks and ~95% of the block triples screen out.
SipConfig fock_config(double threshold, int workers = 4) {
  SipConfig config;
  config.workers = workers;
  config.io_servers = 1;
  config.default_segment = 32;
  config.sparse_threshold = threshold;
  config.constants = {{"norb", 768}};
  return config;
}

// nocc=32, 64 virtuals at segment 8: a 4x8x4x8 block grid of 4096-
// element amplitude blocks; decay rate 3.0 in |i - j| screens the
// (i,j)-off-band 37% of blocks at 1e-8 but not at 1e-12.
SipConfig mp2_config(double threshold, int workers = 4) {
  SipConfig config;
  config.workers = workers;
  config.io_servers = 1;
  config.default_segment = 8;
  config.sparse_threshold = threshold;
  config.constants = {{"norb", 96}, {"nocc", 32}};
  return config;
}

// The same program with the `sparse` attributes stripped: the dense
// reference for the threshold-0 bit-identity check.
std::string strip_sparse(std::string source) {
  for (std::size_t pos; (pos = source.find("sparse ")) != std::string::npos;)
    source.erase(pos, 7);
  return source;
}

}  // namespace

int main(int argc, char** argv) {
  chem::register_chem_superinstructions();
  const std::string path = argc > 1 ? argv[1] : "BENCH_sparse.json";
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }

  constexpr double kThresholds[] = {0.0, 1e-12, 1e-8};
  constexpr int kReps = 5;

  const std::string fock = chem::sparse_fock_source();
  const std::string mp2 = chem::sparse_mp2_source();

  std::vector<Sample> fock_runs[3], mp2_runs[3];
  for (int rep = 0; rep < kReps; ++rep) {
    for (int t = 0; t < 3; ++t) {
      fock_runs[t].push_back(
          run_once(fock, "fnorm2", fock_config(kThresholds[t])));
      mp2_runs[t].push_back(
          run_once(mp2, "e2", mp2_config(kThresholds[t])));
    }
  }
  Sample fock_med[3], mp2_med[3];
  for (int t = 0; t < 3; ++t) {
    fock_med[t] = median_of(std::move(fock_runs[t]));
    mp2_med[t] = median_of(std::move(mp2_runs[t]));
  }

  // Dense check: with one worker the accumulation order is reproducible,
  // so threshold 0 on the sparse build must match the stripped program
  // bit for bit.
  const double fock_sparse0 =
      run_once(fock, "fnorm2", fock_config(0.0, 1)).checksum;
  const double fock_dense =
      run_once(strip_sparse(fock), "fnorm2", fock_config(0.0, 1)).checksum;
  const double mp2_sparse0 =
      run_once(mp2, "e2", mp2_config(0.0, 1)).checksum;
  const double mp2_dense =
      run_once(strip_sparse(mp2), "e2", mp2_config(0.0, 1)).checksum;

  std::fprintf(out, "{\n  \"benchmarks\": [\n");
  for (int t = 0; t < 3; ++t)
    emit(out, "sparse_fock_n768_g32", kThresholds[t], fock_med[t], false);
  for (int t = 0; t < 3; ++t)
    emit(out, "sparse_mp2_o32_v64_g8", kThresholds[t], mp2_med[t], t == 2);
  std::fprintf(out,
               "  ],\n"
               "  \"dense_check\": {\n"
               "    \"fock_sparse_t0\": %.17g,\n"
               "    \"fock_dense\": %.17g,\n"
               "    \"mp2_sparse_t0\": %.17g,\n"
               "    \"mp2_dense\": %.17g\n"
               "  }\n}\n",
               fock_sparse0, fock_dense, mp2_sparse0, mp2_dense);
  std::fclose(out);

  const double speedup = fock_med[0].seconds / fock_med[2].seconds;
  const double pct = 100.0 * screened_fraction(fock_med[2]);
  std::printf(
      "sparse_fock n=768 g=32: exact %.3f s, 1e-12 %.3f s, 1e-8 %.3f s "
      "(speedup %.2fx, %.1f%% blocks screened, %lld kernels skipped)\n",
      fock_med[0].seconds, fock_med[1].seconds, fock_med[2].seconds, speedup,
      pct, static_cast<long long>(fock_med[2].screening.kernels_screened));
  std::printf(
      "sparse_mp2 o=32 v=64 g=8: exact %.3f s, 1e-12 %.3f s, 1e-8 %.3f s "
      "(%lld prepares + %lld requests screened)\n",
      mp2_med[0].seconds, mp2_med[1].seconds, mp2_med[2].seconds,
      static_cast<long long>(mp2_med[2].screening.prepares_screened),
      static_cast<long long>(mp2_med[2].screening.requests_screened));

  bool ok = true;
  if (fock_sparse0 != fock_dense || mp2_sparse0 != mp2_dense) {
    std::fprintf(stderr,
                 "FAIL: threshold 0 is not bit-identical to dense "
                 "(fock %.17g vs %.17g, mp2 %.17g vs %.17g)\n",
                 fock_sparse0, fock_dense, mp2_sparse0, mp2_dense);
    ok = false;
  }
  if (speedup < 2.0) {
    std::fprintf(stderr, "FAIL: sparse_fock speedup %.2fx < 2x\n", speedup);
    ok = false;
  }
  if (pct < 50.0) {
    std::fprintf(stderr, "FAIL: only %.1f%% of blocks screened\n", pct);
    ok = false;
  }
  if (!ok) return 1;
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
