// Machine-readable served-array I/O benchmark: the disk-pipeline
// counterpart of BENCH_comm.json. Runs the disk-bound io_storm workload
// with the pipelined engine (threaded disk service, request look-ahead,
// batched write-behind) on vs off and writes wall time plus server-side
// disk/cache counters as JSON so each PR can diff I/O behavior against
// the committed baseline (`cmake --build build --target bench_json`).
//
// The server cache is configured far smaller than the served array, so
// every sweep re-reads most blocks from disk; the result scalar is
// integer-valued and must be bit-identical across engines.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "chem/integrals.hpp"
#include "chem/programs.hpp"
#include "common/timer.hpp"
#include "sip/launch.hpp"

namespace {

using namespace sia;

struct Sample {
  double seconds = 0.0;
  double snorm2 = 0.0;
  sip::ProfileReport::ServedPipeline served;
};

Sample run_once(const std::string& source, SipConfig config) {
  sip::Sip sip(std::move(config));
  const double t0 = wall_seconds();
  const sip::RunResult result = sip.run_source(source);
  Sample sample;
  sample.seconds = wall_seconds() - t0;
  sample.snorm2 = result.scalar("snorm2");
  sample.served = result.profile.served;
  return sample;
}

// Median of the collected samples by wall time (counters come from the
// median run). The workload is device-bound and virtio latency drifts
// with host load, so the median of several alternated runs is far more
// stable than a single run or a best-of.
Sample median_of(std::vector<Sample> samples) {
  std::sort(samples.begin(), samples.end(),
            [](const Sample& a, const Sample& b) {
              return a.seconds < b.seconds;
            });
  return samples[samples.size() / 2];
}

void emit(std::FILE* out, const char* name, const char* engine,
          const Sample& sample, bool last) {
  const auto& s = sample.served;
  const std::int64_t server_total =
      s.server_requests + s.server_lookahead_requests;
  const double hit_rate =
      server_total > 0
          ? static_cast<double>(s.server_cache_hits) /
                static_cast<double>(server_total)
          : 0.0;
  std::fprintf(
      out,
      "    {\n"
      "      \"name\": \"%s\",\n"
      "      \"engine\": \"%s\",\n"
      "      \"wall_seconds\": %.6f,\n"
      "      \"snorm2\": %.1f,\n"
      "      \"client_requests_issued\": %lld,\n"
      "      \"client_requests_cached\": %lld,\n"
      "      \"client_lookahead_issued\": %lld,\n"
      "      \"client_lookahead_misses\": %lld,\n"
      "      \"server_requests\": %lld,\n"
      "      \"server_lookahead_requests\": %lld,\n"
      "      \"server_cache_hits\": %lld,\n"
      "      \"server_cache_hit_rate\": %.4f,\n"
      "      \"disk_reads\": %lld,\n"
      "      \"disk_writes\": %lld,\n"
      "      \"reads_coalesced\": %lld,\n"
      "      \"write_batches\": %lld,\n"
      "      \"map_flushes\": %lld\n"
      "    }%s\n",
      name, engine, sample.seconds, sample.snorm2,
      static_cast<long long>(s.client_requests_issued),
      static_cast<long long>(s.client_requests_cached),
      static_cast<long long>(s.client_lookahead_issued),
      static_cast<long long>(s.client_lookahead_misses),
      static_cast<long long>(s.server_requests),
      static_cast<long long>(s.server_lookahead_requests),
      static_cast<long long>(s.server_cache_hits), hit_rate,
      static_cast<long long>(s.server_disk_reads),
      static_cast<long long>(s.server_disk_writes),
      static_cast<long long>(s.reads_coalesced),
      static_cast<long long>(s.write_batches),
      static_cast<long long>(s.map_flushes), last ? "" : ",");
}

// io_servers=1 so every request funnels through one server; the cache is
// ~1/9 of the served array so sweeps are disk-bound, and blocks are 72 KiB
// so reads (not per-message overhead) dominate the serial service loop.
// server_cold_io keeps the slotted files out of the OS page cache — the
// regime the paper targets (arrays much larger than aggregate RAM), where
// a disk read genuinely blocks instead of degenerating into a memcpy.
SipConfig io_config(bool pipelined) {
  SipConfig config;
  config.workers = 4;
  config.io_servers = 1;
  config.default_segment = 96;
  config.server_cache_bytes = 2u << 20;
  config.server_cold_io = true;
  config.server_disk_threads = pipelined ? 4 : 0;
  config.prefetch_depth = pipelined ? 4 : 0;
  config.constants = {{"norb", 1536}, {"nsweeps", 6}, {"nshared", 1536}};
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  chem::register_chem_superinstructions();
  const std::string path = argc > 1 ? argv[1] : "BENCH_io.json";
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }

  constexpr int kReps = 5;
  const std::string source = chem::io_storm_source();
  // Alternate engines run-by-run so slow drift in device latency hits
  // both sides equally.
  std::vector<Sample> serial_runs, pipelined_runs;
  for (int rep = 0; rep < kReps; ++rep) {
    serial_runs.push_back(run_once(source, io_config(false)));
    pipelined_runs.push_back(run_once(source, io_config(true)));
  }
  const Sample pipelined = median_of(std::move(pipelined_runs));
  const Sample serial = median_of(std::move(serial_runs));

  std::fprintf(out, "{\n  \"benchmarks\": [\n");
  emit(out, "io_storm_n1536_s6", "pipelined", pipelined, false);
  emit(out, "io_storm_n1536_s6", "serial", serial, true);
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);

  std::printf("io_storm n=1536 sweeps=6: pipelined %.3f s "
              "(%lld disk reads, %lld coalesced, %lld look-ahead), "
              "serial %.3f s (%lld disk reads), speedup %.2fx\n",
              pipelined.seconds,
              static_cast<long long>(pipelined.served.server_disk_reads),
              static_cast<long long>(pipelined.served.reads_coalesced),
              static_cast<long long>(
                  pipelined.served.client_lookahead_issued),
              serial.seconds,
              static_cast<long long>(serial.served.server_disk_reads),
              serial.seconds / pipelined.seconds);
  if (pipelined.snorm2 != serial.snorm2) {
    std::fprintf(stderr,
                 "FAIL: snorm2 differs between engines (%.17g vs %.17g)\n",
                 pipelined.snorm2, serial.snorm2);
    return 1;
  }
  std::printf("wrote %s (snorm2 bit-identical: %.1f)\n", path.c_str(),
              pipelined.snorm2);
  return 0;
}
