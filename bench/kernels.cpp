// Micro-benchmarks (google-benchmark) for the computational super
// instructions and the memory machinery: block contraction throughput by
// segment size (the paper's key tuning knob), tensor permutation,
// on-demand integral generation, and pool-vs-heap block allocation.
#include <benchmark/benchmark.h>

#include <cmath>

#include <vector>

#include "blas/gemm.hpp"
#include "blas/permute.hpp"
#include "block/block.hpp"
#include "block/block_pool.hpp"
#include "chem/integrals.hpp"
#include "common/rng.hpp"
#include "sip/superinstr.hpp"

namespace {

using namespace sia;

Block random_block(std::vector<int> extents, std::uint64_t seed) {
  Block block{BlockShape(extents)};
  auto data = block.data();
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = 2.0 * unit_double(hash_combine(seed, i)) - 1.0;
  }
  return block;
}

// Rank-4 block contraction over two shared indices (the CCSD workhorse:
// 2*seg^6 flops), as a function of segment size.
void BM_BlockContraction(benchmark::State& state) {
  const int seg = static_cast<int>(state.range(0));
  Block a = random_block({seg, seg, seg, seg}, 1);
  Block b = random_block({seg, seg, seg, seg}, 2);
  Block c{BlockShape(std::vector<int>{seg, seg, seg, seg})};
  const std::vector<int> c_ids = {0, 1, 4, 5};
  const std::vector<int> a_ids = {0, 1, 2, 3};
  const std::vector<int> b_ids = {2, 3, 4, 5};
  for (auto _ : state) {
    sip::block_contract(c, c_ids, a, a_ids, b, b_ids, false);
    benchmark::DoNotOptimize(c.data().data());
  }
  const double flops = 2.0 * std::pow(static_cast<double>(seg), 6.0);
  state.counters["GFLOP/s"] = benchmark::Counter(
      flops * static_cast<double>(state.iterations()) * 1e-9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BlockContraction)
    ->Arg(4)
    ->Arg(8)
    ->Arg(12)
    ->Arg(16)
    ->Arg(20)
    ->Arg(24)
    ->Arg(32);

// The DGEMM kernel directly.
void BM_Dgemm(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<double> a(n * n), b(n * n), c(n * n);
  for (std::size_t i = 0; i < n * n; ++i) {
    a[i] = unit_double(i);
    b[i] = unit_double(i + 7);
  }
  for (auto _ : state) {
    blas::dgemm(n, n, n, 1.0, a.data(), n, b.data(), n, 0.0, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * static_cast<double>(n) * n * n *
          static_cast<double>(state.iterations()) * 1e-9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Dgemm)->Arg(64)->Arg(128)->Arg(256);

// Rank-4 permutation (operand preparation for contractions).
void BM_Permute4(benchmark::State& state) {
  const int seg = static_cast<int>(state.range(0));
  Block src = random_block({seg, seg, seg, seg}, 3);
  Block dst{BlockShape(std::vector<int>{seg, seg, seg, seg})};
  const std::vector<int> dims = {seg, seg, seg, seg};
  const std::vector<int> perm = {3, 1, 2, 0};
  for (auto _ : state) {
    blas::permute(src.data().data(), dims, perm, dst.data().data());
    benchmark::DoNotOptimize(dst.data().data());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(src.size() * sizeof(double)));
}
BENCHMARK(BM_Permute4)->Arg(8)->Arg(16)->Arg(24);

// On-demand integral block generation (compute_integrals body).
void BM_IntegralBlock(benchmark::State& state) {
  const int seg = static_cast<int>(state.range(0));
  Block block{BlockShape(std::vector<int>{seg, seg, seg, seg})};
  for (auto _ : state) {
    auto data = block.data();
    std::size_t n = 0;
    for (int p = 1; p <= seg; ++p) {
      for (int q = 1; q <= seg; ++q) {
        for (int r = 1; r <= seg; ++r) {
          for (int s = 1; s <= seg; ++s) {
            data[n++] = chem::synthetic_integral(p, q, r, s);
          }
        }
      }
    }
    benchmark::DoNotOptimize(data.data());
  }
}
BENCHMARK(BM_IntegralBlock)->Arg(4)->Arg(8)->Arg(16);

// Preallocated pool slots vs heap fallback (the paper's block stacks).
void BM_PoolAllocate(benchmark::State& state) {
  const std::size_t doubles = 16 * 16 * 16 * 16;
  BlockPool pool({{doubles, 8}}, /*allow_heap_fallback=*/false);
  for (auto _ : state) {
    PoolBuffer buffer = pool.allocate(doubles);
    benchmark::DoNotOptimize(buffer.data());
  }
}
BENCHMARK(BM_PoolAllocate);

void BM_HeapAllocate(benchmark::State& state) {
  const std::size_t doubles = 16 * 16 * 16 * 16;
  BlockPool pool({}, /*allow_heap_fallback=*/true);
  for (auto _ : state) {
    PoolBuffer buffer = pool.allocate(doubles);
    benchmark::DoNotOptimize(buffer.data());
  }
}
BENCHMARK(BM_HeapAllocate);

}  // namespace

BENCHMARK_MAIN();
