// Machine-readable autotuner benchmark: does the launch-time planner
// actually land near the best hand-swept configuration with zero user
// knobs, and does its prediction error shrink once calibrated?
//
// Two grids mirror the ablation benches:
//   1. worker_threads on comm_storm (n=768, seg=48, 1 worker) — the
//      grid behind BENCH_pardo.json, where a 1-core host must get the
//      serial engine;
//   2. segment size on the Fock build (norb=32, 4 workers) — "the most
//      significant factor" (paper §VI-A).
// Both run bigger problems than the interactive ablations so the ~5 ms
// planning cost (GEMM probe + sweep), which the auto cell pays and hand
// cells do not, is amortized the way it is in real runs.
// Each hand cell pins the swept knob; the auto cell leaves it to the
// planner (config.autotune, fresh calibration file), runs cold, then
// runs again calibrated and reports both model errors. The committed
// BENCH_plan.json records auto-vs-best/worst ratios per grid
// (`cmake --build build --target bench_json`).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "chem/integrals.hpp"
#include "chem/programs.hpp"
#include "chem/reference.hpp"
#include "common/timer.hpp"
#include "sip/launch.hpp"
#include "sip/spawn.hpp"

namespace {

using namespace sia;

struct Sample {
  double seconds = 0.0;
  double checksum = 0.0;
  sip::ProfileReport::Plan plan;
};

Sample run_once(const std::string& source, SipConfig config,
                const char* scalar_name) {
  sip::Sip sip(std::move(config));
  const double t0 = wall_seconds();
  const sip::RunResult result = sip.run_source(source);
  Sample sample;
  sample.seconds = wall_seconds() - t0;
  sample.checksum = result.scalar(scalar_name);
  sample.plan = result.profile.plan;
  return sample;
}

Sample median_of(std::vector<Sample> samples) {
  std::sort(samples.begin(), samples.end(),
            [](const Sample& a, const Sample& b) {
              return a.seconds < b.seconds;
            });
  return samples[samples.size() / 2];
}

struct Cell {
  std::string label;
  Sample sample;
};

struct GridResult {
  std::vector<Cell> cells;       // hand-swept cells, in grid order
  Sample auto_cold;              // planner, fresh calibration
  Sample auto_calibrated;        // planner, second run on the same file
  double best_hand = 0.0;
  double worst_hand = 0.0;
};

GridResult run_grid(const std::string& source, const char* scalar_name,
                    const std::vector<std::pair<std::string, SipConfig>>&
                        hand_cells,
                    SipConfig auto_base, const char* cal_name) {
  constexpr int kReps = 3;
  GridResult grid;
  grid.cells.resize(hand_cells.size());
  std::vector<std::vector<Sample>> runs(hand_cells.size());
  // Alternate cells rep-by-rep so host-load drift hits all cells alike.
  for (int rep = 0; rep < kReps; ++rep) {
    for (std::size_t c = 0; c < hand_cells.size(); ++c) {
      runs[c].push_back(run_once(source, hand_cells[c].second, scalar_name));
    }
  }
  for (std::size_t c = 0; c < hand_cells.size(); ++c) {
    grid.cells[c].label = hand_cells[c].first;
    grid.cells[c].sample = median_of(std::move(runs[c]));
  }
  grid.best_hand = grid.cells[0].sample.seconds;
  grid.worst_hand = grid.cells[0].sample.seconds;
  for (const Cell& cell : grid.cells) {
    grid.best_hand = std::min(grid.best_hand, cell.sample.seconds);
    grid.worst_hand = std::max(grid.worst_hand, cell.sample.seconds);
  }

  const std::string cal_path =
      (std::filesystem::temp_directory_path() / cal_name).string();
  std::filesystem::remove(cal_path);
  auto_base.autotune = true;
  auto_base.calibration_file = cal_path;
  grid.auto_cold = run_once(source, auto_base, scalar_name);
  // Calibrated: the planner has seen one predicted-vs-actual pair; take
  // the median of a few runs for the wall-time comparison, the last for
  // the (monotonically refined) model error.
  std::vector<Sample> calibrated;
  for (int rep = 0; rep < kReps; ++rep) {
    calibrated.push_back(run_once(source, auto_base, scalar_name));
  }
  grid.auto_calibrated = median_of(std::move(calibrated));
  std::filesystem::remove(cal_path);
  return grid;
}

void emit_cell(std::FILE* out, const char* grid, const Cell& cell) {
  std::fprintf(out,
               "    {\n"
               "      \"grid\": \"%s\",\n"
               "      \"cell\": \"%s\",\n"
               "      \"wall_seconds\": %.6f,\n"
               "      \"checksum\": %.17g\n"
               "    },\n",
               grid, cell.label.c_str(), cell.sample.seconds,
               cell.sample.checksum);
}

void emit_auto(std::FILE* out, const char* grid, const GridResult& result,
               bool last) {
  const Sample& tuned = result.auto_calibrated;
  std::fprintf(
      out,
      "    {\n"
      "      \"grid\": \"%s\",\n"
      "      \"cell\": \"auto\",\n"
      "      \"wall_seconds\": %.6f,\n"
      "      \"checksum\": %.17g,\n"
      "      \"plan\": \"%s\",\n"
      "      \"candidates\": %d,\n"
      "      \"predicted_seconds\": %.6f,\n"
      "      \"error_percent_cold\": %.1f,\n"
      "      \"error_percent_calibrated\": %.1f,\n"
      "      \"best_hand_seconds\": %.6f,\n"
      "      \"worst_hand_seconds\": %.6f,\n"
      "      \"auto_vs_best\": %.3f\n"
      "    }%s\n",
      grid, tuned.seconds, tuned.checksum, tuned.plan.summary.c_str(),
      tuned.plan.candidates, tuned.plan.predicted_seconds,
      result.auto_cold.plan.error_percent(), tuned.plan.error_percent(),
      result.best_hand, result.worst_hand, tuned.seconds / result.best_hand,
      last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  if (sia::sip::is_spawn_child(argc, argv)) {
    chem::register_chem_superinstructions();
    return sia::sip::run_spawn_child(argc, argv);
  }
  chem::register_chem_superinstructions();
  // A stale SIA_AUTOTUNE from the environment would defeat the per-cell
  // autotune settings below.
  ::unsetenv("SIA_AUTOTUNE");
  const std::string path = argc > 1 ? argv[1] : "BENCH_plan.json";
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }

  // Grid 1: worker_threads on comm_storm (the BENCH_pardo regression,
  // at the opt_json problem size).
  const auto storm_config = [](int worker_threads) {
    SipConfig config;
    config.workers = 1;
    config.io_servers = 0;
    config.default_segment = 48;
    config.worker_threads = worker_threads;
    config.constants = {{"norb", 768}};
    return config;
  };
  std::vector<std::pair<std::string, SipConfig>> storm_cells;
  for (const int t : {0, 1, 2, 4}) {
    storm_cells.emplace_back("threads" + std::to_string(t), storm_config(t));
  }
  SipConfig storm_auto = storm_config(0);
  storm_auto.worker_threads = SipConfig{}.worker_threads;  // planner's call
  const GridResult storm =
      run_grid(chem::comm_storm_source(), "cnorm2", storm_cells, storm_auto,
               "sia_cal_bench_threads");

  // Grid 2: segment size on the Fock build (ablation_segment_size grid,
  // scaled up; segment 1 dropped — at norb=32 it is all overhead).
  const long norb = 32;
  const auto fock_config = [&](int segment) {
    SipConfig config;
    config.workers = 4;
    config.io_servers = 0;
    config.default_segment = segment;
    config.constants = {{"norb", norb}};
    return config;
  };
  std::vector<std::pair<std::string, SipConfig>> fock_cells;
  for (const int s : {2, 4, 8, 16, 32}) {
    fock_cells.emplace_back("segment" + std::to_string(s), fock_config(s));
  }
  SipConfig fock_auto = fock_config(SipConfig{}.default_segment);
  const GridResult fock =
      run_grid(chem::fock_build_source(), "fnorm", fock_cells, fock_auto,
               "sia_cal_bench_segment");

  std::fprintf(out, "{\n  \"benchmarks\": [\n");
  for (const Cell& cell : storm.cells) {
    emit_cell(out, "threads_comm_storm_n768_s48", cell);
  }
  emit_auto(out, "threads_comm_storm_n768_s48", storm, false);
  for (const Cell& cell : fock.cells) {
    emit_cell(out, "segment_fock_norb32_w4", cell);
  }
  emit_auto(out, "segment_fock_norb32_w4", fock, true);
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);

  std::printf("threads grid: best hand %.3f s, worst %.3f s, auto %.3f s "
              "(%.2fx of best; plan: %s)\n",
              storm.best_hand, storm.worst_hand,
              storm.auto_calibrated.seconds,
              storm.auto_calibrated.seconds / storm.best_hand,
              storm.auto_calibrated.plan.summary.c_str());
  std::printf("segment grid: best hand %.3f s, worst %.3f s, auto %.3f s "
              "(%.2fx of best; plan: %s)\n",
              fock.best_hand, fock.worst_hand, fock.auto_calibrated.seconds,
              fock.auto_calibrated.seconds / fock.best_hand,
              fock.auto_calibrated.plan.summary.c_str());
  std::printf("model error: threads %.1f%% cold -> %.1f%% calibrated; "
              "segment %.1f%% cold -> %.1f%% calibrated\n",
              storm.auto_cold.plan.error_percent(),
              storm.auto_calibrated.plan.error_percent(),
              fock.auto_cold.plan.error_percent(),
              fock.auto_calibrated.plan.error_percent());

  // Sanity, not timing: the tuned runs must still be correct.
  bool ok = true;
  for (const Cell& cell : storm.cells) {
    if (cell.sample.checksum != storm.auto_calibrated.checksum) {
      // comm_storm at 1 worker is bit-identical across engines.
      std::fprintf(stderr, "FAIL: cnorm2 differs (%s %.17g vs auto %.17g)\n",
                   cell.label.c_str(), cell.sample.checksum,
                   storm.auto_calibrated.checksum);
      ok = false;
    }
  }
  const double want = chem::ref_fock_norm(norb);
  if (std::abs(fock.auto_calibrated.checksum - want) > 1e-9 * want) {
    std::fprintf(stderr, "FAIL: tuned fnorm %.17g vs reference %.17g\n",
                 fock.auto_calibrated.checksum, want);
    ok = false;
  }
  if (!ok) return 1;
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
