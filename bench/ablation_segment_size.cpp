// Ablation: segment size — "the correct choice of segment size is the
// most significant factor" when tuning a port (paper §VI-A), and it lives
// entirely outside the SIAL source.
//
// Two views:
//   1. the real threaded runtime: same Fock-build program, segment sizes
//      swept; identical answers, different wall time and message counts;
//   2. the cluster simulator: the time-vs-segment bathtub at scale (too
//      small = scheduling and latency overhead, too large = load
//      imbalance and lost parallelism).
#include <cstdio>
#include <iostream>

#include "chem/integrals.hpp"
#include "chem/programs.hpp"
#include "chem/reference.hpp"
#include "chem/system.hpp"
#include "common/stats.hpp"
#include "common/timer.hpp"
#include "sim/des.hpp"
#include "sim/machine.hpp"
#include "sim/report.hpp"
#include "sim/workload.hpp"
#include "sip/launch.hpp"

int main() {
  using namespace sia;
  std::printf("=== Ablation: segment size (real runtime) ===\n");
  chem::register_chem_superinstructions();

  const long norb = 16;
  const double want = chem::ref_fock_norm(norb);
  TablePrinter real_table(
      std::cout, {"segment", "time[ms]", "messages", "error"},
      {8, 9, 9, 10});
  real_table.print_header();
  for (const int segment : {1, 2, 4, 8, 16}) {
    SipConfig config;
    config.workers = 4;
    config.io_servers = 0;
    config.default_segment = segment;
    config.constants = {{"norb", norb}};
    sip::Sip sip(config);
    const double t0 = wall_seconds();
    const sip::RunResult result =
        sip.run_source(chem::fock_build_source());
    const double ms = (wall_seconds() - t0) * 1e3;
    real_table.print_row(
        {std::to_string(segment), sim::fmt(ms, 1),
         std::to_string(result.traffic.messages_sent),
         sim::fmt(std::abs(result.scalar("fnorm") - want), 12)});
  }
  std::printf("(answers identical across segment sizes; cost is not)\n");

  std::printf("\n=== Ablation: segment size (simulated CCSD at 2048 "
              "cores) ===\n");
  const sim::MachineModel machine = sim::cray_xt5();
  TablePrinter sim_table(std::cout, {"segment", "time[s]", "wait%"},
                         {8, 9, 7});
  sim_table.print_header();
  for (const int segment : {6, 12, 24, 48, 96}) {
    const sim::WorkloadModel workload =
        sim::ccsd_iteration(chem::rdx(), segment);
    const sim::WorkloadResult result = sim::simulate_workload(
        machine, workload, 2048, sim::SimOptions{});
    sim_table.print_row({std::to_string(segment),
                         sim::fmt(result.seconds, 1),
                         sim::fmt(result.wait_percent, 1)});
  }
  std::printf("(the paper's tuning story: the best segment balances "
              "kernel efficiency against parallel slack)\n");
  return 0;
}
