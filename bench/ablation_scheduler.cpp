// Ablation: guided decreasing-chunk scheduling versus static partitioning
// (paper §V-B: "the chunk size decreases as the computation proceeds.
// This is similar to the approach taken with guided scheduling in
// OpenMP").
//
// Uses the production GuidedSchedule directly in a makespan study over a
// deliberately imbalanced task mix — triangular iteration spaces (from
// `where i <= j` clauses) give blocks near the diagonal far less work.
// Static pre-partitioning strands the heavy tail on one worker; guided
// chunks rebalance automatically.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "sim/report.hpp"
#include "sip/scheduler.hpp"

namespace {

// Task costs: heavy-tailed deterministic mix (a triangular contraction:
// task t costs proportional to its row length plus noise).
std::vector<double> make_task_costs(int tasks) {
  std::vector<double> costs(static_cast<std::size_t>(tasks));
  for (int t = 0; t < tasks; ++t) {
    const double base = 1.0 + static_cast<double>(t % 64);
    const double noise =
        sia::unit_double(static_cast<std::uint64_t>(t)) * 8.0;
    costs[static_cast<std::size_t>(t)] = base + noise;
  }
  return costs;
}

// Simulated makespan when workers pull chunks from the given schedule
// parameters (min_chunk = tasks/workers approximates a static one-shot
// partition).
double makespan(const std::vector<double>& costs, int workers,
                int chunk_divisor, long min_chunk) {
  sia::sip::GuidedSchedule schedule(
      static_cast<std::int64_t>(costs.size()), workers, chunk_divisor,
      min_chunk);
  std::vector<double> busy(static_cast<std::size_t>(workers), 0.0);
  while (true) {
    // The least-loaded worker asks next (workers request when idle).
    const std::size_t w = static_cast<std::size_t>(
        std::min_element(busy.begin(), busy.end()) - busy.begin());
    const auto [begin, end] = schedule.next_chunk();
    if (begin >= end) break;
    for (std::int64_t t = begin; t < end; ++t) {
      busy[w] += costs[static_cast<std::size_t>(t)];
    }
  }
  return *std::max_element(busy.begin(), busy.end());
}

}  // namespace

int main() {
  using sia::TablePrinter;
  std::printf("=== Ablation: guided vs static pardo scheduling ===\n");

  const std::vector<double> costs = make_task_costs(4096);
  const double total =
      std::accumulate(costs.begin(), costs.end(), 0.0);

  TablePrinter table(
      std::cout,
      {"workers", "ideal", "static", "guided", "static-eff%", "guided-eff%"},
      {7, 9, 9, 9, 12, 12});
  table.print_header();
  bool guided_ok = true;       // never loses by more than 2%...
  bool guided_wins_big = false;  // ...and wins clearly when imbalance bites
  for (const int workers : {8, 16, 32, 64, 128}) {
    const double ideal = total / workers;
    const double t_static =
        makespan(costs, workers, 1,
                 static_cast<long>(costs.size()) / workers);
    const double t_guided = makespan(costs, workers, 2, 1);
    guided_ok = guided_ok && t_guided <= 1.02 * t_static;
    guided_wins_big = guided_wins_big || t_guided < 0.8 * t_static;
    table.print_row({std::to_string(workers), sia::sim::fmt(ideal, 0),
                     sia::sim::fmt(t_static, 0), sia::sim::fmt(t_guided, 0),
                     sia::sim::fmt(100.0 * ideal / t_static, 1),
                     sia::sim::fmt(100.0 * ideal / t_guided, 1)});
  }
  std::printf("\nshape check: guided never loses more than 2%% and wins "
              "decisively once chunks are coarse relative to the task mix: "
              "%s\n",
              (guided_ok && guided_wins_big) ? "yes" : "NO");
  return 0;
}
