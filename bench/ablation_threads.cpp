// Ablation: intra-worker dataflow executor (pool threads and window
// depth).
//
// Two sweeps over the contraction-dense comm_storm workload, single
// worker so the chunk schedule — and therefore the checksum — is
// deterministic across every row:
//   1. worker_threads 0..8 at the default window: how far out-of-order
//      issue scales once temp renaming breaks the per-iteration WAW
//      chain (host dependent: one core time-slices the pool at ~1x);
//   2. window_limit at fixed threads: how much scan-ahead the scoreboard
//      needs before the pool saturates — a window of 2 barely covers one
//      contraction + its put, so stalls dominate.
#include <cstdio>
#include <iostream>
#include <string>

#include "chem/integrals.hpp"
#include "chem/programs.hpp"
#include "common/stats.hpp"
#include "common/timer.hpp"
#include "sip/launch.hpp"

namespace {

using namespace sia;

SipConfig storm_config(int worker_threads, int window_limit) {
  SipConfig config;
  config.workers = 1;
  config.io_servers = 0;
  config.default_segment = 48;
  config.worker_threads = worker_threads;
  config.window_limit = window_limit;
  config.constants = {{"norb", 384}};
  return config;
}

struct Row {
  double seconds = 0.0;
  double cnorm2 = 0.0;
  sip::ProfileReport::Executor executor;
};

Row best_of(const SipConfig& config, const std::string& source, int reps) {
  Row row;
  for (int rep = 0; rep < reps; ++rep) {
    sip::Sip sip(config);
    const double t0 = wall_seconds();
    const sip::RunResult result = sip.run_source(source);
    const double dt = wall_seconds() - t0;
    if (rep == 0 || dt < row.seconds) {
      row.seconds = dt;
      row.cnorm2 = result.scalar("cnorm2");
      row.executor = result.profile.executor;
    }
  }
  return row;
}

}  // namespace

int main() {
  std::printf("=== Ablation: dataflow executor (threads and window) ===\n");
  chem::register_chem_superinstructions();
  const std::string source = chem::comm_storm_source();

  std::printf("\n--- pool-thread sweep (window_limit 64, comm_storm "
              "n=384 seg=48, best of 3) ---\n");
  TablePrinter threads_table(
      std::cout,
      {"threads", "wall[s]", "speedup", "retired", "hzstall", "occup"},
      {8, 9, 8, 9, 8, 7});
  threads_table.print_header();
  double serial_seconds = 0.0;
  double serial_cnorm2 = 0.0;
  for (const int threads : {0, 1, 2, 4, 8}) {
    const Row row = best_of(storm_config(threads, 64), source, 3);
    if (threads == 0) {
      serial_seconds = row.seconds;
      serial_cnorm2 = row.cnorm2;
    } else if (row.cnorm2 != serial_cnorm2) {
      std::printf("FAIL: cnorm2 diverged at %d threads (%.17g vs %.17g)\n",
                  threads, row.cnorm2, serial_cnorm2);
      return 1;
    }
    threads_table.print_row(
        {std::to_string(threads), TablePrinter::num(row.seconds, 3),
         TablePrinter::num(serial_seconds / row.seconds, 2),
         std::to_string(row.executor.entries_retired),
         std::to_string(row.executor.hazard_stalls),
         TablePrinter::num(row.executor.avg_occupancy(), 1)});
  }

  std::printf("\n--- window-depth sweep (4 pool threads, same workload) "
              "---\n");
  TablePrinter window_table(
      std::cout,
      {"window", "wall[s]", "speedup", "hzstall", "drainms", "occup"},
      {7, 9, 8, 8, 9, 7});
  window_table.print_header();
  for (const int window : {2, 4, 8, 16, 64}) {
    const Row row = best_of(storm_config(4, window), source, 3);
    if (row.cnorm2 != serial_cnorm2) {
      std::printf("FAIL: cnorm2 diverged at window %d (%.17g vs %.17g)\n",
                  window, row.cnorm2, serial_cnorm2);
      return 1;
    }
    window_table.print_row(
        {std::to_string(window), TablePrinter::num(row.seconds, 3),
         TablePrinter::num(serial_seconds / row.seconds, 2),
         std::to_string(row.executor.hazard_stalls),
         TablePrinter::num(row.executor.drain_wait_seconds * 1e3, 1),
         TablePrinter::num(row.executor.avg_occupancy(), 1)});
  }

  std::printf("\ncnorm2 bit-identical across all rows: %.6e\n",
              serial_cnorm2);
  return 0;
}
