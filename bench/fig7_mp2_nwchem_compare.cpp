// Figure 7 reproduction: Cytosine+OH UHF MP2 gradient — ACES III (SIA)
// versus NWChem (Global Arrays) on the SGI Altix 4700 (pople).
//
// Paper's findings, reproduced as model outcomes:
//   * ACES III with 1 GB/core completes at every processor count and is
//     faster than NWChem with 2 or 4 GB/core;
//   * NWChem never completes with 1 GB/core (rigid GA layout needs more
//     per-core memory), and fails at 16 processors even with 2/4 GB
//     (24-hour limit);
//   * the SIA's adaptable layout (spill to served arrays) is what keeps
//     the 1 GB/core runs alive.
#include <cstdio>
#include <iostream>

#include "chem/system.hpp"
#include "common/stats.hpp"
#include "sim/ga_model.hpp"
#include "sim/machine.hpp"
#include "sim/report.hpp"
#include "sim/sip_model.hpp"
#include "sim/workload.hpp"

int main() {
  using namespace sia;
  std::printf("=== Fig. 7: Cytosine+OH UHF MP2 gradient, ACES III vs "
              "NWChem on SGI Altix (simulated) ===\n");

  const sim::MachineModel machine = sim::sgi_altix();
  const sim::WorkloadModel workload =
      sim::mp2_gradient(chem::cytosine_oh(), 16);
  constexpr double kDayLimit = 24.0 * 3600.0;
  const std::vector<long> procs = {16, 32, 64, 128, 256};

  struct Row {
    const char* label;
    bool is_sia;
    double mem_per_core;
  };
  const std::vector<Row> rows = {
      {"ACES III (1GB/core)", true, 1.0e9},
      {"NWChem (1GB/core)", false, 1.0e9},
      {"NWChem (2GB/core)", false, 2.0e9},
      {"NWChem (4GB/core)", false, 4.0e9},
  };

  TablePrinter table(std::cout, {"code", "procs", "time[min]", "status"},
                     {20, 6, 10, 26});
  table.print_header();

  double aces_256 = 0.0, nwchem2_256 = 0.0;
  bool nwchem_1gb_any = false, nwchem_16_any = false;
  for (const Row& row : rows) {
    for (const long p : procs) {
      std::string status = "ok";
      double minutes = 0.0;
      if (row.is_sia) {
        const sim::SiaOutcome outcome = sim::simulate_sia(
            machine, workload, p, sim::SimOptions{}, row.mem_per_core,
            kDayLimit);
        if (outcome.completed) {
          minutes = sim::to_minutes(outcome.seconds);
          if (outcome.spilled_to_disk) status = "ok (served arrays)";
          if (p == 256) aces_256 = outcome.seconds;
        } else {
          status = "DNF: " + outcome.reason;
        }
      } else {
        const sim::GaOutcome outcome = sim::simulate_ga(
            machine, workload, p, row.mem_per_core, kDayLimit);
        if (outcome.completed) {
          minutes = sim::to_minutes(outcome.seconds);
          if (row.mem_per_core == 2.0e9 && p == 256) {
            nwchem2_256 = outcome.seconds;
          }
        } else {
          status = "DNF: " + outcome.reason;
          if (row.mem_per_core == 1.0e9) nwchem_1gb_any = true;
          if (p == 16) nwchem_16_any = true;
        }
      }
      table.print_row({row.label, std::to_string(p),
                       status.substr(0, 3) == "DNF"
                           ? "-"
                           : sim::fmt(minutes, 1),
                       status});
    }
    table.print_rule();
  }

  std::printf("\nshape checks:\n");
  std::printf("  ACES faster than NWChem(2GB) at 256 procs: %s "
              "(%.1f vs %.1f min)\n",
              aces_256 > 0.0 && (nwchem2_256 == 0.0 ||
                                 aces_256 < nwchem2_256)
                  ? "yes"
                  : "NO",
              sim::to_minutes(aces_256), sim::to_minutes(nwchem2_256));
  std::printf("  NWChem DNF at 1GB/core (all proc counts tried): %s\n",
              nwchem_1gb_any ? "yes" : "NO");
  std::printf("  NWChem DNF at 16 procs even with more memory: %s\n",
              nwchem_16_any ? "yes" : "NO");
  return 0;
}
