// Machine-readable communication benchmark: the fabric-level counterpart
// of BENCH_kernels.json. Runs the comm-bound workloads with the overlap
// engine (zero-copy transfers, put-accumulate coalescing, batched gets)
// on vs off and writes wall time plus fabric message/byte counts as JSON
// so each PR can diff communication behavior against the committed
// baseline (`cmake --build build --target bench_json`).
//
// Workloads:
//   * comm_storm — gets + repeated put+= into the same blocks; the
//     headline ablation (expects a wall-clock win with overlap on);
//   * mp2  — on-demand integrals, modest traffic;
//   * ccd  — iterated doubles ladders, get-heavy.
//
// A transport column runs comm_storm once per fabric — thread (shared
// memory), loopback (every cross-rank message framed over a socketpair),
// spawn (real processes over UNIX sockets) — so the fault-free socket
// overhead is a committed number, not folklore.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "chem/integrals.hpp"
#include "chem/programs.hpp"
#include "common/timer.hpp"
#include "sip/launch.hpp"
#include "sip/spawn.hpp"

namespace {

using namespace sia;

struct Sample {
  double seconds = 0.0;
  msg::TrafficStats traffic;
  std::int64_t puts_coalesced = 0;
  std::int64_t coalesce_flushes = 0;
};

Sample run_once(const std::string& source, SipConfig config) {
  sip::Sip sip(std::move(config));
  const double t0 = wall_seconds();
  const sip::RunResult result = sip.run_source(source);
  Sample sample;
  sample.seconds = wall_seconds() - t0;
  sample.traffic = result.traffic;
  sample.puts_coalesced =
      result.workers.puts_coalesced + result.workers.prepares_coalesced;
  sample.coalesce_flushes = result.workers.coalesce_flushes;
  return sample;
}

// Best of `reps` runs (wall time); traffic from the fastest run.
Sample best_of(const std::string& source, const SipConfig& config,
               int reps) {
  Sample best;
  for (int rep = 0; rep < reps; ++rep) {
    Sample sample = run_once(source, config);
    if (rep == 0 || sample.seconds < best.seconds) best = sample;
  }
  return best;
}

void emit(std::FILE* out, const char* name, const char* engine,
          const Sample& sample, bool last) {
  std::fprintf(out,
               "    {\n"
               "      \"name\": \"%s\",\n"
               "      \"engine\": \"%s\",\n"
               "      \"wall_seconds\": %.6f,\n"
               "      \"messages\": %lld,\n"
               "      \"payload_doubles\": %lld,\n"
               "      \"zero_copy_messages\": %lld,\n"
               "      \"zero_copy_doubles\": %lld,\n"
               "      \"puts_coalesced\": %lld,\n"
               "      \"coalesce_flushes\": %lld,\n"
               "      \"serialized_messages\": %lld,\n"
               "      \"serialized_doubles\": %lld\n"
               "    }%s\n",
               name, engine, sample.seconds,
               static_cast<long long>(sample.traffic.messages_sent),
               static_cast<long long>(sample.traffic.payload_doubles_sent),
               static_cast<long long>(sample.traffic.zero_copy_messages),
               static_cast<long long>(sample.traffic.zero_copy_doubles),
               static_cast<long long>(sample.puts_coalesced),
               static_cast<long long>(sample.coalesce_flushes),
               static_cast<long long>(sample.traffic.serialized_messages),
               static_cast<long long>(sample.traffic.serialized_doubles),
               last ? "" : ",");
}

SipConfig overlap_config(bool overlap) {
  SipConfig config;
  config.workers = 4;
  config.io_servers = 0;
  config.default_segment = 4;
  config.coalesce_puts = overlap;
  config.batch_gets = overlap;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  // This binary is its own spawn helper for the transport column.
  if (sia::sip::is_spawn_child(argc, argv)) {
    chem::register_chem_superinstructions();
    return sia::sip::run_spawn_child(argc, argv);
  }
  chem::register_chem_superinstructions();
  const std::string path = argc > 1 ? argv[1] : "BENCH_comm.json";
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }

  constexpr int kReps = 3;
  std::fprintf(out, "{\n  \"benchmarks\": [\n");

  // comm_storm: the overlap ablation. Same program both ways; the result
  // scalar is identical, only the communication behavior changes.
  {
    SipConfig on = overlap_config(true);
    on.constants = {{"norb", 128}};
    SipConfig off = overlap_config(false);
    off.constants = {{"norb", 128}};
    const Sample sample_on =
        best_of(chem::comm_storm_source(), on, kReps);
    const Sample sample_off =
        best_of(chem::comm_storm_source(), off, kReps);
    emit(out, "comm_storm_n128", "overlap", sample_on, false);
    emit(out, "comm_storm_n128", "ablated", sample_off, false);
    std::printf("comm_storm n=128: overlap %.3f s (%lld msgs), "
                "ablated %.3f s (%lld msgs), speedup %.2fx\n",
                sample_on.seconds,
                static_cast<long long>(sample_on.traffic.messages_sent),
                sample_off.seconds,
                static_cast<long long>(sample_off.traffic.messages_sent),
                sample_off.seconds / sample_on.seconds);
  }

  // Transport column: the same comm_storm over each fabric. thread is
  // the shared-memory baseline; loopback pays serialization + socketpair
  // on every cross-rank message in one process; spawn adds real process
  // isolation over UNIX sockets. The gap between thread and the socket
  // rows is the fault-free cost of out-of-process ranks.
  {
    const char* transports[] = {"thread", "loopback", "spawn"};
    Sample samples[3];
    for (int i = 0; i < 3; ++i) {
      SipConfig config = overlap_config(true);
      config.transport = transports[i];
      config.constants = {{"norb", 64}};
      samples[i] = best_of(chem::comm_storm_source(), config, kReps);
      emit(out, "comm_storm_n64_transport", transports[i], samples[i],
           false);
    }
    std::printf("comm_storm n=64 transports: thread %.3f s, "
                "loopback %.3f s (%.2fx), spawn %.3f s (%.2fx, "
                "%lld msgs serialized)\n",
                samples[0].seconds, samples[1].seconds,
                samples[1].seconds / samples[0].seconds, samples[2].seconds,
                samples[2].seconds / samples[0].seconds,
                static_cast<long long>(
                    samples[2].traffic.serialized_messages));
  }

  // mp2 / ccd: message and byte counts for the chemistry workloads.
  {
    SipConfig config = overlap_config(true);
    config.constants = {{"norb", 24}, {"nocc", 8}};
    emit(out, "mp2_n24", "overlap",
         best_of(chem::mp2_energy_source(), config, kReps), false);
  }
  {
    SipConfig config = overlap_config(true);
    config.constants = {{"norb", 24}, {"nocc", 8}, {"maxiter", 3}};
    emit(out, "ccd_n24_it3", "overlap",
         best_of(chem::ccd_energy_source(), config, kReps), true);
  }

  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
