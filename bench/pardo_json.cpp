// Machine-readable dataflow-executor benchmark: the compute counterpart
// of BENCH_comm.json and BENCH_io.json. Runs the contraction-dense
// comm_storm workload (pardo a,b { do k { get; tmp = A*A; put C += tmp }})
// on the legacy serial path (worker_threads=0) and with the intra-worker
// dataflow window at 2 and 4 pool threads, and writes wall time, workload
// GFLOP/s, and window counters as JSON so each PR can diff scheduling
// behavior against the committed baseline
// (`cmake --build build --target bench_json`).
//
// workers=1 keeps the pardo chunk schedule deterministic, so the
// collective checksum must be bit-identical across every engine — retire
// order equals program order by construction. Speedups are host
// dependent: on a single-core container the pool time-slices one CPU and
// the threaded engines land at ~1x; the ≥2.5x target applies to
// multi-core hosts where the renamed contractions genuinely overlap.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "chem/integrals.hpp"
#include "chem/programs.hpp"
#include "common/timer.hpp"
#include "sip/launch.hpp"
#include "sip/spawn.hpp"

namespace {

using namespace sia;

constexpr long kNorb = 1536;
constexpr int kSegment = 128;
// One multiply-add per (a,b,k) element triple in the Gram sweep; the
// init and checksum phases are O(norb^2) and excluded.
constexpr double kFlops = 2.0 * kNorb * kNorb * kNorb;

struct Sample {
  double seconds = 0.0;
  double cnorm2 = 0.0;
  sip::ProfileReport::Executor executor;
};

Sample run_once(const std::string& source, SipConfig config) {
  sip::Sip sip(std::move(config));
  const double t0 = wall_seconds();
  const sip::RunResult result = sip.run_source(source);
  Sample sample;
  sample.seconds = wall_seconds() - t0;
  sample.cnorm2 = result.scalar("cnorm2");
  sample.executor = result.profile.executor;
  return sample;
}

// Median of the collected samples by wall time (counters come from the
// median run): the median of several alternated runs is far more stable
// under host-load drift than a single run or a best-of.
Sample median_of(std::vector<Sample> samples) {
  std::sort(samples.begin(), samples.end(),
            [](const Sample& a, const Sample& b) {
              return a.seconds < b.seconds;
            });
  return samples[samples.size() / 2];
}

SipConfig pardo_config(int worker_threads) {
  SipConfig config;
  config.workers = 1;  // deterministic chunk schedule => bit-identity
  config.io_servers = 0;
  config.default_segment = kSegment;
  config.worker_threads = worker_threads;
  config.constants = {{"norb", kNorb}};
  return config;
}

void emit(std::FILE* out, const char* name, const char* engine,
          int worker_threads, const Sample& sample, bool last) {
  const auto& x = sample.executor;
  std::fprintf(
      out,
      "    {\n"
      "      \"name\": \"%s\",\n"
      "      \"engine\": \"%s\",\n"
      "      \"worker_threads\": %d,\n"
      "      \"wall_seconds\": %.6f,\n"
      "      \"workload_gflops\": %.3f,\n"
      "      \"cnorm2\": %.17g,\n"
      "      \"entries_retired\": %lld,\n"
      "      \"pool_tasks\": %lld,\n"
      "      \"hazard_stalls\": %lld,\n"
      "      \"operand_stalls\": %lld,\n"
      "      \"drains\": %lld,\n"
      "      \"window_peak\": %lld,\n"
      "      \"avg_occupancy\": %.2f,\n"
      "      \"drain_wait_ms\": %.3f,\n"
      "      \"pool_busy_ms\": %.3f\n"
      "    }%s\n",
      name, engine, worker_threads, sample.seconds,
      kFlops / sample.seconds * 1e-9, sample.cnorm2,
      static_cast<long long>(x.entries_retired),
      static_cast<long long>(x.tasks_executed),
      static_cast<long long>(x.hazard_stalls),
      static_cast<long long>(x.operand_stalls),
      static_cast<long long>(x.drains),
      static_cast<long long>(x.window_peak), x.avg_occupancy(),
      x.drain_wait_seconds * 1e3, x.thread_busy_seconds * 1e3,
      last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  // This binary is its own spawn helper for the process column.
  if (sia::sip::is_spawn_child(argc, argv)) {
    chem::register_chem_superinstructions();
    return sia::sip::run_spawn_child(argc, argv);
  }
  chem::register_chem_superinstructions();
  const std::string path = argc > 1 ? argv[1] : "BENCH_pardo.json";
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }

  constexpr int kReps = 5;
  const std::string source = chem::comm_storm_source();
  // Alternate engines run-by-run so slow drift in host load hits all
  // sides equally.
  std::vector<Sample> serial_runs, t2_runs, t4_runs, spawn_runs;
  for (int rep = 0; rep < kReps; ++rep) {
    serial_runs.push_back(run_once(source, pardo_config(0)));
    t2_runs.push_back(run_once(source, pardo_config(2)));
    t4_runs.push_back(run_once(source, pardo_config(4)));
    // The multi-process column: same serial engine, but the worker is a
    // real OS process over the socket fabric. workers=1 keeps the chunk
    // schedule deterministic, so cnorm2 must stay bit-identical; the gap
    // to "serial" is pure transport (spawn-mode runs do not ship the
    // per-instruction executor profile, so those counters read zero).
    SipConfig spawn_config = pardo_config(0);
    spawn_config.transport = "spawn";
    spawn_runs.push_back(run_once(source, spawn_config));
  }
  const Sample serial = median_of(std::move(serial_runs));
  const Sample t2 = median_of(std::move(t2_runs));
  const Sample t4 = median_of(std::move(t4_runs));
  const Sample spawned = median_of(std::move(spawn_runs));

  std::fprintf(out, "{\n  \"benchmarks\": [\n");
  emit(out, "comm_storm_n1536_s128", "serial", 0, serial, false);
  emit(out, "comm_storm_n1536_s128", "threads2", 2, t2, false);
  emit(out, "comm_storm_n1536_s128", "threads4", 4, t4, false);
  emit(out, "comm_storm_n1536_s128", "spawn_serial", 0, spawned, true);
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);

  std::printf(
      "comm_storm n=%ld seg=%d (%.2f GFLOP): serial %.3f s (%.2f GFLOP/s), "
      "2 threads %.3f s (%.2fx), 4 threads %.3f s (%.2fx, window peak %lld, "
      "avg occupancy %.1f)\n",
      kNorb, kSegment, kFlops * 1e-9, serial.seconds,
      kFlops / serial.seconds * 1e-9, t2.seconds,
      serial.seconds / t2.seconds, t4.seconds, serial.seconds / t4.seconds,
      static_cast<long long>(t4.executor.window_peak),
      t4.executor.avg_occupancy());
  std::printf("spawn (1 worker process): %.3f s (%.2fx of serial)\n",
              spawned.seconds, spawned.seconds / serial.seconds);
  if (t2.cnorm2 != serial.cnorm2 || t4.cnorm2 != serial.cnorm2 ||
      spawned.cnorm2 != serial.cnorm2) {
    std::fprintf(stderr,
                 "FAIL: cnorm2 differs between engines "
                 "(%.17g vs %.17g vs %.17g vs spawn %.17g)\n",
                 serial.cnorm2, t2.cnorm2, t4.cnorm2, spawned.cnorm2);
    return 1;
  }
  std::printf("wrote %s (cnorm2 bit-identical: %.6e)\n", path.c_str(),
              serial.cnorm2);
  return 0;
}
