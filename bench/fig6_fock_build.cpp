// Figure 6 reproduction: strong scaling of the Fock-matrix build for a
// diamond nano-crystal with an NV center (2944 basis functions) on the
// Cray XT5, up to 108,000 cores.
//
// Paper: strong scaling to 72,000 cores; 84k/96k/108k-core runs were
// *slower* than 72k with the same segment size; retuning the segment size
// at 84k cores dropped the time from 83.2 s to 57.5 s, beating the 79.4 s
// at 72k. The turnover in the model comes from the serialized master
// chunk service plus shrinking per-task work; the retune sweep finds a
// larger segment that restores the balance.
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "chem/system.hpp"
#include "common/stats.hpp"
#include "sim/des.hpp"
#include "sim/machine.hpp"
#include "sim/report.hpp"
#include "sim/workload.hpp"

int main() {
  using namespace sia;
  std::printf("=== Fig. 6: diamond nano-crystal Fock build on Cray XT5 "
              "(simulated) ===\n");

  const sim::MachineModel machine = sim::cray_xt5();
  const chem::MolecularSystem crystal = chem::diamond_nv();
  const sim::SimOptions options;
  constexpr int kBaseSegment = 40;

  const std::vector<long> procs = {9000,  18000, 36000, 54000,
                                   72000, 84000, 96000, 108000};
  const sim::WorkloadModel base = sim::fock_build(crystal, kBaseSegment);

  TablePrinter table(std::cout, {"cores", "time[s]", "efficiency%"},
                     {7, 9, 12});
  table.print_header();
  std::vector<double> times;
  for (const long p : procs) {
    times.push_back(sim::simulate_workload(machine, base, p, options).seconds);
  }
  const std::vector<double> efficiency =
      sim::scaling_efficiency(procs, times, 0);
  for (std::size_t k = 0; k < procs.size(); ++k) {
    table.print_row({std::to_string(procs[k]), sim::fmt(times[k], 1),
                     sim::fmt(efficiency[k], 1)});
  }

  const double t72k = times[4];
  const double t84k_untuned = times[5];
  std::printf("\nshape check: 84k cores slower than 72k with the fixed "
              "segment size: %s (%.1f s vs %.1f s)\n",
              t84k_untuned > t72k ? "yes" : "NO", t84k_untuned, t72k);

  // The paper's retune at 84,000 cores: sweep the segment size.
  std::printf("\n--- segment-size retune at 84,000 cores ---\n");
  TablePrinter retune(std::cout, {"segment", "time[s]"}, {8, 9});
  retune.print_header();
  double best = 1e30;
  int best_segment = kBaseSegment;
  for (const int segment : {24, 32, 40, 48, 56, 64, 80}) {
    const sim::WorkloadModel tuned = sim::fock_build(crystal, segment);
    const double t =
        sim::simulate_workload(machine, tuned, 84000, options).seconds;
    retune.print_row({std::to_string(segment), sim::fmt(t, 1)});
    if (t < best) {
      best = t;
      best_segment = segment;
    }
  }
  std::printf("\nretuned 84k time: %.1f s (segment %d) vs untuned %.1f s; "
              "beats the 72k time (%.1f s): %s\n",
              best, best_segment, t84k_untuned, t72k,
              best < t72k ? "yes" : "NO");
  std::printf("paper: 83.2 s untuned -> 57.5 s retuned, vs 79.4 s at "
              "72k\n");
  return 0;
}
