// Figure 5 reproduction: RHF CCSD(T) for RDX on the ORNL Cray XT5
// (jaguar), 10,000-80,000 processors, efficiency relative to 10,000.
//
// Paper: "good strong scaling up to around 30,000 processors". In the
// model the rolloff emerges because the perturbative-triples pardo has a
// finite number of (a<b<c) virtual block triples; once the processor
// count approaches the task count the guided schedule runs dry.
#include <cstdio>
#include <iostream>

#include "chem/system.hpp"
#include "common/stats.hpp"
#include "sim/des.hpp"
#include "sim/machine.hpp"
#include "sim/report.hpp"
#include "sim/workload.hpp"

int main() {
  using namespace sia;
  std::printf("=== Fig. 5: RDX RHF CCSD(T) on Cray XT5 (simulated) ===\n");

  const sim::MachineModel machine = sim::cray_xt5();
  // Segment 12 gives the triples phase ~40k block-triple tasks, matching
  // the paper's useful-scaling limit near 30k processors.
  const sim::WorkloadModel workload = sim::ccsd_t(chem::rdx(), 12, 16);
  const sim::SimOptions options;

  const std::vector<long> procs = {10000, 20000, 30000, 40000, 60000,
                                   80000};
  std::vector<double> times;
  for (const long p : procs) {
    times.push_back(
        sim::simulate_workload(machine, workload, p, options).seconds);
  }
  const std::vector<double> efficiency =
      sim::scaling_efficiency(procs, times, 0);

  TablePrinter table(std::cout, {"procs", "time[min]", "efficiency%"},
                     {7, 10, 12});
  table.print_header();
  for (std::size_t k = 0; k < procs.size(); ++k) {
    table.print_row({std::to_string(procs[k]),
                     sim::fmt(sim::to_minutes(times[k]), 1),
                     sim::fmt(efficiency[k], 1)});
  }

  // Shape: decent efficiency through 30k, clearly degraded by 80k.
  const double eff_30k = efficiency[2];
  const double eff_80k = efficiency.back();
  std::printf("\nshape check: efficiency at 30k = %.1f%% (good), at 80k = "
              "%.1f%% (degraded): %s\n",
              eff_30k, eff_80k,
              (eff_30k > 60.0 && eff_80k < eff_30k) ? "yes" : "NO");
  return 0;
}
