#include "msg/fabric.hpp"

#include <chrono>

#include "common/error.hpp"

namespace sia::msg {

Fabric::Fabric(int ranks) {
  SIA_CHECK(ranks > 0, "Fabric needs at least one rank");
  boxes_.reserve(static_cast<std::size_t>(ranks));
  for (int i = 0; i < ranks; ++i) {
    boxes_.push_back(std::make_unique<Mailbox>());
  }
}

Fabric::~Fabric() = default;

Message Fabric::Mailbox::pop_oldest_locked() {
  for (;;) {
    auto [tag, seq] = fifo.front();
    fifo.pop_front();
    auto it = by_tag.find(tag);
    if (it == by_tag.end() || it->second.empty() ||
        it->second.front().seq != seq) {
      continue;  // stale index entry: drained earlier by try_recv_tag
    }
    Message message = std::move(it->second.front().msg);
    it->second.pop_front();
    --pending;
    return message;
  }
}

void Fabric::send(int src, int dst, Message message) {
  if (src < 0 || src >= ranks() || dst < 0 || dst >= ranks()) {
    throw InternalError("Fabric::send: rank out of range");
  }
  if (stopped()) {
    // Teardown path: surviving ranks' retransmit timers and reply sends
    // keep firing after an abort stops the fabric. Count and drop.
    boxes_[static_cast<std::size_t>(src)]->sends_after_stop.fetch_add(
        1, std::memory_order_relaxed);
    return;
  }
  deliver(src, dst, std::move(message));
}

void Fabric::deliver(int src, int dst, Message message) {
  message.src = src;
  count_send(src, message);
  enqueue_local(dst, std::move(message));
}

void Fabric::count_send(int src, const Message& message) {
  Mailbox& sender = *boxes_[static_cast<std::size_t>(src)];
  sender.messages_sent.fetch_add(1, std::memory_order_relaxed);
  sender.payload_doubles_sent.fetch_add(
      static_cast<std::int64_t>(message.payload_doubles()),
      std::memory_order_relaxed);
  sender.header_words_sent.fetch_add(
      static_cast<std::int64_t>(message.header.size()),
      std::memory_order_relaxed);
  if (message.block) {
    sender.zero_copy_messages.fetch_add(1, std::memory_order_relaxed);
    sender.zero_copy_doubles.fetch_add(
        static_cast<std::int64_t>(message.block->size()),
        std::memory_order_relaxed);
  }
}

void Fabric::count_serialized(int src, const Message& message) {
  Mailbox& sender = *boxes_[static_cast<std::size_t>(src)];
  sender.serialized_messages.fetch_add(1, std::memory_order_relaxed);
  if (message.block) {
    sender.serialized_doubles.fetch_add(
        static_cast<std::int64_t>(message.block->size()),
        std::memory_order_relaxed);
    // The block moved as bytes, not as a shared pointer: take back the
    // zero-copy credit count_send granted.
    sender.zero_copy_messages.fetch_sub(1, std::memory_order_relaxed);
    sender.zero_copy_doubles.fetch_sub(
        static_cast<std::int64_t>(message.block->size()),
        std::memory_order_relaxed);
  }
}

void Fabric::enqueue_local(int dst, Message message) {
  Mailbox& box = *boxes_[static_cast<std::size_t>(dst)];
  {
    std::lock_guard<std::mutex> lock(box.mutex);
    const int tag = message.tag;
    const std::uint64_t seq = box.next_seq++;
    box.by_tag[tag].push_back(TaggedMessage{seq, std::move(message)});
    box.fifo.emplace_back(tag, seq);
    ++box.pending;
  }
  // Each mailbox has a single consuming rank; waking one waiter suffices.
  box.cv.notify_one();
}

std::optional<Message> Fabric::try_recv(int rank) {
  Mailbox& box = *boxes_[static_cast<std::size_t>(rank)];
  std::lock_guard<std::mutex> lock(box.mutex);
  if (box.pending == 0) return std::nullopt;
  return box.pop_oldest_locked();
}

std::optional<Message> Fabric::try_recv_tag(int rank, int tag) {
  Mailbox& box = *boxes_[static_cast<std::size_t>(rank)];
  std::lock_guard<std::mutex> lock(box.mutex);
  auto it = box.by_tag.find(tag);
  if (it == box.by_tag.end() || it->second.empty()) return std::nullopt;
  Message message = std::move(it->second.front().msg);
  it->second.pop_front();
  --box.pending;
  // The (tag, seq) pair left in `fifo` goes stale; pop_oldest_locked
  // skips it when it reaches the front.
  return message;
}

bool Fabric::has_message(int rank) const {
  const Mailbox& box = *boxes_[static_cast<std::size_t>(rank)];
  std::lock_guard<std::mutex> lock(box.mutex);
  return box.pending > 0;
}

std::optional<Message> Fabric::recv(int rank) {
  Mailbox& box = *boxes_[static_cast<std::size_t>(rank)];
  std::unique_lock<std::mutex> lock(box.mutex);
  box.cv.wait(lock, [&] { return box.pending > 0 || stopped(); });
  if (box.pending == 0) return std::nullopt;
  return box.pop_oldest_locked();
}

std::optional<Message> Fabric::recv_for(int rank, int timeout_ms) {
  Mailbox& box = *boxes_[static_cast<std::size_t>(rank)];
  std::unique_lock<std::mutex> lock(box.mutex);
  box.cv.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                  [&] { return box.pending > 0 || stopped(); });
  if (box.pending == 0) return std::nullopt;
  return box.pop_oldest_locked();
}

void Fabric::barrier(int rank) {
  (void)rank;
  std::unique_lock<std::mutex> lock(barrier_mutex_);
  const int sense = barrier_sense_;
  if (++barrier_count_ == ranks()) {
    barrier_count_ = 0;
    barrier_sense_ ^= 1;
    barrier_cv_.notify_all();
  } else {
    barrier_cv_.wait(lock,
                     [&] { return barrier_sense_ != sense || stopped(); });
  }
}

void Fabric::stop() {
  stopped_.store(true, std::memory_order_release);
  // Notify under each mailbox lock: a receiver that observed the old
  // `stopped_` value inside its predicate is either still holding the
  // lock (we wait for it) or already waiting (the notify wakes it), so
  // no blocked recv/recv_for can miss the shutdown.
  for (auto& box : boxes_) {
    std::lock_guard<std::mutex> lock(box->mutex);
    box->cv.notify_all();
  }
  {
    std::lock_guard<std::mutex> lock(barrier_mutex_);
    barrier_cv_.notify_all();
  }
}

TrafficStats Fabric::stats(int rank) const {
  const Mailbox& box = *boxes_[static_cast<std::size_t>(rank)];
  TrafficStats stats;
  stats.messages_sent = box.messages_sent.load(std::memory_order_relaxed);
  stats.payload_doubles_sent =
      box.payload_doubles_sent.load(std::memory_order_relaxed);
  stats.header_words_sent =
      box.header_words_sent.load(std::memory_order_relaxed);
  stats.zero_copy_messages =
      box.zero_copy_messages.load(std::memory_order_relaxed);
  stats.zero_copy_doubles =
      box.zero_copy_doubles.load(std::memory_order_relaxed);
  stats.sends_after_stop =
      box.sends_after_stop.load(std::memory_order_relaxed);
  stats.blocks_screened =
      box.blocks_screened.load(std::memory_order_relaxed);
  stats.bytes_elided = box.bytes_elided.load(std::memory_order_relaxed);
  stats.serialized_messages =
      box.serialized_messages.load(std::memory_order_relaxed);
  stats.serialized_doubles =
      box.serialized_doubles.load(std::memory_order_relaxed);
  return stats;
}

TrafficStats Fabric::total_stats() const {
  TrafficStats total;
  for (int r = 0; r < ranks(); ++r) {
    const TrafficStats s = stats(r);
    total.messages_sent += s.messages_sent;
    total.payload_doubles_sent += s.payload_doubles_sent;
    total.header_words_sent += s.header_words_sent;
    total.zero_copy_messages += s.zero_copy_messages;
    total.zero_copy_doubles += s.zero_copy_doubles;
    total.sends_after_stop += s.sends_after_stop;
    total.blocks_screened += s.blocks_screened;
    total.bytes_elided += s.bytes_elided;
    total.serialized_messages += s.serialized_messages;
    total.serialized_doubles += s.serialized_doubles;
    total.reconnects += s.reconnects;
    total.frames_rejected += s.frames_rejected;
    total.peer_down_drops += s.peer_down_drops;
  }
  return total;
}

void Fabric::record_screened(int rank, std::int64_t doubles_elided) {
  Mailbox& box = *boxes_[static_cast<std::size_t>(rank)];
  box.blocks_screened.fetch_add(1, std::memory_order_relaxed);
  box.bytes_elided.fetch_add(
      doubles_elided * static_cast<std::int64_t>(sizeof(double)),
      std::memory_order_relaxed);
}

}  // namespace sia::msg
