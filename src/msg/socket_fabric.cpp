#include "msg/socket_fabric.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <utility>

#include "common/error.hpp"
#include "common/posix_io.hpp"

namespace sia::msg {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

// Checksum of a frame body, recomputed at the hub before a transit frame
// is forwarded so a corrupted stream quarantines its *source* connection
// instead of poisoning the destination spoke.
std::uint64_t fnv1a(const std::uint8_t* bytes, std::size_t count) {
  std::uint64_t hash = kFnvOffset;
  for (std::size_t i = 0; i < count; ++i) {
    hash ^= bytes[i];
    hash *= kFnvPrime;
  }
  return hash;
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

int make_unix_listener(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw Error("socket fabric: unix path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw Error("socket fabric: socket(): " + std::string(std::strerror(errno)));
  ::unlink(path.c_str());  // stale path from a previous run
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 64) < 0) {
    const std::string why = std::strerror(errno);
    close_quiet(fd);
    throw Error("socket fabric: cannot listen on unix:" + path + ": " + why);
  }
  return fd;
}

int make_tcp_listener(const std::string& host, int port, int* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw Error("socket fabric: socket(): " + std::string(std::strerror(errno)));
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (host.empty() || host == "0.0.0.0") {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
  } else if (::inet_pton(AF_INET, host == "localhost" ? "127.0.0.1" : host.c_str(),
                         &addr.sin_addr) != 1) {
    close_quiet(fd);
    throw Error("socket fabric: bad tcp host: " + host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 64) < 0) {
    const std::string why = std::strerror(errno);
    close_quiet(fd);
    throw Error("socket fabric: cannot listen on tcp:" + host + ":" +
                std::to_string(port) + ": " + why);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    *bound_port = static_cast<int>(ntohs(bound.sin_port));
  } else {
    *bound_port = port;
  }
  return fd;
}

// One connect attempt; -1 on failure with errno preserved.
int try_connect(const SocketAddress& addr) {
  if (!addr.tcp) {
    sockaddr_un sun{};
    sun.sun_family = AF_UNIX;
    if (addr.path.size() >= sizeof(sun.sun_path)) {
      errno = ENAMETOOLONG;
      return -1;
    }
    std::memcpy(sun.sun_path, addr.path.c_str(), addr.path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    if (retry_eintr([&] {
          return ::connect(fd, reinterpret_cast<sockaddr*>(&sun), sizeof(sun));
        }) < 0) {
      const int saved = errno;
      close_quiet(fd);
      errno = saved;
      return -1;
    }
    return fd;
  }
  sockaddr_in sin{};
  sin.sin_family = AF_INET;
  sin.sin_port = htons(static_cast<std::uint16_t>(addr.port));
  const std::string host =
      (addr.host.empty() || addr.host == "localhost") ? "127.0.0.1" : addr.host;
  if (::inet_pton(AF_INET, host.c_str(), &sin.sin_addr) != 1) {
    errno = EINVAL;
    return -1;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (retry_eintr([&] {
        return ::connect(fd, reinterpret_cast<sockaddr*>(&sin), sizeof(sin));
      }) < 0) {
    const int saved = errno;
    close_quiet(fd);
    errno = saved;
    return -1;
  }
  set_nodelay(fd);
  return fd;
}

}  // namespace

int connect_socket(const SocketAddress& addr) { return try_connect(addr); }

SocketAddress SocketAddress::parse(const std::string& text) {
  SocketAddress addr;
  if (text.rfind("unix:", 0) == 0) {
    addr.tcp = false;
    addr.path = text.substr(5);
    if (addr.path.empty()) {
      throw Error("socket fabric: empty unix socket path in '" + text + "'");
    }
    return addr;
  }
  if (text.rfind("tcp:", 0) == 0) {
    addr.tcp = true;
    const std::string rest = text.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon + 1 == rest.size()) {
      throw Error("socket fabric: expected tcp:<host>:<port>, got '" + text +
                  "'");
    }
    addr.host = rest.substr(0, colon);
    try {
      addr.port = std::stoi(rest.substr(colon + 1));
    } catch (const std::exception&) {
      addr.port = -1;
    }
    if (addr.port < 0 || addr.port > 65535) {
      throw Error("socket fabric: bad tcp port in '" + text + "'");
    }
    return addr;
  }
  throw Error("socket fabric: address must be unix:<path> or "
              "tcp:<host>:<port>, got '" + text + "'");
}

std::string SocketAddress::to_string() const {
  return tcp ? "tcp:" + host + ":" + std::to_string(port) : "unix:" + path;
}

SocketFabric::SocketFabric(int ranks, SocketOptions options)
    : Fabric(ranks), options_(std::move(options)) {
  ignore_sigpipe();
  switch (options_.role) {
    case SocketOptions::Role::kLoopback: {
      int sv[2] = {-1, -1};
      if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) < 0) {
        throw Error("socket fabric: socketpair(): " +
                    std::string(std::strerror(errno)));
      }
      spoke_fd_ = sv[0];
      loop_read_fd_ = sv[1];
      listen_address_ = "loopback";
      spoke_reader_ = std::thread([this] { spoke_reader_loop(); });
      spoke_writer_ = std::thread([this] { spoke_writer_loop(); });
      break;
    }
    case SocketOptions::Role::kHub: {
      const SocketAddress addr = SocketAddress::parse(options_.address);
      if (addr.tcp) {
        int port = 0;
        listen_fd_ = make_tcp_listener(addr.host, addr.port, &port);
        SocketAddress bound = addr;
        bound.port = port;
        if (bound.host.empty() || bound.host == "0.0.0.0") {
          bound.host = "127.0.0.1";  // loop-home address for local spawns
        }
        listen_address_ = bound.to_string();
      } else {
        listen_fd_ = make_unix_listener(addr.path);
        listen_address_ = addr.to_string();
      }
      conn_by_rank_.assign(static_cast<std::size_t>(ranks), nullptr);
      ever_registered_.assign(static_cast<std::size_t>(ranks), false);
      pending_frames_.resize(static_cast<std::size_t>(ranks));
      accept_thread_ = std::thread([this] { accept_loop(); });
      break;
    }
    case SocketOptions::Role::kSpoke: {
      SIA_CHECK(options_.local_rank > 0 && options_.local_rank < ranks,
                "spoke rank out of range");
      listen_address_ = options_.address;
      const int fd = connect_with_backoff(options_.connect_timeout_ms);
      if (fd < 0) {
        throw Error("socket fabric: rank " +
                    std::to_string(options_.local_rank) +
                    " could not connect to hub at " + options_.address +
                    " within " + std::to_string(options_.connect_timeout_ms) +
                    " ms");
      }
      std::vector<std::uint8_t> hello;
      encode_hello_frame(options_.local_rank, hello);
      if (write_full(fd, hello.data(), hello.size()) < 0) {
        close_quiet(fd);
        throw Error("socket fabric: hello to hub failed: " +
                    std::string(std::strerror(errno)));
      }
      spoke_fd_ = fd;
      spoke_reader_ = std::thread([this] { spoke_reader_loop(); });
      spoke_writer_ = std::thread([this] { spoke_writer_loop(); });
      break;
    }
  }
}

SocketFabric::~SocketFabric() {
  stop();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (spoke_reader_.joinable()) spoke_reader_.join();
  if (spoke_writer_.joinable()) spoke_writer_.join();
  // Accepted connections: their reader/writer threads observe stop() via
  // the shutdown() in stop() and exit; join them all before freeing.
  for (auto& conn : conns_) {
    if (conn->reader.joinable()) conn->reader.join();
    if (conn->writer.joinable()) conn->writer.join();
    if (conn->fd >= 0) close_quiet(conn->fd);
  }
  if (listen_fd_ >= 0) {
    close_quiet(listen_fd_);
    if (options_.role == SocketOptions::Role::kHub) {
      const SocketAddress addr = SocketAddress::parse(options_.address);
      if (!addr.tcp) ::unlink(addr.path.c_str());
    }
  }
  if (spoke_fd_ >= 0) close_quiet(spoke_fd_);
  if (loop_read_fd_ >= 0) close_quiet(loop_read_fd_);
}

void SocketFabric::deliver(int src, int dst, Message message) {
  message.src = src;
  count_send(src, message);
  const bool local =
      options_.role == SocketOptions::Role::kLoopback
          ? dst == src  // self-sends skip the wire even in loopback mode
          : is_local(dst);
  if (local) {
    enqueue_local(dst, std::move(message));
  } else {
    route_frame(src, message, dst);
  }
}

void SocketFabric::route_frame(int src, const Message& message, int dst) {
  count_serialized(src, message);
  std::vector<std::uint8_t> frame;
  encode_message_frame(message, dst, frame);
  if (options_.role == SocketOptions::Role::kHub) {
    Connection* conn = nullptr;
    {
      std::lock_guard<std::mutex> lock(conns_mutex_);
      conn = conn_by_rank_[static_cast<std::size_t>(dst)];
      if (conn == nullptr) {
        if (!ever_registered_[static_cast<std::size_t>(dst)] && !stopped()) {
          // The spoke process is still starting; park the frame until its
          // hello arrives.
          pending_frames_[static_cast<std::size_t>(dst)].push_back(
              std::move(frame));
        } else {
          peer_down_drops_.fetch_add(1, std::memory_order_relaxed);
        }
        return;
      }
    }
    enqueue_frame(*conn, std::move(frame));
    return;
  }
  // Spoke and loopback: everything goes out the single transport socket.
  {
    std::lock_guard<std::mutex> lock(spoke_mutex_);
    spoke_outbound_.push_back(std::move(frame));
  }
  spoke_cv_.notify_all();
}

void SocketFabric::enqueue_frame(Connection& conn,
                                 std::vector<std::uint8_t> frame) {
  {
    std::lock_guard<std::mutex> lock(conn.mutex);
    if (conn.down) {
      peer_down_drops_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    conn.outbound.push_back(std::move(frame));
  }
  conn.cv.notify_one();
}

void SocketFabric::writer_loop(Connection* conn) {
  for (;;) {
    std::vector<std::uint8_t> frame;
    {
      std::unique_lock<std::mutex> lock(conn->mutex);
      conn->cv.wait(lock, [&] {
        return !conn->outbound.empty() || conn->down || stopped();
      });
      if (conn->down || stopped()) {
        peer_down_drops_.fetch_add(
            static_cast<std::int64_t>(conn->outbound.size()),
            std::memory_order_relaxed);
        conn->outbound.clear();
        return;
      }
      frame = std::move(conn->outbound.front());
      conn->outbound.pop_front();
    }
    if (write_full(conn->fd, frame.data(), frame.size()) < 0) {
      // The hub never reconnects: the spoke owns reattachment and will
      // re-register through accept_loop. Frames queued meanwhile drop and
      // the reliable layer retransmits them to the fresh connection.
      mark_down(conn);
      return;
    }
  }
}

void SocketFabric::reader_loop(Connection* conn) {
  std::vector<std::uint8_t> frame;
  for (;;) {
    frame.assign(kFramePrologBytes, 0);
    ssize_t n = read_full(conn->fd, frame.data(), kFramePrologBytes);
    if (n != static_cast<ssize_t>(kFramePrologBytes)) break;  // EOF/error
    FrameProlog prolog;
    const DecodeStatus status = decode_prolog(frame.data(), &prolog);
    if (status != DecodeStatus::kOk) {
      quarantine(conn, status);
      return;
    }
    const std::size_t body_bytes = prolog.length + kFrameChecksumBytes;
    frame.resize(kFramePrologBytes + body_bytes);
    n = read_full(conn->fd, frame.data() + kFramePrologBytes, body_bytes);
    if (n != static_cast<ssize_t>(body_bytes)) break;  // truncated frame
    handle_frame(conn, prolog, std::move(frame));
    frame.clear();
    {
      std::lock_guard<std::mutex> lock(conn->mutex);
      if (conn->down) return;
    }
  }
  mark_down(conn);
}

void SocketFabric::handle_frame(Connection* conn, const FrameProlog& prolog,
                                std::vector<std::uint8_t> frame) {
  const std::uint8_t* body = frame.data() + kFramePrologBytes;
  if (prolog.kind == FrameKind::kHello) {
    DecodedFrame decoded;
    const DecodeStatus status = decode_frame_body(prolog, body, &decoded);
    if (status != DecodeStatus::kOk || decoded.hello_rank <= 0 ||
        decoded.hello_rank >= ranks()) {
      quarantine(conn, status == DecodeStatus::kOk ? DecodeStatus::kMalformed
                                                   : status);
      return;
    }
    register_peer(conn, decoded.hello_rank);
    return;
  }
  if (prolog.kind != FrameKind::kMessage) {
    quarantine(conn, DecodeStatus::kMalformed);
    return;
  }
  if (prolog.length < sizeof(std::int32_t)) {
    quarantine(conn, DecodeStatus::kMalformed);
    return;
  }
  std::int32_t dst = -1;
  std::memcpy(&dst, body, sizeof(dst));
  if (dst < 0 || dst >= ranks()) {
    quarantine(conn, DecodeStatus::kMalformed);
    return;
  }
  if (is_local(dst)) {
    DecodedFrame decoded;
    const DecodeStatus status = decode_frame_body(prolog, body, &decoded);
    if (status != DecodeStatus::kOk) {
      quarantine(conn, status);
      return;
    }
    enqueue_local(dst, std::move(decoded.message));
    return;
  }
  // Transit frame (spoke -> hub -> spoke). Verify the checksum before
  // forwarding so corruption is pinned on the connection it arrived from.
  std::uint64_t stored = 0;
  std::memcpy(&stored, body + prolog.length, sizeof(stored));
  if (fnv1a(body, prolog.length) != stored) {
    quarantine(conn, DecodeStatus::kBadChecksum);
    return;
  }
  Connection* next = nullptr;
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    next = conn_by_rank_[static_cast<std::size_t>(dst)];
    if (next == nullptr) {
      if (!ever_registered_[static_cast<std::size_t>(dst)] && !stopped()) {
        pending_frames_[static_cast<std::size_t>(dst)].push_back(
            std::move(frame));
      } else {
        peer_down_drops_.fetch_add(1, std::memory_order_relaxed);
      }
      return;
    }
  }
  enqueue_frame(*next, std::move(frame));
}

void SocketFabric::quarantine(Connection* conn, DecodeStatus status) {
  frames_rejected_.fetch_add(1, std::memory_order_relaxed);
  (void)status;
  mark_down(conn);
}

void SocketFabric::mark_down(Connection* conn) {
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    if (conn->down) return;
    conn->down = true;
  }
  conn->cv.notify_all();
  ::shutdown(conn->fd, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    const int rank = conn->peer_rank;
    if (rank >= 0 &&
        conn_by_rank_[static_cast<std::size_t>(rank)] == conn) {
      conn_by_rank_[static_cast<std::size_t>(rank)] = nullptr;
    }
  }
  conns_cv_.notify_all();
}

void SocketFabric::fatal(const std::string& what) {
  if (options_.on_fatal) {
    options_.on_fatal(what);
  } else {
    stop();
  }
}

void SocketFabric::accept_loop() {
  const bool tcp = SocketAddress::parse(options_.address).tcp;
  for (;;) {
    const int fd = retry_eintr([&] { return ::accept(listen_fd_, nullptr, nullptr); });
    if (fd < 0) {
      if (stopped() || errno == EBADF || errno == EINVAL) return;
      continue;  // transient (EMFILE, ECONNABORTED): keep accepting
    }
    if (stopped()) {
      close_quiet(fd);
      return;
    }
    if (tcp) set_nodelay(fd);
    Connection* conn = nullptr;
    {
      std::lock_guard<std::mutex> lock(conns_mutex_);
      conns_.push_back(std::make_unique<Connection>());
      conn = conns_.back().get();
      conn->fd = fd;
      conn->reader = std::thread([this, conn] { reader_loop(conn); });
      conn->writer = std::thread([this, conn] { writer_loop(conn); });
    }
  }
}

void SocketFabric::register_peer(Connection* conn, int rank) {
  Connection* old = nullptr;
  std::deque<std::vector<std::uint8_t>> flush;
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    old = conn_by_rank_[static_cast<std::size_t>(rank)];
    conn_by_rank_[static_cast<std::size_t>(rank)] = conn;
    ever_registered_[static_cast<std::size_t>(rank)] = true;
    conn->peer_rank = rank;
    flush.swap(pending_frames_[static_cast<std::size_t>(rank)]);
  }
  conns_cv_.notify_all();
  // A re-registration (respawned or reconnected process) supersedes the
  // stale connection; tear the old one down so its threads exit.
  if (old != nullptr && old != conn) mark_down(old);
  for (auto& frame : flush) {
    enqueue_frame(*conn, std::move(frame));
  }
}

int SocketFabric::connect_with_backoff(int deadline_ms) {
  const SocketAddress addr = SocketAddress::parse(options_.address);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(deadline_ms);
  auto delay = std::chrono::milliseconds(1);
  for (;;) {
    if (stopped()) return -1;
    const int fd = try_connect(addr);
    if (fd >= 0) return fd;
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return -1;
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    std::this_thread::sleep_for(std::min(delay, remaining));
    delay = std::min(delay * 2, std::chrono::milliseconds(100));
  }
}

bool SocketFabric::reconnect(std::uint64_t gen) {
  std::unique_lock<std::mutex> lock(spoke_mutex_);
  for (;;) {
    if (stopped()) return false;
    if (conn_gen_ != gen) return true;  // the other thread already did it
    if (!reconnecting_) break;
    spoke_cv_.wait(lock);
  }
  reconnecting_ = true;
  const int old_fd = spoke_fd_;
  const int old_read = loop_read_fd_;
  spoke_fd_ = -1;
  loop_read_fd_ = -1;
  lock.unlock();

  if (old_fd >= 0) close_quiet(old_fd);
  if (old_read >= 0) close_quiet(old_read);
  int fd = -1;
  int read_fd = -1;
  bool ok = false;
  if (options_.role == SocketOptions::Role::kLoopback) {
    int sv[2] = {-1, -1};
    ok = ::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) == 0;
    if (ok) {
      fd = sv[0];
      read_fd = sv[1];
    }
  } else {
    fd = connect_with_backoff(options_.connect_timeout_ms);
    ok = fd >= 0;
    if (ok) {
      // Re-register before anything else so the hub maps the fresh
      // connection to this rank again.
      std::vector<std::uint8_t> hello;
      encode_hello_frame(options_.local_rank, hello);
      ok = write_full(fd, hello.data(), hello.size()) >= 0;
    }
  }

  lock.lock();
  reconnecting_ = false;
  if (!ok || stopped()) {
    if (fd >= 0) close_quiet(fd);
    if (read_fd >= 0) close_quiet(read_fd);
    lock.unlock();
    spoke_cv_.notify_all();
    if (!stopped()) {
      fatal("socket fabric: rank " + std::to_string(options_.local_rank) +
            " lost its hub connection and could not reconnect to " +
            options_.address + " within " +
            std::to_string(options_.connect_timeout_ms) + " ms");
    }
    return false;
  }
  spoke_fd_ = fd;
  loop_read_fd_ = read_fd;
  ++conn_gen_;
  reconnects_.fetch_add(1, std::memory_order_relaxed);
  lock.unlock();
  spoke_cv_.notify_all();
  return true;
}

void SocketFabric::spoke_reader_loop() {
  std::vector<std::uint8_t> buffer;
  for (;;) {
    int fd = -1;
    std::uint64_t gen = 0;
    {
      std::unique_lock<std::mutex> lock(spoke_mutex_);
      spoke_cv_.wait(lock, [&] {
        return stopped() || (!reconnecting_ &&
                             (options_.role == SocketOptions::Role::kLoopback
                                  ? loop_read_fd_ >= 0
                                  : spoke_fd_ >= 0));
      });
      if (stopped()) return;
      fd = options_.role == SocketOptions::Role::kLoopback ? loop_read_fd_
                                                           : spoke_fd_;
      gen = conn_gen_;
    }

    bool broken = false;
    for (;;) {
      buffer.assign(kFramePrologBytes, 0);
      ssize_t n = read_full(fd, buffer.data(), kFramePrologBytes);
      if (n != static_cast<ssize_t>(kFramePrologBytes)) {
        broken = true;
        break;
      }
      FrameProlog prolog;
      DecodeStatus status = decode_prolog(buffer.data(), &prolog);
      if (status == DecodeStatus::kOk) {
        const std::size_t body_bytes = prolog.length + kFrameChecksumBytes;
        buffer.resize(body_bytes);
        n = read_full(fd, buffer.data(), body_bytes);
        if (n != static_cast<ssize_t>(body_bytes)) {
          broken = true;
          break;
        }
        DecodedFrame decoded;
        status = decode_frame_body(prolog, buffer.data(), &decoded);
        if (status == DecodeStatus::kOk &&
            decoded.kind == FrameKind::kMessage && decoded.dst >= 0 &&
            decoded.dst < ranks() && is_local(decoded.dst)) {
          enqueue_local(decoded.dst, std::move(decoded.message));
          continue;
        }
      }
      // Garbage on a stream transport cannot be resynchronized: count
      // the rejection and treat the connection as lost.
      frames_rejected_.fetch_add(1, std::memory_order_relaxed);
      broken = true;
      break;
    }
    if (broken) {
      if (stopped()) return;
      if (!reconnect(gen)) return;
    }
  }
}

void SocketFabric::spoke_writer_loop() {
  for (;;) {
    std::vector<std::uint8_t> frame;
    int fd = -1;
    std::uint64_t gen = 0;
    {
      std::unique_lock<std::mutex> lock(spoke_mutex_);
      spoke_cv_.wait(lock, [&] {
        return stopped() ||
               (!spoke_outbound_.empty() && !reconnecting_ && spoke_fd_ >= 0);
      });
      if (stopped()) return;
      frame = std::move(spoke_outbound_.front());
      spoke_outbound_.pop_front();
      fd = spoke_fd_;
      gen = conn_gen_;
    }
    if (write_full(fd, frame.data(), frame.size()) < 0) {
      if (stopped()) return;
      {
        // Put the frame back so the fresh connection retries it; the far
        // side's dedup (reliable layer) absorbs the double-arrival case
        // where the reset raced the last write.
        std::lock_guard<std::mutex> lock(spoke_mutex_);
        spoke_outbound_.push_front(std::move(frame));
      }
      if (!reconnect(gen)) return;
    }
  }
}

void SocketFabric::stop() {
  Fabric::stop();
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (auto& conn : conns_) {
      {
        std::lock_guard<std::mutex> conn_lock(conn->mutex);
        conn->down = true;
      }
      conn->cv.notify_all();
      ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  conns_cv_.notify_all();
  {
    std::lock_guard<std::mutex> lock(spoke_mutex_);
    if (spoke_fd_ >= 0) ::shutdown(spoke_fd_, SHUT_RDWR);
    if (loop_read_fd_ >= 0) ::shutdown(loop_read_fd_, SHUT_RDWR);
  }
  spoke_cv_.notify_all();
}

TrafficStats SocketFabric::total_stats() const {
  TrafficStats total = Fabric::total_stats();
  total.reconnects += reconnects_.load(std::memory_order_relaxed);
  total.frames_rejected += frames_rejected_.load(std::memory_order_relaxed);
  total.peer_down_drops += peer_down_drops_.load(std::memory_order_relaxed);
  return total;
}

bool SocketFabric::wait_for_peers(int timeout_ms) {
  std::unique_lock<std::mutex> lock(conns_mutex_);
  const auto all_registered = [&] {
    for (int rank = 1; rank < ranks(); ++rank) {
      if (conn_by_rank_[static_cast<std::size_t>(rank)] == nullptr) {
        return false;
      }
    }
    return true;
  };
  conns_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                     [&] { return all_registered() || stopped(); });
  return all_registered();
}

bool SocketFabric::peer_connected(int rank) const {
  std::lock_guard<std::mutex> lock(conns_mutex_);
  return rank > 0 && rank < ranks() &&
         conn_by_rank_[static_cast<std::size_t>(rank)] != nullptr;
}

void SocketFabric::disconnect(int rank) {
  Connection* conn = nullptr;
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    if (rank > 0 && rank < ranks()) {
      conn = conn_by_rank_[static_cast<std::size_t>(rank)];
    }
  }
  if (conn != nullptr) mark_down(conn);
}

void SocketFabric::debug_break_connection() {
  std::lock_guard<std::mutex> lock(spoke_mutex_);
  if (spoke_fd_ >= 0) ::shutdown(spoke_fd_, SHUT_RDWR);
  if (loop_read_fd_ >= 0) ::shutdown(loop_read_fd_, SHUT_RDWR);
}

}  // namespace sia::msg
