#include "msg/frame.hpp"

#include <array>
#include <cstring>

namespace sia::msg {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a(const std::uint8_t* bytes, std::size_t count) {
  std::uint64_t hash = kFnvOffset;
  for (std::size_t i = 0; i < count; ++i) {
    hash ^= bytes[i];
    hash *= kFnvPrime;
  }
  return hash;
}

// Little-endian scalar append/read. The runtime only targets
// little-endian hosts (x86/arm64); memcpy keeps it alignment-safe.
template <typename T>
void put(std::vector<std::uint8_t>& out, T value) {
  const std::size_t at = out.size();
  out.resize(at + sizeof(T));
  std::memcpy(out.data() + at, &value, sizeof(T));
}

template <typename T>
bool get(const std::uint8_t* bytes, std::size_t size, std::size_t* cursor,
         T* value) {
  if (*cursor + sizeof(T) > size) return false;
  std::memcpy(value, bytes + *cursor, sizeof(T));
  *cursor += sizeof(T);
  return true;
}

void put_prolog(std::vector<std::uint8_t>& out, FrameKind kind,
                std::uint32_t length) {
  put<std::uint32_t>(out, kFrameMagic);
  put<std::uint32_t>(out, length);
  put<std::uint16_t>(out, kFrameVersion);
  put<std::uint16_t>(out, static_cast<std::uint16_t>(kind));
  put<std::uint32_t>(out, 0);  // reserved
}

}  // namespace

const char* decode_status_name(DecodeStatus status) {
  switch (status) {
    case DecodeStatus::kOk: return "ok";
    case DecodeStatus::kBadMagic: return "bad magic";
    case DecodeStatus::kBadVersion: return "bad version";
    case DecodeStatus::kBadLength: return "bad length";
    case DecodeStatus::kBadChecksum: return "bad checksum";
    case DecodeStatus::kMalformed: return "malformed payload";
  }
  return "unknown";
}

void encode_message_frame(const Message& message, int dst,
                          std::vector<std::uint8_t>& out) {
  const std::size_t frame_start = out.size();
  put_prolog(out, FrameKind::kMessage, 0);  // length patched below
  const std::size_t payload_start = out.size();

  put<std::int32_t>(out, dst);
  put<std::int32_t>(out, message.src);
  put<std::int32_t>(out, message.tag);
  put<std::uint64_t>(out, message.seq);
  put<std::uint64_t>(out, message.ack);
  put<std::uint32_t>(out, static_cast<std::uint32_t>(message.header.size()));
  put<std::uint32_t>(out, static_cast<std::uint32_t>(message.data.size()));
  put<std::uint32_t>(out, message.block ? 1u : 0u);
  const int rank = message.block ? message.block->shape().rank() : 0;
  put<std::uint32_t>(out, static_cast<std::uint32_t>(rank));
  for (int d = 0; d < rank; ++d) {
    put<std::int32_t>(out, message.block->shape().extent(d));
  }
  for (const std::int64_t word : message.header) {
    put<std::int64_t>(out, word);
  }
  auto put_doubles = [&out](const double* values, std::size_t count) {
    const std::size_t at = out.size();
    out.resize(at + count * sizeof(double));
    std::memcpy(out.data() + at, values, count * sizeof(double));
  };
  put_doubles(message.data.data(), message.data.size());
  if (message.block) {
    // The zero-copy downgrade: the one place the block body is copied.
    put_doubles(message.block->data().data(), message.block->size());
  }

  const std::uint32_t length =
      static_cast<std::uint32_t>(out.size() - payload_start);
  std::memcpy(out.data() + frame_start + 4, &length, sizeof(length));
  put<std::uint64_t>(out, fnv1a(out.data() + payload_start, length));
}

void encode_hello_frame(int rank, std::vector<std::uint8_t>& out) {
  put_prolog(out, FrameKind::kHello, sizeof(std::int32_t));
  const std::size_t payload_start = out.size();
  put<std::int32_t>(out, rank);
  put<std::uint64_t>(
      out, fnv1a(out.data() + payload_start, sizeof(std::int32_t)));
}

DecodeStatus decode_prolog(const std::uint8_t* bytes, FrameProlog* prolog) {
  std::size_t cursor = 0;
  std::uint16_t kind = 0;
  std::uint32_t reserved = 0;
  get(bytes, kFramePrologBytes, &cursor, &prolog->magic);
  get(bytes, kFramePrologBytes, &cursor, &prolog->length);
  get(bytes, kFramePrologBytes, &cursor, &prolog->version);
  get(bytes, kFramePrologBytes, &cursor, &kind);
  get(bytes, kFramePrologBytes, &cursor, &reserved);
  prolog->kind = static_cast<FrameKind>(kind);
  if (prolog->magic != kFrameMagic) return DecodeStatus::kBadMagic;
  if (prolog->version != kFrameVersion) return DecodeStatus::kBadVersion;
  if (prolog->length > kFrameMaxPayload) return DecodeStatus::kBadLength;
  return DecodeStatus::kOk;
}

DecodeStatus decode_frame_body(const FrameProlog& prolog,
                               const std::uint8_t* body,
                               DecodedFrame* out) {
  const std::size_t length = prolog.length;
  std::uint64_t stored_checksum = 0;
  std::memcpy(&stored_checksum, body + length, sizeof(stored_checksum));
  if (fnv1a(body, length) != stored_checksum) {
    return DecodeStatus::kBadChecksum;
  }

  out->kind = prolog.kind;
  std::size_t cursor = 0;
  if (prolog.kind == FrameKind::kHello) {
    std::int32_t rank = -1;
    if (!get(body, length, &cursor, &rank) || cursor != length) {
      return DecodeStatus::kMalformed;
    }
    out->hello_rank = rank;
    return DecodeStatus::kOk;
  }
  if (prolog.kind != FrameKind::kMessage) return DecodeStatus::kMalformed;

  std::int32_t dst = -1, src = -1, tag = 0;
  std::uint32_t header_count = 0, data_count = 0, has_block = 0,
                block_rank = 0;
  Message& message = out->message;
  if (!get(body, length, &cursor, &dst) ||
      !get(body, length, &cursor, &src) ||
      !get(body, length, &cursor, &tag) ||
      !get(body, length, &cursor, &message.seq) ||
      !get(body, length, &cursor, &message.ack) ||
      !get(body, length, &cursor, &header_count) ||
      !get(body, length, &cursor, &data_count) ||
      !get(body, length, &cursor, &has_block) ||
      !get(body, length, &cursor, &block_rank)) {
    return DecodeStatus::kMalformed;
  }
  if (has_block > 1 || block_rank > blas::kMaxRank) {
    return DecodeStatus::kMalformed;
  }
  std::array<int, blas::kMaxRank> extents{};
  std::size_t block_elements = has_block ? 1 : 0;
  for (std::uint32_t d = 0; d < block_rank; ++d) {
    std::int32_t extent = 0;
    if (!get(body, length, &cursor, &extent) || extent <= 0) {
      return DecodeStatus::kMalformed;
    }
    extents[d] = extent;
    block_elements *= static_cast<std::size_t>(extent);
  }
  // Validate the remaining size arithmetic before allocating anything.
  const std::size_t want = cursor + header_count * sizeof(std::int64_t) +
                           (data_count + block_elements) * sizeof(double);
  if (want != length) return DecodeStatus::kMalformed;

  out->dst = dst;
  message.src = src;
  message.tag = tag;
  message.header.resize(header_count);
  for (std::uint32_t i = 0; i < header_count; ++i) {
    get(body, length, &cursor, &message.header[i]);
  }
  message.data.resize(data_count);
  if (data_count > 0) {
    std::memcpy(message.data.data(), body + cursor,
                data_count * sizeof(double));
    cursor += data_count * sizeof(double);
  }
  if (has_block) {
    BlockShape shape(
        std::span<const int>(extents.data(), block_rank));
    auto block = std::make_shared<Block>(shape);
    std::memcpy(block->data().data(), body + cursor,
                block_elements * sizeof(double));
    cursor += block_elements * sizeof(double);
    message.block = std::move(block);
  } else {
    message.block.reset();
  }
  return DecodeStatus::kOk;
}

DecodeStatus decode_frame(const std::vector<std::uint8_t>& bytes,
                          DecodedFrame* out) {
  if (bytes.size() < kFramePrologBytes) return DecodeStatus::kMalformed;
  FrameProlog prolog;
  const DecodeStatus status = decode_prolog(bytes.data(), &prolog);
  if (status != DecodeStatus::kOk) return status;
  if (bytes.size() !=
      kFramePrologBytes + prolog.length + kFrameChecksumBytes) {
    return DecodeStatus::kMalformed;
  }
  return decode_frame_body(prolog, bytes.data() + kFramePrologBytes, out);
}

}  // namespace sia::msg
