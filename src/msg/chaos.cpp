#include "msg/chaos.hpp"

#include "common/error.hpp"
#include "common/rng.hpp"
#include "msg/tags.hpp"

namespace sia::msg {

namespace {
// Salts separating the independent fault draws for one message.
constexpr std::uint64_t kSaltDrop = 0x6472u;
constexpr std::uint64_t kSaltDup = 0x6475u;
constexpr std::uint64_t kSaltReorder = 0x726fu;
constexpr std::uint64_t kSaltJitter = 0x6a69u;
// Reorder is realized as a short extra delay so later same-tag messages
// overtake the victim; long enough to reliably lose a race with an
// immediate follow-up send, short enough not to trip retransmit timers.
constexpr int kReorderDelayMs = 2;
}  // namespace

ChaosFabric::ChaosFabric(std::unique_ptr<Fabric> base, const FaultPlan& plan)
    : Fabric(base->ranks()),
      base_(std::move(base)),
      plan_(plan),
      sent_counter_(static_cast<std::size_t>(ranks())),
      kill_counter_(static_cast<std::size_t>(ranks())),
      killed_(static_cast<std::size_t>(ranks())) {
  for (int r = 0; r < ranks(); ++r) {
    sent_counter_[static_cast<std::size_t>(r)].store(0);
    kill_counter_[static_cast<std::size_t>(r)].store(0);
    killed_[static_cast<std::size_t>(r)].store(false);
  }
  delay_thread_ = std::thread([this] { pump_delayed(); });
}

ChaosFabric::ChaosFabric(int ranks, const FaultPlan& plan)
    : ChaosFabric(std::make_unique<Fabric>(ranks), plan) {}

ChaosFabric::~ChaosFabric() {
  {
    std::lock_guard<std::mutex> lock(delay_mutex_);
    delay_quit_ = true;
  }
  delay_cv_.notify_all();
  if (delay_thread_.joinable()) delay_thread_.join();
}

bool ChaosFabric::protected_tag(int tag) {
  switch (tag) {
    case kBlockGetRequest:
    case kBlockGetReply:
    case kBlockPut:
    case kBlockPutAcc:
    case kServedPrepare:
    case kServedPrepareAcc:
    case kServedRequest:
    case kServedReply:
    case kProtoAck:
      return true;
    default:
      return false;
  }
}

double ChaosFabric::draw(int src, std::uint64_t counter,
                         std::uint64_t salt) const {
  std::uint64_t key = plan_.seed;
  key = hash_combine(key, static_cast<std::uint64_t>(src));
  key = hash_combine(key, counter);
  key = hash_combine(key, salt);
  return unit_double(key);
}

void ChaosFabric::send(int src, int dst, Message message) {
  if (src < 0 || src >= ranks() || dst < 0 || dst >= ranks()) {
    throw InternalError("ChaosFabric::send: rank out of range");
  }

  // Scheduled kill: the rank goes dark at its Nth message — that send and
  // everything after it (data and control alike) is swallowed. The latch
  // makes the kill one-shot: after revive() the counter is past the
  // trigger forever, and a respawned rank must not die again on its first
  // send.
  if (src == plan_.kill_rank &&
      !kill_fired_.load(std::memory_order_acquire)) {
    const std::uint64_t nth =
        kill_counter_[static_cast<std::size_t>(src)].fetch_add(
            1, std::memory_order_relaxed) +
        1;
    if (nth >= static_cast<std::uint64_t>(plan_.kill_at_msg) &&
        !kill_fired_.exchange(true, std::memory_order_acq_rel)) {
      killed_[static_cast<std::size_t>(src)].store(
          true, std::memory_order_release);
      // In a spawned rank the hook turns the simulated death into a real
      // one (raise SIGKILL); it does not return in that case.
      if (kill_hook_) kill_hook_(src);
    }
  }
  if (killed(src) || killed(dst)) {
    kill_swallowed_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  if (!protected_tag(message.tag)) {
    base_->send(src, dst, std::move(message));
    return;
  }

  const std::uint64_t n =
      sent_counter_[static_cast<std::size_t>(src)].fetch_add(
          1, std::memory_order_relaxed);

  if (plan_.drop > 0.0 && draw(src, n, kSaltDrop) < plan_.drop) {
    drops_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  const bool duplicate =
      plan_.dup > 0.0 && draw(src, n, kSaltDup) < plan_.dup;
  const bool reorder =
      plan_.reorder > 0.0 && draw(src, n, kSaltReorder) < plan_.reorder;

  int delay_ms = plan_.delay_ms;
  if (plan_.delay_jitter_ms > 0) {
    delay_ms += static_cast<int>(draw(src, n, kSaltJitter) *
                                 (plan_.delay_jitter_ms + 1));
  }
  if (reorder) {
    reorders_.fetch_add(1, std::memory_order_relaxed);
    delay_ms += kReorderDelayMs;
  }

  Message copy;
  if (duplicate) copy = message;  // shares the BlockPtr; receivers dedup

  if (delay_ms > 0) {
    delays_.fetch_add(1, std::memory_order_relaxed);
    enqueue_delayed(src, dst, std::move(message), delay_ms);
  } else {
    base_->send(src, dst, std::move(message));
  }
  if (duplicate) {
    dups_.fetch_add(1, std::memory_order_relaxed);
    if (delay_ms > 0) {
      enqueue_delayed(src, dst, std::move(copy), delay_ms);
    } else {
      base_->send(src, dst, std::move(copy));
    }
  }
}

std::optional<Message> ChaosFabric::try_recv(int rank) {
  if (killed(rank)) return std::nullopt;
  return base_->try_recv(rank);
}

std::optional<Message> ChaosFabric::try_recv_tag(int rank, int tag) {
  if (killed(rank)) return std::nullopt;
  return base_->try_recv_tag(rank, tag);
}

bool ChaosFabric::has_message(int rank) const {
  if (killed(rank)) return false;
  return base_->has_message(rank);
}

std::optional<Message> ChaosFabric::recv(int rank) {
  if (killed(rank)) return std::nullopt;
  return base_->recv(rank);
}

std::optional<Message> ChaosFabric::recv_for(int rank, int timeout_ms) {
  if (killed(rank)) {
    // A dead rank's thread must not busy-spin while it waits for the
    // watchdog (or the respawn) to notice; sleep out the timeout.
    std::this_thread::sleep_for(std::chrono::milliseconds(timeout_ms));
    return std::nullopt;
  }
  return base_->recv_for(rank, timeout_ms);
}

void ChaosFabric::barrier(int rank) { base_->barrier(rank); }

void ChaosFabric::deliver(int src, int dst, Message message) {
  base_->deliver(src, dst, std::move(message));
}

TrafficStats ChaosFabric::stats(int rank) const { return base_->stats(rank); }

TrafficStats ChaosFabric::total_stats() const {
  return base_->total_stats();
}

void ChaosFabric::record_screened(int rank, std::int64_t doubles_elided) {
  base_->record_screened(rank, doubles_elided);
}

void ChaosFabric::revive(int rank) {
  killed_[static_cast<std::size_t>(rank)].store(false,
                                                std::memory_order_release);
  base_->revive(rank);
}

void ChaosFabric::stop() {
  // Set this decorator's own stop flag first (killed ranks' recv paths
  // consult it), then stop the transport underneath, then wake the pump.
  Fabric::stop();
  base_->stop();
  delay_cv_.notify_all();
}

void ChaosFabric::enqueue_delayed(int src, int dst, Message message,
                                  int delay_ms) {
  {
    std::lock_guard<std::mutex> lock(delay_mutex_);
    delayed_.push(Delayed{std::chrono::steady_clock::now() +
                              std::chrono::milliseconds(delay_ms),
                          delay_order_++, src, dst, std::move(message)});
  }
  delay_cv_.notify_all();
}

void ChaosFabric::pump_delayed() {
  std::unique_lock<std::mutex> lock(delay_mutex_);
  for (;;) {
    if (delay_quit_) return;
    if (delayed_.empty()) {
      delay_cv_.wait(lock,
                     [&] { return delay_quit_ || !delayed_.empty(); });
      continue;
    }
    const auto due = delayed_.top().due;
    const auto now = std::chrono::steady_clock::now();
    if (now < due) {
      delay_cv_.wait_until(lock, due);
      continue;
    }
    Delayed item = std::move(const_cast<Delayed&>(delayed_.top()));
    delayed_.pop();
    lock.unlock();
    // Re-check darkness and stop at delivery time: the destination may
    // have died (or the run aborted) while the message sat in the heap.
    if (!stopped() && !killed(item.src) && !killed(item.dst)) {
      deliver(item.src, item.dst, std::move(item.msg));
    }
    lock.lock();
  }
}

ChaosStats ChaosFabric::chaos_stats() const {
  ChaosStats stats;
  stats.drops = drops_.load(std::memory_order_relaxed);
  stats.dups = dups_.load(std::memory_order_relaxed);
  stats.delays = delays_.load(std::memory_order_relaxed);
  stats.reorders = reorders_.load(std::memory_order_relaxed);
  stats.kill_swallowed = kill_swallowed_.load(std::memory_order_relaxed);
  return stats;
}

void DiskFaultInjector::check(const std::string& what) {
  if (kind_ == 0) return;
  const long nth = op_counter_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (nth != at_op_) return;
  injected_.fetch_add(1, std::memory_order_relaxed);
  switch (kind_) {
    case 1:
      throw RuntimeError("injected disk fault: EIO during " + what);
    case 2:
      throw RuntimeError("injected disk fault: ENOSPC during " + what);
    case 3:
      throw RuntimeError("injected disk fault: short write during " + what);
    default:
      return;
  }
}

}  // namespace sia::msg
