// Out-of-process message fabric: the same Fabric contract over sockets.
//
// The paper's SIP is an MPI program whose master, workers, and I/O
// servers are separate OS processes; SocketFabric gives this runtime the
// same property. Ranks that live in this process use the inherited
// in-process mailboxes (tag FIFOs, zero-copy BlockPtr payloads,
// condition-variable receives) untouched; messages for ranks in other
// processes are serialized into length-prefixed checksummed frames
// (msg/frame.hpp) and carried over UNIX-domain or TCP sockets. The
// topology is a star: the hub (the rank-0/master process) listens, every
// spoke process connects and registers its rank, and spoke-to-spoke
// traffic transits the hub, which preserves per-(src,dst) FIFO order —
// the same guarantee the thread fabric gives.
//
// Robustness is the design center, not an afterthought:
//   * every syscall goes through the EINTR-safe wrappers in
//     common/posix_io.hpp, with SIGPIPE suppressed process-wide;
//   * connect retries with exponential backoff under a deadline, so
//     spokes may start before the hub finishes listening;
//   * a frame that fails its magic, version, length, or checksum check
//     quarantines the connection — the mailbox never sees bytes the
//     codec did not vouch for;
//   * a dropped connection triggers transparent reconnect (counted in
//     TrafficStats::reconnects); frames lost in the reset are recovered
//     by the PR-4 reliable layer above (sender retransmit + receiver
//     dedup keep put+=/prepare+= exactly-once across a TCP reset);
//   * a peer that dies for good (kill -9) makes sends to it counted
//     drops, which is exactly the darkness the master's heartbeat
//     watchdog and the retry-exhaustion diagnostics were built for.
//
// Zero-copy degrades gracefully: a BlockPtr payload crossing a process
// boundary is serialized exactly once at the socket boundary
// (TrafficStats::serialized_* count the downgrade); in-process
// destinations keep the shared-pointer fast path.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "msg/fabric.hpp"
#include "msg/frame.hpp"

namespace sia::msg {

struct SocketOptions {
  enum class Role {
    // Single process hosting every rank, but all cross-rank messages
    // still framed over a real socketpair: the transport-parity test
    // mode (SipConfig::socket_fabric) and the socket-overhead bench.
    kLoopback,
    // The master process: listens on `address`, accepts spoke
    // registrations, routes transit frames. Hosts rank 0.
    kHub,
    // A worker/server process hosting exactly `local_rank`; connects to
    // the hub at `address`.
    kSpoke,
  };

  Role role = Role::kLoopback;
  // Hub: listen address; spoke: hub address. Formats: "unix:<path>" or
  // "tcp:<host>:<port>" (hub port 0 = ephemeral; see listen_address()).
  std::string address;
  int local_rank = -1;  // spoke only
  // Connect/reconnect give up after this long (exponential backoff from
  // 1 ms capped at 100 ms between attempts).
  int connect_timeout_ms = 10000;
  // Called from a transport thread when the fabric is irrecoverably cut
  // off (reconnect deadline exhausted). The launch wires this to
  // SipShared::raise_abort so the rank aborts with a diagnosis instead
  // of hanging. May be empty: then the fabric just stops.
  std::function<void(const std::string&)> on_fatal;
};

class SocketFabric : public Fabric {
 public:
  SocketFabric(int ranks, SocketOptions options);
  ~SocketFabric() override;

  void deliver(int src, int dst, Message message) override;
  void stop() override;
  TrafficStats total_stats() const override;

  // Hub: the bound listen address with any ephemeral TCP port resolved
  // ("tcp:127.0.0.1:41873"), suitable for spawning spokes.
  const std::string& listen_address() const { return listen_address_; }

  // Hub: blocks until every rank in [1, ranks) has registered, the
  // timeout elapses, or the fabric stops. True when all are registered.
  bool wait_for_peers(int timeout_ms);

  // Hub: true while `rank`'s connection is registered and not torn down.
  bool peer_connected(int rank) const;

  // Hub: drops `rank`'s connection (respawn preparation: the stale
  // socket of a killed process must not shadow the fresh one).
  void disconnect(int rank);

  // Spoke/loopback test hook: hard-resets the transport socket as a peer
  // crash would, forcing the reconnect path mid-stream.
  void debug_break_connection();

  bool is_local(int rank) const {
    return options_.role == SocketOptions::Role::kLoopback ||
           (options_.role == SocketOptions::Role::kHub ? rank == 0
                                                       : rank == options_.local_rank);
  }

  std::int64_t reconnects() const {
    return reconnects_.load(std::memory_order_relaxed);
  }
  std::int64_t frames_rejected() const {
    return frames_rejected_.load(std::memory_order_relaxed);
  }
  std::int64_t peer_down_drops() const {
    return peer_down_drops_.load(std::memory_order_relaxed);
  }

 private:
  // One accepted hub-side connection (or the loopback pump). Outbound
  // frames are queued and written by a dedicated writer thread so send()
  // never blocks on a slow peer.
  struct Connection {
    int fd = -1;
    int peer_rank = -1;  // -1 until the hello frame registers it
    bool down = false;   // EOF/error/quarantine: no further traffic
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<std::vector<std::uint8_t>> outbound;
    std::thread reader;
    std::thread writer;
  };

  // ---- common ----
  void route_frame(int src, const Message& message, int dst);
  void enqueue_frame(Connection& conn, std::vector<std::uint8_t> frame);
  void writer_loop(Connection* conn);
  // Reads frames from conn->fd until EOF/error/stop; returns on any of
  // them. Validates every frame; quarantines on codec rejection.
  void reader_loop(Connection* conn);
  // Handles one validated frame arriving on `conn`.
  void handle_frame(Connection* conn, const FrameProlog& prolog,
                    std::vector<std::uint8_t> body);
  void quarantine(Connection* conn, DecodeStatus status);
  void mark_down(Connection* conn);
  void fatal(const std::string& what);

  // ---- hub ----
  void accept_loop();
  void register_peer(Connection* conn, int rank);

  // ---- spoke ----
  // Connects to options_.address with backoff; returns the fd or -1
  // after the deadline. `deadline_ms` counts from now.
  int connect_with_backoff(int deadline_ms);
  // Re-establishes the spoke transport if `gen` is still current.
  // Returns false when the fabric stopped or the deadline passed.
  bool reconnect(std::uint64_t gen);
  void spoke_reader_loop();
  void spoke_writer_loop();

  SocketOptions options_;
  std::string listen_address_;

  // Hub state.
  int listen_fd_ = -1;
  std::thread accept_thread_;
  mutable std::mutex conns_mutex_;
  std::condition_variable conns_cv_;
  std::vector<std::unique_ptr<Connection>> conns_;
  std::vector<Connection*> conn_by_rank_;   // registered live connection
  std::vector<bool> ever_registered_;
  // Frames for ranks that have not registered yet (spokes still
  // starting): flushed on registration. After a registered rank goes
  // down, frames are dropped instead (counted) — retransmit recovers.
  std::vector<std::deque<std::vector<std::uint8_t>>> pending_frames_;

  // Spoke/loopback transport: one socket, swapped on reconnect.
  mutable std::mutex spoke_mutex_;
  std::condition_variable spoke_cv_;
  int spoke_fd_ = -1;
  int loop_read_fd_ = -1;  // loopback: reader end of the socketpair
  std::uint64_t conn_gen_ = 0;
  bool reconnecting_ = false;  // one thread rebuilds; the other waits
  std::deque<std::vector<std::uint8_t>> spoke_outbound_;
  std::thread spoke_reader_;
  std::thread spoke_writer_;

  std::atomic<std::int64_t> reconnects_{0};
  std::atomic<std::int64_t> frames_rejected_{0};
  std::atomic<std::int64_t> peer_down_drops_{0};
};

// Splits "unix:<path>" / "tcp:<host>:<port>"; throws Error on nonsense.
struct SocketAddress {
  bool tcp = false;
  std::string path;  // unix
  std::string host;  // tcp
  int port = 0;      // tcp
  static SocketAddress parse(const std::string& text);
  std::string to_string() const;
};

// One EINTR-safe connect attempt to `addr`; returns the fd or -1 with
// errno preserved. Spawned ranks use this to open a one-shot connection
// for their final result/abort report — their regular fabric may already
// be stopped when the report is due.
int connect_socket(const SocketAddress& addr);

}  // namespace sia::msg
