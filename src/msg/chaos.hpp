// Deterministic fault injection over the message fabric.
//
// ChaosFabric is a true decorator: it owns any base Fabric — the plain
// thread fabric or a SocketFabric — and interposes on sends. Every send
// of a protected data-plane message consults a FaultPlan and a seeded
// counter-keyed RNG to decide whether to drop, delay, duplicate, or
// reorder it, and a scheduled rank kill makes one rank's sends and
// receives go dark at its Nth message. Every decision is a pure function
// of {plan.seed, sending rank, that rank's send counter}, so a chaos run
// replays bit-identically from its plan string — no wall-clock or global
// state enters the draw — and the draws are identical whether the ranks
// share a process or not: each rank's sends enter the chaos layer of the
// process that hosts it, keyed by its own counter.
//
// Faults only touch the retryable data-plane tags (gets/puts/prepares/
// requests/replies/acks): the SIP's control plane (barriers, chunk
// grants, shutdown) is the fabric's own invariant layer and the reliable
// protocol does not cover it. Rank darkness, however, swallows
// *everything* to and from the dead rank — including heartbeats, which is
// exactly how the master's watchdog detects the death.
//
// DiskFaultInjector is the disk-side counterpart: DiskStore calls
// `check()` around pread/pwrite and the injector throws an injected
// EIO/ENOSPC/short-write at the Nth tracked operation, exercising the
// PR-3 error paths end to end.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "common/config.hpp"
#include "msg/fabric.hpp"

namespace sia::msg {

// Counts of injected faults by kind, aggregated over the whole fabric.
struct ChaosStats {
  std::int64_t drops = 0;
  std::int64_t dups = 0;
  std::int64_t delays = 0;
  std::int64_t reorders = 0;
  std::int64_t kill_swallowed = 0;  // messages eaten by rank darkness

  std::int64_t total() const {
    return drops + dups + delays + reorders + kill_swallowed;
  }
};

class ChaosFabric : public Fabric {
 public:
  // Decorates `base` (which must outlive nothing — ownership transfers).
  ChaosFabric(std::unique_ptr<Fabric> base, const FaultPlan& plan);
  // Convenience: wraps a fresh in-process thread fabric of `ranks`.
  ChaosFabric(int ranks, const FaultPlan& plan);
  ~ChaosFabric() override;

  void send(int src, int dst, Message message) override;
  std::optional<Message> try_recv(int rank) override;
  std::optional<Message> try_recv_tag(int rank, int tag) override;
  bool has_message(int rank) const override;
  std::optional<Message> recv(int rank) override;
  std::optional<Message> recv_for(int rank, int timeout_ms) override;
  void barrier(int rank) override;
  void stop() override;
  TrafficStats stats(int rank) const override;
  TrafficStats total_stats() const override;
  void record_screened(int rank, std::int64_t doubles_elided) override;
  // Injection past the fault layer (used by the internal delay pump):
  // goes straight to the base fabric.
  void deliver(int src, int dst, Message message) override;

  bool killed(int rank) const override {
    return killed_[static_cast<std::size_t>(rank)].load(
        std::memory_order_acquire);
  }
  // Clears the darkness after the master respawned the rank's thread.
  // Does not reset the kill trigger: a plan kills a rank at most once.
  void revive(int rank) override;

  ChaosStats chaos_stats() const;

  // The decorated transport (e.g. to reach SocketFabric accessors).
  Fabric& base() { return *base_; }
  const Fabric& base() const { return *base_; }

  // Called (once) when the scheduled kill fires, with the dying rank.
  // Spawned child processes install `raise(SIGKILL)` here so a chaos kill
  // is a real process death instead of simulated darkness; in thread mode
  // it stays empty and darkness does the simulating.
  void set_kill_hook(std::function<void(int)> hook) {
    kill_hook_ = std::move(hook);
  }

 private:
  // True for tags the reliable protocol covers; only these are eligible
  // for random drop/delay/dup/reorder.
  static bool protected_tag(int tag);
  // Deterministic uniform draw in [0,1) for this (src, counter, salt).
  double draw(int src, std::uint64_t counter, std::uint64_t salt) const;

  void enqueue_delayed(int src, int dst, Message message, int delay_ms);
  void pump_delayed();  // timer-thread body

  std::unique_ptr<Fabric> base_;
  FaultPlan plan_;
  std::function<void(int)> kill_hook_;
  // Per-rank counter of protected sends (keys the RNG) and of all sends
  // (triggers the scheduled kill).
  std::vector<std::atomic<std::uint64_t>> sent_counter_;
  std::vector<std::atomic<std::uint64_t>> kill_counter_;
  std::vector<std::atomic<bool>> killed_;
  // One-shot latch: a plan kills its rank at most once per run, so a
  // revived rank stays alive even though the counter is past the trigger.
  std::atomic<bool> kill_fired_{false};

  std::atomic<std::int64_t> drops_{0};
  std::atomic<std::int64_t> dups_{0};
  std::atomic<std::int64_t> delays_{0};
  std::atomic<std::int64_t> reorders_{0};
  std::atomic<std::int64_t> kill_swallowed_{0};

  struct Delayed {
    std::chrono::steady_clock::time_point due;
    std::uint64_t order;  // tie-break: preserve enqueue order at equal due
    int src;
    int dst;
    Message msg;
  };
  struct DelayedLater {
    bool operator()(const Delayed& a, const Delayed& b) const {
      if (a.due != b.due) return a.due > b.due;
      return a.order > b.order;
    }
  };
  mutable std::mutex delay_mutex_;
  std::condition_variable delay_cv_;
  std::priority_queue<Delayed, std::vector<Delayed>, DelayedLater> delayed_;
  std::uint64_t delay_order_ = 0;
  bool delay_quit_ = false;
  std::thread delay_thread_;
};

// Shared injector for DiskStore faults: one per launch, threaded through
// SipShared so every store on every server increments the same operation
// counter. Throws sia::RuntimeError at the Nth tracked operation.
class DiskFaultInjector {
 public:
  explicit DiskFaultInjector(const FaultPlan& plan)
      : kind_(plan.disk_fault), at_op_(plan.disk_fault_at_op) {}

  // Called around each tracked DiskStore pread/pwrite. `what` names the
  // operation for the diagnostic ("write array T2 block 17").
  void check(const std::string& what);

  std::int64_t faults_injected() const {
    return injected_.load(std::memory_order_relaxed);
  }

 private:
  int kind_;  // 0 none, 1 EIO, 2 ENOSPC, 3 short write
  long at_op_;
  std::atomic<long> op_counter_{0};
  std::atomic<std::int64_t> injected_{0};
};

}  // namespace sia::msg
