#include "msg/reliable.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "msg/tags.hpp"

namespace sia::msg {

// ---- ReliableChannel ----

ReliableChannel::Clock::duration ReliableChannel::backoff(
    int attempts) const {
  // Exponential, capped at 8x base so a recovering I/O server does not
  // leave clients parked on a far-future retry.
  const int shift = std::min(attempts, 3);
  return timeout_ * (1 << shift);
}

std::uint64_t ReliableChannel::track_and_send(int dst, Message msg) {
  const std::uint64_t seq = msg.seq;
  Entry entry;
  entry.msg = msg;  // copy retained; BlockPtr is shared, not deep-copied
  entry.dst = dst;
  entry.deadline = Clock::now() + backoff(0);
  next_deadline_ = std::min(next_deadline_, entry.deadline);
  unacked_.emplace(std::make_pair(dst, seq), std::move(entry));
  fabric_->send(my_rank_, dst, std::move(msg));
  return seq;
}

std::uint64_t ReliableChannel::send_ordered(int dst, Message msg) {
  msg.seq = ++ordered_seq_[dst];
  return track_and_send(dst, std::move(msg));
}

std::uint64_t ReliableChannel::send_request(int dst, Message msg) {
  msg.seq = kRequestIdBit | ++request_seq_[dst];
  msg.ack = ordered_seq_.count(dst) ? ordered_seq_[dst] : 0;
  return track_and_send(dst, std::move(msg));
}

void ReliableChannel::on_ack(int dst, std::uint64_t seq) {
  unacked_.erase(std::make_pair(dst, seq));
  if (unacked_.empty()) next_deadline_ = Clock::time_point::max();
}

void ReliableChannel::poll() {
  if (unacked_.empty()) return;
  const Clock::time_point now = Clock::now();
  if (now < next_deadline_) return;
  next_deadline_ = Clock::time_point::max();
  for (auto& [key, entry] : unacked_) {
    if (entry.deadline > now) {
      next_deadline_ = std::min(next_deadline_, entry.deadline);
      continue;
    }
    ++entry.attempts;
    if (entry.attempts > retry_max_) {
      ++stats_.acks_timed_out;
      throw RuntimeError(
          "reliable channel: rank " + std::to_string(entry.dst) +
          " unresponsive (tag " + std::to_string(entry.msg.tag) + " seq " +
          std::to_string(key.second & ~kRequestIdBit) + " unacked after " +
          std::to_string(retry_max_) + " retransmits from rank " +
          std::to_string(my_rank_) + ")");
    }
    ++stats_.retries_sent;
    entry.deadline = now + backoff(entry.attempts);
    next_deadline_ = std::min(next_deadline_, entry.deadline);
    fabric_->send(my_rank_, entry.dst, entry.msg);  // copy stays tracked
  }
}

std::vector<int> ReliableChannel::unacked_ordered_dsts() const {
  std::vector<int> dsts;
  for (const auto& [key, entry] : unacked_) {
    if (key.second & kRequestIdBit) continue;
    if (std::find(dsts.begin(), dsts.end(), key.first) == dsts.end()) {
      dsts.push_back(key.first);
    }
  }
  return dsts;
}

// ---- PeerSequencer ----

bool PeerSequencer::is_applied(int src, std::uint64_t seq) const {
  auto it = peers_.find(src);
  if (it == peers_.end()) return false;
  return seq < it->second.next_expected ||
         it->second.applied_ahead.count(seq) != 0;
}

void PeerSequencer::advance(Peer& peer, Admit& out) {
  for (;;) {
    if (peer.applied_ahead.erase(peer.next_expected) != 0) {
      ++peer.next_expected;
      continue;
    }
    auto held = peer.held.find(peer.next_expected);
    if (held != peer.held.end()) {
      out.deliver.push_back(std::move(held->second));
      peer.held.erase(held);
      ++peer.next_expected;
      continue;
    }
    break;
  }
  // Release requests whose ordered dependency is now below the floor.
  // (applied_ahead entries only exist from journal replay, which happens
  // before any traffic, so admit_after catches those directly.)
  while (!peer.dependent.empty() &&
         peer.dependent.begin()->first < peer.next_expected) {
    out.deliver.push_back(std::move(peer.dependent.begin()->second));
    peer.dependent.erase(peer.dependent.begin());
  }
}

PeerSequencer::Admit PeerSequencer::admit_ordered(Message msg) {
  Admit out;
  Peer& peer = peers_[msg.src];
  const std::uint64_t seq = msg.seq;
  if (seq < peer.next_expected || peer.applied_ahead.count(seq) != 0 ||
      peer.held.count(seq) != 0) {
    ++dups_dropped_;
    out.duplicate = true;
    return out;
  }
  if (seq == peer.next_expected) {
    out.deliver.push_back(std::move(msg));
    ++peer.next_expected;
    advance(peer, out);
  } else {
    peer.held.emplace(seq, std::move(msg));
  }
  return out;
}

PeerSequencer::Admit PeerSequencer::admit_after(Message msg) {
  Admit out;
  Peer& peer = peers_[msg.src];
  const std::uint64_t after = msg.ack;
  if (after == 0 || after < peer.next_expected ||
      peer.applied_ahead.count(after) != 0) {
    out.deliver.push_back(std::move(msg));
  } else {
    peer.dependent.emplace(after, std::move(msg));
  }
  return out;
}

void PeerSequencer::mark_applied(int src, std::uint64_t seq) {
  Peer& peer = peers_[src];
  if (seq < peer.next_expected) return;
  peer.applied_ahead.insert(seq);
  Admit scratch;
  advance(peer, scratch);
  // Journal replay happens before any messages arrive; nothing to deliver.
}

}  // namespace sia::msg
