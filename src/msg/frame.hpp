// Wire framing for the socket fabric.
//
// A frame is one Message (or one control record) serialized for a byte
// stream: a fixed 16-byte prolog — magic, payload length, version, kind —
// followed by the payload and a trailing FNV-1a checksum of the payload.
// All integers are little-endian fixed-width; doubles travel as their
// IEEE-754 bit patterns.
//
//   offset  field
//   0       u32 magic   'SIAF' (0x46414953)
//   4       u32 length  payload bytes (excludes prolog and checksum)
//   8       u16 version (kFrameVersion)
//   10      u16 kind    (FrameKind)
//   12      u32 reserved (0)
//   16      payload[length]
//   16+len  u64 checksum (FNV-1a over payload)
//
// Message payload layout: i32 dst, src, tag; u64 seq, ack; u32 header
// count, data count, block flag, block rank; i32 extents[rank]; i64
// header[]; f64 data[]; f64 block elements[]. The block payload is the
// zero-copy downgrade point: a BlockPtr that rode a pointer between
// threads is serialized exactly once here, and the receiver materializes
// a fresh heap block — single-copy framing, counted by the fabric.
//
// The decoder never trusts the peer: a wrong magic or version, an
// oversized length, a payload that does not parse to exactly `length`
// bytes, or a checksum mismatch yields DecodeStatus != kOk and the caller
// quarantines the connection instead of delivering garbage to a mailbox.
// A clean EOF mid-frame is "truncated" — the reconnect path treats it as
// a dropped connection, and the reliable layer's retransmit makes the
// lost tail exactly-once on reattach.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "msg/message.hpp"

namespace sia::msg {

inline constexpr std::uint32_t kFrameMagic = 0x46414953u;  // 'SIAF'
inline constexpr std::uint16_t kFrameVersion = 1;
// Upper bound on a sane payload: rejects garbage lengths before any
// allocation. 1 GiB covers any block the runtime can represent.
inline constexpr std::uint32_t kFrameMaxPayload = 1u << 30;
inline constexpr std::size_t kFramePrologBytes = 16;
inline constexpr std::size_t kFrameChecksumBytes = 8;

enum class FrameKind : std::uint16_t {
  kMessage = 0,  // one fabric Message
  kHello = 1,    // spoke -> hub: payload = i32 rank (registration)
};

struct FrameProlog {
  std::uint32_t magic = 0;
  std::uint32_t length = 0;
  std::uint16_t version = 0;
  FrameKind kind = FrameKind::kMessage;
};

enum class DecodeStatus {
  kOk,
  kBadMagic,
  kBadVersion,
  kBadLength,    // length exceeds kFrameMaxPayload
  kBadChecksum,
  kMalformed,    // payload structure inconsistent with its length
};

const char* decode_status_name(DecodeStatus status);

// Encodes `message` destined for `dst` as a complete frame (prolog +
// payload + checksum), appending to `out`. The block payload, if any, is
// serialized into the frame; `message` itself is not modified.
void encode_message_frame(const Message& message, int dst,
                          std::vector<std::uint8_t>& out);

// Encodes a hello/registration frame announcing `rank`.
void encode_hello_frame(int rank, std::vector<std::uint8_t>& out);

// Parses the 16-byte prolog. Returns kOk, kBadMagic, kBadVersion, or
// kBadLength; on kOk the caller reads prolog.length + 8 more bytes.
DecodeStatus decode_prolog(const std::uint8_t* bytes, FrameProlog* prolog);

struct DecodedFrame {
  FrameKind kind = FrameKind::kMessage;
  int dst = -1;       // kMessage: destination rank
  Message message;    // kMessage
  int hello_rank = -1;  // kHello
};

// Decodes payload + checksum of a frame whose prolog already passed.
// `body` must hold exactly prolog.length + kFrameChecksumBytes bytes.
DecodeStatus decode_frame_body(const FrameProlog& prolog,
                               const std::uint8_t* body,
                               DecodedFrame* out);

// Convenience for tests: encode/decode a whole frame held in one buffer.
DecodeStatus decode_frame(const std::vector<std::uint8_t>& bytes,
                          DecodedFrame* out);

}  // namespace sia::msg
