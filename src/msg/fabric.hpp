// In-process message-passing fabric: the MPI substitute.
//
// The paper's SIP runs one sequential MPI process per master/worker/server.
// This environment has no MPI and no cluster, so ranks are threads and the
// fabric provides the messaging semantics the SIP actually relies on:
//   * asynchronous point-to-point sends that never block the sender
//     (buffered, like eager-protocol MPI_Isend),
//   * polling receipt — ranks "periodically check for messages and process
//     them" (paper §V-B) via try_recv,
//   * blocking receive with a condition variable for idle servers,
//   * a fabric-wide barrier used by the GA baseline and tests (the SIP
//     builds its own explicit barrier protocol on plain messages).
//
// Mailboxes are tag-indexed: each tag has its own FIFO sub-queue and a
// global arrival-order index threads them together, so try_recv_tag is
// O(1) instead of a linear scan and control traffic (barriers, acks,
// chunk grants) never convoys behind queued block payloads. Global FIFO
// order per (src,dst) pair is preserved — the SIP's barrier protocol
// depends on it for epoch causality.
//
// The fabric also counts messages and payload volume per rank so tests
// and ablation benches can observe communication traffic, including how
// many messages moved their block payload zero-copy.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "msg/message.hpp"

namespace sia::msg {

// Communication counters for one rank (what it sent).
struct TrafficStats {
  std::int64_t messages_sent = 0;
  std::int64_t payload_doubles_sent = 0;  // wire-equivalent data words
  std::int64_t header_words_sent = 0;
  // Messages whose block payload travelled as a shared BlockPtr instead
  // of being packed into a wire buffer, and the doubles that therefore
  // were never copied (once at pack time and once at unpack time each).
  std::int64_t zero_copy_messages = 0;
  std::int64_t zero_copy_doubles = 0;
  // Sends attempted after stop(): counted no-ops, not errors. During a
  // fault-triggered teardown surviving ranks' retransmit timers keep
  // firing; turning each into an exception would make shutdown an
  // exception storm.
  std::int64_t sends_after_stop = 0;
  // Norm-based screening: block transfers answered (or elided outright)
  // with a tiny screened marker instead of a payload, and the data words
  // that therefore never crossed the fabric.
  std::int64_t blocks_screened = 0;
  std::int64_t bytes_elided = 0;
  // Socket transport: messages whose payload had to be serialized into a
  // wire frame because the destination rank lives in another process —
  // the zero-copy downgrade — and the doubles copied for them. For
  // in-process destinations the BlockPtr fast path still applies and
  // these stay zero.
  std::int64_t serialized_messages = 0;
  std::int64_t serialized_doubles = 0;
  // Socket transport robustness: connections re-established after a
  // reset, malformed frames rejected (peer quarantined), and messages
  // dropped because the destination's process/connection was down.
  std::int64_t reconnects = 0;
  std::int64_t frames_rejected = 0;
  std::int64_t peer_down_drops = 0;
};

class Fabric {
 public:
  explicit Fabric(int ranks);
  virtual ~Fabric();

  int ranks() const { return static_cast<int>(boxes_.size()); }

  // Asynchronous buffered send; never blocks. `src` is stamped into the
  // message. Sending to an out-of-range rank throws; sending on a stopped
  // fabric is a counted no-op (TrafficStats::sends_after_stop).
  virtual void send(int src, int dst, Message message);

  // Non-blocking receive of the oldest pending message, any tag.
  virtual std::optional<Message> try_recv(int rank);

  // Non-blocking receive of the oldest pending message with `tag`,
  // skipping (and preserving order of) other messages. O(1).
  virtual std::optional<Message> try_recv_tag(int rank, int tag);

  // True if any message is pending for `rank`.
  virtual bool has_message(int rank) const;

  // Blocking receive; waits on a condition variable. Returns nullopt only
  // if the fabric is stopped while waiting (shutdown path).
  virtual std::optional<Message> recv(int rank);

  // Blocking receive with timeout in milliseconds; nullopt on timeout or
  // stop.
  virtual std::optional<Message> recv_for(int rank, int timeout_ms);

  // Fabric-wide barrier across all ranks (sense-reversing). Every rank
  // must call it; used by the GA baseline and by tests. Only meaningful
  // when all participating ranks live in this process.
  virtual void barrier(int rank);

  // Wakes all blocked receivers and makes further recv calls return
  // nullopt. Sends after stop() become counted no-ops.
  virtual void stop();
  bool stopped() const { return stopped_.load(std::memory_order_acquire); }

  // Fault-injection hooks; the plain fabric has no dead ranks. ChaosFabric
  // overrides these: `killed` marks a rank whose sends/receives go dark,
  // `revive` clears the mark after the master respawns the rank's thread.
  virtual bool killed(int rank) const {
    (void)rank;
    return false;
  }
  virtual void revive(int rank) { (void)rank; }

  virtual TrafficStats stats(int rank) const;
  virtual TrafficStats total_stats() const;

  // Records one screened block transfer charged to `rank`: a payload of
  // `doubles_elided` words that was answered with a marker (or dropped at
  // the sender) instead of moving across the fabric.
  virtual void record_screened(int rank, std::int64_t doubles_elided);

  // Enqueue toward dst's mailbox without fault interposition: stamps the
  // source, bumps the sender's traffic counters, and delivers. The raw
  // hook under send(). Public and virtual so decorators (ChaosFabric's
  // delayed-delivery thread) can inject into their base fabric, and so
  // transports (SocketFabric) can route the delivery across a socket
  // when dst lives in another process.
  virtual void deliver(int src, int dst, Message message);

 protected:
  // Bumps src's send counters for `message` (charged even when the
  // delivery is then routed over a socket).
  void count_send(int src, const Message& message);
  // Mailbox-only enqueue into this instance's queues; what deliver()
  // does for an in-process destination.
  void enqueue_local(int dst, Message message);
  // Charges a serialized (single-copy framed) transfer to src.
  void count_serialized(int src, const Message& message);

 private:
  struct TaggedMessage {
    std::uint64_t seq = 0;  // arrival order within the mailbox
    Message msg;
  };

  struct Mailbox {
    mutable std::mutex mutex;
    std::condition_variable cv;
    // Per-tag FIFO sub-queues plus a global arrival-order index of
    // (tag, seq) pairs. A fifo entry is live iff the tag queue's front
    // still carries that seq; entries drained out of order by
    // try_recv_tag leave stale index pairs that the FIFO pops skip
    // lazily (each is skipped at most once, so amortized O(1)).
    std::unordered_map<int, std::deque<TaggedMessage>> by_tag;
    std::deque<std::pair<int, std::uint64_t>> fifo;
    std::uint64_t next_seq = 0;
    std::size_t pending = 0;  // total live messages

    // Counters for messages this rank sent. Atomics so send() can bump
    // them without taking the sender's mailbox lock (which would serialize
    // unrelated sends against the sender's own receives).
    std::atomic<std::int64_t> messages_sent{0};
    std::atomic<std::int64_t> payload_doubles_sent{0};
    std::atomic<std::int64_t> header_words_sent{0};
    std::atomic<std::int64_t> zero_copy_messages{0};
    std::atomic<std::int64_t> zero_copy_doubles{0};
    std::atomic<std::int64_t> sends_after_stop{0};
    std::atomic<std::int64_t> blocks_screened{0};
    std::atomic<std::int64_t> bytes_elided{0};
    std::atomic<std::int64_t> serialized_messages{0};
    std::atomic<std::int64_t> serialized_doubles{0};

    // Pops the globally oldest live message. Caller holds `mutex` and
    // guarantees pending > 0.
    Message pop_oldest_locked();
  };

  std::vector<std::unique_ptr<Mailbox>> boxes_;

  mutable std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  int barrier_count_ = 0;
  int barrier_sense_ = 0;

  std::atomic<bool> stopped_{false};
};

}  // namespace sia::msg
