// Protocol tags used over the message fabric.
//
// Tag ranges: 1xx master<->worker control, 2xx worker<->worker distributed
// arrays, 3xx worker<->I/O-server served arrays, 4xx GA baseline, 9xx
// shutdown/housekeeping.
#pragma once

namespace sia::msg {

enum Tag : int {
  // Master <-> worker: pardo chunk scheduling and barriers.
  kChunkRequest = 101,   // worker -> master: [pardo_id]
  kChunkReply = 102,     // master -> worker: [pardo_id, begin, end] (end<=begin: done)
  kBarrierEnter = 103,   // worker -> master: [barrier_id]
  kBarrierRelease = 104, // master -> worker: [barrier_id]
  kScalarReduce = 105,   // worker -> master: [scalar_slot] + data[1]
  kScalarBcast = 106,    // master -> worker: [scalar_slot] + data[1]

  // Guided-schedule work stealing. When the ScheduleTable is exhausted
  // and a worker still asks for work, the master proposes splitting the
  // tail off a victim's outstanding chunk; the victim clamps the split to
  // its current position (iterations already started are never revoked)
  // and grants [max(split, pos), old_end). The grant reaches the thief as
  // an ordinary kChunkReply. Control plane: never faulted by the chaos
  // layer, like the chunk tags above.
  kChunkStealRequest = 107,  // master -> victim: [pardo_id, instance, split]
  kChunkStealReply = 108,    // victim -> master: [pardo_id, instance,
                             //                    grant_begin, grant_end]

  // Worker <-> worker: distributed array traffic.
  kBlockGetRequest = 201,  // [array_id, block_linear, reply_rank]
  kBlockGetReply = 202,    // [array_id, block_linear] + data
  kBlockPut = 203,         // [array_id, block_linear, epoch] + data
  kBlockPutAcc = 204,      // [array_id, block_linear, epoch] + data (accumulate)
  kBlockDelete = 205,      // [array_id] delete all blocks of array

  // Worker <-> I/O server: served array traffic.
  kServedPrepare = 301,     // [array_id, block_linear, epoch] + data
  kServedPrepareAcc = 302,  // [array_id, block_linear, epoch] + data
  kServedRequest = 303,     // [array_id, block_linear, reply_rank]
  kServedReply = 304,       // [array_id, block_linear, miss, lookahead]
  kServerBarrierEnter = 305,  // worker -> server: flush, then ack
  kServerBarrierAck = 306,    // server -> master
  kServedDelete = 307,        // [array_id]
  kServerFlushHint = 308,     // worker -> server: flush dirty so pending
                              // prepares get durability-acked (pre-barrier)

  // GA baseline library.
  kGaGet = 401,
  kGaGetReply = 402,
  kGaPut = 403,
  kGaAcc = 404,
  kGaPutAck = 405,

  // Housekeeping.
  kShutdown = 901,
  kAbort = 902,  // fatal error: header = [byte_count], data = error text
                 // packed 8 bytes per double (sip/spawn.hpp pack helpers)

  // Fault-tolerance protocol (PR 4).
  kHeartbeatPing = 903,  // master -> rank: [tick]
  kHeartbeatAck = 904,   // rank -> master: [tick, rank]
  kProtoAck = 905,       // standalone ack: msg.ack = applied seq

  // Process ranks (PR 9): a spawned rank ships its end-of-run counters
  // and (for the first worker) final scalar values back to the launch.
  // header = [kind, scalar_count], data = packed counters + scalars.
  kResultReport = 906,
};

}  // namespace sia::msg
