// Message type carried by the in-process fabric.
//
// Real SIP implementations exchange MPI messages whose payloads are either
// small control records or whole blocks of doubles. We mirror that split:
// `header` carries protocol control words (block ids, index values, chunk
// bounds), `data` carries block contents. Keeping doubles in their own
// vector avoids any serialization of floating-point data.
#pragma once

#include <cstdint>
#include <vector>

namespace sia::msg {

struct Message {
  int src = -1;   // sending rank; filled in by Fabric::send
  int tag = 0;    // protocol tag, see tags.hpp
  std::vector<std::int64_t> header;
  std::vector<double> data;
};

}  // namespace sia::msg
