// Message type carried by the in-process fabric.
//
// Real SIP implementations exchange MPI messages whose payloads are either
// small control records or whole blocks of doubles. We mirror that split:
// `header` carries protocol control words (block ids, index values, chunk
// bounds), while block contents travel as a shared `BlockPtr` — the
// in-process analogue of MPI zero-copy / rendezvous transfers. The sender
// attaches a reference to (or ownership of) the block and the receiver
// adopts it without either side packing doubles into a wire buffer.
// `data` remains for small non-block payloads (scalars, collectives).
#pragma once

#include <cstdint>
#include <vector>

#include "block/block.hpp"

namespace sia::msg {

struct Message {
  int src = -1;   // sending rank; filled in by Fabric::send
  int tag = 0;    // protocol tag, see tags.hpp
  // Reliable-protocol fields (zero when the protocol is off). `seq` is a
  // per-(src,dst) monotonic sequence number stamped by the sending
  // ReliableChannel on retryable data-plane messages; `ack` on a reply
  // echoes the request's seq (the reply *is* the ack). Kept out of
  // `header` so positional header parsing is untouched.
  std::uint64_t seq = 0;
  std::uint64_t ack = 0;
  std::vector<std::int64_t> header;
  std::vector<double> data;
  // Zero-copy block payload. Shared (aliasing) for read replies; for
  // writes the sender moves its last reference in, transferring ownership.
  BlockPtr block;

  // Total payload volume in doubles, wire-equivalent: what an MPI
  // implementation would have put on the network for this message.
  std::size_t payload_doubles() const {
    return data.size() + (block ? block->size() : 0);
  }
};

}  // namespace sia::msg
