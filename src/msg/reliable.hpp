// Reliable delivery protocol over the (possibly chaotic) fabric.
//
// The SIP's data-plane messages (distributed-array get/put/acc, served
// prepare/request) assume the fabric never loses anything. Under fault
// injection that assumption is withdrawn, so senders and receivers run a
// classic at-least-once + exactly-once-apply protocol:
//
//   * ReliableChannel (sender side, one per worker): stamps outgoing
//     data-plane messages with per-(src,dst) monotonic sequence numbers,
//     keeps an unacked-send table, and retransmits on timeout with
//     exponential backoff. Two disjoint id spaces share one table:
//     "ordered" messages (put/acc/prepare — not idempotent, acked by
//     kProtoAck once *applied*, for prepares once *durable*) and
//     "request" messages (get/request — idempotent, the reply is the ack,
//     ids carry the top bit so they never collide with ordered seqs).
//
//   * PeerSequencer (receiver side, one per home worker / I/O server):
//     delivers each peer's ordered stream in sequence exactly once —
//     early arrivals are held until the hole fills (the sender is
//     retransmitting the missing one), duplicates are dropped and
//     reported so the receiver can re-ack. Accumulate is why this must
//     be exactly-once: `put +=` applied twice is silent corruption, which
//     is also why acks carry the applied sequence number rather than
//     being a bare "got it". Idempotent requests ride alongside with an
//     after-dependency: a request whose `ack` field names an ordered seq
//     is held until that seq has been applied, preserving the only
//     cross-type order the SIP relies on (prepare-then-request of the
//     same block). mark_applied() seeds journal-replayed seqs after an
//     I/O-server respawn so holes at already-durable prepares are skipped
//     instead of awaited forever.
//
// Everything here is single-threaded per instance (owned by one rank's
// thread); the fabric send is the only cross-thread operation.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "msg/fabric.hpp"
#include "msg/message.hpp"

namespace sia::msg {

// Top bit marks request-space ids (idempotent, reply-acked); ordered
// sequence numbers live in the low space and stay contiguous for the
// receiver's hole detection.
inline constexpr std::uint64_t kRequestIdBit = 1ull << 63;

class ReliableChannel {
 public:
  struct Stats {
    std::int64_t retries_sent = 0;
    std::int64_t acks_timed_out = 0;  // entries that exhausted retry_max
  };

  ReliableChannel(Fabric* fabric, int my_rank, int retry_timeout_ms,
                  int retry_max)
      : fabric_(fabric),
        my_rank_(my_rank),
        timeout_(std::chrono::milliseconds(retry_timeout_ms)),
        retry_max_(retry_max) {}

  // Stamps `msg.seq` from dst's ordered stream, records it unacked, and
  // sends. The retained copy shares the BlockPtr (one extra reference
  // until the ack clears it). Returns the assigned seq.
  std::uint64_t send_ordered(int dst, Message msg);

  // Stamps `msg.seq` from dst's request-id space, sets `msg.ack` to the
  // last ordered seq sent to dst (the receiver holds the request until
  // that seq is applied; 0 = no dependency), records it unacked, sends.
  std::uint64_t send_request(int dst, Message msg);

  // Ack for `seq` from `dst` (a kProtoAck's or a reply's `ack` field).
  void on_ack(int dst, std::uint64_t seq);

  // Retransmits overdue entries. Throws RuntimeError naming the dead
  // rank once an entry exhausts retry_max. Cheap when nothing is due.
  void poll();

  bool idle() const { return unacked_.empty(); }
  std::size_t unacked_count() const { return unacked_.size(); }
  // Destinations holding unacked *ordered* sends (targets for
  // kServerFlushHint before a barrier).
  std::vector<int> unacked_ordered_dsts() const;

  const Stats& stats() const { return stats_; }

 private:
  using Clock = std::chrono::steady_clock;
  struct Entry {
    Message msg;  // retained for retransmit
    int dst = -1;
    Clock::time_point deadline;
    int attempts = 0;
  };

  Clock::duration backoff(int attempts) const;
  std::uint64_t track_and_send(int dst, Message msg);

  Fabric* fabric_;
  int my_rank_;
  Clock::duration timeout_;
  int retry_max_;
  std::unordered_map<int, std::uint64_t> ordered_seq_;  // per dst, last used
  std::unordered_map<int, std::uint64_t> request_seq_;
  std::map<std::pair<int, std::uint64_t>, Entry> unacked_;
  Clock::time_point next_deadline_ = Clock::time_point::max();
  Stats stats_;
};

class PeerSequencer {
 public:
  struct Admit {
    // Messages now deliverable, in order (possibly empty: the admitted
    // message was held, or a duplicate).
    std::vector<Message> deliver;
    // The admitted message duplicated an already-applied one; receivers
    // of non-idempotent messages re-ack (the original ack may be lost).
    bool duplicate = false;
  };

  // Admit an ordered-stream message (put/acc/prepare); `msg.seq` is its
  // sequence number.
  Admit admit_ordered(Message msg);

  // Admit an idempotent request whose `msg.ack` names the ordered seq it
  // must follow (0: deliver immediately).
  Admit admit_after(Message msg);

  // Journal replay after an I/O-server respawn: `seq` from `src` was
  // applied (durably) by the previous incarnation.
  void mark_applied(int src, std::uint64_t seq);

  bool is_applied(int src, std::uint64_t seq) const;

  std::int64_t duplicates_dropped() const { return dups_dropped_; }

 private:
  struct Peer {
    std::uint64_t next_expected = 1;  // all ordered seqs below: applied
    std::set<std::uint64_t> applied_ahead;      // journal-replayed holes
    std::map<std::uint64_t, Message> held;      // early ordered arrivals
    std::multimap<std::uint64_t, Message> dependent;  // requests awaiting seq
  };

  // Drains contiguous applied/held seqs and newly unblocked dependents
  // into `out.deliver`.
  void advance(Peer& peer, Admit& out);

  std::unordered_map<int, Peer> peers_;
  std::int64_t dups_dropped_ = 0;
};

}  // namespace sia::msg
