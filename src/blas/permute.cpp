#include "blas/permute.hpp"

#include <algorithm>
#include <array>

#include "common/error.hpp"

namespace sia::blas {
namespace {

// Row-major strides (last index fastest).
std::array<std::size_t, kMaxRank> strides_of(std::span<const int> dims) {
  std::array<std::size_t, kMaxRank> strides{};
  const int rank = static_cast<int>(dims.size());
  std::size_t stride = 1;
  for (int d = rank - 1; d >= 0; --d) {
    strides[static_cast<std::size_t>(d)] = stride;
    stride *= static_cast<std::size_t>(dims[static_cast<std::size_t>(d)]);
  }
  return strides;
}

// Generic odometer walk over dst in row-major order; used when the source
// and destination share the same fastest axis, so the inner loop copies
// contiguous runs from both sides.
template <bool kAccumulate>
void permute_linear(const double* src, double* dst,
                    std::span<const int> dst_dims,
                    const std::array<std::size_t, kMaxRank>& step) {
  const int rank = static_cast<int>(dst_dims.size());
  std::array<int, kMaxRank> counter{};
  std::size_t src_offset = 0;
  std::size_t total = 1;
  for (const int d : dst_dims) total *= static_cast<std::size_t>(d);
  const int last = rank - 1;
  const std::size_t inner_extent =
      static_cast<std::size_t>(dst_dims[static_cast<std::size_t>(last)]);
  const std::size_t inner_step = step[static_cast<std::size_t>(last)];

  std::size_t written = 0;
  while (written < total) {
    std::size_t offset = src_offset;
    for (std::size_t j = 0; j < inner_extent; ++j) {
      if constexpr (kAccumulate) {
        dst[written + j] += src[offset];
      } else {
        dst[written + j] = src[offset];
      }
      offset += inner_step;
    }
    written += inner_extent;

    int d = last - 1;
    for (; d >= 0; --d) {
      const std::size_t ud = static_cast<std::size_t>(d);
      src_offset += step[ud];
      if (++counter[ud] < dst_dims[ud]) break;
      src_offset -= step[ud] * static_cast<std::size_t>(dst_dims[ud]);
      counter[ud] = 0;
    }
    if (d < 0 && written < total) {
      // rank == 1: single pass already covered everything.
      break;
    }
  }
}

// Cache-blocked walk for genuine transposes (the destination's fastest
// axis is strided in the source). Tiles the plane spanned by the two
// "fast" axes — dst's last axis (contiguous in dst, stride sL in src) and
// the dst axis fed by src's last axis (contiguous in src, stride dj in
// dst) — so both sides touch only ~T cache lines per tile instead of one
// line per element.
template <bool kAccumulate>
void permute_tiled(const double* src, double* dst,
                   std::span<const int> dst_dims,
                   const std::array<std::size_t, kMaxRank>& step, int jd) {
  constexpr std::size_t kTile = 16;
  const int rank = static_cast<int>(dst_dims.size());
  const int last = rank - 1;
  const auto dst_strides = strides_of(dst_dims);

  const std::size_t extent_l =
      static_cast<std::size_t>(dst_dims[static_cast<std::size_t>(last)]);
  const std::size_t extent_j =
      static_cast<std::size_t>(dst_dims[static_cast<std::size_t>(jd)]);
  const std::size_t src_stride_l = step[static_cast<std::size_t>(last)];
  const std::size_t dst_stride_j = dst_strides[static_cast<std::size_t>(jd)];

  // Axes other than the two tiled ones, walked by odometer.
  std::array<int, kMaxRank> outer{};
  int num_outer = 0;
  for (int d = 0; d < rank; ++d) {
    if (d != jd && d != last) outer[static_cast<std::size_t>(num_outer++)] = d;
  }

  std::array<int, kMaxRank> counter{};
  std::size_t base_src = 0;
  std::size_t base_dst = 0;
  while (true) {
    for (std::size_t j0 = 0; j0 < extent_j; j0 += kTile) {
      const std::size_t jn = std::min(kTile, extent_j - j0);
      for (std::size_t l0 = 0; l0 < extent_l; l0 += kTile) {
        const std::size_t ln = std::min(kTile, extent_l - l0);
        const double* src_tile = src + base_src + j0 + l0 * src_stride_l;
        double* dst_tile = dst + base_dst + j0 * dst_stride_j + l0;
        for (std::size_t j = 0; j < jn; ++j) {
          double* dst_row = dst_tile + j * dst_stride_j;
          const double* src_col = src_tile + j;
          for (std::size_t l = 0; l < ln; ++l) {
            if constexpr (kAccumulate) {
              dst_row[l] += src_col[l * src_stride_l];
            } else {
              dst_row[l] = src_col[l * src_stride_l];
            }
          }
        }
      }
    }
    int d = num_outer - 1;
    for (; d >= 0; --d) {
      const std::size_t axis =
          static_cast<std::size_t>(outer[static_cast<std::size_t>(d)]);
      base_src += step[axis];
      base_dst += dst_strides[axis];
      if (++counter[axis] < dst_dims[axis]) break;
      base_src -= step[axis] * static_cast<std::size_t>(dst_dims[axis]);
      base_dst -= dst_strides[axis] * static_cast<std::size_t>(dst_dims[axis]);
      counter[axis] = 0;
    }
    if (d < 0) break;
  }
}

template <bool kAccumulate>
void permute_impl(const double* src, std::span<const int> src_dims,
                  std::span<const int> perm, double* dst) {
  const int rank = static_cast<int>(src_dims.size());
  SIA_CHECK(rank >= 1 && rank <= kMaxRank, "permute: rank out of range");
  SIA_CHECK(static_cast<int>(perm.size()) == rank, "permute: perm size");
  SIA_CHECK(is_permutation(perm), "permute: not a permutation");

  const auto src_strides = strides_of(src_dims);
  const std::vector<int> dst_dims = permuted_dims(src_dims, perm);

  // Stride in src for a unit step along each *dst* axis.
  std::array<std::size_t, kMaxRank> step{};
  for (int d = 0; d < rank; ++d) {
    step[static_cast<std::size_t>(d)] =
        src_strides[static_cast<std::size_t>(perm[static_cast<std::size_t>(d)])];
  }

  const int last = rank - 1;
  if (rank >= 2 && perm[static_cast<std::size_t>(last)] != last) {
    // The dst axis fed by src's fastest axis (exists and differs from
    // `last` because perm is a permutation that moves src's last axis).
    int jd = -1;
    for (int d = 0; d < rank; ++d) {
      if (perm[static_cast<std::size_t>(d)] == last) {
        jd = d;
        break;
      }
    }
    permute_tiled<kAccumulate>(src, dst, dst_dims, step, jd);
    return;
  }
  permute_linear<kAccumulate>(src, dst, dst_dims, step);
}

}  // namespace

bool is_permutation(std::span<const int> perm) {
  std::array<bool, kMaxRank> seen{};
  const int rank = static_cast<int>(perm.size());
  for (int value : perm) {
    if (value < 0 || value >= rank || seen[static_cast<std::size_t>(value)]) {
      return false;
    }
    seen[static_cast<std::size_t>(value)] = true;
  }
  return true;
}

std::size_t element_count(std::span<const int> dims) {
  std::size_t total = 1;
  for (int d : dims) total *= static_cast<std::size_t>(d);
  return total;
}

std::vector<int> permuted_dims(std::span<const int> src_dims,
                               std::span<const int> perm) {
  std::vector<int> dims(perm.size());
  for (std::size_t d = 0; d < perm.size(); ++d) {
    dims[d] = src_dims[static_cast<std::size_t>(perm[d])];
  }
  return dims;
}

void permute(const double* src, std::span<const int> src_dims,
             std::span<const int> perm, double* dst) {
  permute_impl<false>(src, src_dims, perm, dst);
}

void permute_acc(const double* src, std::span<const int> src_dims,
                 std::span<const int> perm, double* dst) {
  permute_impl<true>(src, src_dims, perm, dst);
}

}  // namespace sia::blas
