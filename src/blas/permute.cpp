#include "blas/permute.hpp"

#include <array>

#include "common/error.hpp"

namespace sia::blas {
namespace {

// Row-major strides (last index fastest).
std::array<std::size_t, kMaxRank> strides_of(std::span<const int> dims) {
  std::array<std::size_t, kMaxRank> strides{};
  const int rank = static_cast<int>(dims.size());
  std::size_t stride = 1;
  for (int d = rank - 1; d >= 0; --d) {
    strides[static_cast<std::size_t>(d)] = stride;
    stride *= static_cast<std::size_t>(dims[static_cast<std::size_t>(d)]);
  }
  return strides;
}

template <bool kAccumulate>
void permute_impl(const double* src, std::span<const int> src_dims,
                  std::span<const int> perm, double* dst) {
  const int rank = static_cast<int>(src_dims.size());
  SIA_CHECK(rank >= 1 && rank <= kMaxRank, "permute: rank out of range");
  SIA_CHECK(static_cast<int>(perm.size()) == rank, "permute: perm size");
  SIA_CHECK(is_permutation(perm), "permute: not a permutation");

  const auto src_strides = strides_of(src_dims);
  const std::vector<int> dst_dims = permuted_dims(src_dims, perm);

  // Stride in src for a unit step along each *dst* axis.
  std::array<std::size_t, kMaxRank> step{};
  for (int d = 0; d < rank; ++d) {
    step[static_cast<std::size_t>(d)] =
        src_strides[static_cast<std::size_t>(perm[static_cast<std::size_t>(d)])];
  }

  // Odometer walk over dst in row-major order; src offset tracked
  // incrementally so the inner loop is addition-only.
  std::array<int, kMaxRank> counter{};
  std::size_t src_offset = 0;
  const std::size_t total = element_count(src_dims);
  const int last = rank - 1;
  const std::size_t inner_extent =
      static_cast<std::size_t>(dst_dims[static_cast<std::size_t>(last)]);
  const std::size_t inner_step = step[static_cast<std::size_t>(last)];

  std::size_t written = 0;
  while (written < total) {
    // Inner axis as a tight loop.
    std::size_t offset = src_offset;
    for (std::size_t j = 0; j < inner_extent; ++j) {
      if constexpr (kAccumulate) {
        dst[written + j] += src[offset];
      } else {
        dst[written + j] = src[offset];
      }
      offset += inner_step;
    }
    written += inner_extent;

    // Advance the odometer over the outer axes.
    int d = last - 1;
    for (; d >= 0; --d) {
      const std::size_t ud = static_cast<std::size_t>(d);
      src_offset += step[ud];
      if (++counter[ud] < dst_dims[ud]) break;
      src_offset -= step[ud] * static_cast<std::size_t>(dst_dims[ud]);
      counter[ud] = 0;
    }
    if (d < 0 && written < total) {
      // rank == 1: single pass already covered everything.
      break;
    }
  }
}

}  // namespace

bool is_permutation(std::span<const int> perm) {
  std::array<bool, kMaxRank> seen{};
  const int rank = static_cast<int>(perm.size());
  for (int value : perm) {
    if (value < 0 || value >= rank || seen[static_cast<std::size_t>(value)]) {
      return false;
    }
    seen[static_cast<std::size_t>(value)] = true;
  }
  return true;
}

std::size_t element_count(std::span<const int> dims) {
  std::size_t total = 1;
  for (int d : dims) total *= static_cast<std::size_t>(d);
  return total;
}

std::vector<int> permuted_dims(std::span<const int> src_dims,
                               std::span<const int> perm) {
  std::vector<int> dims(perm.size());
  for (std::size_t d = 0; d < perm.size(); ++d) {
    dims[d] = src_dims[static_cast<std::size_t>(perm[d])];
  }
  return dims;
}

void permute(const double* src, std::span<const int> src_dims,
             std::span<const int> perm, double* dst) {
  permute_impl<false>(src, src_dims, perm, dst);
}

void permute_acc(const double* src, std::span<const int> src_dims,
                 std::span<const int> perm, double* dst) {
  permute_impl<true>(src, src_dims, perm, dst);
}

}  // namespace sia::blas
