#include "blas/elementwise.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace sia::blas {

void fill(std::span<double> x, double value) {
  std::fill(x.begin(), x.end(), value);
}

void scal(std::span<double> x, double alpha) {
  for (double& v : x) v *= alpha;
}

void shift(std::span<double> x, double alpha) {
  for (double& v : x) v += alpha;
}

void copy(std::span<const double> x, std::span<double> y) {
  SIA_CHECK(x.size() == y.size(), "copy: size mismatch");
  std::copy(x.begin(), x.end(), y.begin());
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  SIA_CHECK(x.size() == y.size(), "axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void add(std::span<const double> x, std::span<const double> y,
         std::span<double> z) {
  SIA_CHECK(x.size() == y.size() && y.size() == z.size(),
            "add: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) z[i] = x[i] + y[i];
}

void sub(std::span<const double> x, std::span<const double> y,
         std::span<double> z) {
  SIA_CHECK(x.size() == y.size() && y.size() == z.size(),
            "sub: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) z[i] = x[i] - y[i];
}

void hadamard(std::span<const double> x, std::span<const double> y,
              std::span<double> z) {
  SIA_CHECK(x.size() == y.size() && y.size() == z.size(),
            "hadamard: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) z[i] = x[i] * y[i];
}

double dot(std::span<const double> x, std::span<const double> y) {
  SIA_CHECK(x.size() == y.size(), "dot: size mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) sum += x[i] * y[i];
  return sum;
}

double dot_gather(std::span<const double> x, const double* y,
                  const std::size_t* off) {
  double sum = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) sum += x[i] * y[off[i]];
  return sum;
}

double asum(std::span<const double> x) {
  double sum = 0.0;
  for (double v : x) sum += std::abs(v);
  return sum;
}

double sumsq(std::span<const double> x) {
  double sum = 0.0;
  for (double v : x) sum += v * v;
  return sum;
}

double nrm2(std::span<const double> x) { return std::sqrt(sumsq(x)); }

double max_abs(std::span<const double> x) {
  double best = 0.0;
  for (double v : x) best = std::max(best, std::abs(v));
  return best;
}

}  // namespace sia::blas
