// General tensor permutation (transpose) kernels.
//
// SIAL assignments like V1(k,j,i) = V2(i,j,k) permute a block, and block
// contractions permute operands so the contracted indices become the inner
// GEMM dimension (paper §III footnote 3, §IV-A). These kernels implement
// rank-N permutations for blocks stored row-major (last index fastest).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace sia::blas {

// Maximum tensor rank supported by the block layer (SIAL arrays are at
// most rank 6: the paper notes rank-6 intermediates arise from 4x4
// contractions).
inline constexpr int kMaxRank = 6;

// dst[i0,...,i_{r-1}] = src[i_{perm[0]}, ..., i_{perm[r-1]}]
//
// `src_dims` are the extents of src; dst extent d is src_dims[perm[d]].
// `perm` must be a permutation of 0..rank-1. src and dst must not alias.
// In SIAL terms: if src is declared V2(i,j,k) and the statement is
// V1(k,j,i) = V2(i,j,k), then perm = {2,1,0} maps dst axis 0 (k) to src
// axis 2, etc.
void permute(const double* src, std::span<const int> src_dims,
             std::span<const int> perm, double* dst);

// As permute, but accumulates: dst += permuted(src).
void permute_acc(const double* src, std::span<const int> src_dims,
                 std::span<const int> perm, double* dst);

// Extents of the permuted result.
std::vector<int> permuted_dims(std::span<const int> src_dims,
                               std::span<const int> perm);

// True if `perm` is a valid permutation of 0..rank-1.
bool is_permutation(std::span<const int> perm);

// Number of elements for the given extents.
std::size_t element_count(std::span<const int> dims);

}  // namespace sia::blas
