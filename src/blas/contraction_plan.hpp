// Contraction planning and the per-worker plan cache.
//
// A block contraction dst(dst_ids) = a(a_ids) * b(b_ids) needs a fixed
// amount of symbolic analysis before any floating-point work: partition
// each operand's axes into free and contracted sets, derive the matricized
// m/n/k geometry, build the gather tables that let dgemm_gather read the
// operands in permuted order during packing, and compute the output-side
// permutation. Inside a `pardo` the same symbolic contraction executes
// thousands of times over identically-shaped blocks (the paper's segment
// grid makes shapes highly repetitive), so this analysis is memoized in a
// per-worker (thread-local) cache keyed on the id lists and extents.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

namespace sia::blas {

// Everything dgemm_gather and the output permute need, precomputed once.
struct ContractionPlan {
  // Matricized geometry: result is m x n, contracted dimension k.
  std::size_t m = 1;
  std::size_t n = 1;
  std::size_t k = 1;

  // Gather tables for dgemm_gather: element (i, p) of the matricized A is
  // a[a_row_off[i] + a_col_off[p]], and likewise for B. Row order of A is
  // a's free axes in operand order; columns are the contracted axes in
  // a's order (B rows follow the same contracted order).
  std::vector<std::size_t> a_row_off;
  std::vector<std::size_t> a_col_off;
  std::vector<std::size_t> b_row_off;
  std::vector<std::size_t> b_col_off;

  // True when the operand is already laid out [free..., common...] (A) or
  // [common..., free...] (B), i.e. the gather tables are just the identity
  // row-major addressing. block_dot uses the B flag to skip gathering.
  bool a_contiguous = false;
  bool b_contiguous = false;

  // Output side: extents of the GEMM result in [a_free..., b_free...]
  // order and the permutation taking it into dst's id order. When
  // dst_identity is true the GEMM can write straight into dst.
  std::vector<int> result_dims;
  std::vector<int> final_perm;
  bool dst_identity = true;
};

// Builds a plan from scratch. Throws RuntimeError on rank/extent
// mismatches or when dst_ids is not exactly the free id set. dst_ids may
// be empty (full contraction — block_dot), in which case m == n == 1 and
// k is the whole block.
ContractionPlan build_contraction_plan(std::span<const int> dst_ids,
                                       std::span<const int> a_ids,
                                       std::span<const int> b_ids,
                                       std::span<const int> a_dims,
                                       std::span<const int> b_dims);

// Cumulative hit/miss counters, aggregated across all worker caches.
struct PlanCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

class ContractionPlanCache {
 public:
  // Returns the memoized plan, building it on first sight of the key
  // (dst_ids, a_ids, b_ids, a_dims, b_dims). The reference stays valid for
  // the cache's lifetime. Bumps the process-wide hit/miss counters.
  const ContractionPlan& get(std::span<const int> dst_ids,
                             std::span<const int> a_ids,
                             std::span<const int> b_ids,
                             std::span<const int> a_dims,
                             std::span<const int> b_dims);

  std::size_t size() const { return plans_.size(); }
  void clear() { plans_.clear(); }

 private:
  struct KeyHash {
    std::size_t operator()(const std::vector<int>& key) const;
  };
  std::unordered_map<std::vector<int>, std::unique_ptr<ContractionPlan>,
                     KeyHash>
      plans_;
  std::vector<int> scratch_key_;
};

// The calling thread's (i.e. SIP worker's) plan cache.
ContractionPlanCache& thread_plan_cache();

// Process-wide cache statistics (sum over every worker's cache) and reset,
// for tests and the profiler.
PlanCacheStats plan_cache_stats();
void reset_plan_cache_stats();

}  // namespace sia::blas
