#include "blas/gemm.hpp"

#include <algorithm>
#include <vector>

namespace sia::blas {
namespace {

// Cache-block sizes: MC x KC panel of A stays in L2, KC x NC panel of B in
// L3/L2, with a 4x8 register micro-tile. Sized for typical 32K/512K caches.
constexpr std::size_t kMc = 64;
constexpr std::size_t kKc = 128;
constexpr std::size_t kNc = 512;
constexpr std::size_t kMr = 4;
constexpr std::size_t kNr = 8;

// 4x8 micro-kernel: C[0:4, 0:8] += A_panel (4 x kc) * B_panel (kc x 8).
// A panel is packed column-by-column (kMr entries per k), B panel packed
// row-by-row (kNr entries per k).
void micro_kernel(std::size_t kc, const double* a_pack, const double* b_pack,
                  double* c, std::size_t ldc, std::size_t mr,
                  std::size_t nr) {
  double acc[kMr][kNr] = {};
  for (std::size_t p = 0; p < kc; ++p) {
    const double* b_row = b_pack + p * kNr;
    const double* a_col = a_pack + p * kMr;
    for (std::size_t i = 0; i < kMr; ++i) {
      const double ai = a_col[i];
      for (std::size_t j = 0; j < kNr; ++j) {
        acc[i][j] += ai * b_row[j];
      }
    }
  }
  for (std::size_t i = 0; i < mr; ++i) {
    double* c_row = c + i * ldc;
    for (std::size_t j = 0; j < nr; ++j) {
      c_row[j] += acc[i][j];
    }
  }
}

// Packs a mc x kc panel of A (row-major, lda) into micro-tile order.
void pack_a(const double* a, std::size_t lda, std::size_t mc, std::size_t kc,
            double alpha, std::vector<double>& out) {
  out.assign(((mc + kMr - 1) / kMr) * kMr * kc, 0.0);
  std::size_t offset = 0;
  for (std::size_t i0 = 0; i0 < mc; i0 += kMr) {
    const std::size_t mr = std::min(kMr, mc - i0);
    for (std::size_t p = 0; p < kc; ++p) {
      for (std::size_t i = 0; i < mr; ++i) {
        out[offset + p * kMr + i] = alpha * a[(i0 + i) * lda + p];
      }
    }
    offset += kMr * kc;
  }
}

// Packs a kc x nc panel of B (row-major, ldb) into micro-tile order.
void pack_b(const double* b, std::size_t ldb, std::size_t kc, std::size_t nc,
            std::vector<double>& out) {
  out.assign(((nc + kNr - 1) / kNr) * kNr * kc, 0.0);
  std::size_t offset = 0;
  for (std::size_t j0 = 0; j0 < nc; j0 += kNr) {
    const std::size_t nr = std::min(kNr, nc - j0);
    for (std::size_t p = 0; p < kc; ++p) {
      for (std::size_t j = 0; j < nr; ++j) {
        out[offset + p * kNr + j] = b[p * ldb + j0 + j];
      }
    }
    offset += kNr * kc;
  }
}

void scale_c(std::size_t m, std::size_t n, double beta, double* c,
             std::size_t ldc) {
  if (beta == 1.0) return;
  for (std::size_t i = 0; i < m; ++i) {
    double* row = c + i * ldc;
    if (beta == 0.0) {
      std::fill(row, row + n, 0.0);
    } else {
      for (std::size_t j = 0; j < n; ++j) row[j] *= beta;
    }
  }
}

}  // namespace

void dgemm(std::size_t m, std::size_t n, std::size_t k, double alpha,
           const double* a, std::size_t lda, const double* b, std::size_t ldb,
           double beta, double* c, std::size_t ldc) {
  scale_c(m, n, beta, c, ldc);
  if (m == 0 || n == 0 || k == 0 || alpha == 0.0) return;

  // Small problems: packing overhead dominates, use the direct loop.
  if (m * n * k < 32 * 32 * 32) {
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t p = 0; p < k; ++p) {
        const double aip = alpha * a[i * lda + p];
        const double* b_row = b + p * ldb;
        double* c_row = c + i * ldc;
        for (std::size_t j = 0; j < n; ++j) {
          c_row[j] += aip * b_row[j];
        }
      }
    }
    return;
  }

  thread_local std::vector<double> a_pack;
  thread_local std::vector<double> b_pack;
  thread_local std::vector<double> c_tile(kMr * kNr);

  for (std::size_t j0 = 0; j0 < n; j0 += kNc) {
    const std::size_t nc = std::min(kNc, n - j0);
    for (std::size_t p0 = 0; p0 < k; p0 += kKc) {
      const std::size_t kc = std::min(kKc, k - p0);
      pack_b(b + p0 * ldb + j0, ldb, kc, nc, b_pack);
      for (std::size_t i0 = 0; i0 < m; i0 += kMc) {
        const std::size_t mc = std::min(kMc, m - i0);
        pack_a(a + i0 * lda + p0, lda, mc, kc, alpha, a_pack);
        for (std::size_t jr = 0; jr < nc; jr += kNr) {
          const std::size_t nr = std::min(kNr, nc - jr);
          const double* b_tile = b_pack.data() + (jr / kNr) * kNr * kc;
          for (std::size_t ir = 0; ir < mc; ir += kMr) {
            const std::size_t mr = std::min(kMr, mc - ir);
            const double* a_tile = a_pack.data() + (ir / kMr) * kMr * kc;
            micro_kernel(kc, a_tile, b_tile, c + (i0 + ir) * ldc + j0 + jr,
                         ldc, mr, nr);
          }
        }
      }
    }
  }
}

void dgemm_naive(std::size_t m, std::size_t n, std::size_t k, double alpha,
                 const double* a, std::size_t lda, const double* b,
                 std::size_t ldb, double beta, double* c, std::size_t ldc) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double sum = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        sum += a[i * lda + p] * b[p * ldb + j];
      }
      c[i * ldc + j] = alpha * sum + beta * c[i * ldc + j];
    }
  }
}

}  // namespace sia::blas
