#include "blas/gemm.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <vector>

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define SIA_X86_KERNELS 1
#include <immintrin.h>
#else
#define SIA_X86_KERNELS 0
#endif

namespace sia::blas {
namespace {

// Cache-block sizes: MC x KC panel of A stays in L2, KC x NC panel of B in
// L3/L2. Sized for typical 32K/512K caches. The register micro-tile shape
// (mr x nr) comes from the dispatched micro-kernel.
constexpr std::size_t kMc = 72;
constexpr std::size_t kKc = 256;
constexpr std::size_t kNc = 1024;
constexpr std::size_t kMaxMr = 8;
constexpr std::size_t kMaxNr = 8;

// Below this flop count packing overhead dominates; use the direct loop.
constexpr std::size_t kSmallProblem = 32 * 32 * 32;

// A micro-kernel computes the FULL tile
//   C[0:mr, 0:nr] += A_panel (mr x kc) * B_panel (kc x nr)
// from packed panels: A packed column-by-column (mr entries per k step),
// B packed row-by-row (nr entries per k step). Partial edge tiles are
// routed through a scratch tile by the driver.
using MicroKernelFn = void (*)(std::size_t kc, const double* a_pack,
                               const double* b_pack, double* c,
                               std::size_t ldc);

struct KernelInfo {
  std::size_t mr;
  std::size_t nr;
  MicroKernelFn fn;
  const char* name;
};

// ---------------------------------------------------------------------
// Portable 4x8 micro-kernel (compiles everywhere, autovectorizes on most
// targets).

void micro_kernel_portable(std::size_t kc, const double* a_pack,
                           const double* b_pack, double* c, std::size_t ldc) {
  constexpr std::size_t mr = 4;
  constexpr std::size_t nr = 8;
  double acc[mr][nr] = {};
  for (std::size_t p = 0; p < kc; ++p) {
    const double* b_row = b_pack + p * nr;
    const double* a_col = a_pack + p * mr;
    for (std::size_t i = 0; i < mr; ++i) {
      const double ai = a_col[i];
      for (std::size_t j = 0; j < nr; ++j) {
        acc[i][j] += ai * b_row[j];
      }
    }
  }
  for (std::size_t i = 0; i < mr; ++i) {
    double* c_row = c + i * ldc;
    for (std::size_t j = 0; j < nr; ++j) {
      c_row[j] += acc[i][j];
    }
  }
}

constexpr KernelInfo kPortableKernel{4, 8, micro_kernel_portable,
                                     "portable-4x8"};

// ---------------------------------------------------------------------
// AVX2+FMA 6x8 micro-kernel: 12 accumulator ymm registers + 2 B vectors +
// 1 A broadcast = 15 of 16, the classic BLIS-style tiling. Compiled with a
// target attribute so the translation unit itself needs no special flags;
// selected at runtime only when the CPU reports AVX2 and FMA.

#if SIA_X86_KERNELS
__attribute__((target("avx2,fma"))) void micro_kernel_avx2_6x8(
    std::size_t kc, const double* a_pack, const double* b_pack, double* c,
    std::size_t ldc) {
  __m256d acc00 = _mm256_setzero_pd(), acc01 = _mm256_setzero_pd();
  __m256d acc10 = _mm256_setzero_pd(), acc11 = _mm256_setzero_pd();
  __m256d acc20 = _mm256_setzero_pd(), acc21 = _mm256_setzero_pd();
  __m256d acc30 = _mm256_setzero_pd(), acc31 = _mm256_setzero_pd();
  __m256d acc40 = _mm256_setzero_pd(), acc41 = _mm256_setzero_pd();
  __m256d acc50 = _mm256_setzero_pd(), acc51 = _mm256_setzero_pd();
  for (std::size_t p = 0; p < kc; ++p) {
    const __m256d b0 = _mm256_loadu_pd(b_pack + p * 8);
    const __m256d b1 = _mm256_loadu_pd(b_pack + p * 8 + 4);
    const double* a_col = a_pack + p * 6;
    __m256d ai = _mm256_broadcast_sd(a_col + 0);
    acc00 = _mm256_fmadd_pd(ai, b0, acc00);
    acc01 = _mm256_fmadd_pd(ai, b1, acc01);
    ai = _mm256_broadcast_sd(a_col + 1);
    acc10 = _mm256_fmadd_pd(ai, b0, acc10);
    acc11 = _mm256_fmadd_pd(ai, b1, acc11);
    ai = _mm256_broadcast_sd(a_col + 2);
    acc20 = _mm256_fmadd_pd(ai, b0, acc20);
    acc21 = _mm256_fmadd_pd(ai, b1, acc21);
    ai = _mm256_broadcast_sd(a_col + 3);
    acc30 = _mm256_fmadd_pd(ai, b0, acc30);
    acc31 = _mm256_fmadd_pd(ai, b1, acc31);
    ai = _mm256_broadcast_sd(a_col + 4);
    acc40 = _mm256_fmadd_pd(ai, b0, acc40);
    acc41 = _mm256_fmadd_pd(ai, b1, acc41);
    ai = _mm256_broadcast_sd(a_col + 5);
    acc50 = _mm256_fmadd_pd(ai, b0, acc50);
    acc51 = _mm256_fmadd_pd(ai, b1, acc51);
  }
  // Lambdas would not inherit the target attribute, so the row stores are
  // written out long-hand.
  __m256d lo[6] = {acc00, acc10, acc20, acc30, acc40, acc50};
  __m256d hi[6] = {acc01, acc11, acc21, acc31, acc41, acc51};
  for (std::size_t i = 0; i < 6; ++i) {
    double* row = c + i * ldc;
    _mm256_storeu_pd(row, _mm256_add_pd(_mm256_loadu_pd(row), lo[i]));
    _mm256_storeu_pd(row + 4, _mm256_add_pd(_mm256_loadu_pd(row + 4), hi[i]));
  }
}

constexpr KernelInfo kAvx2Kernel{6, 8, micro_kernel_avx2_6x8, "avx2-6x8"};
#endif  // SIA_X86_KERNELS

const KernelInfo* detect_kernel() {
#if SIA_X86_KERNELS
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return &kAvx2Kernel;
  }
#endif
  return &kPortableKernel;
}

std::atomic<const KernelInfo*> g_kernel{nullptr};

const KernelInfo& active_kernel() {
  const KernelInfo* kernel = g_kernel.load(std::memory_order_acquire);
  if (kernel == nullptr) {
    kernel = detect_kernel();
    g_kernel.store(kernel, std::memory_order_release);
  }
  return *kernel;
}

// ---------------------------------------------------------------------
// Operand accessors: how packing reads A and B. Strided is the classic
// row-major view; Gather reads through the plan's offset tables, folding
// an arbitrary tensor permutation into the packing pass.

struct StridedView {
  const double* base;
  std::size_t ld;
  double at(std::size_t row, std::size_t col) const {
    return base[row * ld + col];
  }
  std::size_t row_offset(std::size_t row) const { return row * ld; }
  double at_offset(std::size_t row_off, std::size_t col) const {
    return base[row_off + col];
  }
};

struct GatherView {
  const double* base;
  const std::size_t* row_off;
  const std::size_t* col_off;
  double at(std::size_t row, std::size_t col) const {
    return base[row_off[row] + col_off[col]];
  }
  std::size_t row_offset(std::size_t row) const { return row_off[row]; }
  double at_offset(std::size_t roff, std::size_t col) const {
    return base[roff + col_off[col]];
  }
};

// Packs the mc x kc panel of A starting at (i0, p0) into micro-tile order:
// for each mr-row slab, kc columns of mr entries. Rows beyond mc are
// zero-padded so the micro-kernel always sees a full slab.
template <typename ViewA>
void pack_a(const ViewA& a, std::size_t i0, std::size_t p0, std::size_t mc,
            std::size_t kc, double alpha, std::size_t mr_tile,
            std::vector<double>& out) {
  out.assign(((mc + mr_tile - 1) / mr_tile) * mr_tile * kc, 0.0);
  std::size_t slab = 0;
  for (std::size_t ir = 0; ir < mc; ir += mr_tile) {
    const std::size_t mr = std::min(mr_tile, mc - ir);
    double* dst = out.data() + slab;
    for (std::size_t i = 0; i < mr; ++i) {
      const std::size_t roff = a.row_offset(i0 + ir + i);
      for (std::size_t p = 0; p < kc; ++p) {
        dst[p * mr_tile + i] = alpha * a.at_offset(roff, p0 + p);
      }
    }
    slab += mr_tile * kc;
  }
}

// Packs the kc x nc panel of B starting at (p0, j0) into micro-tile order:
// for each nr-column slab, kc rows of nr entries, zero-padded on the right.
template <typename ViewB>
void pack_b(const ViewB& b, std::size_t p0, std::size_t j0, std::size_t kc,
            std::size_t nc, std::size_t nr_tile, std::vector<double>& out) {
  out.assign(((nc + nr_tile - 1) / nr_tile) * nr_tile * kc, 0.0);
  std::size_t slab = 0;
  for (std::size_t jr = 0; jr < nc; jr += nr_tile) {
    const std::size_t nr = std::min(nr_tile, nc - jr);
    double* dst = out.data() + slab;
    for (std::size_t p = 0; p < kc; ++p) {
      const std::size_t roff = b.row_offset(p0 + p);
      double* row = dst + p * nr_tile;
      for (std::size_t j = 0; j < nr; ++j) {
        row[j] = b.at_offset(roff, j0 + jr + j);
      }
    }
    slab += nr_tile * kc;
  }
}

void scale_c(std::size_t m, std::size_t n, double beta, double* c,
             std::size_t ldc) {
  if (beta == 1.0) return;
  for (std::size_t i = 0; i < m; ++i) {
    double* row = c + i * ldc;
    if (beta == 0.0) {
      std::fill(row, row + n, 0.0);
    } else {
      for (std::size_t j = 0; j < n; ++j) row[j] *= beta;
    }
  }
}

// Shared blocked driver. C must already be beta-scaled.
template <typename ViewA, typename ViewB>
void gemm_blocked(std::size_t m, std::size_t n, std::size_t k, double alpha,
                  const ViewA& a, const ViewB& b, double* c,
                  std::size_t ldc) {
  const KernelInfo& kernel = active_kernel();
  const std::size_t mr_tile = kernel.mr;
  const std::size_t nr_tile = kernel.nr;

  thread_local std::vector<double> a_pack;
  thread_local std::vector<double> b_pack;
  double edge_tile[kMaxMr * kMaxNr];

  for (std::size_t j0 = 0; j0 < n; j0 += kNc) {
    const std::size_t nc = std::min(kNc, n - j0);
    for (std::size_t p0 = 0; p0 < k; p0 += kKc) {
      const std::size_t kc = std::min(kKc, k - p0);
      pack_b(b, p0, j0, kc, nc, nr_tile, b_pack);
      for (std::size_t i0 = 0; i0 < m; i0 += kMc) {
        const std::size_t mc = std::min(kMc, m - i0);
        pack_a(a, i0, p0, mc, kc, alpha, mr_tile, a_pack);
        for (std::size_t jr = 0; jr < nc; jr += nr_tile) {
          const std::size_t nr = std::min(nr_tile, nc - jr);
          const double* b_tile = b_pack.data() + (jr / nr_tile) * nr_tile * kc;
          for (std::size_t ir = 0; ir < mc; ir += mr_tile) {
            const std::size_t mr = std::min(mr_tile, mc - ir);
            const double* a_tile =
                a_pack.data() + (ir / mr_tile) * mr_tile * kc;
            double* c_tile = c + (i0 + ir) * ldc + j0 + jr;
            if (mr == mr_tile && nr == nr_tile) {
              kernel.fn(kc, a_tile, b_tile, c_tile, ldc);
            } else {
              // Partial edge tile: run the kernel into a dense scratch
              // tile and accumulate the live mr x nr corner into C.
              std::memset(edge_tile, 0, sizeof(edge_tile));
              kernel.fn(kc, a_tile, b_tile, edge_tile, nr_tile);
              for (std::size_t i = 0; i < mr; ++i) {
                double* c_row = c_tile + i * ldc;
                const double* t_row = edge_tile + i * nr_tile;
                for (std::size_t j = 0; j < nr; ++j) c_row[j] += t_row[j];
              }
            }
          }
        }
      }
    }
  }
}

template <typename ViewA, typename ViewB>
void gemm_dispatch(std::size_t m, std::size_t n, std::size_t k, double alpha,
                   const ViewA& a, const ViewB& b, double beta, double* c,
                   std::size_t ldc) {
  scale_c(m, n, beta, c, ldc);
  if (m == 0 || n == 0 || k == 0 || alpha == 0.0) return;

  if (m == 1 && n == 1) {
    // Degenerate full contraction: a plain dot, never worth packing.
    double sum = 0.0;
    const std::size_t a_row = a.row_offset(0);
    for (std::size_t p = 0; p < k; ++p) {
      sum += a.at_offset(a_row, p) * b.at(p, 0);
    }
    c[0] += alpha * sum;
    return;
  }

  if (m * n * k < kSmallProblem) {
    for (std::size_t i = 0; i < m; ++i) {
      const std::size_t a_row = a.row_offset(i);
      double* c_row = c + i * ldc;
      for (std::size_t p = 0; p < k; ++p) {
        const double aip = alpha * a.at_offset(a_row, p);
        const std::size_t b_row = b.row_offset(p);
        for (std::size_t j = 0; j < n; ++j) {
          c_row[j] += aip * b.at_offset(b_row, j);
        }
      }
    }
    return;
  }

  gemm_blocked(m, n, k, alpha, a, b, c, ldc);
}

}  // namespace

void dgemm(std::size_t m, std::size_t n, std::size_t k, double alpha,
           const double* a, std::size_t lda, const double* b, std::size_t ldb,
           double beta, double* c, std::size_t ldc) {
  gemm_dispatch(m, n, k, alpha, StridedView{a, lda}, StridedView{b, ldb},
                beta, c, ldc);
}

void dgemm_gather(std::size_t m, std::size_t n, std::size_t k, double alpha,
                  const double* a, const std::size_t* a_row_off,
                  const std::size_t* a_col_off, const double* b,
                  const std::size_t* b_row_off, const std::size_t* b_col_off,
                  double beta, double* c, std::size_t ldc) {
  gemm_dispatch(m, n, k, alpha, GatherView{a, a_row_off, a_col_off},
                GatherView{b, b_row_off, b_col_off}, beta, c, ldc);
}

void dgemm_naive(std::size_t m, std::size_t n, std::size_t k, double alpha,
                 const double* a, std::size_t lda, const double* b,
                 std::size_t ldb, double beta, double* c, std::size_t ldc) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double sum = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        sum += a[i * lda + p] * b[p * ldb + j];
      }
      c[i * ldc + j] = alpha * sum + beta * c[i * ldc + j];
    }
  }
}

std::string_view gemm_kernel_name() { return active_kernel().name; }

bool select_gemm_kernel(std::string_view name) {
  if (name == "auto") {
    g_kernel.store(detect_kernel(), std::memory_order_release);
    return true;
  }
  if (name == "portable") {
    g_kernel.store(&kPortableKernel, std::memory_order_release);
    return true;
  }
#if SIA_X86_KERNELS
  if (name == "avx2") {
    if (!__builtin_cpu_supports("avx2") || !__builtin_cpu_supports("fma")) {
      return false;
    }
    g_kernel.store(&kAvx2Kernel, std::memory_order_release);
    return true;
  }
#endif
  return false;
}

}  // namespace sia::blas
