// Element-wise kernels on contiguous double buffers.
//
// These back SIAL's intrinsic block-scalar super instructions: assigning a
// scalar to a block fills it, multiplying a block by a scalar scales it,
// and so on (paper §IV-A).
#pragma once

#include <cstddef>
#include <span>

namespace sia::blas {

void fill(std::span<double> x, double value);
void scal(std::span<double> x, double alpha);           // x *= alpha
void shift(std::span<double> x, double alpha);          // x += alpha
void copy(std::span<const double> x, std::span<double> y);
void axpy(double alpha, std::span<const double> x, std::span<double> y);
void add(std::span<const double> x, std::span<const double> y,
         std::span<double> z);                          // z = x + y
void sub(std::span<const double> x, std::span<const double> y,
         std::span<double> z);                          // z = x - y
void hadamard(std::span<const double> x, std::span<const double> y,
              std::span<double> z);                     // z = x .* y
double dot(std::span<const double> x, std::span<const double> y);
// Dot of contiguous x with a gathered y: sum_i x[i] * y[off[i]]. Used by
// block_dot when the operands' index orders differ, so the permutation is
// folded into the reduction instead of materializing a permuted copy.
double dot_gather(std::span<const double> x, const double* y,
                  const std::size_t* off);
double asum(std::span<const double> x);
double sumsq(std::span<const double> x);  // sum of squares (nrm2 squared)
double nrm2(std::span<const double> x);
double max_abs(std::span<const double> x);

}  // namespace sia::blas
