#include "blas/contraction_plan.hpp"

#include <algorithm>
#include <array>
#include <atomic>

#include "blas/permute.hpp"
#include "common/error.hpp"

namespace sia::blas {
namespace {

std::atomic<std::uint64_t> g_hits{0};
std::atomic<std::uint64_t> g_misses{0};

int find_id(std::span<const int> ids, int id) {
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (ids[i] == id) return static_cast<int>(i);
  }
  return -1;
}

// Row-major strides (last index fastest).
std::array<std::size_t, kMaxRank> strides_of(std::span<const int> dims) {
  std::array<std::size_t, kMaxRank> strides{};
  std::size_t stride = 1;
  for (int d = static_cast<int>(dims.size()) - 1; d >= 0; --d) {
    strides[static_cast<std::size_t>(d)] = stride;
    stride *= static_cast<std::size_t>(dims[static_cast<std::size_t>(d)]);
  }
  return strides;
}

// Offsets of every multi-index over the axis subset `axes` (in that
// order, last entry fastest), using the source tensor's strides. Because
// row-major offsets are additive over disjoint axis groups, the offset of
// a full element is the sum of its group offsets — which is what lets the
// GEMM address a permuted tensor through two 1-D tables.
std::vector<std::size_t> axis_offsets(std::span<const int> axes,
                                      std::span<const int> dims,
                                      const std::array<std::size_t, kMaxRank>&
                                          strides) {
  std::size_t total = 1;
  for (const int axis : axes) {
    total *= static_cast<std::size_t>(dims[static_cast<std::size_t>(axis)]);
  }
  std::vector<std::size_t> offsets(total);
  std::array<int, kMaxRank> counter{};
  std::size_t offset = 0;
  for (std::size_t idx = 0; idx < total; ++idx) {
    offsets[idx] = offset;
    for (int d = static_cast<int>(axes.size()) - 1; d >= 0; --d) {
      const std::size_t ud = static_cast<std::size_t>(d);
      const std::size_t axis = static_cast<std::size_t>(axes[ud]);
      offset += strides[axis];
      if (++counter[ud] < dims[axis]) break;
      offset -= strides[axis] * static_cast<std::size_t>(dims[axis]);
      counter[ud] = 0;
    }
  }
  return offsets;
}

}  // namespace

ContractionPlan build_contraction_plan(std::span<const int> dst_ids,
                                       std::span<const int> a_ids,
                                       std::span<const int> b_ids,
                                       std::span<const int> a_dims,
                                       std::span<const int> b_dims) {
  if (a_ids.size() != a_dims.size() || b_ids.size() != b_dims.size()) {
    throw RuntimeError("contraction plan: id/extent rank mismatch");
  }
  const int a_rank = static_cast<int>(a_ids.size());
  const int b_rank = static_cast<int>(b_ids.size());

  // Partition a's axes into free and contracted (order preserved).
  std::vector<int> a_free, a_common;
  for (int d = 0; d < a_rank; ++d) {
    if (find_id(b_ids, a_ids[static_cast<std::size_t>(d)]) >= 0) {
      a_common.push_back(d);
    } else {
      a_free.push_back(d);
    }
  }
  // b's axes: common first in a's common order, then free.
  std::vector<int> b_common, b_free;
  for (const int a_axis : a_common) {
    b_common.push_back(
        find_id(b_ids, a_ids[static_cast<std::size_t>(a_axis)]));
  }
  for (int d = 0; d < b_rank; ++d) {
    if (find_id(a_ids, b_ids[static_cast<std::size_t>(d)]) < 0) {
      b_free.push_back(d);
    }
  }

  // Validate extents along contracted ids.
  for (std::size_t c = 0; c < a_common.size(); ++c) {
    const int ae = a_dims[static_cast<std::size_t>(a_common[c])];
    const int be = b_dims[static_cast<std::size_t>(b_common[c])];
    if (ae != be) {
      throw RuntimeError("contraction extent mismatch along a shared index");
    }
  }

  ContractionPlan plan;
  std::vector<int> m_dims, n_dims;
  for (const int axis : a_free) {
    const int extent = a_dims[static_cast<std::size_t>(axis)];
    m_dims.push_back(extent);
    plan.m *= static_cast<std::size_t>(extent);
  }
  for (const int axis : a_common) {
    plan.k *= static_cast<std::size_t>(a_dims[static_cast<std::size_t>(axis)]);
  }
  for (const int axis : b_free) {
    const int extent = b_dims[static_cast<std::size_t>(axis)];
    n_dims.push_back(extent);
    plan.n *= static_cast<std::size_t>(extent);
  }

  const auto a_strides = strides_of(a_dims);
  const auto b_strides = strides_of(b_dims);
  plan.a_row_off = axis_offsets(a_free, a_dims, a_strides);
  plan.a_col_off = axis_offsets(a_common, a_dims, a_strides);
  plan.b_row_off = axis_offsets(b_common, b_dims, b_strides);
  plan.b_col_off = axis_offsets(b_free, b_dims, b_strides);

  // Contiguity: the matricized operand equals plain row-major addressing
  // when its axis order [free..., common...] / [common..., free...] is
  // already ascending.
  std::vector<int> a_order(a_free);
  a_order.insert(a_order.end(), a_common.begin(), a_common.end());
  plan.a_contiguous = std::is_sorted(a_order.begin(), a_order.end());
  std::vector<int> b_order(b_common);
  b_order.insert(b_order.end(), b_free.begin(), b_free.end());
  plan.b_contiguous = std::is_sorted(b_order.begin(), b_order.end());

  // Output side: GEMM produces [a_free..., b_free...]; dst may want any
  // permutation of those ids.
  std::vector<int> result_ids;
  for (const int axis : a_free) {
    result_ids.push_back(a_ids[static_cast<std::size_t>(axis)]);
  }
  for (const int axis : b_free) {
    result_ids.push_back(b_ids[static_cast<std::size_t>(axis)]);
  }
  if (result_ids.size() != dst_ids.size()) {
    throw RuntimeError(
        "contraction destination rank does not match the free index set");
  }
  plan.result_dims = std::move(m_dims);
  plan.result_dims.insert(plan.result_dims.end(), n_dims.begin(),
                          n_dims.end());
  plan.final_perm.resize(dst_ids.size());
  plan.dst_identity = true;
  for (std::size_t d = 0; d < dst_ids.size(); ++d) {
    const int pos = find_id(result_ids, dst_ids[d]);
    if (pos < 0) {
      throw RuntimeError("contraction destination index not produced");
    }
    plan.final_perm[d] = pos;
    if (pos != static_cast<int>(d)) plan.dst_identity = false;
  }
  return plan;
}

std::size_t ContractionPlanCache::KeyHash::operator()(
    const std::vector<int>& key) const {
  // FNV-1a over the int sequence.
  std::uint64_t hash = 1469598103934665603ULL;
  for (const int value : key) {
    hash ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(value));
    hash *= 1099511628211ULL;
  }
  return static_cast<std::size_t>(hash);
}

const ContractionPlan& ContractionPlanCache::get(std::span<const int> dst_ids,
                                                 std::span<const int> a_ids,
                                                 std::span<const int> b_ids,
                                                 std::span<const int> a_dims,
                                                 std::span<const int> b_dims) {
  std::vector<int>& key = scratch_key_;
  key.clear();
  key.reserve(3 + dst_ids.size() + 2 * (a_ids.size() + b_ids.size()));
  key.push_back(static_cast<int>(dst_ids.size()));
  key.push_back(static_cast<int>(a_ids.size()));
  key.push_back(static_cast<int>(b_ids.size()));
  key.insert(key.end(), dst_ids.begin(), dst_ids.end());
  key.insert(key.end(), a_ids.begin(), a_ids.end());
  key.insert(key.end(), b_ids.begin(), b_ids.end());
  key.insert(key.end(), a_dims.begin(), a_dims.end());
  key.insert(key.end(), b_dims.begin(), b_dims.end());

  const auto it = plans_.find(key);
  if (it != plans_.end()) {
    g_hits.fetch_add(1, std::memory_order_relaxed);
    return *it->second;
  }
  g_misses.fetch_add(1, std::memory_order_relaxed);
  auto plan = std::make_unique<ContractionPlan>(
      build_contraction_plan(dst_ids, a_ids, b_ids, a_dims, b_dims));
  const ContractionPlan& ref = *plan;
  plans_.emplace(key, std::move(plan));
  return ref;
}

ContractionPlanCache& thread_plan_cache() {
  thread_local ContractionPlanCache cache;
  return cache;
}

PlanCacheStats plan_cache_stats() {
  PlanCacheStats stats;
  stats.hits = g_hits.load(std::memory_order_relaxed);
  stats.misses = g_misses.load(std::memory_order_relaxed);
  return stats;
}

void reset_plan_cache_stats() {
  g_hits.store(0, std::memory_order_relaxed);
  g_misses.store(0, std::memory_order_relaxed);
}

}  // namespace sia::blas
