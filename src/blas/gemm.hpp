// Dense matrix multiply kernels.
//
// The SIP's computational super instructions "should be implemented as
// efficiently as possible on the given platform ... taking advantage of
// high quality implementations of library routines such as DGEMM" (paper
// §V-A). No vendor BLAS is available here, so this is our DGEMM: a cache-
// blocked, register-tiled, row-major kernel with a runtime-dispatched
// micro-kernel (AVX2/FMA 6x8 on capable x86, portable 4x8 otherwise).
//
// Two entry points share the blocked driver:
//   * dgemm        — plain strided row-major operands;
//   * dgemm_gather — operands addressed through per-row/per-column offset
//     tables, so a tensor operand whose axes must be permuted before the
//     multiply is read in permuted order *during packing* instead of being
//     materialized by a separate transpose pass (transpose-aware packing).
// Block contractions reduce to dgemm_gather via a ContractionPlan
// (paper §III, footnote 3).
#pragma once

#include <cstddef>
#include <string_view>

namespace sia::blas {

// C (m x n) = alpha * A (m x k) * B (k x n) + beta * C.
// All matrices are dense row-major with the given leading dimensions
// (elements per row). Aliasing between C and A/B is not allowed.
void dgemm(std::size_t m, std::size_t n, std::size_t k, double alpha,
           const double* a, std::size_t lda, const double* b, std::size_t ldb,
           double beta, double* c, std::size_t ldc);

// As dgemm, but A and B are addressed through offset tables:
//   A(i, p) = a[a_row_off[i] + a_col_off[p]]
//   B(p, j) = b[b_row_off[p] + b_col_off[j]]
// Because a row-major tensor offset is additive over disjoint axis groups,
// any "matricized" view of a permuted tensor can be expressed this way;
// the tables are built once per contraction plan and the transpose is
// folded into panel packing. C is written densely (row-major, ldc).
void dgemm_gather(std::size_t m, std::size_t n, std::size_t k, double alpha,
                  const double* a, const std::size_t* a_row_off,
                  const std::size_t* a_col_off, const double* b,
                  const std::size_t* b_row_off, const std::size_t* b_col_off,
                  double beta, double* c, std::size_t ldc);

// Convenience overload for packed (ld == logical width) matrices.
inline void dgemm_packed(std::size_t m, std::size_t n, std::size_t k,
                         double alpha, const double* a, const double* b,
                         double beta, double* c) {
  dgemm(m, n, k, alpha, a, k, b, n, beta, c, n);
}

// Reference triple loop used by tests to validate the blocked kernel.
void dgemm_naive(std::size_t m, std::size_t n, std::size_t k, double alpha,
                 const double* a, std::size_t lda, const double* b,
                 std::size_t ldb, double beta, double* c, std::size_t ldc);

// Name of the micro-kernel currently in use ("avx2-6x8", "portable-4x8").
// The kernel is selected once, on first use, from runtime CPU features.
std::string_view gemm_kernel_name();

// Forces a specific micro-kernel: "portable", "avx2", or "auto" (redo CPU
// detection). Returns false (and leaves the selection unchanged) if the
// requested kernel is not available on this build/CPU. Intended for tests
// and benchmarks; not thread-safe against concurrent dgemm calls.
bool select_gemm_kernel(std::string_view name);

}  // namespace sia::blas
