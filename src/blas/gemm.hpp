// Dense matrix multiply kernel.
//
// The SIP's computational super instructions "should be implemented as
// efficiently as possible on the given platform ... taking advantage of
// high quality implementations of library routines such as DGEMM" (paper
// §V-A). No vendor BLAS is available here, so this is our DGEMM: a cache-
// blocked, register-tiled, row-major kernel. Block contractions reduce to
// this routine after permuting operands (paper §III, footnote 3).
#pragma once

#include <cstddef>

namespace sia::blas {

// C (m x n) = alpha * A (m x k) * B (k x n) + beta * C.
// All matrices are dense row-major with the given leading dimensions
// (elements per row). Aliasing between C and A/B is not allowed.
void dgemm(std::size_t m, std::size_t n, std::size_t k, double alpha,
           const double* a, std::size_t lda, const double* b, std::size_t ldb,
           double beta, double* c, std::size_t ldc);

// Convenience overload for packed (ld == logical width) matrices.
inline void dgemm_packed(std::size_t m, std::size_t n, std::size_t k,
                         double alpha, const double* a, const double* b,
                         double beta, double* c) {
  dgemm(m, n, k, alpha, a, k, b, n, beta, c, n);
}

// Reference triple loop used by tests to validate the blocked kernel.
void dgemm_naive(std::size_t m, std::size_t n, std::size_t k, double alpha,
                 const double* a, std::size_t lda, const double* b,
                 std::size_t ldb, double beta, double* c, std::size_t ldc);

}  // namespace sia::blas
