#include "chem/reference.hpp"

#include <array>
#include <cmath>

#include "chem/integrals.hpp"
#include "common/rng.hpp"

namespace sia::chem {

namespace {

// Mirrors the `random_block` built-in super instruction: value from the
// hash chain over absolute coordinates, seeded.
double random_element(double seed, std::initializer_list<long> coords) {
  std::uint64_t key = static_cast<std::uint64_t>(seed);
  for (const long c : coords) {
    key = hash_combine(key, static_cast<std::uint64_t>(c));
  }
  return 2.0 * unit_double(key) - 1.0;
}

double denom4(long p0, long p1, long p2, long p3, long nocc) {
  const std::array<long, 4> coords = {p0, p1, p2, p3};
  return denominator_from_coords(coords, nocc);
}

}  // namespace

double ref_contraction_rnorm2(long norb, long nocc, double seed) {
  // R(mu,nu,i,j) = sum_{la,si} V(mu,nu,la,si) * T(la,si,i,j).
  double rnorm2 = 0.0;
  for (long mu = 1; mu <= norb; ++mu) {
    for (long nu = 1; nu <= norb; ++nu) {
      for (long i = 1; i <= nocc; ++i) {
        for (long j = 1; j <= nocc; ++j) {
          double r = 0.0;
          for (long la = 1; la <= norb; ++la) {
            for (long si = 1; si <= norb; ++si) {
              r += synthetic_integral(mu, nu, la, si) *
                   random_element(seed, {la, si, i, j});
            }
          }
          rnorm2 += r * r;
        }
      }
    }
  }
  return rnorm2;
}

double ref_mp2_energy(long norb, long nocc) {
  double e2 = 0.0;
  for (long i = 1; i <= nocc; ++i) {
    for (long j = 1; j <= nocc; ++j) {
      for (long a = nocc + 1; a <= norb; ++a) {
        for (long b = nocc + 1; b <= norb; ++b) {
          const double direct = synthetic_integral(i, a, j, b);
          const double exchange = synthetic_integral(i, b, j, a);
          e2 += direct * (2.0 * direct - exchange) /
                denom4(i, a, j, b, nocc);
        }
      }
    }
  }
  return e2;
}

double ref_mp2_amp_norm2(long norb, long nocc) {
  double norm2 = 0.0;
  for (long i = 1; i <= nocc; ++i) {
    for (long j = 1; j <= nocc; ++j) {
      for (long a = nocc + 1; a <= norb; ++a) {
        for (long b = nocc + 1; b <= norb; ++b) {
          const double t = synthetic_integral(i, a, j, b) /
                           denom4(i, a, j, b, nocc);
          norm2 += t * t;
        }
      }
    }
  }
  return norm2;
}

double ref_ccd_energy(long norb, long nocc, int iterations,
                      double* final_norm2) {
  const long nv = norb - nocc;
  const long no = nocc;
  auto index = [&](long a, long i, long b, long j) {
    // a,b in [1,nv] relative; i,j in [1,no] relative.
    return (((a - 1) * no + (i - 1)) * nv + (b - 1)) * no + (j - 1);
  };
  const std::size_t total = static_cast<std::size_t>(nv * no * nv * no);
  std::vector<double> t(total), t_next(total);

  // T0 = V / D.
  for (long a = 1; a <= nv; ++a) {
    for (long i = 1; i <= no; ++i) {
      for (long b = 1; b <= nv; ++b) {
        for (long j = 1; j <= no; ++j) {
          const long aa = nocc + a, bb = nocc + b;
          t[static_cast<std::size_t>(index(a, i, b, j))] =
              synthetic_integral(aa, i, bb, j) /
              denom4(aa, i, bb, j, nocc);
        }
      }
    }
  }

  double norm2 = 0.0;
  for (int sweep = 0; sweep < iterations; ++sweep) {
    norm2 = 0.0;
    for (long a = 1; a <= nv; ++a) {
      for (long i = 1; i <= no; ++i) {
        for (long b = 1; b <= nv; ++b) {
          for (long j = 1; j <= no; ++j) {
            const long aa = nocc + a, bb = nocc + b;
            double r = synthetic_integral(aa, i, bb, j);
            // Particle-particle ladder.
            for (long c = 1; c <= nv; ++c) {
              for (long d = 1; d <= nv; ++d) {
                r += synthetic_integral(aa, nocc + c, bb, nocc + d) *
                     t[static_cast<std::size_t>(index(c, i, d, j))];
              }
            }
            // Hole-hole ladder.
            for (long k = 1; k <= no; ++k) {
              for (long l = 1; l <= no; ++l) {
                r += synthetic_integral(k, i, l, j) *
                     t[static_cast<std::size_t>(index(a, k, b, l))];
              }
            }
            // Ring.
            for (long k = 1; k <= no; ++k) {
              for (long c = 1; c <= nv; ++c) {
                r += synthetic_integral(k, aa, nocc + c, i) *
                     t[static_cast<std::size_t>(index(c, k, b, j))];
              }
            }
            const double tn = r / denom4(aa, i, bb, j, nocc);
            t_next[static_cast<std::size_t>(index(a, i, b, j))] = tn;
            norm2 += tn * tn;
          }
        }
      }
    }
    t.swap(t_next);
  }
  if (final_norm2 != nullptr) *final_norm2 = norm2;

  double energy = 0.0;
  for (long a = 1; a <= nv; ++a) {
    for (long i = 1; i <= no; ++i) {
      for (long b = 1; b <= nv; ++b) {
        for (long j = 1; j <= no; ++j) {
          energy += t[static_cast<std::size_t>(index(a, i, b, j))] *
                    synthetic_integral(nocc + a, i, nocc + b, j);
        }
      }
    }
  }
  return energy;
}

std::vector<double> ref_fock_matrix(long norb) {
  std::vector<double> fock(static_cast<std::size_t>(norb * norb), 0.0);
  for (long mu = 1; mu <= norb; ++mu) {
    for (long nu = 1; nu <= norb; ++nu) {
      double f = synthetic_core_h(mu, nu);
      for (long la = 1; la <= norb; ++la) {
        for (long si = 1; si <= norb; ++si) {
          f += synthetic_density(la, si) *
               (2.0 * synthetic_integral(mu, nu, la, si) -
                synthetic_integral(mu, la, nu, si));
        }
      }
      fock[static_cast<std::size_t>((mu - 1) * norb + (nu - 1))] = f;
    }
  }
  return fock;
}

double ref_fock_norm(long norb) {
  double norm2 = 0.0;
  for (const double f : ref_fock_matrix(norb)) norm2 += f * f;
  return std::sqrt(norm2);
}

}  // namespace sia::chem
