// Deterministic synthetic electronic-structure data.
//
// The paper's runtime computes blocks of two-electron integrals on demand
// instead of storing the 8 TB array ("each block of V is computed on
// demand using the intrinsic super instruction compute_integrals", §IV-D).
// We reproduce the data-flow exactly with a synthetic integral: a smooth,
// rapidly decaying, permutation-symmetric function of the global orbital
// indices. It is physically meaningless but has the right structure —
// computable per element from global coordinates, symmetric under
// (p<->q), (r<->s) and (pq)<->(rs), and decaying off-diagonal so iterative
// amplitude equations converge.
//
// This header also registers the chem super instructions with the SIP:
//   compute_integrals  V(p,q,r,s)        fill a rank-4 integral block
//   compute_core_h     H(p,q)            fill a rank-2 core-Hamiltonian
//   compute_density    D(p,q)            fill a rank-2 model density
//   mp2_block_energy   V1 V2 esum        accumulate an MP2 pair energy
//   cc_update          T R               T = R / orbital-energy denominator
// All are pure functions of absolute coordinates, so every worker sees
// identical replicated data.
#pragma once

#include <span>

namespace sia::chem {

// Model orbital energy of 1-based orbital p. Occupied orbitals (p <=
// nocc) sit around -2, virtuals above +1; the gap keeps perturbative
// denominators well away from zero.
double orbital_energy(long p, long nocc);

// Synthetic two-electron integral (pq|rs), 1-based orbital indices.
double synthetic_integral(long p, long q, long r, long s);

// Synthetic one-electron (core) Hamiltonian element.
double synthetic_core_h(long p, long q);

// Synthetic density matrix element.
double synthetic_density(long p, long q);

// MP2 denominator for excitation (i,j) -> (a,b).
double mp2_denominator(long i, long a, long j, long b, long nocc);

// Orientation-independent denominator: occupied orbitals (p <= nocc)
// enter with +eps, virtuals with -eps, so any index order of a doubles
// amplitude block yields the same value.
double denominator_from_coords(std::span<const long> coords, long nocc);

// Registers the chem super instructions (idempotent). The number of
// occupied orbitals is read from the SIAL program's `nocc` constant via
// the context, so callers pass it once per program, not per call:
// instructions that need it take it as an explicit scalar/number
// argument in SIAL (see programs.cpp).
void register_chem_superinstructions();

}  // namespace sia::chem
