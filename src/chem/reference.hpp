// Dense single-threaded reference implementations.
//
// Each SIAL program in programs.hpp has an element-wise mirror here,
// computed with plain loops over the full (small) index spaces on one
// thread. The test suite requires the SIP result to match the reference
// to tight tolerance across segment sizes and worker counts — the
// repository's version of the paper's practice of developing "multiple
// implementations of the same algorithm and us[ing] the two versions as
// tests of each other" (§VIII).
#pragma once

#include <vector>

namespace sia::chem {

// ||R||^2 for the contraction demo program (T filled by random_block with
// the given seed).
double ref_contraction_rnorm2(long norb, long nocc, double seed);

// MP2-like correlation energy (matches mp2_energy_source's `e2` and
// mp2_served_source's `e2`).
double ref_mp2_energy(long norb, long nocc);

// Squared norm of the first-order amplitudes (mp2_served's `tnorm2`).
double ref_mp2_amp_norm2(long norb, long nocc);

// CCD-like energy after `iterations` sweeps (ccd_energy_source's
// `energy`), plus the final sweep's squared amplitude norm via out-param.
double ref_ccd_energy(long norb, long nocc, int iterations,
                      double* final_norm2 = nullptr);

// Fock-like matrix (row-major norb x norb) and its Frobenius norm
// (fock_build_source's `fnorm`).
std::vector<double> ref_fock_matrix(long norb);
double ref_fock_norm(long norb);

}  // namespace sia::chem
