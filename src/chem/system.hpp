// Synthetic molecular systems.
//
// The paper's benchmarks name real molecules (Luciferin, a protonated
// water cluster, RDX, HMX, Cytosine+OH, a diamond nano-crystal with an NV
// center). Without a real integrals package only two numbers matter for
// cost and data-volume structure: the number of basis functions n and the
// number of occupied orbitals N (the paper's rule of thumb is n = 10N,
// §II). The presets below use approximate values consistent with the
// molecules' electron counts and the basis sizes the paper mentions (the
// diamond crystal is explicitly "2944 functions").
#pragma once

#include <string>

namespace sia::chem {

struct MolecularSystem {
  std::string name;
  long nbasis = 0;  // n: single-particle basis functions
  long nocc = 0;    // N: occupied orbitals
  long nvirt() const { return nbasis - nocc; }
};

// Paper benchmark systems (approximate electronic structure sizes).
MolecularSystem luciferin();     // C11H8O3S2N2, Fig. 2
MolecularSystem water_cluster(); // (H2O)21 H+, Fig. 3
MolecularSystem rdx();           // C3H6N6O6, Figs. 4-5
MolecularSystem hmx();           // C4H8N8O8, Fig. 4
MolecularSystem cytosine_oh();   // C4H6N3O2, Fig. 7
MolecularSystem diamond_nv();    // C42H42N-, Fig. 6 (2944 basis functions)

// Tiny systems for interpreter-scale tests and examples; nocc divisible
// by `segment` (index alignment requirement).
MolecularSystem toy_system(long nbasis, long nocc);

}  // namespace sia::chem
