#include "chem/integrals.hpp"

#include <array>
#include <cmath>
#include <mutex>
#include <span>

#include "common/error.hpp"
#include "sip/io_server.hpp"
#include "sip/superinstr.hpp"

namespace sia::chem {

double orbital_energy(long p, long nocc) {
  if (p <= nocc) {
    return -2.0 + 0.01 * static_cast<double>(p);
  }
  return 1.0 + 0.01 * static_cast<double>(p - nocc);
}

double synthetic_integral(long p, long q, long r, long s) {
  const double dpq = static_cast<double>(p > q ? p - q : q - p);
  const double drs = static_cast<double>(r > s ? r - s : s - r);
  const double cpq = 0.5 * static_cast<double>(p + q);
  const double crs = 0.5 * static_cast<double>(r + s);
  const double dc = cpq > crs ? cpq - crs : crs - cpq;
  // Smooth, decaying, symmetric under p<->q, r<->s, and (pq)<->(rs).
  return 0.25 * std::exp(-0.20 * dpq) * std::exp(-0.20 * drs) /
         (1.0 + 0.10 * dc);
}

double synthetic_core_h(long p, long q) {
  const double d = static_cast<double>(p > q ? p - q : q - p);
  const double diag = p == q ? -2.0 - 0.002 * static_cast<double>(p) : 0.0;
  return diag - 0.5 * std::exp(-0.3 * d) * (p == q ? 0.0 : 1.0);
}

double synthetic_density(long p, long q) {
  const double d = static_cast<double>(p > q ? p - q : q - p);
  return std::exp(-0.25 * d) / (1.0 + 0.002 * static_cast<double>(p + q));
}

double mp2_denominator(long i, long a, long j, long b, long nocc) {
  return orbital_energy(i, nocc) + orbital_energy(j, nocc) -
         orbital_energy(a, nocc) - orbital_energy(b, nocc);
}

double denominator_from_coords(std::span<const long> coords, long nocc) {
  double denom = 0.0;
  for (const long p : coords) {
    const double eps = orbital_energy(p, nocc);
    denom += p <= nocc ? eps : -eps;
  }
  return denom;
}

namespace {

using sia::sip::SuperInstructionContext;

// Visits element `value` of block argument `arg` together with its
// absolute 1-based coordinates.
template <typename Fn>
void visit_block(SuperInstructionContext& ctx, int arg, Fn&& fn) {
  Block& block = ctx.block_arg(arg);
  const sial::BlockSelector& sel = ctx.selector(arg);
  const int rank = sel.rank;
  std::array<int, blas::kMaxRank> counter{};
  std::array<long, blas::kMaxRank> coords{};
  auto data = block.data();
  for (std::size_t n = 0; n < data.size(); ++n) {
    for (int d = 0; d < rank; ++d) {
      coords[static_cast<std::size_t>(d)] =
          sel.first_element[static_cast<std::size_t>(d)] +
          counter[static_cast<std::size_t>(d)];
    }
    fn(data[n], std::span<const long>(coords.data(),
                                      static_cast<std::size_t>(rank)));
    for (int d = rank - 1; d >= 0; --d) {
      const std::size_t ud = static_cast<std::size_t>(d);
      if (++counter[ud] < sel.extents[ud]) break;
      counter[ud] = 0;
    }
  }
}

void require_rank(SuperInstructionContext& ctx, int arg, int rank,
                  const char* who) {
  if (ctx.selector(arg).rank != rank) {
    throw RuntimeError(std::string(who) + ": block argument " +
                       std::to_string(arg) + " must have rank " +
                       std::to_string(rank));
  }
}

// compute_integrals V(p,q,r,s): fill the block with synthetic (pq|rs).
void si_compute_integrals(SuperInstructionContext& ctx) {
  require_rank(ctx, 0, 4, "compute_integrals");
  visit_block(ctx, 0, [](double& value, std::span<const long> c) {
    value = synthetic_integral(c[0], c[1], c[2], c[3]);
  });
}

// compute_core_h H(p,q).
void si_compute_core_h(SuperInstructionContext& ctx) {
  require_rank(ctx, 0, 2, "compute_core_h");
  visit_block(ctx, 0, [](double& value, std::span<const long> c) {
    value = synthetic_core_h(c[0], c[1]);
  });
}

// compute_density D(p,q).
void si_compute_density(SuperInstructionContext& ctx) {
  require_rank(ctx, 0, 2, "compute_density");
  visit_block(ctx, 0, [](double& value, std::span<const long> c) {
    value = synthetic_density(c[0], c[1]);
  });
}

// mp2_block_energy V1(i,a,j,b) V2(i,b,j,a) <esum scalar> <nocc scalar>:
//   esum += sum over the block of V1 * (2 V1 - V2(swapped)) / D(iajb).
void si_mp2_block_energy(SuperInstructionContext& ctx) {
  require_rank(ctx, 0, 4, "mp2_block_energy");
  require_rank(ctx, 1, 4, "mp2_block_energy");
  const long nocc = static_cast<long>(ctx.number_arg(3));
  const Block& v2 = ctx.block_arg(1);
  const sial::BlockSelector& sel1 = ctx.selector(0);
  const sial::BlockSelector& sel2 = ctx.selector(1);

  double sum = 0.0;
  visit_block(ctx, 0, [&](double& v1, std::span<const long> c) {
    // c = (i, a, j, b) absolute; the exchange integral lives in the V2
    // block laid out as (i, b, j, a).
    const std::array<int, 4> swapped = {
        static_cast<int>(c[0] - sel2.first_element[0]),
        static_cast<int>(c[3] - sel2.first_element[1]),
        static_cast<int>(c[2] - sel2.first_element[2]),
        static_cast<int>(c[1] - sel2.first_element[3]),
    };
    const double exchange = v2.at(swapped);
    const double denom = denominator_from_coords(c, nocc);
    sum += v1 * (2.0 * v1 - exchange) / denom;
  });
  (void)sel1;
  ctx.scalar_arg(2) += sum;
}

// cc_update T(a,i,b,j) R(a,i,b,j) <nocc scalar>:
//   T = R / (eps(i) + eps(j) - eps(a) - eps(b)).
void si_cc_update(SuperInstructionContext& ctx) {
  require_rank(ctx, 0, 4, "cc_update");
  require_rank(ctx, 1, 4, "cc_update");
  const long nocc = static_cast<long>(ctx.number_arg(2));
  const Block& r = ctx.block_arg(1);
  if (r.size() != ctx.block_arg(0).size()) {
    throw RuntimeError("cc_update: T and R shapes differ");
  }
  const double* src = r.data().data();
  std::size_t n = 0;
  visit_block(ctx, 0, [&](double& t, std::span<const long> c) {
    t = src[n++] / denominator_from_coords(c, nocc);
  });
}

}  // namespace

void register_chem_superinstructions() {
  static std::once_flag once;
  std::call_once(once, [] {
    auto& registry = sip::SuperInstructionRegistry::global();
    registry.register_instruction("compute_integrals", si_compute_integrals);
    registry.register_instruction("compute_core_h", si_compute_core_h);
    registry.register_instruction("compute_density", si_compute_density);
    registry.register_instruction("mp2_block_energy", si_mp2_block_energy);
    registry.register_instruction("cc_update", si_cc_update);

    // Server-side on-demand integral generation for computed served
    // arrays (paper §V-B: I/O servers compute integral blocks instead of
    // storing them). Enable per array via
    // SipConfig::computed_served[array] = "integral_generator".
    sip::ServerComputeRegistry::global().register_generator(
        "integral_generator",
        [](Block& block, std::span<const long> first) {
          if (block.shape().rank() != 4) {
            throw RuntimeError("integral_generator needs a rank-4 array");
          }
          auto data = block.data();
          std::size_t n = 0;
          for (int p = 0; p < block.shape().extent(0); ++p) {
            for (int q = 0; q < block.shape().extent(1); ++q) {
              for (int r = 0; r < block.shape().extent(2); ++r) {
                for (int s = 0; s < block.shape().extent(3); ++s) {
                  data[n++] = synthetic_integral(first[0] + p, first[1] + q,
                                                 first[2] + r, first[3] + s);
                }
              }
            }
          }
        });
  });
}

}  // namespace sia::chem
