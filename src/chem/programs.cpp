#include "chem/programs.hpp"

namespace sia::chem {

std::string contraction_demo_source() {
  return R"SIAL(
sial contraction_demo
# The paper's section IV-D fragment: R(M,N,I,J) = sum_LS V(M,N,L,S)*T(L,S,I,J)
aoindex mu = 1, norb
aoindex nu = 1, norb
aoindex la = 1, norb
aoindex si = 1, norb
moindex i = 1, nocc
moindex j = 1, nocc

distributed T(la,si,i,j)
distributed R(mu,nu,i,j)
temp t(la,si,i,j)
temp v(mu,nu,la,si)
temp tmp(mu,nu,i,j)
temp tmpsum(mu,nu,i,j)
scalar rsum
scalar rnorm2

# Fill the amplitude array with deterministic pseudo-random blocks.
pardo la, si, i, j
  execute random_block t(la,si,i,j) 7
  put T(la,si,i,j) = t(la,si,i,j)
endpardo la, si, i, j
sip_barrier

# The contraction itself, integrals computed on demand.
pardo mu, nu, i, j
  tmpsum(mu,nu,i,j) = 0.0
  do la
    do si
      get T(la,si,i,j)
      execute compute_integrals v(mu,nu,la,si)
      tmp(mu,nu,i,j) = v(mu,nu,la,si) * T(la,si,i,j)
      tmpsum(mu,nu,i,j) += tmp(mu,nu,i,j)
    enddo si
  enddo la
  put R(mu,nu,i,j) = tmpsum(mu,nu,i,j)
endpardo mu, nu, i, j
sip_barrier

# Validation checksum ||R||^2.
rsum = 0.0
pardo mu, nu, i, j
  get R(mu,nu,i,j)
  tmp(mu,nu,i,j) = R(mu,nu,i,j)
  rsum += tmp(mu,nu,i,j) * tmp(mu,nu,i,j)
endpardo mu, nu, i, j
rnorm2 = 0.0
collective rnorm2 += rsum
endsial
)SIAL";
}

std::string mp2_energy_source() {
  return R"SIAL(
sial mp2_energy
moindex i = 1, nocc
moindex j = 1, nocc
moindex a = nocc+1, norb
moindex b = nocc+1, norb

temp v1(i,a,j,b)
temp v2(i,b,j,a)
scalar esum
scalar e2
scalar noccs

noccs = nocc
esum = 0.0
pardo i, j
  do a
    do b
      execute compute_integrals v1(i,a,j,b)
      execute compute_integrals v2(i,b,j,a)
      execute mp2_block_energy v1(i,a,j,b) v2(i,b,j,a) esum noccs
    enddo b
  enddo a
endpardo i, j
e2 = 0.0
collective e2 += esum
endsial
)SIAL";
}

std::string ccd_energy_source() {
  return R"SIAL(
sial ccd_energy
# CCD-like doubles iteration: particle-particle ladder, hole-hole ladder,
# and a ring diagram, with on-demand integrals, distributed amplitudes,
# and an orbital-energy-denominator update (see DESIGN.md for the
# substitution relative to full CCSD).
index iter = 1, maxiter
moindex i = 1, nocc
moindex j = 1, nocc
moindex k = 1, nocc
moindex l = 1, nocc
moindex a = nocc+1, norb
moindex b = nocc+1, norb
moindex c = nocc+1, norb
moindex d = nocc+1, norb

distributed T(a,i,b,j)
distributed Tnew(a,i,b,j)
temp v(a,i,b,j)
temp vp(a,c,b,d)
temp vh(k,i,l,j)
temp vr(k,a,c,i)
temp t0(a,i,b,j)
temp t2(c,i,d,j)
temp t3(a,k,b,l)
temp t4(a,i,b,j)
temp tmp(a,i,b,j)
temp r(a,i,b,j)
temp tnew(a,i,b,j)
scalar noccs
scalar esum
scalar energy
scalar rlocal
scalar rnorm2

noccs = nocc

# T0 = V / D
pardo a, i, b, j
  execute compute_integrals v(a,i,b,j)
  execute cc_update t0(a,i,b,j) v(a,i,b,j) noccs
  put T(a,i,b,j) = t0(a,i,b,j)
endpardo a, i, b, j
sip_barrier

do iter
  pardo a, i, b, j
    execute compute_integrals v(a,i,b,j)
    r(a,i,b,j) = v(a,i,b,j)
    # particle-particle ladder: sum_cd V(a,c,b,d) T(c,i,d,j)
    do c
      do d
        execute compute_integrals vp(a,c,b,d)
        get T(c,i,d,j)
        tmp(a,i,b,j) = vp(a,c,b,d) * T(c,i,d,j)
        r(a,i,b,j) += tmp(a,i,b,j)
      enddo d
    enddo c
    # hole-hole ladder: sum_kl V(k,i,l,j) T(a,k,b,l)
    do k
      do l
        execute compute_integrals vh(k,i,l,j)
        get T(a,k,b,l)
        tmp(a,i,b,j) = vh(k,i,l,j) * T(a,k,b,l)
        r(a,i,b,j) += tmp(a,i,b,j)
      enddo l
    enddo k
    # ring: sum_kc V(k,a,c,i) T(c,k,b,j)
    do k
      do c
        execute compute_integrals vr(k,a,c,i)
        get T(c,k,b,j)
        tmp(a,i,b,j) = vr(k,a,c,i) * T(c,k,b,j)
        r(a,i,b,j) += tmp(a,i,b,j)
      enddo c
    enddo k
    execute cc_update tnew(a,i,b,j) r(a,i,b,j) noccs
    put Tnew(a,i,b,j) = tnew(a,i,b,j)
  endpardo a, i, b, j
  sip_barrier

  # T <- Tnew, and track the amplitude norm of this sweep.
  rlocal = 0.0
  pardo a, i, b, j
    get Tnew(a,i,b,j)
    t4(a,i,b,j) = Tnew(a,i,b,j)
    put T(a,i,b,j) = t4(a,i,b,j)
    rlocal += t4(a,i,b,j) * t4(a,i,b,j)
  endpardo a, i, b, j
  sip_barrier
  rnorm2 = 0.0
  collective rnorm2 += rlocal
enddo iter

# Correlation-like energy E = sum T . V for the converged amplitudes.
esum = 0.0
pardo a, i, b, j
  execute compute_integrals v(a,i,b,j)
  get T(a,i,b,j)
  t4(a,i,b,j) = T(a,i,b,j)
  esum += t4(a,i,b,j) * v(a,i,b,j)
endpardo a, i, b, j
energy = 0.0
collective energy += esum
endsial
)SIAL";
}

std::string fock_build_source() {
  return R"SIAL(
sial fock_build
aoindex mu = 1, norb
aoindex nu = 1, norb
aoindex la = 1, norb
aoindex si = 1, norb

distributed F(mu,nu)
temp f(mu,nu)
temp jmat(mu,nu)
temp kmat(mu,nu)
temp v(mu,nu,la,si)
temp vx(mu,la,nu,si)
temp dmat(la,si)
temp t(mu,nu)
scalar fsum
scalar fnorm2
scalar fnorm

# F = Hcore + sum_ls D(l,s) * (2 V(mu,nu,l,s) - V(mu,l,nu,s))
pardo mu, nu
  execute compute_core_h f(mu,nu)
  do la
    do si
      execute compute_integrals v(mu,nu,la,si)
      execute compute_density dmat(la,si)
      jmat(mu,nu) = v(mu,nu,la,si) * dmat(la,si)
      f(mu,nu) += 2.0 * jmat(mu,nu)
      execute compute_integrals vx(mu,la,nu,si)
      kmat(mu,nu) = vx(mu,la,nu,si) * dmat(la,si)
      f(mu,nu) -= kmat(mu,nu)
    enddo si
  enddo la
  put F(mu,nu) = f(mu,nu)
endpardo mu, nu
sip_barrier

fsum = 0.0
pardo mu, nu
  get F(mu,nu)
  t(mu,nu) = F(mu,nu)
  fsum += t(mu,nu) * t(mu,nu)
endpardo mu, nu
fnorm2 = 0.0
collective fnorm2 += fsum
fnorm = sqrt(fnorm2)
endsial
)SIAL";
}

std::string comm_storm_source() {
  return R"SIAL(
sial comm_storm
# Communication-bound Gram-matrix sweep C = A * A^T. The inner do loop
# re-accumulates into the same C(a,b) block every iteration, so almost
# all traffic is gets of A rows plus repeated put+= of C blocks — the
# pattern the runtime's write combining and zero-copy transfers target.
aoindex a = 1, norb
aoindex b = 1, norb
aoindex k = 1, norb

distributed A(a,k)
distributed C(a,b)
temp t(a,k)
temp tmp(a,b)
temp cfin(a,b)
scalar csum
scalar cnorm2

pardo a, k
  execute random_block t(a,k) 11
  put A(a,k) = t(a,k)
endpardo a, k
sip_barrier

pardo a, b
  do k
    get A(a,k)
    get A(b,k)
    tmp(a,b) = A(a,k) * A(b,k)
    put C(a,b) += tmp(a,b)
  enddo k
endpardo a, b
sip_barrier

csum = 0.0
pardo a, b
  get C(a,b)
  cfin(a,b) = C(a,b)
  csum += cfin(a,b) * cfin(a,b)
endpardo a, b
cnorm2 = 0.0
collective cnorm2 += csum
endsial
)SIAL";
}

std::string io_storm_source() {
  return R"SIAL(
sial io_storm
# Disk-bound served-array sweep: phase 1 prepares a norb x norb block
# matrix to the I/O servers; the sweep loop then requests every block back
# nsweeps times. The server cache is configured much smaller than the
# array, so most requests miss and go to disk — the workload the threaded
# disk service, request look-ahead, and batched write-behind target.
# fill_coords writes integer-valued elements, so the checksum is a sum of
# integer squares and bit-identical under any request order.
index sweep = 1, nsweeps
aoindex a = 1, norb
aoindex k = 1, norb
aoindex r = 1, nshared

served S(a,k)
temp t(a,k)
temp u(a,k)
scalar lsum
scalar snorm2

pardo a, k
  execute fill_coords t(a,k)
  prepare S(a,k) = t(a,k)
endpardo a, k
server_barrier

lsum = 0.0
do sweep
  pardo a
    do k
      request S(a,k)
      u(a,k) = S(a,k)
      lsum += u(a,k) * u(a,k)
    enddo k
  endpardo a
  server_barrier
enddo sweep

# Shared-read phase: a plain do nest runs on every worker, so all workers
# scan the same blocks of the first nshared rows in the same order. Cold
# requests from different workers land on the server while the first read
# is still in flight (the in-flight-table coalescing path); the rest hit
# the server cache.
do r
  do k
    request S(r,k)
    u(r,k) = S(r,k)
    lsum += u(r,k) * u(r,k)
  enddo k
enddo r
server_barrier
snorm2 = 0.0
collective snorm2 += lsum
endsial
)SIAL";
}

std::string mp2_served_source() {
  return R"SIAL(
sial mp2_served
# Two-phase MP2 exercising served (disk-backed) arrays: phase 1 builds
# first-order amplitudes and prepares them to the I/O servers; phase 2
# requests them back and assembles the energy.
moindex i = 1, nocc
moindex j = 1, nocc
moindex a = nocc+1, norb
moindex b = nocc+1, norb

served TAmp(i,a,j,b)
temp v1(i,a,j,b)
temp v2(i,b,j,a)
temp t(i,a,j,b)
scalar noccs
scalar esum
scalar e2
scalar tsum
scalar tnorm2

noccs = nocc

# Phase 1: T(i,a,j,b) = V(i,a,j,b) / D, prepared to disk.
pardo i, j
  do a
    do b
      execute compute_integrals v1(i,a,j,b)
      execute cc_update t(i,a,j,b) v1(i,a,j,b) noccs
      prepare TAmp(i,a,j,b) = t(i,a,j,b)
    enddo b
  enddo a
endpardo i, j
server_barrier

# Phase 2: request the amplitudes back and contract with the integrals.
esum = 0.0
tsum = 0.0
pardo i, j
  do a
    do b
      request TAmp(i,a,j,b)
      execute compute_integrals v1(i,a,j,b)
      execute compute_integrals v2(i,b,j,a)
      t(i,a,j,b) = TAmp(i,a,j,b)
      esum += 2.0 * t(i,a,j,b) * v1(i,a,j,b) - t(i,a,j,b) * v2(i,b,j,a)
      tsum += t(i,a,j,b) * t(i,a,j,b)
    enddo b
  enddo a
endpardo i, j
e2 = 0.0
collective e2 += esum
tnorm2 = 0.0
collective tnorm2 += tsum
endsial
)SIAL";
}

std::string sparse_fock_source() {
  return R"SIAL(
sial sparse_fock
# Banded Fock-like build F = D * G with sparse operands. fill_decay
# writes blocks whose elements decay as exp(-rate * |mu - la|), so block
# norms fall off exponentially with the distance from the diagonal: the
# tridiagonal blocks stay dense while everything further out drops below
# any practical screening threshold. With sparse_threshold > 0 the
# runtime never stores, moves, or multiplies the far blocks.
aoindex mu = 1, norb
aoindex nu = 1, norb
aoindex la = 1, norb

sparse distributed D(mu,la)
sparse distributed G(la,nu)
distributed F(mu,nu)
temp d(mu,la)
temp g(la,nu)
temp f(mu,nu)
temp t(mu,nu)
scalar fsum
scalar fnorm2

# Phase 1: banded fills. Screened blocks are dropped at the sender.
pardo mu, la
  execute fill_decay d(mu,la) 0.75 13
  put D(mu,la) = d(mu,la)
endpardo mu, la
pardo la, nu
  execute fill_decay g(la,nu) 0.75 29
  put G(la,nu) = g(la,nu)
endpardo la, nu
sip_barrier

# Phase 2: F(mu,nu) = sum_la D(mu,la) * G(la,nu). The fused accumulate
# form lets the dataflow executor retire screened contractions at decode
# time without occupying a pool thread.
pardo mu, nu
  f(mu,nu) = 0.0
  do la
    get D(mu,la)
    get G(la,nu)
    f(mu,nu) += D(mu,la) * G(la,nu)
  enddo la
  put F(mu,nu) = f(mu,nu)
endpardo mu, nu
sip_barrier

# Validation checksum ||F||^2.
fsum = 0.0
pardo mu, nu
  get F(mu,nu)
  t(mu,nu) = F(mu,nu)
  fsum += t(mu,nu) * t(mu,nu)
endpardo mu, nu
fnorm2 = 0.0
collective fnorm2 += fsum
endsial
)SIAL";
}

std::string sparse_mp2_source() {
  return R"SIAL(
sial sparse_mp2
# Served-array screening workload: amplitudes T(i,a,j,b) decay in
# |i - j| (localized-orbital style), so most (i,j)-off-diagonal blocks
# screen out. Phase 1 prepares them to the I/O servers — screened
# prepares send a norm marker instead of the payload and the servers
# record them in the presence map without a disk write. Phase 2 requests
# every block back — screened requests get norm-only replies satisfied
# by the canonical zero block — and reduces e2 = sum T.T.
moindex i = 1, nocc
moindex j = 1, nocc
moindex a = nocc+1, norb
moindex b = nocc+1, norb

sparse served T(i,a,j,b)
temp t(i,a,j,b)
temp u(i,a,j,b)
scalar esum
scalar e2

pardo i, j
  do a
    do b
      execute fill_decay t(i,a,j,b) 3.0 17
      prepare T(i,a,j,b) = t(i,a,j,b)
    enddo b
  enddo a
endpardo i, j
server_barrier

esum = 0.0
pardo i, j
  do a
    do b
      request T(i,a,j,b)
      u(i,a,j,b) = T(i,a,j,b)
      esum += u(i,a,j,b) * u(i,a,j,b)
    enddo b
  enddo a
endpardo i, j
e2 = 0.0
collective e2 += esum
endsial
)SIAL";
}

}  // namespace sia::chem
