#include "chem/system.hpp"

namespace sia::chem {

MolecularSystem luciferin() { return {"luciferin", 440, 40}; }
MolecularSystem water_cluster() { return {"water21", 1320, 110}; }
MolecularSystem rdx() { return {"rdx", 800, 60}; }
MolecularSystem hmx() { return {"hmx", 1070, 80}; }
MolecularSystem cytosine_oh() { return {"cytosine_oh", 400, 36}; }
MolecularSystem diamond_nv() { return {"diamond_nv", 2944, 150}; }

MolecularSystem toy_system(long nbasis, long nocc) {
  return {"toy", nbasis, nocc};
}

}  // namespace sia::chem
