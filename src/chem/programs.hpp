// SIAL programs for the chemistry workloads.
//
// These are the "application layer" of the reproduction: SIAL sources in
// the style of the paper's §IV-D example, parameterized through symbolic
// constants (norb, nocc, maxiter) that the SIP binds at initialization.
// Each has a dense single-threaded counterpart in reference.hpp used by
// the test suite (mirroring the paper's §VIII practice of writing two
// implementations and testing one against the other).
#pragma once

#include <string>

namespace sia::chem {

// The paper's §IV-D fragment: R(M,N,I,J) = sum_{L,S} V(M,N,L,S)*T(L,S,I,J)
// with V computed on demand and T/R distributed. Constants: norb, nocc.
std::string contraction_demo_source();

// MP2-like correlation energy with on-demand integrals.
// Constants: norb, nocc. Result scalar: e2.
std::string mp2_energy_source();

// CCD-like doubles iteration (particle-particle + hole-hole ladders) with
// distributed amplitudes, fixed iteration count.
// Constants: norb, nocc, maxiter. Result scalars: energy (correlation
// energy after maxiter iterations), rnorm2 (squared norm of the last
// amplitude update).
std::string ccd_energy_source();

// Closed-shell Fock-like matrix build from on-demand integrals and a
// model density. Constants: norb. Result scalar: fnorm (Frobenius norm).
std::string fock_build_source();

// Communication-bound stress program: phase 1 fills a distributed matrix
// with random blocks, phase 2 is a Gram-matrix-style sweep where every
// inner iteration issues two gets and accumulates into the same output
// block with put+= (the workload behind the zero-copy / put-coalescing
// benches). Constants: norb. Result scalar: cnorm2 (squared Frobenius
// norm of the output matrix).
std::string comm_storm_source();

// Disk-bound served-array stress: phase 1 prepares a norb x norb block
// matrix to the I/O servers, then `nsweeps` full read sweeps request every
// block back through a deliberately undersized server cache, and a final
// shared-read phase has every worker re-scan the first `nshared` rows so
// concurrent cold requests for the same block exercise in-flight read
// coalescing. Workload for the threaded disk service / look-ahead /
// write-behind benches; the checksum is integer-valued and bit-identical
// under any request order. Constants: norb, nsweeps, nshared (elements,
// <= norb). Result scalar: snorm2.
std::string io_storm_source();

// MP2-like two-phase program exercising served (disk-backed) arrays:
// phase 1 prepares amplitude blocks to a served array, phase 2 requests
// them back and contracts. Constants: norb, nocc. Result scalars: e2
// (same value as mp2_energy_source), tnorm2 (amplitude norm squared).
std::string mp2_served_source();

// Fock-like build over banded sparse operands: two `sparse distributed`
// matrices are filled with blocks whose Frobenius norm decays
// exponentially away from the diagonal (the `fill_decay` builtin), then
// F = D * G is contracted with fused accumulate. With sparse_threshold
// > 0 the runtime screens the far-off-diagonal blocks: puts are dropped
// at the sender, gets are answered norm-only, and the norm-product test
// skips the GEMM for all but the near-diagonal block triples. At
// threshold 0 the run is bit-identical to the dense engine. Constants:
// norb (elements; band width tracks the segment size). Result scalar:
// fnorm2 (squared Frobenius norm of F).
std::string sparse_fock_source();

// MP2-like two-phase served workload with banded amplitudes: phase 1
// fills T(i,a,j,b) with blocks decaying in |i - j| and prepares them to
// the I/O servers (screened prepares carry only a norm marker); phase 2
// requests every block back (screened requests are answered norm-only
// and read as the canonical zero block) and reduces e2 = sum T.T.
// Constants: norb, nocc. Result scalar: e2.
std::string sparse_mp2_source();

}  // namespace sia::chem
