#include "sim/machine.hpp"

#include <cmath>

namespace sia::sim {

double MachineModel::effective_bw(long p) const {
  if (static_cast<double>(p) <= bisection_cores) return link_bw;
  const double overload = static_cast<double>(p) / bisection_cores;
  return link_bw / std::cbrt(overload);
}

MachineModel sun_opteron_ib() {
  MachineModel m;
  m.name = "sun-opteron-ib";
  m.flops_per_core = 3.5e9;   // 2.6 GHz Opteron, sustained DGEMM
  m.latency_s = 3e-6;         // InfiniBand
  m.link_bw = 0.9e9;
  m.bisection_cores = 512;    // modest fat-tree
  m.master_service_s = 10e-6;
  m.memory_per_core = 4.0e9;
  return m;
}

MachineModel cray_xt4() {
  MachineModel m;
  m.name = "cray-xt4";
  m.flops_per_core = 4.0e9;   // 2.1 GHz dual-core Opteron + SeaStar
  m.latency_s = 6e-6;
  m.link_bw = 1.1e9;
  m.bisection_cores = 8192;
  m.master_service_s = 12e-6;
  m.memory_per_core = 2.0e9;
  return m;
}

MachineModel cray_xt5() {
  MachineModel m;
  m.name = "cray-xt5";
  m.flops_per_core = 4.8e9;   // 2.3 GHz quad-core Opteron + SeaStar2
  m.latency_s = 5e-6;
  m.link_bw = 1.4e9;
  m.bisection_cores = 16384;
  // Effective master occupancy per chunk transaction (scheduling,
  // message processing, bookkeeping); the petascale scheduling ceiling
  // of Fig. 6 comes from this serial resource.
  m.master_service_s = 100e-6;
  m.memory_per_core = 1.3e9;
  return m;
}

MachineModel sgi_altix() {
  MachineModel m;
  m.name = "sgi-altix";
  m.flops_per_core = 3.0e9;   // 1.6 GHz Itanium2
  m.latency_s = 1e-6;         // NUMAlink shared memory
  m.link_bw = 2.5e9;
  m.bisection_cores = 1024;
  m.master_service_s = 8e-6;
  m.memory_per_core = 1.0e9;  // configurable per job on pople
  return m;
}

MachineModel bluegene_p() {
  MachineModel m;
  m.name = "bluegene-p";
  m.flops_per_core = 1.2e9;   // 850 MHz PPC450: about 4x slower than XT5,
                              // matching the paper's tuned-port ratio
  m.latency_s = 3e-6;
  m.link_bw = 0.4e9;          // 3-D torus, modest per-node injection
  m.bisection_cores = 32768;
  m.master_service_s = 15e-6;
  m.memory_per_core = 0.5e9;  // 2 GB / 4 cores
  return m;
}

}  // namespace sia::sim
