// Workload models: the paper's computations as task-graph parameters.
//
// Each benchmark computation is reduced to the quantities that govern its
// parallel behaviour under the SIP: how many pardo iterations (tasks) the
// dominant phases have, how many flops each performs, and how many bytes
// each must fetch and store. The counts follow the method cost structure
// the paper quotes in §II (MP2 ~ n^5, CCSD ~ n^6, CCSD(T) ~ n^7) applied
// block-wise with a given segment size.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chem/system.hpp"

namespace sia::sim {

// One pardo phase of a computation.
struct PhaseModel {
  std::string name;
  std::int64_t tasks = 0;        // filtered pardo iterations
  double flops_per_task = 0.0;
  // Subset of flops_per_task from `execute`d superinstructions (integral
  // generators): per-element work whose rate does not follow the GEMM
  // efficiency curve. Zero in the hand-built workloads.
  double execute_flops_per_task = 0.0;
  // Largest single block an iteration touches, in bytes — the planner's
  // cache-spill signal for superinstruction output blocks.
  double peak_block_bytes = 0.0;
  std::int64_t fetches_per_task = 0;  // remote block fetches per iteration
  double bytes_per_fetch = 0.0;
  std::int64_t puts_per_task = 0;
  double bytes_per_put = 0.0;
  int sweeps = 1;                // repetitions (e.g. CC iterations)
};

struct WorkloadModel {
  std::string name;
  std::vector<PhaseModel> phases;

  // Memory footprints for the feasibility models (bytes).
  double sia_resident_total = 0.0;  // distributed arrays (shared across P)
  double sia_fixed_per_core = 0.0;  // blocks, cache, statics per worker
  double ga_resident_total = 0.0;   // GA-style rigid allocation, total
  double ga_fixed_per_core = 0.0;   // GA-style per-core buffers/replicas

  double total_flops() const;
};

// One CCSD iteration (doubles residual; ladder + ring structure).
WorkloadModel ccsd_iteration(const chem::MolecularSystem& system,
                             int segment);

// Full CCSD energy: `iterations` CCSD sweeps (Fig. 2 reports per-iteration
// time; Figs. 3-4 report full runs).
WorkloadModel ccsd_energy(const chem::MolecularSystem& system, int segment,
                          int iterations);

// CCSD(T): CCSD followed by the perturbative-triples phase (n^7).
WorkloadModel ccsd_t(const chem::MolecularSystem& system, int segment,
                     int iterations);

// Fock-matrix build over shell-quartet blocks (Fig. 6).
WorkloadModel fock_build(const chem::MolecularSystem& system, int segment);

// UHF MP2 gradient (Fig. 7): integral transform + amplitude assembly.
WorkloadModel mp2_gradient(const chem::MolecularSystem& system, int segment);

}  // namespace sia::sim
