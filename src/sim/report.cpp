#include "sim/report.hpp"

#include <cstdio>

#include "common/error.hpp"

namespace sia::sim {

std::vector<double> scaling_efficiency(const std::vector<long>& procs,
                                       const std::vector<double>& times,
                                       std::size_t base) {
  SIA_CHECK(procs.size() == times.size(), "efficiency: size mismatch");
  SIA_CHECK(base < procs.size(), "efficiency: bad base index");
  std::vector<double> efficiency(times.size());
  const double reference =
      times[base] * static_cast<double>(procs[base]);
  for (std::size_t k = 0; k < times.size(); ++k) {
    efficiency[k] =
        100.0 * reference / (times[k] * static_cast<double>(procs[k]));
  }
  return efficiency;
}

std::string fmt(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", decimals, value);
  return buffer;
}

double to_minutes(double seconds) { return seconds / 60.0; }

}  // namespace sia::sim
