// Reporting helpers for the figure-reproduction benches.
#pragma once

#include <string>
#include <vector>

namespace sia::sim {

// Strong-scaling efficiency of `times` relative to entry `base`:
// eff_k = (t_base * p_base) / (t_k * p_k) * 100.
std::vector<double> scaling_efficiency(const std::vector<long>& procs,
                                       const std::vector<double>& times,
                                       std::size_t base);

// "12.3" with the given decimals.
std::string fmt(double value, int decimals = 2);

// Seconds -> "mm.m min" style value used by the paper's axes.
double to_minutes(double seconds);

}  // namespace sia::sim
