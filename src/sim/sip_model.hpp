// SIA-side performance model: simulate_workload plus the SIP's memory
// adaptivity.
//
// The paper attributes Fig. 7's robustness to the SIA's "much more
// adaptable data architecture": when the distributed share does not fit
// in memory, the SIP moves arrays to served (disk-backed) storage and
// keeps running, at a bandwidth cost — where a GA-style rigid layout
// simply cannot run (§VI-C, §VII).
#pragma once

#include <string>

#include "sim/des.hpp"

namespace sia::sim {

struct SiaOutcome {
  bool completed = true;
  std::string reason;          // when !completed
  double seconds = 0.0;
  double wait_percent = 0.0;
  bool spilled_to_disk = false;  // served-array fallback engaged
};

// Simulates the workload on `workers` cores with `memory_per_core` bytes
// each (0 = use the machine default).
SiaOutcome simulate_sia(const MachineModel& machine,
                        const WorkloadModel& workload, long workers,
                        const SimOptions& options,
                        double memory_per_core = 0.0,
                        double time_limit_s = 0.0);

}  // namespace sia::sim
