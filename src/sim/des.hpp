// Discrete-event simulation of the SIP at cluster scale.
//
// Simulates one pardo phase on P workers with the *same scheduling policy
// the real runtime uses* (the guided decreasing-chunk schedule from
// sip/scheduler.hpp) and the paper's overlap model: the SIP prefetches the
// blocks of upcoming iterations, so a well-tuned phase pays transfer time
// only where it exceeds compute time ("in a well-tuned SIAL program, a
// large portion of the communication is hidden behind computation", §III).
//
// The master is modeled as a serial server with a fixed per-chunk service
// time — the source of the scheduling bottleneck that appears beyond
// ~72k cores in Fig. 6. The network is modeled with per-message latency
// and a per-transfer bandwidth that degrades beyond the machine's
// bisection knee. Per-phase startup and per-sweep barrier costs grow
// logarithmically with P.
#pragma once

#include <cstdint>

#include "sim/machine.hpp"
#include "sim/workload.hpp"

namespace sia::sim {

struct SimOptions {
  bool overlap = true;        // SIA prefetch pipeline; false = blocking gets
  int chunk_divisor = 2;      // guided schedule parameters (as SipConfig)
  long min_chunk = 1;
  double fixed_overhead_s = 0.5;   // program startup / dry run
  double compute_scale = 1.0;      // >1: untuned kernels (BG/P anecdote)
  double refetch_factor = 0.0;     // fraction of fetches re-issued due to
                                   // premature-prefetch cache thrash
  double fetch_latency_scale = 1.0;  // GA-style per-access overhead
  // Fraction of block requests that land on an owner busy inside a super
  // instruction; the reply waits for the current block operation. The
  // paper attributes run-to-run differences to "more or less fortuitous
  // placement of data" (§VI-C); this is that effect, growing gently with
  // scale. It produces the ~10% residual wait of Fig. 2.
  double hotspot_fraction = 0.08;
};

struct PhaseResult {
  double elapsed = 0.0;        // wall seconds (all sweeps)
  double wait = 0.0;           // summed over workers
  double busy = 0.0;           // summed compute seconds over workers
  std::int64_t chunks = 0;     // chunks the master served
};

struct WorkloadResult {
  double seconds = 0.0;
  double wait_percent = 0.0;   // waits as % of worker busy+wait time
  std::int64_t chunks = 0;
};

// Simulates one phase (all its sweeps) on `workers` cores.
PhaseResult simulate_phase(const MachineModel& machine,
                           const PhaseModel& phase, long workers,
                           const SimOptions& options);

// Simulates all phases of a workload, serialized by barriers.
WorkloadResult simulate_workload(const MachineModel& machine,
                                 const WorkloadModel& workload, long workers,
                                 const SimOptions& options);

}  // namespace sia::sim
