// Machine models for the cluster-scale performance simulator.
//
// The paper's evaluation ran on real systems we do not have: a Sun
// Opteron/InfiniBand cluster (midnight, Fig. 2), Cray XT4/XT5 (kraken,
// pingo, jaguar; Figs. 3-6), an SGI Altix 4700 (pople, Fig. 7), and a
// BlueGene/P (§VI-A). Each model captures the handful of parameters the
// SIP's behaviour depends on: sustained per-core DGEMM rate, message
// latency, per-node injection bandwidth, how the aggregate fabric scales
// with core count (bisection), the master's chunk-service time, and
// memory per core. Values are order-of-magnitude representative of the
// 2008-2010 systems, not calibrated measurements; the benchmark claims
// are about curve *shapes*, not absolute seconds.
#pragma once

#include <string>

namespace sia::sim {

struct MachineModel {
  std::string name;
  double flops_per_core = 1e9;     // sustained DGEMM flop/s per core
  double latency_s = 5e-6;         // point-to-point message latency
  double link_bw = 1e9;            // per-core injection bandwidth, B/s
  double bisection_cores = 4096;   // cores at which the fabric starts to
                                   // throttle all-to-all traffic
  double master_service_s = 12e-6; // serialized chunk-service time
  double memory_per_core = 1.0e9;  // bytes
  double disk_bw = 200e6;          // per-I/O-server disk bandwidth, B/s

  // Effective per-transfer bandwidth at core count p under uniform
  // traffic: full link bandwidth below the bisection knee, decaying as
  // the cube root of the overload beyond it (3-D torus bisection).
  double effective_bw(long p) const;
};

MachineModel sun_opteron_ib();  // "midnight" (Fig. 2)
MachineModel cray_xt4();        // "kraken" (Fig. 3)
MachineModel cray_xt5();        // "pingo"/"jaguar" (Figs. 3-6)
MachineModel sgi_altix();       // "pople" (Fig. 7)
MachineModel bluegene_p();      // untuned-port anecdote (§VI-A)

}  // namespace sia::sim
