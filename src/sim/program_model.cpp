#include "sim/program_model.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace sia::sim {

namespace {

using sial::Instruction;
using sial::Opcode;

// Full (untrimmed) element count of a block operand: the product of the
// referenced indices' segment sizes.
double operand_elements(const sial::ResolvedProgram& program,
                        const sial::BlockOperand& operand) {
  double elements = 1.0;
  for (int d = 0; d < operand.rank; ++d) {
    const int id = operand.index_ids[static_cast<std::size_t>(d)];
    if (id == sial::kWildcardIndex) continue;
    elements *= static_cast<double>(program.index(id).segment_size);
  }
  return elements;
}

// Product of segment sizes of the ids shared between two operands.
double common_elements(const sial::ResolvedProgram& program,
                       const sial::BlockOperand& a,
                       const sial::BlockOperand& b) {
  double elements = 1.0;
  for (int d = 0; d < a.rank; ++d) {
    const int id = a.index_ids[static_cast<std::size_t>(d)];
    for (int e = 0; e < b.rank; ++e) {
      if (b.index_ids[static_cast<std::size_t>(e)] == id) {
        elements *= static_cast<double>(program.index(id).segment_size);
        break;
      }
    }
  }
  return elements;
}

// Per-iteration cost accumulator.
struct Cost {
  double flops = 0.0;
  double execute_flops = 0.0;  // subset of flops from superinstructions
  double peak_block_bytes = 0.0;
  double fetches = 0.0;
  double fetch_bytes = 0.0;
  double puts = 0.0;
  double put_bytes = 0.0;

  void add(const Cost& other, double weight) {
    flops += weight * other.flops;
    execute_flops += weight * other.execute_flops;
    // The largest block touched does not scale with trip counts.
    peak_block_bytes = std::max(peak_block_bytes, other.peak_block_bytes);
    fetches += weight * other.fetches;
    fetch_bytes += weight * other.fetch_bytes;
    puts += weight * other.puts;
    put_bytes += weight * other.put_bytes;
  }
};

class Analyzer {
 public:
  Analyzer(const sial::ResolvedProgram& program, const ModelOptions& options)
      : program_(program), options_(options) {}

  WorkloadModel run() {
    WorkloadModel model;
    model.name = "program:" + program_.code().name;
    walk(0, find_halt(), /*multiplier=*/1.0, /*in_pardo=*/false, 0);

    for (Phase& phase : phases_) {
      PhaseModel out;
      out.name = phase.name;
      out.tasks = std::max<std::int64_t>(1, phase.tasks);
      out.flops_per_task = phase.body.flops;
      out.execute_flops_per_task = phase.body.execute_flops;
      out.peak_block_bytes = phase.body.peak_block_bytes;
      out.fetches_per_task =
          static_cast<std::int64_t>(phase.body.fetches + 0.5);
      out.bytes_per_fetch =
          phase.body.fetches > 0.0
              ? phase.body.fetch_bytes / phase.body.fetches
              : 0.0;
      out.puts_per_task = static_cast<std::int64_t>(phase.body.puts + 0.5);
      out.bytes_per_put =
          phase.body.puts > 0.0 ? phase.body.put_bytes / phase.body.puts
                                : 0.0;
      out.sweeps = std::max(1, static_cast<int>(phase.sweeps + 0.5));
      model.phases.push_back(out);
    }
    if (serial_.flops > 0.0 || serial_.fetches > 0.0) {
      PhaseModel out;
      out.name = "sequential";
      out.tasks = 1;
      out.flops_per_task = serial_.flops;
      out.execute_flops_per_task = serial_.execute_flops;
      out.peak_block_bytes = serial_.peak_block_bytes;
      out.fetches_per_task =
          static_cast<std::int64_t>(serial_.fetches + 0.5);
      out.bytes_per_fetch =
          serial_.fetches > 0.0 ? serial_.fetch_bytes / serial_.fetches
                                : 0.0;
      model.phases.push_back(out);
    }

    // Memory footprints, mirroring the dry run's structure.
    double temp_block_max = 0.0;
    for (const sial::ResolvedArray& array : program_.arrays()) {
      const double bytes = static_cast<double>(array.total_elements) * 8.0;
      switch (array.kind) {
        case sial::ArrayKind::kDistributed:
          model.sia_resident_total += bytes;
          break;
        case sial::ArrayKind::kStatic:
          model.sia_fixed_per_core += bytes;
          break;
        case sial::ArrayKind::kTemp:
          temp_block_max = std::max(
              temp_block_max,
              static_cast<double>(array.max_block_elements) * 8.0);
          break;
        default:
          break;
      }
    }
    model.sia_fixed_per_core += 16.0 * temp_block_max;
    model.ga_resident_total = 2.0 * model.sia_resident_total;
    model.ga_fixed_per_core = 4.0 * model.sia_fixed_per_core;
    return model;
  }

 private:
  struct Phase {
    std::string name;
    std::int64_t tasks = 1;
    double sweeps = 1.0;
    Cost body;
  };

  int find_halt() const {
    for (int pc = 0;
         pc < static_cast<int>(program_.code().code.size()); ++pc) {
      if (program_.code().code[static_cast<std::size_t>(pc)].op ==
          Opcode::kHalt) {
        return pc;
      }
    }
    return static_cast<int>(program_.code().code.size());
  }

  // Walks [begin, end), adding costs either to the current phase body or
  // to the serial accumulator. `multiplier` is the product of enclosing
  // sequential do-loop trip counts *within* the current scope.
  void walk(int begin, int end, double multiplier, bool in_pardo,
            int depth) {
    if (depth > 16) return;  // recursive procs: give up quietly
    for (int pc = begin; pc < end; ++pc) {
      const Instruction& instr =
          program_.code().code[static_cast<std::size_t>(pc)];
      switch (instr.op) {
        case Opcode::kPardoStart: {
          const sial::PardoInfo& pardo =
              program_.code().pardos[static_cast<std::size_t>(instr.a0)];
          Phase phase;
          phase.name = "pardo@" + std::to_string(instr.line);
          phase.tasks = pardo_tasks(pardo);
          phase.sweeps = multiplier;
          phases_.push_back(phase);
          // Analyze the body with a fresh multiplier; costs go into the
          // new phase. (Index, not pointer: the vector may grow.)
          const int saved = current_;
          current_ = static_cast<int>(phases_.size()) - 1;
          walk(pc + 1, instr.a1, 1.0, true, depth + 1);
          current_ = saved;
          pc = instr.a1;  // skip past kPardoEnd
          break;
        }
        case Opcode::kDoStart: {
          double trips;
          if (instr.a2 >= 0) {
            trips = static_cast<double>(
                program_.index(instr.a0).subs_per_segment);
          } else {
            trips =
                static_cast<double>(program_.index(instr.a0).num_values());
          }
          walk(pc + 1, instr.a1, multiplier * trips, in_pardo, depth + 1);
          pc = instr.a1;  // skip past kDoEnd
          break;
        }
        case Opcode::kCall: {
          const sial::ProcInfo& proc =
              program_.code().procs[static_cast<std::size_t>(instr.a0)];
          const int saved = current_;
          walk(proc.entry_pc, proc_end(proc.entry_pc), multiplier,
               in_pardo, depth + 1);
          current_ = saved;
          break;
        }
        default:
          account(instr, multiplier, in_pardo);
          break;
      }
    }
  }

  int proc_end(int entry_pc) const {
    for (int pc = entry_pc;
         pc < static_cast<int>(program_.code().code.size()); ++pc) {
      if (program_.code().code[static_cast<std::size_t>(pc)].op ==
          Opcode::kReturn) {
        return pc;
      }
    }
    return static_cast<int>(program_.code().code.size());
  }

  std::int64_t pardo_tasks(const sial::PardoInfo& pardo) const {
    // Exact filtered count where computable; raw product otherwise (e.g.
    // `pardo ii in i` whose space depends on a runtime value, or where
    // clauses over outer indices).
    std::vector<long> values(program_.indices().size(),
                             sial::kUndefinedIndexValue);
    try {
      return static_cast<std::int64_t>(
          program_.pardo_filtered_space(pardo, values).size());
    } catch (const Error&) {
      std::int64_t total = 1;
      if (pardo.sub_of >= 0) {
        return program_.index(pardo.index_ids.front()).subs_per_segment;
      }
      for (const int id : pardo.index_ids) {
        total *= program_.index(id).num_values();
      }
      return total;
    }
  }

  void account(const Instruction& instr, double multiplier, bool in_pardo) {
    const auto block_bytes = [&](const sial::BlockOperand& operand) {
      return 8.0 * operand_elements(program_, operand);
    };
    Cost cost;
    switch (instr.op) {
      case Opcode::kBlockBinary: {
        const double dst = operand_elements(program_, instr.blocks[0]);
        if (static_cast<sial::BinOp>(instr.a1) == sial::BinOp::kMul) {
          cost.flops = 2.0 * dst *
                       common_elements(program_, instr.blocks[1],
                                       instr.blocks[2]);
        } else {
          cost.flops = 2.0 * dst;
        }
        cost.peak_block_bytes =
            std::max({block_bytes(instr.blocks[0]),
                      block_bytes(instr.blocks[1]),
                      block_bytes(instr.blocks[2])});
        break;
      }
      case Opcode::kBlockCopy:
      case Opcode::kBlockScaledCopy:
      case Opcode::kBlockScalarOp:
        cost.flops = operand_elements(program_, instr.blocks[0]);
        cost.peak_block_bytes = block_bytes(instr.blocks[0]);
        break;
      case Opcode::kBlockDot:
        cost.flops = 2.0 * operand_elements(program_, instr.blocks[0]);
        cost.peak_block_bytes = block_bytes(instr.blocks[0]);
        break;
      case Opcode::kExecute: {
        for (const sial::ExecOperand& arg : instr.eargs) {
          if (arg.kind == sial::ExecOperand::Kind::kBlock) {
            cost.flops += options_.execute_flops_per_element *
                          operand_elements(program_, arg.block);
            cost.execute_flops = cost.flops;
            cost.peak_block_bytes = block_bytes(arg.block);
            break;  // first block argument sets the scale
          }
        }
        break;
      }
      case Opcode::kGet:
      case Opcode::kRequest:
      case Opcode::kPrefetch: {
        cost.fetches = 1.0;
        cost.fetch_bytes =
            static_cast<double>(
                program_.array(instr.blocks[0].array_id)
                    .max_block_elements) *
            8.0;
        cost.peak_block_bytes = cost.fetch_bytes;
        break;
      }
      case Opcode::kPut:
      case Opcode::kPrepare: {
        cost.puts = 1.0;
        cost.put_bytes =
            static_cast<double>(
                program_.array(instr.blocks[0].array_id)
                    .max_block_elements) *
            8.0;
        cost.peak_block_bytes = cost.put_bytes;
        break;
      }
      default:
        return;
    }
    if (in_pardo && current_ >= 0) {
      phases_[static_cast<std::size_t>(current_)].body.add(cost,
                                                           multiplier);
    } else {
      serial_.add(cost, multiplier);
    }
  }

  const sial::ResolvedProgram& program_;
  const ModelOptions& options_;
  std::vector<Phase> phases_;
  int current_ = -1;
  Cost serial_;
};

}  // namespace

WorkloadModel model_program(const sial::ResolvedProgram& program,
                            const ModelOptions& options) {
  Analyzer analyzer(program, options);
  return analyzer.run();
}

}  // namespace sia::sim
