// Performance modeling of SIAL programs (the paper's §VIII: "We have
// identified opportunities to ... provide useful tool support for SIAL
// programmers. These include ... providing support for performance
// modeling").
//
// model_program statically analyzes a resolved SIAL program and derives
// the simulator workload: one PhaseModel per top-level pardo, with task
// counts taken from the actual (where-filtered) iteration spaces, per-
// iteration flop counts from the block operations in the body (times the
// trip counts of enclosing sequential do loops), and fetch/put volumes
// from the get/put/request/prepare statements. Feeding the result to
// simulate_workload projects how the program would scale on a modeled
// cluster — before burning allocation hours, which is precisely the role
// the paper's dry run plays for memory.
#pragma once

#include "sial/program.hpp"
#include "sim/workload.hpp"

namespace sia::sim {

// Static-analysis knobs.
struct ModelOptions {
  // Estimated flops per element for an `execute`d super instruction
  // (on-demand integral generators dominate; aug-basis ERI codes run
  // hundreds to thousands of flops per integral).
  double execute_flops_per_element = 200.0;
};

// Derives the workload. Phases appear in program order; pardos nested in
// sequential do loops get the loop trip count as `sweeps`. Sequential
// (non-pardo) block work is folded into a trailing single-task phase if
// present.
WorkloadModel model_program(const sial::ResolvedProgram& program,
                            const ModelOptions& options = {});

}  // namespace sia::sim
