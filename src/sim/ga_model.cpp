#include "sim/ga_model.hpp"

namespace sia::sim {

GaOutcome simulate_ga(const MachineModel& machine,
                      const WorkloadModel& workload, long workers,
                      double memory_per_core, double time_limit_s) {
  GaOutcome outcome;

  // Rigid layout: per-core replicated buffers are non-negotiable.
  if (memory_per_core < workload.ga_fixed_per_core) {
    outcome.completed = false;
    outcome.reason = "insufficient memory per core for rigid layout";
    return outcome;
  }
  // The whole working set must be resident.
  const double aggregate = memory_per_core * static_cast<double>(workers);
  if (workload.ga_resident_total +
          workload.ga_fixed_per_core * static_cast<double>(workers) >
      aggregate) {
    outcome.completed = false;
    outcome.reason = "working set exceeds aggregate memory";
    return outcome;
  }

  SimOptions options;
  options.overlap = false;          // blocking gets: waits paid in full
  options.fetch_latency_scale = 2.0;  // per-section index arithmetic and
                                      // two-sided handshakes
  options.compute_scale = 1.8;  // rigid layout forces extra integral
                                // passes and manual buffering copies
  const WorkloadResult result =
      simulate_workload(machine, workload, workers, options);
  outcome.seconds = result.seconds;
  if (time_limit_s > 0.0 && result.seconds > time_limit_s) {
    outcome.completed = false;
    outcome.reason = "exceeded time limit";
  }
  return outcome;
}

}  // namespace sia::sim
