#include "sim/workload.hpp"

#include <cmath>

namespace sia::sim {

namespace {

std::int64_t blocks(long extent, int segment) {
  return (extent + segment - 1) / segment;
}

double block4_bytes(int segment) {
  const double s = static_cast<double>(segment);
  return s * s * s * s * 8.0;
}

double block2_bytes(int segment) {
  const double s = static_cast<double>(segment);
  return s * s * 8.0;
}

// Flops of one block contraction producing a rank-4 block from two rank-4
// blocks: 2 * seg^6.
double contraction_flops(int segment) {
  const double s = static_cast<double>(segment);
  return 2.0 * s * s * s * s * s * s;
}

}  // namespace

double WorkloadModel::total_flops() const {
  double total = 0.0;
  for (const PhaseModel& phase : phases) {
    total += static_cast<double>(phase.tasks) * phase.flops_per_task *
             phase.sweeps;
  }
  return total;
}

WorkloadModel ccsd_iteration(const chem::MolecularSystem& system,
                             int segment) {
  const long no = system.nocc;
  const long nv = system.nvirt();
  const std::int64_t bo = blocks(no, segment);
  const std::int64_t bv = blocks(nv, segment);

  WorkloadModel model;
  model.name = "ccsd-iteration:" + system.name;

  // Dominant doubles-residual pardo over (a,b,i,j) block tuples. Each
  // iteration runs the particle-particle ladder (bv^2 inner block steps),
  // the hole-hole ladder (bo^2), and ring-type terms (2*bv*bo), each a
  // seg^6 block contraction fed by one fetched block.
  PhaseModel residual;
  residual.name = "doubles-residual";
  residual.tasks = bv * bv * bo * bo;
  const double inner_steps = static_cast<double>(bv * bv + bo * bo +
                                                 2 * bv * bo);
  residual.flops_per_task = inner_steps * contraction_flops(segment);
  residual.fetches_per_task = static_cast<std::int64_t>(inner_steps);
  residual.bytes_per_fetch = block4_bytes(segment);
  residual.puts_per_task = 1;
  residual.bytes_per_put = block4_bytes(segment);
  model.phases.push_back(residual);

  // Amplitude copy/update sweep (cheap, communication-dominated).
  PhaseModel update;
  update.name = "amplitude-update";
  update.tasks = bv * bv * bo * bo;
  update.flops_per_task =
      4.0 * std::pow(static_cast<double>(segment), 4.0);
  update.fetches_per_task = 1;
  update.bytes_per_fetch = block4_bytes(segment);
  update.puts_per_task = 1;
  update.bytes_per_put = block4_bytes(segment);
  model.phases.push_back(update);

  const double t_bytes = static_cast<double>(nv) * nv * no * no * 8.0;
  model.sia_resident_total = 3.0 * t_bytes;           // T copies in RAM
  model.sia_fixed_per_core = 64.0 * block4_bytes(segment);
  model.ga_resident_total = 10.0 * t_bytes;           // DIIS history resident
  model.ga_fixed_per_core = 8.0 * t_bytes / 64.0;     // replicated buffers
  return model;
}

WorkloadModel ccsd_energy(const chem::MolecularSystem& system, int segment,
                          int iterations) {
  WorkloadModel model = ccsd_iteration(system, segment);
  model.name = "ccsd:" + system.name;
  for (PhaseModel& phase : model.phases) phase.sweeps = iterations;
  return model;
}

WorkloadModel ccsd_t(const chem::MolecularSystem& system, int segment,
                     int iterations) {
  WorkloadModel model = ccsd_energy(system, segment, iterations);
  model.name = "ccsd(t):" + system.name;

  const long no = system.nocc;
  const long nv = system.nvirt();
  const std::int64_t bo = blocks(no, segment);
  const std::int64_t bv = blocks(nv, segment);

  // Perturbative triples: pardo over ordered (a<b<c) virtual block
  // triples; total flops ~ 2 no^3 nv^4 + 2 no^4 nv^3 (n^7).
  PhaseModel triples;
  triples.name = "triples";
  triples.tasks = bv * (bv + 1) * (bv + 2) / 6;
  const double total_flops =
      2.0 * std::pow(static_cast<double>(no), 3.0) *
          std::pow(static_cast<double>(nv), 4.0) +
      2.0 * std::pow(static_cast<double>(no), 4.0) *
          std::pow(static_cast<double>(nv), 3.0);
  triples.flops_per_task = total_flops / static_cast<double>(triples.tasks);
  triples.fetches_per_task = static_cast<std::int64_t>(bo * bo + bv * bo);
  triples.bytes_per_fetch = block4_bytes(segment);
  triples.puts_per_task = 0;  // energy-only reduction
  triples.bytes_per_put = 0.0;
  model.phases.push_back(triples);
  return model;
}

WorkloadModel fock_build(const chem::MolecularSystem& system, int segment) {
  const long n = system.nbasis;
  const std::int64_t b = blocks(n, segment);

  WorkloadModel model;
  model.name = "fock-build:" + system.name;

  // Pardo over (mu,nu,la,si) block quartets with 8-fold permutational
  // symmetry expressed by where clauses. Each task computes one integral
  // block on the fly (the expensive part: ~2500 flops per aug-cc-pvtz
  // integral) and digests it into J and K contributions.
  PhaseModel build;
  build.name = "fock-digestion";
  build.tasks = (b * b * b * b) / 8;
  const double s4 = std::pow(static_cast<double>(segment), 4.0);
  build.flops_per_task = 2500.0 * s4 + 8.0 * s4;
  build.fetches_per_task = 0;  // density is replicated (static array)
  build.puts_per_task = 2;     // J and K block accumulates
  build.bytes_per_put = block2_bytes(segment);
  model.phases.push_back(build);

  model.sia_resident_total = 3.0 * static_cast<double>(n) * n * 8.0;
  model.sia_fixed_per_core = 16.0 * block4_bytes(segment);
  model.ga_resident_total = model.sia_resident_total;
  model.ga_fixed_per_core = 2.0 * static_cast<double>(n) * n * 8.0;
  return model;
}

WorkloadModel mp2_gradient(const chem::MolecularSystem& system,
                           int segment) {
  const long n = system.nbasis;
  const long no = system.nocc;
  const std::int64_t b = blocks(n, segment);
  const std::int64_t bo = blocks(no, segment);

  WorkloadModel model;
  model.name = "uhf-mp2-gradient:" + system.name;

  // Phase 1: two-electron integral transforms, ~24 no n^4 flops in total
  // for UHF gradients (four quarter-transforms per spin case plus the
  // gradient back-transforms), blocked over (mu,nu) pairs.
  PhaseModel transform;
  transform.name = "ao-mo-transform";
  transform.tasks = b * b;
  transform.flops_per_task = 24.0 * static_cast<double>(no) *
                             std::pow(static_cast<double>(n), 4.0) /
                             static_cast<double>(transform.tasks);
  transform.fetches_per_task = 2 * b;
  transform.bytes_per_fetch = block4_bytes(segment);
  transform.puts_per_task = b;
  transform.bytes_per_put = block4_bytes(segment);
  model.phases.push_back(transform);

  // Phase 2: amplitude/gradient assembly (n^4 no^2-ish, comm heavy).
  PhaseModel assembly;
  assembly.name = "gradient-assembly";
  assembly.tasks = bo * bo * b;
  assembly.flops_per_task = 4.0 * contraction_flops(segment);
  assembly.fetches_per_task = 4;
  assembly.bytes_per_fetch = block4_bytes(segment);
  assembly.puts_per_task = 2;
  assembly.bytes_per_put = block4_bytes(segment);
  model.phases.push_back(assembly);

  const double amp_bytes =
      static_cast<double>(n) * n * no * no * 8.0 / 16.0;  // ia,jb class
  model.sia_resident_total = 2.0 * amp_bytes;
  model.sia_fixed_per_core = 48.0 * block4_bytes(segment);
  // NWChem/GA semidirect MP2 gradient: the half-transformed integrals
  // (no * n^3 doubles) plus several amplitude-class arrays must stay
  // resident in the rigid layout, and each core carries ~1.2 GB of
  // replicated scratch — which is why the paper's Fig. 7 shows NWChem
  // refusing to run at 1 GB/core at any processor count.
  model.ga_resident_total =
      static_cast<double>(no) * n * n * n * 8.0 + 6.0 * amp_bytes;
  model.ga_fixed_per_core = 1.2e9;
  return model;
}

}  // namespace sia::sim
