#include "sim/des.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <vector>

#include "common/error.hpp"
#include "sip/scheduler.hpp"

namespace sia::sim {

namespace {

double log2p(long p) {
  return std::log2(static_cast<double>(std::max<long>(p, 2)));
}

}  // namespace

PhaseResult simulate_phase(const MachineModel& machine,
                           const PhaseModel& phase, long workers,
                           const SimOptions& options) {
  SIA_CHECK(workers >= 1, "simulate_phase: need workers");
  PhaseResult result;

  // Per-iteration compute and transfer costs (identical across tasks).
  const double compute =
      phase.flops_per_task / machine.flops_per_core * options.compute_scale;
  const double bw = machine.effective_bw(workers);
  const double fetch_bytes =
      static_cast<double>(phase.fetches_per_task) * phase.bytes_per_fetch;
  const double put_bytes =
      static_cast<double>(phase.puts_per_task) * phase.bytes_per_put;
  const double messages =
      (static_cast<double>(phase.fetches_per_task) +
       static_cast<double>(phase.puts_per_task)) *
      options.fetch_latency_scale;
  const double transfer =
      messages * machine.latency_s + (fetch_bytes + put_bytes) / bw;
  // Premature-prefetch thrash (the BG/P anecdote): refetched blocks are
  // discovered missing at use time, so that traffic is synchronous — it
  // cannot hide behind compute.
  const double exposed_refetch =
      options.refetch_factor *
      (static_cast<double>(phase.fetches_per_task) * machine.latency_s +
       fetch_bytes / bw);
  // Requests hitting a busy owner stall for (on average half of) the
  // owner's current block operation; collisions get slightly more likely
  // at larger scale.
  const double exposed_hotspot =
      phase.fetches_per_task > 0
          ? options.hotspot_fraction * (1.0 + log2p(workers) / 20.0) *
                compute
          : 0.0;

  // Barrier + startup overhead per sweep.
  const double sweep_overhead =
      2.0 * machine.latency_s * log2p(workers) +
      machine.master_service_s * log2p(workers);

  // One sweep simulated via the chunk-request DES; sweeps are identical,
  // so simulate once and scale.
  sip::GuidedSchedule schedule(phase.tasks, static_cast<int>(workers),
                               options.chunk_divisor, options.min_chunk);

  struct Event {
    double time;
    long worker;
    bool operator>(const Event& other) const { return time > other.time; }
  };
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue;
  for (long w = 0; w < workers; ++w) {
    queue.push(Event{0.0, w});
  }

  double master_free = 0.0;
  double finish = 0.0;
  double total_wait = 0.0;
  double total_busy = 0.0;

  while (!queue.empty()) {
    const Event event = queue.top();
    queue.pop();

    // Chunk request round trip through the serialized master.
    const double arrival = event.time + machine.latency_s;
    const double service_start = std::max(master_free, arrival);
    master_free = service_start + machine.master_service_s;
    const double reply_at = master_free + machine.latency_s;
    ++result.chunks;

    const auto [begin, end] = schedule.next_chunk();
    const std::int64_t count = end - begin;
    if (count <= 0) {
      finish = std::max(finish, reply_at);
      continue;
    }

    const double n = static_cast<double>(count);
    double chunk_time = 0.0;
    double chunk_wait = 0.0;
    if (options.overlap) {
      // Pipeline: first fetch exposed, then per iteration the slower of
      // compute and the next fetch, plus the synchronous residues
      // (refetch thrash, busy-owner stalls).
      const double steady = std::max(compute, transfer) + exposed_refetch +
                            exposed_hotspot;
      chunk_time = transfer + n * steady;
      chunk_wait = chunk_time - n * compute;
    } else {
      chunk_time =
          n * (transfer + exposed_refetch + exposed_hotspot + compute);
      chunk_wait = n * (transfer + exposed_refetch + exposed_hotspot);
    }
    total_wait += chunk_wait;
    total_busy += n * compute;
    queue.push(Event{reply_at + chunk_time, event.worker});
  }

  const double sweeps = static_cast<double>(phase.sweeps);
  result.elapsed = sweeps * (finish + sweep_overhead);
  result.wait = sweeps * total_wait;
  result.busy = sweeps * total_busy;
  result.chunks = static_cast<std::int64_t>(
      sweeps * static_cast<double>(result.chunks));
  return result;
}

WorkloadResult simulate_workload(const MachineModel& machine,
                                 const WorkloadModel& workload, long workers,
                                 const SimOptions& options) {
  WorkloadResult result;
  double wait = 0.0;
  double busy = 0.0;
  result.seconds = options.fixed_overhead_s;
  for (const PhaseModel& phase : workload.phases) {
    const PhaseResult phase_result =
        simulate_phase(machine, phase, workers, options);
    result.seconds += phase_result.elapsed;
    wait += phase_result.wait;
    busy += phase_result.busy;
    result.chunks += phase_result.chunks;
  }
  result.wait_percent =
      busy + wait > 0.0 ? 100.0 * wait / (busy + wait) : 0.0;
  return result;
}

}  // namespace sia::sim
