// GA/NWChem-side performance model for the Fig. 7 comparison.
//
// Captures the properties the paper attributes to the Global-Arrays data
// architecture (§VI-C, §VII):
//   * rigid, programmer-fixed layout: the full working set must be
//     resident in the aggregate memory, and each core needs its fixed
//     replicated buffers — otherwise "the calculation will simply not
//     run";
//   * transfers are blocking (or manually double-buffered at best): no
//     runtime-managed overlap, so waits are paid in full;
//   * a 24-hour batch limit turns too-slow configurations into DNF, as
//     in the paper's NWChem-at-16-processors entries.
#pragma once

#include <string>

#include "sim/des.hpp"

namespace sia::sim {

struct GaOutcome {
  bool completed = true;
  std::string reason;  // when !completed
  double seconds = 0.0;
};

GaOutcome simulate_ga(const MachineModel& machine,
                      const WorkloadModel& workload, long workers,
                      double memory_per_core, double time_limit_s);

}  // namespace sia::sim
