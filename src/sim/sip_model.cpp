#include "sim/sip_model.hpp"

namespace sia::sim {

SiaOutcome simulate_sia(const MachineModel& machine,
                        const WorkloadModel& workload, long workers,
                        const SimOptions& options, double memory_per_core,
                        double time_limit_s) {
  SiaOutcome outcome;
  const double mem =
      memory_per_core > 0.0 ? memory_per_core : machine.memory_per_core;

  // Fixed per-worker footprint must fit; the dry run would have reported
  // the worker count required otherwise.
  if (workload.sia_fixed_per_core > mem) {
    outcome.completed = false;
    outcome.reason = "per-worker block pools exceed memory";
    return outcome;
  }

  SimOptions effective = options;
  const double aggregate = mem * static_cast<double>(workers);
  if (workload.sia_resident_total + workload.sia_fixed_per_core *
                                        static_cast<double>(workers) >
      aggregate) {
    // Adaptive fallback: distributed arrays become served arrays. Fetches
    // now pay a disk-bandwidth term on top of the network, modeled as a
    // slower effective transfer (disk_bw shared by the I/O server pool,
    // assumed 1 server per 64 workers).
    outcome.spilled_to_disk = true;
    const double servers = std::max(1.0, static_cast<double>(workers) / 64.0);
    const double disk_slowdown =
        1.0 + machine.effective_bw(workers) /
                  (machine.disk_bw * servers / static_cast<double>(workers));
    effective.fetch_latency_scale *= disk_slowdown;
  }

  const WorkloadResult result =
      simulate_workload(machine, workload, workers, effective);
  outcome.seconds = result.seconds;
  outcome.wait_percent = result.wait_percent;
  if (time_limit_s > 0.0 && result.seconds > time_limit_s) {
    outcome.completed = false;
    outcome.reason = "exceeded time limit";
  }
  return outcome;
}

}  // namespace sia::sim
