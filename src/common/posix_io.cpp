#include "common/posix_io.hpp"

#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <mutex>

namespace sia {

ssize_t read_full(int fd, void* buf, std::size_t count) {
  char* cursor = static_cast<char*>(buf);
  std::size_t done = 0;
  while (done < count) {
    const ssize_t got =
        retry_eintr([&] { return ::read(fd, cursor + done, count - done); });
    if (got < 0) return -1;
    if (got == 0) break;  // EOF
    done += static_cast<std::size_t>(got);
  }
  return static_cast<ssize_t>(done);
}

ssize_t write_full(int fd, const void* buf, std::size_t count) {
  const char* cursor = static_cast<const char*>(buf);
  std::size_t done = 0;
  while (done < count) {
    const ssize_t put = retry_eintr(
        [&] { return ::write(fd, cursor + done, count - done); });
    if (put < 0) return -1;
    done += static_cast<std::size_t>(put);
  }
  return static_cast<ssize_t>(done);
}

ssize_t pread_full(int fd, void* buf, std::size_t count, off_t offset) {
  char* cursor = static_cast<char*>(buf);
  std::size_t done = 0;
  while (done < count) {
    const ssize_t got = retry_eintr([&] {
      return ::pread(fd, cursor + done, count - done,
                     offset + static_cast<off_t>(done));
    });
    if (got < 0) return -1;
    if (got == 0) break;  // EOF
    done += static_cast<std::size_t>(got);
  }
  return static_cast<ssize_t>(done);
}

ssize_t pwrite_full(int fd, const void* buf, std::size_t count,
                    off_t offset) {
  const char* cursor = static_cast<const char*>(buf);
  std::size_t done = 0;
  while (done < count) {
    const ssize_t put = retry_eintr([&] {
      return ::pwrite(fd, cursor + done, count - done,
                      offset + static_cast<off_t>(done));
    });
    if (put < 0) return -1;
    done += static_cast<std::size_t>(put);
  }
  return static_cast<ssize_t>(done);
}

int fdatasync_eintr(int fd) {
  return static_cast<int>(retry_eintr([&] { return ::fdatasync(fd); }));
}

void close_quiet(int fd) {
  if (fd >= 0) ::close(fd);
}

void ignore_sigpipe() {
  static std::once_flag once;
  std::call_once(once, [] {
    struct sigaction action = {};
    action.sa_handler = SIG_IGN;
    ::sigaction(SIGPIPE, &action, nullptr);
  });
}

}  // namespace sia
