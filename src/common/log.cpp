#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace sia::log {
namespace {

LogLevel initial_level() {
  const char* env = std::getenv("SIA_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  return LogLevel::kWarn;
}

std::atomic<int>& level_storage() {
  static std::atomic<int> value{static_cast<int>(initial_level())};
  return value;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kDebug: return "DEBUG";
  }
  return "?";
}

std::mutex& output_mutex() {
  static std::mutex m;
  return m;
}

}  // namespace

LogLevel level() { return static_cast<LogLevel>(level_storage().load()); }

void set_level(LogLevel level) {
  level_storage().store(static_cast<int>(level));
}

bool enabled(LogLevel query) {
  return static_cast<int>(query) <= level_storage().load();
}

void write(LogLevel level, int rank, const std::string& message) {
  std::lock_guard<std::mutex> lock(output_mutex());
  if (rank >= 0) {
    std::fprintf(stderr, "[sia %s r%d] %s\n", level_name(level), rank,
                 message.c_str());
  } else {
    std::fprintf(stderr, "[sia %s] %s\n", level_name(level), message.c_str());
  }
}

}  // namespace sia::log
