// Minimal thread-safe logging.
//
// Rank-aware so that interleaved master/worker/server output stays
// attributable. Level is process-global and settable from the SIA_LOG
// environment variable (error|warn|info|debug).
#pragma once

#include <sstream>
#include <string>

namespace sia {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

namespace log {

// Current process-global level; defaults to kWarn, overridable via SIA_LOG.
LogLevel level();
void set_level(LogLevel level);

// Emit one line; thread safe. `rank` < 0 suppresses the rank prefix.
void write(LogLevel level, int rank, const std::string& message);

bool enabled(LogLevel level);

}  // namespace log

// Stream-style helper: SIA_LOG_AT(kDebug, rank) << "got block " << id;
class LogLine {
 public:
  LogLine(LogLevel level, int rank) : level_(level), rank_(rank) {}
  ~LogLine() { log::write(level_, rank_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  int rank_;
  std::ostringstream stream_;
};

#define SIA_LOG_AT(level, rank)                  \
  if (!::sia::log::enabled(level)) {             \
  } else                                         \
    ::sia::LogLine(level, rank)

#define SIA_DEBUG(rank) SIA_LOG_AT(::sia::LogLevel::kDebug, rank)
#define SIA_INFO(rank) SIA_LOG_AT(::sia::LogLevel::kInfo, rank)
#define SIA_WARN(rank) SIA_LOG_AT(::sia::LogLevel::kWarn, rank)

}  // namespace sia
