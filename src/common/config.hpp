// Runtime configuration for the SIP.
//
// The paper stresses that tuning parameters — most importantly the segment
// size — are *not* visible in SIAL source; they are chosen by the runtime
// or by a knowledgeable user as runtime parameters. SipConfig is that set
// of runtime parameters.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <thread>

namespace sia {

// Deterministic fault-injection plan. Every fault the ChaosFabric and the
// DiskStore inject is a pure function of {seed, plan, message/op index},
// so a failing chaos run replays exactly from its plan string.
//
// Parse format (also accepted from the SIA_FAULT_PLAN environment
// variable): comma-separated key=value pairs, e.g.
//   drop=0.01,delay_ms=5,dup=0.01,kill_rank=5@msg:200,disk=eio@op:40,seed=42
// Keys: drop / dup / reorder (probabilities in [0,1]), delay_ms /
// delay_jitter_ms (fixed + uniform-random extra delay), kill_rank=R@msg:N
// (rank R goes dark at its Nth sent message), disk=eio|enospc|short@op:N
// (the Nth tracked DiskStore operation fails), seed (RNG seed).
struct FaultPlan {
  double drop = 0.0;     // P(drop) per protected data-plane message
  double dup = 0.0;      // P(duplicate)
  double reorder = 0.0;  // P(reorder within tag) — applied as a small delay
  int delay_ms = 0;          // fixed delivery delay for every message
  int delay_jitter_ms = 0;   // extra uniform-random delay in [0, jitter]
  int kill_rank = -1;        // rank to kill (-1: none)
  long kill_at_msg = 0;      // ...at its Nth counted message
  // Disk fault: 0 none, 1 EIO, 2 ENOSPC, 3 short write.
  int disk_fault = 0;
  long disk_fault_at_op = 0;  // ...at the Nth tracked DiskStore operation
  std::uint64_t seed = 1;

  // True when any fault is configured; gates the reliable protocol and
  // the ChaosFabric decorator on.
  bool active() const {
    return drop > 0.0 || dup > 0.0 || reorder > 0.0 || delay_ms > 0 ||
           delay_jitter_ms > 0 || kill_rank >= 0 || disk_fault != 0;
  }

  // Parses the plan string above; throws Error with the offending token
  // on malformed input. Empty string -> empty plan.
  static FaultPlan parse(const std::string& text);
  // Reads SIA_FAULT_PLAN from the environment (empty plan if unset).
  static FaultPlan from_env();

  void validate() const;
};

// Configuration of a SIP launch. Defaults give a small, laptop-friendly
// virtual machine; benchmarks and tests override fields as needed.
struct SipConfig {
  // Ranks. The fabric hosts 1 master + workers + io_servers ranks.
  int workers = 4;
  int io_servers = 1;

  // Segment size applied to every index type that the program does not
  // override via `segment_overrides`. The same segment size applies to all
  // indices of a given type and is constant for the whole run (paper §III).
  int default_segment = 8;
  // Per index-type segment size override, e.g. {"moindex", 4}.
  std::map<std::string, int> segment_overrides;

  // Sub-segments per segment for `subindex` declarations (paper §IV-E:
  // "determined by a runtime parameter in the same way as the segment
  // size"). Must evenly divide the segment size of the super index.
  int subsegments_per_segment = 2;

  // Per-worker block memory budget in bytes; the dry run checks the
  // program's peak demand against this and reports infeasibility.
  std::size_t worker_memory_bytes = 64ull << 20;
  // Per-I/O-server in-memory cache budget in bytes (LRU, write-behind).
  std::size_t server_cache_bytes = 32ull << 20;

  // Bytecode optimization level applied between the SIAL compiler and
  // program finalization (src/sial/opt/). 0 = none (bytecode runs
  // exactly as compiled), 1 = bit-exact transforms (static prefetch
  // hoisting, redundant-barrier and dead-store elimination, static
  // dataflow sets), 2 = additionally reassociate contraction chains
  // when a compile-time flop model proves it strictly cheaper.
  int opt_level = 2;

  // Number of future loop iterations for which the interpreter issues
  // block requests ahead of use. 0 disables prefetching. Applies to both
  // distributed-array gets and served-array requests (the latter arrive
  // at the I/O server flagged as look-ahead and become low-priority
  // read-ahead jobs).
  int prefetch_depth = 2;

  // Compute threads per worker for the intra-worker dataflow executor
  // (the instruction window). 0 = legacy serial interpreter: no window,
  // every super instruction runs inline on the interpreter thread,
  // bit- and message-identical to the pre-executor runtime. >= 1 turns
  // the window on with that many pool threads (1 still overlaps compute
  // with fabric service). -1 = auto: hardware concurrency divided by the
  // launch's rank count — the window only turns on when the host has
  // spare cores per rank, so an oversubscribed laptop run stays serial.
  int worker_threads = -1;
  // Instruction-window depth: how many decoded super instructions may be
  // in flight per worker (the scan-ahead distance). Only meaningful with
  // worker_threads >= 1.
  int window_limit = 64;

  int effective_worker_threads() const {
    if (worker_threads >= 0) return worker_threads;
    const int hw = static_cast<int>(std::thread::hardware_concurrency());
    return std::max(0, hw / std::max(1, total_ranks()));
  }

  // Disk service threads per I/O server. Cache-miss reads (and on-demand
  // block generation) become jobs on this pool so the server's message
  // loop keeps answering cache hits and prepares while reads are in
  // flight; duplicate in-flight requests for the same block coalesce into
  // one disk read. 0 restores the fully synchronous single-threaded
  // service path.
  int server_disk_threads = 2;

  // Keep served-array files out of the OS page cache: fdatasync once per
  // write-behind batch, then posix_fadvise(DONTNEED) written and read
  // ranges. The server already fronts its disk with an application-level
  // LRU cache (server_cache_bytes), so the page cache only duplicates it
  // and hides the cost the cache exists to manage; cold I/O reproduces
  // the data-larger-than-RAM regime served arrays target and makes reads
  // genuine blocking device I/O the disk pool can overlap.
  bool server_cold_io = false;

  // Norm-based block screening threshold for arrays declared `sparse` in
  // SIAL. A block whose Frobenius norm is below the threshold is treated
  // as zero end to end: it is never allocated, sent, computed with, or
  // written to disk, and reads of it return a canonical shared zero
  // block. Contractions additionally skip the GEMM when the operand norm
  // product is below the threshold. 0 (the default) disables screening
  // entirely and is bit-identical to the dense engine; the result error
  // of a run is bounded by threshold * (number of screened
  // contributions).
  double sparse_threshold = 0.0;

  // Write-combine repeated `put ... +=` to the same block in a per-worker
  // shadow table, flushing at pardo-iteration boundaries and barriers.
  // Cuts put message count on accumulate-heavy inner loops.
  bool coalesce_puts = true;

  // Issue every distributed-array get and served-array request of an
  // instruction before blocking on the first one, so replies overlap the
  // remaining fetches (wait-any instead of fetch-then-wait per operand).
  bool batch_gets = true;

  // Guided-scheduling knobs: first chunks are remaining/(chunk_divisor *
  // workers), never below min_chunk iterations.
  int chunk_divisor = 2;
  long min_chunk = 1;

  // Guided-schedule work stealing: when the chunk schedule is exhausted
  // and a worker still asks for work, the master splits the tail off the
  // largest outstanding chunk (the victim clamps the split to its scan
  // position, so started iterations are never revoked) and hands it to
  // the starved worker. Results stay bit-identical for assignment-
  // independent pardos — iterations are independent by construction.
  bool work_stealing = true;

  // ---- Launch-time autotuning (the planner) ----

  // Sweep the tunable knobs above (worker_threads, window_limit,
  // prefetch_depth, chunk_divisor/min_chunk, segment size, put
  // coalescing, server knobs) through the DES performance model at
  // launch and apply the winning plan before resolution. Knobs the user
  // set explicitly (any field differing from a default-constructed
  // SipConfig) are pinned and never overridden. The SIA_AUTOTUNE
  // environment variable ("0"/"1") wins over this field either way.
  bool autotune = false;

  // Per-host calibration constants file (measured GEMM rate, fabric
  // latency/bandwidth, model bias) persisted after each planned run so
  // the model self-corrects. Empty: SIA_CALIBRATION env, else
  // ~/.cache/sia/calibration.
  std::string calibration_file;

  // Directory for served-array disk files and checkpoints. Empty means a
  // fresh directory under the system temp dir, removed at shutdown.
  std::string scratch_dir;

  // Symbolic constants referenced by SIAL programs (e.g. norb, nocc),
  // resolved during program initialization.
  std::map<std::string, long> constants;

  // Served arrays computed on demand at the I/O servers instead of being
  // prepared: array name -> generator name registered with
  // ServerComputeRegistry (paper §V-B: "An I/O server may also perform
  // certain domain specific computations, namely computing blocks of
  // integrals ... computed on demand rather than stored"). A `request`
  // for a block that was never prepared invokes the generator; prepared
  // blocks still take precedence.
  std::map<std::string, std::string> computed_served;

  // When true, the master performs only the dry run and the launch returns
  // its memory report without executing anything.
  bool dry_run_only = false;

  // Collect and keep per-instruction / per-pardo timing (cheap; on by
  // default as in the paper).
  bool profiling = true;

  // ---- Fault tolerance (PR 4) ----

  // Fault-injection plan; empty (inactive) by default. When active the
  // launch wraps the fabric in a ChaosFabric and turns the reliable
  // delivery protocol + heartbeat watchdog on.
  FaultPlan fault_plan;

  // Force the seq/ack/retry protocol on even without fault injection
  // (e.g. to measure its overhead). Off by default: bookkeeping stays off
  // the zero-copy fast path in fault-free runs.
  bool reliable_protocol = false;

  // Retransmit timer for unacked retryable sends, and how many retries a
  // single message gets (exponential backoff, base retry_timeout_ms)
  // before the sender declares the peer dead and aborts with a diagnostic.
  int retry_timeout_ms = 200;
  int retry_max = 10;

  // Master heartbeat period in ms. 0 = auto: off in fault-free runs, on
  // (kAutoHeartbeatMs) when fault tolerance is enabled; < 0 = always off.
  int heartbeat_ms = 0;
  static constexpr int kAutoHeartbeatMs = 100;
  // Consecutive missed pings before a rank is declared dead.
  int heartbeat_misses = 5;

  // When a dead rank is an I/O server, respawn it and rebuild its state
  // from the durable DiskStore files instead of aborting the run.
  bool server_recovery = true;

  // ---- Transport (PR 9) ----

  // How ranks talk to each other:
  //   "thread"   — every rank is a thread in this process sharing the
  //                in-process mailbox fabric (the default; zero-copy).
  //   "loopback" — ranks are still threads, but every cross-rank message
  //                is framed and carried over a real socketpair through
  //                msg::SocketFabric. Same results, real wire path:
  //                the transport-parity test mode and the socket-overhead
  //                bench column.
  //   "spawn"    — every worker and I/O-server rank runs in its own OS
  //                process (fork/exec), connected to the master's hub
  //                socket. The paper's one-rank-per-MPI-process shape.
  std::string transport = "thread";

  // Socket address for spawn mode ("unix:<path>" or "tcp:<host>:<port>",
  // port 0 = ephemeral). Empty: a unix socket in the scratch directory,
  // falling back to loopback TCP when the path would exceed sun_path.
  std::string socket_address;

  // Binary to exec for spawned ranks; it must call
  // sip::run_spawn_child() from main when sip::is_spawn_child() (see
  // sip/spawn.hpp). Empty: re-exec this executable via /proc/self/exe.
  std::string spawn_helper;

  // How long a spoke keeps retrying its initial connect / a reconnect
  // (exponential backoff) before declaring the hub unreachable.
  int connect_timeout_ms = 10000;

  bool socket_transport() const { return transport != "thread"; }
  bool spawn_processes() const { return transport == "spawn"; }

  // Effective switch for the seq/ack/dedup machinery.
  bool fault_tolerance_enabled() const {
    return reliable_protocol || fault_plan.active();
  }
  // Effective heartbeat period (ms); 0 means no heartbeat.
  int effective_heartbeat_ms() const {
    if (heartbeat_ms > 0) return heartbeat_ms;
    if (heartbeat_ms == 0 && fault_tolerance_enabled()) {
      return kAutoHeartbeatMs;
    }
    return 0;
  }

  // Validated copy with derived values filled in; throws Error on nonsense
  // (e.g. workers < 1, segment < 1).
  void validate() const;

  int total_ranks() const { return 1 + workers + io_servers; }
  int master_rank() const { return 0; }
  int first_worker_rank() const { return 1; }
  int first_server_rank() const { return 1 + workers; }

  // Segment size for a given index type name.
  int segment_for(const std::string& index_type) const;
};

}  // namespace sia
