// Runtime configuration for the SIP.
//
// The paper stresses that tuning parameters — most importantly the segment
// size — are *not* visible in SIAL source; they are chosen by the runtime
// or by a knowledgeable user as runtime parameters. SipConfig is that set
// of runtime parameters.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

namespace sia {

// Configuration of a SIP launch. Defaults give a small, laptop-friendly
// virtual machine; benchmarks and tests override fields as needed.
struct SipConfig {
  // Ranks. The fabric hosts 1 master + workers + io_servers ranks.
  int workers = 4;
  int io_servers = 1;

  // Segment size applied to every index type that the program does not
  // override via `segment_overrides`. The same segment size applies to all
  // indices of a given type and is constant for the whole run (paper §III).
  int default_segment = 8;
  // Per index-type segment size override, e.g. {"moindex", 4}.
  std::map<std::string, int> segment_overrides;

  // Sub-segments per segment for `subindex` declarations (paper §IV-E:
  // "determined by a runtime parameter in the same way as the segment
  // size"). Must evenly divide the segment size of the super index.
  int subsegments_per_segment = 2;

  // Per-worker block memory budget in bytes; the dry run checks the
  // program's peak demand against this and reports infeasibility.
  std::size_t worker_memory_bytes = 64ull << 20;
  // Per-I/O-server in-memory cache budget in bytes (LRU, write-behind).
  std::size_t server_cache_bytes = 32ull << 20;

  // Number of future loop iterations for which the interpreter issues
  // block requests ahead of use. 0 disables prefetching. Applies to both
  // distributed-array gets and served-array requests (the latter arrive
  // at the I/O server flagged as look-ahead and become low-priority
  // read-ahead jobs).
  int prefetch_depth = 2;

  // Disk service threads per I/O server. Cache-miss reads (and on-demand
  // block generation) become jobs on this pool so the server's message
  // loop keeps answering cache hits and prepares while reads are in
  // flight; duplicate in-flight requests for the same block coalesce into
  // one disk read. 0 restores the fully synchronous single-threaded
  // service path.
  int server_disk_threads = 2;

  // Keep served-array files out of the OS page cache: fdatasync once per
  // write-behind batch, then posix_fadvise(DONTNEED) written and read
  // ranges. The server already fronts its disk with an application-level
  // LRU cache (server_cache_bytes), so the page cache only duplicates it
  // and hides the cost the cache exists to manage; cold I/O reproduces
  // the data-larger-than-RAM regime served arrays target and makes reads
  // genuine blocking device I/O the disk pool can overlap.
  bool server_cold_io = false;

  // Write-combine repeated `put ... +=` to the same block in a per-worker
  // shadow table, flushing at pardo-iteration boundaries and barriers.
  // Cuts put message count on accumulate-heavy inner loops.
  bool coalesce_puts = true;

  // Issue every distributed-array get and served-array request of an
  // instruction before blocking on the first one, so replies overlap the
  // remaining fetches (wait-any instead of fetch-then-wait per operand).
  bool batch_gets = true;

  // Guided-scheduling knobs: first chunks are remaining/(chunk_divisor *
  // workers), never below min_chunk iterations.
  int chunk_divisor = 2;
  long min_chunk = 1;

  // Directory for served-array disk files and checkpoints. Empty means a
  // fresh directory under the system temp dir, removed at shutdown.
  std::string scratch_dir;

  // Symbolic constants referenced by SIAL programs (e.g. norb, nocc),
  // resolved during program initialization.
  std::map<std::string, long> constants;

  // Served arrays computed on demand at the I/O servers instead of being
  // prepared: array name -> generator name registered with
  // ServerComputeRegistry (paper §V-B: "An I/O server may also perform
  // certain domain specific computations, namely computing blocks of
  // integrals ... computed on demand rather than stored"). A `request`
  // for a block that was never prepared invokes the generator; prepared
  // blocks still take precedence.
  std::map<std::string, std::string> computed_served;

  // When true, the master performs only the dry run and the launch returns
  // its memory report without executing anything.
  bool dry_run_only = false;

  // Collect and keep per-instruction / per-pardo timing (cheap; on by
  // default as in the paper).
  bool profiling = true;

  // Validated copy with derived values filled in; throws Error on nonsense
  // (e.g. workers < 1, segment < 1).
  void validate() const;

  int total_ranks() const { return 1 + workers + io_servers; }
  int master_rank() const { return 0; }
  int first_worker_rank() const { return 1; }
  int first_server_rank() const { return 1 + workers; }

  // Segment size for a given index type name.
  int segment_for(const std::string& index_type) const;
};

}  // namespace sia
