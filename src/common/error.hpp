// Error types shared across the SIA library.
//
// The SIA distinguishes user-facing errors (bad SIAL source, infeasible
// memory configuration) from internal invariant violations. User errors
// carry enough context (source line, symbol name) to be actionable.
#pragma once

#include <stdexcept>
#include <string>

namespace sia {

// Base class for all errors raised by this library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

// Error in SIAL source code (lexing, parsing, or semantic analysis).
// `line` is 1-based; 0 means "no specific location". `col` (1-based) is
// optional; when present the location prints as line:col.
class CompileError : public Error {
 public:
  CompileError(const std::string& what, int line, int col = 0)
      : Error(line > 0
                  ? "SIAL compile error at line " + std::to_string(line) +
                        (col > 0 ? ":" + std::to_string(col) : "") + ": " +
                        what
                  : "SIAL compile error: " + what),
        line_(line),
        col_(col) {}
  int line() const noexcept { return line_; }
  int col() const noexcept { return col_; }

 private:
  int line_ = 0;
  int col_ = 0;
};

// Error raised while the SIP executes a program (bad barrier usage,
// out-of-range block, exhausted block pool, ...).
class RuntimeError : public Error {
 public:
  explicit RuntimeError(const std::string& what)
      : Error("SIP runtime error: " + what) {}
};

// Raised by the master's dry run when the requested computation cannot fit
// in the configured per-worker memory. Carries the number of workers that
// would be sufficient, as the paper requires this to be reported.
class InfeasibleError : public Error {
 public:
  InfeasibleError(const std::string& what, int workers_needed)
      : Error("infeasible configuration: " + what +
              " (would need at least " + std::to_string(workers_needed) +
              " workers)"),
        workers_needed_(workers_needed) {}
  int workers_needed() const noexcept { return workers_needed_; }

 private:
  int workers_needed_ = 0;
};

// Internal invariant violation; indicates a bug in the library itself.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what)
      : Error("internal error: " + what) {}
};

// SIA_CHECK: cheap always-on invariant check for internal consistency.
#define SIA_CHECK(cond, msg)                                             \
  do {                                                                   \
    if (!(cond)) {                                                       \
      throw ::sia::InternalError(std::string(msg) + " [" #cond "] at " + \
                                 __FILE__ + ":" + std::to_string(__LINE__)); \
    }                                                                    \
  } while (0)

}  // namespace sia
