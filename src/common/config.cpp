#include "common/config.hpp"

#include <cstdlib>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace sia {

namespace {

// Splits "a=1,b=2" into {"a=1","b=2"}; empty tokens are rejected later.
std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const std::size_t end = text.find(sep, begin);
    if (end == std::string::npos) {
      parts.push_back(text.substr(begin));
      break;
    }
    parts.push_back(text.substr(begin, end - begin));
    begin = end + 1;
  }
  return parts;
}

double parse_probability(const std::string& key, const std::string& value) {
  std::size_t used = 0;
  double p = 0.0;
  try {
    p = std::stod(value, &used);
  } catch (const std::exception&) {
    throw Error("FaultPlan: bad value for '" + key + "': '" + value + "'");
  }
  if (used != value.size() || p < 0.0 || p > 1.0) {
    throw Error("FaultPlan: '" + key + "' must be a probability in [0,1], got '" +
                value + "'");
  }
  return p;
}

long parse_long(const std::string& key, const std::string& value) {
  std::size_t used = 0;
  long v = 0;
  try {
    v = std::stol(value, &used);
  } catch (const std::exception&) {
    throw Error("FaultPlan: bad value for '" + key + "': '" + value + "'");
  }
  if (used != value.size()) {
    throw Error("FaultPlan: bad value for '" + key + "': '" + value + "'");
  }
  return v;
}

// Parses "X@msg:N" / "X@op:N" suffixes: returns {head, N} where N defaults
// to `default_at` when no @-suffix is present.
std::pair<std::string, long> parse_at(const std::string& key,
                                      const std::string& value,
                                      const std::string& marker,
                                      long default_at) {
  const std::size_t at = value.find('@');
  if (at == std::string::npos) return {value, default_at};
  const std::string suffix = value.substr(at + 1);
  if (suffix.rfind(marker, 0) != 0) {
    throw Error("FaultPlan: '" + key + "' expects '@" + marker +
                "N' suffix, got '" + value + "'");
  }
  return {value.substr(0, at),
          parse_long(key, suffix.substr(marker.size()))};
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& text) {
  FaultPlan plan;
  if (text.empty()) return plan;
  for (const std::string& token : split(text, ',')) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw Error("FaultPlan: expected key=value, got '" + token + "'");
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "drop") {
      plan.drop = parse_probability(key, value);
    } else if (key == "dup") {
      plan.dup = parse_probability(key, value);
    } else if (key == "reorder") {
      plan.reorder = parse_probability(key, value);
    } else if (key == "delay_ms") {
      plan.delay_ms = static_cast<int>(parse_long(key, value));
    } else if (key == "delay_jitter_ms") {
      plan.delay_jitter_ms = static_cast<int>(parse_long(key, value));
    } else if (key == "kill_rank") {
      auto [rank, at] = parse_at(key, value, "msg:", 1);
      plan.kill_rank = static_cast<int>(parse_long(key, rank));
      plan.kill_at_msg = at;
    } else if (key == "disk") {
      auto [kind, at] = parse_at(key, value, "op:", 1);
      if (kind == "eio") {
        plan.disk_fault = 1;
      } else if (kind == "enospc") {
        plan.disk_fault = 2;
      } else if (kind == "short") {
        plan.disk_fault = 3;
      } else {
        throw Error("FaultPlan: unknown disk fault '" + kind +
                    "' (want eio|enospc|short)");
      }
      plan.disk_fault_at_op = at;
    } else if (key == "seed") {
      plan.seed = static_cast<std::uint64_t>(parse_long(key, value));
    } else {
      throw Error("FaultPlan: unknown key '" + key + "'");
    }
  }
  plan.validate();
  return plan;
}

FaultPlan FaultPlan::from_env() {
  const char* text = std::getenv("SIA_FAULT_PLAN");
  if (text == nullptr) return FaultPlan{};
  return parse(text);
}

void FaultPlan::validate() const {
  if (delay_ms < 0 || delay_jitter_ms < 0) {
    throw Error("FaultPlan: delays must be >= 0");
  }
  if (kill_rank >= 0 && kill_at_msg < 1) {
    throw Error("FaultPlan: kill_rank needs @msg:N with N >= 1");
  }
  if (disk_fault != 0 && disk_fault_at_op < 1) {
    throw Error("FaultPlan: disk fault needs @op:N with N >= 1");
  }
}

void SipConfig::validate() const {
  if (workers < 1) throw Error("SipConfig: need at least one worker");
  if (io_servers < 0) throw Error("SipConfig: io_servers must be >= 0");
  if (default_segment < 1) throw Error("SipConfig: default_segment must be >= 1");
  for (const auto& [type, seg] : segment_overrides) {
    if (seg < 1) {
      throw Error("SipConfig: segment override for '" + type +
                  "' must be >= 1");
    }
  }
  if (subsegments_per_segment < 1) {
    throw Error("SipConfig: subsegments_per_segment must be >= 1");
  }
  if (prefetch_depth < 0) throw Error("SipConfig: prefetch_depth must be >= 0");
  if (opt_level < 0 || opt_level > 2) {
    throw Error("SipConfig: opt_level must be 0, 1, or 2");
  }
  if (worker_threads < -1) {
    throw Error("SipConfig: worker_threads must be -1 (auto), 0, or > 0");
  }
  if (window_limit < 1) throw Error("SipConfig: window_limit must be >= 1");
  if (server_disk_threads < 0) {
    throw Error("SipConfig: server_disk_threads must be >= 0");
  }
  if (!(sparse_threshold >= 0.0)) {
    throw Error("SipConfig: sparse_threshold must be >= 0");
  }
  if (chunk_divisor < 1) throw Error("SipConfig: chunk_divisor must be >= 1");
  if (min_chunk < 1) throw Error("SipConfig: min_chunk must be >= 1");
  fault_plan.validate();
  if (retry_timeout_ms < 1) {
    throw Error("SipConfig: retry_timeout_ms must be >= 1");
  }
  if (retry_max < 1) throw Error("SipConfig: retry_max must be >= 1");
  if (heartbeat_misses < 1) {
    throw Error("SipConfig: heartbeat_misses must be >= 1");
  }
  if (transport != "thread" && transport != "loopback" &&
      transport != "spawn") {
    throw Error("SipConfig: transport must be thread, loopback, or spawn, "
                "got '" + transport + "'");
  }
  if (connect_timeout_ms < 1) {
    throw Error("SipConfig: connect_timeout_ms must be >= 1");
  }
  if (fault_plan.kill_rank >= total_ranks()) {
    throw Error("FaultPlan: kill_rank out of range for this launch");
  }
  if (fault_plan.kill_rank == master_rank()) {
    throw Error("FaultPlan: cannot kill the master rank");
  }
}

int SipConfig::segment_for(const std::string& index_type) const {
  auto it = segment_overrides.find(index_type);
  return it == segment_overrides.end() ? default_segment : it->second;
}

}  // namespace sia
