#include "common/config.hpp"

#include "common/error.hpp"

namespace sia {

void SipConfig::validate() const {
  if (workers < 1) throw Error("SipConfig: need at least one worker");
  if (io_servers < 0) throw Error("SipConfig: io_servers must be >= 0");
  if (default_segment < 1) throw Error("SipConfig: default_segment must be >= 1");
  for (const auto& [type, seg] : segment_overrides) {
    if (seg < 1) {
      throw Error("SipConfig: segment override for '" + type +
                  "' must be >= 1");
    }
  }
  if (subsegments_per_segment < 1) {
    throw Error("SipConfig: subsegments_per_segment must be >= 1");
  }
  if (prefetch_depth < 0) throw Error("SipConfig: prefetch_depth must be >= 0");
  if (server_disk_threads < 0) {
    throw Error("SipConfig: server_disk_threads must be >= 0");
  }
  if (chunk_divisor < 1) throw Error("SipConfig: chunk_divisor must be >= 1");
  if (min_chunk < 1) throw Error("SipConfig: min_chunk must be >= 1");
}

int SipConfig::segment_for(const std::string& index_type) const {
  auto it = segment_overrides.find(index_type);
  return it == segment_overrides.end() ? default_segment : it->second;
}

}  // namespace sia
