// Streaming statistics and fixed-width table printing.
//
// The bench harnesses print series in the same shape as the paper's
// figures; TablePrinter renders those rows consistently.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace sia {

// Welford streaming accumulator: count / mean / min / max / stddev.
class RunningStats {
 public:
  void add(double x);
  std::int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }
  double variance() const;
  double stddev() const;

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Right-aligned fixed-width text table, printed row by row so long bench
// runs show progress as they go.
class TablePrinter {
 public:
  TablePrinter(std::ostream& out, std::vector<std::string> headers,
               std::vector<int> widths);

  void print_header();
  void print_row(const std::vector<std::string>& cells);
  void print_rule();

  // Formats a double with `digits` decimal places.
  static std::string num(double value, int digits = 2);

 private:
  std::ostream& out_;
  std::vector<std::string> headers_;
  std::vector<int> widths_;
};

}  // namespace sia
