#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "common/error.hpp"

namespace sia {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

TablePrinter::TablePrinter(std::ostream& out, std::vector<std::string> headers,
                           std::vector<int> widths)
    : out_(out), headers_(std::move(headers)), widths_(std::move(widths)) {
  SIA_CHECK(headers_.size() == widths_.size(),
            "TablePrinter: headers/widths mismatch");
}

void TablePrinter::print_header() {
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    out_.width(widths_[i]);
    out_ << headers_[i];
    if (i + 1 < headers_.size()) out_ << "  ";
  }
  out_ << '\n';
  print_rule();
}

void TablePrinter::print_rule() {
  for (std::size_t i = 0; i < widths_.size(); ++i) {
    out_ << std::string(static_cast<std::size_t>(widths_[i]), '-');
    if (i + 1 < widths_.size()) out_ << "  ";
  }
  out_ << '\n';
}

void TablePrinter::print_row(const std::vector<std::string>& cells) {
  SIA_CHECK(cells.size() == widths_.size(), "TablePrinter: wrong cell count");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    out_.width(widths_[i]);
    out_ << cells[i];
    if (i + 1 < cells.size()) out_ << "  ";
  }
  out_ << '\n';
  out_.flush();
}

std::string TablePrinter::num(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", digits, value);
  return buffer;
}

}  // namespace sia
