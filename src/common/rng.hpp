// Deterministic random-number utilities.
//
// Everything in this library that needs "random" data (synthetic integral
// noise, test sweeps) must be reproducible, so all randomness flows through
// explicitly seeded engines — never std::random_device.
#pragma once

#include <cstdint>
#include <random>

namespace sia {

// SplitMix64: tiny, high-quality mixing function. Used both as a seeding
// aid and as the deterministic hash behind synthetic data generators.
inline std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Combines hash values (boost-style).
inline std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t value) {
  return seed ^ (splitmix64(value) + 0x9e3779b97f4a7c15ull + (seed << 6) +
                 (seed >> 2));
}

// Deterministic double in [0, 1) derived from a 64-bit key.
inline double unit_double(std::uint64_t key) {
  return static_cast<double>(splitmix64(key) >> 11) * 0x1.0p-53;
}

// Seeded engine for test/benchmark sweeps.
inline std::mt19937_64 make_engine(std::uint64_t seed) {
  return std::mt19937_64(splitmix64(seed));
}

}  // namespace sia
