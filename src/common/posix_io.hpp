// EINTR-safe POSIX I/O wrappers shared by every layer that touches file
// descriptors: the socket fabric, the served-array DiskStore, and the
// I/O-server ack journal.
//
// POSIX allows any slow syscall to return early with EINTR when a signal
// lands (profilers, SIGCHLD from spawned ranks, debugger attach), and
// read/write on sockets and files may legally transfer fewer bytes than
// asked. Scattering `while (errno == EINTR)` loops across call sites is
// how short-write bugs are born, so this header is the single place the
// retry policy lives:
//
//   * retry_eintr(fn)      — re-issues fn() while it fails with EINTR;
//   * read_full/write_full — loop until the whole count transferred, EOF,
//     or a real error (partial transfer + EINTR both retried);
//   * pread_full/pwrite_full — the positional variants DiskStore uses;
//   * fdatasync_eintr      — fdatasync with the same retry;
//   * ignore_sigpipe()     — process-wide SIGPIPE suppression so a write
//     to a reset socket fails with EPIPE instead of killing the rank.
//
// All *_full functions return the number of bytes transferred: `count` on
// success, less only on EOF (reads) — errors throw nothing here; callers
// get -1 with errno preserved and decide (DiskStore throws, the socket
// fabric reconnects).
#pragma once

#include <sys/types.h>

#include <cerrno>
#include <cstddef>

namespace sia {

// Re-issues `fn` while it returns -1 with errno == EINTR.
template <typename Fn>
auto retry_eintr(Fn&& fn) -> decltype(fn()) {
  decltype(fn()) result;
  do {
    result = fn();
  } while (result < 0 && errno == EINTR);
  return result;
}

// Reads exactly `count` bytes unless EOF comes first. Returns the bytes
// read (possibly short at EOF), or -1 with errno set on a real error.
ssize_t read_full(int fd, void* buf, std::size_t count);

// Writes exactly `count` bytes. Returns `count`, or -1 with errno set.
ssize_t write_full(int fd, const void* buf, std::size_t count);

// Positional variants (DiskStore). Same contract as read/write_full.
ssize_t pread_full(int fd, void* buf, std::size_t count, off_t offset);
ssize_t pwrite_full(int fd, const void* buf, std::size_t count,
                    off_t offset);

// fdatasync with EINTR retry; returns 0 or -1 with errno set.
int fdatasync_eintr(int fd);

// close with EINTR handled (POSIX leaves the fd state unspecified after
// EINTR; retrying a close risks closing a recycled descriptor, so this
// calls close exactly once and swallows EINTR).
void close_quiet(int fd);

// Installs SIG_IGN for SIGPIPE once per process (idempotent, thread-safe).
// A peer resetting its socket then makes write fail with EPIPE — an errno
// the fabric's reconnect path handles — instead of delivering a
// process-fatal signal.
void ignore_sigpipe();

}  // namespace sia
