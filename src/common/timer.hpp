// Wall-clock timing helpers used by the SIP profiler.
//
// The paper notes that because every SIP step is coarse (one super
// instruction), detailed timing can be collected with negligible overhead.
#pragma once

#include <chrono>
#include <cstdint>

namespace sia {

// Monotonic wall clock in seconds.
inline double wall_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

// Simple start/stop stopwatch accumulating total elapsed seconds.
class Stopwatch {
 public:
  void start() { start_ = wall_seconds(); running_ = true; }
  // Stops and returns the duration of this interval (0 if not running).
  double stop() {
    if (!running_) return 0.0;
    const double dt = wall_seconds() - start_;
    total_ += dt;
    ++intervals_;
    running_ = false;
    return dt;
  }
  double total() const { return total_; }
  std::int64_t intervals() const { return intervals_; }
  bool running() const { return running_; }
  void reset() { total_ = 0.0; intervals_ = 0; running_ = false; }

 private:
  double start_ = 0.0;
  double total_ = 0.0;
  std::int64_t intervals_ = 0;
  bool running_ = false;
};

// RAII interval that adds its lifetime to a Stopwatch.
class ScopedTimer {
 public:
  explicit ScopedTimer(Stopwatch& watch) : watch_(watch) { watch_.start(); }
  ~ScopedTimer() { watch_.stop(); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Stopwatch& watch_;
};

}  // namespace sia
