#include "sip/spawn.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/posix_io.hpp"
#include "msg/chaos.hpp"
#include "msg/frame.hpp"
#include "msg/socket_fabric.hpp"
#include "msg/tags.hpp"
#include "sial/compiler.hpp"
#include "sial/opt/optimizer.hpp"
#include "sip/interpreter.hpp"
#include "sip/io_server.hpp"
#include "sip/master.hpp"
#include "sip/shared.hpp"
#include "sip/superinstr.hpp"

namespace sia::sip {

namespace {

// kResultReport payload layout (see tags.hpp): data = 13 traffic words,
// 5 chaos words, a kind-specific tail, then (workers only) the final
// scalar values. header = [kind, scalar_count].
constexpr int kKindWorker = 1;
constexpr int kKindServer = 2;
constexpr std::size_t kTrafficWords = 13;

std::string format_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

// ---------------------------------------------------------------------
// Bundle: the key=value config + SIAL source a child rebuilds its half
// of the launch from. The `source=<bytes>` line is last; the raw source
// follows it unescaped.

struct Bundle {
  SipConfig config;
  std::string connect;  // hub address for the spoke fabric
  std::string source;
};

void append_kv(std::string& out, const std::string& key,
               const std::string& value) {
  out += key;
  out += '=';
  out += value;
  out += '\n';
}

std::string serialize_bundle(const SipConfig& c, const std::string& connect,
                             const std::string& scratch_dir,
                             const std::string& source) {
  std::string out;
  const auto num = [&out](const char* key, long long value) {
    append_kv(out, key, std::to_string(value));
  };
  num("workers", c.workers);
  num("io_servers", c.io_servers);
  num("default_segment", c.default_segment);
  num("subsegments_per_segment", c.subsegments_per_segment);
  num("worker_memory_bytes", static_cast<long long>(c.worker_memory_bytes));
  num("server_cache_bytes", static_cast<long long>(c.server_cache_bytes));
  num("opt_level", c.opt_level);
  num("prefetch_depth", c.prefetch_depth);
  num("worker_threads", c.worker_threads);
  num("window_limit", c.window_limit);
  num("server_disk_threads", c.server_disk_threads);
  num("server_cold_io", c.server_cold_io ? 1 : 0);
  append_kv(out, "sparse_threshold", format_double(c.sparse_threshold));
  num("coalesce_puts", c.coalesce_puts ? 1 : 0);
  num("batch_gets", c.batch_gets ? 1 : 0);
  num("chunk_divisor", c.chunk_divisor);
  num("min_chunk", c.min_chunk);
  num("work_stealing", c.work_stealing ? 1 : 0);
  num("profiling", c.profiling ? 1 : 0);
  num("reliable_protocol", c.reliable_protocol ? 1 : 0);
  num("retry_timeout_ms", c.retry_timeout_ms);
  num("retry_max", c.retry_max);
  num("heartbeat_ms", c.heartbeat_ms);
  num("heartbeat_misses", c.heartbeat_misses);
  num("server_recovery", c.server_recovery ? 1 : 0);
  num("connect_timeout_ms", c.connect_timeout_ms);
  append_kv(out, "fault.drop", format_double(c.fault_plan.drop));
  append_kv(out, "fault.dup", format_double(c.fault_plan.dup));
  append_kv(out, "fault.reorder", format_double(c.fault_plan.reorder));
  num("fault.delay_ms", c.fault_plan.delay_ms);
  num("fault.delay_jitter_ms", c.fault_plan.delay_jitter_ms);
  num("fault.kill_rank", c.fault_plan.kill_rank);
  num("fault.kill_at_msg", c.fault_plan.kill_at_msg);
  num("fault.disk_fault", c.fault_plan.disk_fault);
  num("fault.disk_fault_at_op", c.fault_plan.disk_fault_at_op);
  num("fault.seed", static_cast<long long>(c.fault_plan.seed));
  append_kv(out, "scratch_dir", scratch_dir);
  for (const auto& [type, seg] : c.segment_overrides) {
    append_kv(out, "segment." + type, std::to_string(seg));
  }
  for (const auto& [name, value] : c.constants) {
    append_kv(out, "constant." + name, std::to_string(value));
  }
  for (const auto& [array, generator] : c.computed_served) {
    append_kv(out, "computed." + array, generator);
  }
  append_kv(out, "connect", connect);
  append_kv(out, "source", std::to_string(source.size()));
  out += source;
  return out;
}

long long parse_ll(const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const long long v = std::stoll(value, &used);
    if (used == value.size()) return v;
  } catch (const std::exception&) {
  }
  throw Error("spawn bundle: bad value for '" + key + "': '" + value + "'");
}

double parse_double(const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const double v = std::stod(value, &used);
    if (used == value.size()) return v;
  } catch (const std::exception&) {
  }
  throw Error("spawn bundle: bad value for '" + key + "': '" + value + "'");
}

Bundle parse_bundle(const std::string& text) {
  Bundle b;
  SipConfig& c = b.config;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) {
      throw Error("spawn bundle: unterminated line");
    }
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw Error("spawn bundle: expected key=value, got '" + line + "'");
    }
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    if (key == "source") {
      const std::size_t bytes =
          static_cast<std::size_t>(parse_ll(key, value));
      if (pos + bytes > text.size()) {
        throw Error("spawn bundle: source truncated");
      }
      b.source = text.substr(pos, bytes);
      return b;  // source is always last
    }
    if (key == "workers") c.workers = static_cast<int>(parse_ll(key, value));
    else if (key == "io_servers") c.io_servers = static_cast<int>(parse_ll(key, value));
    else if (key == "default_segment") c.default_segment = static_cast<int>(parse_ll(key, value));
    else if (key == "subsegments_per_segment") c.subsegments_per_segment = static_cast<int>(parse_ll(key, value));
    else if (key == "worker_memory_bytes") c.worker_memory_bytes = static_cast<std::size_t>(parse_ll(key, value));
    else if (key == "server_cache_bytes") c.server_cache_bytes = static_cast<std::size_t>(parse_ll(key, value));
    else if (key == "opt_level") c.opt_level = static_cast<int>(parse_ll(key, value));
    else if (key == "prefetch_depth") c.prefetch_depth = static_cast<int>(parse_ll(key, value));
    else if (key == "worker_threads") c.worker_threads = static_cast<int>(parse_ll(key, value));
    else if (key == "window_limit") c.window_limit = static_cast<int>(parse_ll(key, value));
    else if (key == "server_disk_threads") c.server_disk_threads = static_cast<int>(parse_ll(key, value));
    else if (key == "server_cold_io") c.server_cold_io = parse_ll(key, value) != 0;
    else if (key == "sparse_threshold") c.sparse_threshold = parse_double(key, value);
    else if (key == "coalesce_puts") c.coalesce_puts = parse_ll(key, value) != 0;
    else if (key == "batch_gets") c.batch_gets = parse_ll(key, value) != 0;
    else if (key == "chunk_divisor") c.chunk_divisor = static_cast<int>(parse_ll(key, value));
    else if (key == "min_chunk") c.min_chunk = parse_ll(key, value);
    else if (key == "work_stealing") c.work_stealing = parse_ll(key, value) != 0;
    else if (key == "profiling") c.profiling = parse_ll(key, value) != 0;
    else if (key == "reliable_protocol") c.reliable_protocol = parse_ll(key, value) != 0;
    else if (key == "retry_timeout_ms") c.retry_timeout_ms = static_cast<int>(parse_ll(key, value));
    else if (key == "retry_max") c.retry_max = static_cast<int>(parse_ll(key, value));
    else if (key == "heartbeat_ms") c.heartbeat_ms = static_cast<int>(parse_ll(key, value));
    else if (key == "heartbeat_misses") c.heartbeat_misses = static_cast<int>(parse_ll(key, value));
    else if (key == "server_recovery") c.server_recovery = parse_ll(key, value) != 0;
    else if (key == "connect_timeout_ms") c.connect_timeout_ms = static_cast<int>(parse_ll(key, value));
    else if (key == "fault.drop") c.fault_plan.drop = parse_double(key, value);
    else if (key == "fault.dup") c.fault_plan.dup = parse_double(key, value);
    else if (key == "fault.reorder") c.fault_plan.reorder = parse_double(key, value);
    else if (key == "fault.delay_ms") c.fault_plan.delay_ms = static_cast<int>(parse_ll(key, value));
    else if (key == "fault.delay_jitter_ms") c.fault_plan.delay_jitter_ms = static_cast<int>(parse_ll(key, value));
    else if (key == "fault.kill_rank") c.fault_plan.kill_rank = static_cast<int>(parse_ll(key, value));
    else if (key == "fault.kill_at_msg") c.fault_plan.kill_at_msg = parse_ll(key, value);
    else if (key == "fault.disk_fault") c.fault_plan.disk_fault = static_cast<int>(parse_ll(key, value));
    else if (key == "fault.disk_fault_at_op") c.fault_plan.disk_fault_at_op = parse_ll(key, value);
    else if (key == "fault.seed") c.fault_plan.seed = static_cast<std::uint64_t>(parse_ll(key, value));
    else if (key == "scratch_dir") c.scratch_dir = value;
    else if (key.rfind("segment.", 0) == 0) c.segment_overrides[key.substr(8)] = static_cast<int>(parse_ll(key, value));
    else if (key.rfind("constant.", 0) == 0) c.constants[key.substr(9)] = parse_ll(key, value);
    else if (key.rfind("computed.", 0) == 0) c.computed_served[key.substr(9)] = value;
    else if (key == "connect") b.connect = value;
    else throw Error("spawn bundle: unknown key '" + key + "'");
  }
  throw Error("spawn bundle: missing source section");
}

// ---------------------------------------------------------------------
// Result-report packing.

void pack_traffic(const msg::TrafficStats& t, std::vector<double>& out) {
  const std::int64_t words[kTrafficWords] = {
      t.messages_sent,     t.payload_doubles_sent, t.header_words_sent,
      t.zero_copy_messages, t.zero_copy_doubles,   t.sends_after_stop,
      t.blocks_screened,   t.bytes_elided,         t.serialized_messages,
      t.serialized_doubles, t.reconnects,          t.frames_rejected,
      t.peer_down_drops};
  for (const std::int64_t w : words) out.push_back(static_cast<double>(w));
}

std::int64_t take(const msg::Message& m, std::size_t& i) {
  return i < m.data.size() ? static_cast<std::int64_t>(m.data[i++]) : 0;
}

void add_traffic(const msg::Message& m, std::size_t& i,
                 msg::TrafficStats& t) {
  t.messages_sent += take(m, i);
  t.payload_doubles_sent += take(m, i);
  t.header_words_sent += take(m, i);
  t.zero_copy_messages += take(m, i);
  t.zero_copy_doubles += take(m, i);
  t.sends_after_stop += take(m, i);
  t.blocks_screened += take(m, i);
  t.bytes_elided += take(m, i);
  t.serialized_messages += take(m, i);
  t.serialized_doubles += take(m, i);
  t.reconnects += take(m, i);
  t.frames_rejected += take(m, i);
  t.peer_down_drops += take(m, i);
}

// Writes the given messages over a fresh one-shot connection to the hub.
// Best effort by design: if the hub is already gone (it stops on abort),
// the report is simply lost — the error that caused the abort reached
// the master through the live fabric before it stopped.
void send_one_shot(const std::string& connect,
                   const std::vector<msg::Message>& messages) {
  msg::SocketAddress addr;
  try {
    addr = msg::SocketAddress::parse(connect);
  } catch (const std::exception&) {
    return;
  }
  const int fd = msg::connect_socket(addr);
  if (fd < 0) return;
  std::vector<std::uint8_t> frame;
  for (const msg::Message& message : messages) {
    frame.clear();
    msg::encode_message_frame(message, /*dst=*/0, frame);
    if (write_full(fd, frame.data(), frame.size()) < 0) break;
  }
  close_quiet(fd);
}

pid_t spawn_rank(const std::string& helper, int rank,
                 const std::string& bundle_path, int incarnation) {
  std::vector<std::string> args = {helper,
                                   "--sia-child",
                                   "--rank",
                                   std::to_string(rank),
                                   "--bundle",
                                   bundle_path,
                                   "--incarnation",
                                   std::to_string(incarnation)};
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& arg : args) argv.push_back(arg.data());
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::execv(argv[0], argv.data());
    ::_exit(127);  // exec failed; the watchdog will diagnose the silence
  }
  return pid;
}

// Reaps every live child: polite waitpid polling under a deadline, then
// SIGKILL for stragglers (an aborted child may be blocked on a fabric
// that no longer answers).
void reap_children(std::vector<pid_t>& pids) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  for (;;) {
    bool pending = false;
    for (pid_t& pid : pids) {
      if (pid <= 0) continue;
      int status = 0;
      const pid_t r = retry_eintr([&] { return ::waitpid(pid, &status, WNOHANG); });
      if (r == pid || (r < 0 && errno == ECHILD)) {
        pid = -1;
      } else {
        pending = true;
      }
    }
    if (!pending || std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  for (pid_t& pid : pids) {
    if (pid <= 0) continue;
    ::kill(pid, SIGKILL);
    int status = 0;
    retry_eintr([&] { return ::waitpid(pid, &status, 0); });
    pid = -1;
  }
}

}  // namespace

msg::Message make_abort_message(const std::string& text) {
  msg::Message message;
  message.tag = msg::kAbort;
  message.header = {static_cast<std::int64_t>(text.size())};
  message.data.resize((text.size() + 7) / 8, 0.0);
  if (!text.empty()) {
    std::memcpy(message.data.data(), text.data(), text.size());
  }
  return message;
}

std::string abort_text(const msg::Message& message) {
  if (message.header.empty()) return "aborted by remote rank";
  const std::size_t bytes = static_cast<std::size_t>(
      std::max<std::int64_t>(0, message.header[0]));
  if (bytes == 0 || bytes > message.data.size() * 8) {
    return "aborted by remote rank";
  }
  std::string text(bytes, '\0');
  std::memcpy(text.data(), message.data.data(), bytes);
  return text;
}

bool is_spawn_child(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sia-child") == 0) return true;
  }
  return false;
}

int run_spawn_child(int argc, char** argv) {
  int rank = -1;
  int incarnation = 0;
  std::string bundle_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--rank" && i + 1 < argc) {
      rank = std::atoi(argv[++i]);
    } else if (arg == "--bundle" && i + 1 < argc) {
      bundle_path = argv[++i];
    } else if (arg == "--incarnation" && i + 1 < argc) {
      incarnation = std::atoi(argv[++i]);
    }
  }
  std::string connect;  // known once the bundle parses; used for aborts
  try {
    ignore_sigpipe();
    if (rank < 1 || bundle_path.empty()) {
      throw Error("spawn child: need --rank R and --bundle <path>");
    }
    std::ifstream in(bundle_path, std::ios::binary);
    if (!in) throw Error("spawn child: cannot read bundle " + bundle_path);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    Bundle bundle = parse_bundle(text);
    connect = bundle.connect;
    SipConfig config = bundle.config;
    if (incarnation > 0 && config.fault_plan.kill_rank >= 0) {
      // A respawned incarnation must not re-fire the scheduled kill (the
      // thread-mode equivalent is ChaosFabric's one-shot latch, which a
      // fresh process has lost). Clearing the kill may deactivate the
      // whole plan, so pin the reliable protocol on: every other rank
      // still stamps seq/ack and expects durability acks.
      config.fault_plan.kill_rank = -1;
      config.fault_plan.kill_at_msg = 0;
      config.reliable_protocol = true;
    }
    config.validate();
    if (rank >= config.total_ranks()) {
      throw Error("spawn child: rank out of range");
    }
    register_builtin_superinstructions();
    const sial::CompiledProgram program = sial::compile_sial(bundle.source);
    const sial::ResolvedProgram resolved(
        sial::opt::optimize(program, config.opt_level).program, config);
    const DryRunReport dry = dry_run(resolved);

    SipShared shared;
    shared.program = &resolved;
    shared.config = config;
    shared.scratch_dir = config.scratch_dir;
    shared.pool_plan = dry.pool_plan;
    shared.init_rank_status(config.total_ranks());
    std::unique_ptr<msg::DiskFaultInjector> disk_injector;
    if (config.fault_plan.disk_fault != 0) {
      disk_injector = std::make_unique<msg::DiskFaultInjector>(config.fault_plan);
      shared.disk_injector = disk_injector.get();
    }

    msg::SocketOptions sopts;
    sopts.role = msg::SocketOptions::Role::kSpoke;
    sopts.address = bundle.connect;
    sopts.local_rank = rank;
    sopts.connect_timeout_ms = config.connect_timeout_ms;
    sopts.on_fatal = [&shared](const std::string& what) {
      if (shared.fabric != nullptr) shared.raise_abort(what);
    };
    std::unique_ptr<msg::Fabric> fabric =
        std::make_unique<msg::SocketFabric>(config.total_ranks(), sopts);
    msg::ChaosFabric* chaos = nullptr;
    if (config.fault_plan.active()) {
      auto wrapped = std::make_unique<msg::ChaosFabric>(std::move(fabric),
                                                        config.fault_plan);
      chaos = wrapped.get();
      // A chaos kill in a real process is a real death: SIGKILL, no
      // destructors, no goodbye — the master's watchdog must find out
      // the hard way, exactly as with a crashed MPI rank.
      wrapped->set_kill_hook([rank](int dying) {
        if (dying == rank) std::raise(SIGKILL);
      });
      fabric = std::move(wrapped);
    }
    shared.fabric = fabric.get();

    const bool is_worker = shared.is_worker(rank);
    std::unique_ptr<Interpreter> worker;
    std::unique_ptr<IoServer> server;
    if (is_worker) {
      worker = std::make_unique<Interpreter>(shared, rank - 1);
      worker->run();
    } else {
      server = std::make_unique<IoServer>(shared, rank);
      server->run();
    }

    std::string first_error;
    {
      std::lock_guard<std::mutex> lock(shared.error_mutex);
      first_error = shared.first_error;
    }

    msg::Message report;
    report.tag = msg::kResultReport;
    report.src = rank;
    pack_traffic(shared.fabric->total_stats(), report.data);
    msg::ChaosStats faults;
    if (chaos != nullptr) faults = chaos->chaos_stats();
    report.data.push_back(static_cast<double>(faults.drops));
    report.data.push_back(static_cast<double>(faults.dups));
    report.data.push_back(static_cast<double>(faults.delays));
    report.data.push_back(static_cast<double>(faults.reorders));
    report.data.push_back(static_cast<double>(faults.kill_swallowed));
    std::int64_t scalar_count = 0;
    if (is_worker) {
      std::int64_t retries = 0, timeouts = 0;
      if (const msg::ReliableChannel* channel = worker->channel()) {
        retries = channel->stats().retries_sent;
        timeouts = channel->stats().acks_timed_out;
      }
      report.data.push_back(static_cast<double>(retries));
      report.data.push_back(static_cast<double>(timeouts));
      report.data.push_back(
          static_cast<double>(worker->sequencer().duplicates_dropped()));
      if (rank == 1 && first_error.empty()) {
        // Worker 0's scalars are the canonical result copy (collectives
        // synchronized them); only it ships values back.
        scalar_count =
            static_cast<std::int64_t>(resolved.code().scalars.size());
        for (std::int64_t s = 0; s < scalar_count; ++s) {
          report.data.push_back(worker->data().scalar(static_cast<int>(s)));
        }
      }
    } else {
      const IoServer::Stats stats = server->stats();
      report.data.push_back(static_cast<double>(stats.requests));
      report.data.push_back(static_cast<double>(stats.lookahead_requests));
      report.data.push_back(static_cast<double>(stats.cache_hits));
      report.data.push_back(static_cast<double>(stats.disk_reads));
      report.data.push_back(static_cast<double>(stats.disk_writes));
      report.data.push_back(static_cast<double>(stats.reads_coalesced));
      report.data.push_back(static_cast<double>(stats.write_batches));
      report.data.push_back(static_cast<double>(stats.map_flushes));
      report.data.push_back(static_cast<double>(stats.computed));
      report.data.push_back(static_cast<double>(stats.dup_msgs_dropped));
    }
    report.header = {is_worker ? kKindWorker : kKindServer, scalar_count};

    std::vector<msg::Message> outgoing;
    if (!first_error.empty()) {
      msg::Message abort = make_abort_message(first_error);
      abort.src = rank;
      outgoing.push_back(std::move(abort));
    }
    outgoing.push_back(std::move(report));
    send_one_shot(connect, outgoing);
    return first_error.empty() ? 0 : 1;
  } catch (const std::exception& error) {
    SIA_WARN(rank) << "spawn child failed: " << error.what();
    if (!connect.empty()) {
      msg::Message abort = make_abort_message(
          "rank " + std::to_string(rank) + ": " + error.what());
      abort.src = rank;
      send_one_shot(connect, {std::move(abort)});
    }
    return 1;
  }
}

RunResult run_spawned(const SipConfig& config_in,
                      const std::string& scratch_dir,
                      const std::string& source,
                      const sial::ResolvedProgram& resolved,
                      RunResult result) {
  SipConfig config = config_in;
  // Real processes die for real even without injected faults. Keep the
  // heartbeat watchdog on so a lost child becomes a diagnosed abort
  // instead of a hang (thread mode leaves it off in fault-free runs:
  // a thread cannot vanish without taking the process with it).
  if (config.heartbeat_ms == 0 && !config.fault_tolerance_enabled()) {
    config.heartbeat_ms = SipConfig::kAutoHeartbeatMs;
  }
  const int total = config.total_ranks();

  std::string address = config.socket_address;
  if (address.empty()) {
    const std::string path = scratch_dir + "/hub.sock";
    // sun_path is ~108 bytes; fall back to loopback TCP for deep
    // scratch paths rather than failing the bind.
    address = path.size() < 90 ? "unix:" + path : "tcp:127.0.0.1:0";
  }
  msg::SocketOptions hub_opts;
  hub_opts.role = msg::SocketOptions::Role::kHub;
  hub_opts.address = address;
  hub_opts.connect_timeout_ms = config.connect_timeout_ms;
  auto socket = std::make_unique<msg::SocketFabric>(total, hub_opts);
  msg::SocketFabric* hub = socket.get();
  std::unique_ptr<msg::Fabric> fabric = std::move(socket);
  msg::ChaosFabric* chaos = nullptr;
  if (config.fault_plan.active()) {
    auto wrapped =
        std::make_unique<msg::ChaosFabric>(std::move(fabric), config.fault_plan);
    chaos = wrapped.get();
    fabric = std::move(wrapped);
  }

  SipShared shared;
  shared.program = &resolved;
  shared.fabric = fabric.get();
  shared.config = config;
  shared.scratch_dir = scratch_dir;
  shared.pool_plan = result.dry_run.pool_plan;
  shared.init_rank_status(total);

  if (config.fault_tolerance_enabled()) {
    // Same clean-start rule as the thread-mode launch: a stale ack
    // journal would poison a respawned server's dedup replay.
    for (int s = 0; s < config.io_servers; ++s) {
      const int rank = 1 + config.workers + s;
      std::error_code ec;
      std::filesystem::remove(
          std::filesystem::path(scratch_dir) /
              ("server_" + std::to_string(rank) + ".ackjournal"),
          ec);
    }
  }

  const std::string bundle_path = scratch_dir + "/spawn.bundle";
  {
    std::ofstream out(bundle_path, std::ios::binary | std::ios::trunc);
    out << serialize_bundle(config, hub->listen_address(), scratch_dir,
                            source);
    if (!out) throw Error("spawn: cannot write bundle " + bundle_path);
  }
  const std::string helper =
      config.spawn_helper.empty() ? "/proc/self/exe" : config.spawn_helper;

  std::vector<pid_t> child_pids(static_cast<std::size_t>(total), -1);
  for (int r = 1; r < total; ++r) {
    const pid_t pid = spawn_rank(helper, r, bundle_path, 0);
    if (pid < 0) {
      reap_children(child_pids);
      throw Error("spawn: fork failed for rank " + std::to_string(r) + ": " +
                  std::strerror(errno));
    }
    child_pids[static_cast<std::size_t>(r)] = pid;
  }
  if (!hub->wait_for_peers(config.connect_timeout_ms)) {
    std::string missing;
    for (int r = 1; r < total; ++r) {
      if (!hub->peer_connected(r)) {
        missing += (missing.empty() ? "" : ", ") + std::to_string(r);
      }
    }
    fabric->stop();
    reap_children(child_pids);
    throw RuntimeError("spawn: ranks {" + missing + "} never connected to " +
                       hub->listen_address() + " within " +
                       std::to_string(config.connect_timeout_ms) + " ms");
  }

  Master master(shared);
  if (config.fault_tolerance_enabled() && config.server_recovery) {
    shared.respawn_server = [&](int rank) -> bool {
      if (!shared.is_server(rank)) return false;
      // Drop the dead process's stale connection so the respawned one's
      // hello is not shadowed, clear the darkness, and re-exec.
      hub->disconnect(rank);
      fabric->revive(rank);
      pid_t& slot = child_pids[static_cast<std::size_t>(rank)];
      if (slot > 0) {
        int status = 0;
        retry_eintr([&] { return ::waitpid(slot, &status, WNOHANG); });
      }
      const pid_t pid = spawn_rank(helper, rank, bundle_path, 1);
      if (pid < 0) return false;
      slot = pid;
      return true;
    };
  }
  master.run();  // this thread is rank 0

  std::string first_error;
  {
    std::lock_guard<std::mutex> lock(shared.error_mutex);
    first_error = shared.first_error;
  }

  // Success path: children send their kResultReport over one-shot
  // connections after kShutdown; the hub is still accepting (stop()
  // has not run). On abort the reports are moot — the error already
  // arrived as a kAbort through the live fabric.
  std::map<int, msg::Message> reports;
  if (first_error.empty()) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(15);
    while (static_cast<int>(reports.size()) < total - 1 &&
           std::chrono::steady_clock::now() < deadline) {
      bool got = false;
      while (auto m = fabric->try_recv_tag(0, msg::kResultReport)) {
        reports[m->src] = std::move(*m);
        got = true;
      }
      while (auto m = fabric->try_recv_tag(0, msg::kAbort)) {
        if (first_error.empty()) first_error = abort_text(*m);
      }
      if (!first_error.empty()) break;
      if (!got) std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  fabric->stop();
  reap_children(child_pids);
  if (!first_error.empty()) throw RuntimeError(first_error);
  if (reports.find(1) == reports.end()) {
    throw RuntimeError(
        "spawn: worker rank 1 exited without reporting results");
  }

  // Aggregate: the hub's own counters (rank 0 traffic plus socket
  // robustness atomics) plus what every child reported.
  result.traffic = fabric->total_stats();
  ProfileReport::Robustness& robustness = result.profile.robustness;
  ProfileReport::ServedPipeline& served = result.profile.served;
  msg::ChaosStats faults;
  if (chaos != nullptr) faults = chaos->chaos_stats();
  for (const auto& [rank, report] : reports) {
    std::size_t i = 0;
    add_traffic(report, i, result.traffic);
    faults.drops += take(report, i);
    faults.dups += take(report, i);
    faults.delays += take(report, i);
    faults.reorders += take(report, i);
    faults.kill_swallowed += take(report, i);
    const std::int64_t kind =
        report.header.empty() ? kKindWorker : report.header[0];
    if (kind == kKindWorker) {
      robustness.retries_sent += take(report, i);
      robustness.acks_timed_out += take(report, i);
      robustness.dup_msgs_dropped += take(report, i);
      const std::int64_t scalar_count =
          report.header.size() > 1 ? report.header[1] : 0;
      if (rank == 1 && scalar_count > 0) {
        const auto& scalars = resolved.code().scalars;
        for (std::int64_t s = 0;
             s < scalar_count &&
             s < static_cast<std::int64_t>(scalars.size());
             ++s) {
          result.scalars[scalars[static_cast<std::size_t>(s)].name] =
              report.data[i + static_cast<std::size_t>(s)];
        }
      }
      i += static_cast<std::size_t>(std::max<std::int64_t>(0, scalar_count));
    } else {
      served.server_requests += take(report, i);
      served.server_lookahead_requests += take(report, i);
      served.server_cache_hits += take(report, i);
      served.server_disk_reads += take(report, i);
      served.server_disk_writes += take(report, i);
      served.reads_coalesced += take(report, i);
      served.write_batches += take(report, i);
      served.map_flushes += take(report, i);
      served.computed += take(report, i);
      robustness.dup_msgs_dropped += take(report, i);
    }
  }
  robustness.heartbeats_missed = master.stats().heartbeats_missed;
  robustness.server_recoveries = master.stats().server_recoveries;
  robustness.sends_after_stop = result.traffic.sends_after_stop;
  // Scheduling counters live master-side precisely so they survive spawn
  // mode (worker profiles are not shipped back).
  ProfileReport::Scheduling& scheduling = result.profile.scheduling;
  scheduling.chunks_served = master.stats().chunks_served;
  scheduling.steal_attempts = master.stats().steal_attempts;
  scheduling.steals_granted = master.stats().steals_granted;
  scheduling.stolen_iterations = master.stats().stolen_iterations;
  scheduling.worker_iterations = master.stats().worker_iterations;
  robustness.faults_dropped = faults.drops;
  robustness.faults_duplicated = faults.dups;
  robustness.faults_delayed = faults.delays;
  robustness.faults_reordered = faults.reorders;
  robustness.faults_kill_swallowed = faults.kill_swallowed;
  result.profile.screening.threshold = config.sparse_threshold;
  result.profile.screening.blocks_screened = result.traffic.blocks_screened;
  result.profile.screening.bytes_elided = result.traffic.bytes_elided;
  return result;
}

}  // namespace sia::sip
