#include "sip/served_array.hpp"

#include <algorithm>

#include "msg/tags.hpp"

namespace sia::sip {

ServedArrayClient::ServedArrayClient(SipShared& shared, int my_rank,
                                     BlockPool& pool,
                                     std::size_t cache_capacity_doubles)
    : shared_(shared), my_rank_(my_rank), pool_(pool),
      cache_(cache_capacity_doubles) {}

BlockShape ServedArrayClient::shape_of(const BlockId& id) const {
  const sial::ResolvedArray& array = shared_.program->array(id.array_id);
  return shared_.program->grid_block_shape(
      array, {id.segments.data(), static_cast<std::size_t>(id.rank)});
}

std::int64_t ServedArrayClient::linear_of(const BlockId& id) const {
  const sial::ResolvedArray& array = shared_.program->array(id.array_id);
  return id.linearize(array.num_segments);
}

void ServedArrayClient::issue_request(const BlockId& id) {
  if (cache_.contains(id) || pending_.count(id) > 0) return;
  ++stats_.requests_issued;
  pending_.emplace(id, epoch_);
  msg::Message request;
  request.tag = msg::kServedRequest;
  request.header = {id.array_id, linear_of(id), my_rank_};
  shared_.fabric->send(my_rank_, shared_.server_rank(id),
                       std::move(request));
}

BlockPtr ServedArrayClient::try_read(const BlockId& id) {
  BlockPtr block = cache_.get(id);
  if (block) ++stats_.requests_cached;
  return block;
}

bool ServedArrayClient::pending(const BlockId& id) const {
  return pending_.count(id) > 0;
}

void ServedArrayClient::prepare(const BlockId& id, const Block& data,
                                bool accumulate) {
  ++stats_.prepares;
  msg::Message message;
  message.tag = accumulate ? msg::kServedPrepareAcc : msg::kServedPrepare;
  message.header = {id.array_id, linear_of(id), my_rank_};
  message.data.assign(data.data().begin(), data.data().end());
  shared_.fabric->send(my_rank_, shared_.server_rank(id),
                       std::move(message));
}

void ServedArrayClient::advance_epoch() {
  ++epoch_;
  cache_ = BlockCache(cache_.capacity_doubles());
  pending_.clear();
}

void ServedArrayClient::handle_reply(const msg::Message& message) {
  const int array_id = static_cast<int>(message.header[0]);
  const sial::ResolvedArray& array = shared_.program->array(array_id);
  const BlockId id =
      BlockId::from_linear(array_id, message.header[1], array.num_segments);
  auto it = pending_.find(id);
  if (it == pending_.end() || it->second != epoch_) {
    ++stats_.replies_dropped;
    if (it != pending_.end()) pending_.erase(it);
    return;
  }
  pending_.erase(it);
  const BlockShape shape = shape_of(id);
  auto block =
      std::make_shared<Block>(shape, pool_.allocate(shape.element_count()));
  if (block->size() != message.data.size()) {
    throw RuntimeError("served reply shape mismatch for " + id.to_string());
  }
  std::copy(message.data.begin(), message.data.end(),
            block->data().begin());
  cache_.put(id, std::move(block));
}

}  // namespace sia::sip
