#include "sip/served_array.hpp"

#include <algorithm>

#include "blas/elementwise.hpp"
#include "msg/tags.hpp"

namespace sia::sip {

namespace {
constexpr std::size_t kCoalesceFlushThreshold = 128;
}  // namespace

ServedArrayClient::ServedArrayClient(SipShared& shared, int my_rank,
                                     BlockPool& pool,
                                     std::size_t cache_capacity_doubles,
                                     bool coalesce_puts)
    : shared_(shared), my_rank_(my_rank), pool_(pool),
      cache_(cache_capacity_doubles), coalesce_enabled_(coalesce_puts) {}

BlockShape ServedArrayClient::shape_of(const BlockId& id) const {
  const sial::ResolvedArray& array = shared_.program->array(id.array_id);
  return shared_.program->grid_block_shape(
      array, {id.segments.data(), static_cast<std::size_t>(id.rank)});
}

std::int64_t ServedArrayClient::linear_of(const BlockId& id) const {
  const sial::ResolvedArray& array = shared_.program->array(id.array_id);
  return id.linearize(array.num_segments);
}

bool ServedArrayClient::screenable(int array_id) const {
  return shared_.config.sparse_threshold > 0.0 &&
         shared_.program->array(array_id).sparse;
}

double ServedArrayClient::threshold() const {
  return shared_.config.sparse_threshold;
}

BlockPtr ServedArrayClient::make_exclusive(BlockPtr data) {
  if (data.use_count() == 1) return data;
  auto copy = std::make_shared<Block>(data->shape(),
                                      pool_.allocate(data->size()));
  blas::copy(data->data(), copy->data());
  return copy;
}

void ServedArrayClient::issue_request(const BlockId& id) {
  // A shadowed prepare+= must reach the server before the request so the
  // reply reflects it (same src-dst FIFO preserves the order).
  if (coalesce_.count(id) > 0) flush_coalesced_block(id);
  if (cache_.contains(id)) return;
  auto it = pending_.find(id);
  if (it != pending_.end() && it->second.demand_inflight) return;
  ++stats_.requests_issued;
  if (it == pending_.end()) {
    Pending entry;
    entry.epoch = epoch_;
    entry.demand_inflight = true;
    pending_.emplace(id, entry);
  } else {
    // Only a look-ahead is in flight: send the demand request anyway. It
    // coalesces onto the server's in-flight read and promotes the queued
    // read-ahead job, so this worker is not stuck behind every other
    // demand read; whichever reply lands first is adopted.
    ++stats_.lookahead_promoted;
    it->second.demand_inflight = true;
  }
  msg::Message request;
  request.tag = msg::kServedRequest;
  request.header = {id.array_id, linear_of(id), my_rank_};
  const int server = shared_.server_rank(id);
  if (channel_ != nullptr) {
    channel_->send_request(server, std::move(request));
  } else {
    shared_.fabric->send(my_rank_, server, std::move(request));
  }
}

void ServedArrayClient::issue_lookahead(const BlockId& id) {
  // Unlike a demand request, a speculative one must not force the shadow
  // prepare+= out early — write-combining wins outrank read-ahead. The
  // demand request that may follow flushes it first, keeping FIFO order.
  if (coalesce_.count(id) > 0) return;
  if (cache_.contains(id) || pending_.count(id) > 0) return;
  ++stats_.lookahead_issued;
  Pending entry;
  entry.epoch = epoch_;
  entry.lookahead_inflight = true;
  pending_.emplace(id, entry);
  msg::Message request;
  request.tag = msg::kServedRequest;
  request.header = {id.array_id, linear_of(id), my_rank_, /*lookahead=*/1};
  const int server = shared_.server_rank(id);
  if (channel_ != nullptr) {
    channel_->send_request(server, std::move(request));
  } else {
    shared_.fabric->send(my_rank_, server, std::move(request));
  }
}

BlockPtr ServedArrayClient::try_read(const BlockId& id) {
  BlockPtr block = cache_.get(id);
  if (block) ++stats_.requests_cached;
  return block;
}

bool ServedArrayClient::pending(const BlockId& id) const {
  return pending_.count(id) > 0;
}

void ServedArrayClient::send_prepare_message(const BlockId& id,
                                             BlockPtr exclusive_data,
                                             bool accumulate) {
  ++stats_.prepares;
  // Our cached copy and any speculative reply still in flight pre-date
  // this prepare: drop the one and mark the other stale, so a later
  // demand read of the same block in this epoch cannot return data that
  // misses the write (the demand request re-fetches post-prepare state;
  // client->server FIFO guarantees the server sees the prepare first).
  cache_.erase(id);
  auto it = pending_.find(id);
  if (it != pending_.end() && it->second.lookahead_inflight) {
    it->second.lookahead_stale = true;
  }
  msg::Message message;
  message.tag = accumulate ? msg::kServedPrepareAcc : msg::kServedPrepare;
  message.header = {id.array_id, linear_of(id), my_rank_};
  message.block = std::move(exclusive_data);
  const int server = shared_.server_rank(id);
  if (channel_ != nullptr) {
    // Tracked ordered send: retransmitted until the server acks that the
    // block is durably on disk, exactly-once applied via the server's
    // per-peer sequencer.
    channel_->send_ordered(server, std::move(message));
  } else {
    shared_.fabric->send(my_rank_, server, std::move(message));
  }
}

void ServedArrayClient::send_screened_prepare(const BlockId& id,
                                              double norm) {
  ++stats_.prepares;
  // Same pre-write invalidation as a full prepare: the cached copy and
  // any speculative reply in flight pre-date this write.
  cache_.erase(id);
  auto it = pending_.find(id);
  if (it != pending_.end() && it->second.lookahead_inflight) {
    it->second.lookahead_stale = true;
  }
  msg::Message message;
  message.tag = msg::kServedPrepare;
  message.header = {id.array_id, linear_of(id), my_rank_, /*screened=*/1};
  message.data = {norm};
  const int server = shared_.server_rank(id);
  if (channel_ != nullptr) {
    channel_->send_ordered(server, std::move(message));
  } else {
    shared_.fabric->send(my_rank_, server, std::move(message));
  }
}

void ServedArrayClient::prepare(const BlockId& id, BlockPtr data,
                                bool accumulate) {
  SIA_CHECK(data != nullptr, "ServedArrayClient::prepare: null block");
  if (screenable(id.array_id) && data->norm() < threshold()) {
    // Below-threshold payload never moves: an accumulate contribution is
    // dropped at the sender, a replace becomes a tiny presence-map
    // marker on the server.
    const double norm = data->norm();
    ++stats_.prepares_screened;
    shared_.fabric->record_screened(
        my_rank_, static_cast<std::int64_t>(data->size()));
    if (accumulate) return;
    if (coalesce_.count(id) > 0) flush_coalesced_block(id);
    send_screened_prepare(id, norm);
    return;
  }
  if (!accumulate) {
    if (coalesce_.count(id) > 0) flush_coalesced_block(id);
    send_prepare_message(id, make_exclusive(std::move(data)), false);
    return;
  }
  if (!coalesce_enabled_) {
    send_prepare_message(id, make_exclusive(std::move(data)), true);
    return;
  }
  auto it = coalesce_.find(id);
  if (it != coalesce_.end()) {
    blas::axpy(1.0, data->data(), it->second->data());
    ++stats_.prepares_coalesced;
    return;
  }
  coalesce_.emplace(id, make_exclusive(std::move(data)));
  if (coalesce_.size() >= kCoalesceFlushThreshold) flush_coalesced();
}

void ServedArrayClient::flush_coalesced_block(const BlockId& id) {
  auto it = coalesce_.find(id);
  if (it == coalesce_.end()) return;
  // `id` may alias the key of the node being erased (flush_coalesced
  // passes begin()->first), so copy it before the erase.
  const BlockId key = it->first;
  BlockPtr payload = std::move(it->second);
  coalesce_.erase(it);
  ++stats_.coalesce_flushes;
  send_prepare_message(key, std::move(payload), true);
}

void ServedArrayClient::flush_coalesced() {
  while (!coalesce_.empty()) {
    flush_coalesced_block(coalesce_.begin()->first);
  }
}

void ServedArrayClient::advance_epoch() {
  SIA_CHECK(coalesce_.empty(),
            "advance_epoch with unflushed coalesced prepares (interpreter "
            "must flush before entering the barrier)");
  ++epoch_;
  cache_.clear();
  pending_.clear();
}

void ServedArrayClient::handle_reply(msg::Message& message) {
  const int array_id = static_cast<int>(message.header[0]);
  const sial::ResolvedArray& array = shared_.program->array(array_id);
  const BlockId id =
      BlockId::from_linear(array_id, message.header[1], array.num_segments);
  const bool miss = message.header.size() > 2 && message.header[2] != 0;
  const bool lookahead =
      message.header.size() > 3 && message.header[3] != 0;
  auto it = pending_.find(id);
  if (it == pending_.end() || it->second.epoch != epoch_) {
    // Stray reply: from a previous epoch, or the second of a promoted
    // look-ahead/demand pair after the first one was already adopted.
    ++stats_.replies_dropped;
    if (it != pending_.end()) pending_.erase(it);
    return;
  }
  Pending& entry = it->second;
  const bool screened =
      message.header.size() > 4 && message.header[4] != 0;
  if (lookahead) {
    entry.lookahead_inflight = false;
    if (entry.lookahead_stale) {
      // The speculative fetch pre-dates one of our own prepares; its
      // payload misses that write. Discard it — the demand request
      // issued after the prepare re-fetches the post-prepare state.
      entry.lookahead_stale = false;
      ++stats_.replies_dropped;
      if (!entry.demand_inflight) pending_.erase(it);
      return;
    }
    if (miss && !screened) {
      // Look-ahead miss: the block does not exist on the server (yet).
      // Forget the speculative request; a demand request re-asks and
      // fails the run only if the program really reads an absent block.
      ++stats_.lookahead_misses;
      if (!entry.demand_inflight) pending_.erase(it);
      return;
    }
  }
  if (miss && screened) {
    // Screened block: adopt the canonical zero block. This satisfies a
    // demand read outright and suppresses any future fetch (demand or
    // look-ahead) of the block this epoch via the cache.
    ++stats_.zero_reads;
    cache_.put(id, zero_block(shape_of(id)));
    pending_.erase(it);
    return;
  }
  SIA_CHECK(message.block != nullptr, "served reply without block payload");
  if (message.block->size() != shape_of(id).element_count()) {
    throw RuntimeError("served reply shape mismatch for " + id.to_string());
  }
  // Adopt the server's shared payload — no allocation, no unpack copy.
  // This resolves the whole fetch, even if a promoted demand request is
  // still in flight; its reply arrives as a stray and is dropped.
  cache_.put(id, std::move(message.block));
  pending_.erase(it);
}

}  // namespace sia::sip
