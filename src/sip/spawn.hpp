// Process ranks: fork/exec'd workers and I/O servers over SocketFabric.
//
// The paper's SIP is an MPI program — master, workers, and I/O servers
// are separate OS processes. `transport=spawn` reproduces that shape:
// the launching process hosts rank 0 (the master) and the socket hub,
// and every worker and I/O-server rank is a child process started with
//   <helper> --sia-child --rank R --bundle <path> [--incarnation K]
// The bundle is a key=value serialization of the SipConfig plus the SIAL
// source; the child recompiles the source deterministically (same
// opt_level, same segment plan), connects to the hub as a spoke, and
// runs its rank exactly as the thread-mode launch would have.
//
// End-of-run results travel back as kResultReport messages; a child that
// aborts sends a kAbort carrying the error text. Both are written over a
// one-shot connection to the hub (msg::connect_socket + raw frames)
// rather than the child's regular fabric, because the abort path stops
// that fabric — the report must not depend on the thing that just died.
//
// Binaries that want spawn mode must give this module first refusal on
// argv before doing anything else:
//
//   int main(int argc, char** argv) {
//     if (sia::sip::is_spawn_child(argc, argv))
//       return sia::sip::run_spawn_child(argc, argv);
//     ...
//   }
#pragma once

#include <string>

#include "common/config.hpp"
#include "msg/message.hpp"
#include "sial/program.hpp"
#include "sip/launch.hpp"

namespace sia::sip {

// kAbort payload codec: the error text packed 8 bytes per double with
// header = [byte_count]. Needs no new wire machinery — it rides the
// existing Message frame codec.
msg::Message make_abort_message(const std::string& text);
std::string abort_text(const msg::Message& message);

// True when argv marks this process as a spawned rank (`--sia-child`).
bool is_spawn_child(int argc, char** argv);

// Runs the spawned rank to completion; returns the process exit code.
// Never throws: failures become a kAbort report to the hub plus a
// nonzero exit.
int run_spawn_child(int argc, char** argv);

// Spawn-mode launch body, called by Sip::run once the program has been
// optimized, resolved, and dry-run-checked. `result` arrives with the
// dry-run report filled in and is returned completed. Spawn mode fills
// scalars, traffic, and the robustness/served counters that children
// report back; the per-instruction profile and worker cache totals stay
// empty — they live in the children and are deliberately not shipped.
RunResult run_spawned(const SipConfig& config, const std::string& scratch_dir,
                      const std::string& source,
                      const sial::ResolvedProgram& resolved, RunResult result);

}  // namespace sia::sip
