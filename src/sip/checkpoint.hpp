// Checkpointing of distributed arrays (blocks_to_list / list_to_blocks).
//
// "The super instructions blocks_to_list [and] list_to_blocks serialize
// and deserialize distributed arrays. This facility is used to pass data
// between different SIAL programs [and] to provide a rudimentary
// checkpointing facility" (paper §IV-C). Each worker writes the home
// blocks it owns into its own part file; worker 0 writes a manifest with
// the part count. Restore reads every part and keeps the blocks this
// worker owns under the *current* distribution — so a checkpoint written
// with one worker count restores correctly under another.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "block/block.hpp"
#include "block/block_id.hpp"
#include "sial/program.hpp"

namespace sia::sip::checkpoint {

struct Manifest {
  std::string array_name;
  int parts = 0;
  std::int64_t total_blocks = 0;
};

// Replaces anything outside [A-Za-z0-9_-] so user keys are safe as file
// name fragments.
std::string sanitize_key(const std::string& key);

void write_manifest(const std::string& dir, const std::string& key,
                    const Manifest& manifest);
Manifest read_manifest(const std::string& dir, const std::string& key);

// Writes the blocks of `array_id` present in `home` to part file `part`.
void write_part(
    const std::string& dir, const std::string& key, int part,
    const sial::ResolvedProgram& program, int array_id,
    const std::unordered_map<BlockId, BlockPtr, BlockIdHash>& home);

// Streams every block of part `part`; the callback receives the linear
// block number and the payload.
void read_part(const std::string& dir, const std::string& key, int part,
               const std::function<void(std::int64_t,
                                        const std::vector<double>&)>& fn);

}  // namespace sia::sip::checkpoint
