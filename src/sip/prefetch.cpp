#include "sip/prefetch.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace sia::sip {

namespace {

bool operand_uses_index(const sial::BlockOperand& operand, int index_id) {
  for (int d = 0; d < operand.rank; ++d) {
    if (operand.index_ids[static_cast<std::size_t>(d)] == index_id) {
      return true;
    }
  }
  return false;
}

bool operand_uses_pardo(const sial::BlockOperand& operand,
                        const sial::PardoInfo& pardo) {
  for (const int id : pardo.index_ids) {
    if (operand_uses_index(operand, id)) return true;
  }
  return false;
}

}  // namespace

std::vector<BlockId> prefetch_candidates(
    const sial::ResolvedProgram& program, const sial::BlockOperand& operand,
    std::span<const long> index_values,
    std::span<const LoopContext> loops, int depth) {
  std::vector<BlockId> out;
  if (depth <= 0) return out;

  std::vector<long> values(index_values.begin(), index_values.end());

  for (const LoopContext& loop : loops) {
    if (!loop.is_pardo) {
      if (!operand_uses_index(operand, loop.index_id)) continue;
      for (int k = 1; k <= depth; ++k) {
        const long value = loop.current + k;
        if (value > loop.last) break;
        values[static_cast<std::size_t>(loop.index_id)] = value;
        try {
          out.push_back(program.resolve_operand(operand, values).id());
        } catch (const RuntimeError&) {
          break;  // hypothetical iteration falls outside the array
        }
      }
      return out;
    }
    // Pardo: future iterations are the remaining positions of the chunk.
    if (loop.pardo == nullptr || loop.filtered == nullptr) continue;
    if (!operand_uses_pardo(operand, *loop.pardo)) continue;
    std::vector<long> decoded(loop.pardo->index_ids.size());
    const std::int64_t limit =
        std::min(loop.next_pos + depth, loop.end_pos);
    for (std::int64_t pos = loop.next_pos; pos < limit; ++pos) {
      program.pardo_decode(*loop.pardo, index_values,
                           (*loop.filtered)[static_cast<std::size_t>(pos)],
                           decoded);
      for (std::size_t d = 0; d < loop.pardo->index_ids.size(); ++d) {
        values[static_cast<std::size_t>(loop.pardo->index_ids[d])] =
            decoded[d];
      }
      try {
        out.push_back(program.resolve_operand(operand, values).id());
      } catch (const RuntimeError&) {
        continue;
      }
    }
    return out;
  }
  return out;
}

std::vector<BlockId> lookahead_read_set(
    const sial::ResolvedProgram& program, const sial::BlockOperand& operand,
    std::span<const long> index_values, std::span<const LoopContext> loops,
    int depth, const std::function<bool(const BlockId&)>& exclude) {
  std::vector<BlockId> out =
      prefetch_candidates(program, operand, index_values, loops, depth);
  if (exclude) {
    out.erase(std::remove_if(out.begin(), out.end(), exclude), out.end());
  }
  return out;
}

}  // namespace sia::sip
