// State shared by all ranks of one SIP launch.
//
// Every rank (master, workers, I/O servers) holds a reference to this
// structure: the resolved program, the message fabric, and the abort
// channel. Apart from the abort flag and error slot (mutex protected),
// everything here is immutable during the run — ranks communicate only
// through the fabric, as the paper's processes do through MPI.
#pragma once

#include <atomic>
#include <map>
#include <mutex>
#include <string>

#include "block/block_id.hpp"
#include "common/config.hpp"
#include "common/error.hpp"
#include "msg/fabric.hpp"
#include "sial/program.hpp"

namespace sia::sip {

// Thrown inside a rank when another rank aborted the run; carries no
// information because the first error wins.
class Aborted : public Error {
 public:
  Aborted() : Error("aborted") {}
};

struct SipShared {
  const sial::ResolvedProgram* program = nullptr;
  msg::Fabric* fabric = nullptr;
  SipConfig config;
  std::string scratch_dir;
  // Block pool size classes from the dry run: capacity (doubles) -> slots.
  std::map<std::size_t, std::size_t> pool_plan;

  std::atomic<bool> abort_flag{false};
  std::mutex error_mutex;
  std::string first_error;

  // Records the first error and wakes every blocked rank.
  void raise_abort(const std::string& what) {
    {
      std::lock_guard<std::mutex> lock(error_mutex);
      if (first_error.empty()) first_error = what;
    }
    abort_flag.store(true, std::memory_order_release);
    fabric->stop();
  }

  void check_abort() const {
    if (abort_flag.load(std::memory_order_acquire)) throw Aborted();
  }

  // Rank layout: 0 = master, 1..workers = workers, then I/O servers.
  int master_rank() const { return 0; }
  int worker_rank(int worker_index) const { return 1 + worker_index; }
  int num_workers() const { return config.workers; }
  int num_servers() const { return config.io_servers; }
  bool is_worker(int rank) const {
    return rank >= 1 && rank <= config.workers;
  }
  bool is_server(int rank) const { return rank > config.workers; }

  // Home worker rank of a distributed array block: "blocks of a
  // distributed array are assigned to workers using a simple, static
  // strategy" (paper §V-B).
  int owner_rank(const BlockId& id) const {
    return 1 + static_cast<int>(id.hash() % static_cast<std::uint64_t>(
                                                config.workers));
  }

  // I/O server rank responsible for a served array block.
  int server_rank(const BlockId& id) const {
    if (config.io_servers == 0) {
      throw RuntimeError("program uses served arrays but io_servers == 0");
    }
    return 1 + config.workers +
           static_cast<int>(id.hash() % static_cast<std::uint64_t>(
                                            config.io_servers));
  }
};

}  // namespace sia::sip
