// State shared by all ranks of one SIP launch.
//
// Every rank (master, workers, I/O servers) holds a reference to this
// structure: the resolved program, the message fabric, and the abort
// channel. Apart from the abort flag and error slot (mutex protected),
// everything here is immutable during the run — ranks communicate only
// through the fabric, as the paper's processes do through MPI.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "block/block_id.hpp"
#include "common/config.hpp"
#include "common/error.hpp"
#include "msg/chaos.hpp"
#include "msg/fabric.hpp"
#include "sial/program.hpp"

namespace sia::sip {

// Thrown inside a rank when another rank aborted the run; carries no
// information because the first error wins.
class Aborted : public Error {
 public:
  Aborted() : Error("aborted") {}
};

struct SipShared {
  const sial::ResolvedProgram* program = nullptr;
  msg::Fabric* fabric = nullptr;
  SipConfig config;
  std::string scratch_dir;
  // Block pool size classes from the dry run: capacity (doubles) -> slots.
  std::map<std::size_t, std::size_t> pool_plan;

  std::atomic<bool> abort_flag{false};
  std::mutex error_mutex;
  std::string first_error;

  // ---- Fault tolerance (PR 4) ----

  // Shared disk-fault injector (null when no disk fault is planned);
  // every DiskStore on every server increments the same operation counter
  // so `disk=eio@op:N` names one global operation.
  msg::DiskFaultInjector* disk_injector = nullptr;

  // Installed by the launch when server recovery is enabled: joins the
  // dead server rank's thread, rebuilds the IoServer from its durable
  // files, revives the rank, and spawns a fresh thread. Called from the
  // master's watchdog. Returns false if the rank cannot be recovered.
  std::function<bool(int rank)> respawn_server;

  // What each rank is blocked on, for the watchdog's diagnosed abort:
  // -1 = running, otherwise a sip::WaitKind value. Sized by the launch.
  std::unique_ptr<std::atomic<int>[]> rank_status;
  int rank_status_size = 0;

  void init_rank_status(int ranks) {
    rank_status = std::make_unique<std::atomic<int>[]>(
        static_cast<std::size_t>(ranks));
    rank_status_size = ranks;
    for (int r = 0; r < ranks; ++r) rank_status[r].store(-1);
  }
  void set_rank_status(int rank, int status) {
    if (rank >= 0 && rank < rank_status_size) {
      rank_status[rank].store(status, std::memory_order_relaxed);
    }
  }
  int get_rank_status(int rank) const {
    if (rank < 0 || rank >= rank_status_size) return -1;
    return rank_status[rank].load(std::memory_order_relaxed);
  }

  // Stats accumulated from I/O-server incarnations retired by a respawn
  // (the live servers are harvested directly at the end of the run).
  std::atomic<std::int64_t> retired_server_dups{0};
  std::atomic<std::int64_t> retired_server_requests{0};
  std::atomic<std::int64_t> retired_server_lookahead_requests{0};
  std::atomic<std::int64_t> retired_server_cache_hits{0};
  std::atomic<std::int64_t> retired_server_disk_reads{0};
  std::atomic<std::int64_t> retired_server_disk_writes{0};
  std::atomic<std::int64_t> retired_server_reads_coalesced{0};
  std::atomic<std::int64_t> retired_server_write_batches{0};
  std::atomic<std::int64_t> retired_server_map_flushes{0};
  std::atomic<std::int64_t> retired_server_computed{0};

  // Records the first error and wakes every blocked rank.
  void raise_abort(const std::string& what) {
    {
      std::lock_guard<std::mutex> lock(error_mutex);
      if (first_error.empty()) first_error = what;
    }
    abort_flag.store(true, std::memory_order_release);
    fabric->stop();
  }

  void check_abort() const {
    if (abort_flag.load(std::memory_order_acquire)) throw Aborted();
  }

  // Rank layout: 0 = master, 1..workers = workers, then I/O servers.
  int master_rank() const { return 0; }
  int worker_rank(int worker_index) const { return 1 + worker_index; }
  int num_workers() const { return config.workers; }
  int num_servers() const { return config.io_servers; }
  bool is_worker(int rank) const {
    return rank >= 1 && rank <= config.workers;
  }
  bool is_server(int rank) const { return rank > config.workers; }

  // Home worker rank of a distributed array block: "blocks of a
  // distributed array are assigned to workers using a simple, static
  // strategy" (paper §V-B).
  int owner_rank(const BlockId& id) const {
    return 1 + static_cast<int>(id.hash() % static_cast<std::uint64_t>(
                                                config.workers));
  }

  // I/O server rank responsible for a served array block.
  int server_rank(const BlockId& id) const {
    if (config.io_servers == 0) {
      throw RuntimeError("program uses served arrays but io_servers == 0");
    }
    return 1 + config.workers +
           static_cast<int>(id.hash() % static_cast<std::uint64_t>(
                                            config.io_servers));
  }
};

}  // namespace sia::sip
