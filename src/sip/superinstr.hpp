// Super instructions.
//
// Computational super instructions "simply take blocks as input and
// generate new blocks as output and do not involve communication" (paper
// §I). This module has three parts:
//   1. the intrinsic block kernels behind SIAL's built-in operators —
//      block contraction (permute + DGEMM, §III footnote 3), permuted
//      copy/accumulate, element-wise add/sub, full-contraction dot;
//   2. the registry for user-defined super instructions invoked with
//      `execute` ("non-intrinsic super instructions can be added to the
//      SIP without changing the SIAL language", §IV-C);
//   3. a set of generally useful built-ins (fills, norms, prints).
//
// Kernel operands carry their index-variable ids per dimension; dimension
// identity IS index-variable identity, which is how the contraction
// planner knows what to contract.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "block/block.hpp"
#include "sial/program.hpp"

namespace sia::sip {

// ---------------------------------------------------------------------
// Intrinsic kernels.

enum class CopyMode { kAssign = 0, kAccumulate = 1, kSubtract = 2 };

// dst(dst_ids) = / += contraction of a(a_ids) with b(b_ids) over the index
// ids common to a and b. dst_ids must be exactly the non-common ids (any
// order). An empty common set is an outer product.
//
// With screen_threshold > 0 the GEMM is skipped outright when
// ||A||_F * ||B||_F < threshold (submultiplicativity bounds the dropped
// contribution's Frobenius norm by that product): accumulate mode is a
// no-op, assign mode zero-fills dst. The cached block norms make the test
// O(1) per call.
void block_contract(Block& dst, std::span<const int> dst_ids, const Block& a,
                    std::span<const int> a_ids, const Block& b,
                    std::span<const int> b_ids, bool accumulate,
                    double screen_threshold = 0.0);

// Full contraction of two blocks over identical id sets -> scalar.
// With screen_threshold > 0, returns 0 without touching the data when
// ||a|| * ||b|| < threshold (Cauchy–Schwarz bounds the dropped value).
double block_dot(const Block& a, std::span<const int> a_ids, const Block& b,
                 std::span<const int> b_ids, double screen_threshold = 0.0);

// Test hook: number of full-block permute copies of A/B operands that
// block_contract has materialized since process start. The gather-packing
// contraction engine folds operand transposes into GEMM packing, so this
// stays zero; tests assert on it to catch regressions.
std::uint64_t contract_operand_permute_count();

// Number of block kernels (contractions, dots, permuted accumulates)
// skipped by norm screening since process start.
std::uint64_t kernels_screened_count();
// Bumps that counter for a kernel elided before it ever reached a pool
// thread (decode-time screening in the executor window).
void note_kernel_screened();

// dst(dst_ids) op= src(src_ids) with permutation derived from the ids.
// With screen_threshold > 0, accumulate/subtract of a source block with
// ||src|| < threshold is skipped (assign still copies: dst must be
// defined afterwards).
void block_copy_permute(Block& dst, std::span<const int> dst_ids,
                        const Block& src, std::span<const int> src_ids,
                        CopyMode mode, double screen_threshold = 0.0);

// dst(dst_ids) =/+= a(a_ids) +/- b(b_ids), all over the same id set.
void block_add(Block& dst, std::span<const int> dst_ids, const Block& a,
               std::span<const int> a_ids, const Block& b,
               std::span<const int> b_ids, bool subtract, bool accumulate);

// ---------------------------------------------------------------------
// User-defined super instructions.

// One prepared argument of an `execute` call.
struct ExecArgValue {
  sial::ExecOperand::Kind kind = sial::ExecOperand::Kind::kNumber;
  // kBlock: the working block (writable) and its selector. If the operand
  // was sliced the block is a scratch copy that the interpreter writes
  // back afterwards.
  BlockPtr block;
  sial::BlockSelector selector;
  double* scalar = nullptr;  // kScalar: points at the worker's slot
  std::string text;          // kString
  double number = 0.0;       // kNumber
};

class SuperInstructionContext {
 public:
  SuperInstructionContext(const sial::ResolvedProgram& program,
                          std::vector<ExecArgValue>& args, int worker_index,
                          int num_workers)
      : program_(program), args_(args), worker_index_(worker_index),
        num_workers_(num_workers) {}

  int num_args() const { return static_cast<int>(args_.size()); }
  sial::ExecOperand::Kind arg_kind(int i) const { return arg(i).kind; }

  Block& block_arg(int i);
  const sial::BlockSelector& selector(int i) const;
  double& scalar_arg(int i);
  const std::string& string_arg(int i) const;
  double number_arg(int i) const;

  // Absolute (1-based) element coordinate of the first element of block
  // argument `i` along dimension `d`; with the extents this lets a super
  // instruction compute globally consistent values (the on-demand
  // integral generators rely on it).
  long first_element(int i, int d) const;

  const sial::ResolvedProgram& program() const { return program_; }
  int worker_index() const { return worker_index_; }
  int num_workers() const { return num_workers_; }

 private:
  const ExecArgValue& arg(int i) const;
  ExecArgValue& arg(int i);

  const sial::ResolvedProgram& program_;
  std::vector<ExecArgValue>& args_;
  int worker_index_;
  int num_workers_;
};

using SuperInstructionFn = std::function<void(SuperInstructionContext&)>;

class SuperInstructionRegistry {
 public:
  // Process-global registry (workers share it read-mostly).
  static SuperInstructionRegistry& global();

  // Registers or replaces a super instruction.
  void register_instruction(const std::string& name, SuperInstructionFn fn);
  // nullptr if unknown.
  const SuperInstructionFn* lookup(const std::string& name) const;
  std::vector<std::string> names() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, SuperInstructionFn> table_;
};

// Registers the built-in execute-able super instructions:
//   fill_value <block> <number>         every element := number
//   fill_coords <block>                 element := base-100 coordinate code
//   random_block <block> <number seed>  deterministic pseudo-random fill
//   fill_decay <block> <rate> <seed>    random fill damped by
//                                       exp(-rate*|c0 - c_mid|): banded
//                                       block-norm decay for sparsity
//   block_nrm2 <block> <scalar>         scalar := ||block||_2
//   block_asum <block> <scalar>         scalar := sum |elements|
//   block_max_abs <block> <scalar>      scalar := max |element|
//   print_block_norm <block>            prints the 2-norm
// Idempotent; called by the SIP launcher.
void register_builtin_superinstructions();

}  // namespace sia::sip
