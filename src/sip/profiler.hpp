// SIP profiling.
//
// "Because basic operations are relatively time consuming, we can keep
// track of very detailed performance metrics without an impact on
// performance" (paper §VIII). Each worker records per-instruction wall
// time, and per-pardo elapsed and wait time; "wait time indicates how much
// time is spent waiting for blocks of data to become available. Small wait
// times indicate effective overlap of computation and communication"
// (§VI-B). Reports aggregate across workers and map back to source lines —
// the paper stresses that this mapping is transparent because the compiler
// does not optimize.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sia::sip {

// What a worker was blocked on while servicing messages. Block/served
// waits are the paper's headline metric ("wait time indicates how much
// time is spent waiting for blocks of data", §VI-B); the other kinds
// separate scheduler and synchronization stalls from data stalls.
enum class WaitKind : int {
  kBlock = 0,   // distributed-array get reply
  kServed,      // served-array request reply
  kChunk,       // master chunk grant
  kBarrier,     // barrier release
  kCollective,  // collective result
};
inline constexpr std::size_t kWaitKindCount = 5;

class Profiler {
 public:
  explicit Profiler(bool enabled) : enabled_(enabled) {}

  void record_instruction(int pc, int line, const char* opcode,
                          double seconds) {
    if (!enabled_) return;
    Entry& entry = instructions_[pc];
    entry.line = line;
    entry.opcode = opcode;
    entry.count += 1;
    entry.seconds += seconds;
  }

  // Wait time: spent blocked (servicing messages) on something that had
  // not yet arrived, bucketed by what was awaited.
  void record_wait(int pardo_id, double seconds, WaitKind kind) {
    if (!enabled_) return;
    total_wait_ += seconds;
    wait_by_kind_[static_cast<std::size_t>(kind)] += seconds;
    if (pardo_id >= 0) pardo_[pardo_id].wait += seconds;
  }

  void record_pardo_iteration(int pardo_id) {
    if (!enabled_) return;
    pardo_[pardo_id].iterations += 1;
  }

  void record_pardo_elapsed(int pardo_id, double seconds) {
    if (!enabled_) return;
    pardo_[pardo_id].elapsed += seconds;
  }

  void record_total(double seconds) { total_elapsed_ += seconds; }

  struct Entry {
    int line = 0;
    const char* opcode = "";
    std::int64_t count = 0;
    double seconds = 0.0;
  };
  struct PardoEntry {
    std::int64_t iterations = 0;
    double elapsed = 0.0;
    double wait = 0.0;
  };

  const std::map<int, Entry>& instructions() const { return instructions_; }
  const std::map<int, PardoEntry>& pardos() const { return pardo_; }
  double total_wait() const { return total_wait_; }
  double total_elapsed() const { return total_elapsed_; }
  double wait_for(WaitKind kind) const {
    return wait_by_kind_[static_cast<std::size_t>(kind)];
  }
  // Get/request wait: time blocked on distributed or served block data.
  double block_wait() const {
    return wait_for(WaitKind::kBlock) + wait_for(WaitKind::kServed);
  }

 private:
  bool enabled_;
  std::map<int, Entry> instructions_;   // keyed by pc
  std::map<int, PardoEntry> pardo_;     // keyed by pardo table id
  double total_wait_ = 0.0;
  double total_elapsed_ = 0.0;
  std::array<double, kWaitKindCount> wait_by_kind_{};
};

// Aggregated view over all workers, returned from a SIP run.
struct ProfileReport {
  struct LineCost {
    int line = 0;
    std::string opcode;
    std::int64_t count = 0;
    double seconds = 0.0;
  };
  struct PardoCost {
    int pardo_id = 0;
    int line = 0;
    std::int64_t iterations = 0;
    double elapsed = 0.0;   // summed over workers
    double wait = 0.0;      // summed over workers
  };

  std::vector<LineCost> lines;    // sorted by cost, descending
  std::vector<PardoCost> pardos;  // by pardo id
  double total_elapsed = 0.0;     // wall time of the slowest worker
  double total_wait = 0.0;        // summed over workers
  double total_busy = 0.0;        // summed instruction time over workers

  // Wait-time breakdown by kind, summed over workers.
  double block_wait = 0.0;        // distributed get replies
  double served_wait = 0.0;       // served request replies
  double chunk_wait = 0.0;        // master chunk grants
  double barrier_wait = 0.0;      // barrier releases
  double collective_wait = 0.0;   // collective results
  // Per-worker get/request wait (block + served), indexed by worker.
  std::vector<double> worker_block_wait;

  // Served-array pipeline counters, aggregated over workers (client side)
  // and I/O servers (server side). All zero when no served traffic ran.
  struct ServedPipeline {
    // Client (ServedArrayClient::Stats, summed over workers).
    std::int64_t client_requests_issued = 0;
    std::int64_t client_requests_cached = 0;
    std::int64_t client_lookahead_issued = 0;
    std::int64_t client_lookahead_misses = 0;
    // Demand requests sent while a look-ahead for the same block was
    // still in flight (promotes the server's queued read-ahead job).
    std::int64_t client_lookahead_promoted = 0;
    // Server (IoServer::Stats, summed over I/O servers).
    std::int64_t server_requests = 0;
    std::int64_t server_lookahead_requests = 0;
    std::int64_t server_cache_hits = 0;
    std::int64_t server_disk_reads = 0;
    std::int64_t server_disk_writes = 0;
    std::int64_t reads_coalesced = 0;
    std::int64_t write_batches = 0;
    std::int64_t map_flushes = 0;
    std::int64_t computed = 0;

    bool any() const {
      return client_requests_issued != 0 || client_requests_cached != 0 ||
             client_lookahead_issued != 0 || server_requests != 0 ||
             server_lookahead_requests != 0 || server_disk_writes != 0;
    }
  };
  ServedPipeline served;

  // Fault-tolerance counters, aggregated over workers (reliable-channel
  // retransmit state), receivers (dedup windows), the master (watchdog),
  // and the chaos fabric / disk injector (faults actually injected). All
  // zero in a fault-free run with the reliable protocol off.
  struct Robustness {
    std::int64_t retries_sent = 0;       // tracked sends retransmitted
    std::int64_t dup_msgs_dropped = 0;   // exactly-once dedup hits
    std::int64_t acks_timed_out = 0;     // sends that exhausted retry_max
    std::int64_t heartbeats_missed = 0;  // individual missed beats
    std::int64_t server_recoveries = 0;  // I/O-server respawns
    std::int64_t sends_after_stop = 0;   // counted no-op sends (shutdown)
    // Faults injected, by kind.
    std::int64_t faults_dropped = 0;
    std::int64_t faults_duplicated = 0;
    std::int64_t faults_delayed = 0;
    std::int64_t faults_reordered = 0;
    std::int64_t faults_kill_swallowed = 0;  // sends/recvs of a dead rank
    std::int64_t faults_disk = 0;

    std::int64_t faults_injected() const {
      return faults_dropped + faults_duplicated + faults_delayed +
             faults_reordered + faults_kill_swallowed + faults_disk;
    }
    bool any() const {
      return retries_sent != 0 || dup_msgs_dropped != 0 ||
             acks_timed_out != 0 || heartbeats_missed != 0 ||
             server_recoveries != 0 || sends_after_stop != 0 ||
             faults_injected() != 0;
    }
  };
  Robustness robustness;

  // Dataflow-window counters (config.worker_threads >= 1), aggregated
  // over workers. All zero on the legacy serial path.
  struct Executor {
    int threads = 0;                  // pool size (max over workers)
    std::int64_t tasks_executed = 0;  // entries run on pool threads
    std::int64_t entries_retired = 0;
    std::int64_t hazard_stalls = 0;   // enqueued behind a RAW/WAR/WAW dep
    // Dependency edges observed at enqueue, split by hazard kind (may
    // sum past hazard_stalls: one stalled entry can carry many edges).
    std::int64_t raw_deps = 0;
    std::int64_t war_deps = 0;
    std::int64_t waw_deps = 0;
    std::int64_t operand_stalls = 0;  // parked on an in-flight fetch
    std::int64_t drains = 0;          // full-window drains at boundaries
    std::int64_t window_peak = 0;     // max in-flight entries (over workers)
    std::int64_t occupancy_sum = 0;   // window size sampled at enqueue
    std::int64_t occupancy_samples = 0;
    double drain_wait_seconds = 0.0;  // interpreter blocked draining
    double thread_busy_seconds = 0.0; // summed over all pool threads

    double avg_occupancy() const {
      return occupancy_samples > 0
                 ? static_cast<double>(occupancy_sum) /
                       static_cast<double>(occupancy_samples)
                 : 0.0;
    }
    bool any() const {
      return entries_retired != 0 || tasks_executed != 0;
    }
  };
  Executor executor;

  // Norm-based screening counters (sparse arrays, sparse_threshold > 0),
  // aggregated over workers, servers, and the fabric. All zero when
  // screening is off.
  struct Screening {
    double threshold = 0.0;            // config.sparse_threshold
    std::int64_t blocks_screened = 0;  // payload transfers elided (fabric)
    std::int64_t bytes_elided = 0;     // bytes those payloads would move
    std::int64_t kernels_screened = 0; // GEMMs/dots/permutes skipped
    std::int64_t puts_screened = 0;      // dist put payloads dropped
    std::int64_t gets_screened = 0;      // dist gets answered norm-only
    std::int64_t prepares_screened = 0;  // served prepares dropped/markers
    std::int64_t requests_screened = 0;  // served requests norm-only
    std::int64_t zero_reads = 0;         // reads satisfied by the zero block
    std::int64_t evictions_screened = 0; // dirty victims re-screened
    // Per sparse array: blocks absent-or-screened vs total blocks.
    struct ArrayCensus {
      std::string name;
      std::int64_t screened = 0;
      std::int64_t total = 0;
    };
    std::vector<ArrayCensus> arrays;

    bool any() const {
      return threshold > 0.0 &&
             (blocks_screened != 0 || kernels_screened != 0 ||
              puts_screened != 0 || gets_screened != 0 ||
              prepares_screened != 0 || requests_screened != 0 ||
              zero_reads != 0 || !arrays.empty());
    }
  };
  Screening screening;

  // Launch-time planner record (config.autotune): what the DES model
  // predicted, what actually happened, and how far apart they were. All
  // zero/false when the run was not planned.
  struct Plan {
    bool planned = false;
    bool calibrated = false;        // calibration file had prior runs
    double predicted_seconds = 0.0; // DES prediction for the chosen plan
    double actual_seconds = 0.0;    // measured wall time of the run
    int candidates = 0;             // configurations swept
    std::string summary;            // chosen knobs, "key=value ..." form
    std::vector<std::string> pinned;  // user-set knobs left untouched

    double error_percent() const {
      if (actual_seconds <= 0.0 || predicted_seconds <= 0.0) return 0.0;
      return 100.0 * (predicted_seconds - actual_seconds) / actual_seconds;
    }
    bool any() const { return planned; }
  };
  Plan plan;

  // Guided-schedule counters from the master: chunks served, work-steal
  // traffic, and the per-worker iteration histogram (master-side, so
  // they survive spawn mode where worker profiles are not shipped).
  struct Scheduling {
    std::int64_t chunks_served = 0;
    std::int64_t steal_attempts = 0;
    std::int64_t steals_granted = 0;
    std::int64_t stolen_iterations = 0;
    std::vector<std::int64_t> worker_iterations;  // indexed by worker

    // Spread of the iteration histogram: (max - min) / mean, percent.
    double imbalance_percent() const;
    bool any() const { return chunks_served != 0 || steal_attempts != 0; }
  };
  Scheduling scheduling;

  // Percentage of elapsed time spent waiting (the paper's bottom line in
  // Fig. 2), averaged over workers.
  double wait_percent() const;

  std::string to_string() const;
};

}  // namespace sia::sip
