// SIP profiling.
//
// "Because basic operations are relatively time consuming, we can keep
// track of very detailed performance metrics without an impact on
// performance" (paper §VIII). Each worker records per-instruction wall
// time, and per-pardo elapsed and wait time; "wait time indicates how much
// time is spent waiting for blocks of data to become available. Small wait
// times indicate effective overlap of computation and communication"
// (§VI-B). Reports aggregate across workers and map back to source lines —
// the paper stresses that this mapping is transparent because the compiler
// does not optimize.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sia::sip {

class Profiler {
 public:
  explicit Profiler(bool enabled) : enabled_(enabled) {}

  void record_instruction(int pc, int line, const char* opcode,
                          double seconds) {
    if (!enabled_) return;
    Entry& entry = instructions_[pc];
    entry.line = line;
    entry.opcode = opcode;
    entry.count += 1;
    entry.seconds += seconds;
  }

  // Wait time: spent blocked on a block that had not yet arrived.
  void record_wait(int pardo_id, double seconds) {
    if (!enabled_) return;
    total_wait_ += seconds;
    if (pardo_id >= 0) pardo_[pardo_id].wait += seconds;
  }

  void record_pardo_iteration(int pardo_id) {
    if (!enabled_) return;
    pardo_[pardo_id].iterations += 1;
  }

  void record_pardo_elapsed(int pardo_id, double seconds) {
    if (!enabled_) return;
    pardo_[pardo_id].elapsed += seconds;
  }

  void record_total(double seconds) { total_elapsed_ += seconds; }

  struct Entry {
    int line = 0;
    const char* opcode = "";
    std::int64_t count = 0;
    double seconds = 0.0;
  };
  struct PardoEntry {
    std::int64_t iterations = 0;
    double elapsed = 0.0;
    double wait = 0.0;
  };

  const std::map<int, Entry>& instructions() const { return instructions_; }
  const std::map<int, PardoEntry>& pardos() const { return pardo_; }
  double total_wait() const { return total_wait_; }
  double total_elapsed() const { return total_elapsed_; }

 private:
  bool enabled_;
  std::map<int, Entry> instructions_;   // keyed by pc
  std::map<int, PardoEntry> pardo_;     // keyed by pardo table id
  double total_wait_ = 0.0;
  double total_elapsed_ = 0.0;
};

// Aggregated view over all workers, returned from a SIP run.
struct ProfileReport {
  struct LineCost {
    int line = 0;
    std::string opcode;
    std::int64_t count = 0;
    double seconds = 0.0;
  };
  struct PardoCost {
    int pardo_id = 0;
    int line = 0;
    std::int64_t iterations = 0;
    double elapsed = 0.0;   // summed over workers
    double wait = 0.0;      // summed over workers
  };

  std::vector<LineCost> lines;    // sorted by cost, descending
  std::vector<PardoCost> pardos;  // by pardo id
  double total_elapsed = 0.0;     // wall time of the slowest worker
  double total_wait = 0.0;        // summed over workers
  double total_busy = 0.0;        // summed instruction time over workers

  // Percentage of elapsed time spent waiting (the paper's bottom line in
  // Fig. 2), averaged over workers.
  double wait_percent() const;

  std::string to_string() const;
};

}  // namespace sia::sip
