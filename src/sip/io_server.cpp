#include "sip/io_server.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "blas/elementwise.hpp"
#include "common/log.hpp"
#include "common/posix_io.hpp"
#include "msg/tags.hpp"
#include "sip/spawn.hpp"

namespace sia::sip {

namespace {
// Upper bound on blocks retired per write-behind batch; keeps lookup
// latency for queued blocks bounded while still amortizing the presence
// map flush over many writes.
constexpr std::size_t kMaxWriteBatch = 64;
}  // namespace

// ---------------------------------------------------------------------
// DiskStore.

DiskStore::DiskStore(const std::string& dir, const std::string& array_name,
                     std::size_t slot_doubles, std::int64_t num_blocks,
                     bool cold_io, msg::DiskFaultInjector* injector)
    : cold_io_(cold_io),
      array_name_(array_name),
      injector_(injector),
      slot_doubles_(slot_doubles),
      present_(static_cast<std::size_t>(num_blocks), 0) {
  const std::string data_path = dir + "/" + array_name + ".srv";
  const std::string map_path = dir + "/" + array_name + ".map";
  fd_ = retry_eintr(
      [&] { return ::open(data_path.c_str(), O_RDWR | O_CREAT, 0644); });
  if (fd_ < 0) {
    throw RuntimeError("cannot open served array file " + data_path + ": " +
                       std::strerror(errno));
  }
  map_fd_ = retry_eintr(
      [&] { return ::open(map_path.c_str(), O_RDWR | O_CREAT, 0644); });
  if (map_fd_ < 0) {
    close_quiet(fd_);
    throw RuntimeError("cannot open served array map " + map_path);
  }
  // Load existing presence map (persistence across SIP runs).
  const ssize_t got =
      pread_full(map_fd_, present_.data(), present_.size(), 0);
  if (got < 0) {
    throw RuntimeError("cannot read served array map " + map_path);
  }
  for (std::size_t i = static_cast<std::size_t>(got); i < present_.size();
       ++i) {
    present_[i] = 0;
  }
}

DiskStore::~DiskStore() {
  if (!abandoned_) {
    try {
      flush_map();
    } catch (...) {
      // Destructor: nothing sensible to do with a failed final flush.
    }
  }
  if (fd_ >= 0) close_quiet(fd_);
  if (map_fd_ >= 0) close_quiet(map_fd_);
}

void DiskStore::abandon() {
  std::lock_guard<std::mutex> lock(mutex_);
  // The incarnation died: its un-flushed in-memory presence bytes must
  // not overwrite the durable map the respawned server will reload.
  abandoned_ = true;
  map_dirty_lo_ = map_dirty_hi_ = -1;
}

bool DiskStore::has(std::int64_t linear) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return present_[static_cast<std::size_t>(linear)] != 0;
}

bool DiskStore::is_screened(std::int64_t linear) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return present_[static_cast<std::size_t>(linear)] == 2;
}

void DiskStore::record_screened(std::int64_t linear) {
  std::lock_guard<std::mutex> lock(mutex_);
  present_[static_cast<std::size_t>(linear)] = 2;
  if (map_dirty_lo_ < 0 || linear < map_dirty_lo_) map_dirty_lo_ = linear;
  if (linear > map_dirty_hi_) map_dirty_hi_ = linear;
}

void DiskStore::read(std::int64_t linear, double* out,
                     std::size_t count) const {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const char state = present_[static_cast<std::size_t>(linear)];
    if (state == 0) {
      throw RuntimeError("disk read of absent served block");
    }
    if (state == 2) {
      // Screened block: present, but its data never hit the file (the
      // slot may not even exist). It reads as zeros by definition.
      std::fill(out, out + count, 0.0);
      return;
    }
  }
  if (injector_ != nullptr) {
    injector_->check("read of '" + array_name_ + "' block " +
                     std::to_string(linear));
  }
  const off_t offset =
      static_cast<off_t>(linear) *
      static_cast<off_t>(slot_doubles_ * sizeof(double));
  const std::size_t bytes = count * sizeof(double);
  const ssize_t got = pread_full(fd_, out, bytes, offset);
  if (got != static_cast<ssize_t>(bytes)) {
    throw RuntimeError("short read from served array file");
  }
  if (cold_io_) {
    ::posix_fadvise(fd_, offset, static_cast<off_t>(bytes),
                    POSIX_FADV_DONTNEED);
  }
}

void DiskStore::write_deferred(std::int64_t linear, const double* data,
                               std::size_t count) {
  SIA_CHECK(count <= slot_doubles_, "served block exceeds disk slot");
  if (injector_ != nullptr) {
    injector_->check("write of '" + array_name_ + "' block " +
                     std::to_string(linear));
  }
  const off_t offset =
      static_cast<off_t>(linear) *
      static_cast<off_t>(slot_doubles_ * sizeof(double));
  const std::size_t bytes = count * sizeof(double);
  if (pwrite_full(fd_, data, bytes, offset) !=
      static_cast<ssize_t>(bytes)) {
    throw RuntimeError("short write to served array file");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  present_[static_cast<std::size_t>(linear)] = 1;
  if (map_dirty_lo_ < 0 || linear < map_dirty_lo_) map_dirty_lo_ = linear;
  if (linear > map_dirty_hi_) map_dirty_hi_ = linear;
  ++blocks_written_;
}

void DiskStore::flush_map() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (map_dirty_lo_ < 0) return;
  // One pwrite over the dirty range. Batches are sorted by linear id, so
  // the range is dense in practice; bytes inside it that were already on
  // disk are simply rewritten with their current in-memory value.
  const std::size_t lo = static_cast<std::size_t>(map_dirty_lo_);
  const std::size_t len = static_cast<std::size_t>(map_dirty_hi_) - lo + 1;
  if (pwrite_full(map_fd_, present_.data() + lo, len,
                  static_cast<off_t>(lo)) != static_cast<ssize_t>(len)) {
    throw RuntimeError("cannot update served array map");
  }
  map_dirty_lo_ = map_dirty_hi_ = -1;
  ++map_flushes_;
}

void DiskStore::after_batch() {
  if (!cold_io_) return;
  // One sync per batch instead of per block; dropping the pages right
  // after keeps the data file cold so the application-level cache stays
  // the only cache.
  fdatasync_eintr(fd_);
  ::posix_fadvise(fd_, 0, 0, POSIX_FADV_DONTNEED);
}

void DiskStore::write(std::int64_t linear, const double* data,
                      std::size_t count) {
  write_deferred(linear, data, count);
  flush_map();
  after_batch();
}

void DiskStore::erase_all() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::fill(present_.begin(), present_.end(), 0);
  if (!present_.empty() &&
      pwrite_full(map_fd_, present_.data(), present_.size(), 0) !=
          static_cast<ssize_t>(present_.size())) {
    throw RuntimeError("cannot clear served array map");
  }
  map_dirty_lo_ = map_dirty_hi_ = -1;
  ++map_flushes_;
}

std::int64_t DiskStore::blocks_written() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return blocks_written_;
}

std::int64_t DiskStore::map_flushes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return map_flushes_;
}

std::int64_t DiskStore::screened_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::count(present_.begin(), present_.end(), char{2});
}

std::int64_t DiskStore::present_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<std::int64_t>(present_.size()) -
         std::count(present_.begin(), present_.end(), char{0});
}

// ---------------------------------------------------------------------
// WriteBehind.

WriteBehind::WriteBehind(int lanes, bool batched, ErrorHandler on_error,
                         RetireHandler on_retire)
    : max_batch_(batched ? kMaxWriteBatch : 1),
      on_error_(std::move(on_error)),
      on_retire_(std::move(on_retire)) {
  const int count = std::max(1, lanes);
  threads_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    threads_.emplace_back([this] { run(); });
  }
}

WriteBehind::~WriteBehind() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
    paused_ = false;
  }
  cv_.notify_all();
  for (std::thread& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
}

void WriteBehind::enqueue(DiskStore* store, int array_id,
                          std::int64_t linear, BlockPtr block,
                          AckList acks) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const Key key{array_id, linear};
    pending_[key] = block;
    queue_.push_back(Item{store, key, std::move(block), std::move(acks)});
  }
  cv_.notify_all();
}

void WriteBehind::abandon() {
  std::lock_guard<std::mutex> lock(mutex_);
  queue_.clear();
  pending_.clear();
}

BlockPtr WriteBehind::lookup(int array_id, std::int64_t linear) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = pending_.find(Key{array_id, linear});
  return it == pending_.end() ? nullptr : it->second;
}

WriteBehind::AckList WriteBehind::cancel_array(int array_id) {
  std::unique_lock<std::mutex> lock(mutex_);
  AckList dropped;
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->key.first == array_id) {
      dropped.insert(dropped.end(), it->acks.begin(), it->acks.end());
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = pending_.begin(); it != pending_.end();) {
    it = it->first.first == array_id ? pending_.erase(it) : std::next(it);
  }
  cv_.wait(lock, [&] {
    return std::none_of(in_flight_keys_.begin(), in_flight_keys_.end(),
                        [&](const Key& key) { return key.first == array_id; });
  });
  return dropped;
}

void WriteBehind::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return queue_.empty() && in_flight_keys_.empty(); });
  if (!error_.empty()) {
    throw RuntimeError("write-behind disk failure: " + error_);
  }
}

std::int64_t WriteBehind::writes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return writes_;
}

std::int64_t WriteBehind::batches() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return batches_;
}

void WriteBehind::pause() {
  std::lock_guard<std::mutex> lock(mutex_);
  paused_ = true;
}

void WriteBehind::resume() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = false;
  }
  cv_.notify_all();
}

bool WriteBehind::has_runnable_item() const {
  for (const Item& item : queue_) {
    if (std::find(in_flight_keys_.begin(), in_flight_keys_.end(),
                  item.key) == in_flight_keys_.end()) {
      return true;
    }
  }
  return false;
}

void WriteBehind::run() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    cv_.wait(lock, [&] {
      return stop_ || (!paused_ && has_runnable_item());
    });
    if (stop_ && queue_.empty()) return;
    if (paused_ || !has_runnable_item()) {
      if (stop_) {
        // Remaining items are all in flight on other lanes.
        if (queue_.empty()) return;
        continue;
      }
      continue;
    }
    // Build a batch: queued blocks of one array, oldest first, skipping
    // keys another lane is writing right now (same-slot writes must keep
    // their enqueue order).
    int array_id = -1;
    std::vector<Item> batch;
    for (auto it = queue_.begin();
         it != queue_.end() && batch.size() < max_batch_;) {
      const bool busy =
          std::find(in_flight_keys_.begin(), in_flight_keys_.end(),
                    it->key) != in_flight_keys_.end();
      if (busy) {
        ++it;
        continue;
      }
      if (array_id < 0) array_id = it->key.first;
      if (it->key.first != array_id) {
        ++it;
        continue;
      }
      batch.push_back(std::move(*it));
      it = queue_.erase(it);
      in_flight_keys_.push_back(batch.back().key);
    }
    if (batch.empty()) continue;
    // Sort by linear id for sequential locality; stable keeps two queued
    // versions of the same block in enqueue order.
    std::stable_sort(batch.begin(), batch.end(),
                     [](const Item& a, const Item& b) {
                       return a.key.second < b.key.second;
                     });
    lock.unlock();
    // A throw escaping a lane thread would std::terminate the process, so
    // disk failures (short write, ENOSPC) are caught here, surfaced via
    // the error handler, and rethrown from drain().
    std::string error;
    try {
      DiskStore* store = batch.front().store;
      for (const Item& item : batch) {
        item.store->write_deferred(item.key.second,
                                   item.block->data().data(),
                                   item.block->size());
      }
      // One presence-map pwrite (and, under cold I/O, one fdatasync) for
      // the whole batch.
      store->flush_map();
      store->after_batch();
    } catch (const std::exception& e) {
      error = e.what();
    }
    if (!error.empty() && on_error_) on_error_(error);
    if (error.empty() && on_retire_) {
      // The batch is durably retired: hand its prepare durability acks
      // to the server (journal + kProtoAck to the preparing workers).
      AckList retired;
      for (const Item& item : batch) {
        retired.insert(retired.end(), item.acks.begin(), item.acks.end());
      }
      if (!retired.empty()) on_retire_(retired);
    }
    lock.lock();
    if (error.empty()) {
      writes_ += static_cast<std::int64_t>(batch.size());
      ++batches_;
    } else if (error_.empty()) {
      error_ = error;
    }
    for (const Item& item : batch) {
      auto in_flight = std::find(in_flight_keys_.begin(),
                                 in_flight_keys_.end(), item.key);
      if (in_flight != in_flight_keys_.end()) {
        in_flight_keys_.erase(in_flight);
      }
      // Remove from the pending map only if it still refers to this block
      // (a newer version may have been enqueued meanwhile).
      auto it = pending_.find(item.key);
      if (it != pending_.end() && it->second == item.block) {
        pending_.erase(it);
      }
    }
    cv_.notify_all();
  }
}

// ---------------------------------------------------------------------
// DiskPool.

DiskPool::DiskPool(int threads) {
  const int count = std::max(1, threads);
  threads_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    threads_.emplace_back([this] { run(); });
  }
}

DiskPool::~DiskPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
}

void DiskPool::submit(const Key& key, Job job, bool low_priority) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    (low_priority ? low_ : high_).push_back(Entry{key, std::move(job)});
  }
  cv_.notify_one();
}

void DiskPool::promote(const Key& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = low_.begin(); it != low_.end(); ++it) {
    if (it->key == key) {
      high_.push_back(std::move(*it));
      low_.erase(it);
      return;
    }
  }
}

void DiskPool::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [&] {
    return high_.empty() && low_.empty() && running_ == 0;
  });
}

void DiskPool::run() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    cv_.wait(lock, [&] { return stop_ || !high_.empty() || !low_.empty(); });
    if (high_.empty() && low_.empty()) {
      if (stop_) return;
      continue;
    }
    std::deque<Entry>& source = high_.empty() ? low_ : high_;
    Entry entry = std::move(source.front());
    source.pop_front();
    ++running_;
    lock.unlock();
    entry.job();
    lock.lock();
    --running_;
    if (high_.empty() && low_.empty() && running_ == 0) {
      idle_cv_.notify_all();
    }
  }
}

// ---------------------------------------------------------------------
// ServerComputeRegistry.

ServerComputeRegistry& ServerComputeRegistry::global() {
  static ServerComputeRegistry registry;
  return registry;
}

void ServerComputeRegistry::register_generator(const std::string& name,
                                               ServerComputeFn fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  table_[name] = std::move(fn);
}

const ServerComputeFn* ServerComputeRegistry::lookup(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = table_.find(name);
  return it == table_.end() ? nullptr : &it->second;
}

// ---------------------------------------------------------------------
// IoServer.

IoServer::IoServer(SipShared& shared, int my_rank)
    : shared_(shared), my_rank_(my_rank),
      cache_(shared.config.server_cache_bytes / sizeof(double),
             [this](const BlockId& id, const BlockPtr& block, bool dirty) {
               if (!dirty) return;
               const sial::ResolvedArray& array =
                   shared_.program->array(id.array_id);
               const std::int64_t linear =
                   id.linearize(array.num_segments);
               // Re-screen at eviction: an accumulated block that decayed
               // below the threshold needs no disk write — a presence-map
               // marker suffices. Skipped when an older version of the
               // same block is queued/in flight on the lanes: a marker
               // cannot outrank those writes (same-slot FIFO is what keeps
               // replays exactly-once), so the data takes the normal path.
               if (screenable(id.array_id) &&
                   block->norm() < shared_.config.sparse_threshold &&
                   write_behind_.lookup(id.array_id, linear) == nullptr) {
                 ++stats_.evictions_screened;
                 shared_.fabric->record_screened(
                     my_rank_, static_cast<std::int64_t>(block->size()));
                 store_for(id.array_id).record_screened(linear);
                 // Any durability acks stay pending: the marker becomes
                 // durable at the next presence-map flush (barrier or
                 // flush hint), where flush() acks the leftovers.
                 return;
               }
               write_behind_.enqueue(&store_for(id.array_id), id.array_id,
                                     linear, block,
                                     take_pending_acks(id.array_id, linear));
             }),
      write_behind_(std::max(1, shared.config.server_disk_threads),
                    /*batched=*/shared.config.server_disk_threads > 0,
                    [this](const std::string& error) {
                      shared_.raise_abort("write-behind disk failure: " +
                                          error);
                    },
                    [this](const WriteBehind::AckList& acks) {
                      ack_durable(acks);
                    }) {
  ft_ = shared.config.fault_tolerance_enabled();
  if (ft_) load_ack_journal();
  if (shared.config.server_disk_threads > 0) {
    disk_pool_ =
        std::make_unique<DiskPool>(shared.config.server_disk_threads);
  }
}

IoServer::~IoServer() {
  // Quiesce the worker threads before retiring the journal fd: a lane
  // retiring one last batch must still be able to journal its acks —
  // an ack that was journaled but never delivered is recovered from (the
  // retransmit is re-acked), an ack sent without a journal entry is not
  // (the retransmit would double-apply).
  disk_pool_.reset();
  try {
    write_behind_.drain();
  } catch (...) {
    // Lane disk error was already surfaced via the error handler.
  }
  int fd;
  {
    std::lock_guard<std::mutex> lock(acked_mutex_);
    fd = journal_fd_;
    journal_fd_ = -1;
  }
  if (fd >= 0) close_quiet(fd);
}

DiskStore& IoServer::store_for(int array_id) {
  auto it = stores_.find(array_id);
  if (it == stores_.end()) {
    const sial::ResolvedArray& array = shared_.program->array(array_id);
    it = stores_
             .emplace(array_id, std::make_unique<DiskStore>(
                                    shared_.scratch_dir, array.name,
                                    array.max_block_elements,
                                    array.total_blocks,
                                    shared_.config.server_cold_io,
                                    shared_.disk_injector))
             .first;
  }
  return *it->second;
}

const ServerComputeFn* IoServer::generator_for(int array_id) {
  auto it = generators_.find(array_id);
  if (it == generators_.end()) {
    GeneratorSlot slot;
    slot.resolved = true;
    const std::string& name = shared_.program->array(array_id).name;
    auto cfg = shared_.config.computed_served.find(name);
    if (cfg != shared_.config.computed_served.end()) {
      slot.fn = ServerComputeRegistry::global().lookup(cfg->second);
      if (slot.fn == nullptr) {
        throw RuntimeError("computed served array '" + name +
                           "' refers to unregistered generator '" +
                           cfg->second + "'");
      }
    }
    it = generators_.emplace(array_id, slot).first;
  }
  return it->second.fn;
}

BlockShape IoServer::shape_of(const BlockId& id) const {
  const sial::ResolvedArray& array = shared_.program->array(id.array_id);
  return shared_.program->grid_block_shape(
      array, {id.segments.data(), static_cast<std::size_t>(id.rank)});
}

bool IoServer::screenable(int array_id) const {
  return shared_.config.sparse_threshold > 0.0 &&
         shared_.program->array(array_id).sparse;
}

BlockPtr IoServer::load_block(const BlockId& id, bool* found) {
  const sial::ResolvedArray& array = shared_.program->array(id.array_id);
  const std::int64_t linear = id.linearize(array.num_segments);

  // Still sitting in the write-behind queue?
  if (BlockPtr pending = write_behind_.lookup(id.array_id, linear)) {
    *found = true;
    return pending;
  }
  DiskStore& store = store_for(id.array_id);
  if (!store.has(linear)) {
    *found = false;
    return nullptr;
  }
  ++stats_.disk_reads;
  auto block = std::make_shared<Block>(shape_of(id));
  store.read(linear, block->data().data(), block->size());
  *found = true;
  return block;
}

void IoServer::handle_prepare(msg::Message& message, bool accumulate) {
  ++stats_.prepares;
  const int array_id = static_cast<int>(message.header[0]);
  const sial::ResolvedArray& array = shared_.program->array(array_id);
  const BlockId id =
      BlockId::from_linear(array_id, message.header[1], array.num_segments);
  const int writer = static_cast<int>(message.header[2]);

  WriteRecord& record = write_records_[id];
  if (record.epoch == epoch_) {
    if (record.accumulate != accumulate) {
      throw RuntimeError("conflicting prepare and prepare+= on block " +
                         id.to_string() + " of '" + array.name +
                         "' without a server_barrier");
    }
    if (!accumulate && record.writer != writer) {
      throw RuntimeError("two workers prepared block " + id.to_string() +
                         " of '" + array.name +
                         "' without a server_barrier");
    }
  }
  record.epoch = epoch_;
  record.writer = writer;
  record.accumulate = accumulate;

  // Header-only screened replace: the payload stayed below the screening
  // threshold at the sender, so only a presence-map marker travels.
  if (message.header.size() > 3 && message.header[3] != 0) {
    apply_screened_prepare(message, id, message.header[1]);
    return;
  }

  // Under the reliable protocol this prepare is owed a *durability* ack:
  // it is acked (and journaled) only once the carrying block is retired
  // to disk. An immediate ack would let the worker drop its retransmit
  // copy while the only instance of the data is a dirty cache block — a
  // server crash would then lose it with no one left to replay it.
  if (ft_ && message.seq != 0) {
    pending_acks_[{array_id, message.header[1]}].push_back(
        {message.src, message.seq});
  }

  // This prepare supersedes any disk read of the same block still in
  // flight: bump the version so the read's completion is discarded
  // instead of clobbering the fresh dirty block with a stale clean one,
  // and abandon the in-flight entry so later demand requests submit a
  // fresh job (which sees the new data) rather than coalescing onto the
  // stale read. Its waiters are answered from the fresh payload below.
  ++prepare_versions_[id];
  std::vector<Waiter> stolen;
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    auto inflight = inflight_.find(id);
    if (inflight != inflight_.end()) {
      stolen = std::move(inflight->second.waiters);
      inflight_.erase(inflight);
    }
  }
  const std::int64_t linear = message.header[1];
  const auto reply_to_stolen = [&](const BlockPtr& fresh) {
    for (const Waiter& waiter : stolen) {
      send_reply(waiter.reply_rank, array_id, linear, fresh,
                 waiter.lookahead, waiter.req_seq);
    }
  };

  BlockPtr incoming = std::move(message.block);
  const std::size_t incoming_size =
      incoming ? incoming->size() : message.data.size();
  if (incoming_size != shape_of(id).element_count()) {
    throw RuntimeError("prepare shape mismatch for " + id.to_string());
  }

  if (!accumulate && incoming && incoming.use_count() == 1) {
    // Replace with an exclusively owned payload: adopt it outright — no
    // allocation, no unpack copy. The cache entry swap leaves any shared
    // snapshot (earlier zero-copy reply) untouched for its holders.
    BlockPtr fresh = incoming;
    cache_.put(id, std::move(incoming), /*dirty=*/true);
    reply_to_stolen(fresh);
    return;
  }

  BlockPtr block = cache_.get(id);
  if (!block) {
    if (accumulate) {
      bool found = false;
      block = load_block(id, &found);
      if (!found) block = std::make_shared<Block>(shape_of(id));
    } else {
      block = std::make_shared<Block>(shape_of(id));
    }
  } else {
    ++stats_.cache_hits;
  }
  // Copy-on-write before mutating: `block` is referenced by the cache and
  // by this local variable; any further reference means a zero-copy reply
  // snapshot, a write-behind queue entry, or a worker-side adopted copy
  // is watching the storage, so mutate a private copy instead. (This also
  // closes the pre-existing race of accumulating into a block the
  // write-behind thread is concurrently writing to disk.)
  if (block.use_count() > 2) {
    ++stats_.cow_copies;
    auto copy = std::make_shared<Block>(block->shape());
    blas::copy(block->data(), copy->data());
    block = std::move(copy);
  }
  if (accumulate) {
    if (incoming) {
      blas::axpy(1.0, incoming->data(), block->data());
    } else {
      for (std::size_t i = 0; i < message.data.size(); ++i) {
        block->data()[i] += message.data[i];
      }
    }
  } else {
    if (incoming) {
      blas::copy(incoming->data(), block->data());
    } else {
      std::copy(message.data.begin(), message.data.end(),
                block->data().begin());
    }
  }
  cache_.put(id, block, /*dirty=*/true);
  reply_to_stolen(block);
}

void IoServer::apply_screened_prepare(msg::Message& message,
                                      const BlockId& id,
                                      std::int64_t linear) {
  ++stats_.prepares_screened;
  // Like a full replace prepare, the marker supersedes any disk read of
  // the block still in flight: bump the version so the read's completion
  // is discarded, and answer its waiters with the fresh (screened) state.
  ++prepare_versions_[id];
  std::vector<Waiter> stolen;
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    auto inflight = inflight_.find(id);
    if (inflight != inflight_.end()) {
      stolen = std::move(inflight->second.waiters);
      inflight_.erase(inflight);
    }
  }
  for (const Waiter& waiter : stolen) {
    send_screened_reply(waiter.reply_rank, id.array_id, linear,
                        waiter.lookahead, waiter.req_seq);
  }
  // Drop the cached pre-marker version; reads now answer from the map.
  // The marker also supersedes earlier prepares of this block still owed
  // a durability ack (their data will never retire now) — ack them along
  // with the marker itself, like handle_delete does for a deleted array.
  cache_.erase(id);
  WriteBehind::AckList acks = take_pending_acks(id.array_id, linear);
  if (ft_ && message.seq != 0) acks.push_back({message.src, message.seq});
  DiskStore& store = store_for(id.array_id);
  if (write_behind_.lookup(id.array_id, linear) != nullptr) {
    // An older version of the slot is queued (or mid-write) on the lanes.
    // A bare presence byte cannot be ordered against those writes, so the
    // replace ships as a real zero block through the same-slot FIFO: it
    // lands last and the slot ends up correct, merely un-elided for this
    // rare race.
    write_behind_.enqueue(&store, id.array_id, linear,
                          zero_block(shape_of(id)), std::move(acks));
    return;
  }
  store.record_screened(linear);
  if (!acks.empty()) {
    // Journal-before-ack needs the marker durable first: one presence
    // byte, one small pwrite. A screened block must never be "durable by
    // absence" — the respawned incarnation has to distinguish it from a
    // block that was never prepared.
    store.flush_map();
    ack_durable(acks);
  }
}

void IoServer::send_reply(int reply_rank, int array_id, std::int64_t linear,
                          BlockPtr block, bool lookahead,
                          std::uint64_t ack) {
  // Zero-copy reply: share the cached block. Later prepares copy-on-write
  // before mutating, so the requester's snapshot stays stable. The
  // look-ahead flag is echoed so the client can discard a speculative
  // reply made stale by its own intervening prepare without also
  // discarding the demand reply that supersedes it. Under the reliable
  // protocol the reply doubles as the request's ack (`ack` echoes its
  // sequence number): requests are idempotent, so a retransmitted request
  // is simply answered again rather than deduplicated.
  msg::Message reply;
  reply.tag = msg::kServedReply;
  reply.header = {array_id, linear, /*miss=*/0, lookahead ? 1 : 0};
  reply.ack = ack;
  reply.block = std::move(block);
  shared_.fabric->send(my_rank_, reply_rank, std::move(reply));
}

void IoServer::send_miss_reply(int reply_rank, int array_id,
                               std::int64_t linear, std::uint64_t ack) {
  // Look-ahead of a block that does not exist (yet): tell the client to
  // forget the speculative request instead of failing the run — the
  // demand request will follow if the program really reads the block.
  msg::Message reply;
  reply.tag = msg::kServedReply;
  reply.header = {array_id, linear, /*miss=*/1, /*lookahead=*/1};
  reply.ack = ack;
  shared_.fabric->send(my_rank_, reply_rank, std::move(reply));
}

void IoServer::send_screened_reply(int reply_rank, int array_id,
                                   std::int64_t linear, bool lookahead,
                                   std::uint64_t ack) {
  // Screened (or sparse-and-never-prepared) block: the client adopts the
  // canonical zero block, so no payload moves — a five-word header
  // replaces a full block reply.
  msg::Message reply;
  reply.tag = msg::kServedReply;
  reply.header = {array_id, linear, /*miss=*/1, lookahead ? 1 : 0,
                  /*screened=*/1};
  reply.ack = ack;
  shared_.fabric->send(my_rank_, reply_rank, std::move(reply));
}

void IoServer::read_job(BlockId id, DiskStore* store, std::int64_t linear,
                        const ServerComputeFn* generate, BlockShape shape,
                        std::array<long, blas::kMaxRank> first,
                        std::string array_name, std::uint64_t version) {
  Completion done;
  done.id = id;
  done.version = version;
  std::string error;
  try {
    // Allocate only once a disk read or generation is certain: coalesced
    // write-behind hits and look-ahead misses must not pay a max-block
    // heap allocation on the disk threads.
    if (BlockPtr pending = write_behind_.lookup(id.array_id, linear)) {
      // Enqueued for write after the miss was detected; serve the queued
      // version directly.
      done.block = std::move(pending);
    } else if (store->has(linear)) {
      auto block = std::make_shared<Block>(shape);
      store->read(linear, block->data().data(), block->size());
      done.from_disk = true;
      done.block = std::move(block);
    } else if (generate != nullptr) {
      auto block = std::make_shared<Block>(shape);
      (*generate)(*block, {first.data(), static_cast<std::size_t>(id.rank)});
      done.computed = true;
      done.block = std::move(block);
    }
  } catch (const std::exception& e) {
    error = e.what();
  }

  std::vector<Waiter> waiters;
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    auto it = inflight_.find(id);
    if (it != inflight_.end()) {
      waiters = std::move(it->second.waiters);
      inflight_.erase(it);
    }
  }

  if (!error.empty()) {
    shared_.raise_abort(error);
    return;
  }
  try {
    for (const Waiter& waiter : waiters) {
      if (done.block) {
        send_reply(waiter.reply_rank, id.array_id, linear, done.block,
                   waiter.lookahead, waiter.req_seq);
      } else if (waiter.lookahead) {
        send_miss_reply(waiter.reply_rank, id.array_id, linear,
                        waiter.req_seq);
      } else {
        shared_.raise_abort("request of served block " + id.to_string() +
                            " of '" + array_name +
                            "' that has never been prepared");
        return;
      }
    }
  } catch (const std::exception&) {
    // Fabric stopped mid-abort; nothing left to deliver.
    return;
  }
  {
    std::lock_guard<std::mutex> lock(completion_mutex_);
    completions_.push_back(std::move(done));
  }
}

std::uint64_t IoServer::version_of(const BlockId& id) const {
  auto it = prepare_versions_.find(id);
  return it == prepare_versions_.end() ? 0 : it->second;
}

void IoServer::drain_completions() {
  std::deque<Completion> done;
  {
    std::lock_guard<std::mutex> lock(completion_mutex_);
    done.swap(completions_);
  }
  for (Completion& completion : done) {
    if (completion.from_disk) ++stats_.disk_reads;
    if (completion.computed) ++stats_.computed;
    // Install only if no prepare landed while the read was in flight and
    // the cache has no newer entry: a stale clean disk image put over a
    // freshly prepared dirty block would drop the dirty flag and lose the
    // update at the next barrier (BlockCache::put replaces without
    // calling the victim handler).
    if (completion.block &&
        completion.version == version_of(completion.id) &&
        !cache_.contains(completion.id)) {
      cache_.put(completion.id, std::move(completion.block),
                 /*dirty=*/false);
    }
  }
}

void IoServer::handle_request(const msg::Message& message) {
  const int array_id = static_cast<int>(message.header[0]);
  const sial::ResolvedArray& array = shared_.program->array(array_id);
  const std::int64_t linear = message.header[1];
  const BlockId id =
      BlockId::from_linear(array_id, linear, array.num_segments);
  const int reply_rank = static_cast<int>(message.header[2]);
  const bool lookahead = message.header.size() > 3 && message.header[3] != 0;
  if (lookahead) {
    ++stats_.lookahead_requests;
  } else {
    ++stats_.requests;
  }

  if (BlockPtr block = cache_.get(id)) {
    ++stats_.cache_hits;
    send_reply(reply_rank, array_id, linear, std::move(block), lookahead,
               message.seq);
    return;
  }

  // Screening happens before any disk work: a block recorded screened —
  // or one of a sparse array that was never prepared at all, because
  // every contribution was dropped below threshold at its sender — is
  // answered with a norm-only reply. Prepares and the queue-feeding
  // eviction paths all run on this thread, so the presence/queue check
  // here cannot race a concurrent state change.
  if (screenable(array_id) &&
      write_behind_.lookup(array_id, linear) == nullptr) {
    DiskStore& store = store_for(array_id);
    if (store.is_screened(linear) ||
        (!store.has(linear) && generator_for(array_id) == nullptr)) {
      ++stats_.requests_screened;
      shared_.fabric->record_screened(
          my_rank_,
          static_cast<std::int64_t>(shape_of(id).element_count()));
      send_screened_reply(reply_rank, array_id, linear, lookahead,
                          message.seq);
      return;
    }
  }

  if (disk_pool_) {
    // Threaded path: coalesce onto an in-flight read or submit a new job.
    // The message loop goes straight back to servicing traffic; the disk
    // thread replies on completion.
    {
      std::lock_guard<std::mutex> lock(inflight_mutex_);
      auto it = inflight_.find(id);
      if (it != inflight_.end()) {
        it->second.waiters.push_back(
            Waiter{reply_rank, lookahead, message.seq});
        ++stats_.reads_coalesced;
        if (!lookahead && it->second.low_priority) {
          // A demand request caught up with a queued read-ahead: bump it.
          disk_pool_->promote({array_id, linear});
          it->second.low_priority = false;
        }
        return;
      }
      InflightRead read;
      read.waiters.push_back(Waiter{reply_rank, lookahead, message.seq});
      read.low_priority = lookahead;
      inflight_.emplace(id, std::move(read));
    }
    // Resolve everything the job needs on this thread — store/generator
    // tables and program metadata are not synchronized.
    DiskStore* store = &store_for(array_id);
    const ServerComputeFn* generate = generator_for(array_id);
    const BlockShape shape = shape_of(id);
    std::array<long, blas::kMaxRank> first{};
    if (generate != nullptr) {
      for (int d = 0; d < id.rank; ++d) {
        const std::size_t ud = static_cast<std::size_t>(d);
        const sial::ResolvedIndex& decl =
            shared_.program->index(array.index_ids[ud]);
        const int abs_seg = id.segments[ud] + array.seg_lo[ud] - 1;
        first[ud] = decl.segment_start(abs_seg);
      }
    }
    disk_pool_->submit(
        {array_id, linear},
        [this, id, store, linear, generate, shape, first,
         name = array.name, version = version_of(id)] {
          read_job(id, store, linear, generate, shape, first, name,
                   version);
        },
        /*low_priority=*/lookahead);
    return;
  }

  // Synchronous fallback (server_disk_threads == 0): the original
  // single-threaded service path.
  bool found = false;
  BlockPtr block = load_block(id, &found);
  if (!found) {
    // Computed served array? Generate the block on demand instead of
    // reading it from disk (paper §V-B).
    if (const ServerComputeFn* generate = generator_for(array_id)) {
      block = std::make_shared<Block>(shape_of(id));
      std::array<long, blas::kMaxRank> first{};
      for (int d = 0; d < id.rank; ++d) {
        const std::size_t ud = static_cast<std::size_t>(d);
        const sial::ResolvedIndex& decl = shared_.program->index(
            array.index_ids[ud]);
        const int abs_seg = id.segments[ud] + array.seg_lo[ud] - 1;
        first[ud] = decl.segment_start(abs_seg);
      }
      (*generate)(*block,
                  {first.data(), static_cast<std::size_t>(id.rank)});
      ++stats_.computed;
    } else if (lookahead) {
      send_miss_reply(reply_rank, array_id, linear, message.seq);
      return;
    } else {
      throw RuntimeError("request of served block " + id.to_string() +
                         " of '" + array.name +
                         "' that has never been prepared");
    }
  }
  cache_.put(id, block, /*dirty=*/false);
  send_reply(reply_rank, array_id, linear, std::move(block), lookahead,
             message.seq);
}

void IoServer::handle_delete(const msg::Message& message) {
  const int array_id = static_cast<int>(message.header[0]);
  // Let in-flight reads of the array finish before the state goes away
  // (a well-formed program separates reads from the delete with a
  // barrier, but the server must stay consistent regardless).
  if (disk_pool_) disk_pool_->drain();
  drain_completions();
  cache_.erase_array(array_id);
  // A late queued write must not resurrect the deleted array on disk:
  // drop its write-behind entries and its on-disk presence, and forget
  // its prepare conflict records. The delete supersedes any prepare of
  // this array still owed a durability ack (queued or in the cache), so
  // ack those directly — the workers' retransmit copies are moot now.
  WriteBehind::AckList superseded = write_behind_.cancel_array(array_id);
  for (auto it = pending_acks_.begin(); it != pending_acks_.end();) {
    if (it->first.first == array_id) {
      superseded.insert(superseded.end(), it->second.begin(),
                        it->second.end());
      it = pending_acks_.erase(it);
    } else {
      ++it;
    }
  }
  ack_durable(superseded);
  auto store = stores_.find(array_id);
  if (store != stores_.end()) store->second->erase_all();
  for (auto it = write_records_.begin(); it != write_records_.end();) {
    it = it->first.array_id == array_id ? write_records_.erase(it)
                                        : std::next(it);
  }
  for (auto it = prepare_versions_.begin();
       it != prepare_versions_.end();) {
    it = it->first.array_id == array_id ? prepare_versions_.erase(it)
                                        : std::next(it);
  }
}

void IoServer::flush() {
  if (disk_pool_) disk_pool_->drain();
  drain_completions();
  cache_.flush_dirty();
  write_behind_.drain();
  // Presence maps hit disk at least once per barrier even if the lanes
  // deferred them.
  for (auto& [array_id, store] : stores_) store->flush_map();
  // Everything is durable now — including presence-map markers from
  // screened evictions, whose acks deliberately wait for this flush. Any
  // other ack not carried out by a retiring batch goes out here too.
  if (ft_ && !pending_acks_.empty()) {
    WriteBehind::AckList leftovers;
    for (auto& [key, acks] : pending_acks_) {
      leftovers.insert(leftovers.end(), acks.begin(), acks.end());
    }
    pending_acks_.clear();
    ack_durable(leftovers);
  }
}

void IoServer::handle_barrier(const msg::Message& message) {
  flush();
  // flush() drained the disk pool and absorbed every completion, so no
  // in-flight read still carries a version stamp; reset the counters to
  // keep the table bounded by the blocks prepared per epoch.
  prepare_versions_.clear();
  ++epoch_;
  msg::Message ack;
  ack.tag = msg::kServerBarrierAck;
  ack.header = {message.header.empty() ? 0 : message.header[0]};
  shared_.fabric->send(my_rank_, shared_.master_rank(), std::move(ack));
}

// ---------------------------------------------------------------------
// Reliable protocol (fault tolerance).

WriteBehind::AckList IoServer::take_pending_acks(int array_id,
                                                 std::int64_t linear) {
  if (!ft_) return {};
  auto it = pending_acks_.find({array_id, linear});
  if (it == pending_acks_.end()) return {};
  WriteBehind::AckList acks = std::move(it->second);
  pending_acks_.erase(it);
  return acks;
}

void IoServer::send_ack(int dst, std::uint64_t seq) {
  msg::Message ack;
  ack.tag = msg::kProtoAck;
  ack.ack = seq;
  shared_.fabric->send(my_rank_, dst, std::move(ack));
}

void IoServer::ack_durable(const WriteBehind::AckList& acks) {
  if (acks.empty()) return;
  {
    std::lock_guard<std::mutex> lock(acked_mutex_);
    // Journal BEFORE acking: if the server dies between the two, the
    // worker retransmits, and the respawned incarnation finds the seq in
    // the journal and re-acks instead of double-applying an accumulate.
    // The reverse order would ack, crash, forget — and the retransmit
    // would accumulate a second time into the durable image.
    if (journal_fd_ >= 0) {
      std::vector<std::uint64_t> entries;
      entries.reserve(acks.size() * 2);
      for (const auto& [src, seq] : acks) {
        entries.push_back(static_cast<std::uint64_t>(src));
        entries.push_back(seq);
      }
      const std::size_t bytes = entries.size() * sizeof(std::uint64_t);
      if (write_full(journal_fd_, entries.data(), bytes) !=
          static_cast<ssize_t>(bytes)) {
        shared_.raise_abort("cannot append to server ack journal");
        return;
      }
    }
    for (const auto& pair : acks) acked_.insert(pair);
  }
  for (const auto& [src, seq] : acks) send_ack(src, seq);
}

void IoServer::load_ack_journal() {
  const std::string path = shared_.scratch_dir + "/server_" +
                           std::to_string(my_rank_) + ".ackjournal";
  journal_fd_ = retry_eintr([&] {
    return ::open(path.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  });
  if (journal_fd_ < 0) {
    throw RuntimeError("cannot open server ack journal " + path + ": " +
                       std::strerror(errno));
  }
  // Replay: every journaled (src, seq) is a prepare that is durably on
  // disk AND was acked (or was about to be). Marking it applied punches
  // the matching hole into the per-peer sequencer so the stream does not
  // stall waiting for a seq that will only ever arrive as a retransmit —
  // which must be re-acked, not re-applied.
  std::uint64_t pair[2];
  off_t offset = 0;
  for (;;) {
    const ssize_t got =
        pread_full(journal_fd_, pair, sizeof(pair), offset);
    if (got < static_cast<ssize_t>(sizeof(pair))) break;
    offset += got;
    const int src = static_cast<int>(pair[0]);
    acked_.insert({src, pair[1]});
    sequencer_.mark_applied(src, pair[1]);
  }
}

void IoServer::dispatch_data(msg::Message& message) {
  switch (message.tag) {
    case msg::kServedPrepare:
      handle_prepare(message, /*accumulate=*/false);
      break;
    case msg::kServedPrepareAcc:
      handle_prepare(message, /*accumulate=*/true);
      break;
    case msg::kServedRequest:
      handle_request(message);
      break;
    default:
      throw InternalError("sequencer released unexpected tag " +
                          std::to_string(message.tag));
  }
}

void IoServer::admit_prepare(msg::Message& message) {
  const int src = message.src;
  const std::uint64_t seq = message.seq;
  msg::PeerSequencer::Admit admitted =
      sequencer_.admit_ordered(std::move(message));
  if (admitted.duplicate) {
    // Retransmit. If the original is already durable (journaled), its ack
    // was lost in flight — re-ack so the worker stops retrying. If it is
    // still pending (in the cache or the write queue), stay silent: the
    // durability ack will go out when it retires.
    bool durable;
    {
      std::lock_guard<std::mutex> lock(acked_mutex_);
      durable = acked_.count({src, seq}) != 0;
    }
    if (durable) send_ack(src, seq);
    return;
  }
  for (msg::Message& released : admitted.deliver) dispatch_data(released);
}

void IoServer::crash_abandon() {
  // The rank "died": drop all dirty state without letting it reach disk,
  // so the durable files the respawned incarnation rebuilds from reflect
  // the moment of death, not a tidy shutdown. In-flight write batches on
  // the lanes may still land (a real crash can also land mid-write);
  // their acks are journaled but the sends are swallowed by the fabric.
  write_behind_.abandon();
  for (auto& [array_id, store] : stores_) store->abandon();
}

IoServer::Stats IoServer::stats() const {
  Stats merged = stats_;
  merged.disk_writes = write_behind_.writes();
  merged.write_batches = write_behind_.batches();
  merged.dup_msgs_dropped += sequencer_.duplicates_dropped();
  for (const auto& [array_id, store] : stores_) {
    merged.map_flushes += store->map_flushes();
  }
  return merged;
}

std::unordered_map<int, std::pair<std::int64_t, std::int64_t>>
IoServer::presence() const {
  std::unordered_map<int, std::pair<std::int64_t, std::int64_t>> census;
  for (const auto& [array_id, store] : stores_) {
    census.emplace(array_id, std::make_pair(store->screened_count(),
                                            store->present_count()));
  }
  return census;
}

void IoServer::run() {
  try {
    while (true) {
      if (shared_.fabric->killed(my_rank_)) {
        // Simulated crash (chaos fabric): die without flushing. The
        // master's watchdog notices the missing heartbeats and respawns
        // this rank from its durable files.
        crash_abandon();
        return;
      }
      shared_.check_abort();
      drain_completions();
      auto message = shared_.fabric->recv_for(my_rank_, 50);
      if (!message.has_value()) continue;
      switch (message->tag) {
        case msg::kServedPrepare:
        case msg::kServedPrepareAcc:
          if (ft_ && message->seq != 0) {
            admit_prepare(*message);
          } else {
            handle_prepare(*message,
                           message->tag == msg::kServedPrepareAcc);
          }
          break;
        case msg::kServedRequest:
          if (ft_ && message->seq != 0) {
            // Requests are idempotent but may depend on an ordered
            // prepare still in flight (msg.ack): hold them until the
            // dependency is applied, then service.
            msg::PeerSequencer::Admit admitted =
                sequencer_.admit_after(std::move(*message));
            for (msg::Message& released : admitted.deliver) {
              dispatch_data(released);
            }
          } else {
            handle_request(*message);
          }
          break;
        case msg::kServerBarrierEnter:
          handle_barrier(*message);
          break;
        case msg::kServedDelete:
          handle_delete(*message);
          break;
        case msg::kServerFlushHint:
          // A worker is parked on unacked prepares (e.g. at a barrier):
          // force the dirty blocks to disk so their durability acks go
          // out now instead of at the next LRU eviction.
          flush();
          break;
        case msg::kHeartbeatPing: {
          msg::Message pong;
          pong.tag = msg::kHeartbeatAck;
          pong.header = {message->header.empty() ? 0 : message->header[0],
                         my_rank_};
          shared_.fabric->send(my_rank_, shared_.master_rank(),
                               std::move(pong));
          break;
        }
        case msg::kShutdown:
          flush();
          return;
        case msg::kAbort:
          // Another rank's fatal error relayed by the master (the only
          // way the news reaches a spawned server process). Do not
          // flush: mirror the thread-mode abort path, where stop() cuts
          // the run short with write-behind state in flight.
          shared_.raise_abort(abort_text(*message));
          break;  // check_abort exits via Aborted next iteration
        default:
          throw InternalError("I/O server received unexpected tag " +
                              std::to_string(message->tag));
      }
    }
  } catch (const Aborted&) {
    // Another rank failed; exit quietly.
  } catch (const std::exception& error) {
    shared_.raise_abort(error.what());
  }
}

}  // namespace sia::sip
