#include "sip/io_server.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "blas/elementwise.hpp"
#include "common/log.hpp"
#include "msg/tags.hpp"

namespace sia::sip {

// ---------------------------------------------------------------------
// DiskStore.

DiskStore::DiskStore(const std::string& dir, const std::string& array_name,
                     std::size_t slot_doubles, std::int64_t num_blocks)
    : slot_doubles_(slot_doubles),
      present_(static_cast<std::size_t>(num_blocks), 0) {
  const std::string data_path = dir + "/" + array_name + ".srv";
  const std::string map_path = dir + "/" + array_name + ".map";
  fd_ = ::open(data_path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) {
    throw RuntimeError("cannot open served array file " + data_path + ": " +
                       std::strerror(errno));
  }
  map_fd_ = ::open(map_path.c_str(), O_RDWR | O_CREAT, 0644);
  if (map_fd_ < 0) {
    ::close(fd_);
    throw RuntimeError("cannot open served array map " + map_path);
  }
  // Load existing presence map (persistence across SIP runs).
  const ssize_t got =
      ::pread(map_fd_, present_.data(), present_.size(), 0);
  if (got < 0) {
    throw RuntimeError("cannot read served array map " + map_path);
  }
  for (std::size_t i = static_cast<std::size_t>(got); i < present_.size();
       ++i) {
    present_[i] = 0;
  }
}

DiskStore::~DiskStore() {
  if (fd_ >= 0) ::close(fd_);
  if (map_fd_ >= 0) ::close(map_fd_);
}

bool DiskStore::has(std::int64_t linear) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return present_[static_cast<std::size_t>(linear)] != 0;
}

void DiskStore::read(std::int64_t linear, double* out,
                     std::size_t count) const {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (present_[static_cast<std::size_t>(linear)] == 0) {
      throw RuntimeError("disk read of absent served block");
    }
  }
  const off_t offset =
      static_cast<off_t>(linear) *
      static_cast<off_t>(slot_doubles_ * sizeof(double));
  const std::size_t bytes = count * sizeof(double);
  const ssize_t got = ::pread(fd_, out, bytes, offset);
  if (got != static_cast<ssize_t>(bytes)) {
    throw RuntimeError("short read from served array file");
  }
}

void DiskStore::write(std::int64_t linear, const double* data,
                      std::size_t count) {
  SIA_CHECK(count <= slot_doubles_, "served block exceeds disk slot");
  const off_t offset =
      static_cast<off_t>(linear) *
      static_cast<off_t>(slot_doubles_ * sizeof(double));
  const std::size_t bytes = count * sizeof(double);
  if (::pwrite(fd_, data, bytes, offset) != static_cast<ssize_t>(bytes)) {
    throw RuntimeError("short write to served array file");
  }
  const char one = 1;
  if (::pwrite(map_fd_, &one, 1, static_cast<off_t>(linear)) != 1) {
    throw RuntimeError("cannot update served array map");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  present_[static_cast<std::size_t>(linear)] = 1;
  ++blocks_written_;
}

// ---------------------------------------------------------------------
// WriteBehind.

WriteBehind::WriteBehind() : thread_([this] { run(); }) {}

WriteBehind::~WriteBehind() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void WriteBehind::enqueue(DiskStore* store, int array_id,
                          std::int64_t linear, BlockPtr block) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const Key key{array_id, linear};
    pending_[key] = block;
    queue_.push_back(Item{store, key, std::move(block)});
  }
  cv_.notify_all();
}

BlockPtr WriteBehind::lookup(int array_id, std::int64_t linear) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = pending_.find(Key{array_id, linear});
  return it == pending_.end() ? nullptr : it->second;
}

void WriteBehind::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return queue_.empty() && !in_flight_; });
}

std::int64_t WriteBehind::writes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return writes_;
}

void WriteBehind::run() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_) return;
      continue;
    }
    Item item = std::move(queue_.front());
    queue_.pop_front();
    in_flight_ = true;
    lock.unlock();
    item.store->write(item.key.second, item.block->data().data(),
                      item.block->size());
    lock.lock();
    in_flight_ = false;
    ++writes_;
    // Remove from the pending map only if it still refers to this block
    // (a newer version may have been enqueued meanwhile).
    auto it = pending_.find(item.key);
    if (it != pending_.end() && it->second == item.block) {
      pending_.erase(it);
    }
    cv_.notify_all();
  }
}

// ---------------------------------------------------------------------
// ServerComputeRegistry.

ServerComputeRegistry& ServerComputeRegistry::global() {
  static ServerComputeRegistry registry;
  return registry;
}

void ServerComputeRegistry::register_generator(const std::string& name,
                                               ServerComputeFn fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  table_[name] = std::move(fn);
}

const ServerComputeFn* ServerComputeRegistry::lookup(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = table_.find(name);
  return it == table_.end() ? nullptr : &it->second;
}

// ---------------------------------------------------------------------
// IoServer.

IoServer::IoServer(SipShared& shared, int my_rank)
    : shared_(shared), my_rank_(my_rank),
      cache_(shared.config.server_cache_bytes / sizeof(double),
             [this](const BlockId& id, const BlockPtr& block, bool dirty) {
               if (!dirty) return;
               const sial::ResolvedArray& array =
                   shared_.program->array(id.array_id);
               write_behind_.enqueue(&store_for(id.array_id), id.array_id,
                                     id.linearize(array.num_segments),
                                     block);
             }) {}

DiskStore& IoServer::store_for(int array_id) {
  auto it = stores_.find(array_id);
  if (it == stores_.end()) {
    const sial::ResolvedArray& array = shared_.program->array(array_id);
    it = stores_
             .emplace(array_id, std::make_unique<DiskStore>(
                                    shared_.scratch_dir, array.name,
                                    array.max_block_elements,
                                    array.total_blocks))
             .first;
  }
  return *it->second;
}

const ServerComputeFn* IoServer::generator_for(int array_id) {
  auto it = generators_.find(array_id);
  if (it == generators_.end()) {
    GeneratorSlot slot;
    slot.resolved = true;
    const std::string& name = shared_.program->array(array_id).name;
    auto cfg = shared_.config.computed_served.find(name);
    if (cfg != shared_.config.computed_served.end()) {
      slot.fn = ServerComputeRegistry::global().lookup(cfg->second);
      if (slot.fn == nullptr) {
        throw RuntimeError("computed served array '" + name +
                           "' refers to unregistered generator '" +
                           cfg->second + "'");
      }
    }
    it = generators_.emplace(array_id, slot).first;
  }
  return it->second.fn;
}

BlockShape IoServer::shape_of(const BlockId& id) const {
  const sial::ResolvedArray& array = shared_.program->array(id.array_id);
  return shared_.program->grid_block_shape(
      array, {id.segments.data(), static_cast<std::size_t>(id.rank)});
}

BlockPtr IoServer::load_block(const BlockId& id, bool* found) {
  const sial::ResolvedArray& array = shared_.program->array(id.array_id);
  const std::int64_t linear = id.linearize(array.num_segments);

  // Still sitting in the write-behind queue?
  if (BlockPtr pending = write_behind_.lookup(id.array_id, linear)) {
    *found = true;
    return pending;
  }
  DiskStore& store = store_for(id.array_id);
  if (!store.has(linear)) {
    *found = false;
    return nullptr;
  }
  ++stats_.disk_reads;
  auto block = std::make_shared<Block>(shape_of(id));
  store.read(linear, block->data().data(), block->size());
  *found = true;
  return block;
}

void IoServer::handle_prepare(msg::Message& message, bool accumulate) {
  ++stats_.prepares;
  const int array_id = static_cast<int>(message.header[0]);
  const sial::ResolvedArray& array = shared_.program->array(array_id);
  const BlockId id =
      BlockId::from_linear(array_id, message.header[1], array.num_segments);
  const int writer = static_cast<int>(message.header[2]);

  WriteRecord& record = write_records_[id];
  if (record.epoch == epoch_) {
    if (record.accumulate != accumulate) {
      throw RuntimeError("conflicting prepare and prepare+= on block " +
                         id.to_string() + " of '" + array.name +
                         "' without a server_barrier");
    }
    if (!accumulate && record.writer != writer) {
      throw RuntimeError("two workers prepared block " + id.to_string() +
                         " of '" + array.name +
                         "' without a server_barrier");
    }
  }
  record.epoch = epoch_;
  record.writer = writer;
  record.accumulate = accumulate;

  BlockPtr incoming = std::move(message.block);
  const std::size_t incoming_size =
      incoming ? incoming->size() : message.data.size();
  if (incoming_size != shape_of(id).element_count()) {
    throw RuntimeError("prepare shape mismatch for " + id.to_string());
  }

  if (!accumulate && incoming && incoming.use_count() == 1) {
    // Replace with an exclusively owned payload: adopt it outright — no
    // allocation, no unpack copy. The cache entry swap leaves any shared
    // snapshot (earlier zero-copy reply) untouched for its holders.
    cache_.put(id, std::move(incoming), /*dirty=*/true);
    return;
  }

  BlockPtr block = cache_.get(id);
  if (!block) {
    if (accumulate) {
      bool found = false;
      block = load_block(id, &found);
      if (!found) block = std::make_shared<Block>(shape_of(id));
    } else {
      block = std::make_shared<Block>(shape_of(id));
    }
  } else {
    ++stats_.cache_hits;
  }
  // Copy-on-write before mutating: `block` is referenced by the cache and
  // by this local variable; any further reference means a zero-copy reply
  // snapshot, a write-behind queue entry, or a worker-side adopted copy
  // is watching the storage, so mutate a private copy instead. (This also
  // closes the pre-existing race of accumulating into a block the
  // write-behind thread is concurrently writing to disk.)
  if (block.use_count() > 2) {
    ++stats_.cow_copies;
    auto copy = std::make_shared<Block>(block->shape());
    blas::copy(block->data(), copy->data());
    block = std::move(copy);
  }
  if (accumulate) {
    if (incoming) {
      blas::axpy(1.0, incoming->data(), block->data());
    } else {
      for (std::size_t i = 0; i < message.data.size(); ++i) {
        block->data()[i] += message.data[i];
      }
    }
  } else {
    if (incoming) {
      blas::copy(incoming->data(), block->data());
    } else {
      std::copy(message.data.begin(), message.data.end(),
                block->data().begin());
    }
  }
  cache_.put(id, std::move(block), /*dirty=*/true);
}

void IoServer::handle_request(const msg::Message& message) {
  ++stats_.requests;
  const int array_id = static_cast<int>(message.header[0]);
  const sial::ResolvedArray& array = shared_.program->array(array_id);
  const BlockId id =
      BlockId::from_linear(array_id, message.header[1], array.num_segments);
  const int reply_rank = static_cast<int>(message.header[2]);

  BlockPtr block = cache_.get(id);
  if (block) {
    ++stats_.cache_hits;
  } else {
    bool found = false;
    block = load_block(id, &found);
    if (!found) {
      // Computed served array? Generate the block on demand instead of
      // reading it from disk (paper §V-B).
      if (const ServerComputeFn* generate = generator_for(array_id)) {
        block = std::make_shared<Block>(shape_of(id));
        std::array<long, blas::kMaxRank> first{};
        for (int d = 0; d < id.rank; ++d) {
          const std::size_t ud = static_cast<std::size_t>(d);
          const sial::ResolvedIndex& decl = shared_.program->index(
              array.index_ids[ud]);
          const int abs_seg = id.segments[ud] + array.seg_lo[ud] - 1;
          first[ud] = decl.segment_start(abs_seg);
        }
        (*generate)(*block,
                    {first.data(), static_cast<std::size_t>(id.rank)});
        ++stats_.computed;
      } else {
        throw RuntimeError("request of served block " + id.to_string() +
                           " of '" + array.name +
                           "' that has never been prepared");
      }
    }
    cache_.put(id, block, /*dirty=*/false);
  }

  // Zero-copy reply: share the cached block. Later prepares copy-on-write
  // before mutating, so the requester's snapshot stays stable.
  msg::Message reply;
  reply.tag = msg::kServedReply;
  reply.header = {array_id, message.header[1]};
  reply.block = std::move(block);
  shared_.fabric->send(my_rank_, reply_rank, std::move(reply));
}

void IoServer::flush() {
  cache_.flush_dirty();
  write_behind_.drain();
}

void IoServer::handle_barrier(const msg::Message& message) {
  flush();
  ++epoch_;
  msg::Message ack;
  ack.tag = msg::kServerBarrierAck;
  ack.header = {message.header.empty() ? 0 : message.header[0]};
  shared_.fabric->send(my_rank_, shared_.master_rank(), std::move(ack));
}

void IoServer::run() {
  try {
    while (true) {
      shared_.check_abort();
      auto message = shared_.fabric->recv_for(my_rank_, 50);
      if (!message.has_value()) continue;
      switch (message->tag) {
        case msg::kServedPrepare:
          handle_prepare(*message, /*accumulate=*/false);
          break;
        case msg::kServedPrepareAcc:
          handle_prepare(*message, /*accumulate=*/true);
          break;
        case msg::kServedRequest:
          handle_request(*message);
          break;
        case msg::kServerBarrierEnter:
          handle_barrier(*message);
          break;
        case msg::kServedDelete: {
          const int array_id = static_cast<int>(message->header[0]);
          cache_.erase_array(array_id);
          break;
        }
        case msg::kShutdown:
          flush();
          return;
        default:
          throw InternalError("I/O server received unexpected tag " +
                              std::to_string(message->tag));
      }
    }
  } catch (const Aborted&) {
    // Another rank failed; exit quietly.
  } catch (const std::exception& error) {
    shared_.raise_abort(error.what());
  }
}

}  // namespace sia::sip
