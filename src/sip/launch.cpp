#include "sip/launch.hpp"

#include <algorithm>
#include <filesystem>
#include <thread>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "sial/compiler.hpp"
#include "sip/interpreter.hpp"
#include "sip/io_server.hpp"
#include "sip/shared.hpp"
#include "sip/superinstr.hpp"

namespace sia::sip {

double RunResult::scalar(const std::string& name) const {
  auto it = scalars.find(name);
  if (it == scalars.end()) {
    throw Error("run result has no scalar named '" + name + "'");
  }
  return it->second;
}

Sip::Sip(SipConfig config) : config_(std::move(config)) {
  config_.validate();
  register_builtin_superinstructions();
  if (config_.scratch_dir.empty()) {
    // Unique directory under the system temp dir.
    const auto base = std::filesystem::temp_directory_path();
    const std::uint64_t tag =
        splitmix64(static_cast<std::uint64_t>(wall_seconds() * 1e9) ^
                   reinterpret_cast<std::uintptr_t>(this));
    scratch_dir_ = (base / ("sia_" + std::to_string(tag))).string();
    std::filesystem::create_directories(scratch_dir_);
    owns_scratch_ = true;
  } else {
    scratch_dir_ = config_.scratch_dir;
    std::filesystem::create_directories(scratch_dir_);
  }
}

Sip::~Sip() {
  if (owns_scratch_) {
    std::error_code ec;
    std::filesystem::remove_all(scratch_dir_, ec);
  }
}

RunResult Sip::run_source(const std::string& source) {
  return run(sial::compile_sial(source));
}

DryRunReport Sip::analyze(const sial::CompiledProgram& program) const {
  const sial::ResolvedProgram resolved(program, config_);
  return dry_run(resolved);
}

RunResult Sip::run(const sial::CompiledProgram& program) {
  const sial::ResolvedProgram resolved(program, config_);

  // "The master inspects the SIAL program in dry-run mode" before any
  // resources are committed (paper §V-B).
  RunResult result;
  result.dry_run = dry_run(resolved);
  if (config_.dry_run_only) return result;
  if (!result.dry_run.feasible) {
    throw InfeasibleError(
        "program '" + program.name + "' needs " +
            std::to_string(result.dry_run.per_worker_bytes() / 1024) +
            " KiB per worker but only " +
            std::to_string(config_.worker_memory_bytes / 1024) +
            " KiB are configured",
        result.dry_run.workers_needed);
  }

  msg::Fabric fabric(config_.total_ranks());
  SipShared shared;
  shared.program = &resolved;
  shared.fabric = &fabric;
  shared.config = config_;
  shared.scratch_dir = scratch_dir_;
  shared.pool_plan = result.dry_run.pool_plan;

  Master master(shared);
  std::vector<std::unique_ptr<Interpreter>> workers;
  workers.reserve(static_cast<std::size_t>(config_.workers));
  for (int w = 0; w < config_.workers; ++w) {
    workers.push_back(std::make_unique<Interpreter>(shared, w));
  }
  std::vector<std::unique_ptr<IoServer>> servers;
  servers.reserve(static_cast<std::size_t>(config_.io_servers));
  for (int s = 0; s < config_.io_servers; ++s) {
    servers.push_back(
        std::make_unique<IoServer>(shared, 1 + config_.workers + s));
  }

  std::vector<std::thread> threads;
  threads.emplace_back([&master] { master.run(); });
  for (auto& worker : workers) {
    threads.emplace_back([&worker] { worker->run(); });
  }
  for (auto& server : servers) {
    threads.emplace_back([&server] { server->run(); });
  }
  for (std::thread& thread : threads) thread.join();

  {
    std::lock_guard<std::mutex> lock(shared.error_mutex);
    if (!shared.first_error.empty()) {
      throw RuntimeError(shared.first_error);
    }
  }

  // Collect results.
  for (std::size_t s = 0; s < program.scalars.size(); ++s) {
    result.scalars[program.scalars[s].name] =
        workers.front()->data().scalar(static_cast<int>(s));
  }
  result.traffic = fabric.total_stats();

  // Aggregate profiles: per-pc costs summed over workers, elapsed is the
  // slowest worker, waits summed.
  std::map<int, ProfileReport::LineCost> line_costs;
  std::map<int, ProfileReport::PardoCost> pardo_costs;
  for (const auto& worker : workers) {
    const Profiler& profiler = worker->profiler();
    for (const auto& [pc, entry] : profiler.instructions()) {
      ProfileReport::LineCost& cost = line_costs[pc];
      cost.line = entry.line;
      cost.opcode = entry.opcode;
      cost.count += entry.count;
      cost.seconds += entry.seconds;
      result.profile.total_busy += entry.seconds;
    }
    for (const auto& [pardo_id, entry] : profiler.pardos()) {
      ProfileReport::PardoCost& cost = pardo_costs[pardo_id];
      cost.pardo_id = pardo_id;
      const auto& info =
          program.pardos[static_cast<std::size_t>(pardo_id)];
      cost.line = info.start_pc >= 0
                      ? program.code[static_cast<std::size_t>(info.start_pc)]
                            .line
                      : 0;
      cost.iterations += entry.iterations;
      cost.elapsed += entry.elapsed;
      cost.wait += entry.wait;
    }
    result.profile.total_wait += profiler.total_wait();
    result.profile.block_wait += profiler.wait_for(WaitKind::kBlock);
    result.profile.served_wait += profiler.wait_for(WaitKind::kServed);
    result.profile.chunk_wait += profiler.wait_for(WaitKind::kChunk);
    result.profile.barrier_wait += profiler.wait_for(WaitKind::kBarrier);
    result.profile.collective_wait +=
        profiler.wait_for(WaitKind::kCollective);
    result.profile.worker_block_wait.push_back(profiler.block_wait());
    result.profile.total_elapsed =
        std::max(result.profile.total_elapsed, profiler.total_elapsed());
  }
  // total_busy currently includes wait time spent inside instructions;
  // report busy as compute-only.
  result.profile.total_busy =
      std::max(0.0, result.profile.total_busy - result.profile.total_wait);
  for (const auto& [pc, cost] : line_costs) {
    result.profile.lines.push_back(cost);
  }
  std::sort(result.profile.lines.begin(), result.profile.lines.end(),
            [](const auto& a, const auto& b) { return a.seconds > b.seconds; });
  for (const auto& [id, cost] : pardo_costs) {
    result.profile.pardos.push_back(cost);
  }

  for (const auto& worker : workers) {
    const DistArrayManager::Stats& stats = worker->dist().stats();
    result.workers.gets_issued += stats.gets_issued;
    result.workers.gets_local += stats.gets_local;
    result.workers.gets_cached += stats.gets_cached;
    result.workers.implicit_gets += stats.implicit_gets;
    result.workers.puts_remote += stats.puts_remote;
    result.workers.puts_local += stats.puts_local;
    result.workers.puts_coalesced += stats.puts_coalesced;
    result.workers.coalesce_flushes += stats.coalesce_flushes;
    const ServedArrayClient::Stats& served = worker->served().stats();
    result.workers.prepares_coalesced += served.prepares_coalesced;
    result.workers.coalesce_flushes += served.coalesce_flushes;
    result.profile.served.client_requests_issued += served.requests_issued;
    result.profile.served.client_requests_cached += served.requests_cached;
    result.profile.served.client_lookahead_issued += served.lookahead_issued;
    result.profile.served.client_lookahead_misses += served.lookahead_misses;
    result.profile.served.client_lookahead_promoted +=
        served.lookahead_promoted;
    const BlockCache::Stats cache = worker->dist().cache_stats();
    result.workers.cache_hits += cache.hits;
    result.workers.cache_misses += cache.misses;
    result.workers.cache_evictions += cache.evictions;
    result.workers.pool_heap_fallbacks += static_cast<std::int64_t>(
        worker->pool().stats().heap_fallbacks);
    result.workers.peak_local_doubles =
        std::max(result.workers.peak_local_doubles,
                 worker->data().peak_doubles());
  }
  for (const auto& server : servers) {
    const IoServer::Stats stats = server->stats();
    ProfileReport::ServedPipeline& served = result.profile.served;
    served.server_requests += stats.requests;
    served.server_lookahead_requests += stats.lookahead_requests;
    served.server_cache_hits += stats.cache_hits;
    served.server_disk_reads += stats.disk_reads;
    served.server_disk_writes += stats.disk_writes;
    served.reads_coalesced += stats.reads_coalesced;
    served.write_batches += stats.write_batches;
    served.map_flushes += stats.map_flushes;
    served.computed += stats.computed;
  }
  return result;
}

}  // namespace sia::sip
