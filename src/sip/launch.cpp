#include "sip/launch.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <thread>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "sial/compiler.hpp"
#include "sial/opt/optimizer.hpp"
#include "msg/socket_fabric.hpp"
#include "sip/interpreter.hpp"
#include "sip/io_server.hpp"
#include "sip/shared.hpp"
#include "sip/spawn.hpp"
#include "sip/superinstr.hpp"

namespace sia::sip {

double RunResult::scalar(const std::string& name) const {
  auto it = scalars.find(name);
  if (it == scalars.end()) {
    throw Error("run result has no scalar named '" + name + "'");
  }
  return it->second;
}

Sip::Sip(SipConfig config) : config_(std::move(config)) {
  config_.validate();
  register_builtin_superinstructions();
  if (config_.scratch_dir.empty()) {
    // Unique directory under the system temp dir.
    const auto base = std::filesystem::temp_directory_path();
    const std::uint64_t tag =
        splitmix64(static_cast<std::uint64_t>(wall_seconds() * 1e9) ^
                   reinterpret_cast<std::uintptr_t>(this));
    scratch_dir_ = (base / ("sia_" + std::to_string(tag))).string();
    std::filesystem::create_directories(scratch_dir_);
    owns_scratch_ = true;
  } else {
    scratch_dir_ = config_.scratch_dir;
    std::filesystem::create_directories(scratch_dir_);
  }
}

Sip::~Sip() {
  if (owns_scratch_) {
    std::error_code ec;
    std::filesystem::remove_all(scratch_dir_, ec);
  }
}

RunResult Sip::run_source(const std::string& source) {
  pending_source_ = source;
  try {
    RunResult result = run(sial::compile_sial(source));
    pending_source_.clear();
    return result;
  } catch (...) {
    pending_source_.clear();
    throw;
  }
}

DryRunReport Sip::analyze(const sial::CompiledProgram& program) const {
  const sial::ResolvedProgram resolved(
      sial::opt::optimize(program, config_.opt_level).program, config_);
  return dry_run(resolved);
}

namespace {

// SIA_AUTOTUNE wins over config.autotune in both directions, so test
// suites can force planning off (or on) without touching code.
bool autotune_enabled(const SipConfig& config) {
  if (const char* env = std::getenv("SIA_AUTOTUNE")) {
    if (env[0] == '0' && env[1] == '\0') return false;
    if (env[0] == '1' && env[1] == '\0') return true;
  }
  return config.autotune;
}

// Mean served block size, for turning the servers' block-count disk
// counters into an observed-bandwidth estimate.
double avg_served_block_bytes(const sial::ResolvedProgram& resolved) {
  std::size_t elements = 0;
  std::int64_t blocks = 0;
  for (const sial::ResolvedArray& array : resolved.arrays()) {
    if (array.kind != sial::ArrayKind::kServed) continue;
    elements += array.total_elements;
    blocks += array.total_blocks;
  }
  if (blocks <= 0) return 0.0;
  return static_cast<double>(elements) * sizeof(double) /
         static_cast<double>(blocks);
}

}  // namespace

RunResult Sip::run(const sial::CompiledProgram& program) {
  // Fault-plan pickup: an explicit plan in the config wins; otherwise
  // SIA_FAULT_PLAN lets a harness inject faults without touching code.
  if (!config_.fault_plan.active()) {
    config_.fault_plan = FaultPlan::from_env();
    config_.fault_plan.validate();
  }
  // Transport pickup, same precedence: SIA_TRANSPORT=loopback|spawn runs
  // any existing suite over the socket fabric without touching code
  // (e.g. SIA_TRANSPORT=loopback ctest -R 'test_opt|test_sparse' for the
  // bit-identity suites over the wire codec).
  if (config_.transport == "thread") {
    if (const char* env = std::getenv("SIA_TRANSPORT")) {
      config_.transport = env;
      config_.validate();
    }
  }
  // The mid-end runs between the compiler and program finalization; at
  // -O0 `optimize` returns an untouched copy.
  sial::CompiledProgram optimized =
      sial::opt::optimize(program, config_.opt_level).program;

  // Launch-time autotuning: sweep the knobs through the DES model and
  // apply the winning plan to config_ *before* resolution, so segment
  // size takes effect and spawn mode ships the tuned values in its
  // bundle (children never re-plan: autotune is not serialized).
  ProfileReport::Plan plan_record;
  Calibration calibration;
  std::string cal_path;
  double measured_gflops = 0.0;
  if (autotune_enabled(config_) && !config_.dry_run_only) {
    cal_path = calibration_path(config_);
    calibration = Calibration::load(cal_path);
    measured_gflops = measure_gemm_gflops();
    Calibration plan_cal = calibration;
    plan_cal.gemm_gflops =
        calibration.runs > 0
            ? 0.5 * calibration.gemm_gflops + 0.5 * measured_gflops
            : measured_gflops;
    const PlanChoice choice =
        plan_launch(optimized, config_, plan_cal, HostModel{});
    config_ = choice.config;
    plan_record.planned = true;
    plan_record.calibrated = choice.calibrated;
    plan_record.predicted_seconds = choice.predicted_seconds;
    plan_record.candidates = choice.candidates;
    plan_record.summary = choice.summary;
    plan_record.pinned = choice.pinned;
  }

  const sial::ResolvedProgram resolved(std::move(optimized), config_);

  // "The master inspects the SIAL program in dry-run mode" before any
  // resources are committed (paper §V-B).
  RunResult result;
  result.dry_run = dry_run(resolved);
  if (config_.dry_run_only) return result;
  if (!result.dry_run.feasible) {
    throw InfeasibleError(
        "program '" + program.name + "' needs " +
            std::to_string(result.dry_run.per_worker_bytes() / 1024) +
            " KiB per worker but only " +
            std::to_string(config_.worker_memory_bytes / 1024) +
            " KiB are configured",
        result.dry_run.workers_needed);
  }

  // Closes the autotuning loop after execution: records predicted vs
  // actual in the profile and folds the run's observed rates back into
  // the calibration file that seeds the next plan.
  const double block_bytes = avg_served_block_bytes(resolved);
  auto finish_plan = [&](RunResult& r, double actual_seconds) {
    if (!plan_record.planned) return;
    plan_record.actual_seconds = actual_seconds;
    r.profile.plan = plan_record;
    const double bytes_moved =
        static_cast<double>(r.traffic.payload_doubles_sent) * sizeof(double);
    const double disk_bytes =
        static_cast<double>(r.profile.served.server_disk_reads +
                            r.profile.served.server_disk_writes) *
        block_bytes;
    update_calibration(&calibration, plan_record.predicted_seconds,
                       actual_seconds, measured_gflops, bytes_moved,
                       r.traffic.messages_sent, disk_bytes);
    calibration.save(cal_path);  // best effort; a read-only HOME is fine
  };

  // Spawn mode: every worker and I/O-server rank is its own OS process
  // wired to this process's socket hub. The children recompile the SIAL
  // source, so only run_source() launches can spawn.
  if (config_.spawn_processes()) {
    if (pending_source_.empty()) {
      throw Error(
          "transport=spawn requires run_source(): spawned ranks recompile "
          "the SIAL source, which run(CompiledProgram) does not carry");
    }
    const double spawn_start = wall_seconds();
    RunResult spawned = run_spawned(config_, scratch_dir_, pending_source_,
                                    resolved, std::move(result));
    finish_plan(spawned, wall_seconds() - spawn_start);
    return spawned;
  }

  // Screened-kernel counter is process-global; delta it across the run.
  const std::uint64_t kernels_screened_before = kernels_screened_count();
  const double exec_start = wall_seconds();

  const bool fault_tolerant = config_.fault_tolerance_enabled();
  // Transport: plain in-process mailboxes, or the loopback socket fabric
  // that frames every cross-rank message over a real socketpair (the
  // transport-parity mode socket tests and benches use). Fault plans
  // decorate either with the chaos layer.
  std::unique_ptr<msg::Fabric> fabric;
  if (config_.socket_transport()) {
    msg::SocketOptions sopts;
    sopts.role = msg::SocketOptions::Role::kLoopback;
    sopts.connect_timeout_ms = config_.connect_timeout_ms;
    fabric =
        std::make_unique<msg::SocketFabric>(config_.total_ranks(), sopts);
  } else {
    fabric = std::make_unique<msg::Fabric>(config_.total_ranks());
  }
  if (config_.fault_plan.active()) {
    fabric = std::make_unique<msg::ChaosFabric>(std::move(fabric),
                                                config_.fault_plan);
  }
  std::unique_ptr<msg::DiskFaultInjector> disk_injector;
  if (config_.fault_plan.disk_fault != 0) {
    disk_injector = std::make_unique<msg::DiskFaultInjector>(config_.fault_plan);
  }

  SipShared shared;
  shared.program = &resolved;
  shared.fabric = fabric.get();
  shared.config = config_;
  shared.scratch_dir = scratch_dir_;
  shared.pool_plan = result.dry_run.pool_plan;
  shared.disk_injector = disk_injector.get();
  shared.init_rank_status(config_.total_ranks());

  if (fault_tolerant) {
    // A respawned server replays its ack journal to rebuild its dedup
    // window. A journal left over from an earlier run in the same scratch
    // dir would poison that replay, so each run starts clean; only
    // respawns within the run append.
    for (int s = 0; s < config_.io_servers; ++s) {
      const int rank = 1 + config_.workers + s;
      std::error_code ec;
      std::filesystem::remove(
          std::filesystem::path(scratch_dir_) /
              ("server_" + std::to_string(rank) + ".ackjournal"),
          ec);
    }
  }

  Master master(shared);
  std::vector<std::unique_ptr<Interpreter>> workers;
  workers.reserve(static_cast<std::size_t>(config_.workers));
  for (int w = 0; w < config_.workers; ++w) {
    workers.push_back(std::make_unique<Interpreter>(shared, w));
  }
  std::vector<std::unique_ptr<IoServer>> servers;
  servers.reserve(static_cast<std::size_t>(config_.io_servers));
  for (int s = 0; s < config_.io_servers; ++s) {
    servers.push_back(
        std::make_unique<IoServer>(shared, 1 + config_.workers + s));
  }

  std::vector<std::thread> threads;
  // The respawn closure indexes `threads` by rank from the master's
  // heartbeat thread. Size the vector once and fill it by rank with the
  // master started last, so every write happens-before the master thread
  // exists; after launch only the master mutates it, and the join loop
  // reads the other slots only after the master (joined first) exits.
  threads.resize(static_cast<std::size_t>(config_.total_ranks()));
  if (fault_tolerant && config_.server_recovery) {
    shared.respawn_server = [&](int rank) -> bool {
      const int s = rank - 1 - config_.workers;
      if (s < 0 || s >= static_cast<int>(servers.size())) return false;
      const std::size_t t = static_cast<std::size_t>(rank);
      if (t >= threads.size()) return false;
      if (threads[t].joinable()) threads[t].join();
      // Harvest the dead incarnation's counters before destroying it; the
      // end-of-run aggregation only sees the live incarnation.
      const IoServer::Stats old = servers[s]->stats();
      shared.retired_server_dups += old.dup_msgs_dropped;
      shared.retired_server_requests += old.requests;
      shared.retired_server_lookahead_requests += old.lookahead_requests;
      shared.retired_server_cache_hits += old.cache_hits;
      shared.retired_server_disk_reads += old.disk_reads;
      shared.retired_server_disk_writes += old.disk_writes;
      shared.retired_server_reads_coalesced += old.reads_coalesced;
      shared.retired_server_write_batches += old.write_batches;
      shared.retired_server_map_flushes += old.map_flushes;
      shared.retired_server_computed += old.computed;
      // The dead incarnation abandoned its stores, so destroying it cannot
      // clobber the durable files. The fresh server rebuilds from those
      // files and the ack journal; clients' retransmits refill the rest.
      servers[s].reset();
      servers[s] = std::make_unique<IoServer>(shared, rank);
      fabric->revive(rank);
      threads[t] = std::thread([srv = servers[s].get()] { srv->run(); });
      return true;
    };
  }
  for (int w = 0; w < config_.workers; ++w) {
    Interpreter* interp = workers[static_cast<std::size_t>(w)].get();
    threads[static_cast<std::size_t>(1 + w)] =
        std::thread([interp] { interp->run(); });
  }
  for (int s = 0; s < config_.io_servers; ++s) {
    IoServer* srv = servers[static_cast<std::size_t>(s)].get();
    threads[static_cast<std::size_t>(1 + config_.workers + s)] =
        std::thread([srv] { srv->run(); });
  }
  threads[0] = std::thread([&master] { master.run(); });
  for (std::thread& thread : threads) thread.join();
  const double exec_seconds = wall_seconds() - exec_start;

  {
    std::lock_guard<std::mutex> lock(shared.error_mutex);
    if (!shared.first_error.empty()) {
      throw RuntimeError(shared.first_error);
    }
  }

  // Collect results.
  for (std::size_t s = 0; s < resolved.code().scalars.size(); ++s) {
    result.scalars[resolved.code().scalars[s].name] =
        workers.front()->data().scalar(static_cast<int>(s));
  }
  result.traffic = fabric->total_stats();

  // Aggregate profiles: per-pc costs summed over workers, elapsed is the
  // slowest worker, waits summed.
  std::map<int, ProfileReport::LineCost> line_costs;
  std::map<int, ProfileReport::PardoCost> pardo_costs;
  for (const auto& worker : workers) {
    const Profiler& profiler = worker->profiler();
    for (const auto& [pc, entry] : profiler.instructions()) {
      ProfileReport::LineCost& cost = line_costs[pc];
      cost.line = entry.line;
      cost.opcode = entry.opcode;
      cost.count += entry.count;
      cost.seconds += entry.seconds;
      result.profile.total_busy += entry.seconds;
    }
    for (const auto& [pardo_id, entry] : profiler.pardos()) {
      ProfileReport::PardoCost& cost = pardo_costs[pardo_id];
      cost.pardo_id = pardo_id;
      const auto& info =
          resolved.code().pardos[static_cast<std::size_t>(pardo_id)];
      cost.line =
          info.start_pc >= 0
              ? resolved.code()
                    .code[static_cast<std::size_t>(info.start_pc)]
                    .line
              : 0;
      cost.iterations += entry.iterations;
      cost.elapsed += entry.elapsed;
      cost.wait += entry.wait;
    }
    result.profile.total_wait += profiler.total_wait();
    result.profile.block_wait += profiler.wait_for(WaitKind::kBlock);
    result.profile.served_wait += profiler.wait_for(WaitKind::kServed);
    result.profile.chunk_wait += profiler.wait_for(WaitKind::kChunk);
    result.profile.barrier_wait += profiler.wait_for(WaitKind::kBarrier);
    result.profile.collective_wait +=
        profiler.wait_for(WaitKind::kCollective);
    result.profile.worker_block_wait.push_back(profiler.block_wait());
    result.profile.total_elapsed =
        std::max(result.profile.total_elapsed, profiler.total_elapsed());
    if (const DataflowExecutor* executor = worker->executor()) {
      ProfileReport::Executor& agg = result.profile.executor;
      const DataflowExecutor::Stats& stats = executor->stats();
      agg.threads = std::max(agg.threads, executor->threads());
      agg.tasks_executed += stats.tasks_executed;
      agg.entries_retired += stats.entries_retired;
      agg.hazard_stalls += stats.hazard_stalls;
      agg.raw_deps += stats.raw_deps;
      agg.war_deps += stats.war_deps;
      agg.waw_deps += stats.waw_deps;
      agg.operand_stalls += stats.operand_stalls;
      agg.drains += stats.drains;
      agg.window_peak = std::max(agg.window_peak, stats.window_peak);
      agg.occupancy_sum += stats.occupancy_sum;
      agg.occupancy_samples += stats.occupancy_samples;
      agg.drain_wait_seconds += stats.drain_wait_seconds;
      for (const double busy : stats.thread_busy_seconds) {
        agg.thread_busy_seconds += busy;
      }
    }
  }
  // total_busy currently includes wait time spent inside instructions;
  // report busy as compute-only.
  result.profile.total_busy =
      std::max(0.0, result.profile.total_busy - result.profile.total_wait);
  for (const auto& [pc, cost] : line_costs) {
    result.profile.lines.push_back(cost);
  }
  std::sort(result.profile.lines.begin(), result.profile.lines.end(),
            [](const auto& a, const auto& b) { return a.seconds > b.seconds; });
  for (const auto& [id, cost] : pardo_costs) {
    result.profile.pardos.push_back(cost);
  }

  for (const auto& worker : workers) {
    const DistArrayManager::Stats& stats = worker->dist().stats();
    result.workers.gets_issued += stats.gets_issued;
    result.workers.gets_local += stats.gets_local;
    result.workers.gets_cached += stats.gets_cached;
    result.workers.implicit_gets += stats.implicit_gets;
    result.workers.puts_remote += stats.puts_remote;
    result.workers.puts_local += stats.puts_local;
    result.workers.puts_coalesced += stats.puts_coalesced;
    result.workers.coalesce_flushes += stats.coalesce_flushes;
    const ServedArrayClient::Stats& served = worker->served().stats();
    result.workers.prepares_coalesced += served.prepares_coalesced;
    result.workers.coalesce_flushes += served.coalesce_flushes;
    result.profile.served.client_requests_issued += served.requests_issued;
    result.profile.served.client_requests_cached += served.requests_cached;
    result.profile.served.client_lookahead_issued += served.lookahead_issued;
    result.profile.served.client_lookahead_misses += served.lookahead_misses;
    result.profile.served.client_lookahead_promoted +=
        served.lookahead_promoted;
    const BlockCache::Stats cache = worker->dist().cache_stats();
    result.workers.cache_hits += cache.hits;
    result.workers.cache_misses += cache.misses;
    result.workers.cache_evictions += cache.evictions;
    result.workers.pool_heap_fallbacks += static_cast<std::int64_t>(
        worker->pool().stats().heap_fallbacks);
    result.workers.peak_local_doubles =
        std::max(result.workers.peak_local_doubles,
                 worker->data().peak_doubles());
    if (const msg::ReliableChannel* channel = worker->channel()) {
      result.profile.robustness.retries_sent += channel->stats().retries_sent;
      result.profile.robustness.acks_timed_out +=
          channel->stats().acks_timed_out;
    }
    result.profile.robustness.dup_msgs_dropped +=
        worker->sequencer().duplicates_dropped();
  }
  for (const auto& server : servers) {
    const IoServer::Stats stats = server->stats();
    ProfileReport::ServedPipeline& served = result.profile.served;
    served.server_requests += stats.requests;
    served.server_lookahead_requests += stats.lookahead_requests;
    served.server_cache_hits += stats.cache_hits;
    served.server_disk_reads += stats.disk_reads;
    served.server_disk_writes += stats.disk_writes;
    served.reads_coalesced += stats.reads_coalesced;
    served.write_batches += stats.write_batches;
    served.map_flushes += stats.map_flushes;
    served.computed += stats.computed;
    result.profile.robustness.dup_msgs_dropped += stats.dup_msgs_dropped;
  }
  {
    // Counters harvested from server incarnations retired by a respawn.
    ProfileReport::ServedPipeline& served = result.profile.served;
    served.server_requests += shared.retired_server_requests.load();
    served.server_lookahead_requests +=
        shared.retired_server_lookahead_requests.load();
    served.server_cache_hits += shared.retired_server_cache_hits.load();
    served.server_disk_reads += shared.retired_server_disk_reads.load();
    served.server_disk_writes += shared.retired_server_disk_writes.load();
    served.reads_coalesced += shared.retired_server_reads_coalesced.load();
    served.write_batches += shared.retired_server_write_batches.load();
    served.map_flushes += shared.retired_server_map_flushes.load();
    served.computed += shared.retired_server_computed.load();
    result.profile.robustness.dup_msgs_dropped +=
        shared.retired_server_dups.load();
  }
  ProfileReport::Robustness& robustness = result.profile.robustness;
  robustness.heartbeats_missed = master.stats().heartbeats_missed;
  robustness.server_recoveries = master.stats().server_recoveries;
  ProfileReport::Scheduling& scheduling = result.profile.scheduling;
  scheduling.chunks_served = master.stats().chunks_served;
  scheduling.steal_attempts = master.stats().steal_attempts;
  scheduling.steals_granted = master.stats().steals_granted;
  scheduling.stolen_iterations = master.stats().stolen_iterations;
  scheduling.worker_iterations = master.stats().worker_iterations;
  robustness.sends_after_stop = result.traffic.sends_after_stop;
  if (const auto* chaos =
          dynamic_cast<const msg::ChaosFabric*>(fabric.get())) {
    const msg::ChaosStats faults = chaos->chaos_stats();
    robustness.faults_dropped = faults.drops;
    robustness.faults_duplicated = faults.dups;
    robustness.faults_delayed = faults.delays;
    robustness.faults_reordered = faults.reorders;
    robustness.faults_kill_swallowed = faults.kill_swallowed;
  }
  if (disk_injector) {
    robustness.faults_disk = disk_injector->faults_injected();
  }

  // Norm-based screening: fabric elisions, worker/server counters, and a
  // per-array census of blocks that never materialized.
  ProfileReport::Screening& screening = result.profile.screening;
  screening.threshold = config_.sparse_threshold;
  screening.blocks_screened = result.traffic.blocks_screened;
  screening.bytes_elided = result.traffic.bytes_elided;
  screening.kernels_screened = static_cast<std::int64_t>(
      kernels_screened_count() - kernels_screened_before);
  std::map<int, std::int64_t> dist_resident;   // array_id -> home blocks
  std::map<int, std::int64_t> served_present;  // array_id -> data blocks
  for (const auto& worker : workers) {
    const DistArrayManager::Stats& dist = worker->dist().stats();
    screening.puts_screened += dist.puts_screened;
    screening.gets_screened += dist.gets_screened;
    screening.zero_reads += dist.zero_reads;
    const ServedArrayClient::Stats& served = worker->served().stats();
    screening.prepares_screened += served.prepares_screened;
    screening.zero_reads += served.zero_reads;
    for (const auto& [id, block] : worker->dist().home_blocks()) {
      ++dist_resident[id.array_id];
    }
  }
  for (const auto& server : servers) {
    const IoServer::Stats stats = server->stats();
    screening.requests_screened += stats.requests_screened;
    screening.evictions_screened += stats.evictions_screened;
    for (const auto& [array_id, census] : server->presence()) {
      // Blocks with real bytes on disk; screened markers read as zero.
      served_present[array_id] += census.second - census.first;
    }
  }
  if (config_.sparse_threshold > 0.0) {
    const auto& arrays = resolved.arrays();
    for (std::size_t a = 0; a < arrays.size(); ++a) {
      const sial::ResolvedArray& array = arrays[a];
      if (!array.sparse) continue;
      ProfileReport::Screening::ArrayCensus census;
      census.name = array.name;
      census.total = array.total_blocks;
      const int id = static_cast<int>(a);
      // A sparse array's screened population is everything that never
      // materialized: blocks replaced by norm markers plus blocks whose
      // every contribution was dropped at the sender.
      if (array.kind == sial::ArrayKind::kDistributed) {
        auto it = dist_resident.find(id);
        census.screened =
            census.total - (it == dist_resident.end() ? 0 : it->second);
      } else {
        auto it = served_present.find(id);
        census.screened =
            census.total - (it == served_present.end() ? 0 : it->second);
      }
      screening.arrays.push_back(std::move(census));
    }
  }
  finish_plan(result, exec_seconds);
  return result;
}

PlanChoice Sip::plan(const sial::CompiledProgram& program) const {
  Calibration calibration = Calibration::load(calibration_path(config_));
  const double measured = measure_gemm_gflops();
  calibration.gemm_gflops =
      calibration.runs > 0
          ? 0.5 * calibration.gemm_gflops + 0.5 * measured
          : measured;
  return plan_launch(sial::opt::optimize(program, config_.opt_level).program,
                     config_, calibration, HostModel{});
}

}  // namespace sia::sip
