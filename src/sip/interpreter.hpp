// The SIP worker: a bytecode interpreter over the message fabric.
//
// "Each worker loops through the instruction table executing bytecode
// instructions, periodically checking for messages and processing them"
// (paper §V-B). This interpreter services its mailbox between
// instructions and while blocked, which is what makes the fully
// asynchronous protocol deadlock-free: a worker waiting for a block keeps
// answering other workers' get requests.
//
// Waits are instrumented: any time spent blocked on a block, a chunk, a
// barrier release, or a collective is recorded as wait time against the
// enclosing pardo loop (paper §VI-B).
#pragma once

#include <array>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "block/block_pool.hpp"
#include "msg/reliable.hpp"
#include "sip/data_manager.hpp"
#include "sip/executor.hpp"
#include "sip/dist_array.hpp"
#include "sip/prefetch.hpp"
#include "sip/profiler.hpp"
#include "sip/served_array.hpp"
#include "sip/shared.hpp"
#include "sip/superinstr.hpp"

namespace sia::sip {

class Interpreter {
 public:
  // `worker_index` is 0-based; the fabric rank is 1 + worker_index.
  Interpreter(SipShared& shared, int worker_index);

  // Executes the program from pc 0 to kHalt. Exceptions abort the whole
  // launch; the method itself never throws.
  void run();

  // Post-run access for result collection and tests.
  DataManager& data() { return *data_; }
  DistArrayManager& dist() { return *dist_; }
  ServedArrayClient& served() { return *served_; }
  BlockPool& pool() { return *pool_; }
  Profiler& profiler() { return profiler_; }
  int worker_index() const { return worker_index_; }
  // Null when worker_threads resolves to 0 (legacy serial path).
  const DataflowExecutor* executor() const { return executor_.get(); }
  // Null when the reliable protocol is off.
  const msg::ReliableChannel* channel() const { return channel_.get(); }
  const msg::PeerSequencer& sequencer() const { return sequencer_; }

 private:
  struct Frame {
    enum class Kind { kDo, kPardo };
    Kind kind = Kind::kDo;
    int start_pc = -1;
    int end_pc = -1;
    // do loops.
    int index_id = -1;
    long current = 0;
    long last = 0;
    // pardo loops.
    int pardo_id = -1;
    std::int64_t instance = 0;
    std::vector<std::int64_t> filtered;  // surviving raw linear positions
    std::int64_t chunk_begin = 0, chunk_end = 0;
    std::int64_t pos = 0;  // next position within [chunk_begin, chunk_end)
    double started_at = 0.0;
  };

  // ------------------------------------------------------------------
  // Execution.
  void execute_program();
  // Executes the instruction at pc_; advances pc_.
  void step();

  void exec_pardo_start(const sial::Instruction& instr);
  void exec_pardo_end(const sial::Instruction& instr);
  void exec_do_start(const sial::Instruction& instr);
  void exec_do_end(const sial::Instruction& instr);
  void exec_block_scalar_op(const sial::Instruction& instr);
  void exec_block_copy(const sial::Instruction& instr);
  void exec_block_binary(const sial::Instruction& instr);
  void exec_block_scaled_copy(const sial::Instruction& instr);
  void exec_get(const sial::Instruction& instr);
  void exec_request(const sial::Instruction& instr);
  // Optimizer-hoisted loop-invariant fetch (kPrefetch): non-blocking
  // get/request with a zero-trip guard on the hoisted loop's bounds.
  void exec_prefetch(const sial::Instruction& instr);
  // Snapshot of the enclosing do/pardo loops, innermost first, for
  // prefetch_candidates (shared by exec_get and exec_request look-ahead).
  std::vector<LoopContext> loop_contexts() const;
  // Issues the asynchronous fetch for every distributed/served block
  // operand of `instr` starting at `first_block` (plus execute args), so
  // all replies are in flight before the first blocking read (wait-any).
  // Gated by config.batch_gets.
  void batch_issue_gets(const sial::Instruction& instr,
                        std::size_t first_block);
  void exec_put(const sial::Instruction& instr);
  void exec_prepare(const sial::Instruction& instr);
  void exec_allocate(const sial::Instruction& instr, bool allocate);
  void exec_execute(const sial::Instruction& instr);
  void exec_barrier(bool server);
  void exec_collective(const sial::Instruction& instr);
  void exec_checkpoint(const sial::Instruction& instr, bool restore);

  // ------------------------------------------------------------------
  // Dataflow executor (worker_threads >= 1): decode-at-enqueue window.
  //
  // The interpreter thread scans ahead over the straight-line region,
  // resolving selectors and binding local block pointers *in program
  // order* (decode-time binding renames destinations, so captures behave
  // like serial snapshots), then hands the heavy block work to the pool.
  // Scalar and control-flow opcodes still execute at scan time — they
  // never enter the window, which is what lets the window span inner
  // do-loop iterations.

  // Per-entry closure state shared by decode, execute, and retire.
  struct WindowOp {
    sial::BlockSelector dst_selector;
    BlockPtr dst;        // unsliced destination binding
    BlockPtr container;  // sliced destination: containing block
    std::array<BlockPtr, 4> src{};        // operand base blocks
    std::array<sial::BlockSelector, 4> src_sel{};
    BlockPtr put_payload;  // produced by execute, shipped by retire
  };

  // Decodes a block compute op (copy/binary/scaled-copy/scalar-op) into
  // a window entry. `scalar0` is the operand popped at scan time.
  void window_block_op(const sial::Instruction& instr, double scalar0);
  // Decodes put/prepare: permute on the pool, send at retire.
  void window_put(const sial::Instruction& instr, bool served);
  // Binds source operand `slot` of a window entry: local-kind blocks
  // resolve immediately; distributed/served blocks either hit the cache
  // or become PendingOperands (with the fetch issued now unless an
  // un-retired window put targets the same block).
  void bind_read_operand(DataflowExecutor::Entry& entry,
                         const std::shared_ptr<WindowOp>& op,
                         const sial::BlockOperand& operand,
                         std::size_t slot);
  // Pump-time operand resolution (interpreter thread): returns the block
  // once available, nullptr while in flight, throws when it can never
  // arrive. Defers while one of our own window puts targets `id`.
  BlockPtr resolve_dist_operand(const BlockId& id);
  BlockPtr resolve_served_operand(const BlockId& id);
  // Shared look-ahead prediction (see prefetch.hpp): the candidates for
  // `operand`'s next iterations, minus blocks an un-retired window put
  // targets. Empty when prefetch_depth is 0.
  std::vector<BlockId> lookahead_candidates(
      const sial::BlockOperand& operand) const;
  // Pool-thread body shared by all windowed block compute entries.
  void run_window_block_op(const sial::Instruction& instr, WindowOp& op,
                           double scalar0);
  // Enqueues, first making room in the window (pumping retires and
  // servicing the fabric while it is full).
  void enqueue_entry(DataflowExecutor::Entry entry);
  // Blocks until the window is empty: every entry executed and retired.
  // Required before any operation whose semantics assume the serial
  // machine state (barriers, collectives, pardo-iteration boundaries,
  // super instructions, allocate/create/delete, block-dot).
  void drain_window();

  // Requests the next chunk for the frame; false when the pardo is done.
  bool pardo_request_chunk(Frame& frame);
  // Starts the next iteration in the current chunk (or next chunk);
  // false when no iterations remain.
  bool pardo_advance(Frame& frame);
  void set_pardo_indices(const Frame& frame, std::int64_t raw);
  void clear_pardo_indices(const Frame& frame);

  // ------------------------------------------------------------------
  // Blocks.
  sial::BlockSelector resolve(const sial::BlockOperand& operand) const;
  // Effective (possibly sliced) read of an operand; waits for remote
  // blocks, servicing messages meanwhile.
  BlockPtr read_operand(const sial::BlockOperand& operand);
  // The stored block behind a selector, fetching remote ones.
  BlockPtr fetch_base_block(const sial::BlockSelector& selector);
  // Destination handling: calls `compute(dst_block)` with the effective
  // destination; `needs_existing` preloads current content (+=, -=, *=).
  void with_write_block(const sial::BlockSelector& selector,
                        bool needs_existing,
                        const std::function<void(Block&)>& compute);
  // Permutes `src` (with src_ids) into the id order of dst_ids; returns
  // `src` itself when the order already matches.
  BlockPtr permuted_for(BlockPtr src, std::span<const int> src_ids,
                        std::span<const int> dst_ids,
                        const BlockShape& dst_shape);

  static std::span<const int> ids_of(const sial::BlockOperand& operand) {
    return {operand.index_ids.data(),
            static_cast<std::size_t>(operand.rank)};
  }

  // ------------------------------------------------------------------
  // Messaging and waiting.
  void service_messages();
  // Mutable reference: block payloads are adopted out of the message.
  void handle_message(msg::Message& message);
  // Reliable protocol: route an admitted data-plane message (put or get
  // request released by the sequencer) to its handler, acking puts.
  void dispatch_admitted(msg::Message& message);
  // Blocks until every tracked send is acked. Ordered sends to I/O
  // servers are nudged with flush hints (their durability acks only go
  // out when the dirty block hits disk). Must run before any barrier
  // enter: the barrier protocol assumes all data-plane traffic landed.
  void drain_channel();
  // Services messages until `ready` returns true; accounts wait time
  // against the enclosing pardo, bucketed by what was awaited.
  void wait_until(const std::function<bool()>& ready, const char* what,
                  WaitKind kind);
  int current_pardo_id() const;

  // ------------------------------------------------------------------
  // Scalar stack.
  double pop();
  void push(double value);

  SipShared& shared_;
  int worker_index_;
  int my_rank_;
  const sial::ResolvedProgram& program_;
  Profiler profiler_;

  std::unique_ptr<BlockPool> pool_;
  std::unique_ptr<DataManager> data_;
  std::unique_ptr<DistArrayManager> dist_;
  std::unique_ptr<ServedArrayClient> served_;
  // Reliable delivery (fault tolerance): tracked sends with retransmit,
  // and exactly-once admission of incoming puts. Null/idle when off.
  std::unique_ptr<msg::ReliableChannel> channel_;
  msg::PeerSequencer sequencer_;

  int pc_ = 0;
  bool exiting_loop_ = false;
  std::vector<double> stack_;
  std::vector<Frame> frames_;
  std::vector<int> call_stack_;  // return pcs

  // Protocol bookkeeping.
  std::map<int, std::int64_t> pardo_instance_;  // per pardo id
  std::int64_t barrier_seq_ = 0;
  std::int64_t collective_seq_ = 0;
  // Kind of the barrier currently awaited; the epoch advance must happen
  // the moment the release message is *handled*, because later messages
  // in the same service batch already belong to the new epoch.
  bool pending_barrier_server_ = false;
  // Replies captured by handle_message, consumed by waiting code.
  std::map<std::pair<int, std::int64_t>, std::pair<std::int64_t, std::int64_t>>
      chunk_replies_;               // (pardo, instance) -> [begin, end)
  std::map<std::int64_t, bool> barrier_released_;
  std::map<std::int64_t, double> collective_results_;

  // Resolved super instruction functions by table id.
  std::vector<const SuperInstructionFn*> superinstructions_;

  // Un-retired window put/prepare counts per destination block: scan-time
  // gets and operand binds for these ids defer until the put's retire has
  // actually sent (or locally applied) the data, preserving
  // read-your-own-write ordering across the window.
  std::unordered_map<BlockId, int, BlockIdHash> window_put_targets_;
  // Declared last: entries hold closures over the managers above, so the
  // executor (and its pool threads) must die first.
  std::unique_ptr<DataflowExecutor> executor_;
};

}  // namespace sia::sip
