#include "sip/master.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/log.hpp"
#include "msg/tags.hpp"
#include "sip/spawn.hpp"

namespace sia::sip {

// ---------------------------------------------------------------------
// Dry run.

namespace {

std::size_t bytes(std::size_t doubles) { return doubles * sizeof(double); }

}  // namespace

DryRunReport dry_run(const sial::ResolvedProgram& program) {
  const SipConfig& config = program.config();
  const sial::CompiledProgram& code = program.code();
  DryRunReport report;
  report.worker_budget_bytes = config.worker_memory_bytes;

  // Static arrays: fully replicated on every worker.
  std::set<std::size_t> class_sizes;
  for (const sial::ResolvedArray& array : program.arrays()) {
    class_sizes.insert(array.max_block_elements);
    switch (array.kind) {
      case sial::ArrayKind::kStatic:
        report.static_bytes += bytes(array.total_elements);
        break;
      case sial::ArrayKind::kDistributed:
        report.dist_total_bytes += bytes(array.total_elements);
        break;
      case sial::ArrayKind::kServed:
        report.served_total_bytes += bytes(array.total_elements);
        break;
      default:
        break;
    }
  }

  // Walk the code: temp working sets per pardo region, local allocations,
  // and remote-block cache demand (gets/requests times prefetch depth).
  std::set<int> temp_arrays_in_region;
  std::size_t region_remote_doubles = 0;
  std::size_t temp_peak = 0, cache_peak = 0;
  int pardo_depth = 0;

  auto close_region = [&] {
    std::size_t temp_doubles = 0;
    for (const int array_id : temp_arrays_in_region) {
      // Two buffers per temp array: current block plus one being built.
      temp_doubles += 2 * program.array(array_id).max_block_elements;
    }
    temp_peak = std::max(temp_peak, temp_doubles);
    cache_peak = std::max(cache_peak, region_remote_doubles);
    temp_arrays_in_region.clear();
    region_remote_doubles = 0;
  };

  for (const sial::Instruction& instr : code.code) {
    switch (instr.op) {
      case sial::Opcode::kPardoStart:
        ++pardo_depth;
        break;
      case sial::Opcode::kPardoEnd:
        if (--pardo_depth == 0) close_region();
        break;
      case sial::Opcode::kGet:
      case sial::Opcode::kRequest:
      case sial::Opcode::kPrefetch: {
        const sial::ResolvedArray& array =
            program.array(instr.blocks[0].array_id);
        region_remote_doubles +=
            (1 + static_cast<std::size_t>(config.prefetch_depth)) *
            array.max_block_elements;
        break;
      }
      case sial::Opcode::kAllocate: {
        const sial::ResolvedArray& array =
            program.array(instr.blocks[0].array_id);
        std::size_t doubles = 1;
        for (int d = 0; d < array.rank(); ++d) {
          const sial::ResolvedIndex& index =
              program.index(array.index_ids[static_cast<std::size_t>(d)]);
          const bool wildcard =
              instr.blocks[0].index_ids[static_cast<std::size_t>(d)] ==
              sial::kWildcardIndex;
          doubles *= wildcard
                         ? static_cast<std::size_t>(index.high - index.low + 1)
                         : static_cast<std::size_t>(index.segment_size);
        }
        report.local_bytes += bytes(doubles);
        break;
      }
      default:
        break;
    }
    // Any temp operand contributes to the enclosing region.
    for (const sial::BlockOperand& operand : instr.blocks) {
      if (program.array(operand.array_id).kind == sial::ArrayKind::kTemp) {
        if (pardo_depth > 0) {
          temp_arrays_in_region.insert(operand.array_id);
        } else {
          temp_peak = std::max(
              temp_peak,
              2 * program.array(operand.array_id).max_block_elements);
        }
      }
    }
  }
  close_region();

  report.temp_peak_bytes = bytes(temp_peak);
  report.cache_demand_bytes = bytes(cache_peak);
  report.dist_share_bytes =
      report.dist_total_bytes / static_cast<std::size_t>(config.workers);

  report.feasible = report.per_worker_bytes() <= report.worker_budget_bytes;
  if (!report.feasible) {
    const std::size_t fixed = report.static_bytes + report.temp_peak_bytes +
                              report.local_bytes + report.cache_demand_bytes;
    if (fixed >= report.worker_budget_bytes) {
      report.workers_needed = 0;  // no worker count can fit the fixed part
    } else {
      const std::size_t head = report.worker_budget_bytes - fixed;
      report.workers_needed = static_cast<int>(
          (report.dist_total_bytes + head - 1) / head);
    }
  } else {
    report.workers_needed = config.workers;
  }

  // Pool plan: one size class per distinct maximal block size. Slot
  // counts cover the temp/cache working sets with margin; the pool's heap
  // fallback (instrumented) covers the rest.
  for (const std::size_t size : class_sizes) {
    if (size == 0) continue;
    const std::size_t budget_doubles =
        report.worker_budget_bytes / sizeof(double);
    std::size_t slots =
        budget_doubles / (size * std::max<std::size_t>(class_sizes.size(), 1));
    slots = std::clamp<std::size_t>(slots, 2, 64);
    report.pool_plan[size] = slots;
  }
  return report;
}

std::string DryRunReport::to_string() const {
  std::ostringstream out;
  auto mb = [](std::size_t b) {
    return std::to_string(b / 1024) + " KiB";
  };
  out << "=== SIP dry run ===\n";
  out << "per-worker budget:     " << mb(worker_budget_bytes) << "\n";
  out << "static (replicated):   " << mb(static_bytes) << "\n";
  out << "temp working set:      " << mb(temp_peak_bytes) << "\n";
  out << "local allocations:     " << mb(local_bytes) << "\n";
  out << "remote block cache:    " << mb(cache_demand_bytes) << "\n";
  out << "distributed share:     " << mb(dist_share_bytes) << " (of "
      << mb(dist_total_bytes) << " total)\n";
  out << "served arrays (disk):  " << mb(served_total_bytes) << "\n";
  out << "per-worker total:      " << mb(per_worker_bytes()) << "\n";
  if (feasible) {
    out << "feasible with the configured workers\n";
  } else if (workers_needed > 0) {
    out << "INFEASIBLE; would need at least " << workers_needed
        << " workers\n";
  } else {
    out << "INFEASIBLE at any worker count (fixed per-node costs exceed "
           "the budget)\n";
  }
  return out.str();
}

// ---------------------------------------------------------------------
// Master protocol loop.

Master::Master(SipShared& shared)
    : shared_(shared),
      schedules_(shared.config.workers, shared.config.chunk_divisor,
                 shared.config.min_chunk),
      work_stealing_(shared.config.work_stealing &&
                     shared.config.workers > 1),
      outstanding_(static_cast<std::size_t>(shared.config.workers)) {
  stats_.worker_iterations.assign(
      static_cast<std::size_t>(shared.config.workers), 0);
}

void Master::send_chunk_reply(int rank, const ChunkKey& key,
                              std::int64_t begin, std::int64_t end) {
  msg::Message reply;
  reply.tag = msg::kChunkReply;
  reply.header = {key.pardo_id, key.instance, begin, end};
  shared_.fabric->send(shared_.master_rank(), rank, std::move(reply));
}

void Master::handle_chunk_request(const msg::Message& message) {
  const int pardo_id = static_cast<int>(message.header[0]);
  const std::int64_t instance = message.header[1];
  const std::int64_t total = message.header[2];
  const ChunkKey key{pardo_id, instance};

  // A new request means the worker finished whatever it held.
  const std::size_t wi = static_cast<std::size_t>(message.src - 1);
  if (wi < outstanding_.size()) {
    outstanding_[wi].valid = false;
    outstanding_[wi].steal_failed = false;
  }

  bool mismatch = false;
  GuidedSchedule* schedule =
      schedules_.get_or_create(pardo_id, instance, total, &mismatch);
  if (mismatch) {
    throw RuntimeError(
        "workers disagree about the iteration count of pardo " +
        std::to_string(pardo_id) +
        " (divergent control flow between workers?)");
  }
  // A range orphaned by a steal whose thief was already answered is
  // served before the schedule (it came out of the schedule originally).
  auto spare = spare_.find(key);
  if (spare != spare_.end() && !spare->second.empty()) {
    const auto [sb, se] = spare->second.back();
    spare->second.pop_back();
    if (spare->second.empty()) spare_.erase(spare);
    if (wi < outstanding_.size()) {
      outstanding_[wi] = {key, sb, se, true, false};
      stats_.worker_iterations[wi] += se - sb;
    }
    send_chunk_reply(message.src, key, sb, se);
    return;
  }
  const auto [begin, end] = schedule->next_chunk();
  if (begin < end) {
    ++stats_.chunks_served;
    if (wi < outstanding_.size()) {
      outstanding_[wi] = {key, begin, end, true, false};
      stats_.worker_iterations[wi] += end - begin;
    }
    send_chunk_reply(message.src, key, begin, end);
    return;
  }
  if (!work_stealing_) {
    schedules_.retire(pardo_id, instance);
    send_chunk_reply(message.src, key, begin, end);
    return;
  }
  // Schedule exhausted: before answering "done", try to reassign the
  // tail of another worker's outstanding chunk. The reply is deferred
  // until the steal resolves (grant or no eligible victim).
  starved_[key].push_back(message.src);
  resolve_starved(key);
}

void Master::resolve_starved(const ChunkKey& key) {
  auto queue = starved_.find(key);
  if (queue == starved_.end() || queue->second.empty()) {
    if (queue != starved_.end()) starved_.erase(queue);
    return;
  }
  // One steal at a time: when the in-flight one resolves, every starved
  // queue is revisited.
  if (steal_.has_value()) return;

  // Victim: the worker holding the largest outstanding chunk for this
  // pardo instance (the best proxy for "slowest" the master has without
  // asking), deterministic tie-break by rank. A chunk needs >= 2
  // iterations so the split leaves both sides at least one.
  int victim = -1;
  std::int64_t victim_size = 1;
  for (std::size_t w = 0; w < outstanding_.size(); ++w) {
    const OutstandingChunk& chunk = outstanding_[w];
    if (!chunk.valid || chunk.steal_failed || !(chunk.key == key)) continue;
    const std::int64_t size = chunk.end - chunk.begin;
    if (size > victim_size) {
      victim_size = size;
      victim = static_cast<int>(w) + 1;
    }
  }
  if (victim < 0) {
    // Nothing stealable: everyone still queued is done with this pardo.
    for (const int rank : queue->second) {
      schedules_.retire(key.pardo_id, key.instance);
      send_chunk_reply(rank, key, 0, 0);
    }
    starved_.erase(queue);
    return;
  }
  const OutstandingChunk& chunk =
      outstanding_[static_cast<std::size_t>(victim - 1)];
  // Propose the midpoint; the victim clamps to its actual position, so
  // iterations already started are never revoked.
  const std::int64_t split = chunk.begin + (chunk.end - chunk.begin) / 2;
  steal_ = StealInFlight{key, victim};
  ++stats_.steal_attempts;
  msg::Message request;
  request.tag = msg::kChunkStealRequest;
  request.header = {key.pardo_id, key.instance, split};
  shared_.fabric->send(shared_.master_rank(), victim, std::move(request));
}

void Master::handle_steal_reply(const msg::Message& message) {
  const ChunkKey key{static_cast<int>(message.header[0]),
                     message.header[1]};
  const std::int64_t grant_begin = message.header[2];
  const std::int64_t grant_end = message.header[3];
  if (!steal_.has_value() || steal_->victim_rank != message.src ||
      !(steal_->key == key)) {
    throw InternalError("steal reply does not match the steal in flight");
  }
  steal_.reset();

  const std::size_t vi = static_cast<std::size_t>(message.src - 1);
  OutstandingChunk& victim = outstanding_[vi];
  const bool victim_current = victim.valid && victim.key == key;
  if (grant_begin < grant_end) {
    if (victim_current) {
      // The victim shrank its chunk to end at the grant.
      stats_.worker_iterations[vi] -=
          std::min(victim.end, grant_end) - grant_begin;
      victim.end = grant_begin;
    }
    auto queue = starved_.find(key);
    if (queue != starved_.end() && !queue->second.empty()) {
      const int thief = queue->second.front();
      queue->second.pop_front();
      ++stats_.steals_granted;
      stats_.stolen_iterations += grant_end - grant_begin;
      const std::size_t ti = static_cast<std::size_t>(thief - 1);
      if (ti < outstanding_.size()) {
        outstanding_[ti] = {key, grant_begin, grant_end, true, false};
        stats_.worker_iterations[ti] += grant_end - grant_begin;
      }
      send_chunk_reply(thief, key, grant_begin, grant_end);
    } else {
      // No thief left waiting. The victim already gave the range up, so
      // it must not be lost: park it and serve it to the next request
      // for this pardo instance, ahead of the (exhausted) schedule.
      spare_[key].emplace_back(grant_begin, grant_end);
    }
  } else if (victim_current) {
    victim.steal_failed = true;
  }
  // Revisit every queue the single-steal rule may have blocked.
  std::vector<ChunkKey> keys;
  keys.reserve(starved_.size());
  for (const auto& [k, ranks] : starved_) keys.push_back(k);
  for (const ChunkKey& k : keys) resolve_starved(k);
}

void Master::release_barrier(std::int64_t seq) {
  for (int w = 0; w < shared_.num_workers(); ++w) {
    msg::Message release;
    release.tag = msg::kBarrierRelease;
    release.header = {seq};
    shared_.fabric->send(shared_.master_rank(), shared_.worker_rank(w),
                         std::move(release));
  }
  barriers_.erase(seq);
}

void Master::handle_barrier_enter(const msg::Message& message) {
  const std::int64_t seq = message.header[0];
  const std::int64_t kind = message.header[1];

  if (kind == 2) {  // worker finished the program
    if (++workers_done_ == shared_.num_workers()) {
      // run() notices and shuts servers down.
    }
    return;
  }

  BarrierState& state = barriers_[seq];
  if (++state.entered < shared_.num_workers()) return;

  if (kind == 0 || shared_.num_servers() == 0) {
    release_barrier(seq);
    return;
  }
  // server_barrier: ask the I/O servers to flush before releasing.
  state.waiting_servers = true;
  for (int s = 0; s < shared_.num_servers(); ++s) {
    msg::Message flush;
    flush.tag = msg::kServerBarrierEnter;
    flush.header = {seq};
    shared_.fabric->send(shared_.master_rank(),
                         1 + shared_.num_workers() + s, std::move(flush));
  }
}

void Master::handle_server_ack(const msg::Message& message) {
  const std::int64_t seq = message.header[0];
  auto it = barriers_.find(seq);
  if (it == barriers_.end()) {
    throw InternalError("server ack for unknown barrier");
  }
  // Keyed by rank, not counted: after an I/O-server respawn the flush
  // request is re-sent, and the (rare) second ack from a server that
  // flushed just before dying must not release the barrier early.
  it->second.acked_servers.insert(message.src);
  if (static_cast<int>(it->second.acked_servers.size()) ==
      shared_.num_servers()) {
    release_barrier(seq);
  }
}

void Master::handle_scalar_reduce(const msg::Message& message) {
  const std::int64_t seq = message.header[0];
  const std::int64_t slot = message.header[1];
  CollectiveState& state = collectives_[seq];
  state.sum += message.data.at(0);
  if (++state.arrived < shared_.num_workers()) return;

  for (int w = 0; w < shared_.num_workers(); ++w) {
    msg::Message bcast;
    bcast.tag = msg::kScalarBcast;
    bcast.header = {seq, slot};
    bcast.data = {state.sum};
    shared_.fabric->send(shared_.master_rank(), shared_.worker_rank(w),
                         std::move(bcast));
  }
  collectives_.erase(seq);
}

// ---------------------------------------------------------------------
// Heartbeat watchdog.

namespace {

const char* wait_kind_name(int status) {
  switch (status) {
    case -1: return "running";
    case 0: return "waiting for a distributed block";
    case 1: return "waiting for a served block";
    case 2: return "waiting for a pardo chunk";
    case 3: return "waiting at a barrier";
    case 4: return "waiting for a collective";
    default: return "unknown";
  }
}

}  // namespace

void Master::handle_dead_rank(int rank) {
  if (shared_.is_server(rank) && shared_.config.server_recovery &&
      shared_.respawn_server) {
    SIA_INFO(shared_.master_rank())
        << "I/O server rank " << rank << " unresponsive after "
        << heartbeat_miss_streak_[static_cast<std::size_t>(rank)]
        << " missed heartbeats; respawning";
    if (shared_.respawn_server(rank)) {
      ++stats_.server_recoveries;
      heartbeat_miss_streak_[static_cast<std::size_t>(rank)] = 0;
      last_heartbeat_ack_[static_cast<std::size_t>(rank)] = heartbeat_tick_;
      // The dead incarnation may have swallowed a pending flush request;
      // re-ask the fresh one for every barrier still waiting on it.
      for (auto& [seq, state] : barriers_) {
        if (state.waiting_servers && state.acked_servers.count(rank) == 0) {
          msg::Message flush;
          flush.tag = msg::kServerBarrierEnter;
          flush.header = {seq};
          shared_.fabric->send(shared_.master_rank(), rank,
                               std::move(flush));
        }
      }
      return;
    }
  }
  // Unrecoverable: diagnose instead of hanging. Name the dead rank, when
  // it was last seen, and what every other rank is blocked on.
  std::ostringstream out;
  out << (shared_.is_server(rank) ? "I/O server" : "worker") << " rank "
      << rank << " unresponsive: missed "
      << heartbeat_miss_streak_[static_cast<std::size_t>(rank)]
      << " consecutive heartbeats (last answered tick "
      << last_heartbeat_ack_[static_cast<std::size_t>(rank)] << " of "
      << heartbeat_tick_ << ")";
  bool any_blocked = false;
  for (int r = 1; r < shared_.fabric->ranks(); ++r) {
    const int status = shared_.get_rank_status(r);
    if (r == rank || status == -1) continue;
    out << (any_blocked ? ", " : "; blocked ranks: ") << "rank " << r
        << " " << wait_kind_name(status);
    any_blocked = true;
  }
  throw RuntimeError(out.str());
}

void Master::heartbeat_tick() {
  const int ranks = shared_.fabric->ranks();
  if (last_heartbeat_ack_.empty()) {
    last_heartbeat_ack_.assign(static_cast<std::size_t>(ranks), 0);
    heartbeat_miss_streak_.assign(static_cast<std::size_t>(ranks), 0);
  }
  // Evaluate the round that just elapsed before starting the next one.
  if (heartbeat_tick_ > 0) {
    for (int r = 1; r < ranks; ++r) {
      const std::size_t ur = static_cast<std::size_t>(r);
      if (last_heartbeat_ack_[ur] >= heartbeat_tick_) {
        heartbeat_miss_streak_[ur] = 0;
        continue;
      }
      ++heartbeat_miss_streak_[ur];
      ++stats_.heartbeats_missed;
      if (heartbeat_miss_streak_[ur] >= shared_.config.heartbeat_misses) {
        handle_dead_rank(r);
      }
    }
  }
  ++heartbeat_tick_;
  for (int r = 1; r < ranks; ++r) {
    msg::Message ping;
    ping.tag = msg::kHeartbeatPing;
    ping.header = {heartbeat_tick_};
    shared_.fabric->send(shared_.master_rank(), r, std::move(ping));
  }
}

void Master::broadcast_abort() {
  std::string what;
  {
    std::lock_guard<std::mutex> lock(shared_.error_mutex);
    what = shared_.first_error;
  }
  if (what.empty()) what = "aborted";
  for (int r = 1; r < shared_.fabric->ranks(); ++r) {
    shared_.fabric->deliver(shared_.master_rank(), r,
                            make_abort_message(what));
  }
}

void Master::run() {
  const int heartbeat_ms = shared_.config.effective_heartbeat_ms();
  // The watchdog runs whenever a heartbeat period is in effect — under
  // fault tolerance (auto) and in spawn mode, where run_spawned forces a
  // period because real processes can die without injected faults.
  const bool watchdog = heartbeat_ms > 0;
  auto next_beat = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(heartbeat_ms);
  try {
    while (workers_done_ < shared_.num_workers()) {
      shared_.check_abort();
      if (watchdog && std::chrono::steady_clock::now() >= next_beat) {
        heartbeat_tick();
        next_beat = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(heartbeat_ms);
      }
      auto message = shared_.fabric->recv_for(shared_.master_rank(),
                                              watchdog ? 10 : 50);
      if (!message.has_value()) continue;
      switch (message->tag) {
        case msg::kChunkRequest:
          handle_chunk_request(*message);
          break;
        case msg::kChunkStealReply:
          handle_steal_reply(*message);
          break;
        case msg::kBarrierEnter:
          handle_barrier_enter(*message);
          break;
        case msg::kServerBarrierAck:
          handle_server_ack(*message);
          break;
        case msg::kScalarReduce:
          handle_scalar_reduce(*message);
          break;
        case msg::kHeartbeatAck:
          if (message->header.size() > 1) {
            const int rank = static_cast<int>(message->header[1]);
            if (rank >= 0 && rank < shared_.fabric->ranks() &&
                !last_heartbeat_ack_.empty()) {
              std::int64_t& last =
                  last_heartbeat_ack_[static_cast<std::size_t>(rank)];
              last = std::max(last, message->header[0]);
            }
          }
          break;
        case msg::kAbort:
          // A remote (spawned) rank died on an error; adopt it as the
          // run's first error and spread the word before teardown.
          shared_.raise_abort(abort_text(*message));
          break;  // check_abort throws Aborted on the next iteration
        case msg::kResultReport:
          // End-of-run report from a spawned rank; the launch harvests
          // these from the mailbox after run() returns.
          break;
        default:
          throw InternalError("master received unexpected tag " +
                              std::to_string(message->tag));
      }
    }
    // All workers done: stop the I/O servers and release the workers from
    // their post-completion service loops.
    for (int r = 1; r < shared_.fabric->ranks(); ++r) {
      msg::Message shutdown;
      shutdown.tag = msg::kShutdown;
      shared_.fabric->send(shared_.master_rank(), r, std::move(shutdown));
    }
  } catch (const Aborted&) {
    broadcast_abort();
  } catch (const std::exception& error) {
    shared_.raise_abort(error.what());
    broadcast_abort();
  }
}

}  // namespace sia::sip
