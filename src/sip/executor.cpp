#include "sip/executor.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/timer.hpp"

namespace sia::sip {

DataflowExecutor::DataflowExecutor(int threads, std::size_t window_limit)
    : window_limit_(std::max<std::size_t>(window_limit, 1)) {
  SIA_CHECK(threads >= 1, "DataflowExecutor needs at least one thread");
  stats_.thread_busy_seconds.assign(static_cast<std::size_t>(threads), 0.0);
  stats_.thread_tasks.assign(static_cast<std::size_t>(threads), 0);
  pool_.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool_.emplace_back([this, t] { worker_loop(t); });
  }
}

DataflowExecutor::~DataflowExecutor() {
  cancel();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  pool_cv_.notify_all();
  for (std::thread& thread : pool_) thread.join();
}

void DataflowExecutor::enqueue(Entry entry) {
  std::unique_lock<std::mutex> lock(mutex_);
  SIA_CHECK(window_.size() < window_limit_,
            "instruction window overflow (caller must drain first)");
  auto node_ptr = std::make_unique<Node>();
  Node* node = node_ptr.get();
  node->entry = std::move(entry);
  node->seq = next_seq_++;

  stats_.occupancy_sum += static_cast<std::int64_t>(window_.size());
  ++stats_.occupancy_samples;

  // Dependency scan against the per-block scoreboard. Reads first (RAW on
  // the last writer), then writes (WAW on the last writer, WAR on every
  // reader since) — gathering into a dedup'd set because an accumulate
  // both reads and writes its target.
  std::vector<Node*> deps;
  // Classified edge counters see every live edge (before cross-kind
  // dedup); `deps` itself stays dedup'd for the scheduling bookkeeping.
  const auto live = [&](Node* dep) {
    return dep != nullptr && dep != node && dep->state != State::kDone &&
           dep->state != State::kRetired;
  };
  const auto add_dep = [&](Node* dep) {
    if (!live(dep)) return;
    if (std::find(deps.begin(), deps.end(), dep) == deps.end()) {
      deps.push_back(dep);
    }
  };
  for (const BlockId& id : node->entry.reads) {
    KeyState& ks = keys_[id];
    if (live(ks.last_writer)) ++stats_.raw_deps;
    add_dep(ks.last_writer);
    ks.readers_since_write.push_back(node);
  }
  for (const BlockId& id : node->entry.writes) {
    KeyState& ks = keys_[id];
    if (live(ks.last_writer)) ++stats_.waw_deps;
    add_dep(ks.last_writer);
    for (Node* reader : ks.readers_since_write) {
      if (live(reader)) ++stats_.war_deps;
      add_dep(reader);
    }
    ks.last_writer = node;
    ks.readers_since_write.clear();
    ++live_writes_[id];
  }
  // Renamed writes: fresh storage, so earlier accesses of the id are not
  // hazards; claim the scoreboard so later accesses chain onto this node.
  for (const BlockId& id : node->entry.renamed_writes) {
    KeyState& ks = keys_[id];
    ks.last_writer = node;
    ks.readers_since_write.clear();
    ++live_writes_[id];
  }
  node->unmet_deps = static_cast<int>(deps.size());
  for (Node* dep : deps) dep->dependents.push_back(node);

  if (!node->entry.pending_operands.empty()) {
    node->state = State::kWaitingOperands;
    node->counted_operand_stall = true;
    ++stats_.operand_stalls;
    if (node->unmet_deps > 0) ++stats_.hazard_stalls;
  } else if (node->unmet_deps > 0) {
    node->state = State::kWaitingHazards;
    ++stats_.hazard_stalls;
  } else {
    make_ready_locked(node);
  }
  window_.push_back(std::move(node_ptr));
  stats_.window_peak = std::max(
      stats_.window_peak, static_cast<std::int64_t>(window_.size()));
}

void DataflowExecutor::make_ready_locked(Node* node) {
  if (node->entry.execute == nullptr) {
    // Retire-only entry: nothing to run, it is complete the moment its
    // hazards clear (its side effects wait for in-order retirement).
    node->state = State::kDone;
    on_complete_locked(node);
    return;
  }
  node->state = State::kReady;
  ready_.push_back(node);
  pool_cv_.notify_one();
}

void DataflowExecutor::on_complete_locked(Node* node) {
  for (Node* dependent : node->dependents) {
    if (--dependent->unmet_deps == 0 &&
        dependent->state == State::kWaitingHazards) {
      make_ready_locked(dependent);
    }
  }
  node->dependents.clear();
  progress_event_ = true;
  progress_cv_.notify_all();
}

void DataflowExecutor::worker_loop(int thread_index) {
  const std::size_t ti = static_cast<std::size_t>(thread_index);
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    pool_cv_.wait(lock, [&] { return shutdown_ || !ready_.empty(); });
    if (shutdown_) return;
    Node* node = ready_.front();
    ready_.erase(ready_.begin());
    node->state = State::kRunning;
    lock.unlock();
    const double t0 = wall_seconds();
    std::exception_ptr error;
    try {
      node->entry.execute();
    } catch (...) {
      error = std::current_exception();
    }
    const double elapsed = wall_seconds() - t0;
    lock.lock();
    stats_.thread_busy_seconds[ti] += elapsed;
    ++stats_.thread_tasks[ti];
    ++stats_.tasks_executed;
    node->error = error;
    node->state = State::kDone;
    on_complete_locked(node);
  }
}

void DataflowExecutor::resolve_operands_locked(
    std::unique_lock<std::mutex>& lock) {
  // Interpreter thread only. The resolve callbacks poke the (non-thread-
  // safe) communication managers, which is fine: pool threads never touch
  // them, and the deposit-then-state-change under the lock publishes the
  // block to whichever pool thread later runs the entry.
  (void)lock;
  for (const auto& node_ptr : window_) {
    Node* node = node_ptr.get();
    if (node->state != State::kWaitingOperands) continue;
    auto& pending = node->entry.pending_operands;
    for (std::size_t i = 0; i < pending.size();) {
      BlockPtr block;
      try {
        block = pending[i].resolve();
      } catch (...) {
        // Operand will never arrive (e.g. "never been put"): fail the
        // entry; the error surfaces at its in-order retirement.
        node->error = std::current_exception();
        node->state = State::kDone;
        pending.clear();
        on_complete_locked(node);
        break;
      }
      if (block == nullptr) {
        ++i;
        continue;
      }
      pending[i].deposit(std::move(block));
      pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(i));
    }
    if (node->state == State::kWaitingOperands && pending.empty()) {
      if (node->unmet_deps > 0) {
        node->state = State::kWaitingHazards;
      } else {
        make_ready_locked(node);
      }
    }
  }
}

void DataflowExecutor::pump() {
  std::unique_lock<std::mutex> lock(mutex_);
  resolve_operands_locked(lock);

  while (!window_.empty() && window_.front()->state == State::kDone) {
    std::unique_ptr<Node> node = std::move(window_.front());
    window_.pop_front();
    // Scrub the scoreboard: later entries must not chase a dangling
    // pointer once this node is gone (their deps on it were already
    // released at completion).
    const auto scrub_write = [&](const BlockId& id) {
      auto it = keys_.find(id);
      if (it != keys_.end() && it->second.last_writer == node.get()) {
        it->second.last_writer = nullptr;
      }
      auto lw = live_writes_.find(id);
      if (lw != live_writes_.end() && --lw->second <= 0) {
        live_writes_.erase(lw);
      }
    };
    for (const BlockId& id : node->entry.writes) scrub_write(id);
    for (const BlockId& id : node->entry.renamed_writes) scrub_write(id);
    for (const BlockId& id : node->entry.reads) {
      auto it = keys_.find(id);
      if (it == keys_.end()) continue;
      auto& readers = it->second.readers_since_write;
      readers.erase(std::remove(readers.begin(), readers.end(), node.get()),
                    readers.end());
      if (readers.empty() && it->second.last_writer == nullptr) {
        keys_.erase(it);
      }
    }
    ++stats_.entries_retired;
    node->state = State::kRetired;
    lock.unlock();
    if (node->error != nullptr) {
      last_error_pc_ = node->entry.pc;
      std::rethrow_exception(node->error);
    }
    if (node->entry.retire != nullptr) {
      last_error_pc_ = node->entry.pc;
      node->entry.retire();
      last_error_pc_ = -1;
    }
    lock.lock();
  }
}

void DataflowExecutor::wait_progress(int timeout_ms) {
  std::unique_lock<std::mutex> lock(mutex_);
  progress_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                        [&] { return progress_event_ || shutdown_; });
  progress_event_ = false;
}

bool DataflowExecutor::writes_block(const BlockId& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return live_writes_.count(id) > 0;
}

void DataflowExecutor::record_drain(double wait_seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.drains;
  stats_.drain_wait_seconds += wait_seconds;
}

void DataflowExecutor::cancel() {
  std::unique_lock<std::mutex> lock(mutex_);
  cancelled_ = true;
  // Abandon everything that has not reached the pool yet, then wait out
  // the tasks already running (pure block compute, so they finish on
  // their own — no fabric dependence).
  ready_.clear();
  for (const auto& node_ptr : window_) {
    Node* node = node_ptr.get();
    if (node->state == State::kWaitingOperands ||
        node->state == State::kWaitingHazards ||
        node->state == State::kReady) {
      node->state = State::kDone;
      node->dependents.clear();
    }
  }
  progress_cv_.wait(lock, [&] {
    for (const auto& node_ptr : window_) {
      if (node_ptr->state == State::kRunning) return false;
    }
    return true;
  });
  window_.clear();
  keys_.clear();
  live_writes_.clear();
}

}  // namespace sia::sip
