// Worker-side manager for distributed arrays.
//
// Each block of a distributed array has a home worker chosen by a static
// hash (paper §V-B). This manager owns, for one worker:
//   * the home store: blocks whose home is this worker, with per-block
//     epoch metadata used to detect conflicting accesses that lack a
//     sip_barrier ("the runtime system detects most improper uses of
//     barriers", §IV-C);
//   * the remote-block LRU cache ("it may be available ... because it is
//     still available in the block cache from a recent use", §V-A);
//   * the pending-request table for asynchronous gets, tagged with the
//     issuing epoch so replies that cross a barrier are dropped.
//
// All communication is asynchronous: issue_get sends a request and
// returns; the consuming instruction waits via try_read + message
// servicing in the interpreter.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "block/block.hpp"
#include "block/block_cache.hpp"
#include "block/block_id.hpp"
#include "block/block_pool.hpp"
#include "msg/message.hpp"
#include "sip/shared.hpp"

namespace sia::sip {

class DistArrayManager {
 public:
  struct Stats {
    std::int64_t gets_issued = 0;      // remote requests sent
    std::int64_t gets_local = 0;       // satisfied by home store
    std::int64_t gets_cached = 0;      // satisfied by cache
    std::int64_t implicit_gets = 0;    // reads that had to issue a get
    std::int64_t puts_remote = 0;
    std::int64_t puts_local = 0;
    std::int64_t replies_dropped = 0;  // stale (pre-barrier) replies
  };

  DistArrayManager(SipShared& shared, int my_rank, BlockPool& pool,
                   std::size_t cache_capacity_doubles);

  // ------------------------------------------------------------------
  // Program-visible operations.

  // SIAL `get`: starts an asynchronous fetch unless the block is already
  // home, cached, or in flight.
  void issue_get(const BlockId& id, bool implicit = false);

  // Non-blocking read: home block, cached copy, or nullptr.
  BlockPtr try_read(const BlockId& id);

  // True if a get for the block is in flight.
  bool pending(const BlockId& id) const;

  // SIAL `put` / `put +=` of `data` (already shaped for the target).
  void put(const BlockId& id, const Block& data, bool accumulate);

  // `create`/`delete` (uniform control flow: every worker runs these, so
  // each erases its own home blocks and cached copies).
  void create_array(int array_id);
  void delete_array(int array_id);

  // sip_barrier passed: bump the epoch, clear cached remote copies, and
  // forget in-flight requests (their replies will be dropped as stale).
  void advance_epoch();
  std::int64_t epoch() const { return epoch_; }

  // ------------------------------------------------------------------
  // Message handling (called by the interpreter's dispatcher).
  void handle_get_request(const msg::Message& message);
  void handle_get_reply(const msg::Message& message);
  void handle_put(const msg::Message& message, bool accumulate);
  void handle_delete(const msg::Message& message);

  // ------------------------------------------------------------------
  // Introspection (checkpointing, tests).
  const std::unordered_map<BlockId, BlockPtr, BlockIdHash>& home_blocks()
      const {
    return home_;
  }
  void store_home_block(const BlockId& id, BlockPtr block);
  const Stats& stats() const { return stats_; }
  const BlockCache& cache() const { return cache_; }
  // Cache statistics accumulated across barrier-induced cache resets.
  BlockCache::Stats cache_stats() const;
  std::size_t home_doubles() const { return home_doubles_; }

 private:
  struct WriteRecord {
    std::int64_t epoch = -1;
    int writer = -1;
    bool accumulate = false;
  };

  // Applies the conflict rules for a write arriving at the home store.
  void check_write_conflict(const BlockId& id, int writer, bool accumulate);

  BlockPtr make_block(const BlockShape& shape);
  BlockShape shape_of(const BlockId& id) const;
  std::int64_t linear_of(const BlockId& id) const;
  BlockId id_from_linear(int array_id, std::int64_t linear) const;

  SipShared& shared_;
  int my_rank_;
  BlockPool& pool_;

  std::unordered_map<BlockId, BlockPtr, BlockIdHash> home_;
  std::unordered_map<BlockId, WriteRecord, BlockIdHash> write_records_;
  BlockCache cache_;
  // In-flight gets with the epoch they were issued in.
  std::unordered_map<BlockId, std::int64_t, BlockIdHash> pending_;
  // Gets answered "no such block": harmless for prefetches, an error at
  // the point of actual use.
  std::unordered_set<BlockId, BlockIdHash> misses_;
  std::unordered_set<int> created_;  // array ids seen by `create`
  std::int64_t epoch_ = 0;
  std::size_t home_doubles_ = 0;
  Stats stats_;
  BlockCache::Stats cache_stats_accum_;
};

}  // namespace sia::sip
