// Worker-side manager for distributed arrays.
//
// Each block of a distributed array has a home worker chosen by a static
// hash (paper §V-B). This manager owns, for one worker:
//   * the home store: blocks whose home is this worker, with per-block
//     epoch metadata used to detect conflicting accesses that lack a
//     sip_barrier ("the runtime system detects most improper uses of
//     barriers", §IV-C);
//   * the remote-block LRU cache ("it may be available ... because it is
//     still available in the block cache from a recent use", §V-A);
//   * the pending-request table for asynchronous gets, tagged with the
//     issuing epoch so replies that cross a barrier are dropped;
//   * the put-accumulate shadow table: with `coalesce_puts` on, repeated
//     `put += ` to the same remote block merge locally and go out as one
//     message at the next flush point (pardo iteration boundary, barrier,
//     conflicting access, or table-size threshold).
//
// All communication is asynchronous and zero-copy: get replies carry a
// shared reference to the home block (the getter caches the alias; the
// home side copies-on-write before mutating a shared block so reader
// snapshots stay consistent), and puts move an exclusively owned block
// into the message so the home can adopt it without unpacking.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "block/block.hpp"
#include "block/block_cache.hpp"
#include "block/block_id.hpp"
#include "block/block_pool.hpp"
#include "msg/message.hpp"
#include "msg/reliable.hpp"
#include "sip/shared.hpp"

namespace sia::sip {

class DistArrayManager {
 public:
  struct Stats {
    std::int64_t gets_issued = 0;      // remote requests sent
    std::int64_t gets_local = 0;       // satisfied by home store
    std::int64_t gets_cached = 0;      // satisfied by cache
    std::int64_t implicit_gets = 0;    // reads that had to issue a get
    std::int64_t puts_remote = 0;      // put messages actually sent
    std::int64_t puts_local = 0;
    std::int64_t puts_coalesced = 0;   // put+= merged into the shadow table
    std::int64_t coalesce_flushes = 0; // shadow entries sent out
    std::int64_t replies_dropped = 0;  // stale (pre-barrier) replies
    std::int64_t home_cow_copies = 0;  // copy-on-write before home mutation
    // Norm-based screening (sparse arrays, sparse_threshold > 0).
    std::int64_t puts_screened = 0;  // put/put+= payloads dropped at sender
    std::int64_t gets_screened = 0;  // get requests answered with a marker
    std::int64_t zero_reads = 0;     // reads satisfied by the zero block
  };

  DistArrayManager(SipShared& shared, int my_rank, BlockPool& pool,
                   std::size_t cache_capacity_doubles,
                   bool coalesce_puts = false);

  // ------------------------------------------------------------------
  // Program-visible operations.

  // SIAL `get`: starts an asynchronous fetch unless the block is already
  // home, cached, or in flight.
  void issue_get(const BlockId& id, bool implicit = false);

  // Non-blocking read: home block, cached copy, or nullptr.
  BlockPtr try_read(const BlockId& id);

  // True if a get for the block is in flight.
  bool pending(const BlockId& id) const;

  // SIAL `put` / `put +=` of `data` (already shaped for the target). If
  // the caller passes its last reference (use_count == 1) the block moves
  // into the message or shadow table without a copy.
  void put(const BlockId& id, BlockPtr data, bool accumulate);

  // Sends every entry of the put-accumulate shadow table to its home.
  // Must run before the worker enters a barrier (the flushed puts travel
  // ahead of the barrier-enter message on the same src-dst FIFO, so they
  // reach the home rank in the closing epoch). Also called at pardo
  // iteration boundaries and program end.
  void flush_coalesced();
  // Number of entries currently write-combining.
  std::size_t coalesced_pending() const { return coalesce_.size(); }

  // `create`/`delete` (uniform control flow: every worker runs these, so
  // each erases its own home blocks and cached copies).
  void create_array(int array_id);
  void delete_array(int array_id);

  // sip_barrier passed: bump the epoch, clear cached remote copies, and
  // forget in-flight requests (their replies will be dropped as stale).
  void advance_epoch();
  std::int64_t epoch() const { return epoch_; }

  // ------------------------------------------------------------------
  // Message handling (called by the interpreter's dispatcher). Handlers
  // take the message by mutable reference so they can steal its block
  // payload instead of copying it.
  void handle_get_request(const msg::Message& message);
  void handle_get_reply(msg::Message& message);
  void handle_put(msg::Message& message, bool accumulate);
  void handle_delete(const msg::Message& message);

  // Reliable protocol: when set, puts go out as tracked ordered sends
  // (retransmitted until the home worker acks) and gets as tracked
  // idempotent sends (the reply is the ack). Null = plain sends.
  void set_channel(msg::ReliableChannel* channel) { channel_ = channel; }

  // ------------------------------------------------------------------
  // Introspection (checkpointing, tests).
  const std::unordered_map<BlockId, BlockPtr, BlockIdHash>& home_blocks()
      const {
    return home_;
  }
  void store_home_block(const BlockId& id, BlockPtr block);
  // Norm table of home blocks screened out at put time (block id ->
  // recorded norm); these have no backing store and read as zero.
  const std::unordered_map<BlockId, double, BlockIdHash>& screened_norms()
      const {
    return screened_norms_;
  }
  const Stats& stats() const { return stats_; }
  const BlockCache& cache() const { return cache_; }
  // Cache statistics accumulated across barrier-induced cache resets.
  BlockCache::Stats cache_stats() const;
  std::size_t home_doubles() const { return home_doubles_; }

 private:
  struct WriteRecord {
    std::int64_t epoch = -1;
    int writer = -1;
    bool accumulate = false;
  };

  // Applies the conflict rules for a write arriving at the home store.
  void check_write_conflict(const BlockId& id, int writer, bool accumulate);

  // Replaces `block` with a private pool-backed copy if any alias exists
  // outside `block` itself (a get reply in flight, a remote cache). Home
  // mutations go through this so zero-copy reader snapshots never change
  // under the reader.
  void ensure_exclusive_home(BlockPtr& block);

  // Returns an exclusively owned version of `data`: moves it when the
  // caller's reference is the only one, otherwise copies into a fresh
  // pool block.
  BlockPtr make_exclusive(BlockPtr data);

  // Sends one shadow-table entry to its home and removes it.
  void flush_coalesced_block(const BlockId& id);
  void send_put_message(const BlockId& id, BlockPtr exclusive_data,
                        bool accumulate, int owner);

  // True when blocks of this array are screened: the array is declared
  // sparse and the runtime threshold is on.
  bool screenable(int array_id) const;
  double threshold() const;

  BlockPtr make_block(const BlockShape& shape);
  BlockShape shape_of(const BlockId& id) const;
  std::int64_t linear_of(const BlockId& id) const;
  BlockId id_from_linear(int array_id, std::int64_t linear) const;

  SipShared& shared_;
  int my_rank_;
  BlockPool& pool_;
  msg::ReliableChannel* channel_ = nullptr;

  std::unordered_map<BlockId, BlockPtr, BlockIdHash> home_;
  std::unordered_map<BlockId, WriteRecord, BlockIdHash> write_records_;
  // Home-side norm table: blocks screened out at put time. An entry means
  // "this block was replaced by a value below the threshold"; reads of it
  // are answered with the canonical zero block and no storage is held.
  std::unordered_map<BlockId, double, BlockIdHash> screened_norms_;
  BlockCache cache_;
  // In-flight gets with the epoch they were issued in.
  std::unordered_map<BlockId, std::int64_t, BlockIdHash> pending_;
  // Gets answered "no such block": harmless for prefetches, an error at
  // the point of actual use.
  std::unordered_set<BlockId, BlockIdHash> misses_;
  std::unordered_set<int> created_;  // array ids seen by `create`
  // Write-combining shadow table: exclusively owned accumulate payloads
  // not yet sent to their home worker.
  std::unordered_map<BlockId, BlockPtr, BlockIdHash> coalesce_;
  bool coalesce_enabled_ = false;
  std::int64_t epoch_ = 0;
  std::size_t home_doubles_ = 0;
  Stats stats_;
  BlockCache::Stats cache_stats_accum_;
};

}  // namespace sia::sip
