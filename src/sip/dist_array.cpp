#include "sip/dist_array.hpp"

#include <algorithm>

#include "blas/elementwise.hpp"
#include "msg/tags.hpp"

namespace sia::sip {

DistArrayManager::DistArrayManager(SipShared& shared, int my_rank,
                                   BlockPool& pool,
                                   std::size_t cache_capacity_doubles)
    : shared_(shared), my_rank_(my_rank), pool_(pool),
      cache_(cache_capacity_doubles) {}

BlockPtr DistArrayManager::make_block(const BlockShape& shape) {
  return std::make_shared<Block>(shape,
                                 pool_.allocate(shape.element_count()));
}

BlockShape DistArrayManager::shape_of(const BlockId& id) const {
  const sial::ResolvedArray& array = shared_.program->array(id.array_id);
  return shared_.program->grid_block_shape(
      array, {id.segments.data(), static_cast<std::size_t>(id.rank)});
}

std::int64_t DistArrayManager::linear_of(const BlockId& id) const {
  const sial::ResolvedArray& array = shared_.program->array(id.array_id);
  return id.linearize(array.num_segments);
}

BlockId DistArrayManager::id_from_linear(int array_id,
                                         std::int64_t linear) const {
  const sial::ResolvedArray& array = shared_.program->array(array_id);
  return BlockId::from_linear(array_id, linear, array.num_segments);
}

void DistArrayManager::issue_get(const BlockId& id, bool implicit) {
  const int owner = shared_.owner_rank(id);
  if (owner == my_rank_) {
    ++stats_.gets_local;
    return;
  }
  if (cache_.contains(id) || pending_.count(id) > 0) return;
  if (implicit) ++stats_.implicit_gets;
  ++stats_.gets_issued;
  misses_.erase(id);
  pending_.emplace(id, epoch_);
  msg::Message request;
  request.tag = msg::kBlockGetRequest;
  request.header = {id.array_id, linear_of(id), my_rank_};
  shared_.fabric->send(my_rank_, owner, std::move(request));
}

BlockPtr DistArrayManager::try_read(const BlockId& id) {
  const int owner = shared_.owner_rank(id);
  if (owner == my_rank_) {
    auto it = home_.find(id);
    if (it == home_.end()) {
      throw RuntimeError(
          "get of distributed block " + id.to_string() + " of '" +
          shared_.program->array(id.array_id).name +
          "' that has never been put (missing put or sip_barrier?)");
    }
    ++stats_.gets_local;
    return it->second;
  }
  if (misses_.count(id) > 0) {
    throw RuntimeError(
        "get of distributed block " + id.to_string() + " of '" +
        shared_.program->array(id.array_id).name +
        "' that has never been put (missing put or sip_barrier?)");
  }
  BlockPtr block = cache_.get(id);
  if (block) ++stats_.gets_cached;
  return block;
}

bool DistArrayManager::pending(const BlockId& id) const {
  return pending_.count(id) > 0;
}

void DistArrayManager::check_write_conflict(const BlockId& id, int writer,
                                            bool accumulate) {
  WriteRecord& record = write_records_[id];
  if (record.epoch == epoch_) {
    if (record.accumulate != accumulate) {
      throw RuntimeError(
          "conflicting put and put+= on block " + id.to_string() + " of '" +
          shared_.program->array(id.array_id).name +
          "' without an intervening sip_barrier");
    }
    if (!accumulate && record.writer != writer) {
      throw RuntimeError(
          "two workers put block " + id.to_string() + " of '" +
          shared_.program->array(id.array_id).name +
          "' without an intervening sip_barrier");
    }
  }
  record.epoch = epoch_;
  record.writer = writer;
  record.accumulate = accumulate;
}

void DistArrayManager::put(const BlockId& id, const Block& data,
                           bool accumulate) {
  const int owner = shared_.owner_rank(id);
  if (owner == my_rank_) {
    ++stats_.puts_local;
    check_write_conflict(id, my_rank_, accumulate);
    auto it = home_.find(id);
    if (it == home_.end()) {
      BlockPtr block = make_block(shape_of(id));
      home_doubles_ += block->size();
      it = home_.emplace(id, std::move(block)).first;
    }
    if (it->second->size() != data.size()) {
      throw RuntimeError("put: shape mismatch for block " + id.to_string());
    }
    if (accumulate) {
      blas::axpy(1.0, data.data(), it->second->data());
    } else {
      blas::copy(data.data(), it->second->data());
    }
    return;
  }
  ++stats_.puts_remote;
  msg::Message message;
  message.tag = accumulate ? msg::kBlockPutAcc : msg::kBlockPut;
  message.header = {id.array_id, linear_of(id), my_rank_};
  message.data.assign(data.data().begin(), data.data().end());
  shared_.fabric->send(my_rank_, owner, std::move(message));
}

void DistArrayManager::create_array(int array_id) {
  created_.insert(array_id);
}

void DistArrayManager::delete_array(int array_id) {
  for (auto it = home_.begin(); it != home_.end();) {
    if (it->first.array_id == array_id) {
      home_doubles_ -= it->second->size();
      it = home_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = write_records_.begin(); it != write_records_.end();) {
    if (it->first.array_id == array_id) {
      it = write_records_.erase(it);
    } else {
      ++it;
    }
  }
  cache_.erase_array(array_id);
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->first.array_id == array_id) {
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
  created_.erase(array_id);
}

void DistArrayManager::advance_epoch() {
  ++epoch_;
  // Cached remote copies may be rewritten in the new epoch; drop them all.
  // In-flight requests keep their old epoch tag, so replies arriving after
  // the barrier are discarded in handle_get_reply.
  const BlockCache::Stats& stats = cache_.stats();
  cache_stats_accum_.hits += stats.hits;
  cache_stats_accum_.misses += stats.misses;
  cache_stats_accum_.evictions += stats.evictions;
  cache_stats_accum_.insertions += stats.insertions;
  cache_ = BlockCache(cache_.capacity_doubles());
  pending_.clear();
  misses_.clear();
}

BlockCache::Stats DistArrayManager::cache_stats() const {
  BlockCache::Stats total = cache_stats_accum_;
  const BlockCache::Stats& stats = cache_.stats();
  total.hits += stats.hits;
  total.misses += stats.misses;
  total.evictions += stats.evictions;
  total.insertions += stats.insertions;
  return total;
}

void DistArrayManager::handle_get_request(const msg::Message& message) {
  const int array_id = static_cast<int>(message.header[0]);
  const std::int64_t linear = message.header[1];
  const int reply_rank = static_cast<int>(message.header[2]);
  const BlockId id = id_from_linear(array_id, linear);

  auto it = home_.find(id);
  if (it == home_.end()) {
    // Not an error here: a look-ahead prefetch may run past what has been
    // put. The miss is reported back and only the *use* of the block
    // raises an error (try_read).
    msg::Message miss;
    miss.tag = msg::kBlockGetReply;
    miss.header = {array_id, linear, /*found=*/0};
    shared_.fabric->send(my_rank_, reply_rank, std::move(miss));
    return;
  }
  // Conflict: a get in the same epoch as a write by a different worker.
  auto rec = write_records_.find(id);
  if (rec != write_records_.end() && rec->second.epoch == epoch_ &&
      rec->second.writer != reply_rank) {
    throw RuntimeError(
        "get of block " + id.to_string() + " of '" +
        shared_.program->array(array_id).name +
        "' in the same epoch as a put by another worker (missing "
        "sip_barrier)");
  }

  msg::Message reply;
  reply.tag = msg::kBlockGetReply;
  reply.header = {array_id, linear, /*found=*/1};
  reply.data.assign(it->second->data().begin(), it->second->data().end());
  shared_.fabric->send(my_rank_, reply_rank, std::move(reply));
}

void DistArrayManager::handle_get_reply(const msg::Message& message) {
  const int array_id = static_cast<int>(message.header[0]);
  const BlockId id = id_from_linear(array_id, message.header[1]);
  auto it = pending_.find(id);
  if (it == pending_.end() || it->second != epoch_) {
    // Stale reply from before a barrier (or after a delete): drop it.
    ++stats_.replies_dropped;
    if (it != pending_.end()) pending_.erase(it);
    return;
  }
  pending_.erase(it);
  if (message.header.size() > 2 && message.header[2] == 0) {
    misses_.insert(id);
    return;
  }
  BlockPtr block = make_block(shape_of(id));
  if (block->size() != message.data.size()) {
    throw RuntimeError("get reply shape mismatch for " + id.to_string());
  }
  std::copy(message.data.begin(), message.data.end(),
            block->data().begin());
  cache_.put(id, std::move(block));
}

void DistArrayManager::handle_put(const msg::Message& message,
                                  bool accumulate) {
  const int array_id = static_cast<int>(message.header[0]);
  const BlockId id = id_from_linear(array_id, message.header[1]);
  const int writer = static_cast<int>(message.header[2]);
  check_write_conflict(id, writer, accumulate);

  auto it = home_.find(id);
  if (it == home_.end()) {
    BlockPtr block = make_block(shape_of(id));
    home_doubles_ += block->size();
    it = home_.emplace(id, std::move(block)).first;
  }
  if (it->second->size() != message.data.size()) {
    throw RuntimeError("put shape mismatch for block " + id.to_string());
  }
  if (accumulate) {
    for (std::size_t i = 0; i < message.data.size(); ++i) {
      it->second->data()[i] += message.data[i];
    }
  } else {
    std::copy(message.data.begin(), message.data.end(),
              it->second->data().begin());
  }
}

void DistArrayManager::handle_delete(const msg::Message& message) {
  delete_array(static_cast<int>(message.header[0]));
}

void DistArrayManager::store_home_block(const BlockId& id, BlockPtr block) {
  auto it = home_.find(id);
  if (it != home_.end()) {
    home_doubles_ -= it->second->size();
    it->second = std::move(block);
    home_doubles_ += it->second->size();
  } else {
    home_doubles_ += block->size();
    home_.emplace(id, std::move(block));
  }
}

}  // namespace sia::sip
