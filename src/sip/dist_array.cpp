#include "sip/dist_array.hpp"

#include <algorithm>

#include "blas/elementwise.hpp"
#include "msg/tags.hpp"

namespace sia::sip {

namespace {
// Shadow-table size at which coalesced puts are pushed out even without
// reaching a flush point, bounding worker-side buffering.
constexpr std::size_t kCoalesceFlushThreshold = 128;
}  // namespace

DistArrayManager::DistArrayManager(SipShared& shared, int my_rank,
                                   BlockPool& pool,
                                   std::size_t cache_capacity_doubles,
                                   bool coalesce_puts)
    : shared_(shared), my_rank_(my_rank), pool_(pool),
      cache_(cache_capacity_doubles), coalesce_enabled_(coalesce_puts) {}

BlockPtr DistArrayManager::make_block(const BlockShape& shape) {
  return std::make_shared<Block>(shape,
                                 pool_.allocate(shape.element_count()));
}

bool DistArrayManager::screenable(int array_id) const {
  return shared_.config.sparse_threshold > 0.0 &&
         shared_.program->array(array_id).sparse;
}

double DistArrayManager::threshold() const {
  return shared_.config.sparse_threshold;
}

BlockShape DistArrayManager::shape_of(const BlockId& id) const {
  const sial::ResolvedArray& array = shared_.program->array(id.array_id);
  return shared_.program->grid_block_shape(
      array, {id.segments.data(), static_cast<std::size_t>(id.rank)});
}

std::int64_t DistArrayManager::linear_of(const BlockId& id) const {
  const sial::ResolvedArray& array = shared_.program->array(id.array_id);
  return id.linearize(array.num_segments);
}

BlockId DistArrayManager::id_from_linear(int array_id,
                                         std::int64_t linear) const {
  const sial::ResolvedArray& array = shared_.program->array(array_id);
  return BlockId::from_linear(array_id, linear, array.num_segments);
}

void DistArrayManager::ensure_exclusive_home(BlockPtr& block) {
  if (block.use_count() <= 1) return;
  ++stats_.home_cow_copies;
  BlockPtr copy = make_block(block->shape());
  blas::copy(block->data(), copy->data());
  block = std::move(copy);
}

BlockPtr DistArrayManager::make_exclusive(BlockPtr data) {
  if (data.use_count() == 1) return data;
  BlockPtr copy = make_block(data->shape());
  blas::copy(data->data(), copy->data());
  return copy;
}

void DistArrayManager::issue_get(const BlockId& id, bool implicit) {
  const int owner = shared_.owner_rank(id);
  if (owner == my_rank_) {
    ++stats_.gets_local;
    return;
  }
  // Read-your-own-accumulate: a shadowed put+= for this block must reach
  // the home before the get request (same src-dst FIFO keeps the order).
  if (coalesce_.count(id) > 0) flush_coalesced_block(id);
  if (cache_.contains(id) || pending_.count(id) > 0) return;
  if (implicit) ++stats_.implicit_gets;
  ++stats_.gets_issued;
  misses_.erase(id);
  pending_.emplace(id, epoch_);
  msg::Message request;
  request.tag = msg::kBlockGetRequest;
  request.header = {id.array_id, linear_of(id), my_rank_};
  if (channel_ != nullptr) {
    channel_->send_request(owner, std::move(request));
  } else {
    shared_.fabric->send(my_rank_, owner, std::move(request));
  }
}

BlockPtr DistArrayManager::try_read(const BlockId& id) {
  const int owner = shared_.owner_rank(id);
  if (owner == my_rank_) {
    auto it = home_.find(id);
    if (it == home_.end()) {
      // Sparse semantics: an absent block of a screenable array reads as
      // zero (it was either screened at put time or never received an
      // above-threshold contribution).
      if (screenable(id.array_id)) {
        ++stats_.zero_reads;
        return zero_block(shape_of(id));
      }
      throw RuntimeError(
          "get of distributed block " + id.to_string() + " of '" +
          shared_.program->array(id.array_id).name +
          "' that has never been put (missing put or sip_barrier?)");
    }
    ++stats_.gets_local;
    return it->second;
  }
  if (misses_.count(id) > 0) {
    throw RuntimeError(
        "get of distributed block " + id.to_string() + " of '" +
        shared_.program->array(id.array_id).name +
        "' that has never been put (missing put or sip_barrier?)");
  }
  BlockPtr block = cache_.get(id);
  if (block) ++stats_.gets_cached;
  return block;
}

bool DistArrayManager::pending(const BlockId& id) const {
  return pending_.count(id) > 0;
}

void DistArrayManager::check_write_conflict(const BlockId& id, int writer,
                                            bool accumulate) {
  WriteRecord& record = write_records_[id];
  if (record.epoch == epoch_) {
    if (record.accumulate != accumulate) {
      throw RuntimeError(
          "conflicting put and put+= on block " + id.to_string() + " of '" +
          shared_.program->array(id.array_id).name +
          "' without an intervening sip_barrier");
    }
    if (!accumulate && record.writer != writer) {
      throw RuntimeError(
          "two workers put block " + id.to_string() + " of '" +
          shared_.program->array(id.array_id).name +
          "' without an intervening sip_barrier");
    }
  }
  record.epoch = epoch_;
  record.writer = writer;
  record.accumulate = accumulate;
}

void DistArrayManager::send_put_message(const BlockId& id,
                                        BlockPtr exclusive_data,
                                        bool accumulate, int owner) {
  ++stats_.puts_remote;
  msg::Message message;
  message.tag = accumulate ? msg::kBlockPutAcc : msg::kBlockPut;
  message.header = {id.array_id, linear_of(id), my_rank_};
  message.block = std::move(exclusive_data);
  if (channel_ != nullptr) {
    // Tracked ordered send: retransmitted until the home worker acks,
    // exactly-once applied via its per-peer sequencer (a duplicated or
    // retransmitted put+= must not accumulate twice).
    channel_->send_ordered(owner, std::move(message));
  } else {
    shared_.fabric->send(my_rank_, owner, std::move(message));
  }
}

void DistArrayManager::put(const BlockId& id, BlockPtr data,
                           bool accumulate) {
  SIA_CHECK(data != nullptr, "DistArrayManager::put: null block");
  const int owner = shared_.owner_rank(id);
  if (screenable(id.array_id) && data->norm() < threshold()) {
    // Below-threshold payload: never moves. An accumulate contribution is
    // dropped outright (error bounded by the threshold); a replace is
    // recorded in the owner's norm table so reads answer "screened".
    const double norm = data->norm();
    ++stats_.puts_screened;
    if (owner == my_rank_) {
      check_write_conflict(id, my_rank_, accumulate);
      if (!accumulate) {
        auto it = home_.find(id);
        if (it != home_.end()) {
          home_doubles_ -= it->second->size();
          home_.erase(it);
        }
        screened_norms_[id] = norm;
      }
      return;
    }
    shared_.fabric->record_screened(
        my_rank_, static_cast<std::int64_t>(data->size()));
    if (accumulate) return;
    // A replace conflicts with shadowed accumulates; push them out first
    // so the home-side conflict detector sees both writes.
    if (coalesce_.count(id) > 0) flush_coalesced_block(id);
    ++stats_.puts_remote;
    msg::Message message;
    message.tag = msg::kBlockPut;
    message.header = {id.array_id, linear_of(id), my_rank_, /*screened=*/1};
    message.data = {norm};
    if (channel_ != nullptr) {
      channel_->send_ordered(owner, std::move(message));
    } else {
      shared_.fabric->send(my_rank_, owner, std::move(message));
    }
    return;
  }
  if (owner == my_rank_) {
    ++stats_.puts_local;
    screened_norms_.erase(id);
    check_write_conflict(id, my_rank_, accumulate);
    if (data->size() != shape_of(id).element_count()) {
      throw RuntimeError("put: shape mismatch for block " + id.to_string());
    }
    auto it = home_.find(id);
    if (it == home_.end()) {
      // First write to this home block: adopt the payload outright when
      // we own it exclusively, else materialize a private copy.
      BlockPtr block = make_exclusive(std::move(data));
      home_doubles_ += block->size();
      home_.emplace(id, std::move(block));
      return;
    }
    if (it->second->size() != data->size()) {
      throw RuntimeError("put: shape mismatch for block " + id.to_string());
    }
    ensure_exclusive_home(it->second);
    if (accumulate) {
      blas::axpy(1.0, data->data(), it->second->data());
    } else {
      blas::copy(data->data(), it->second->data());
    }
    return;
  }

  if (!accumulate) {
    // A replace conflicts with shadowed accumulates; push them out first
    // so the home-side conflict detector sees both writes.
    if (coalesce_.count(id) > 0) flush_coalesced_block(id);
    send_put_message(id, make_exclusive(std::move(data)), false, owner);
    return;
  }

  if (!coalesce_enabled_) {
    send_put_message(id, make_exclusive(std::move(data)), true, owner);
    return;
  }

  auto it = coalesce_.find(id);
  if (it != coalesce_.end()) {
    blas::axpy(1.0, data->data(), it->second->data());
    ++stats_.puts_coalesced;
    return;
  }
  coalesce_.emplace(id, make_exclusive(std::move(data)));
  if (coalesce_.size() >= kCoalesceFlushThreshold) flush_coalesced();
}

void DistArrayManager::flush_coalesced_block(const BlockId& id) {
  auto it = coalesce_.find(id);
  if (it == coalesce_.end()) return;
  // `id` may alias the key of the node being erased (flush_coalesced
  // passes begin()->first), so copy it before the erase.
  const BlockId key = it->first;
  BlockPtr payload = std::move(it->second);
  coalesce_.erase(it);
  ++stats_.coalesce_flushes;
  send_put_message(key, std::move(payload), true, shared_.owner_rank(key));
}

void DistArrayManager::flush_coalesced() {
  while (!coalesce_.empty()) {
    flush_coalesced_block(coalesce_.begin()->first);
  }
}

void DistArrayManager::create_array(int array_id) {
  created_.insert(array_id);
}

void DistArrayManager::delete_array(int array_id) {
  for (auto it = home_.begin(); it != home_.end();) {
    if (it->first.array_id == array_id) {
      home_doubles_ -= it->second->size();
      it = home_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = write_records_.begin(); it != write_records_.end();) {
    if (it->first.array_id == array_id) {
      it = write_records_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = screened_norms_.begin(); it != screened_norms_.end();) {
    if (it->first.array_id == array_id) {
      it = screened_norms_.erase(it);
    } else {
      ++it;
    }
  }
  cache_.erase_array(array_id);
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->first.array_id == array_id) {
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = coalesce_.begin(); it != coalesce_.end();) {
    if (it->first.array_id == array_id) {
      it = coalesce_.erase(it);
    } else {
      ++it;
    }
  }
  created_.erase(array_id);
}

void DistArrayManager::advance_epoch() {
  SIA_CHECK(coalesce_.empty(),
            "advance_epoch with unflushed coalesced puts (interpreter must "
            "flush before entering the barrier)");
  ++epoch_;
  // Cached remote copies may be rewritten in the new epoch; drop them all.
  // In-flight requests keep their old epoch tag, so replies arriving after
  // the barrier are discarded in handle_get_reply.
  const BlockCache::Stats& stats = cache_.stats();
  cache_stats_accum_.hits += stats.hits;
  cache_stats_accum_.misses += stats.misses;
  cache_stats_accum_.evictions += stats.evictions;
  cache_stats_accum_.insertions += stats.insertions;
  cache_.clear();
  pending_.clear();
  misses_.clear();
}

BlockCache::Stats DistArrayManager::cache_stats() const {
  BlockCache::Stats total = cache_stats_accum_;
  const BlockCache::Stats& stats = cache_.stats();
  total.hits += stats.hits;
  total.misses += stats.misses;
  total.evictions += stats.evictions;
  total.insertions += stats.insertions;
  return total;
}

void DistArrayManager::handle_get_request(const msg::Message& message) {
  const int array_id = static_cast<int>(message.header[0]);
  const std::int64_t linear = message.header[1];
  const int reply_rank = static_cast<int>(message.header[2]);
  const BlockId id = id_from_linear(array_id, linear);

  auto it = home_.find(id);
  if (it == home_.end()) {
    if (screenable(array_id)) {
      // Screened (or never-contributed) block of a sparse array: answer
      // with a tiny norm-only marker instead of a payload. The client
      // caches the canonical zero block, so the payload never moves.
      ++stats_.gets_screened;
      auto norm_it = screened_norms_.find(id);
      shared_.fabric->record_screened(
          my_rank_,
          static_cast<std::int64_t>(shape_of(id).element_count()));
      msg::Message reply;
      reply.tag = msg::kBlockGetReply;
      reply.header = {array_id, linear, /*found=*/0, /*screened=*/1};
      reply.data = {norm_it != screened_norms_.end() ? norm_it->second
                                                     : 0.0};
      reply.ack = message.seq;  // the reply is the request's ack
      shared_.fabric->send(my_rank_, reply_rank, std::move(reply));
      return;
    }
    // Not an error here: a look-ahead prefetch may run past what has been
    // put. The miss is reported back and only the *use* of the block
    // raises an error (try_read).
    msg::Message miss;
    miss.tag = msg::kBlockGetReply;
    miss.header = {array_id, linear, /*found=*/0};
    miss.ack = message.seq;  // the reply is the request's ack
    shared_.fabric->send(my_rank_, reply_rank, std::move(miss));
    return;
  }
  // Conflict: a get in the same epoch as a write by a different worker.
  auto rec = write_records_.find(id);
  if (rec != write_records_.end() && rec->second.epoch == epoch_ &&
      rec->second.writer != reply_rank) {
    throw RuntimeError(
        "get of block " + id.to_string() + " of '" +
        shared_.program->array(array_id).name +
        "' in the same epoch as a put by another worker (missing "
        "sip_barrier)");
  }

  // Zero-copy reply: share the home block itself. Home mutations go
  // through ensure_exclusive_home, so the reader's snapshot is stable.
  msg::Message reply;
  reply.tag = msg::kBlockGetReply;
  reply.header = {array_id, linear, /*found=*/1};
  reply.ack = message.seq;  // the reply is the request's ack
  reply.block = it->second;
  shared_.fabric->send(my_rank_, reply_rank, std::move(reply));
}

void DistArrayManager::handle_get_reply(msg::Message& message) {
  const int array_id = static_cast<int>(message.header[0]);
  const BlockId id = id_from_linear(array_id, message.header[1]);
  auto it = pending_.find(id);
  if (it == pending_.end() || it->second != epoch_) {
    // Stale reply from before a barrier (or after a delete): drop it.
    ++stats_.replies_dropped;
    if (it != pending_.end()) pending_.erase(it);
    return;
  }
  pending_.erase(it);
  if (message.header.size() > 2 && message.header[2] == 0) {
    if (message.header.size() > 3 && message.header[3] != 0) {
      // Screened marker: cache the canonical zero block so the demand
      // read is satisfied locally and no further get (demand or
      // look-ahead) is issued for this block this epoch.
      ++stats_.zero_reads;
      cache_.put(id, zero_block(shape_of(id)));
      return;
    }
    misses_.insert(id);
    return;
  }
  SIA_CHECK(message.block != nullptr, "get reply without block payload");
  if (message.block->size() != shape_of(id).element_count()) {
    throw RuntimeError("get reply shape mismatch for " + id.to_string());
  }
  // Adopt the shared payload directly — no allocation, no unpack copy.
  cache_.put(id, std::move(message.block));
}

void DistArrayManager::handle_put(msg::Message& message, bool accumulate) {
  const int array_id = static_cast<int>(message.header[0]);
  const BlockId id = id_from_linear(array_id, message.header[1]);
  const int writer = static_cast<int>(message.header[2]);
  check_write_conflict(id, writer, accumulate);

  if (message.header.size() > 3 && message.header[3] != 0) {
    // Screened replace marker: the sender's payload was below the
    // threshold, so the block becomes a norm-table entry with no storage.
    auto it = home_.find(id);
    if (it != home_.end()) {
      home_doubles_ -= it->second->size();
      home_.erase(it);
    }
    screened_norms_[id] = message.data.empty() ? 0.0 : message.data[0];
    return;
  }
  screened_norms_.erase(id);

  BlockPtr incoming = std::move(message.block);
  const std::size_t incoming_size =
      incoming ? incoming->size() : message.data.size();
  const BlockShape shape = shape_of(id);
  if (incoming_size != shape.element_count()) {
    throw RuntimeError("put shape mismatch for block " + id.to_string());
  }

  auto it = home_.find(id);
  if (it == home_.end()) {
    // First write this epoch to a fresh home slot: adopt the payload
    // (for put+= the missing block is implicitly zero, so the payload is
    // already the correct value).
    BlockPtr block;
    if (incoming && incoming.use_count() == 1) {
      block = std::move(incoming);
    } else {
      block = make_block(shape);
      if (incoming) {
        blas::copy(incoming->data(), block->data());
      } else {
        std::copy(message.data.begin(), message.data.end(),
                  block->data().begin());
      }
    }
    home_doubles_ += block->size();
    home_.emplace(id, std::move(block));
    return;
  }

  ensure_exclusive_home(it->second);
  if (accumulate) {
    if (incoming) {
      blas::axpy(1.0, incoming->data(), it->second->data());
    } else {
      for (std::size_t i = 0; i < message.data.size(); ++i) {
        it->second->data()[i] += message.data[i];
      }
    }
  } else {
    if (incoming && incoming.use_count() == 1) {
      home_doubles_ -= it->second->size();
      it->second = std::move(incoming);
      home_doubles_ += it->second->size();
    } else if (incoming) {
      blas::copy(incoming->data(), it->second->data());
    } else {
      std::copy(message.data.begin(), message.data.end(),
                it->second->data().begin());
    }
  }
}

void DistArrayManager::handle_delete(const msg::Message& message) {
  delete_array(static_cast<int>(message.header[0]));
}

void DistArrayManager::store_home_block(const BlockId& id, BlockPtr block) {
  auto it = home_.find(id);
  if (it != home_.end()) {
    home_doubles_ -= it->second->size();
    it->second = std::move(block);
    home_doubles_ += it->second->size();
  } else {
    home_doubles_ += block->size();
    home_.emplace(id, std::move(block));
  }
}

}  // namespace sia::sip
