// Intra-worker dataflow executor: the instruction window.
//
// The paper's workers are coarse-grained interpreters whose every step is
// a super instruction — exactly the granularity at which intra-node
// parallelism is cheap to schedule (the SIA itself later grew
// multithreaded workers, Lotrich et al. arXiv:2003.01688). This module
// gives each worker a compute thread pool plus an *instruction window*:
// the interpreter thread decodes super instructions into window entries
// carrying their block-level read/write sets, and any entry whose
// RAW/WAR/WAW hazards are clear is issued to the pool out of program
// order. The interpreter thread keeps draining the fabric meanwhile, so
// compute overlaps the async get/put engine: an entry blocked on a remote
// operand parks in the window and is woken when the reply arrives instead
// of stalling the whole worker.
//
// Retirement is strictly in program order on the interpreter thread.
// Communication side effects (put/prepare sends, deferred gets) happen at
// retire, so the fabric sees the exact message sequence of the serial
// interpreter; and because two writers of the same block are themselves
// ordered by the hazard rules (an accumulate reads its target, so +=
// chains serialize in program order), array contents and checksums stay
// bit-identical to the serial path — the invariant every benchmark
// baseline relies on.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "block/block.hpp"
#include "block/block_id.hpp"

namespace sia::sip {

class DataflowExecutor {
 public:
  // A not-yet-resolved operand of a window entry: a remote block that had
  // not arrived at decode time. The interpreter thread re-runs `resolve`
  // on every pump until it returns a block (communication managers are
  // not thread safe, so resolution never happens on the pool).
  struct PendingOperand {
    BlockId id;
    // Returns the block once available (issuing/refreshing the fetch as a
    // side effect), or nullptr while still in flight. May throw — e.g. a
    // get that the home answered with "no such block" — and the error is
    // attributed to the owning entry.
    std::function<BlockPtr()> resolve;
    // Where to deposit the resolved block (a slot inside the entry's
    // closure state, written on the interpreter thread before the entry
    // becomes ready; the state transition publishes it to the pool).
    std::function<void(BlockPtr)> deposit;
  };

  struct Entry {
    // Block-level hazard sets. Keys are base (container) BlockIds; sliced
    // accesses are tracked conservatively through their containing block.
    std::vector<BlockId> reads;
    std::vector<BlockId> writes;
    // Writes backed by freshly allocated storage (decode-time register
    // renaming of full temp overwrites): earlier in-flight accesses hold
    // pointers to the superseded physical block, so these take no
    // WAW/WAR dependencies — but they still claim the scoreboard's
    // last-writer slot so later readers RAW-chain onto this entry. An id
    // must not appear in both `writes` and `renamed_writes`.
    std::vector<BlockId> renamed_writes;
    // Heavy work, run on a pool thread once hazards are clear and all
    // pending operands resolved. May be null (retire-only entries, e.g. a
    // deferred get issue).
    std::function<void()> execute;
    // Program-order side effects, run on the interpreter thread at
    // retirement (put/prepare sends, deferred gets). May be null.
    std::function<void()> retire;
    std::vector<PendingOperand> pending_operands;
    // Bytecode position, for error attribution.
    int pc = -1;
  };

  struct Stats {
    std::int64_t tasks_executed = 0;    // entries run on the pool
    std::int64_t entries_retired = 0;
    std::int64_t hazard_stalls = 0;     // entries enqueued with live deps
    // Dependency edges observed at enqueue, classified by hazard kind
    // (an entry may contribute several edges; edges are counted before
    // dedup against other kinds, so their sum can exceed hazard_stalls).
    std::int64_t raw_deps = 0;          // read waits on an earlier write
    std::int64_t war_deps = 0;          // write waits on an earlier read
    std::int64_t waw_deps = 0;          // write waits on an earlier write
    std::int64_t operand_stalls = 0;    // entries that parked on a fetch
    std::int64_t drains = 0;            // full-window drains
    std::int64_t window_peak = 0;       // max simultaneous entries
    std::int64_t occupancy_sum = 0;     // window size sampled at enqueue
    std::int64_t occupancy_samples = 0;
    double drain_wait_seconds = 0.0;    // interpreter blocked in drain()
    // Per-pool-thread busy time and task counts (timeline summary).
    std::vector<double> thread_busy_seconds;
    std::vector<std::int64_t> thread_tasks;
  };

  // `threads` >= 1. `window_limit` bounds the number of in-flight entries
  // (the scan-ahead distance).
  DataflowExecutor(int threads, std::size_t window_limit);
  ~DataflowExecutor();
  DataflowExecutor(const DataflowExecutor&) = delete;
  DataflowExecutor& operator=(const DataflowExecutor&) = delete;

  // ------------------------------------------------------------------
  // Interpreter-thread interface.

  // Adds an entry at the window tail. The caller must have made room
  // first (window_full() false — see pump/wait_progress).
  void enqueue(Entry entry);

  // Makes progress without blocking: resolves pending operands, issues
  // newly ready entries to the pool, and retires completed entries from
  // the window head in program order (running their retire actions).
  // Rethrows, in program order, any error a pool thread captured.
  void pump();

  // Blocks up to `timeout_ms` for a completion event (or returns at once
  // if one arrived since the last pump). The caller loops
  // { pump(); service_messages(); wait_progress(...); } so fabric service
  // continues while compute is in flight.
  void wait_progress(int timeout_ms);

  bool window_full() const { return window_.size() >= window_limit_; }
  bool idle() const { return window_.empty(); }
  std::size_t window_size() const { return window_.size(); }

  // True while any un-retired entry writes `id` (used by the interpreter
  // to order scan-time reads behind window writes).
  bool writes_block(const BlockId& id) const;

  // Drops every entry that has not started executing and waits for the
  // running ones; retire actions are NOT run. Used on abort paths so the
  // worker can unwind without waiting for operands that will never
  // arrive. Safe to call repeatedly.
  void cancel();

  // Accounting for interpreter-side drains (waiting the window empty at
  // a boundary): bumps Stats::drains / drain_wait_seconds.
  void record_drain(double wait_seconds);

  // Bytecode position of the entry whose error pump() is currently
  // rethrowing (or whose retire action is running); -1 otherwise. Lets
  // the interpreter attribute deferred errors to the right SIAL line.
  int last_error_pc() const { return last_error_pc_; }

  int threads() const { return static_cast<int>(pool_.size()); }
  const Stats& stats() const { return stats_; }

 private:
  enum class State {
    kWaitingOperands,  // pending operands unresolved
    kWaitingHazards,   // operands ready, earlier conflicting entries live
    kReady,            // queued for the pool
    kRunning,
    kDone,             // execute finished (or failed: error_ set)
    kRetired,
  };

  struct Node {
    Entry entry;
    std::uint64_t seq = 0;
    State state = State::kWaitingOperands;
    int unmet_deps = 0;              // earlier entries this one waits on
    std::vector<Node*> dependents;   // entries waiting on this one
    std::exception_ptr error;
    bool counted_operand_stall = false;
  };

  // Per-hazard-key scoreboard: the last enqueued writer and the readers
  // that arrived after it (what a later writer must wait out).
  struct KeyState {
    Node* last_writer = nullptr;
    std::vector<Node*> readers_since_write;
  };

  void worker_loop(int thread_index);
  // Lock held. Moves a node whose deps and operands cleared into the
  // ready queue (or straight to Done for retire-only entries).
  void make_ready_locked(Node* node);
  void on_complete_locked(Node* node);
  void resolve_operands_locked(std::unique_lock<std::mutex>& lock);

  const std::size_t window_limit_;
  mutable std::mutex mutex_;
  std::condition_variable pool_cv_;      // wakes pool threads
  std::condition_variable progress_cv_;  // wakes the interpreter thread
  std::deque<std::unique_ptr<Node>> window_;  // program order, head retires
  std::vector<Node*> ready_;                  // issue queue for the pool
  std::unordered_map<BlockId, KeyState, BlockIdHash> keys_;
  // Un-retired write counts per block, for writes_block().
  std::unordered_map<BlockId, int, BlockIdHash> live_writes_;
  std::uint64_t next_seq_ = 1;
  int last_error_pc_ = -1;
  bool progress_event_ = false;
  bool shutdown_ = false;
  bool cancelled_ = false;
  std::vector<std::thread> pool_;
  Stats stats_;
};

}  // namespace sia::sip
