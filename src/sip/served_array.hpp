// Worker-side client for served (disk-backed) arrays.
//
// "Blocks of served arrays are obtained with request and stored with
// prepare commands" (paper §IV-A). The client sends prepares to the
// responsible I/O server and issues asynchronous requests whose replies
// land in a local LRU cache. Epochs advance at server_barrier, mirroring
// the distributed-array rules.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "block/block.hpp"
#include "block/block_cache.hpp"
#include "block/block_id.hpp"
#include "block/block_pool.hpp"
#include "msg/message.hpp"
#include "sip/shared.hpp"

namespace sia::sip {

class ServedArrayClient {
 public:
  struct Stats {
    std::int64_t requests_issued = 0;
    std::int64_t requests_cached = 0;
    std::int64_t prepares = 0;
    std::int64_t replies_dropped = 0;
  };

  ServedArrayClient(SipShared& shared, int my_rank, BlockPool& pool,
                    std::size_t cache_capacity_doubles);

  // SIAL `request`: async fetch unless cached or in flight.
  void issue_request(const BlockId& id);
  // Cached block or nullptr.
  BlockPtr try_read(const BlockId& id);
  bool pending(const BlockId& id) const;

  // SIAL `prepare` / `prepare +=`.
  void prepare(const BlockId& id, const Block& data, bool accumulate);

  // server_barrier passed.
  void advance_epoch();

  void handle_reply(const msg::Message& message);

  const Stats& stats() const { return stats_; }

 private:
  BlockShape shape_of(const BlockId& id) const;
  std::int64_t linear_of(const BlockId& id) const;

  SipShared& shared_;
  int my_rank_;
  BlockPool& pool_;
  BlockCache cache_;
  std::unordered_map<BlockId, std::int64_t, BlockIdHash> pending_;
  std::int64_t epoch_ = 0;
  Stats stats_;
};

}  // namespace sia::sip
