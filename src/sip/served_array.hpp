// Worker-side client for served (disk-backed) arrays.
//
// "Blocks of served arrays are obtained with request and stored with
// prepare commands" (paper §IV-A). The client sends prepares to the
// responsible I/O server and issues asynchronous requests whose replies
// land in a local LRU cache. Epochs advance at server_barrier, mirroring
// the distributed-array rules — including the zero-copy payload path and
// the prepare-accumulate shadow table (`coalesce_puts`).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "block/block.hpp"
#include "block/block_cache.hpp"
#include "block/block_id.hpp"
#include "block/block_pool.hpp"
#include "msg/message.hpp"
#include "msg/reliable.hpp"
#include "sip/shared.hpp"

namespace sia::sip {

class ServedArrayClient {
 public:
  struct Stats {
    std::int64_t requests_issued = 0;
    std::int64_t requests_cached = 0;
    std::int64_t lookahead_issued = 0;   // speculative requests sent
    std::int64_t lookahead_misses = 0;   // server had no such block (yet)
    std::int64_t lookahead_promoted = 0; // demand sent while one in flight
    std::int64_t prepares = 0;           // prepare messages actually sent
    std::int64_t prepares_coalesced = 0; // merged into the shadow table
    std::int64_t coalesce_flushes = 0;   // shadow entries sent out
    std::int64_t replies_dropped = 0;
    // Norm-based screening (sparse arrays, sparse_threshold > 0).
    std::int64_t prepares_screened = 0;  // payloads dropped at the sender
    std::int64_t zero_reads = 0;         // replies answered "screened"
  };

  ServedArrayClient(SipShared& shared, int my_rank, BlockPool& pool,
                    std::size_t cache_capacity_doubles,
                    bool coalesce_puts = false);

  // SIAL `request`: async fetch unless cached or a demand fetch is
  // already in flight. If only a look-ahead is in flight, a demand
  // request is sent anyway: it coalesces onto the server's in-flight
  // read table and promotes the queued read-ahead job to demand
  // priority, instead of leaving the worker blocked behind every other
  // rank's demand traffic.
  void issue_request(const BlockId& id);
  // Speculative fetch for a future loop iteration. Like issue_request but
  // flagged look-ahead: the server queues it behind demand reads and
  // answers with a miss (instead of failing the run) if the block was
  // never prepared. No-op if cached, in flight, or shadowed by a pending
  // coalesced prepare+=.
  void issue_lookahead(const BlockId& id);
  // Cached block or nullptr.
  BlockPtr try_read(const BlockId& id);
  bool pending(const BlockId& id) const;

  // SIAL `prepare` / `prepare +=`. Passing the last reference
  // (use_count == 1) moves the block into the message without a copy.
  void prepare(const BlockId& id, BlockPtr data, bool accumulate);

  // Sends pending coalesced prepare+= entries. Must run before entering
  // any barrier; also called at pardo iteration boundaries.
  void flush_coalesced();
  std::size_t coalesced_pending() const { return coalesce_.size(); }

  // server_barrier passed.
  void advance_epoch();

  // Takes the message by mutable reference to adopt its block payload.
  void handle_reply(msg::Message& message);

  // Reliable protocol: when set, prepares go out as tracked ordered sends
  // (retransmitted until the server acks durability) and requests as
  // tracked idempotent sends (the reply is the ack). Null = plain sends.
  void set_channel(msg::ReliableChannel* channel) { channel_ = channel; }

  const Stats& stats() const { return stats_; }

 private:
  BlockShape shape_of(const BlockId& id) const;
  std::int64_t linear_of(const BlockId& id) const;
  bool screenable(int array_id) const;
  double threshold() const;
  BlockPtr make_exclusive(BlockPtr data);
  void flush_coalesced_block(const BlockId& id);
  void send_prepare_message(const BlockId& id, BlockPtr exclusive_data,
                            bool accumulate);
  // Header-only replace prepare for a below-threshold payload: the server
  // records the block as screened in its presence map without a write.
  void send_screened_prepare(const BlockId& id, double norm);

  // One in-flight fetch of a block. A look-ahead and a demand request
  // may be outstanding at once (look-ahead promotion); `lookahead_stale`
  // marks a speculative reply pre-dating one of our own prepares, which
  // must be discarded — the server replies tagged with the request kind
  // so the stale speculative reply cannot be confused with the demand
  // reply that supersedes it.
  struct Pending {
    std::int64_t epoch = 0;
    bool demand_inflight = false;
    bool lookahead_inflight = false;
    bool lookahead_stale = false;
  };

  SipShared& shared_;
  int my_rank_;
  BlockPool& pool_;
  msg::ReliableChannel* channel_ = nullptr;
  BlockCache cache_;
  std::unordered_map<BlockId, Pending, BlockIdHash> pending_;
  // Write-combining shadow table of exclusively owned prepare+= payloads.
  std::unordered_map<BlockId, BlockPtr, BlockIdHash> coalesce_;
  bool coalesce_enabled_ = false;
  std::int64_t epoch_ = 0;
  Stats stats_;
};

}  // namespace sia::sip
