#include "sip/scheduler.hpp"

#include <algorithm>

namespace sia::sip {

std::pair<std::int64_t, std::int64_t> GuidedSchedule::next_chunk() {
  if (next_ >= total_) return {total_, total_};
  const std::int64_t remaining = total_ - next_;
  std::int64_t size =
      remaining / (static_cast<std::int64_t>(chunk_divisor_) * workers_);
  size = std::max<std::int64_t>(size, min_chunk_);
  // Fair-share clamp: once remaining < chunk_divisor * workers * min_chunk
  // the guided term underflows and every chunk is min_chunk regardless of
  // how many workers still want work — with a large min_chunk one worker
  // grabs nearly the whole tail and the rest starve. Cap late chunks at
  // ceil(remaining / workers) so the tail still splits across the active
  // workers; the fair share wins over min_chunk when they conflict.
  const std::int64_t fair =
      (remaining + workers_ - 1) / std::max(workers_, 1);
  size = std::min(size, std::max<std::int64_t>(fair, 1));
  size = std::min(size, remaining);
  const std::int64_t begin = next_;
  next_ += size;
  ++chunks_given_;
  return {begin, next_};
}

GuidedSchedule* ScheduleTable::get_or_create(int pardo_id,
                                             std::int64_t instance,
                                             std::int64_t total,
                                             bool* total_mismatch) {
  *total_mismatch = false;
  const Key key{pardo_id, instance};
  auto it = schedules_.find(key);
  if (it == schedules_.end()) {
    it = schedules_
             .emplace(key, State{GuidedSchedule(total, workers_,
                                                chunk_divisor_, min_chunk_),
                                 0})
             .first;
  } else if (it->second.schedule.total() != total) {
    *total_mismatch = true;
  }
  return &it->second.schedule;
}

void ScheduleTable::retire(int pardo_id, std::int64_t instance) {
  const Key key{pardo_id, instance};
  auto it = schedules_.find(key);
  if (it == schedules_.end()) return;
  if (++it->second.done_workers >= workers_) {
    schedules_.erase(it);
  }
}

}  // namespace sia::sip
