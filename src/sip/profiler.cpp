#include "sip/profiler.hpp"

#include <algorithm>
#include <sstream>

#include "common/stats.hpp"

namespace sia::sip {

double ProfileReport::Scheduling::imbalance_percent() const {
  if (worker_iterations.empty()) return 0.0;
  std::int64_t lo = worker_iterations.front();
  std::int64_t hi = worker_iterations.front();
  std::int64_t sum = 0;
  for (const std::int64_t n : worker_iterations) {
    lo = std::min(lo, n);
    hi = std::max(hi, n);
    sum += n;
  }
  if (sum <= 0) return 0.0;
  const double mean =
      static_cast<double>(sum) / static_cast<double>(worker_iterations.size());
  return 100.0 * static_cast<double>(hi - lo) / mean;
}

double ProfileReport::wait_percent() const {
  if (total_busy + total_wait <= 0.0) return 0.0;
  return 100.0 * total_wait / (total_busy + total_wait);
}

std::string ProfileReport::to_string() const {
  std::ostringstream out;
  out << "=== SIP profile ===\n";
  out << "elapsed " << TablePrinter::num(total_elapsed * 1e3, 2)
      << " ms, busy " << TablePrinter::num(total_busy * 1e3, 2)
      << " ms, wait " << TablePrinter::num(total_wait * 1e3, 2) << " ms ("
      << TablePrinter::num(wait_percent(), 1) << "% of work time)\n";
  if (total_wait > 0.0) {
    out << "wait breakdown: block "
        << TablePrinter::num(block_wait * 1e3, 2) << " ms, served "
        << TablePrinter::num(served_wait * 1e3, 2) << " ms, chunk "
        << TablePrinter::num(chunk_wait * 1e3, 2) << " ms, barrier "
        << TablePrinter::num(barrier_wait * 1e3, 2) << " ms, collective "
        << TablePrinter::num(collective_wait * 1e3, 2) << " ms\n";
  }
  if (served.any()) {
    out << "served pipeline: client issued " << served.client_requests_issued
        << " requests (" << served.client_requests_cached
        << " served from worker cache), look-ahead "
        << served.client_lookahead_issued << " issued / "
        << served.client_lookahead_misses << " missed / "
        << served.client_lookahead_promoted << " promoted\n";
    out << "  servers: " << served.server_requests << " demand + "
        << served.server_lookahead_requests << " look-ahead requests, "
        << served.server_cache_hits << " cache hits, "
        << served.server_disk_reads << " disk reads ("
        << served.reads_coalesced << " coalesced), "
        << served.server_disk_writes << " disk writes in "
        << served.write_batches << " batches, " << served.map_flushes
        << " map flushes";
    if (served.computed > 0) {
      out << ", " << served.computed << " blocks computed on demand";
    }
    out << "\n";
  }
  if (robustness.any()) {
    out << "robustness: " << robustness.retries_sent << " retries sent, "
        << robustness.dup_msgs_dropped << " duplicate msgs dropped, "
        << robustness.acks_timed_out << " acks timed out, "
        << robustness.heartbeats_missed << " heartbeats missed, "
        << robustness.server_recoveries << " server recoveries, "
        << robustness.sends_after_stop << " sends after stop\n";
    if (robustness.faults_injected() != 0) {
      out << "  faults injected: " << robustness.faults_dropped
          << " dropped, " << robustness.faults_duplicated << " duplicated, "
          << robustness.faults_delayed << " delayed, "
          << robustness.faults_reordered << " reordered, "
          << robustness.faults_kill_swallowed << " kill-swallowed, "
          << robustness.faults_disk << " disk\n";
    }
  }
  if (executor.any()) {
    out << "dataflow executor: " << executor.threads
        << " threads/worker, " << executor.entries_retired
        << " entries retired (" << executor.tasks_executed
        << " pool tasks), window peak " << executor.window_peak
        << ", avg occupancy "
        << TablePrinter::num(executor.avg_occupancy(), 1) << "\n";
    out << "  stalls: " << executor.hazard_stalls << " hazard ("
        << executor.raw_deps << " RAW / " << executor.war_deps << " WAR / "
        << executor.waw_deps << " WAW edges), "
        << executor.operand_stalls << " operand; " << executor.drains
        << " drains ("
        << TablePrinter::num(executor.drain_wait_seconds * 1e3, 2)
        << " ms waited), pool busy "
        << TablePrinter::num(executor.thread_busy_seconds * 1e3, 2)
        << " ms\n";
  }
  if (screening.any()) {
    out << "screening: threshold " << screening.threshold << ", "
        << screening.blocks_screened << " transfers elided ("
        << TablePrinter::num(
               static_cast<double>(screening.bytes_elided) / (1024.0 * 1024.0),
               2)
        << " MiB), " << screening.kernels_screened << " kernels skipped\n";
    out << "  puts " << screening.puts_screened << " dropped, gets "
        << screening.gets_screened << " norm-only; prepares "
        << screening.prepares_screened << " dropped, requests "
        << screening.requests_screened << " norm-only; "
        << screening.zero_reads << " zero-block reads, "
        << screening.evictions_screened << " victims re-screened\n";
    for (const Screening::ArrayCensus& array : screening.arrays) {
      out << "  array " << array.name << ": " << array.screened << "/"
          << array.total << " blocks screened ("
          << TablePrinter::num(
                 array.total > 0 ? 100.0 * static_cast<double>(array.screened) /
                                       static_cast<double>(array.total)
                                 : 0.0,
                 1)
          << "%)\n";
    }
  }
  if (plan.any()) {
    out << "plan: " << plan.summary << "\n";
    out << "  predicted " << TablePrinter::num(plan.predicted_seconds, 3)
        << " s";
    if (plan.actual_seconds > 0.0) {
      out << ", actual " << TablePrinter::num(plan.actual_seconds, 3)
          << " s (model error "
          << TablePrinter::num(plan.error_percent(), 1) << "%)";
    }
    out << "; " << plan.candidates << " candidates swept, "
        << (plan.calibrated ? "calibrated" : "cold calibration") << "\n";
    if (!plan.pinned.empty()) {
      out << "  pinned by user:";
      for (const std::string& knob : plan.pinned) out << " " << knob;
      out << "\n";
    }
  }
  if (scheduling.any()) {
    out << "scheduling: " << scheduling.chunks_served << " chunks, "
        << scheduling.steal_attempts << " steal attempts, "
        << scheduling.steals_granted << " granted ("
        << scheduling.stolen_iterations << " iterations moved), imbalance "
        << TablePrinter::num(scheduling.imbalance_percent(), 1) << "%\n";
    if (!scheduling.worker_iterations.empty()) {
      out << "  iterations by worker:";
      for (const std::int64_t n : scheduling.worker_iterations) {
        out << " " << n;
      }
      out << "\n";
    }
  }
  if (!pardos.empty()) {
    out << "pardo loops:\n";
    for (const PardoCost& pardo : pardos) {
      out << "  pardo@" << pardo.line << ": " << pardo.iterations
          << " iterations, elapsed "
          << TablePrinter::num(pardo.elapsed * 1e3, 2) << " ms, wait "
          << TablePrinter::num(pardo.wait * 1e3, 2) << " ms\n";
    }
  }
  out << "hottest super instructions:\n";
  const std::size_t limit = std::min<std::size_t>(lines.size(), 10);
  for (std::size_t i = 0; i < limit; ++i) {
    out << "  line " << lines[i].line << " " << lines[i].opcode << ": "
        << lines[i].count << " executions, "
        << TablePrinter::num(lines[i].seconds * 1e3, 2) << " ms\n";
  }
  return out.str();
}

}  // namespace sia::sip
