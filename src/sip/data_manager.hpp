// Worker-local data: index values, scalars, and node-local array kinds.
//
// Static arrays are "small and replicated in all nodes"; temp and local
// arrays hold blocks of intermediate results on the node (paper §IV-A).
// This manager owns those three kinds plus the worker's view of index
// values and scalar variables. Distributed and served arrays live in
// their own managers because they involve communication.
#pragma once

#include <unordered_map>
#include <vector>

#include "block/block.hpp"
#include "block/block_id.hpp"
#include "block/block_pool.hpp"
#include "sial/program.hpp"

namespace sia::sip {

class DataManager {
 public:
  DataManager(const sial::ResolvedProgram& program, BlockPool& pool);

  // ------------------------------------------------------------------
  // Index values (absolute segment numbers).
  long index_value(int index_id) const {
    return index_values_[static_cast<std::size_t>(index_id)];
  }
  void set_index_value(int index_id, long value) {
    index_values_[static_cast<std::size_t>(index_id)] = value;
  }
  void clear_index_value(int index_id) {
    index_values_[static_cast<std::size_t>(index_id)] =
        sial::kUndefinedIndexValue;
  }
  std::span<const long> index_values() const { return index_values_; }

  // ------------------------------------------------------------------
  // Scalars.
  double scalar(int slot) const {
    return scalars_[static_cast<std::size_t>(slot)];
  }
  double& scalar_ref(int slot) { return scalars_[static_cast<std::size_t>(slot)]; }
  void set_scalar(int slot, double value) {
    scalars_[static_cast<std::size_t>(slot)] = value;
  }
  std::span<const double> scalars() const { return scalars_; }

  // ------------------------------------------------------------------
  // Node-local blocks (static / temp / local).

  // Reads the stored block for a selector; by-kind behaviour:
  //   static: created zeroed on first touch (replicated, accumulated into)
  //   temp:   must have been assigned in this pardo iteration, else error
  //   local:  must have been allocated, else error
  BlockPtr read_local_kind(const sial::BlockSelector& selector);

  // Returns the destination block for a write. For temps a missing block
  // is created (a plain assignment defines the temp); if `accumulating`
  // a missing temp is created zeroed so `+=` works after get-like flows.
  // For sliced writes the containing block must already exist for temps.
  BlockPtr write_local_kind(const sial::BlockSelector& selector);

  // Register renaming for the dataflow window: rebinds an unsliced temp
  // block to fresh storage and returns it. Earlier decoded window entries
  // keep their BlockPtr snapshots of the superseded block, so a full
  // overwrite need not wait out in-flight readers/writers of the old
  // storage. Only valid for unsliced temp selectors. The superseded
  // block leaves local-memory accounting immediately (it is owned by the
  // window from here on, bounded by the window limit).
  BlockPtr rename_local(const sial::BlockSelector& selector);

  // True if the block currently exists.
  bool has_block(const BlockId& id) const;

  // allocate/deallocate for local arrays; `dim_lo/dim_hi` give the 1-based
  // grid range per dimension (wildcards expanded by the caller).
  void allocate_local(int array_id, std::span<const int> lo,
                      std::span<const int> hi);
  void deallocate_local(int array_id, std::span<const int> lo,
                        std::span<const int> hi);

  // Drops all temp blocks (called at each pardo iteration boundary).
  void clear_temps();

  // Peak node-local memory in doubles (statics + temps + locals).
  std::size_t used_doubles() const { return used_doubles_; }
  std::size_t peak_doubles() const { return peak_doubles_; }

 private:
  BlockPtr make_block(const BlockShape& shape);
  void account_add(std::size_t doubles);
  void account_remove(std::size_t doubles);

  const sial::ResolvedProgram& program_;
  BlockPool& pool_;
  std::vector<long> index_values_;
  std::vector<double> scalars_;
  // All node-local blocks in one map (array ids are globally unique).
  std::unordered_map<BlockId, BlockPtr, BlockIdHash> blocks_;
  // Ids of blocks belonging to temp arrays (for clear_temps).
  std::vector<BlockId> temp_ids_;
  std::size_t used_doubles_ = 0;
  std::size_t peak_doubles_ = 0;
};

}  // namespace sia::sip
