#include "sip/checkpoint.hpp"

#include <cctype>
#include <cstdio>
#include <memory>

#include "common/error.hpp"

namespace sia::sip::checkpoint {

namespace {

struct FileCloser {
  void operator()(std::FILE* file) const {
    if (file != nullptr) std::fclose(file);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

FilePtr open_or_throw(const std::string& path, const char* mode) {
  FilePtr file(std::fopen(path.c_str(), mode));
  if (!file) {
    throw RuntimeError("cannot open checkpoint file " + path);
  }
  return file;
}

std::string part_path(const std::string& dir, const std::string& key,
                      int part) {
  return dir + "/" + sanitize_key(key) + ".part" + std::to_string(part);
}

std::string manifest_path(const std::string& dir, const std::string& key) {
  return dir + "/" + sanitize_key(key) + ".manifest";
}

}  // namespace

std::string sanitize_key(const std::string& key) {
  std::string out;
  out.reserve(key.size());
  for (const char c : key) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                    c == '_' || c == '-';
    out += ok ? c : '_';
  }
  return out.empty() ? std::string("checkpoint") : out;
}

void write_manifest(const std::string& dir, const std::string& key,
                    const Manifest& manifest) {
  FilePtr file = open_or_throw(manifest_path(dir, key), "w");
  std::fprintf(file.get(), "%s %d %lld\n", manifest.array_name.c_str(),
               manifest.parts,
               static_cast<long long>(manifest.total_blocks));
}

Manifest read_manifest(const std::string& dir, const std::string& key) {
  FilePtr file = open_or_throw(manifest_path(dir, key), "r");
  char name[256] = {};
  int parts = 0;
  long long total = 0;
  if (std::fscanf(file.get(), "%255s %d %lld", name, &parts, &total) != 3) {
    throw RuntimeError("corrupt checkpoint manifest for key '" + key + "'");
  }
  Manifest manifest;
  manifest.array_name = name;
  manifest.parts = parts;
  manifest.total_blocks = total;
  return manifest;
}

void write_part(
    const std::string& dir, const std::string& key, int part,
    const sial::ResolvedProgram& program, int array_id,
    const std::unordered_map<BlockId, BlockPtr, BlockIdHash>& home) {
  const sial::ResolvedArray& array = program.array(array_id);
  FilePtr file = open_or_throw(part_path(dir, key, part), "wb");
  for (const auto& [id, block] : home) {
    if (id.array_id != array_id) continue;
    const std::int64_t linear = id.linearize(array.num_segments);
    const std::int64_t count = static_cast<std::int64_t>(block->size());
    if (std::fwrite(&linear, sizeof linear, 1, file.get()) != 1 ||
        std::fwrite(&count, sizeof count, 1, file.get()) != 1 ||
        std::fwrite(block->data().data(), sizeof(double),
                    block->size(), file.get()) != block->size()) {
      throw RuntimeError("short write to checkpoint part file");
    }
  }
}

void read_part(const std::string& dir, const std::string& key, int part,
               const std::function<void(std::int64_t,
                                        const std::vector<double>&)>& fn) {
  FilePtr file = open_or_throw(part_path(dir, key, part), "rb");
  std::vector<double> payload;
  while (true) {
    std::int64_t linear = 0, count = 0;
    const std::size_t got = std::fread(&linear, sizeof linear, 1, file.get());
    if (got == 0) break;  // clean EOF
    if (std::fread(&count, sizeof count, 1, file.get()) != 1 || count < 0) {
      throw RuntimeError("corrupt checkpoint part file");
    }
    payload.resize(static_cast<std::size_t>(count));
    if (std::fread(payload.data(), sizeof(double), payload.size(),
                   file.get()) != payload.size()) {
      throw RuntimeError("corrupt checkpoint part file (payload)");
    }
    fn(linear, payload);
  }
}

}  // namespace sia::sip::checkpoint
