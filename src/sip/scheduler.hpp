// Guided pardo chunk scheduling (master side).
//
// "Initially, the set of iterations ... is divided into 'chunks' and doled
// out to the workers. When a worker completes its chunk, it requests
// another chunk from the master. The chunk size decreases as the
// computation proceeds. This is similar to the approach taken with guided
// scheduling in OpenMP." (paper §V-B).
#pragma once

#include <cstdint>
#include <map>
#include <utility>

namespace sia::sip {

// Chunk state for one pardo instance. Positions are indices into the
// (worker-side) filtered iteration list; the master only needs the count.
class GuidedSchedule {
 public:
  GuidedSchedule(std::int64_t total, int workers, int chunk_divisor,
                 long min_chunk)
      : total_(total), workers_(workers), chunk_divisor_(chunk_divisor),
        min_chunk_(min_chunk) {}

  // Next [begin, end) chunk; begin == end == total means "done".
  std::pair<std::int64_t, std::int64_t> next_chunk();

  std::int64_t total() const { return total_; }
  bool exhausted() const { return next_ >= total_; }
  int chunks_given() const { return chunks_given_; }

 private:
  std::int64_t total_;
  int workers_;
  int chunk_divisor_;
  long min_chunk_;
  std::int64_t next_ = 0;
  int chunks_given_ = 0;
};

// Keyed store of schedules for concurrently active pardo instances.
// Key: (pardo_id, instance number at the requesting worker).
class ScheduleTable {
 public:
  ScheduleTable(int workers, int chunk_divisor, long min_chunk)
      : workers_(workers), chunk_divisor_(chunk_divisor),
        min_chunk_(min_chunk) {}

  // Returns the schedule for the given key, creating it with `total`
  // positions on first contact. A total mismatch between workers means
  // divergent control flow and is reported via the bool.
  GuidedSchedule* get_or_create(int pardo_id, std::int64_t instance,
                                std::int64_t total, bool* total_mismatch);

  // Drops exhausted schedules that every worker has seen.
  void retire(int pardo_id, std::int64_t instance);

  std::size_t active() const { return schedules_.size(); }

 private:
  struct Key {
    int pardo_id;
    std::int64_t instance;
    bool operator<(const Key& other) const {
      return pardo_id != other.pardo_id ? pardo_id < other.pardo_id
                                        : instance < other.instance;
    }
  };
  struct State {
    GuidedSchedule schedule;
    int done_workers = 0;
  };

  int workers_;
  int chunk_divisor_;
  long min_chunk_;
  std::map<Key, State> schedules_;
};

}  // namespace sia::sip
