#include "sip/planner.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "blas/gemm.hpp"
#include "common/timer.hpp"
#include "sial/program.hpp"
#include "sim/des.hpp"
#include "sim/machine.hpp"
#include "sim/program_model.hpp"
#include "sip/master.hpp"

namespace sia::sip {

// ---------------------------------------------------------------------
// Calibration persistence.

namespace {

constexpr const char* kCalibrationMagic = "sia_calibration v1";

}  // namespace

std::string Calibration::serialize() const {
  std::ostringstream out;
  out.precision(17);
  out << kCalibrationMagic << "\n";
  out << "gemm_gflops " << gemm_gflops << "\n";
  out << "latency_s " << latency_s << "\n";
  out << "link_bw " << link_bw << "\n";
  out << "disk_bw " << disk_bw << "\n";
  out << "master_service_s " << master_service_s << "\n";
  out << "kernel_knee " << kernel_knee << "\n";
  out << "execute_gflops " << execute_gflops << "\n";
  out << "time_scale " << time_scale << "\n";
  out << "runs " << runs << "\n";
  out << "last_error_percent " << last_error_percent << "\n";
  return out.str();
}

Calibration Calibration::parse(const std::string& text, bool* ok) {
  *ok = false;
  Calibration cal;
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kCalibrationMagic) return Calibration{};
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string key;
    double value = 0.0;
    if (!(fields >> key >> value) || !std::isfinite(value)) {
      return Calibration{};
    }
    if (key == "gemm_gflops") {
      cal.gemm_gflops = value;
    } else if (key == "latency_s") {
      cal.latency_s = value;
    } else if (key == "link_bw") {
      cal.link_bw = value;
    } else if (key == "disk_bw") {
      cal.disk_bw = value;
    } else if (key == "master_service_s") {
      cal.master_service_s = value;
    } else if (key == "kernel_knee") {
      cal.kernel_knee = value;
    } else if (key == "execute_gflops") {
      cal.execute_gflops = value;
    } else if (key == "time_scale") {
      cal.time_scale = value;
    } else if (key == "runs") {
      cal.runs = static_cast<int>(value);
    } else if (key == "last_error_percent") {
      cal.last_error_percent = value;
    }
    // Unknown keys: ignored (newer writers may add constants).
  }
  // Sanity bounds: a file full of zeros or negatives would divide the
  // model by nonsense; treat it as corrupt.
  if (cal.gemm_gflops <= 0.0 || cal.latency_s <= 0.0 || cal.link_bw <= 0.0 ||
      cal.disk_bw <= 0.0 || cal.master_service_s <= 0.0 ||
      cal.kernel_knee <= 0.0 || cal.execute_gflops <= 0.0 ||
      cal.time_scale <= 0.0 || cal.runs < 0) {
    return Calibration{};
  }
  *ok = true;
  return cal;
}

Calibration Calibration::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Calibration{};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  bool ok = false;
  Calibration cal = parse(buffer.str(), &ok);
  return ok ? cal : Calibration{};
}

bool Calibration::save(const std::string& path) const {
  std::error_code ec;
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << serialize();
  return static_cast<bool>(out);
}

std::string calibration_path(const SipConfig& config) {
  if (!config.calibration_file.empty()) return config.calibration_file;
  if (const char* env = std::getenv("SIA_CALIBRATION")) {
    if (env[0] != '\0') return env;
  }
  const char* home = std::getenv("HOME");
  const std::filesystem::path base =
      home != nullptr && home[0] != '\0'
          ? std::filesystem::path(home)
          : std::filesystem::temp_directory_path();
  return (base / ".cache" / "sia" / "calibration").string();
}

// ---------------------------------------------------------------------
// GEMM microbenchmark.

double measure_gemm_gflops() {
  // One block-sized multiply, repeated until a few milliseconds of work
  // accumulate. 64^3 sits in the regime real contractions run in.
  constexpr std::size_t kDim = 64;
  constexpr double kFlopsPerCall = 2.0 * kDim * kDim * kDim;
  std::vector<double> a(kDim * kDim), b(kDim * kDim), c(kDim * kDim, 0.0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = 0.5 + static_cast<double>(i % 17) * 0.03125;
    b[i] = 0.25 + static_cast<double>(i % 13) * 0.0625;
  }
  // Warm up (kernel dispatch, caches), then time.
  for (int rep = 0; rep < 2; ++rep) {
    blas::dgemm_packed(kDim, kDim, kDim, 1.0, a.data(), b.data(), 0.0,
                       c.data());
  }
  const double t0 = wall_seconds();
  int calls = 0;
  double elapsed = 0.0;
  do {
    blas::dgemm_packed(kDim, kDim, kDim, 1.0, a.data(), b.data(), 0.0,
                       c.data());
    ++calls;
    elapsed = wall_seconds() - t0;
  } while (elapsed < 3e-3 && calls < 256);
  if (elapsed <= 0.0) return Calibration{}.gemm_gflops;
  return kFlopsPerCall * static_cast<double>(calls) / elapsed * 1e-9;
}

// ---------------------------------------------------------------------
// The prediction model.

int HostModel::resolved_cores() const {
  if (cores > 0) return cores;
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  return std::max(1, hw);
}

namespace {

// GEMM efficiency as a function of segment size: small blocks cannot
// amortize packing and micro-kernel startup. Normalized to the segment
// the microbenchmark measures at (64), so gemm_gflops stays the rate at
// that size.
double segment_efficiency(int segment, double knee) {
  const auto eff = [&](double s) { return s / (s + knee); };
  return eff(static_cast<double>(std::max(segment, 1))) / eff(64.0);
}

// Compute threads a candidate actually gets on this host (the runtime's
// -1 auto rule, resolved against the modeled core count).
int resolved_threads(const SipConfig& cfg, int cores) {
  if (cfg.worker_threads >= 0) return cfg.worker_threads;
  return std::max(0, cores / std::max(1, cfg.total_ranks()));
}

}  // namespace

double predict_seconds(const sim::WorkloadModel& workload,
                       const SipConfig& candidate, const Calibration& cal,
                       const HostModel& host) {
  const int cores = host.resolved_cores();
  const int workers = candidate.workers;
  const int threads = resolved_threads(candidate, cores);

  // Per-worker compute rate. Each worker exposes max(1, threads) compute
  // lanes; all lanes across workers time-slice the host's cores. The
  // windowed engine pays bookkeeping overhead, threads >= 2 pay
  // synchronization, and oversubscribed lanes pay context switching —
  // which is exactly why threading loses on a 1-core host.
  const double lanes_per_worker = std::max(1, threads);
  const double total_lanes = lanes_per_worker * workers;
  const double core_share = std::min(1.0, cores / total_lanes);
  const double window_lanes =
      threads >= 1
          ? std::min(lanes_per_worker,
                     std::max(1.0, candidate.window_limit / 8.0))
          : 1.0;
  double engine = 1.0;
  if (threads >= 1) engine *= 0.95;   // window bookkeeping
  if (threads >= 2) engine *= 0.92;   // pool synchronization
  if (total_lanes > cores) engine *= 0.85;  // context switching
  const double worker_rate =
      cal.gemm_gflops * 1e9 *
      segment_efficiency(candidate.default_segment, cal.kernel_knee) *
      core_share * window_lanes * engine;

  sim::MachineModel machine;
  machine.name = "host";
  machine.flops_per_core = std::max(worker_rate, 1e6);
  machine.latency_s = cal.latency_s;
  machine.link_bw = cal.link_bw;
  machine.master_service_s = cal.master_service_s;
  machine.memory_per_core = static_cast<double>(candidate.worker_memory_bytes);
  machine.disk_bw = cal.disk_bw * std::max(1, candidate.server_disk_threads);
  machine.bisection_cores = 1e9;  // a host fabric has no bisection knee
  if (candidate.socket_transport()) {
    // Framed socket hops: syscall latency, single-copy framing.
    machine.latency_s *= 8.0;
    machine.link_bw *= 0.5;
  }

  sim::SimOptions options;
  options.overlap = candidate.prefetch_depth > 0;
  options.chunk_divisor = candidate.chunk_divisor;
  options.min_chunk = candidate.min_chunk;
  // Launch overhead at host scale: thread/process spin-up and the dry
  // run, far from the paper's 0.5 s cluster allocation cost.
  options.fixed_overhead_s =
      0.002 + 0.001 * candidate.total_ranks() +
      (candidate.spawn_processes() ? 0.05 * candidate.total_ranks() : 0.0);
  // Prefetching past the cache's look-ahead window re-fetches evicted
  // blocks instead of hiding latency.
  options.refetch_factor =
      candidate.prefetch_depth > 4
          ? 0.03 * (candidate.prefetch_depth - 4)
          : 0.0;

  // Write combining halves the put message stream on accumulate-heavy
  // loops (the payload still flows once per merged block).
  sim::WorkloadModel modeled = workload;
  if (candidate.coalesce_puts) {
    for (sim::PhaseModel& phase : modeled.phases) {
      phase.puts_per_task = (phase.puts_per_task + 1) / 2;
    }
  }

  // Superinstruction (integral-generator) flops run at a per-element
  // rate that does not follow the GEMM efficiency curve, and halve once
  // a block spills the per-core cache — which is why huge segments lose
  // on integral-heavy programs even though their GEMMs run faster. The
  // DES keeps a single machine rate, so convert those flops into
  // GEMM-equivalent flops at this candidate's segment efficiency.
  constexpr double kExecuteCacheBytes = 256.0 * 1024.0;
  const double gemm_rate =
      cal.gemm_gflops * 1e9 *
      segment_efficiency(candidate.default_segment, cal.kernel_knee);
  for (sim::PhaseModel& phase : modeled.phases) {
    if (phase.execute_flops_per_task <= 0.0) continue;
    double execute_rate = cal.execute_gflops * 1e9;
    if (phase.peak_block_bytes > kExecuteCacheBytes) execute_rate *= 0.5;
    phase.flops_per_task +=
        phase.execute_flops_per_task * (gemm_rate / execute_rate - 1.0);
  }

  const sim::WorkloadResult result =
      sim::simulate_workload(machine, modeled, workers, options);
  return result.seconds * cal.time_scale;
}

// ---------------------------------------------------------------------
// The sweep.

namespace {

constexpr double kInfeasible = std::numeric_limits<double>::infinity();
// Candidates whose workload would explode the DES event count are skipped
// so planning stays in the milliseconds the loop is budgeted for.
constexpr std::int64_t kMaxModelTasks = 2'000'000;

struct SegmentContext {
  std::unique_ptr<sial::ResolvedProgram> resolved;
  sim::WorkloadModel workload;
  // Feasibility pieces from the dry run, with the cache term split out so
  // other prefetch depths can be re-checked without re-resolving.
  std::size_t fixed_bytes = 0;       // static + temp + local + dist share
  std::size_t cache_unit_bytes = 0;  // cache demand per unit (1 + depth)
  bool valid = false;
};

bool feasible_at(const SegmentContext& ctx, const SipConfig& cfg) {
  const std::size_t cache =
      ctx.cache_unit_bytes * (1 + static_cast<std::size_t>(cfg.prefetch_depth));
  return ctx.fixed_bytes + cache <= cfg.worker_memory_bytes;
}

std::int64_t workload_tasks(const sim::WorkloadModel& workload) {
  std::int64_t tasks = 0;
  for (const sim::PhaseModel& phase : workload.phases) {
    tasks += phase.tasks * std::max(1, phase.sweeps);
  }
  return tasks;
}

std::string knob_summary(const SipConfig& cfg) {
  std::ostringstream out;
  out << "segment=" << cfg.default_segment
      << " worker_threads=" << cfg.worker_threads
      << " window=" << cfg.window_limit
      << " prefetch=" << cfg.prefetch_depth
      << " chunk_divisor=" << cfg.chunk_divisor
      << " min_chunk=" << cfg.min_chunk
      << " coalesce_puts=" << (cfg.coalesce_puts ? "on" : "off")
      << " disk_threads=" << cfg.server_disk_threads
      << " server_cache_mb=" << (cfg.server_cache_bytes >> 20);
  return out.str();
}

}  // namespace

PlanChoice plan_launch(const sial::CompiledProgram& optimized,
                       const SipConfig& base, const Calibration& cal,
                       const HostModel& host) {
  const SipConfig defaults;
  PlanChoice choice;
  choice.calibrated = cal.runs > 0;

  // A knob is pinned exactly when the user moved it off its default.
  const bool pin_segment =
      base.default_segment != defaults.default_segment ||
      !base.segment_overrides.empty();
  const bool pin_threads = base.worker_threads != defaults.worker_threads;
  const bool pin_window = base.window_limit != defaults.window_limit;
  const bool pin_prefetch = base.prefetch_depth != defaults.prefetch_depth;
  const bool pin_divisor = base.chunk_divisor != defaults.chunk_divisor;
  const bool pin_min_chunk = base.min_chunk != defaults.min_chunk;
  const bool pin_coalesce = base.coalesce_puts != defaults.coalesce_puts;
  const bool pin_disk_threads =
      base.server_disk_threads != defaults.server_disk_threads;
  const bool pin_server_cache =
      base.server_cache_bytes != defaults.server_cache_bytes;
  if (pin_segment) choice.pinned.push_back("segment");
  if (pin_threads) choice.pinned.push_back("worker_threads");
  if (pin_window) choice.pinned.push_back("window_limit");
  if (pin_prefetch) choice.pinned.push_back("prefetch_depth");
  if (pin_divisor) choice.pinned.push_back("chunk_divisor");
  if (pin_min_chunk) choice.pinned.push_back("min_chunk");
  if (pin_coalesce) choice.pinned.push_back("coalesce_puts");
  if (pin_disk_threads) choice.pinned.push_back("server_disk_threads");
  if (pin_server_cache) choice.pinned.push_back("server_cache_bytes");

  // Resolution and workload modeling are per segment; everything else
  // reuses the cached context.
  std::map<int, SegmentContext> contexts;
  auto context_for = [&](int segment) -> const SegmentContext& {
    auto it = contexts.find(segment);
    if (it != contexts.end()) return it->second;
    SegmentContext ctx;
    try {
      SipConfig cfg = base;
      cfg.default_segment = segment;
      ctx.resolved = std::make_unique<sial::ResolvedProgram>(optimized, cfg);
      const DryRunReport dry = dry_run(*ctx.resolved);
      ctx.fixed_bytes = dry.static_bytes + dry.temp_peak_bytes +
                        dry.local_bytes + dry.dist_share_bytes;
      ctx.cache_unit_bytes =
          dry.cache_demand_bytes /
          (1 + static_cast<std::size_t>(base.prefetch_depth));
      ctx.workload = sim::model_program(*ctx.resolved);
      ctx.valid = workload_tasks(ctx.workload) <= kMaxModelTasks;
    } catch (const std::exception&) {
      ctx.valid = false;  // e.g. a segment the index ranges reject
    }
    return contexts.emplace(segment, std::move(ctx)).first->second;
  };

  int evals = 0;
  auto eval = [&](const SipConfig& cfg) -> double {
    const SegmentContext& ctx = context_for(cfg.default_segment);
    if (!ctx.valid || !feasible_at(ctx, cfg)) return kInfeasible;
    ++evals;
    return predict_seconds(ctx.workload, cfg, cal, host);
  };

  // The serial baseline: the user's configuration with the legacy serial
  // engine. Seeding the search with it guarantees the chosen plan is
  // never predicted slower than serial (acceptance floor); when the user
  // pinned worker_threads the pin wins and the seed is the base itself.
  SipConfig best = base;
  if (!pin_threads) best.worker_threads = 0;
  double best_seconds = eval(best);
  choice.baseline_seconds = best_seconds;

  const int cores = host.resolved_cores();
  std::vector<int> segments;
  if (pin_segment) {
    segments = {base.default_segment};
  } else {
    segments = {base.default_segment, 2,  4,  6,  8,  12, 16,
                24,                   32, 48, 64, 96, 128};
    std::sort(segments.begin(), segments.end());
    segments.erase(std::unique(segments.begin(), segments.end()),
                   segments.end());
  }

  std::vector<int> thread_cands = {0, 1, 2, 4, 8, 16};
  thread_cands.erase(
      std::remove_if(thread_cands.begin(), thread_cands.end(),
                     [&](int t) { return t > 2 * cores; }),
      thread_cands.end());

  for (const int segment : segments) {
    if (!context_for(segment).valid) continue;
    SipConfig cfg = base;
    cfg.default_segment = segment;
    // Start the descent from the explicit serial engine when threads are
    // unpinned: the sweep tries every thread count anyway, strict-
    // improvement ties then resolve to 0, and the emitted plan never
    // contains the ambiguous -1 auto value.
    if (!pin_threads) cfg.worker_threads = 0;
    double seconds = eval(cfg);
    // Coordinate descent from the user's configuration, two passes so
    // knobs that interact (threads and window, prefetch and chunking)
    // settle. Strict improvement only: ties keep the earlier value, so
    // the sweep is deterministic and defaults win ties.
    for (int pass = 0; pass < 2; ++pass) {
      auto try_value = [&](auto field, auto value) {
        SipConfig trial = cfg;
        trial.*field = value;
        const double t = eval(trial);
        if (t < seconds) {
          seconds = t;
          cfg = trial;
        }
      };
      if (!pin_threads) {
        for (const int t : thread_cands) {
          try_value(&SipConfig::worker_threads, t);
        }
      }
      if (!pin_window && resolved_threads(cfg, cores) >= 1) {
        for (const int w : {8, 16, 32, 64, 128}) {
          try_value(&SipConfig::window_limit, w);
        }
      }
      if (!pin_prefetch) {
        for (const int d : {0, 1, 2, 4, 8}) {
          try_value(&SipConfig::prefetch_depth, d);
        }
      }
      if (!pin_divisor) {
        for (const int d : {1, 2, 4, 8}) {
          try_value(&SipConfig::chunk_divisor, d);
        }
      }
      if (!pin_min_chunk) {
        for (const long m : {1L, 2L, 4L, 8L}) {
          try_value(&SipConfig::min_chunk, m);
        }
      }
      if (!pin_coalesce) {
        for (const bool c : {true, false}) {
          try_value(&SipConfig::coalesce_puts, c);
        }
      }
    }
    if (seconds < best_seconds) {
      best_seconds = seconds;
      best = cfg;
    }
  }

  // Server knobs: the DES model does not resolve disk contention, so
  // these are set by sizing heuristics from the dry run instead of the
  // sweep. Only touched when unpinned and the program has served traffic.
  const SegmentContext& chosen_ctx = context_for(best.default_segment);
  if (chosen_ctx.valid && base.io_servers > 0) {
    std::size_t served_total = 0;
    try {
      for (const sial::ResolvedArray& array : chosen_ctx.resolved->arrays()) {
        if (array.kind == sial::ArrayKind::kServed) {
          served_total += array.total_elements * sizeof(double);
        }
      }
    } catch (const std::exception&) {
    }
    if (served_total > 0) {
      if (!pin_disk_threads) {
        best.server_disk_threads = std::clamp(cores / 2, 1, 4);
      }
      if (!pin_server_cache) {
        const std::size_t per_server =
            served_total / static_cast<std::size_t>(base.io_servers);
        best.server_cache_bytes =
            std::clamp(per_server, defaults.server_cache_bytes,
                       std::size_t{256} << 20);
      }
    }
  }

  // An infeasible-everywhere or unresolvable program: hand the base
  // config back untouched and let the launch report the real error.
  if (!std::isfinite(best_seconds)) {
    choice.config = base;
    choice.predicted_seconds = 0.0;
    choice.baseline_seconds = 0.0;
    choice.candidates = evals;
    choice.summary = "no feasible candidate; keeping user configuration";
    return choice;
  }

  choice.config = best;
  choice.predicted_seconds = best_seconds;
  choice.candidates = evals;
  choice.summary = knob_summary(best);
  return choice;
}

// ---------------------------------------------------------------------
// Post-run learning.

void update_calibration(Calibration* cal, double predicted_seconds,
                        double actual_seconds, double measured_gflops,
                        double bytes_moved, std::int64_t messages,
                        double disk_bytes) {
  if (measured_gflops > 0.0) {
    cal->gemm_gflops = cal->runs > 0
                           ? 0.5 * cal->gemm_gflops + 0.5 * measured_gflops
                           : measured_gflops;
  }
  if (predicted_seconds > 0.0 && actual_seconds > 0.0) {
    // Damped multiplicative correction: time_scale converges toward the
    // observed actual/predicted ratio, so the second (calibrated) run's
    // prediction error is strictly smaller than the first's.
    const double ratio =
        std::clamp(actual_seconds / predicted_seconds, 0.2, 5.0);
    cal->time_scale =
        std::clamp(cal->time_scale * std::pow(ratio, 0.6), 0.05, 20.0);
    cal->last_error_percent =
        100.0 * (predicted_seconds - actual_seconds) / actual_seconds;
  }
  if (actual_seconds > 0.0) {
    // Observed throughput refines the bandwidth terms as lower bounds: a
    // run that moved bytes faster than the model's bandwidth proves the
    // fabric is at least that fast. Latency refines downward the same
    // way when the run was message-dense.
    if (bytes_moved > (1 << 20)) {
      cal->link_bw = std::max(cal->link_bw, bytes_moved / actual_seconds);
    }
    if (disk_bytes > (1 << 20)) {
      cal->disk_bw = std::max(cal->disk_bw, disk_bytes / actual_seconds);
    }
    if (messages > 1000) {
      const double per_message =
          actual_seconds / static_cast<double>(messages);
      cal->latency_s =
          std::max(1e-8, std::min(cal->latency_s, per_message));
    }
  }
  ++cal->runs;
}

}  // namespace sia::sip
