#include "sip/data_manager.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace sia::sip {

DataManager::DataManager(const sial::ResolvedProgram& program,
                         BlockPool& pool)
    : program_(program), pool_(pool) {
  index_values_.assign(program.indices().size(), sial::kUndefinedIndexValue);
  scalars_.assign(program.code().scalars.size(), 0.0);
}

BlockPtr DataManager::make_block(const BlockShape& shape) {
  auto block =
      std::make_shared<Block>(shape, pool_.allocate(shape.element_count()));
  account_add(shape.element_count());
  return block;
}

void DataManager::account_add(std::size_t doubles) {
  used_doubles_ += doubles;
  peak_doubles_ = std::max(peak_doubles_, used_doubles_);
}

void DataManager::account_remove(std::size_t doubles) {
  SIA_CHECK(used_doubles_ >= doubles, "local memory accounting underflow");
  used_doubles_ -= doubles;
}

bool DataManager::has_block(const BlockId& id) const {
  return blocks_.find(id) != blocks_.end();
}

BlockPtr DataManager::read_local_kind(const sial::BlockSelector& selector) {
  const sial::ResolvedArray& array = program_.array(selector.array_id);
  const BlockId id = selector.id();
  auto it = blocks_.find(id);
  if (it != blocks_.end()) return it->second;

  switch (array.kind) {
    case sial::ArrayKind::kStatic: {
      // Statics materialize zeroed on first touch and persist.
      BlockPtr block = make_block(selector.block_shape());
      blocks_.emplace(id, block);
      return block;
    }
    case sial::ArrayKind::kTemp:
      throw RuntimeError("temp block " + id.to_string() + " of '" +
                         array.name + "' read before being assigned");
    case sial::ArrayKind::kLocal:
      throw RuntimeError("local block " + id.to_string() + " of '" +
                         array.name + "' used before allocate");
    default:
      throw InternalError("read_local_kind on non-local array kind");
  }
}

BlockPtr DataManager::write_local_kind(const sial::BlockSelector& selector) {
  const sial::ResolvedArray& array = program_.array(selector.array_id);
  const BlockId id = selector.id();
  auto it = blocks_.find(id);
  if (it != blocks_.end()) return it->second;

  switch (array.kind) {
    case sial::ArrayKind::kStatic: {
      BlockPtr block = make_block(selector.block_shape());
      blocks_.emplace(id, block);
      return block;
    }
    case sial::ArrayKind::kTemp: {
      if (selector.sliced) {
        throw RuntimeError(
            "insertion into temp block " + id.to_string() + " of '" +
            array.name + "' requires the containing block to exist");
      }
      BlockPtr block = make_block(selector.block_shape());
      blocks_.emplace(id, block);
      temp_ids_.push_back(id);
      return block;
    }
    case sial::ArrayKind::kLocal:
      throw RuntimeError("local block " + id.to_string() + " of '" +
                         array.name + "' written before allocate");
    default:
      throw InternalError("write_local_kind on non-local array kind");
  }
}

BlockPtr DataManager::rename_local(const sial::BlockSelector& selector) {
  const sial::ResolvedArray& array = program_.array(selector.array_id);
  SIA_CHECK(array.kind == sial::ArrayKind::kTemp && !selector.sliced,
            "rename_local is only defined for unsliced temp blocks");
  const BlockId id = selector.id();
  BlockPtr block = make_block(selector.block_shape());
  auto it = blocks_.find(id);
  if (it == blocks_.end()) {
    blocks_.emplace(id, block);
    temp_ids_.push_back(id);
  } else {
    account_remove(it->second->size());
    it->second = block;
  }
  return block;
}

void DataManager::allocate_local(int array_id, std::span<const int> lo,
                                 std::span<const int> hi) {
  const sial::ResolvedArray& array = program_.array(array_id);
  const int rank = array.rank();
  std::array<int, blas::kMaxRank> counter{};
  for (int d = 0; d < rank; ++d) counter[static_cast<std::size_t>(d)] = lo[static_cast<std::size_t>(d)];

  while (true) {
    const BlockId id(array_id,
                     {counter.data(), static_cast<std::size_t>(rank)});
    if (blocks_.find(id) != blocks_.end()) {
      throw RuntimeError("allocate: block " + id.to_string() + " of '" +
                         array.name + "' is already allocated");
    }
    const BlockShape shape = program_.grid_block_shape(
        array, {counter.data(), static_cast<std::size_t>(rank)});
    blocks_.emplace(id, make_block(shape));

    int d = rank - 1;
    for (; d >= 0; --d) {
      const std::size_t ud = static_cast<std::size_t>(d);
      if (++counter[ud] <= hi[ud]) break;
      counter[ud] = lo[ud];
    }
    if (d < 0) break;
  }
}

void DataManager::deallocate_local(int array_id, std::span<const int> lo,
                                   std::span<const int> hi) {
  const sial::ResolvedArray& array = program_.array(array_id);
  const int rank = array.rank();
  std::array<int, blas::kMaxRank> counter{};
  for (int d = 0; d < rank; ++d) counter[static_cast<std::size_t>(d)] = lo[static_cast<std::size_t>(d)];

  while (true) {
    const BlockId id(array_id,
                     {counter.data(), static_cast<std::size_t>(rank)});
    auto it = blocks_.find(id);
    if (it != blocks_.end()) {
      account_remove(it->second->size());
      blocks_.erase(it);
    }
    int d = rank - 1;
    for (; d >= 0; --d) {
      const std::size_t ud = static_cast<std::size_t>(d);
      if (++counter[ud] <= hi[ud]) break;
      counter[ud] = lo[ud];
    }
    if (d < 0) break;
  }
}

void DataManager::clear_temps() {
  for (const BlockId& id : temp_ids_) {
    auto it = blocks_.find(id);
    if (it != blocks_.end()) {
      account_remove(it->second->size());
      blocks_.erase(it);
    }
  }
  temp_ids_.clear();
}

}  // namespace sia::sip
