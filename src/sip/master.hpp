// The SIP master and the dry-run memory analysis.
//
// "The SIP is organized as a master, a set of workers, and a set of I/O
// servers... the master inspects the SIAL program in 'dry-run' mode [to]
// estimate the memory requirements for each worker... If the information
// from the dry run implies that the computation is not feasible with the
// available memory, this is reported to the user along with the number of
// processors that would be sufficient." (paper §V-B).
//
// At run time the master is a pure message-protocol server: it doles out
// guided pardo chunks, coordinates the two barrier kinds (releasing
// workers only after I/O servers flushed for server_barrier), and reduces
// collective scalars.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "sip/scheduler.hpp"
#include "sip/shared.hpp"

namespace sia::sip {

// Result of the master's dry-run analysis.
struct DryRunReport {
  std::size_t worker_budget_bytes = 0;
  std::size_t static_bytes = 0;      // replicated static arrays
  std::size_t temp_peak_bytes = 0;   // temp blocks per pardo iteration
  std::size_t local_bytes = 0;       // allocate'd local array regions
  std::size_t cache_demand_bytes = 0;  // remote blocks incl. prefetch depth
  std::size_t dist_total_bytes = 0;  // all distributed arrays, all workers
  std::size_t dist_share_bytes = 0;  // per-worker share at current count
  std::size_t served_total_bytes = 0;  // disk-resident, for information

  bool feasible = true;
  // Smallest worker count that would fit; 0 if no count can (fixed costs
  // alone exceed the budget).
  int workers_needed = 0;

  // Pool size classes derived from the block shapes the program uses:
  // capacity in doubles -> number of slots per worker.
  std::map<std::size_t, std::size_t> pool_plan;

  std::size_t per_worker_bytes() const {
    return static_bytes + temp_peak_bytes + local_bytes +
           cache_demand_bytes + dist_share_bytes;
  }
  std::string to_string() const;
};

// Analyzes the program against the configuration. Pure function of the
// resolved program.
DryRunReport dry_run(const sial::ResolvedProgram& program);

// Master rank main loop; returns once all workers reported completion (or
// on abort). Sends kShutdown to the I/O servers on the way out.
class Master {
 public:
  struct Stats {
    std::int64_t heartbeats_missed = 0;   // individual missed beats
    std::int64_t server_recoveries = 0;   // successful I/O-server respawns
    // Guided-schedule scheduling + work stealing (master side, so the
    // counters survive spawn mode where worker profiles are not shipped).
    std::int64_t chunks_served = 0;       // chunks granted from schedules
    std::int64_t steal_attempts = 0;      // split proposals sent to victims
    std::int64_t steals_granted = 0;      // non-empty grants forwarded
    std::int64_t stolen_iterations = 0;   // iterations moved by stealing
    // Iterations granted per worker (schedule chunks + stolen tails),
    // indexed by worker: the imbalance histogram for the ProfileReport.
    std::vector<std::int64_t> worker_iterations;
  };

  explicit Master(SipShared& shared);
  void run();
  const Stats& stats() const { return stats_; }

 private:
  struct BarrierState {
    int entered = 0;
    std::set<int> acked_servers;  // ranks whose flush-ack arrived
    bool waiting_servers = false;
  };
  struct CollectiveState {
    int arrived = 0;
    double sum = 0.0;
  };

  // One pardo instance's chunk bookkeeping key.
  struct ChunkKey {
    int pardo_id = 0;
    std::int64_t instance = 0;
    bool operator<(const ChunkKey& other) const {
      return pardo_id != other.pardo_id ? pardo_id < other.pardo_id
                                        : instance < other.instance;
    }
    bool operator==(const ChunkKey& other) const {
      return pardo_id == other.pardo_id && instance == other.instance;
    }
  };
  // The chunk most recently granted to a worker and not yet finished
  // (the worker finishes it exactly when its next request arrives).
  struct OutstandingChunk {
    ChunkKey key;
    std::int64_t begin = 0, end = 0;
    bool valid = false;
    bool steal_failed = false;  // victim answered an empty grant for it
  };
  struct StealInFlight {
    ChunkKey key;
    int victim_rank = 0;
  };

  void handle_chunk_request(const msg::Message& message);
  void handle_steal_reply(const msg::Message& message);
  // Schedule exhausted but `key` still has starved requesters: start a
  // steal against the worker with the largest outstanding chunk, or —
  // when nothing is stealable — answer everyone "done".
  void resolve_starved(const ChunkKey& key);
  void send_chunk_reply(int rank, const ChunkKey& key, std::int64_t begin,
                        std::int64_t end);
  void handle_barrier_enter(const msg::Message& message);
  void handle_server_ack(const msg::Message& message);
  void handle_scalar_reduce(const msg::Message& message);
  void release_barrier(std::int64_t seq);

  // Heartbeat watchdog (fault tolerance): evaluate last round's acks,
  // escalate unresponsive ranks, broadcast the next ping.
  void heartbeat_tick();
  // Sends kAbort (carrying the first error) to every non-master rank via
  // deliver(), bypassing the stopped-fabric send gate. Thread-mode ranks
  // learn of an abort from the shared flag; spawned process ranks only
  // learn from this message.
  void broadcast_abort();
  // A rank missed `heartbeat_misses` consecutive beats: respawn a dead
  // I/O server, or abort the run with a diagnosis naming the rank and
  // what every other rank is currently blocked on.
  void handle_dead_rank(int rank);

  SipShared& shared_;
  ScheduleTable schedules_;
  std::map<std::int64_t, BarrierState> barriers_;       // by sequence
  std::map<std::int64_t, CollectiveState> collectives_; // by sequence
  int workers_done_ = 0;

  // Work-stealing state. outstanding_ is indexed by worker (rank - 1);
  // starved_ queues requesters whose reply waits on a steal resolution;
  // at most one steal is in flight at a time (the victim answers exactly
  // once, so resolution is a simple state machine).
  bool work_stealing_ = false;
  std::vector<OutstandingChunk> outstanding_;
  std::map<ChunkKey, std::deque<int>> starved_;
  std::optional<StealInFlight> steal_;
  // Granted-but-unassigned ranges (steal resolved after its thief was
  // answered by another path); served ahead of the schedule.
  std::map<ChunkKey, std::vector<std::pair<std::int64_t, std::int64_t>>>
      spare_;

  // Watchdog state, indexed by fabric rank.
  std::int64_t heartbeat_tick_ = 0;
  std::vector<std::int64_t> last_heartbeat_ack_;
  std::vector<int> heartbeat_miss_streak_;
  Stats stats_;
};

}  // namespace sia::sip
