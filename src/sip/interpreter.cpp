#include "sip/interpreter.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "blas/elementwise.hpp"
#include "common/log.hpp"
#include "common/timer.hpp"
#include "msg/tags.hpp"
#include "sip/checkpoint.hpp"
#include "sip/prefetch.hpp"
#include "sip/spawn.hpp"

namespace sia::sip {

using sial::ArrayKind;
using sial::BlockOperand;
using sial::BlockSelector;
using sial::Instruction;
using sial::Opcode;

namespace {

// AssignStmt::Op values as compiled into a0.
enum Mode { kModeAssign = 0, kModeAcc = 1, kModeSub = 2, kModeScale = 3 };

}  // namespace

Interpreter::Interpreter(SipShared& shared, int worker_index)
    : shared_(shared), worker_index_(worker_index),
      my_rank_(shared.worker_rank(worker_index)),
      program_(*shared.program), profiler_(shared.config.profiling) {
  pool_ = std::make_unique<BlockPool>(shared_.pool_plan,
                                      /*allow_heap_fallback=*/true);
  data_ = std::make_unique<DataManager>(program_, *pool_);
  const std::size_t cache_doubles = std::max<std::size_t>(
      shared_.config.worker_memory_bytes / sizeof(double) / 4, 4096);
  dist_ = std::make_unique<DistArrayManager>(shared_, my_rank_, *pool_,
                                             cache_doubles,
                                             shared_.config.coalesce_puts);
  served_ = std::make_unique<ServedArrayClient>(shared_, my_rank_, *pool_,
                                                cache_doubles,
                                                shared_.config.coalesce_puts);
  if (shared_.config.fault_tolerance_enabled()) {
    channel_ = std::make_unique<msg::ReliableChannel>(
        shared_.fabric, my_rank_, shared_.config.retry_timeout_ms,
        shared_.config.retry_max);
    dist_->set_channel(channel_.get());
    served_->set_channel(channel_.get());
  }

  const int worker_threads = shared_.config.effective_worker_threads();
  if (worker_threads > 0) {
    executor_ = std::make_unique<DataflowExecutor>(
        worker_threads,
        static_cast<std::size_t>(shared_.config.window_limit));
  }

  // Resolve super instruction names once.
  const auto& names = program_.code().superinstructions;
  superinstructions_.reserve(names.size());
  for (const std::string& name : names) {
    const SuperInstructionFn* fn =
        SuperInstructionRegistry::global().lookup(name);
    superinstructions_.push_back(fn);  // missing ones error on first use
  }
}

// ---------------------------------------------------------------------
// Messaging.

void Interpreter::dispatch_admitted(msg::Message& message) {
  switch (message.tag) {
    case msg::kBlockPut:
    case msg::kBlockPutAcc: {
      // Apply, then ack with the applied seq. Home blocks are in-memory
      // state that dies with the run, so unlike a served prepare there is
      // no durability to wait for: applied == safe to ack.
      const int src = message.src;
      const std::uint64_t seq = message.seq;
      dist_->handle_put(message, message.tag == msg::kBlockPutAcc);
      msg::Message ack;
      ack.tag = msg::kProtoAck;
      ack.ack = seq;
      shared_.fabric->send(my_rank_, src, std::move(ack));
      break;
    }
    case msg::kBlockGetRequest:
      dist_->handle_get_request(message);
      break;
    default:
      throw InternalError("sequencer released unexpected tag " +
                          std::to_string(message.tag));
  }
}

void Interpreter::handle_message(msg::Message& message) {
  // Replies double as acks for their tracked request under the reliable
  // protocol; clear the retransmit entry before normal dispatch (even a
  // reply the handler then drops as stale still acknowledges delivery).
  if (channel_ && message.ack != 0 &&
      (message.tag == msg::kBlockGetReply ||
       message.tag == msg::kServedReply)) {
    channel_->on_ack(message.src, message.ack);
  }
  switch (message.tag) {
    case msg::kBlockGetRequest:
      if (channel_ && message.seq != 0) {
        // May depend on an ordered put still in flight (msg.ack).
        msg::PeerSequencer::Admit admitted =
            sequencer_.admit_after(std::move(message));
        for (msg::Message& released : admitted.deliver) {
          dispatch_admitted(released);
        }
      } else {
        dist_->handle_get_request(message);
      }
      break;
    case msg::kBlockGetReply:
      dist_->handle_get_reply(message);
      break;
    case msg::kBlockPut:
    case msg::kBlockPutAcc:
      if (channel_ && message.seq != 0) {
        const int src = message.src;
        const std::uint64_t seq = message.seq;
        msg::PeerSequencer::Admit admitted =
            sequencer_.admit_ordered(std::move(message));
        if (admitted.duplicate) {
          // Retransmit of an applied put whose ack was lost: re-ack so
          // the sender stops retrying (the apply itself must not repeat —
          // accumulate twice is silent corruption).
          msg::Message ack;
          ack.tag = msg::kProtoAck;
          ack.ack = seq;
          shared_.fabric->send(my_rank_, src, std::move(ack));
        }
        for (msg::Message& released : admitted.deliver) {
          dispatch_admitted(released);
        }
      } else {
        dist_->handle_put(message, message.tag == msg::kBlockPutAcc);
      }
      break;
    case msg::kBlockDelete:
      dist_->handle_delete(message);
      break;
    case msg::kServedReply:
      served_->handle_reply(message);
      break;
    case msg::kProtoAck:
      if (channel_) channel_->on_ack(message.src, message.ack);
      break;
    case msg::kHeartbeatPing: {
      msg::Message pong;
      pong.tag = msg::kHeartbeatAck;
      pong.header = {message.header.empty() ? 0 : message.header[0],
                     my_rank_};
      shared_.fabric->send(my_rank_, shared_.master_rank(),
                           std::move(pong));
      break;
    }
    case msg::kChunkReply:
      chunk_replies_[{static_cast<int>(message.header[0]),
                      message.header[1]}] = {message.header[2],
                                             message.header[3]};
      break;
    case msg::kChunkStealRequest: {
      // The master wants the tail of this worker's outstanding chunk for
      // a starved worker. Clamp the proposed split to the current scan
      // position — iterations already started (including ones still in
      // the dataflow window, which are all < pos) are never revoked — and
      // grant [max(split, pos), chunk_end). Runs on the interpreter
      // thread like every handler, so touching the frame is safe.
      const int pardo_id = static_cast<int>(message.header[0]);
      const std::int64_t instance = message.header[1];
      const std::int64_t split = message.header[2];
      std::int64_t grant_begin = 0, grant_end = 0;
      for (auto it = frames_.rbegin(); it != frames_.rend(); ++it) {
        Frame& frame = *it;
        if (frame.kind != Frame::Kind::kPardo ||
            frame.pardo_id != pardo_id || frame.instance != instance) {
          continue;
        }
        const std::int64_t safe = std::max(split, frame.pos);
        if (safe < frame.chunk_end) {
          grant_begin = safe;
          grant_end = frame.chunk_end;
          frame.chunk_end = safe;
        }
        break;
      }
      msg::Message reply;
      reply.tag = msg::kChunkStealReply;
      reply.header = {pardo_id, instance, grant_begin, grant_end};
      shared_.fabric->send(my_rank_, shared_.master_rank(),
                           std::move(reply));
      break;
    }
    case msg::kBarrierRelease:
      barrier_released_[message.header[0]] = true;
      // Advance the epoch immediately: messages behind this one in the
      // mailbox were sent by workers already past the barrier.
      if (pending_barrier_server_) {
        served_->advance_epoch();
      } else {
        dist_->advance_epoch();
      }
      break;
    case msg::kScalarBcast:
      collective_results_[message.header[0]] = message.data.at(0);
      break;
    case msg::kAbort:
      // Another rank's fatal error, relayed by the master. In spawn mode
      // this message is the only way the news reaches this process.
      shared_.raise_abort(abort_text(message));
      break;  // the next check_abort unwinds via Aborted
    default:
      throw InternalError("worker received unexpected tag " +
                          std::to_string(message.tag));
  }
}

void Interpreter::service_messages() {
  if (channel_) channel_->poll();  // retransmit overdue tracked sends
  while (auto message = shared_.fabric->try_recv(my_rank_)) {
    handle_message(*message);
  }
}

void Interpreter::wait_until(const std::function<bool()>& ready,
                             const char* what, WaitKind kind) {
  service_messages();
  if (ready()) return;
  const double start = wall_seconds();
  // Publish what this rank is blocked on so the master's watchdog can
  // name it in a diagnosed abort if the run wedges.
  shared_.set_rank_status(my_rank_, static_cast<int>(kind));
  while (!ready()) {
    shared_.check_abort();
    if (channel_) channel_->poll();
    auto message = shared_.fabric->recv_for(my_rank_, 10);
    if (message.has_value()) {
      handle_message(*message);
      service_messages();
    }
  }
  shared_.set_rank_status(my_rank_, -1);
  const double waited = wall_seconds() - start;
  profiler_.record_wait(current_pardo_id(), waited, kind);
  SIA_DEBUG(my_rank_) << "waited " << waited * 1e3 << " ms for " << what;
}

void Interpreter::drain_channel() {
  if (!channel_ || channel_->idle()) return;
  const double start = wall_seconds();
  shared_.set_rank_status(my_rank_, static_cast<int>(WaitKind::kBarrier));
  auto last_hint = std::chrono::steady_clock::time_point{};
  while (!channel_->idle()) {
    shared_.check_abort();
    channel_->poll();
    // Unacked ordered sends to an I/O server are prepares whose
    // durability ack only goes out when the block hits disk — which may
    // be never if it just sits in the server's cache. Nudge the server
    // to flush. (Worker-to-worker puts ack on apply; no nudge needed.)
    const auto now = std::chrono::steady_clock::now();
    if (now - last_hint > std::chrono::milliseconds(50)) {
      for (int dst : channel_->unacked_ordered_dsts()) {
        if (shared_.is_server(dst)) {
          msg::Message hint;
          hint.tag = msg::kServerFlushHint;
          shared_.fabric->send(my_rank_, dst, std::move(hint));
        }
      }
      last_hint = now;
    }
    auto message = shared_.fabric->recv_for(my_rank_, 10);
    if (message.has_value()) {
      handle_message(*message);
      service_messages();
    }
  }
  shared_.set_rank_status(my_rank_, -1);
  profiler_.record_wait(current_pardo_id(), wall_seconds() - start,
                        WaitKind::kBarrier);
}

int Interpreter::current_pardo_id() const {
  for (auto it = frames_.rbegin(); it != frames_.rend(); ++it) {
    if (it->kind == Frame::Kind::kPardo) return it->pardo_id;
  }
  return -1;
}

// ---------------------------------------------------------------------
// Scalar stack.

double Interpreter::pop() {
  SIA_CHECK(!stack_.empty(), "scalar stack underflow");
  const double value = stack_.back();
  stack_.pop_back();
  return value;
}

void Interpreter::push(double value) { stack_.push_back(value); }

// ---------------------------------------------------------------------
// Block access.

BlockSelector Interpreter::resolve(const BlockOperand& operand) const {
  return program_.resolve_operand(operand, data_->index_values());
}

BlockPtr Interpreter::fetch_base_block(const BlockSelector& selector) {
  const sial::ResolvedArray& array = program_.array(selector.array_id);
  switch (array.kind) {
    case ArrayKind::kStatic:
    case ArrayKind::kTemp:
    case ArrayKind::kLocal:
      return data_->read_local_kind(selector);
    case ArrayKind::kDistributed: {
      const BlockId id = selector.id();
      if (shared_.owner_rank(id) == my_rank_) {
        return dist_->try_read(id);  // throws if never put
      }
      while (true) {
        if (BlockPtr block = dist_->try_read(id)) return block;
        if (!dist_->pending(id)) dist_->issue_get(id, /*implicit=*/true);
        wait_until([&] { return !dist_->pending(id); }, "distributed block",
                   WaitKind::kBlock);
      }
    }
    case ArrayKind::kServed: {
      const BlockId id = selector.id();
      while (true) {
        if (BlockPtr block = served_->try_read(id)) return block;
        // Unconditional: a no-op while a demand fetch is in flight, but
        // if only a look-ahead is pending this sends the demand request
        // that promotes the server's queued read-ahead job — otherwise
        // the worker would block at low priority behind every other
        // rank's demand reads.
        served_->issue_request(id);
        wait_until([&] { return !served_->pending(id); }, "served block",
                   WaitKind::kServed);
      }
    }
  }
  throw InternalError("fetch_base_block: bad array kind");
}

BlockPtr Interpreter::read_operand(const BlockOperand& operand) {
  const BlockSelector selector = resolve(operand);
  BlockPtr base = fetch_base_block(selector);
  if (!selector.sliced) return base;
  return std::make_shared<Block>(
      slice(*base,
            {selector.slice_origin.data(),
             static_cast<std::size_t>(selector.rank)},
            selector.shape()));
}

void Interpreter::with_write_block(
    const BlockSelector& selector, bool needs_existing,
    const std::function<void(Block&)>& compute) {
  if (!selector.sliced) {
    BlockPtr dst = needs_existing ? data_->read_local_kind(selector)
                                  : data_->write_local_kind(selector);
    compute(*dst);
    return;
  }
  // Insertion: read-modify-write of the containing block.
  BlockPtr container = data_->read_local_kind(selector);
  const std::span<const int> origin = {
      selector.slice_origin.data(), static_cast<std::size_t>(selector.rank)};
  Block scratch = needs_existing
                      ? slice(*container, origin, selector.shape())
                      : Block(selector.shape());
  compute(scratch);
  insert(*container, origin, scratch);
}

BlockPtr Interpreter::permuted_for(BlockPtr src,
                                   std::span<const int> src_ids,
                                   std::span<const int> dst_ids,
                                   const BlockShape& dst_shape) {
  bool identity = src_ids.size() == dst_ids.size();
  if (identity) {
    for (std::size_t d = 0; d < src_ids.size(); ++d) {
      if (src_ids[d] != dst_ids[d]) {
        identity = false;
        break;
      }
    }
  }
  if (identity) return src;  // callers only read the result
  // Stage the permuted copy in pool memory — this runs per iteration on
  // put/prepare hot loops and must not bypass the paper's preallocated
  // block stacks (§V-B) with ad-hoc heap traffic.
  auto out = std::make_shared<Block>(dst_shape,
                                     pool_->allocate(dst_shape.element_count()));
  block_copy_permute(*out, dst_ids, *src, src_ids, CopyMode::kAssign);
  return out;
}

// ---------------------------------------------------------------------
// Dataflow window (worker_threads >= 1).

BlockPtr Interpreter::resolve_dist_operand(const BlockId& id) {
  // One of our own window puts still targets this block: its data is not
  // at the home yet (the send happens at the put's retire). Wait it out —
  // program-order retirement guarantees it lands before this entry needs
  // the operand.
  if (window_put_targets_.count(id) > 0) return nullptr;
  if (shared_.owner_rank(id) == my_rank_) {
    return dist_->try_read(id);  // throws if never put
  }
  if (BlockPtr block = dist_->try_read(id)) return block;  // throws on miss
  if (!dist_->pending(id)) dist_->issue_get(id, /*implicit=*/true);
  return nullptr;
}

BlockPtr Interpreter::resolve_served_operand(const BlockId& id) {
  if (window_put_targets_.count(id) > 0) return nullptr;
  if (BlockPtr block = served_->try_read(id)) return block;
  // Dedups while a demand fetch is in flight; promotes a pending
  // look-ahead to demand priority (same as the serial fetch loop).
  served_->issue_request(id);
  return nullptr;
}

void Interpreter::bind_read_operand(DataflowExecutor::Entry& entry,
                                    const std::shared_ptr<WindowOp>& op,
                                    const BlockOperand& operand,
                                    std::size_t slot) {
  const BlockSelector selector = resolve(operand);
  op->src_sel[slot] = selector;
  const BlockId id = selector.id();
  entry.reads.push_back(id);
  const sial::ResolvedArray& array = program_.array(selector.array_id);
  switch (array.kind) {
    case ArrayKind::kStatic:
    case ArrayKind::kTemp:
    case ArrayKind::kLocal:
      // Decode-time binding: the pointer snapshot plus the RAW dep on the
      // last window writer reproduce serial read-after-write semantics.
      op->src[slot] = data_->read_local_kind(selector);
      return;
    case ArrayKind::kDistributed:
      if (window_put_targets_.count(id) == 0) {
        if (shared_.owner_rank(id) == my_rank_) {
          op->src[slot] = dist_->try_read(id);  // throws if never put
          return;
        }
        dist_->issue_get(id, /*implicit=*/true);
        if (BlockPtr block = dist_->try_read(id)) {
          op->src[slot] = std::move(block);
          return;
        }
        // The window stalls on this fetch: pull the prefetcher's
        // prediction for the same operand (one source of truth, see
        // prefetch.hpp) so the following iterations' fetches overlap
        // this entry's wait. issue_get dedups re-requests.
        for (const BlockId& candidate : lookahead_candidates(operand)) {
          dist_->issue_get(candidate, /*implicit=*/true);
        }
      }
      entry.pending_operands.push_back(DataflowExecutor::PendingOperand{
          id, [this, id] { return resolve_dist_operand(id); },
          [op, slot](BlockPtr block) { op->src[slot] = std::move(block); }});
      return;
    case ArrayKind::kServed:
      if (window_put_targets_.count(id) == 0) {
        served_->issue_request(id);
        if (BlockPtr block = served_->try_read(id)) {
          op->src[slot] = std::move(block);
          return;
        }
        // Stalled on the I/O server: queue the shared look-ahead
        // prediction as low-priority read-ahead behind the demand fetch.
        for (const BlockId& candidate : lookahead_candidates(operand)) {
          served_->issue_lookahead(candidate);
        }
      }
      entry.pending_operands.push_back(DataflowExecutor::PendingOperand{
          id, [this, id] { return resolve_served_operand(id); },
          [op, slot](BlockPtr block) { op->src[slot] = std::move(block); }});
      return;
  }
  throw InternalError("bind_read_operand: bad array kind");
}

void Interpreter::run_window_block_op(const Instruction& instr,
                                      WindowOp& op, double scalar0) {
  // Pool-thread body: pure block compute over decode-time captures. Must
  // not touch data_/dist_/served_/profiler (interpreter-thread state);
  // pool_ allocation is thread safe.
  const auto src_of = [&](std::size_t slot) -> BlockPtr {
    const BlockSelector& sel = op.src_sel[slot];
    BlockPtr base = op.src[slot];
    if (!sel.sliced) return base;
    return std::make_shared<Block>(
        slice(*base,
              {sel.slice_origin.data(), static_cast<std::size_t>(sel.rank)},
              sel.shape()));
  };
  const auto with_dst = [&](bool needs_existing,
                            const std::function<void(Block&)>& compute) {
    if (!op.dst_selector.sliced) {
      compute(*op.dst);
      return;
    }
    const std::span<const int> origin = {
        op.dst_selector.slice_origin.data(),
        static_cast<std::size_t>(op.dst_selector.rank)};
    Block scratch = needs_existing
                        ? slice(*op.container, origin, op.dst_selector.shape())
                        : Block(op.dst_selector.shape());
    compute(scratch);
    insert(*op.container, origin, scratch);
  };

  switch (instr.op) {
    case Opcode::kBlockScalarOp:
      switch (instr.a0) {
        case kModeAssign:
          with_dst(false,
                   [&](Block& dst) { blas::fill(dst.data(), scalar0); });
          return;
        case kModeAcc:
          with_dst(true,
                   [&](Block& dst) { blas::shift(dst.data(), scalar0); });
          return;
        case kModeSub:
          with_dst(true,
                   [&](Block& dst) { blas::shift(dst.data(), -scalar0); });
          return;
        case kModeScale:
          with_dst(true,
                   [&](Block& dst) { blas::scal(dst.data(), scalar0); });
          return;
        default:
          throw InternalError("bad block scalar mode");
      }
    case Opcode::kBlockCopy: {
      BlockPtr src = src_of(0);
      const CopyMode mode = instr.a0 == kModeAssign ? CopyMode::kAssign
                            : instr.a0 == kModeAcc  ? CopyMode::kAccumulate
                                                    : CopyMode::kSubtract;
      with_dst(mode != CopyMode::kAssign, [&](Block& dst_block) {
        block_copy_permute(dst_block, ids_of(instr.blocks[0]), *src,
                           ids_of(instr.blocks[1]), mode,
                           shared_.config.sparse_threshold);
      });
      return;
    }
    case Opcode::kBlockBinary: {
      BlockPtr a = src_of(0);
      BlockPtr b = src_of(1);
      const bool accumulate = instr.a0 == kModeAcc;
      const auto bin_op = static_cast<sial::BinOp>(instr.a1);
      with_dst(accumulate, [&](Block& dst_block) {
        if (bin_op == sial::BinOp::kMul) {
          block_contract(dst_block, ids_of(instr.blocks[0]), *a,
                         ids_of(instr.blocks[1]), *b,
                         ids_of(instr.blocks[2]), accumulate,
                         shared_.config.sparse_threshold);
        } else {
          block_add(dst_block, ids_of(instr.blocks[0]), *a,
                    ids_of(instr.blocks[1]), *b, ids_of(instr.blocks[2]),
                    bin_op == sial::BinOp::kSub, accumulate);
        }
      });
      return;
    }
    case Opcode::kBlockScaledCopy: {
      BlockPtr src = src_of(0);
      with_dst(instr.a0 != kModeAssign, [&](Block& dst_block) {
        BlockPtr permuted =
            permuted_for(src, ids_of(instr.blocks[1]),
                         ids_of(instr.blocks[0]), dst_block.shape());
        auto src_span = permuted->data();
        auto dst_span = dst_block.data();
        switch (instr.a0) {
          case kModeAssign:
            for (std::size_t i = 0; i < dst_span.size(); ++i) {
              dst_span[i] = scalar0 * src_span[i];
            }
            return;
          case kModeAcc:
            blas::axpy(scalar0, src_span, dst_span);
            return;
          case kModeSub:
            blas::axpy(-scalar0, src_span, dst_span);
            return;
          default:
            throw InternalError("bad scaled copy mode");
        }
      });
      return;
    }
    default:
      throw InternalError("run_window_block_op: bad opcode");
  }
}

void Interpreter::window_block_op(const Instruction& instr, double scalar0) {
  DataflowExecutor::Entry entry;
  entry.pc = pc_;
  auto op = std::make_shared<WindowOp>();
  const BlockSelector dst = resolve(instr.blocks[0]);
  op->dst_selector = dst;

  bool needs_existing = false;
  switch (instr.op) {
    case Opcode::kBlockScalarOp:
      needs_existing = instr.a0 != kModeAssign;
      break;
    case Opcode::kBlockCopy:
    case Opcode::kBlockScaledCopy:
      needs_existing = instr.a0 != kModeAssign;
      break;
    case Opcode::kBlockBinary:
      needs_existing = instr.a0 == kModeAcc;
      break;
    default:
      throw InternalError("window_block_op: bad opcode");
  }

  // Sources bind before the destination so a self-referencing op
  // (tmp = tmp * x) captures the pre-instruction block even when the
  // destination is renamed below.
  for (std::size_t i = 1; i < instr.blocks.size(); ++i) {
    bind_read_operand(entry, op, instr.blocks[i], i - 1);
  }

  // Destination binding mirrors with_write_block, split across decode
  // (pointer resolution, here) and execute (the compute, on the pool).
  // A full overwrite of an unsliced temp is register-renamed to fresh
  // storage: without this, the single physical block behind a loop-reused
  // temp (do k { tmp = A*B; put C += tmp }) WAW-chains every iteration
  // and the pool runs one contraction at a time.
  // With static dataflow sets (-O1 and above) the compile-time proof
  // decides; otherwise fall back to the dynamic discovery. Both rules
  // agree wherever the static analysis claims renamability.
  const bool renamed =
      program_.code().analyzed
          ? instr.renames_dst && !dst.sliced
          : !needs_existing && !dst.sliced &&
                program_.array(dst.array_id).kind == sial::ArrayKind::kTemp;
  if (!dst.sliced) {
    op->dst = needs_existing ? data_->read_local_kind(dst)
              : renamed      ? data_->rename_local(dst)
                             : data_->write_local_kind(dst);
  } else {
    op->container = data_->read_local_kind(dst);
  }
  if (renamed) {
    entry.renamed_writes.push_back(dst.id());
  } else {
    entry.writes.push_back(dst.id());
  }
  // A sliced write is a read-modify-write of the container, and an
  // accumulate reads its target: both add a read so the RAW rule chains
  // same-target updates in program order.
  if (needs_existing || dst.sliced) entry.reads.push_back(dst.id());

  // Decode-time screening: an accumulate-mode contraction whose operands
  // are both bound already (local/cached, no fetch pending) and whose
  // norm product is below the threshold contributes nothing — leave the
  // entry retire-only, so it flows straight through the window without
  // ever occupying a pool thread. Sliced operands screen on the base
  // block's norm, which bounds every slice's norm from above. Operands
  // still in flight fall through to the execute-time screen inside
  // block_contract.
  const double screen = shared_.config.sparse_threshold;
  const bool screened_contract =
      screen > 0.0 && instr.op == Opcode::kBlockBinary &&
      instr.a0 == kModeAcc &&
      static_cast<sial::BinOp>(instr.a1) == sial::BinOp::kMul &&
      entry.pending_operands.empty() && op->src[0] != nullptr &&
      op->src[1] != nullptr &&
      op->src[0]->norm() * op->src[1]->norm() < screen;
  if (screened_contract) {
    note_kernel_screened();
  } else {
    const Instruction* ip = &instr;  // program code is stable for the run
    entry.execute = [this, ip, op, scalar0] {
      run_window_block_op(*ip, *op, scalar0);
    };
  }
  enqueue_entry(std::move(entry));
}

void Interpreter::window_put(const Instruction& instr, bool served) {
  DataflowExecutor::Entry entry;
  entry.pc = pc_;
  auto op = std::make_shared<WindowOp>();
  const BlockSelector dst = resolve(instr.blocks[0]);
  op->dst_selector = dst;
  bind_read_operand(entry, op, instr.blocks[1], 0);

  const bool accumulate = instr.a0 == 1;
  const BlockId target = dst.id();
  ++window_put_targets_[target];

  const Instruction* ip = &instr;
  // Shape the payload on the pool (the permuted copy is the expensive
  // part of a put); the send itself is a retire-time program-order
  // effect, so the fabric sees the exact serial message sequence and the
  // coalescing shadow table merges in serial order.
  entry.execute = [this, ip, op, served] {
    const BlockSelector& sel = op->src_sel[0];
    BlockPtr src = op->src[0];
    if (sel.sliced) {
      src = std::make_shared<Block>(
          slice(*src,
                {sel.slice_origin.data(),
                 static_cast<std::size_t>(sel.rank)},
                sel.shape()));
    }
    BlockPtr shaped =
        permuted_for(std::move(src), ids_of(ip->blocks[1]),
                     ids_of(ip->blocks[0]), op->dst_selector.shape());
    if (shaped->size() != op->dst_selector.shape().element_count()) {
      throw RuntimeError(std::string(served ? "prepare" : "put") +
                         ": block shape mismatch");
    }
    if (shaped.get() == op->src[0].get()) {
      // Identity permute: the payload aliases the source block, which a
      // later window writer may overwrite once its WAR dependency on this
      // entry clears — before our retire-time send. Snapshot it now; the
      // hazard rules make the execute-time contents equal the serial
      // at-pc value, and the exclusive copy ships zero-copy.
      auto copy = std::make_shared<Block>(shaped->shape(),
                                          pool_->allocate(shaped->size()));
      blas::copy(shaped->data(), copy->data());
      shaped = std::move(copy);
    }
    op->put_payload = std::move(shaped);
  };
  entry.retire = [this, op, target, accumulate, served] {
    if (served) {
      served_->prepare(target, std::move(op->put_payload), accumulate);
    } else {
      dist_->put(target, std::move(op->put_payload), accumulate);
    }
    auto it = window_put_targets_.find(target);
    if (it != window_put_targets_.end() && --it->second <= 0) {
      window_put_targets_.erase(it);
    }
  };
  enqueue_entry(std::move(entry));
}

void Interpreter::enqueue_entry(DataflowExecutor::Entry entry) {
  while (executor_->window_full()) {
    shared_.check_abort();
    service_messages();
    executor_->pump();
    if (executor_->window_full()) executor_->wait_progress(2);
  }
  executor_->enqueue(std::move(entry));
  executor_->pump();
}

void Interpreter::drain_window() {
  if (!executor_ || executor_->idle()) return;
  const double start = wall_seconds();
  while (true) {
    shared_.check_abort();
    executor_->pump();
    if (executor_->idle()) break;
    service_messages();
    executor_->pump();
    if (executor_->idle()) break;
    executor_->wait_progress(2);
  }
  executor_->record_drain(wall_seconds() - start);
}

// ---------------------------------------------------------------------
// Pardo machinery.

void Interpreter::set_pardo_indices(const Frame& frame, std::int64_t raw) {
  const sial::PardoInfo& pardo =
      program_.code().pardos[static_cast<std::size_t>(frame.pardo_id)];
  std::vector<long> decoded(pardo.index_ids.size());
  program_.pardo_decode(pardo, data_->index_values(), raw, decoded);
  for (std::size_t d = 0; d < pardo.index_ids.size(); ++d) {
    data_->set_index_value(pardo.index_ids[d], decoded[d]);
  }
}

void Interpreter::clear_pardo_indices(const Frame& frame) {
  const sial::PardoInfo& pardo =
      program_.code().pardos[static_cast<std::size_t>(frame.pardo_id)];
  for (const int id : pardo.index_ids) data_->clear_index_value(id);
}

bool Interpreter::pardo_request_chunk(Frame& frame) {
  msg::Message request;
  request.tag = msg::kChunkRequest;
  request.header = {frame.pardo_id, frame.instance,
                    static_cast<std::int64_t>(frame.filtered.size())};
  shared_.fabric->send(my_rank_, shared_.master_rank(), std::move(request));

  const std::pair<int, std::int64_t> key{frame.pardo_id, frame.instance};
  wait_until([&] { return chunk_replies_.count(key) > 0; }, "pardo chunk",
             WaitKind::kChunk);
  const auto [begin, end] = chunk_replies_[key];
  chunk_replies_.erase(key);
  frame.chunk_begin = begin;
  frame.chunk_end = end;
  frame.pos = begin;
  return begin < end;
}

bool Interpreter::pardo_advance(Frame& frame) {
  // Iteration boundary: by default the window must drain first (retires
  // feed the coalescing shadow tables, and clear_temps below frees
  // blocks that in-flight entries may still touch), then write-combined
  // put/prepare accumulates push out before starting the next iteration
  // (or blocking on the master for a chunk).
  //
  // A pardo the optimizer proved window-safe (PardoInfo::window_safe)
  // skips the drain: the flush still has to happen after every earlier
  // put retired, so it rides an in-order retire-only entry instead.
  // clear_temps stays at scan time — in-flight entries keep shared_ptrs
  // to the blocks they touch, and the proof guarantees every temp is
  // fully overwritten (hence renamed to fresh storage) before its next
  // use. Per-worker retire order equals program order, so the flushed
  // message sequence — and with it every accumulation order — is
  // unchanged and results stay bit-identical to the drained path.
  const bool span_window =
      executor_ != nullptr &&
      program_.code()
          .pardos[static_cast<std::size_t>(frame.pardo_id)]
          .window_safe;
  if (span_window) {
    DataflowExecutor::Entry entry;
    entry.pc = pc_;
    entry.retire = [this] {
      dist_->flush_coalesced();
      served_->flush_coalesced();
    };
    enqueue_entry(std::move(entry));
  } else {
    drain_window();
    dist_->flush_coalesced();
    served_->flush_coalesced();
  }
  // Poll the mailbox once per iteration boundary: a compute-bound body
  // may issue no blocking operation for a whole chunk, and the master's
  // steal requests (and peers' get requests) should not wait that long.
  service_messages();
  while (true) {
    if (frame.pos < frame.chunk_end) {
      data_->clear_temps();
      set_pardo_indices(
          frame, frame.filtered[static_cast<std::size_t>(frame.pos)]);
      ++frame.pos;
      profiler_.record_pardo_iteration(frame.pardo_id);
      return true;
    }
    if (!pardo_request_chunk(frame)) {
      if (span_window) {
        // Loop exhausted: the caller is about to tear the frame down
        // (clear_pardo_indices), so everything in flight must land now.
        drain_window();
        dist_->flush_coalesced();
        served_->flush_coalesced();
      }
      return false;
    }
  }
}

void Interpreter::exec_pardo_start(const Instruction& instr) {
  // Sema rejects syntactic nesting; nesting routed through a procedure
  // call is only visible here. It would desynchronize the master's
  // per-instance chunk bookkeeping, so refuse it outright.
  for (const Frame& frame : frames_) {
    if (frame.kind == Frame::Kind::kPardo) {
      throw RuntimeError(
          "pardo loops may not be nested (this one is reached through a "
          "procedure called inside another pardo)");
    }
  }
  Frame frame;
  frame.kind = Frame::Kind::kPardo;
  frame.start_pc = pc_;
  frame.end_pc = instr.a1;
  frame.pardo_id = instr.a0;
  frame.instance = pardo_instance_[instr.a0]++;
  frame.started_at = wall_seconds();
  const sial::PardoInfo& pardo =
      program_.code().pardos[static_cast<std::size_t>(instr.a0)];
  frame.filtered =
      program_.pardo_filtered_space(pardo, data_->index_values());

  frames_.push_back(std::move(frame));
  if (pardo_advance(frames_.back())) {
    ++pc_;
    return;
  }
  profiler_.record_pardo_elapsed(frames_.back().pardo_id,
                                 wall_seconds() - frames_.back().started_at);
  frames_.pop_back();
  pc_ = instr.a1 + 1;  // skip past kPardoEnd
}

void Interpreter::exec_pardo_end(const Instruction& instr) {
  (void)instr;
  SIA_CHECK(!frames_.empty() && frames_.back().kind == Frame::Kind::kPardo,
            "pardo_end without matching frame");
  Frame& frame = frames_.back();
  if (pardo_advance(frame)) {
    pc_ = frame.start_pc + 1;
    return;
  }
  data_->clear_temps();
  clear_pardo_indices(frame);
  profiler_.record_pardo_elapsed(frame.pardo_id,
                                 wall_seconds() - frame.started_at);
  frames_.pop_back();
  ++pc_;
}

void Interpreter::exec_do_start(const Instruction& instr) {
  const sial::ResolvedIndex& index = program_.index(instr.a0);
  long first = 0, last = 0;
  if (instr.a2 >= 0) {
    const long super_value = data_->index_value(instr.a2);
    if (super_value == sial::kUndefinedIndexValue) {
      throw RuntimeError("'do " + index.name +
                         " in ...': super index has no value");
    }
    first = (super_value - 1) * index.subs_per_segment + 1;
    last = std::min<long>(super_value * index.subs_per_segment,
                          index.seg_hi);
  } else {
    first = index.seg_lo;
    last = index.seg_hi;
  }
  if (first > last) {
    pc_ = instr.a1 + 1;
    return;
  }
  Frame frame;
  frame.kind = Frame::Kind::kDo;
  frame.start_pc = pc_;
  frame.end_pc = instr.a1;
  frame.index_id = instr.a0;
  frame.current = first;
  frame.last = last;
  frames_.push_back(frame);
  data_->set_index_value(instr.a0, first);
  ++pc_;
}

void Interpreter::exec_do_end(const Instruction& instr) {
  (void)instr;
  SIA_CHECK(!frames_.empty() && frames_.back().kind == Frame::Kind::kDo,
            "do_end without matching frame");
  Frame& frame = frames_.back();
  if (exiting_loop_) {
    exiting_loop_ = false;
  } else if (frame.current + 1 <= frame.last) {
    ++frame.current;
    data_->set_index_value(frame.index_id, frame.current);
    pc_ = frame.start_pc + 1;
    return;
  }
  data_->clear_index_value(frame.index_id);
  frames_.pop_back();
  ++pc_;
}

// ---------------------------------------------------------------------
// Block instructions.

void Interpreter::exec_block_scalar_op(const Instruction& instr) {
  const double value = pop();
  const BlockSelector selector = resolve(instr.blocks[0]);
  switch (instr.a0) {
    case kModeAssign:
      with_write_block(selector, false,
                       [&](Block& dst) { blas::fill(dst.data(), value); });
      return;
    case kModeAcc:
      with_write_block(selector, true,
                       [&](Block& dst) { blas::shift(dst.data(), value); });
      return;
    case kModeSub:
      with_write_block(selector, true,
                       [&](Block& dst) { blas::shift(dst.data(), -value); });
      return;
    case kModeScale:
      with_write_block(selector, true,
                       [&](Block& dst) { blas::scal(dst.data(), value); });
      return;
    default:
      throw InternalError("bad block scalar mode");
  }
}

void Interpreter::exec_block_copy(const Instruction& instr) {
  const BlockSelector dst = resolve(instr.blocks[0]);
  BlockPtr src = read_operand(instr.blocks[1]);
  const CopyMode mode = instr.a0 == kModeAssign   ? CopyMode::kAssign
                        : instr.a0 == kModeAcc    ? CopyMode::kAccumulate
                                                  : CopyMode::kSubtract;
  with_write_block(dst, mode != CopyMode::kAssign, [&](Block& dst_block) {
    block_copy_permute(dst_block, ids_of(instr.blocks[0]), *src,
                       ids_of(instr.blocks[1]), mode,
                       shared_.config.sparse_threshold);
  });
}

void Interpreter::exec_block_binary(const Instruction& instr) {
  const BlockSelector dst = resolve(instr.blocks[0]);
  BlockPtr a = read_operand(instr.blocks[1]);
  BlockPtr b = read_operand(instr.blocks[2]);
  const bool accumulate = instr.a0 == kModeAcc;
  const auto op = static_cast<sial::BinOp>(instr.a1);

  with_write_block(dst, accumulate, [&](Block& dst_block) {
    if (op == sial::BinOp::kMul) {
      block_contract(dst_block, ids_of(instr.blocks[0]), *a,
                     ids_of(instr.blocks[1]), *b, ids_of(instr.blocks[2]),
                     accumulate, shared_.config.sparse_threshold);
    } else {
      block_add(dst_block, ids_of(instr.blocks[0]), *a,
                ids_of(instr.blocks[1]), *b, ids_of(instr.blocks[2]),
                op == sial::BinOp::kSub, accumulate);
    }
  });
}

void Interpreter::exec_block_scaled_copy(const Instruction& instr) {
  const double coefficient = pop();
  const BlockSelector dst = resolve(instr.blocks[0]);
  BlockPtr src = read_operand(instr.blocks[1]);

  with_write_block(dst, instr.a0 != kModeAssign, [&](Block& dst_block) {
    BlockPtr permuted =
        permuted_for(src, ids_of(instr.blocks[1]), ids_of(instr.blocks[0]),
                     dst_block.shape());
    auto src_span = permuted->data();
    auto dst_span = dst_block.data();
    switch (instr.a0) {
      case kModeAssign:
        for (std::size_t i = 0; i < dst_span.size(); ++i) {
          dst_span[i] = coefficient * src_span[i];
        }
        return;
      case kModeAcc:
        blas::axpy(coefficient, src_span, dst_span);
        return;
      case kModeSub:
        blas::axpy(-coefficient, src_span, dst_span);
        return;
      default:
        throw InternalError("bad scaled copy mode");
    }
  });
}

// ---------------------------------------------------------------------
// Communication instructions.

std::vector<LoopContext> Interpreter::loop_contexts() const {
  std::vector<LoopContext> loops;
  for (auto it = frames_.rbegin(); it != frames_.rend(); ++it) {
    LoopContext loop;
    if (it->kind == Frame::Kind::kDo) {
      loop.is_pardo = false;
      loop.index_id = it->index_id;
      loop.current = it->current;
      loop.last = it->last;
    } else {
      loop.is_pardo = true;
      loop.pardo =
          &program_.code().pardos[static_cast<std::size_t>(it->pardo_id)];
      loop.filtered = &it->filtered;
      loop.next_pos = it->pos;
      loop.end_pos = it->chunk_end;
    }
    loops.push_back(loop);
  }
  return loops;
}

std::vector<BlockId> Interpreter::lookahead_candidates(
    const sial::BlockOperand& operand) const {
  if (shared_.config.prefetch_depth <= 0) return {};
  const std::vector<LoopContext> loops = loop_contexts();
  // Blocks one of our own un-retired puts targets must not be requested:
  // the fetch would race the put's retire-time send. Skipping (rather
  // than deferring) a speculative fetch is always safe.
  const auto excluded = [this](const BlockId& id) {
    return executor_ != nullptr && window_put_targets_.count(id) > 0;
  };
  return lookahead_read_set(program_, operand, data_->index_values(), loops,
                            shared_.config.prefetch_depth, excluded);
}

void Interpreter::exec_get(const Instruction& instr) {
  const BlockSelector selector = resolve(instr.blocks[0]);
  const BlockId id = selector.id();
  if (executor_ != nullptr && window_put_targets_.count(id) > 0) {
    // Read-your-own-write across the window: an un-retired put targets
    // this block, so the get request must not reach the home before that
    // put's data. Defer the issue to a retire-only window entry —
    // program-order retirement runs it right after the put's send.
    DataflowExecutor::Entry entry;
    entry.pc = pc_;
    entry.retire = [this, id] { dist_->issue_get(id); };
    enqueue_entry(std::move(entry));
  } else {
    dist_->issue_get(id);
  }

  // Look ahead along the enclosing loops (paper §V-A).
  for (const BlockId& candidate : lookahead_candidates(instr.blocks[0])) {
    dist_->issue_get(candidate);
  }
}

void Interpreter::exec_request(const Instruction& instr) {
  const BlockSelector selector = resolve(instr.blocks[0]);
  const BlockId id = selector.id();
  if (executor_ != nullptr && window_put_targets_.count(id) > 0) {
    DataflowExecutor::Entry entry;
    entry.pc = pc_;
    entry.retire = [this, id] { served_->issue_request(id); };
    enqueue_entry(std::move(entry));
  } else {
    served_->issue_request(id);
  }

  // Served-array look-ahead, mirroring exec_get: speculative requests for
  // the next iterations become low-priority read-ahead jobs at the I/O
  // server, warming its cache (and this worker's) behind demand traffic.
  for (const BlockId& candidate : lookahead_candidates(instr.blocks[0])) {
    served_->issue_lookahead(candidate);
  }
}

void Interpreter::exec_prefetch(const Instruction& instr) {
  // Optimizer-hoisted fetch of a loop-invariant block (src/sial/opt/).
  // Zero-trip guard first, replicating exec_do_start's bounds: if the
  // loop this fetch was hoisted from will not run, the unoptimized
  // program never issued it — the block may legitimately not exist.
  const sial::ResolvedIndex& index = program_.index(instr.a0);
  long first = 0, last = 0;
  if (instr.a1 >= 0) {
    const long super_value = data_->index_value(instr.a1);
    if (super_value == sial::kUndefinedIndexValue) {
      return;  // the kDoStart right behind us reports the error
    }
    first = (super_value - 1) * index.subs_per_segment + 1;
    last = std::min<long>(super_value * index.subs_per_segment,
                          index.seg_hi);
  } else {
    first = index.seg_lo;
    last = index.seg_hi;
  }
  if (first > last) return;

  const BlockId id = resolve(instr.blocks[0]).id();
  const bool served = program_.array(instr.blocks[0].array_id).kind ==
                      sial::ArrayKind::kServed;
  if (executor_ != nullptr && window_put_targets_.count(id) > 0) {
    // Same read-your-own-write deferral as exec_get/exec_request.
    DataflowExecutor::Entry entry;
    entry.pc = pc_;
    if (served) {
      entry.retire = [this, id] { served_->issue_request(id); };
    } else {
      entry.retire = [this, id] { dist_->issue_get(id); };
    }
    enqueue_entry(std::move(entry));
  } else if (served) {
    served_->issue_request(id);
  } else {
    dist_->issue_get(id);
  }
}

void Interpreter::batch_issue_gets(const Instruction& instr,
                                   std::size_t first_block) {
  if (!shared_.config.batch_gets) return;
  const auto issue = [&](const BlockOperand& operand) {
    const sial::ResolvedArray& array = program_.array(operand.array_id);
    if (array.kind == ArrayKind::kDistributed) {
      dist_->issue_get(resolve(operand).id(), /*implicit=*/true);
    } else if (array.kind == ArrayKind::kServed) {
      served_->issue_request(resolve(operand).id());
    }
  };
  for (std::size_t i = first_block; i < instr.blocks.size(); ++i) {
    issue(instr.blocks[i]);
  }
  for (const sial::ExecOperand& earg : instr.eargs) {
    if (earg.kind == sial::ExecOperand::Kind::kBlock) issue(earg.block);
  }
}

void Interpreter::exec_put(const Instruction& instr) {
  const BlockSelector dst = resolve(instr.blocks[0]);
  BlockPtr src = read_operand(instr.blocks[1]);
  BlockPtr shaped = permuted_for(src, ids_of(instr.blocks[1]),
                                 ids_of(instr.blocks[0]), dst.shape());
  if (shaped->size() != dst.shape().element_count()) {
    throw RuntimeError("put: block shape mismatch");
  }
  // Hand the shared_ptr over: when `shaped` is the last reference (the
  // common permuted-copy case) the manager ships it zero-copy.
  dist_->put(dst.id(), std::move(shaped), instr.a0 == 1);
}

void Interpreter::exec_prepare(const Instruction& instr) {
  const BlockSelector dst = resolve(instr.blocks[0]);
  BlockPtr src = read_operand(instr.blocks[1]);
  BlockPtr shaped = permuted_for(src, ids_of(instr.blocks[1]),
                                 ids_of(instr.blocks[0]), dst.shape());
  if (shaped->size() != dst.shape().element_count()) {
    throw RuntimeError("prepare: block shape mismatch");
  }
  served_->prepare(dst.id(), std::move(shaped), instr.a0 == 1);
}

void Interpreter::exec_allocate(const Instruction& instr, bool allocate) {
  const BlockOperand& operand = instr.blocks[0];
  const sial::ResolvedArray& array = program_.array(operand.array_id);
  std::array<int, blas::kMaxRank> lo{}, hi{};
  for (int d = 0; d < operand.rank; ++d) {
    const std::size_t ud = static_cast<std::size_t>(d);
    const int index_id = operand.index_ids[ud];
    if (index_id == sial::kWildcardIndex) {
      lo[ud] = 1;
      hi[ud] = array.num_segments[ud];
      continue;
    }
    const long value = data_->index_value(index_id);
    if (value == sial::kUndefinedIndexValue) {
      throw RuntimeError("allocate: index '" +
                         program_.index(index_id).name + "' has no value");
    }
    const int local = static_cast<int>(value) - array.seg_lo[ud] + 1;
    if (local < 1 || local > array.num_segments[ud]) {
      throw RuntimeError("allocate: index value outside array '" +
                         array.name + "'");
    }
    lo[ud] = hi[ud] = local;
  }
  const std::span<const int> lo_span{lo.data(),
                                     static_cast<std::size_t>(operand.rank)};
  const std::span<const int> hi_span{hi.data(),
                                     static_cast<std::size_t>(operand.rank)};
  if (allocate) {
    data_->allocate_local(operand.array_id, lo_span, hi_span);
  } else {
    data_->deallocate_local(operand.array_id, lo_span, hi_span);
  }
}

void Interpreter::exec_execute(const Instruction& instr) {
  const SuperInstructionFn* fn =
      superinstructions_[static_cast<std::size_t>(instr.a0)];
  if (fn == nullptr) {
    throw RuntimeError(
        "unknown super instruction '" +
        program_.code()
            .superinstructions[static_cast<std::size_t>(instr.a0)] +
        "' (not registered with the SIP)");
  }

  struct Writeback {
    BlockPtr container;
    BlockPtr scratch;
    BlockSelector selector;
  };
  std::vector<Writeback> writebacks;
  std::vector<ExecArgValue> values;
  values.reserve(instr.eargs.size());

  for (const sial::ExecOperand& earg : instr.eargs) {
    ExecArgValue value;
    value.kind = earg.kind;
    switch (earg.kind) {
      case sial::ExecOperand::Kind::kBlock: {
        const BlockSelector selector = resolve(earg.block);
        value.selector = selector;
        const sial::ResolvedArray& array = program_.array(selector.array_id);
        const bool local_kind = array.kind == ArrayKind::kStatic ||
                                array.kind == ArrayKind::kTemp ||
                                array.kind == ArrayKind::kLocal;
        if (local_kind && !selector.sliced) {
          value.block = data_->has_block(selector.id())
                            ? data_->read_local_kind(selector)
                            : data_->write_local_kind(selector);
        } else if (local_kind) {
          BlockPtr container = data_->read_local_kind(selector);
          auto scratch = std::make_shared<Block>(
              slice(*container,
                    {selector.slice_origin.data(),
                     static_cast<std::size_t>(selector.rank)},
                    selector.shape()));
          writebacks.push_back(Writeback{container, scratch, selector});
          value.block = std::move(scratch);
        } else {
          // Distributed/served: read-only clone.
          BlockPtr base = fetch_base_block(selector);
          value.block = std::make_shared<Block>(
              selector.sliced
                  ? slice(*base,
                          {selector.slice_origin.data(),
                           static_cast<std::size_t>(selector.rank)},
                          selector.shape())
                  : base->clone());
        }
        break;
      }
      case sial::ExecOperand::Kind::kScalar:
        value.scalar = &data_->scalar_ref(earg.slot);
        break;
      case sial::ExecOperand::Kind::kString:
        value.text =
            program_.code().strings[static_cast<std::size_t>(earg.slot)];
        break;
      case sial::ExecOperand::Kind::kNumber:
        value.number = earg.number;
        break;
    }
    values.push_back(std::move(value));
  }

  SuperInstructionContext context(program_, values, worker_index_,
                                  shared_.num_workers());
  (*fn)(context);

  for (const Writeback& writeback : writebacks) {
    insert(*writeback.container,
           {writeback.selector.slice_origin.data(),
            static_cast<std::size_t>(writeback.selector.rank)},
           *writeback.scratch);
  }
}

void Interpreter::exec_barrier(bool server) {
  // Window entries may still produce puts at retire; every one of them
  // must be out before the coalesced flush and the barrier enter.
  drain_window();
  // All coalesced writes must be at their home/server before this worker
  // enters the barrier: the fabric enqueues synchronously, so flushing
  // here guarantees the puts sit in the destination mailbox ahead of the
  // master's release (which is only sent after every worker entered).
  dist_->flush_coalesced();
  served_->flush_coalesced();
  // Under the reliable protocol the guarantee must be stronger: every
  // tracked send *acked*, not merely enqueued — a dropped put that is
  // retransmitted after the release would land in the wrong epoch.
  drain_channel();
  const std::int64_t seq = ++barrier_seq_;
  pending_barrier_server_ = server;
  msg::Message enter;
  enter.tag = msg::kBarrierEnter;
  enter.header = {seq, server ? 1 : 0};
  shared_.fabric->send(my_rank_, shared_.master_rank(), std::move(enter));
  // The epoch advance happens inside handle_message when the release
  // arrives (see kBarrierRelease).
  wait_until([&] { return barrier_released_.count(seq) > 0; }, "barrier",
             WaitKind::kBarrier);
  barrier_released_.erase(seq);
}

void Interpreter::exec_collective(const Instruction& instr) {
  const std::int64_t seq = ++collective_seq_;
  msg::Message reduce;
  reduce.tag = msg::kScalarReduce;
  reduce.header = {seq, instr.a1};
  reduce.data = {data_->scalar(instr.a1)};
  shared_.fabric->send(my_rank_, shared_.master_rank(), std::move(reduce));
  wait_until([&] { return collective_results_.count(seq) > 0; },
             "collective", WaitKind::kCollective);
  data_->scalar_ref(instr.a0) += collective_results_[seq];
  collective_results_.erase(seq);
}

void Interpreter::exec_checkpoint(const Instruction& instr, bool restore) {
  const int array_id = instr.a0;
  const std::string& key =
      program_.code().strings[static_cast<std::size_t>(instr.a1)];
  const sial::ResolvedArray& array = program_.array(array_id);

  exec_barrier(/*server=*/false);
  if (!restore) {
    checkpoint::write_part(shared_.scratch_dir, key, worker_index_,
                           program_, array_id, dist_->home_blocks());
    if (worker_index_ == 0) {
      checkpoint::Manifest manifest;
      manifest.array_name = array.name;
      manifest.parts = shared_.num_workers();
      manifest.total_blocks = array.total_blocks;
      checkpoint::write_manifest(shared_.scratch_dir, key, manifest);
    }
  } else {
    const checkpoint::Manifest manifest =
        checkpoint::read_manifest(shared_.scratch_dir, key);
    if (manifest.array_name != array.name) {
      throw RuntimeError("restore: checkpoint '" + key + "' holds array '" +
                         manifest.array_name + "', not '" + array.name +
                         "'");
    }
    dist_->delete_array(array_id);
    dist_->create_array(array_id);
    for (int part = 0; part < manifest.parts; ++part) {
      checkpoint::read_part(
          shared_.scratch_dir, key, part,
          [&](std::int64_t linear, const std::vector<double>& payload) {
            const BlockId id = BlockId::from_linear(array_id, linear,
                                                    array.num_segments);
            if (shared_.owner_rank(id) != my_rank_) return;
            const BlockShape shape = program_.grid_block_shape(
                array,
                {id.segments.data(), static_cast<std::size_t>(id.rank)});
            if (shape.element_count() != payload.size()) {
              throw RuntimeError("restore: block size mismatch in '" + key +
                                 "'");
            }
            auto block = std::make_shared<Block>(
                shape, pool_->allocate(shape.element_count()));
            std::copy(payload.begin(), payload.end(),
                      block->data().begin());
            dist_->store_home_block(id, std::move(block));
          });
    }
  }
  exec_barrier(/*server=*/false);
}

// ---------------------------------------------------------------------
// Main loop.

void Interpreter::step() {
  const Instruction& instr =
      program_.code().code[static_cast<std::size_t>(pc_)];
  switch (instr.op) {
    case Opcode::kNop:
      ++pc_;
      return;
    case Opcode::kPardoStart:
      exec_pardo_start(instr);
      return;
    case Opcode::kPardoEnd:
      exec_pardo_end(instr);
      return;
    case Opcode::kDoStart:
      exec_do_start(instr);
      return;
    case Opcode::kDoEnd:
      exec_do_end(instr);
      return;
    case Opcode::kJump:
      pc_ = instr.a0;
      return;
    case Opcode::kJumpIfFalse:
      pc_ = pop() != 0.0 ? pc_ + 1 : instr.a0;
      return;
    case Opcode::kCall:
      call_stack_.push_back(pc_ + 1);
      pc_ = program_.code()
                .procs[static_cast<std::size_t>(instr.a0)]
                .entry_pc;
      return;
    case Opcode::kReturn:
      SIA_CHECK(!call_stack_.empty(), "return without call");
      pc_ = call_stack_.back();
      call_stack_.pop_back();
      return;
    case Opcode::kExitLoop:
      exiting_loop_ = true;
      pc_ = instr.a0;
      return;
    case Opcode::kPushNumber:
      push(instr.f0);
      ++pc_;
      return;
    case Opcode::kPushScalar:
      push(data_->scalar(instr.a0));
      ++pc_;
      return;
    case Opcode::kPushIndex: {
      const long value = data_->index_value(instr.a0);
      if (value == sial::kUndefinedIndexValue) {
        throw RuntimeError("index '" + program_.index(instr.a0).name +
                           "' read without a value");
      }
      push(static_cast<double>(value));
      ++pc_;
      return;
    }
    case Opcode::kPushConst:
      push(program_.constant_value(instr.a0));
      ++pc_;
      return;
    case Opcode::kNeg:
      push(-pop());
      ++pc_;
      return;
    case Opcode::kAdd: {
      const double rhs = pop();
      push(pop() + rhs);
      ++pc_;
      return;
    }
    case Opcode::kSub: {
      const double rhs = pop();
      push(pop() - rhs);
      ++pc_;
      return;
    }
    case Opcode::kMul: {
      const double rhs = pop();
      push(pop() * rhs);
      ++pc_;
      return;
    }
    case Opcode::kDiv: {
      const double rhs = pop();
      if (rhs == 0.0) throw RuntimeError("scalar division by zero");
      push(pop() / rhs);
      ++pc_;
      return;
    }
    case Opcode::kSqrt:
      push(std::sqrt(pop()));
      ++pc_;
      return;
    case Opcode::kAbs:
      push(std::abs(pop()));
      ++pc_;
      return;
    case Opcode::kExpFn:
      push(std::exp(pop()));
      ++pc_;
      return;
    case Opcode::kCompare: {
      const double rhs = pop();
      const double lhs = pop();
      bool result = false;
      switch (static_cast<sial::CmpOp>(instr.a0)) {
        case sial::CmpOp::kLt: result = lhs < rhs; break;
        case sial::CmpOp::kLe: result = lhs <= rhs; break;
        case sial::CmpOp::kGt: result = lhs > rhs; break;
        case sial::CmpOp::kGe: result = lhs >= rhs; break;
        case sial::CmpOp::kEq: result = lhs == rhs; break;
        case sial::CmpOp::kNe: result = lhs != rhs; break;
      }
      push(result ? 1.0 : 0.0);
      ++pc_;
      return;
    }
    case Opcode::kStoreScalar: {
      const double value = pop();
      double& slot = data_->scalar_ref(instr.a0);
      switch (instr.a1) {
        case kModeAssign: slot = value; break;
        case kModeAcc: slot += value; break;
        case kModeSub: slot -= value; break;
        case kModeScale: slot *= value; break;
        default: throw InternalError("bad scalar store mode");
      }
      ++pc_;
      return;
    }
    case Opcode::kBlockDot: {
      // Reduces into the scalar stack, which later scan-time instructions
      // consume: serialize with the window.
      drain_window();
      batch_issue_gets(instr, 0);
      BlockPtr a = read_operand(instr.blocks[0]);
      BlockPtr b = read_operand(instr.blocks[1]);
      push(block_dot(*a, ids_of(instr.blocks[0]), *b,
                     ids_of(instr.blocks[1]),
                     shared_.config.sparse_threshold));
      ++pc_;
      return;
    }
    case Opcode::kPrintTop:
      if (worker_index_ == 0) {
        std::printf("[sial:%s] %.12g\n", program_.code().name.c_str(),
                    stack_.back());
        std::fflush(stdout);
      }
      pop();
      ++pc_;
      return;
    case Opcode::kPrintString:
      if (worker_index_ == 0) {
        std::printf(
            "[sial:%s] %s\n", program_.code().name.c_str(),
            program_.code().strings[static_cast<std::size_t>(instr.a0)]
                .c_str());
        std::fflush(stdout);
      }
      ++pc_;
      return;
    case Opcode::kBlockScalarOp:
      if (executor_) {
        window_block_op(instr, pop());
      } else {
        exec_block_scalar_op(instr);
      }
      ++pc_;
      return;
    case Opcode::kBlockCopy:
      if (executor_) {
        window_block_op(instr, 0.0);
      } else {
        batch_issue_gets(instr, 1);  // dst (index 0) is a local-kind write
        exec_block_copy(instr);
      }
      ++pc_;
      return;
    case Opcode::kBlockBinary:
      if (executor_) {
        window_block_op(instr, 0.0);
      } else {
        batch_issue_gets(instr, 1);
        exec_block_binary(instr);
      }
      ++pc_;
      return;
    case Opcode::kBlockScaledCopy:
      if (executor_) {
        window_block_op(instr, pop());
      } else {
        batch_issue_gets(instr, 1);
        exec_block_scaled_copy(instr);
      }
      ++pc_;
      return;
    case Opcode::kGet:
      exec_get(instr);
      ++pc_;
      return;
    case Opcode::kRequest:
      exec_request(instr);
      ++pc_;
      return;
    case Opcode::kPrefetch:
      exec_prefetch(instr);
      ++pc_;
      return;
    case Opcode::kPut:
      if (executor_) {
        window_put(instr, /*served=*/false);
      } else {
        batch_issue_gets(instr, 1);  // source may itself be remote
        exec_put(instr);
      }
      ++pc_;
      return;
    case Opcode::kPrepare:
      if (executor_) {
        window_put(instr, /*served=*/true);
      } else {
        batch_issue_gets(instr, 1);
        exec_prepare(instr);
      }
      ++pc_;
      return;
    case Opcode::kAllocate:
      exec_allocate(instr, true);
      ++pc_;
      return;
    case Opcode::kDeallocate:
      // Frees local blocks an in-flight entry may still reference by id.
      drain_window();
      exec_allocate(instr, false);
      ++pc_;
      return;
    case Opcode::kCreate:
      drain_window();
      dist_->create_array(instr.a0);
      ++pc_;
      return;
    case Opcode::kDeleteArr:
      drain_window();
      dist_->delete_array(instr.a0);
      ++pc_;
      return;
    case Opcode::kExecute:
      // Super instructions touch blocks through their own protocol the
      // window cannot see; run them on the serial machine state.
      drain_window();
      batch_issue_gets(instr, 0);  // block operands live in eargs
      exec_execute(instr);
      ++pc_;
      return;
    case Opcode::kSipBarrier:
      exec_barrier(false);
      ++pc_;
      return;
    case Opcode::kServerBarrier:
      exec_barrier(true);
      ++pc_;
      return;
    case Opcode::kCollective:
      drain_window();
      exec_collective(instr);
      ++pc_;
      return;
    case Opcode::kCheckpoint:
      exec_checkpoint(instr, false);
      ++pc_;
      return;
    case Opcode::kRestoreArr:
      exec_checkpoint(instr, true);
      ++pc_;
      return;
    case Opcode::kHalt:
      return;  // caller notices
  }
  throw InternalError("unhandled opcode");
}

void Interpreter::execute_program() {
  const double start = wall_seconds();
  while (true) {
    shared_.check_abort();
    service_messages();
    // Resolve operands that just arrived, issue unblocked entries, retire
    // completed ones — every scan step, so the window turns over even
    // while the interpreter thread is busy decoding.
    if (executor_) executor_->pump();
    const int pc = pc_;
    const Instruction& instr =
        program_.code().code[static_cast<std::size_t>(pc)];
    if (instr.op == Opcode::kHalt) break;
    const double t0 = wall_seconds();
    step();
    profiler_.record_instruction(pc, instr.line, opcode_name(instr.op),
                                 wall_seconds() - t0);
  }
  drain_window();
  profiler_.record_total(wall_seconds() - start);

  // Nothing may stay write-combined past the end of the program.
  dist_->flush_coalesced();
  served_->flush_coalesced();
  drain_channel();

  // Tell the master this worker is done; keep servicing messages until
  // the fabric stops or all peers finish (other workers may still need
  // blocks homed here).
  msg::Message done;
  done.tag = msg::kBarrierEnter;
  done.header = {0, 2};
  shared_.fabric->send(my_rank_, shared_.master_rank(), std::move(done));
  while (!shared_.fabric->stopped()) {
    auto message = shared_.fabric->recv_for(my_rank_, 20);
    if (!message.has_value()) {
      if (shared_.abort_flag.load(std::memory_order_acquire)) break;
      continue;
    }
    if (message->tag == msg::kShutdown) break;
    handle_message(*message);
  }
}

void Interpreter::run() {
  try {
    execute_program();
  } catch (const Aborted&) {
    // Another rank failed first. Unwind the window without running
    // retires: pending operands may never arrive once peers are gone.
    if (executor_) executor_->cancel();
  } catch (const std::exception& error) {
    if (executor_) executor_->cancel();
    // A deferred error surfaces at retirement, by which time pc_ has
    // scanned ahead; the executor remembers the failing entry's pc.
    int pc = pc_;
    if (executor_ && executor_->last_error_pc() >= 0) {
      pc = executor_->last_error_pc();
    }
    const int line =
        pc >= 0 && pc < static_cast<int>(program_.code().code.size())
            ? program_.code().code[static_cast<std::size_t>(pc)].line
            : 0;
    shared_.raise_abort(std::string(error.what()) +
                        (line > 0 ? " (at SIAL line " + std::to_string(line) +
                                        ")"
                                  : ""));
  }
}

}  // namespace sia::sip
