// Look-ahead block prefetching.
//
// "The SIP looks ahead and requests several blocks that it expects will
// soon be needed, thus overlapping communication and computation" (paper
// §V-A). Given a get/request operand and the loop nest it executes in,
// this module predicts the block ids of the next few iterations: for a
// sequential do loop by advancing the loop index, for a pardo by walking
// the remaining positions of the worker's current chunk.
//
// The depth is a runtime knob (SipConfig::prefetch_depth); the BlueGene/P
// tuning anecdote of §VI-A — prefetched blocks arriving too early and
// thrashing the cache — is reproduced by raising it against a small cache
// (bench/ablation_bgp_tuning).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "block/block_id.hpp"
#include "sial/program.hpp"

namespace sia::sip {

// One enclosing loop, innermost first.
struct LoopContext {
  bool is_pardo = false;
  // Sequential do loop.
  int index_id = -1;
  long current = 0;
  long last = 0;
  // Pardo chunk.
  const sial::PardoInfo* pardo = nullptr;
  const std::vector<std::int64_t>* filtered = nullptr;
  std::int64_t next_pos = 0;  // first not-yet-started position
  std::int64_t end_pos = 0;   // end of the current chunk
};

// Block ids the operand will select in the next `depth` iterations of the
// innermost enclosing loop that drives it. Empty if no loop drives the
// operand or depth == 0.
std::vector<BlockId> prefetch_candidates(
    const sial::ResolvedProgram& program, const sial::BlockOperand& operand,
    std::span<const long> index_values,
    std::span<const LoopContext> loops, int depth);

// The look-ahead read set: prefetch_candidates minus the ids `exclude`
// rejects. This is the single source of truth for "blocks this operand
// will need soon" — the serial prefetcher (speculative gets / read-ahead
// requests) and the dataflow window (fetches issued when an operand bind
// stalls) both consume it, so the two look-ahead mechanisms can never
// disagree about the predicted stream. `exclude` may be null; the
// interpreter passes its un-retired-window-put filter so neither
// mechanism requests a block its own pending put is about to overwrite.
std::vector<BlockId> lookahead_read_set(
    const sial::ResolvedProgram& program, const sial::BlockOperand& operand,
    std::span<const long> index_values, std::span<const LoopContext> loops,
    int depth, const std::function<bool(const BlockId&)>& exclude);

}  // namespace sia::sip
