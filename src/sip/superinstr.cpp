#include "sip/superinstr.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>

#include "blas/contraction_plan.hpp"
#include "blas/elementwise.hpp"
#include "blas/gemm.hpp"
#include "blas/permute.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"

namespace sia::sip {
namespace {

// Positions of `ids` (by value) inside `other`; -1 when absent.
int find_id(std::span<const int> ids, int id) {
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (ids[i] == id) return static_cast<int>(i);
  }
  return -1;
}

// Regression tripwire: counts full-block permute copies of A/B operands
// materialized by block_contract. The gather-packing engine reads permuted
// operands directly during GEMM packing, so this must stay zero; any
// future fallback that re-introduces an operand transpose pass must bump
// it so tests catch the regression.
std::atomic<std::uint64_t> g_operand_permutes{0};

// Block kernels skipped by norm screening (contractions, dots, permuted
// accumulates). Pool threads bump this concurrently.
std::atomic<std::uint64_t> g_kernels_screened{0};

}  // namespace

std::uint64_t contract_operand_permute_count() {
  return g_operand_permutes.load(std::memory_order_relaxed);
}

std::uint64_t kernels_screened_count() {
  return g_kernels_screened.load(std::memory_order_relaxed);
}

void note_kernel_screened() {
  g_kernels_screened.fetch_add(1, std::memory_order_relaxed);
}

void block_contract(Block& dst, std::span<const int> dst_ids, const Block& a,
                    std::span<const int> a_ids, const Block& b,
                    std::span<const int> b_ids, bool accumulate,
                    double screen_threshold) {
  if (screen_threshold > 0.0 && a.norm() * b.norm() < screen_threshold) {
    // ||A x B||_F <= ||A||_F * ||B||_F < threshold: the whole product is
    // screened out without reading either operand's data.
    g_kernels_screened.fetch_add(1, std::memory_order_relaxed);
    if (!accumulate) {
      std::fill(dst.data().begin(), dst.data().end(), 0.0);
    }
    return;
  }
  // All symbolic analysis (axis partition, gather tables, output
  // permutation) is memoized per worker; inside a pardo the same shaped
  // contraction repeats thousands of times and hits the cache.
  const blas::ContractionPlan& plan = blas::thread_plan_cache().get(
      dst_ids, a_ids, b_ids, a.shape().extents(), b.shape().extents());

  const double* a_ptr = a.data().data();
  const double* b_ptr = b.data().data();

  if (plan.dst_identity) {
    blas::dgemm_gather(plan.m, plan.n, plan.k, 1.0, a_ptr,
                       plan.a_row_off.data(), plan.a_col_off.data(), b_ptr,
                       plan.b_row_off.data(), plan.b_col_off.data(),
                       accumulate ? 1.0 : 0.0, dst.data().data(), plan.n);
    return;
  }

  // Output-side permutation remains: GEMM into scratch, then one
  // cache-blocked permute (or permute-accumulate) into dst.
  thread_local std::vector<double> c_buf;
  c_buf.resize(plan.m * plan.n);
  blas::dgemm_gather(plan.m, plan.n, plan.k, 1.0, a_ptr,
                     plan.a_row_off.data(), plan.a_col_off.data(), b_ptr,
                     plan.b_row_off.data(), plan.b_col_off.data(), 0.0,
                     c_buf.data(), plan.n);
  if (accumulate) {
    blas::permute_acc(c_buf.data(), plan.result_dims, plan.final_perm,
                      dst.data().data());
  } else {
    blas::permute(c_buf.data(), plan.result_dims, plan.final_perm,
                  dst.data().data());
  }
}

double block_dot(const Block& a, std::span<const int> a_ids, const Block& b,
                 std::span<const int> b_ids, double screen_threshold) {
  if (a_ids.size() != b_ids.size()) {
    throw RuntimeError("block_dot: rank mismatch");
  }
  if (screen_threshold > 0.0 && a.norm() * b.norm() < screen_threshold) {
    // |<a, b>| <= ||a|| * ||b|| < threshold (Cauchy–Schwarz).
    g_kernels_screened.fetch_add(1, std::memory_order_relaxed);
    return 0.0;
  }
  // A full contraction is a contraction plan with an empty destination:
  // every id must be shared, m == n == 1, and b_row_off gathers b in a's
  // element order. The plan cache makes repeated dots (residual norms in
  // iterative solvers) pay for the analysis once.
  static const std::vector<int> kNoIds;
  const blas::ContractionPlan& plan = blas::thread_plan_cache().get(
      kNoIds, a_ids, b_ids, a.shape().extents(), b.shape().extents());
  if (plan.b_contiguous) {
    return blas::dot(a.data(), b.data());
  }
  return blas::dot_gather(a.data(), b.data().data(), plan.b_row_off.data());
}

namespace {

// Permutation taking src into dst's id order: perm[d] = src axis of
// dst_ids[d].
std::vector<int> perm_to_dst(std::span<const int> dst_ids,
                             std::span<const int> src_ids) {
  SIA_CHECK(dst_ids.size() == src_ids.size(), "permute: rank mismatch");
  std::vector<int> perm(dst_ids.size());
  for (std::size_t d = 0; d < dst_ids.size(); ++d) {
    const int pos = find_id(src_ids, dst_ids[d]);
    if (pos < 0) {
      throw RuntimeError("block assignment: operand index sets differ");
    }
    perm[d] = pos;
  }
  return perm;
}

}  // namespace

void block_copy_permute(Block& dst, std::span<const int> dst_ids,
                        const Block& src, std::span<const int> src_ids,
                        CopyMode mode, double screen_threshold) {
  if (screen_threshold > 0.0 && mode != CopyMode::kAssign &&
      src.norm() < screen_threshold) {
    // Accumulating a below-threshold source is screened out; assign mode
    // still copies because dst must be defined afterwards.
    g_kernels_screened.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::vector<int> perm = perm_to_dst(dst_ids, src_ids);
  const std::vector<int> src_dims(src.shape().extents().begin(),
                                  src.shape().extents().end());
  SIA_CHECK(dst.size() == src.size(), "block copy: size mismatch");
  switch (mode) {
    case CopyMode::kAssign:
      blas::permute(src.data().data(), src_dims, perm, dst.data().data());
      return;
    case CopyMode::kAccumulate:
      blas::permute_acc(src.data().data(), src_dims, perm,
                        dst.data().data());
      return;
    case CopyMode::kSubtract: {
      thread_local std::vector<double> buf;
      buf.resize(src.size());
      blas::permute(src.data().data(), src_dims, perm, buf.data());
      blas::axpy(-1.0, {buf.data(), buf.size()}, dst.data());
      return;
    }
  }
}

void block_add(Block& dst, std::span<const int> dst_ids, const Block& a,
               std::span<const int> a_ids, const Block& b,
               std::span<const int> b_ids, bool subtract, bool accumulate) {
  // dst (op)= perm(a) +/- perm(b).
  if (!accumulate) {
    block_copy_permute(dst, dst_ids, a, a_ids, CopyMode::kAssign);
  } else {
    block_copy_permute(dst, dst_ids, a, a_ids, CopyMode::kAccumulate);
  }
  block_copy_permute(dst, dst_ids, b, b_ids,
                     subtract ? CopyMode::kSubtract : CopyMode::kAccumulate);
}

// ---------------------------------------------------------------------
// Context and registry.

const ExecArgValue& SuperInstructionContext::arg(int i) const {
  if (i < 0 || i >= num_args()) {
    throw RuntimeError("super instruction argument index out of range");
  }
  return args_[static_cast<std::size_t>(i)];
}

ExecArgValue& SuperInstructionContext::arg(int i) {
  if (i < 0 || i >= num_args()) {
    throw RuntimeError("super instruction argument index out of range");
  }
  return args_[static_cast<std::size_t>(i)];
}

Block& SuperInstructionContext::block_arg(int i) {
  ExecArgValue& value = arg(i);
  if (value.kind != sial::ExecOperand::Kind::kBlock || !value.block) {
    throw RuntimeError("super instruction argument is not a block");
  }
  return *value.block;
}

const sial::BlockSelector& SuperInstructionContext::selector(int i) const {
  const ExecArgValue& value = arg(i);
  if (value.kind != sial::ExecOperand::Kind::kBlock) {
    throw RuntimeError("super instruction argument is not a block");
  }
  return value.selector;
}

double& SuperInstructionContext::scalar_arg(int i) {
  ExecArgValue& value = arg(i);
  if (value.kind != sial::ExecOperand::Kind::kScalar ||
      value.scalar == nullptr) {
    throw RuntimeError("super instruction argument is not a scalar");
  }
  return *value.scalar;
}

const std::string& SuperInstructionContext::string_arg(int i) const {
  const ExecArgValue& value = arg(i);
  if (value.kind != sial::ExecOperand::Kind::kString) {
    throw RuntimeError("super instruction argument is not a string");
  }
  return value.text;
}

double SuperInstructionContext::number_arg(int i) const {
  const ExecArgValue& value = arg(i);
  if (value.kind == sial::ExecOperand::Kind::kNumber) return value.number;
  if (value.kind == sial::ExecOperand::Kind::kScalar &&
      value.scalar != nullptr) {
    return *value.scalar;
  }
  throw RuntimeError("super instruction argument is not a number");
}

long SuperInstructionContext::first_element(int i, int d) const {
  const sial::BlockSelector& sel = selector(i);
  if (d < 0 || d >= sel.rank) {
    throw RuntimeError("first_element: dimension out of range");
  }
  return sel.first_element[static_cast<std::size_t>(d)];
}

SuperInstructionRegistry& SuperInstructionRegistry::global() {
  static SuperInstructionRegistry registry;
  return registry;
}

void SuperInstructionRegistry::register_instruction(const std::string& name,
                                                    SuperInstructionFn fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  table_[name] = std::move(fn);
}

const SuperInstructionFn* SuperInstructionRegistry::lookup(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = table_.find(name);
  return it == table_.end() ? nullptr : &it->second;
}

std::vector<std::string> SuperInstructionRegistry::names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(table_.size());
  for (const auto& [name, fn] : table_) names.push_back(name);
  return names;
}

// ---------------------------------------------------------------------
// Built-ins.

namespace {

// Iterates a block's elements together with their absolute coordinates.
template <typename Fn>
void for_each_element(SuperInstructionContext& ctx, int arg, Fn&& fn) {
  Block& block = ctx.block_arg(arg);
  const sial::BlockSelector& sel = ctx.selector(arg);
  const int rank = sel.rank;
  std::array<int, blas::kMaxRank> counter{};
  auto data = block.data();
  std::array<long, blas::kMaxRank> coords{};
  for (std::size_t n = 0; n < data.size(); ++n) {
    for (int d = 0; d < rank; ++d) {
      coords[static_cast<std::size_t>(d)] =
          sel.first_element[static_cast<std::size_t>(d)] +
          counter[static_cast<std::size_t>(d)];
    }
    fn(data[n], std::span<const long>(coords.data(),
                                      static_cast<std::size_t>(rank)));
    for (int d = rank - 1; d >= 0; --d) {
      const std::size_t ud = static_cast<std::size_t>(d);
      if (++counter[ud] < sel.extents[ud]) break;
      counter[ud] = 0;
    }
  }
}

void builtin_fill_value(SuperInstructionContext& ctx) {
  blas::fill(ctx.block_arg(0).data(), ctx.number_arg(1));
}

void builtin_fill_coords(SuperInstructionContext& ctx) {
  for_each_element(ctx, 0, [](double& value, std::span<const long> coords) {
    double code = 0.0;
    for (const long c : coords) code = code * 100.0 + static_cast<double>(c);
    value = code;
  });
}

void builtin_random_block(SuperInstructionContext& ctx) {
  const auto seed = static_cast<std::uint64_t>(ctx.number_arg(1));
  for_each_element(ctx, 0,
                   [seed](double& value, std::span<const long> coords) {
                     std::uint64_t key = seed;
                     for (const long c : coords) {
                       key = hash_combine(key, static_cast<std::uint64_t>(c));
                     }
                     value = 2.0 * unit_double(key) - 1.0;
                   });
}

void builtin_fill_decay(SuperInstructionContext& ctx) {
  // Deterministic pseudo-random fill with banded block-norm decay:
  // element = random(coords) * exp(-rate * |c0 - c_mid|), where c_mid is
  // the coordinate of dimension rank/2. Off-band blocks fall off
  // exponentially in norm, which is the block-sparsity structure of
  // screened-Fock / local-correlation workloads: screening with any
  // threshold keeps a diagonal band and drops the rest.
  const double rate = ctx.number_arg(1);
  const auto seed = static_cast<std::uint64_t>(ctx.number_arg(2));
  const std::size_t mid =
      static_cast<std::size_t>(ctx.selector(0).rank) / 2;
  for_each_element(
      ctx, 0, [rate, seed, mid](double& value, std::span<const long> coords) {
        std::uint64_t key = seed;
        for (const long c : coords) {
          key = hash_combine(key, static_cast<std::uint64_t>(c));
        }
        // Rank 1 has no second band coordinate; decay from the range
        // start instead so 1-D sparse arrays still screen.
        const long band = mid == 0 ? coords[0] - 1 : coords[0] - coords[mid];
        const double off = static_cast<double>(band < 0 ? -band : band);
        value = (2.0 * unit_double(key) - 1.0) * std::exp(-rate * off);
      });
}

void builtin_block_nrm2(SuperInstructionContext& ctx) {
  ctx.scalar_arg(1) = blas::nrm2(ctx.block_arg(0).data());
}

void builtin_block_asum(SuperInstructionContext& ctx) {
  ctx.scalar_arg(1) = blas::asum(ctx.block_arg(0).data());
}

void builtin_block_max_abs(SuperInstructionContext& ctx) {
  ctx.scalar_arg(1) = blas::max_abs(ctx.block_arg(0).data());
}

void builtin_print_block_norm(SuperInstructionContext& ctx) {
  std::printf("[sial] block norm = %.12g\n",
              blas::nrm2(ctx.block_arg(0).data()));
  std::fflush(stdout);
}

}  // namespace

void register_builtin_superinstructions() {
  static std::once_flag once;
  std::call_once(once, [] {
    auto& registry = SuperInstructionRegistry::global();
    registry.register_instruction("fill_value", builtin_fill_value);
    registry.register_instruction("fill_coords", builtin_fill_coords);
    registry.register_instruction("random_block", builtin_random_block);
    registry.register_instruction("fill_decay", builtin_fill_decay);
    registry.register_instruction("block_nrm2", builtin_block_nrm2);
    registry.register_instruction("block_asum", builtin_block_asum);
    registry.register_instruction("block_max_abs", builtin_block_max_abs);
    registry.register_instruction("print_block_norm",
                                  builtin_print_block_norm);
  });
}

}  // namespace sia::sip
