#include "sip/superinstr.hpp"

#include <algorithm>
#include <cstdio>

#include "blas/elementwise.hpp"
#include "blas/gemm.hpp"
#include "blas/permute.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"

namespace sia::sip {
namespace {

// Positions of `ids` (by value) inside `other`; -1 when absent.
int find_id(std::span<const int> ids, int id) {
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (ids[i] == id) return static_cast<int>(i);
  }
  return -1;
}

std::size_t product(std::span<const int> dims) {
  std::size_t total = 1;
  for (int d : dims) total *= static_cast<std::size_t>(d);
  return total;
}

}  // namespace

void block_contract(Block& dst, std::span<const int> dst_ids, const Block& a,
                    std::span<const int> a_ids, const Block& b,
                    std::span<const int> b_ids, bool accumulate) {
  const int a_rank = a.shape().rank();
  const int b_rank = b.shape().rank();

  // Partition a's axes into free and contracted (order preserved).
  std::vector<int> a_free, a_common;  // axis positions in a
  for (int d = 0; d < a_rank; ++d) {
    if (find_id(b_ids, a_ids[static_cast<std::size_t>(d)]) >= 0) {
      a_common.push_back(d);
    } else {
      a_free.push_back(d);
    }
  }
  // b's axes: common first in a's common order, then free.
  std::vector<int> b_common, b_free;
  for (const int a_axis : a_common) {
    const int b_axis =
        find_id(b_ids, a_ids[static_cast<std::size_t>(a_axis)]);
    SIA_CHECK(b_axis >= 0, "contract: common id vanished");
    b_common.push_back(b_axis);
  }
  for (int d = 0; d < b_rank; ++d) {
    if (find_id(a_ids, b_ids[static_cast<std::size_t>(d)]) < 0) {
      b_free.push_back(d);
    }
  }

  // Validate extents along contracted ids.
  for (std::size_t c = 0; c < a_common.size(); ++c) {
    if (a.shape().extent(a_common[c]) != b.shape().extent(b_common[c])) {
      throw RuntimeError("contraction extent mismatch along a shared index");
    }
  }

  // Permute a -> [free..., common...], b -> [common..., free...].
  std::vector<int> a_perm(a_free.begin(), a_free.end());
  a_perm.insert(a_perm.end(), a_common.begin(), a_common.end());
  std::vector<int> b_perm(b_common.begin(), b_common.end());
  b_perm.insert(b_perm.end(), b_free.begin(), b_free.end());

  const std::vector<int> a_dims(a.shape().extents().begin(),
                                a.shape().extents().end());
  const std::vector<int> b_dims(b.shape().extents().begin(),
                                b.shape().extents().end());

  std::vector<int> m_dims, n_dims, k_dims;
  for (const int axis : a_free) m_dims.push_back(a_dims[static_cast<std::size_t>(axis)]);
  for (const int axis : a_common) k_dims.push_back(a_dims[static_cast<std::size_t>(axis)]);
  for (const int axis : b_free) n_dims.push_back(b_dims[static_cast<std::size_t>(axis)]);
  const std::size_t m = product(m_dims);
  const std::size_t k = product(k_dims);
  const std::size_t n = product(n_dims);

  thread_local std::vector<double> a_buf, b_buf, c_buf;

  const double* a_ptr = a.data().data();
  if (!(a_perm.size() <= 1 || std::is_sorted(a_perm.begin(), a_perm.end()))) {
    a_buf.resize(m * k);
    blas::permute(a.data().data(), a_dims, a_perm, a_buf.data());
    a_ptr = a_buf.data();
  }
  const double* b_ptr = b.data().data();
  if (!(b_perm.size() <= 1 || std::is_sorted(b_perm.begin(), b_perm.end()))) {
    b_buf.resize(k * n);
    blas::permute(b.data().data(), b_dims, b_perm, b_buf.data());
    b_ptr = b_buf.data();
  }

  // Result ids in [a_free..., b_free...] order.
  std::vector<int> result_ids;
  for (const int axis : a_free) {
    result_ids.push_back(a_ids[static_cast<std::size_t>(axis)]);
  }
  for (const int axis : b_free) {
    result_ids.push_back(b_ids[static_cast<std::size_t>(axis)]);
  }
  SIA_CHECK(result_ids.size() == dst_ids.size(),
            "contract: destination rank mismatch");

  // Final permutation: dst axis d comes from result axis position of
  // dst_ids[d].
  std::vector<int> final_perm(dst_ids.size());
  bool identity = true;
  for (std::size_t d = 0; d < dst_ids.size(); ++d) {
    const int pos = find_id(result_ids, dst_ids[d]);
    if (pos < 0) {
      throw RuntimeError("contraction destination index not produced");
    }
    final_perm[d] = pos;
    if (pos != static_cast<int>(d)) identity = false;
  }

  if (identity) {
    blas::dgemm(m, n, k, 1.0, a_ptr, k, b_ptr, n, accumulate ? 1.0 : 0.0,
                dst.data().data(), n);
    return;
  }

  c_buf.resize(m * n);
  blas::dgemm(m, n, k, 1.0, a_ptr, k, b_ptr, n, 0.0, c_buf.data(), n);

  std::vector<int> result_dims;
  result_dims.insert(result_dims.end(), m_dims.begin(), m_dims.end());
  result_dims.insert(result_dims.end(), n_dims.begin(), n_dims.end());
  if (accumulate) {
    blas::permute_acc(c_buf.data(), result_dims, final_perm,
                      dst.data().data());
  } else {
    blas::permute(c_buf.data(), result_dims, final_perm, dst.data().data());
  }
}

double block_dot(const Block& a, std::span<const int> a_ids, const Block& b,
                 std::span<const int> b_ids) {
  SIA_CHECK(a_ids.size() == b_ids.size(), "block_dot: rank mismatch");
  // Permute b into a's id order if necessary.
  std::vector<int> perm(a_ids.size());
  bool identity = true;
  for (std::size_t d = 0; d < a_ids.size(); ++d) {
    const int pos = find_id(b_ids, a_ids[d]);
    if (pos < 0) throw RuntimeError("block_dot: mismatched index sets");
    perm[d] = pos;
    if (pos != static_cast<int>(d)) identity = false;
  }
  if (identity) {
    if (a.size() != b.size()) {
      throw RuntimeError("block_dot: extent mismatch");
    }
    return blas::dot(a.data(), b.data());
  }
  const std::vector<int> b_dims(b.shape().extents().begin(),
                                b.shape().extents().end());
  thread_local std::vector<double> buf;
  buf.resize(b.size());
  blas::permute(b.data().data(), b_dims, perm, buf.data());
  if (a.size() != buf.size()) {
    throw RuntimeError("block_dot: extent mismatch");
  }
  return blas::dot(a.data(), {buf.data(), buf.size()});
}

namespace {

// Permutation taking src into dst's id order: perm[d] = src axis of
// dst_ids[d].
std::vector<int> perm_to_dst(std::span<const int> dst_ids,
                             std::span<const int> src_ids) {
  SIA_CHECK(dst_ids.size() == src_ids.size(), "permute: rank mismatch");
  std::vector<int> perm(dst_ids.size());
  for (std::size_t d = 0; d < dst_ids.size(); ++d) {
    const int pos = find_id(src_ids, dst_ids[d]);
    if (pos < 0) {
      throw RuntimeError("block assignment: operand index sets differ");
    }
    perm[d] = pos;
  }
  return perm;
}

}  // namespace

void block_copy_permute(Block& dst, std::span<const int> dst_ids,
                        const Block& src, std::span<const int> src_ids,
                        CopyMode mode) {
  const std::vector<int> perm = perm_to_dst(dst_ids, src_ids);
  const std::vector<int> src_dims(src.shape().extents().begin(),
                                  src.shape().extents().end());
  SIA_CHECK(dst.size() == src.size(), "block copy: size mismatch");
  switch (mode) {
    case CopyMode::kAssign:
      blas::permute(src.data().data(), src_dims, perm, dst.data().data());
      return;
    case CopyMode::kAccumulate:
      blas::permute_acc(src.data().data(), src_dims, perm,
                        dst.data().data());
      return;
    case CopyMode::kSubtract: {
      thread_local std::vector<double> buf;
      buf.resize(src.size());
      blas::permute(src.data().data(), src_dims, perm, buf.data());
      blas::axpy(-1.0, {buf.data(), buf.size()}, dst.data());
      return;
    }
  }
}

void block_add(Block& dst, std::span<const int> dst_ids, const Block& a,
               std::span<const int> a_ids, const Block& b,
               std::span<const int> b_ids, bool subtract, bool accumulate) {
  // dst (op)= perm(a) +/- perm(b).
  if (!accumulate) {
    block_copy_permute(dst, dst_ids, a, a_ids, CopyMode::kAssign);
  } else {
    block_copy_permute(dst, dst_ids, a, a_ids, CopyMode::kAccumulate);
  }
  block_copy_permute(dst, dst_ids, b, b_ids,
                     subtract ? CopyMode::kSubtract : CopyMode::kAccumulate);
}

// ---------------------------------------------------------------------
// Context and registry.

const ExecArgValue& SuperInstructionContext::arg(int i) const {
  if (i < 0 || i >= num_args()) {
    throw RuntimeError("super instruction argument index out of range");
  }
  return args_[static_cast<std::size_t>(i)];
}

ExecArgValue& SuperInstructionContext::arg(int i) {
  if (i < 0 || i >= num_args()) {
    throw RuntimeError("super instruction argument index out of range");
  }
  return args_[static_cast<std::size_t>(i)];
}

Block& SuperInstructionContext::block_arg(int i) {
  ExecArgValue& value = arg(i);
  if (value.kind != sial::ExecOperand::Kind::kBlock || !value.block) {
    throw RuntimeError("super instruction argument is not a block");
  }
  return *value.block;
}

const sial::BlockSelector& SuperInstructionContext::selector(int i) const {
  const ExecArgValue& value = arg(i);
  if (value.kind != sial::ExecOperand::Kind::kBlock) {
    throw RuntimeError("super instruction argument is not a block");
  }
  return value.selector;
}

double& SuperInstructionContext::scalar_arg(int i) {
  ExecArgValue& value = arg(i);
  if (value.kind != sial::ExecOperand::Kind::kScalar ||
      value.scalar == nullptr) {
    throw RuntimeError("super instruction argument is not a scalar");
  }
  return *value.scalar;
}

const std::string& SuperInstructionContext::string_arg(int i) const {
  const ExecArgValue& value = arg(i);
  if (value.kind != sial::ExecOperand::Kind::kString) {
    throw RuntimeError("super instruction argument is not a string");
  }
  return value.text;
}

double SuperInstructionContext::number_arg(int i) const {
  const ExecArgValue& value = arg(i);
  if (value.kind == sial::ExecOperand::Kind::kNumber) return value.number;
  if (value.kind == sial::ExecOperand::Kind::kScalar &&
      value.scalar != nullptr) {
    return *value.scalar;
  }
  throw RuntimeError("super instruction argument is not a number");
}

long SuperInstructionContext::first_element(int i, int d) const {
  const sial::BlockSelector& sel = selector(i);
  if (d < 0 || d >= sel.rank) {
    throw RuntimeError("first_element: dimension out of range");
  }
  return sel.first_element[static_cast<std::size_t>(d)];
}

SuperInstructionRegistry& SuperInstructionRegistry::global() {
  static SuperInstructionRegistry registry;
  return registry;
}

void SuperInstructionRegistry::register_instruction(const std::string& name,
                                                    SuperInstructionFn fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  table_[name] = std::move(fn);
}

const SuperInstructionFn* SuperInstructionRegistry::lookup(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = table_.find(name);
  return it == table_.end() ? nullptr : &it->second;
}

std::vector<std::string> SuperInstructionRegistry::names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(table_.size());
  for (const auto& [name, fn] : table_) names.push_back(name);
  return names;
}

// ---------------------------------------------------------------------
// Built-ins.

namespace {

// Iterates a block's elements together with their absolute coordinates.
template <typename Fn>
void for_each_element(SuperInstructionContext& ctx, int arg, Fn&& fn) {
  Block& block = ctx.block_arg(arg);
  const sial::BlockSelector& sel = ctx.selector(arg);
  const int rank = sel.rank;
  std::array<int, blas::kMaxRank> counter{};
  auto data = block.data();
  std::array<long, blas::kMaxRank> coords{};
  for (std::size_t n = 0; n < data.size(); ++n) {
    for (int d = 0; d < rank; ++d) {
      coords[static_cast<std::size_t>(d)] =
          sel.first_element[static_cast<std::size_t>(d)] +
          counter[static_cast<std::size_t>(d)];
    }
    fn(data[n], std::span<const long>(coords.data(),
                                      static_cast<std::size_t>(rank)));
    for (int d = rank - 1; d >= 0; --d) {
      const std::size_t ud = static_cast<std::size_t>(d);
      if (++counter[ud] < sel.extents[ud]) break;
      counter[ud] = 0;
    }
  }
}

void builtin_fill_value(SuperInstructionContext& ctx) {
  blas::fill(ctx.block_arg(0).data(), ctx.number_arg(1));
}

void builtin_fill_coords(SuperInstructionContext& ctx) {
  for_each_element(ctx, 0, [](double& value, std::span<const long> coords) {
    double code = 0.0;
    for (const long c : coords) code = code * 100.0 + static_cast<double>(c);
    value = code;
  });
}

void builtin_random_block(SuperInstructionContext& ctx) {
  const auto seed = static_cast<std::uint64_t>(ctx.number_arg(1));
  for_each_element(ctx, 0,
                   [seed](double& value, std::span<const long> coords) {
                     std::uint64_t key = seed;
                     for (const long c : coords) {
                       key = hash_combine(key, static_cast<std::uint64_t>(c));
                     }
                     value = 2.0 * unit_double(key) - 1.0;
                   });
}

void builtin_block_nrm2(SuperInstructionContext& ctx) {
  ctx.scalar_arg(1) = blas::nrm2(ctx.block_arg(0).data());
}

void builtin_block_asum(SuperInstructionContext& ctx) {
  ctx.scalar_arg(1) = blas::asum(ctx.block_arg(0).data());
}

void builtin_block_max_abs(SuperInstructionContext& ctx) {
  ctx.scalar_arg(1) = blas::max_abs(ctx.block_arg(0).data());
}

void builtin_print_block_norm(SuperInstructionContext& ctx) {
  std::printf("[sial] block norm = %.12g\n",
              blas::nrm2(ctx.block_arg(0).data()));
  std::fflush(stdout);
}

}  // namespace

void register_builtin_superinstructions() {
  static std::once_flag once;
  std::call_once(once, [] {
    auto& registry = SuperInstructionRegistry::global();
    registry.register_instruction("fill_value", builtin_fill_value);
    registry.register_instruction("fill_coords", builtin_fill_coords);
    registry.register_instruction("random_block", builtin_random_block);
    registry.register_instruction("block_nrm2", builtin_block_nrm2);
    registry.register_instruction("block_asum", builtin_block_asum);
    registry.register_instruction("block_max_abs", builtin_block_max_abs);
    registry.register_instruction("print_block_norm",
                                  builtin_print_block_norm);
  });
}

}  // namespace sia::sip
