// I/O server rank.
//
// "The I/O servers support the SIAL served arrays. ... Each I/O server
// contains a cache for served array blocks. Blocks arriving as a result of
// a prepare command are placed in the cache and lazily written to disk.
// ... Replacement is done using a LRU strategy. All operations of an I/O
// server are non-blocking ... Blocks are allocated in I/O server block
// pools or on a hard disk drive only when actually filled with data."
// (paper §V-B).
//
// Components:
//   * DiskStore — one slotted file per served array under the scratch
//     directory (slot = the array's maximal block size) plus a presence
//     byte map, so blocks survive both cache eviction and SIP runs;
//   * WriteBehind — a writer thread draining dirty evicted blocks to the
//     DiskStore; lookups intercept blocks still in the queue;
//   * IoServer — the rank main loop: prepare/request handling with
//     conflict detection, LRU cache with dirty write-behind, barrier
//     flush, shutdown.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include <functional>

#include "block/block.hpp"
#include "block/block_cache.hpp"
#include "block/block_id.hpp"
#include "msg/message.hpp"
#include "sip/shared.hpp"

namespace sia::sip {

// Generator for server-side computed served arrays: fills `block`, whose
// element (i0,...,i_{r-1}) has absolute 1-based coordinates
// first_element[d] + i_d along dimension d.
using ServerComputeFn = std::function<void(
    Block& block, std::span<const long> first_element)>;

// Process-global registry of server-side generators, referenced from
// SipConfig::computed_served by name.
class ServerComputeRegistry {
 public:
  static ServerComputeRegistry& global();
  void register_generator(const std::string& name, ServerComputeFn fn);
  const ServerComputeFn* lookup(const std::string& name) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, ServerComputeFn> table_;
};

// Slotted block file for one served array. Thread safe (pread/pwrite).
class DiskStore {
 public:
  // Creates/opens `<dir>/<array_name>.srv` (+ `.map`) with the given slot
  // capacity in doubles and block count.
  DiskStore(const std::string& dir, const std::string& array_name,
            std::size_t slot_doubles, std::int64_t num_blocks);
  ~DiskStore();
  DiskStore(const DiskStore&) = delete;
  DiskStore& operator=(const DiskStore&) = delete;

  bool has(std::int64_t linear) const;
  // Reads `count` doubles of block `linear` into `out`. Throws if absent.
  void read(std::int64_t linear, double* out, std::size_t count) const;
  void write(std::int64_t linear, const double* data, std::size_t count);

  std::int64_t blocks_written() const { return blocks_written_; }

 private:
  int fd_ = -1;
  int map_fd_ = -1;
  std::size_t slot_doubles_;
  std::vector<char> present_;  // in-memory presence map
  std::int64_t blocks_written_ = 0;
  mutable std::mutex mutex_;
};

// Background writer draining dirty blocks to their DiskStores.
class WriteBehind {
 public:
  WriteBehind();
  ~WriteBehind();

  using Key = std::pair<int, std::int64_t>;  // (array_id, linear)

  void enqueue(DiskStore* store, int array_id, std::int64_t linear,
               BlockPtr block);
  // Block still waiting to be written, if any.
  BlockPtr lookup(int array_id, std::int64_t linear) const;
  // Blocks until the queue is empty and the in-flight write finished.
  void drain();
  std::int64_t writes() const;

 private:
  void run();

  struct Item {
    DiskStore* store;
    Key key;
    BlockPtr block;
  };

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Item> queue_;
  std::map<Key, BlockPtr> pending_;
  bool in_flight_ = false;
  bool stop_ = false;
  std::int64_t writes_ = 0;
  std::thread thread_;
};

class IoServer {
 public:
  struct Stats {
    std::int64_t prepares = 0;
    std::int64_t requests = 0;
    std::int64_t disk_reads = 0;
    std::int64_t cache_hits = 0;
    std::int64_t computed = 0;  // blocks generated on demand (§V-B)
    std::int64_t cow_copies = 0;  // copy-on-write before accumulate
  };

  IoServer(SipShared& shared, int my_rank);

  // Rank main loop; returns after kShutdown (or abort).
  void run();

  const Stats& stats() const { return stats_; }

 private:
  // Mutable reference: prepare adopts the message's block payload.
  void handle_prepare(msg::Message& message, bool accumulate);
  void handle_request(const msg::Message& message);
  void handle_barrier(const msg::Message& message);
  void flush();

  DiskStore& store_for(int array_id);
  BlockPtr load_block(const BlockId& id, bool* found);
  BlockShape shape_of(const BlockId& id) const;
  // Generator for a computed served array (nullptr if the array is a
  // plain stored one). Resolved lazily from the config.
  const ServerComputeFn* generator_for(int array_id);

  struct WriteRecord {
    std::int64_t epoch = -1;
    int writer = -1;
    bool accumulate = false;
  };

  struct GeneratorSlot {
    bool resolved = false;
    const ServerComputeFn* fn = nullptr;
  };

  SipShared& shared_;
  int my_rank_;
  BlockCache cache_;
  WriteBehind write_behind_;
  std::unordered_map<int, std::unique_ptr<DiskStore>> stores_;
  std::unordered_map<int, GeneratorSlot> generators_;
  std::unordered_map<BlockId, WriteRecord, BlockIdHash> write_records_;
  std::int64_t epoch_ = 0;
  Stats stats_;
};

}  // namespace sia::sip
