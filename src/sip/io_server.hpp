// I/O server rank.
//
// "The I/O servers support the SIAL served arrays. ... Each I/O server
// contains a cache for served array blocks. Blocks arriving as a result of
// a prepare command are placed in the cache and lazily written to disk.
// ... Replacement is done using a LRU strategy. All operations of an I/O
// server are non-blocking ... Blocks are allocated in I/O server block
// pools or on a hard disk drive only when actually filled with data."
// (paper §V-B).
//
// Components:
//   * DiskStore — one slotted file per served array under the scratch
//     directory (slot = the array's maximal block size) plus a presence
//     byte map, so blocks survive both cache eviction and SIP runs.
//     Presence-map updates can be deferred in memory and flushed in one
//     pwrite per batch/barrier instead of one per block;
//   * WriteBehind — writer lanes draining dirty evicted blocks to their
//     DiskStores in per-array batches sorted by linear id; lookups
//     intercept blocks still in the queue;
//   * DiskPool — the read-side thread pool: cache-miss requests become
//     jobs here so the message loop keeps servicing hits and prepares
//     while reads are in flight. Demand reads take priority over
//     look-ahead (read-ahead) jobs;
//   * IoServer — the rank main loop: prepare/request handling with
//     conflict detection, LRU cache with dirty write-behind, an in-flight
//     read table coalescing duplicate requests, barrier flush, shutdown.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include <functional>

#include "block/block.hpp"
#include "block/block_cache.hpp"
#include "block/block_id.hpp"
#include "msg/chaos.hpp"
#include "msg/message.hpp"
#include "msg/reliable.hpp"
#include "sip/shared.hpp"

namespace sia::sip {

// Generator for server-side computed served arrays: fills `block`, whose
// element (i0,...,i_{r-1}) has absolute 1-based coordinates
// first_element[d] + i_d along dimension d.
using ServerComputeFn = std::function<void(
    Block& block, std::span<const long> first_element)>;

// Process-global registry of server-side generators, referenced from
// SipConfig::computed_served by name.
class ServerComputeRegistry {
 public:
  static ServerComputeRegistry& global();
  void register_generator(const std::string& name, ServerComputeFn fn);
  const ServerComputeFn* lookup(const std::string& name) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, ServerComputeFn> table_;
};

// Slotted block file for one served array. Thread safe (pread/pwrite);
// callers serialize writes to the same slot.
class DiskStore {
 public:
  // Creates/opens `<dir>/<array_name>.srv` (+ `.map`) with the given slot
  // capacity in doubles and block count. With `cold_io` the store keeps
  // its data file out of the OS page cache (fdatasync + fadvise DONTNEED
  // per batch/read) — see SipConfig::server_cold_io. `injector`, when
  // non-null, may fail any tracked read/write with an injected disk
  // fault (chaos testing).
  DiskStore(const std::string& dir, const std::string& array_name,
            std::size_t slot_doubles, std::int64_t num_blocks,
            bool cold_io = false,
            msg::DiskFaultInjector* injector = nullptr);
  // Flushes any deferred presence-map updates.
  ~DiskStore();
  DiskStore(const DiskStore&) = delete;
  DiskStore& operator=(const DiskStore&) = delete;

  bool has(std::int64_t linear) const;
  // True if the block is recorded as screened (present, but all content
  // below the screening threshold — no bytes in the data file).
  bool is_screened(std::int64_t linear) const;
  // Marks the block present-but-screened in the presence map (byte 2)
  // without touching the data file. flush_map() persists the byte, so a
  // screened block is never "durable by absence": the respawned server
  // can tell it apart from a block that was never prepared.
  void record_screened(std::int64_t linear);
  // Reads `count` doubles of block `linear` into `out`. Throws if absent.
  // A screened block reads as zeros without touching the data file.
  void read(std::int64_t linear, double* out, std::size_t count) const;
  // Writes block data and immediately persists the presence-map byte
  // (write_deferred + flush_map).
  void write(std::int64_t linear, const double* data, std::size_t count);
  // Writes block data and marks presence only in memory; flush_map()
  // persists the dirty map range in one pwrite. Batching presence updates
  // is what keeps write-behind from issuing one 1-byte pwrite per block.
  void write_deferred(std::int64_t linear, const double* data,
                      std::size_t count);
  void flush_map();
  // Batch epilogue: under cold I/O, persist outstanding data-file writes
  // and evict their pages (fdatasync + fadvise DONTNEED). No-op otherwise.
  void after_batch();
  // Drops every block: clears the presence map in memory and on disk.
  void erase_all();

  std::int64_t blocks_written() const;
  std::int64_t map_flushes() const;
  // Presence-map census: blocks recorded screened / recorded at all.
  std::int64_t screened_count() const;
  std::int64_t present_count() const;

  // Crash simulation: the server rank "died", so the destructor must not
  // flush the in-memory presence map over the on-disk one — the on-disk
  // state at the moment of death is what the respawned incarnation
  // rebuilds from.
  void abandon();

 private:
  int fd_ = -1;
  int map_fd_ = -1;
  bool cold_io_ = false;
  bool abandoned_ = false;
  std::string array_name_;
  msg::DiskFaultInjector* injector_ = nullptr;
  std::size_t slot_doubles_;
  std::vector<char> present_;  // in-memory presence map
  std::int64_t blocks_written_ = 0;
  std::int64_t map_flushes_ = 0;
  // Dirty presence range not yet on disk; -1 lo means clean.
  std::int64_t map_dirty_lo_ = -1;
  std::int64_t map_dirty_hi_ = -1;
  mutable std::mutex mutex_;
};

// Background writer lanes draining dirty blocks to their DiskStores in
// per-array batches, sorted by linear id for sequential locality. Two
// versions of the same block keep their enqueue order (a key being
// written blocks other lanes from picking up its successor).
class WriteBehind {
 public:
  using Key = std::pair<int, std::int64_t>;  // (array_id, linear)
  // (sender rank, sequence number) pairs owed a durability ack once the
  // carrying block is retired to disk.
  using AckList = std::vector<std::pair<int, std::uint64_t>>;
  // Called (off the caller's thread) with the first disk failure seen by
  // any lane, e.g. to abort the run promptly. drain() also rethrows it.
  using ErrorHandler = std::function<void(const std::string&)>;
  // Called (on a lane thread) after a batch is durably on disk with the
  // concatenated AckLists of its items: the I/O server journals and sends
  // the prepare durability acks from here.
  using RetireHandler = std::function<void(const AckList&)>;

  // `batched == false` reproduces the legacy retirement policy (the
  // pre-pipeline engine): one block and one presence-map pwrite per
  // write. It is selected when server_disk_threads == 0 so the serial
  // configuration stays an honest baseline for the pipelined one.
  explicit WriteBehind(int lanes = 1, bool batched = true,
                       ErrorHandler on_error = nullptr,
                       RetireHandler on_retire = nullptr);
  ~WriteBehind();

  void enqueue(DiskStore* store, int array_id, std::int64_t linear,
               BlockPtr block, AckList acks = {});

  // Crash simulation: drop the queue (and queued acks) without writing.
  // In-flight batches on other lanes still complete — a real crash can
  // also land mid-write — but nothing new starts.
  void abandon();
  // Block still waiting to be written, if any.
  BlockPtr lookup(int array_id, std::int64_t linear) const;
  // Drops every queued write of `array_id` and waits until none of its
  // blocks is mid-write, so a deleted array cannot be resurrected on disk
  // by a late queued write. Returns the dropped items' ack lists: the
  // delete supersedes those prepares, so the server acks them directly.
  AckList cancel_array(int array_id);
  // Blocks until the queue is empty and all in-flight writes finished.
  // Throws RuntimeError if any lane hit a disk error (short write, full
  // filesystem): an exception escaping a lane thread would terminate the
  // process, so lanes record the failure here instead.
  void drain();
  std::int64_t writes() const;
  std::int64_t batches() const;

  // Test hooks: freeze/unfreeze the lanes to make queue-state assertions
  // deterministic.
  void pause();
  void resume();

 private:
  void run();
  bool has_runnable_item() const;

  struct Item {
    DiskStore* store;
    Key key;
    BlockPtr block;
    AckList acks;
  };

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Item> queue_;
  std::map<Key, BlockPtr> pending_;
  std::vector<Key> in_flight_keys_;
  std::size_t max_batch_;
  ErrorHandler on_error_;
  RetireHandler on_retire_;
  std::string error_;  // first disk failure from any lane
  bool paused_ = false;
  bool stop_ = false;
  std::int64_t writes_ = 0;
  std::int64_t batches_ = 0;
  std::vector<std::thread> threads_;
};

// Priority thread pool for disk reads and on-demand block generation.
// Demand jobs (high) always run before read-ahead jobs (low); promote()
// upgrades a still-queued read-ahead job when a demand request coalesces
// onto it.
class DiskPool {
 public:
  using Key = std::pair<int, std::int64_t>;  // (array_id, linear)
  using Job = std::function<void()>;

  explicit DiskPool(int threads);
  ~DiskPool();

  int threads() const { return static_cast<int>(threads_.size()); }
  void submit(const Key& key, Job job, bool low_priority);
  void promote(const Key& key);
  // Blocks until both queues are empty and no job is running.
  void drain();

 private:
  void run();

  struct Entry {
    Key key;
    Job job;
  };

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<Entry> high_;
  std::deque<Entry> low_;
  int running_ = 0;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

class IoServer {
 public:
  struct Stats {
    std::int64_t prepares = 0;
    std::int64_t requests = 0;            // demand requests
    std::int64_t lookahead_requests = 0;  // flagged look-ahead requests
    std::int64_t disk_reads = 0;
    std::int64_t disk_writes = 0;         // write-behind retirements
    std::int64_t cache_hits = 0;
    std::int64_t reads_coalesced = 0;  // duplicate in-flight requests merged
    std::int64_t write_batches = 0;
    std::int64_t map_flushes = 0;
    std::int64_t computed = 0;  // blocks generated on demand (§V-B)
    std::int64_t cow_copies = 0;  // copy-on-write before accumulate
    // Retransmitted prepares dropped by the per-peer dedup window
    // (exactly-once apply under the reliable protocol).
    std::int64_t dup_msgs_dropped = 0;
    // Norm-based screening (sparse arrays, sparse_threshold > 0).
    std::int64_t prepares_screened = 0;   // marker prepares (no payload)
    std::int64_t requests_screened = 0;   // answered with a norm-only reply
    std::int64_t evictions_screened = 0;  // dirty victims re-screened
  };

  IoServer(SipShared& shared, int my_rank);
  ~IoServer();

  // Rank main loop; returns after kShutdown (or abort).
  void run();

  // Counters merged from the message loop, the disk pool, the write-behind
  // lanes, and the disk stores. Safe to call once run() returned.
  Stats stats() const;

  // Presence-map census per array: array_id -> (screened blocks, blocks
  // recorded present at all). Safe to call once run() returned.
  std::unordered_map<int, std::pair<std::int64_t, std::int64_t>> presence()
      const;

 private:
  // Mutable reference: prepare adopts the message's block payload.
  void handle_prepare(msg::Message& message, bool accumulate);
  void handle_request(const msg::Message& message);
  void handle_delete(const msg::Message& message);
  void handle_barrier(const msg::Message& message);
  void flush();

  // Reliable-protocol plumbing (active iff fault tolerance is enabled).
  // Routes an admitted data-plane message to its handler.
  void dispatch_data(msg::Message& message);
  // Feeds a prepare through the per-peer sequencer (exactly-once,
  // in-order) before dispatch; re-acks duplicates already durable.
  void admit_prepare(msg::Message& message);
  // Journal + send the durability acks for retired prepares. Runs on
  // write-behind lane threads and on the server thread (flush paths).
  void ack_durable(const WriteBehind::AckList& acks);
  // Pull the pending (not yet durable) acks attached to a block.
  WriteBehind::AckList take_pending_acks(int array_id, std::int64_t linear);
  void send_ack(int dst, std::uint64_t seq);
  // Simulated crash: drop dirty state without letting destructors flush
  // it over the durable image the respawned incarnation rebuilds from.
  void crash_abandon();
  void load_ack_journal();

  DiskStore& store_for(int array_id);
  BlockPtr load_block(const BlockId& id, bool* found);
  BlockShape shape_of(const BlockId& id) const;
  // Generator for a computed served array (nullptr if the array is a
  // plain stored one). Resolved lazily from the config.
  const ServerComputeFn* generator_for(int array_id);

  // `lookahead` is echoed in the reply header so the client can tell
  // which of its requests (speculative or demand) is being answered.
  // `ack` echoes the request's sequence number (the reply is the ack
  // under the reliable protocol; 0 when the protocol is off).
  void send_reply(int reply_rank, int array_id, std::int64_t linear,
                  BlockPtr block, bool lookahead, std::uint64_t ack);
  void send_miss_reply(int reply_rank, int array_id, std::int64_t linear,
                       std::uint64_t ack);
  // Norm-only reply for a screened (or sparse-and-absent) block: the
  // client adopts the canonical zero block instead of moving a payload.
  void send_screened_reply(int reply_rank, int array_id,
                           std::int64_t linear, bool lookahead,
                           std::uint64_t ack);
  bool screenable(int array_id) const;
  // Applies a header-only screened replace prepare (no block payload):
  // records the block in the presence map instead of storing data.
  // Conflict detection and version bookkeeping happen in handle_prepare
  // before this is called.
  void apply_screened_prepare(msg::Message& message, const BlockId& id,
                              std::int64_t linear);
  // Runs on a DiskPool thread: read (or generate) the block, reply to
  // every waiter, queue a completion for the cache warm. `version` is the
  // prepare version observed when the job was submitted; a completion
  // whose version is stale (a prepare landed while the read was in
  // flight) must not be installed over the newer data.
  void read_job(BlockId id, DiskStore* store, std::int64_t linear,
                const ServerComputeFn* generate, BlockShape shape,
                std::array<long, blas::kMaxRank> first,
                std::string array_name, std::uint64_t version);
  // Main loop: absorb finished reads into the cache and the stats.
  void drain_completions();
  std::uint64_t version_of(const BlockId& id) const;

  struct WriteRecord {
    std::int64_t epoch = -1;
    int writer = -1;
    bool accumulate = false;
  };

  struct GeneratorSlot {
    bool resolved = false;
    const ServerComputeFn* fn = nullptr;
  };

  struct Waiter {
    int reply_rank = -1;
    bool lookahead = false;
    std::uint64_t req_seq = 0;  // echoed as the reply's ack
  };

  struct InflightRead {
    std::vector<Waiter> waiters;
    bool low_priority = false;  // still queued as read-ahead
  };

  struct Completion {
    BlockId id;
    BlockPtr block;  // null if the block does not exist (look-ahead miss)
    std::uint64_t version = 0;  // prepare version at job submission
    bool from_disk = false;
    bool computed = false;
  };

  SipShared& shared_;
  int my_rank_;
  // Destruction order matters: the disk pool and write-behind lanes are
  // joined before the stores they reference go away.
  std::unordered_map<int, std::unique_ptr<DiskStore>> stores_;
  BlockCache cache_;
  std::unordered_map<int, GeneratorSlot> generators_;
  std::unordered_map<BlockId, WriteRecord, BlockIdHash> write_records_;
  // Per-block prepare counter (server thread only; cleared per barrier).
  // Read completions are stamped with the version seen at submission and
  // dropped if a prepare bumped it meanwhile — otherwise a stale clean
  // disk image would silently replace the freshly prepared dirty block.
  std::unordered_map<BlockId, std::uint64_t, BlockIdHash> prepare_versions_;
  std::int64_t epoch_ = 0;
  Stats stats_;

  std::mutex inflight_mutex_;
  std::unordered_map<BlockId, InflightRead, BlockIdHash> inflight_;
  std::mutex completion_mutex_;
  std::deque<Completion> completions_;

  // ---- Fault tolerance (PR 4) ----
  bool ft_ = false;  // reliable protocol active for this launch
  msg::PeerSequencer sequencer_;
  // Prepares applied into the cache but not yet durable, keyed by block;
  // moved into the write-behind Item (or acked at flush) when the block
  // retires. Server thread only.
  std::map<WriteBehind::Key, WriteBehind::AckList> pending_acks_;
  // Durably applied + acked (journaled) prepare seqs, for re-acking
  // retransmits whose ack was lost. Shared with the lane threads.
  std::mutex acked_mutex_;
  std::set<std::pair<int, std::uint64_t>> acked_;
  int journal_fd_ = -1;  // append-only ack journal (crash recovery)

  WriteBehind write_behind_;
  std::unique_ptr<DiskPool> disk_pool_;  // null when server_disk_threads==0
};

}  // namespace sia::sip
