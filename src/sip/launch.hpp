// SIP launch: the public entry point of the runtime.
//
// A Sip object owns a scratch directory (served arrays and checkpoints
// persist there across runs, which is how chained SIAL programs pass data
// to each other, paper §IV-C) and runs compiled SIAL programs on a fresh
// fabric of master + worker + I/O-server ranks each time.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "common/config.hpp"
#include "msg/fabric.hpp"
#include "sial/bytecode.hpp"
#include "sip/master.hpp"
#include "sip/planner.hpp"
#include "sip/profiler.hpp"

namespace sia::sip {

// Aggregated statistics from one run.
struct RunResult {
  // Final scalar values (worker 0's copy; collectives synchronize them).
  std::map<std::string, double> scalars;
  ProfileReport profile;
  DryRunReport dry_run;
  msg::TrafficStats traffic;  // whole-fabric totals

  struct WorkerTotals {
    std::int64_t gets_issued = 0;
    std::int64_t gets_local = 0;
    std::int64_t gets_cached = 0;
    std::int64_t implicit_gets = 0;
    std::int64_t puts_remote = 0;
    std::int64_t puts_local = 0;
    // Write combining (config.coalesce_puts): accumulate-puts/prepares
    // merged into a shadow block instead of sent, and the messages that
    // eventually carried the merged blocks out.
    std::int64_t puts_coalesced = 0;
    std::int64_t prepares_coalesced = 0;
    std::int64_t coalesce_flushes = 0;
    std::int64_t cache_hits = 0;
    std::int64_t cache_misses = 0;
    std::int64_t cache_evictions = 0;
    std::int64_t pool_heap_fallbacks = 0;
    std::size_t peak_local_doubles = 0;  // max over workers
  } workers;

  double scalar(const std::string& name) const;
};

class Sip {
 public:
  // Creates the runtime. If config.scratch_dir is empty a fresh temp
  // directory is created and removed on destruction.
  explicit Sip(SipConfig config);
  ~Sip();
  Sip(const Sip&) = delete;
  Sip& operator=(const Sip&) = delete;

  // Compiles and runs SIAL source (front end errors throw CompileError).
  RunResult run_source(const std::string& source);
  // Runs an already compiled program.
  RunResult run(const sial::CompiledProgram& program);

  // Dry run only: resolve, analyze, and return the report without
  // executing (does not throw on infeasibility).
  DryRunReport analyze(const sial::CompiledProgram& program) const;

  // Runs the launch-time planner without executing: loads calibration,
  // measures the GEMM rate, sweeps the knobs through the DES model, and
  // returns the tuned configuration with its prediction record. This is
  // exactly the plan run(...) would apply with config.autotune set.
  PlanChoice plan(const sial::CompiledProgram& program) const;

  const SipConfig& config() const { return config_; }
  const std::string& scratch_dir() const { return scratch_dir_; }

 private:
  SipConfig config_;
  std::string scratch_dir_;
  bool owns_scratch_ = false;
  // SIAL source of the program currently in run_source(): spawn mode
  // ships it to child processes, which recompile it deterministically.
  std::string pending_source_;
};

}  // namespace sia::sip
