// Launch-time autotuning: the DES simulator becomes the planner.
//
// The paper calls the segment size "the most significant tuning factor"
// and §VIII promises a performance model; src/sim already implements that
// model but only regenerated figures. The planner closes the loop: at
// launch it derives a WorkloadModel from the compiled program's static
// block read/write sets, sweeps the runtime's tunable knobs through the
// discrete-event simulator in milliseconds, and applies the winning plan
// to the SipConfig before resolution. Knobs the user set explicitly are
// pinned and never overridden.
//
// After the run, predicted-vs-actual lands in the ProfileReport and the
// per-host calibration constants (measured GEMM rate, fabric bandwidth,
// disk bandwidth, a model-bias term) are persisted to a calibration file
// that seeds the next plan — the model self-corrects run over run.
#pragma once

#include <string>
#include <vector>

#include "common/config.hpp"
#include "sial/bytecode.hpp"
#include "sim/workload.hpp"

namespace sia::sip {

// Per-host measured constants feeding the machine model. Serialized as a
// small "key value" text file; a missing or corrupt file falls back to
// these defaults (cold calibration).
struct Calibration {
  double gemm_gflops = 8.0;       // sustained block-GEMM rate (measured)
  double latency_s = 2e-6;        // fabric point-to-point latency
  double link_bw = 4e9;           // fabric bandwidth, B/s
  double disk_bw = 200e6;         // per-I/O-server disk bandwidth, B/s
  double master_service_s = 3e-6; // serialized chunk-service time
  double kernel_knee = 6.0;       // GEMM efficiency half-point (segment)
  double execute_gflops = 2.0;    // superinstruction per-element rate
  double time_scale = 1.0;        // model bias: EWMA of actual/predicted
  int runs = 0;                   // planned runs folded in so far
  double last_error_percent = 0.0;

  std::string serialize() const;
  // Parses serialize() output; *ok is false (and defaults returned) on
  // malformed input. Unknown keys are ignored for forward compatibility.
  static Calibration parse(const std::string& text, bool* ok);
  // Missing/corrupt file -> defaults (never throws).
  static Calibration load(const std::string& path);
  bool save(const std::string& path) const;  // best effort
};

// Calibration file location: config.calibration_file, else the
// SIA_CALIBRATION environment variable, else ~/.cache/sia/calibration.
std::string calibration_path(const SipConfig& config);

// Measures the sustained GEMM rate with the real kernel (a few ms).
double measure_gemm_gflops();

// The host the plan is for. cores == 0 means hardware_concurrency; tests
// pass explicit values to model other machines (e.g. the 1-core case).
struct HostModel {
  int cores = 0;
  int resolved_cores() const;
};

// The planner's output: a tuned configuration plus the prediction record.
struct PlanChoice {
  SipConfig config;
  double predicted_seconds = 0.0;
  double baseline_seconds = 0.0;  // predicted serial-baseline time
  int candidates = 0;             // configurations evaluated
  bool calibrated = false;        // calibration had prior runs
  std::string summary;            // chosen knobs, "key=value ..." form
  std::vector<std::string> pinned;  // user-set knobs left untouched
};

// Predicted wall seconds for one candidate configuration against a
// workload already modeled at that configuration's segment size.
// Exposed for tests and the bench.
double predict_seconds(const sim::WorkloadModel& workload,
                       const SipConfig& candidate, const Calibration& cal,
                       const HostModel& host);

// The planner. `optimized` is the mid-end output (the same program the
// launch resolves); `base` is the user's configuration, whose fields that
// differ from a default-constructed SipConfig are treated as pinned.
// Pure function of its arguments — same inputs, same plan.
PlanChoice plan_launch(const sial::CompiledProgram& optimized,
                       const SipConfig& base, const Calibration& cal,
                       const HostModel& host);

// Post-run learning: folds predicted-vs-actual, the measured GEMM rate,
// and observed fabric/disk throughput back into the calibration.
// bytes_moved/messages come from TrafficStats, disk_bytes from the
// DiskStore counters; pass 0 for signals that did not occur.
void update_calibration(Calibration* cal, double predicted_seconds,
                        double actual_seconds, double measured_gflops,
                        double bytes_moved, std::int64_t messages,
                        double disk_bytes);

}  // namespace sia::sip
