#include "block/block_id.hpp"

#include "common/error.hpp"
#include "common/rng.hpp"

namespace sia {

BlockId::BlockId(int array, std::span<const int> segs) : array_id(array) {
  SIA_CHECK(segs.size() <= static_cast<std::size_t>(blas::kMaxRank),
            "BlockId: rank too large");
  rank = static_cast<int>(segs.size());
  for (std::size_t d = 0; d < segs.size(); ++d) segments[d] = segs[d];
}

std::int64_t BlockId::linearize(std::span<const int> num_segments) const {
  SIA_CHECK(static_cast<int>(num_segments.size()) == rank,
            "BlockId::linearize: rank mismatch");
  std::int64_t linear = 0;
  for (int d = 0; d < rank; ++d) {
    const std::size_t ud = static_cast<std::size_t>(d);
    SIA_CHECK(segments[ud] >= 1 && segments[ud] <= num_segments[ud],
              "BlockId::linearize: segment out of range");
    linear = linear * num_segments[ud] + (segments[ud] - 1);
  }
  return linear;
}

BlockId BlockId::from_linear(int array_id, std::int64_t linear,
                             std::span<const int> num_segments) {
  BlockId id;
  id.array_id = array_id;
  id.rank = static_cast<int>(num_segments.size());
  for (int d = id.rank - 1; d >= 0; --d) {
    const std::size_t ud = static_cast<std::size_t>(d);
    id.segments[ud] = static_cast<int>(linear % num_segments[ud]) + 1;
    linear /= num_segments[ud];
  }
  SIA_CHECK(linear == 0, "BlockId::from_linear: linear index out of range");
  return id;
}

std::uint64_t BlockId::hash() const {
  std::uint64_t h = splitmix64(static_cast<std::uint64_t>(array_id) + 1);
  for (int d = 0; d < rank; ++d) {
    h = hash_combine(h, static_cast<std::uint64_t>(
                            segments[static_cast<std::size_t>(d)]));
  }
  return h;
}

std::string BlockId::to_string() const {
  std::string out = "a" + std::to_string(array_id) + "(";
  for (int d = 0; d < rank; ++d) {
    if (d > 0) out += ",";
    out += std::to_string(segments[static_cast<std::size_t>(d)]);
  }
  out += ")";
  return out;
}

}  // namespace sia
