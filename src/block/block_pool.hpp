// Preallocated block memory pools.
//
// "The memory in each SIP worker is managed by dividing it into several
// stacks of preallocated blocks of memory of various sizes. The number of
// blocks of each size is determined from information obtained during the
// dry run analysis." (paper §V-B). BlockPool implements exactly that: a
// set of size classes, each a stack of fixed-size slots carved out of one
// arena. Allocation pops a slot from the smallest class that fits;
// release pushes it back. A configurable heap fallback (with a counter)
// lets non-dry-run callers keep running while making pool misses visible.
//
// The slot storage lives in a shared PoolCore: the owning BlockPool and
// every outstanding PoolBuffer hold a reference, so a buffer may outlive
// the BlockPool object that allocated it. The zero-copy message path
// relies on this — a block allocated from worker A's pool can sit in
// worker B's cache past the point where A's rank object is destroyed.
//
// Free lists are sharded per thread (home shard + steal) so the dataflow
// executor's pool threads and the interpreter thread allocate scratch
// concurrently without serializing on one mutex.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

namespace sia {

namespace detail {
class PoolCore;
}  // namespace detail

// Move-only handle to a pool slot (or a heap fallback allocation).
// Returns the memory on destruction. Keeps the backing arena alive.
class PoolBuffer {
 public:
  PoolBuffer() = default;
  ~PoolBuffer();
  PoolBuffer(PoolBuffer&& other) noexcept;
  PoolBuffer& operator=(PoolBuffer&& other) noexcept;
  PoolBuffer(const PoolBuffer&) = delete;
  PoolBuffer& operator=(const PoolBuffer&) = delete;

  double* data() const { return data_; }
  std::size_t capacity() const { return capacity_; }
  bool valid() const { return data_ != nullptr; }

 private:
  friend class BlockPool;
  friend class detail::PoolCore;
  PoolBuffer(std::shared_ptr<detail::PoolCore> core, double* data,
             std::size_t capacity, std::size_t size_class, bool heap)
      : core_(std::move(core)), data_(data), capacity_(capacity),
        size_class_(size_class), heap_(heap) {}

  void release();

  std::shared_ptr<detail::PoolCore> core_;
  double* data_ = nullptr;
  std::size_t capacity_ = 0;
  std::size_t size_class_ = 0;  // element capacity of the class
  bool heap_ = false;
};

class BlockPool {
 public:
  struct Stats {
    std::size_t pool_allocs = 0;
    std::size_t heap_fallbacks = 0;
    std::size_t in_use_doubles = 0;
    std::size_t peak_in_use_doubles = 0;
  };

  // `size_classes` maps slot capacity (doubles) -> number of slots. The
  // classes come from the master's dry run. If `allow_heap_fallback` is
  // false, exhausting a class (or requesting a size larger than any
  // class) throws RuntimeError — the strict mode the dry run guarantees
  // never triggers.
  BlockPool(std::map<std::size_t, std::size_t> size_classes,
            bool allow_heap_fallback);

  // Pool with no preallocated classes; everything falls back to the heap.
  // Used by tests and by contexts where no dry run ran.
  BlockPool();

  ~BlockPool();
  BlockPool(const BlockPool&) = delete;
  BlockPool& operator=(const BlockPool&) = delete;

  // Allocates at least `count` doubles. Thread safe.
  PoolBuffer allocate(std::size_t count);

  Stats stats() const;
  std::size_t total_pool_doubles() const;
  // Free slots remaining in the class that would serve `count`.
  std::size_t free_slots_for(std::size_t count) const;

 private:
  std::shared_ptr<detail::PoolCore> core_;
};

}  // namespace sia
