// Dense blocks ("super numbers").
//
// A block is the unit of data in the SIA: a small dense rank-N tensor cut
// from a large array by the segment grid. Super instructions consume and
// produce whole blocks (paper §III). Blocks are stored row-major (last
// index fastest) and carry their extents; storage comes from a BlockPool
// (pool slot or heap fallback).
#pragma once

#include <array>
#include <atomic>
#include <memory>
#include <span>
#include <string>

#include "blas/permute.hpp"
#include "block/block_pool.hpp"

namespace sia {

// Extents of one block along each dimension.
class BlockShape {
 public:
  BlockShape() = default;
  explicit BlockShape(std::span<const int> extents);

  int rank() const { return rank_; }
  int extent(int d) const { return extents_[static_cast<std::size_t>(d)]; }
  std::span<const int> extents() const {
    return {extents_.data(), static_cast<std::size_t>(rank_)};
  }
  std::size_t element_count() const;

  bool operator==(const BlockShape&) const = default;
  std::string to_string() const;

 private:
  int rank_ = 0;
  std::array<int, blas::kMaxRank> extents_{};
};

class Block {
 public:
  // Heap-backed block, zero-initialized.
  explicit Block(const BlockShape& shape);
  // Pool-backed block; buffer capacity must cover the shape. Contents are
  // zeroed (pool slots are recycled and carry stale data).
  Block(const BlockShape& shape, PoolBuffer buffer);

  Block(Block&& other) noexcept;
  Block& operator=(Block&& other) noexcept;
  Block(const Block&) = delete;
  Block& operator=(const Block&) = delete;

  const BlockShape& shape() const { return shape_; }
  std::size_t size() const { return shape_.element_count(); }

  std::span<double> data() {
    invalidate_norm();
    return {buffer_.data(), shape_.element_count()};
  }
  std::span<const double> data() const {
    return {buffer_.data(), shape_.element_count()};
  }

  // Element access by multi-index (0-based within the block); used by
  // tests, the integral generator, and subblock slicing.
  double& at(std::span<const int> index);
  double at(std::span<const int> index) const;

  // Cached Frobenius norm. Computed lazily on first use after a mutation
  // and remembered until the next mutable access; concurrent readers may
  // race to fill the cache but compute the same value (the runtime's
  // hazard tracking never lets readers overlap a writer). A freshly
  // constructed block is all zeros, so its norm starts valid at 0.
  double norm() const;
  void invalidate_norm() {
    norm_valid_.store(false, std::memory_order_relaxed);
  }

  // Deep copy into a new heap-backed block.
  Block clone() const;

 private:
  std::size_t offset_of(std::span<const int> index) const;

  BlockShape shape_;
  PoolBuffer buffer_;
  mutable std::atomic<double> norm_{0.0};
  mutable std::atomic<bool> norm_valid_{true};
};

using BlockPtr = std::shared_ptr<Block>;

// Canonical all-zero block of the given shape. One immutable block per
// shape is shared process-wide so screened (below-threshold) reads cost a
// shared_ptr copy instead of an allocation; callers must never write
// through it (the copy-on-write guards treat any shared block as
// immutable, which covers this one).
BlockPtr zero_block(const BlockShape& shape);

// Copies the subblock of `src` starting at `origin` (0-based) with
// `shape` extents into a new block (SIAL slice assignment, §IV-E.2).
Block slice(const Block& src, std::span<const int> origin,
            const BlockShape& shape);

// Writes `sub` into `dst` at `origin` (SIAL insertion assignment).
void insert(Block& dst, std::span<const int> origin, const Block& sub);

}  // namespace sia
