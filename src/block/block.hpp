// Dense blocks ("super numbers").
//
// A block is the unit of data in the SIA: a small dense rank-N tensor cut
// from a large array by the segment grid. Super instructions consume and
// produce whole blocks (paper §III). Blocks are stored row-major (last
// index fastest) and carry their extents; storage comes from a BlockPool
// (pool slot or heap fallback).
#pragma once

#include <array>
#include <memory>
#include <span>
#include <string>

#include "blas/permute.hpp"
#include "block/block_pool.hpp"

namespace sia {

// Extents of one block along each dimension.
class BlockShape {
 public:
  BlockShape() = default;
  explicit BlockShape(std::span<const int> extents);

  int rank() const { return rank_; }
  int extent(int d) const { return extents_[static_cast<std::size_t>(d)]; }
  std::span<const int> extents() const {
    return {extents_.data(), static_cast<std::size_t>(rank_)};
  }
  std::size_t element_count() const;

  bool operator==(const BlockShape&) const = default;
  std::string to_string() const;

 private:
  int rank_ = 0;
  std::array<int, blas::kMaxRank> extents_{};
};

class Block {
 public:
  // Heap-backed block, zero-initialized.
  explicit Block(const BlockShape& shape);
  // Pool-backed block; buffer capacity must cover the shape. Contents are
  // zeroed (pool slots are recycled and carry stale data).
  Block(const BlockShape& shape, PoolBuffer buffer);

  Block(Block&&) noexcept = default;
  Block& operator=(Block&&) noexcept = default;
  Block(const Block&) = delete;
  Block& operator=(const Block&) = delete;

  const BlockShape& shape() const { return shape_; }
  std::size_t size() const { return shape_.element_count(); }

  std::span<double> data() {
    return {buffer_.data(), shape_.element_count()};
  }
  std::span<const double> data() const {
    return {buffer_.data(), shape_.element_count()};
  }

  // Element access by multi-index (0-based within the block); used by
  // tests, the integral generator, and subblock slicing.
  double& at(std::span<const int> index);
  double at(std::span<const int> index) const;

  // Deep copy into a new heap-backed block.
  Block clone() const;

 private:
  std::size_t offset_of(std::span<const int> index) const;

  BlockShape shape_;
  PoolBuffer buffer_;
};

using BlockPtr = std::shared_ptr<Block>;

// Copies the subblock of `src` starting at `origin` (0-based) with
// `shape` extents into a new block (SIAL slice assignment, §IV-E.2).
Block slice(const Block& src, std::span<const int> origin,
            const BlockShape& shape);

// Writes `sub` into `dst` at `origin` (SIAL insertion assignment).
void insert(Block& dst, std::span<const int> origin, const Block& sub);

}  // namespace sia
