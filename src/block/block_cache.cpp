#include "block/block_cache.hpp"

#include "common/error.hpp"

namespace sia {

BlockCache::BlockCache(std::size_t capacity_doubles, VictimHandler on_evict)
    : capacity_(capacity_doubles), on_evict_(std::move(on_evict)) {}

BlockPtr BlockCache::get(const BlockId& id) {
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // move to front
  return it->second->block;
}

BlockPtr BlockCache::peek(const BlockId& id) const {
  auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : it->second->block;
}

bool BlockCache::contains(const BlockId& id) const {
  return entries_.find(id) != entries_.end();
}

void BlockCache::put(const BlockId& id, BlockPtr block, bool dirty) {
  SIA_CHECK(block != nullptr, "BlockCache::put: null block");
  const std::size_t incoming = block->size();

  if (incoming > capacity_) {
    // Too big to cache at all; pass straight to the victim handler.
    if (on_evict_) on_evict_(id, block, dirty);
    return;
  }

  auto it = entries_.find(id);
  if (it != entries_.end()) {
    used_ -= it->second->block->size();
    it->second->block = std::move(block);
    it->second->dirty = dirty;
    used_ += incoming;
    lru_.splice(lru_.begin(), lru_, it->second);
    evict_to_fit(0);
    return;
  }

  evict_to_fit(incoming);
  lru_.push_front(Entry{id, std::move(block), dirty});
  entries_.emplace(id, lru_.begin());
  used_ += incoming;
  ++stats_.insertions;
}

void BlockCache::evict_to_fit(std::size_t incoming) {
  if (used_ + incoming <= capacity_) return;
  // Evict from least-recently-used. Dropping the cache's shared_ptr never
  // invalidates other holders (an executing super instruction, an
  // in-flight zero-copy message), so shared entries are evictable too —
  // skipping them would make blocks adopted from remote pools, whose home
  // rank keeps a reference, permanently unevictable.
  auto it = lru_.end();
  while (used_ + incoming > capacity_ && it != lru_.begin()) {
    --it;
    if (on_evict_) on_evict_(it->id, it->block, it->dirty);
    used_ -= it->block->size();
    entries_.erase(it->id);
    it = lru_.erase(it);
    ++stats_.evictions;
  }
}

void BlockCache::mark_dirty(const BlockId& id) {
  auto it = entries_.find(id);
  if (it != entries_.end()) it->second->dirty = true;
}

void BlockCache::erase(const BlockId& id) {
  auto it = entries_.find(id);
  if (it == entries_.end()) return;
  used_ -= it->second->block->size();
  lru_.erase(it->second);
  entries_.erase(it);
}

std::size_t BlockCache::erase_array(int array_id) {
  std::size_t removed = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->id.array_id == array_id) {
      used_ -= it->block->size();
      entries_.erase(it->id);
      it = lru_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

void BlockCache::flush_dirty() {
  for (auto& entry : lru_) {
    if (entry.dirty) {
      if (on_evict_) on_evict_(entry.id, entry.block, true);
      entry.dirty = false;
    }
  }
}

}  // namespace sia
