#include "block/block_cache.hpp"

#include "common/error.hpp"

namespace sia {

BlockCache::BlockCache(std::size_t capacity_doubles, VictimHandler on_evict)
    : capacity_(capacity_doubles), on_evict_(std::move(on_evict)) {}

BlockPtr BlockCache::get(const BlockId& id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // move to front
  return it->second->block;
}

BlockPtr BlockCache::peek(const BlockId& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : it->second->block;
}

bool BlockCache::contains(const BlockId& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.find(id) != entries_.end();
}

void BlockCache::put(const BlockId& id, BlockPtr block, bool dirty) {
  SIA_CHECK(block != nullptr, "BlockCache::put: null block");
  const std::size_t incoming = block->size();

  // Victims are collected under the lock but handed to the handler after
  // it is released: the handler may be arbitrarily slow (write-behind) or
  // call back into this cache, and concurrent readers must not stall
  // behind it.
  std::vector<Victim> victims;

  if (incoming > capacity_) {
    // Too big to cache at all; pass straight to the victim handler.
    if (on_evict_) on_evict_(id, block, dirty);
    return;
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(id);
    if (it != entries_.end()) {
      used_ -= it->second->block->size();
      it->second->block = std::move(block);
      it->second->dirty = dirty;
      used_ += incoming;
      lru_.splice(lru_.begin(), lru_, it->second);
      evict_to_fit_locked(0, victims);
    } else {
      evict_to_fit_locked(incoming, victims);
      lru_.push_front(Entry{id, std::move(block), dirty});
      entries_.emplace(id, lru_.begin());
      used_ += incoming;
      ++stats_.insertions;
    }
  }
  if (on_evict_) {
    for (const Victim& victim : victims) {
      on_evict_(victim.id, victim.block, victim.dirty);
    }
  }
}

void BlockCache::evict_to_fit_locked(std::size_t incoming,
                                     std::vector<Victim>& victims) {
  if (used_ + incoming <= capacity_) return;
  // Evict from least-recently-used. Dropping the cache's shared_ptr never
  // invalidates other holders (an executing super instruction, an
  // in-flight zero-copy message), so shared entries are evictable too —
  // skipping them would make blocks adopted from remote pools, whose home
  // rank keeps a reference, permanently unevictable.
  auto it = lru_.end();
  while (used_ + incoming > capacity_ && it != lru_.begin()) {
    --it;
    victims.push_back(Victim{it->id, it->block, it->dirty});
    used_ -= it->block->size();
    entries_.erase(it->id);
    it = lru_.erase(it);
    ++stats_.evictions;
  }
}

void BlockCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  entries_.clear();
  used_ = 0;
  stats_ = Stats{};
}

void BlockCache::mark_dirty(const BlockId& id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(id);
  if (it != entries_.end()) it->second->dirty = true;
}

void BlockCache::erase(const BlockId& id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(id);
  if (it == entries_.end()) return;
  used_ -= it->second->block->size();
  lru_.erase(it->second);
  entries_.erase(it);
}

std::size_t BlockCache::erase_array(int array_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t removed = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->id.array_id == array_id) {
      used_ -= it->block->size();
      entries_.erase(it->id);
      it = lru_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

void BlockCache::flush_dirty() {
  std::vector<Victim> dirty;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& entry : lru_) {
      if (entry.dirty) {
        dirty.push_back(Victim{entry.id, entry.block, true});
        entry.dirty = false;
      }
    }
  }
  if (on_evict_) {
    for (const Victim& victim : dirty) {
      on_evict_(victim.id, victim.block, true);
    }
  }
}

std::size_t BlockCache::size_doubles() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return used_;
}

std::size_t BlockCache::entry_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

BlockCache::Stats BlockCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace sia
