#include "block/block.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <vector>

#include "blas/elementwise.hpp"
#include "common/error.hpp"

namespace sia {

BlockShape::BlockShape(std::span<const int> extents) {
  SIA_CHECK(extents.size() >= 1 &&
                extents.size() <= static_cast<std::size_t>(blas::kMaxRank),
            "BlockShape: bad rank");
  rank_ = static_cast<int>(extents.size());
  for (std::size_t d = 0; d < extents.size(); ++d) {
    SIA_CHECK(extents[d] >= 1, "BlockShape: extent must be >= 1");
    extents_[d] = extents[d];
  }
}

std::size_t BlockShape::element_count() const {
  std::size_t total = 1;
  for (int d = 0; d < rank_; ++d) {
    total *= static_cast<std::size_t>(extents_[static_cast<std::size_t>(d)]);
  }
  return rank_ == 0 ? 0 : total;
}

std::string BlockShape::to_string() const {
  std::string out = "[";
  for (int d = 0; d < rank_; ++d) {
    if (d > 0) out += "x";
    out += std::to_string(extents_[static_cast<std::size_t>(d)]);
  }
  return out + "]";
}

namespace {
BlockPool& heap_pool() {
  // Shared fallback pool with no size classes: plain heap allocations,
  // still instrumented. Thread safe.
  static BlockPool pool;
  return pool;
}
}  // namespace

Block::Block(const BlockShape& shape)
    : shape_(shape), buffer_(heap_pool().allocate(shape.element_count())) {
  std::fill_n(buffer_.data(), shape_.element_count(), 0.0);
}

Block::Block(const BlockShape& shape, PoolBuffer buffer)
    : shape_(shape), buffer_(std::move(buffer)) {
  SIA_CHECK(buffer_.capacity() >= shape_.element_count(),
            "Block: pool buffer too small for shape");
  std::fill_n(buffer_.data(), shape_.element_count(), 0.0);
}

Block::Block(Block&& other) noexcept
    : shape_(other.shape_),
      buffer_(std::move(other.buffer_)),
      norm_(other.norm_.load(std::memory_order_relaxed)),
      norm_valid_(other.norm_valid_.load(std::memory_order_relaxed)) {}

Block& Block::operator=(Block&& other) noexcept {
  shape_ = other.shape_;
  buffer_ = std::move(other.buffer_);
  norm_.store(other.norm_.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
  norm_valid_.store(other.norm_valid_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  return *this;
}

double Block::norm() const {
  if (norm_valid_.load(std::memory_order_acquire)) {
    return norm_.load(std::memory_order_relaxed);
  }
  const double value = blas::nrm2(data());
  norm_.store(value, std::memory_order_relaxed);
  norm_valid_.store(true, std::memory_order_release);
  return value;
}

std::size_t Block::offset_of(std::span<const int> index) const {
  SIA_CHECK(static_cast<int>(index.size()) == shape_.rank(),
            "Block::at: wrong index rank");
  std::size_t offset = 0;
  for (int d = 0; d < shape_.rank(); ++d) {
    const int i = index[static_cast<std::size_t>(d)];
    SIA_CHECK(i >= 0 && i < shape_.extent(d), "Block::at: index out of range");
    offset = offset * static_cast<std::size_t>(shape_.extent(d)) +
             static_cast<std::size_t>(i);
  }
  return offset;
}

double& Block::at(std::span<const int> index) {
  invalidate_norm();
  return buffer_.data()[offset_of(index)];
}

double Block::at(std::span<const int> index) const {
  return buffer_.data()[offset_of(index)];
}

Block Block::clone() const {
  Block copy(shape_);
  std::copy_n(buffer_.data(), shape_.element_count(), copy.buffer_.data());
  copy.norm_.store(norm_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  copy.norm_valid_.store(norm_valid_.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
  return copy;
}

BlockPtr zero_block(const BlockShape& shape) {
  static std::mutex mutex;
  static std::map<std::vector<int>, BlockPtr> registry;
  const std::vector<int> key(shape.extents().begin(), shape.extents().end());
  std::lock_guard<std::mutex> lock(mutex);
  auto it = registry.find(key);
  if (it == registry.end()) {
    it = registry.emplace(key, std::make_shared<Block>(shape)).first;
  }
  return it->second;
}

Block slice(const Block& src, std::span<const int> origin,
            const BlockShape& shape) {
  SIA_CHECK(static_cast<int>(origin.size()) == src.shape().rank(),
            "slice: origin rank mismatch");
  SIA_CHECK(shape.rank() == src.shape().rank(), "slice: shape rank mismatch");
  Block out(shape);

  // Walk the destination block and copy from the offset region of src.
  const int rank = shape.rank();
  std::array<int, blas::kMaxRank> counter{};
  std::array<int, blas::kMaxRank> src_index{};
  const std::size_t total = shape.element_count();
  auto dst = out.data();
  for (std::size_t n = 0; n < total; ++n) {
    for (int d = 0; d < rank; ++d) {
      const std::size_t ud = static_cast<std::size_t>(d);
      src_index[ud] = origin[ud] + counter[ud];
      SIA_CHECK(src_index[ud] < src.shape().extent(d),
                "slice: subblock exceeds source block");
    }
    dst[n] = src.at({src_index.data(), static_cast<std::size_t>(rank)});
    for (int d = rank - 1; d >= 0; --d) {
      const std::size_t ud = static_cast<std::size_t>(d);
      if (++counter[ud] < shape.extent(d)) break;
      counter[ud] = 0;
    }
  }
  return out;
}

void insert(Block& dst, std::span<const int> origin, const Block& sub) {
  SIA_CHECK(static_cast<int>(origin.size()) == dst.shape().rank(),
            "insert: origin rank mismatch");
  SIA_CHECK(sub.shape().rank() == dst.shape().rank(),
            "insert: shape rank mismatch");
  const int rank = dst.shape().rank();
  std::array<int, blas::kMaxRank> counter{};
  std::array<int, blas::kMaxRank> dst_index{};
  const std::size_t total = sub.shape().element_count();
  auto src = sub.data();
  for (std::size_t n = 0; n < total; ++n) {
    for (int d = 0; d < rank; ++d) {
      const std::size_t ud = static_cast<std::size_t>(d);
      dst_index[ud] = origin[ud] + counter[ud];
      SIA_CHECK(dst_index[ud] < dst.shape().extent(d),
                "insert: subblock exceeds destination block");
    }
    dst.at({dst_index.data(), static_cast<std::size_t>(rank)}) = src[n];
    for (int d = rank - 1; d >= 0; --d) {
      const std::size_t ud = static_cast<std::size_t>(d);
      if (++counter[ud] < sub.shape().extent(d)) break;
      counter[ud] = 0;
    }
  }
}

}  // namespace sia
