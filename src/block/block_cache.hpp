// LRU block cache.
//
// Two users, both from the paper: each worker keeps recently used remote
// blocks ("it may be available ... because it is still available in the
// block cache from a recent use", §V-A), and each I/O server fronts its
// disk store with an LRU cache with write-behind ("Replacement is done
// using a LRU strategy", §V-B). Eviction calls a victim handler so the
// I/O server can spill dirty blocks to disk; worker caches just drop.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "block/block.hpp"
#include "block/block_id.hpp"

namespace sia {

class BlockCache {
 public:
  struct Stats {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t evictions = 0;
    std::int64_t insertions = 0;
  };

  // Called with each evicted entry; `dirty` is the flag set by put(...,
  // dirty=true). The handler runs after the cache's internal lock is
  // released, so it may block on I/O or call back into the cache without
  // stalling concurrent readers.
  using VictimHandler =
      std::function<void(const BlockId&, const BlockPtr&, bool dirty)>;

  // `capacity_doubles` bounds the sum of element counts of cached blocks.
  explicit BlockCache(std::size_t capacity_doubles,
                      VictimHandler on_evict = nullptr);

  // Lookup; refreshes recency. nullptr on miss.
  BlockPtr get(const BlockId& id);
  // Lookup without touching recency or stats (used by tests/servers).
  BlockPtr peek(const BlockId& id) const;
  bool contains(const BlockId& id) const;

  // Inserts (or replaces) an entry; may evict least-recently-used entries
  // to fit. Eviction drops only the cache's own reference, so blocks held
  // elsewhere (in use by a super instruction, in flight in a message)
  // stay valid for their holders. A block larger than the whole capacity
  // is passed through uncached (the victim handler sees it immediately if
  // dirty).
  void put(const BlockId& id, BlockPtr block, bool dirty = false);

  // Marks an existing entry dirty (e.g. accumulated into).
  void mark_dirty(const BlockId& id);

  // Drops every entry and zeroes the stats (no victim callbacks) —
  // epoch-advance resets. Accumulate stats() first if you need them.
  void clear();

  // Removes one entry (no victim callback).
  void erase(const BlockId& id);
  // Removes every entry of an array (no victim callback); returns count.
  std::size_t erase_array(int array_id);

  // Flushes all dirty entries through the victim handler without removing
  // them (server_barrier path).
  void flush_dirty();

  std::size_t size_doubles() const;
  std::size_t entry_count() const;
  std::size_t capacity_doubles() const { return capacity_; }
  Stats stats() const;

 private:
  struct Entry {
    BlockId id;
    BlockPtr block;
    bool dirty = false;
  };
  struct Victim {
    BlockId id;
    BlockPtr block;
    bool dirty = false;
  };
  using LruList = std::list<Entry>;

  void evict_to_fit_locked(std::size_t incoming,
                           std::vector<Victim>& victims);

  // Guards every container below; victim handlers run outside it. The
  // executor's pool threads hold BlockPtrs obtained from the interpreter
  // thread, so the cache itself is only mutated on one thread today —
  // the lock makes the pin/evict contract explicit and TSAN-provable.
  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::size_t used_ = 0;
  VictimHandler on_evict_;
  LruList lru_;  // front = most recent
  std::unordered_map<BlockId, LruList::iterator, BlockIdHash> entries_;
  Stats stats_;
};

}  // namespace sia
