#include "block/index_range.hpp"

#include "common/error.hpp"

namespace sia {

SegmentedRange::SegmentedRange(long low, long high, int segment_size)
    : low_(low), high_(high), segment_size_(segment_size) {
  if (high < low) {
    throw Error("SegmentedRange: empty range [" + std::to_string(low) + ", " +
                std::to_string(high) + "]");
  }
  if (segment_size < 1) {
    throw Error("SegmentedRange: segment size must be >= 1");
  }
  const long extent = high - low + 1;
  num_segments_ = static_cast<int>((extent + segment_size - 1) / segment_size);
}

long SegmentedRange::segment_low(int s) const {
  SIA_CHECK(s >= 1 && s <= num_segments_, "segment number out of range");
  return low_ + static_cast<long>(s - 1) * segment_size_;
}

long SegmentedRange::segment_high(int s) const {
  SIA_CHECK(s >= 1 && s <= num_segments_, "segment number out of range");
  const long nominal = segment_low(s) + segment_size_ - 1;
  return nominal < high_ ? nominal : high_;
}

int SegmentedRange::segment_extent(int s) const {
  return static_cast<int>(segment_high(s) - segment_low(s) + 1);
}

int SegmentedRange::segment_of(long element) const {
  SIA_CHECK(element >= low_ && element <= high_, "element out of range");
  return static_cast<int>((element - low_) / segment_size_) + 1;
}

std::string SegmentedRange::to_string() const {
  return "[" + std::to_string(low_) + ":" + std::to_string(high_) + " seg " +
         std::to_string(segment_size_) + " -> " +
         std::to_string(num_segments_) + " segments]";
}

}  // namespace sia
