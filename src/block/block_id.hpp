// Identity of one block of a (distributed/served/local) array.
//
// A block is named by its array and the segment number along each
// dimension. BlockIds travel in message headers (linearized) and key the
// worker block caches and I/O server stores.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <string>

#include "blas/permute.hpp"

namespace sia {

struct BlockId {
  int array_id = -1;
  int rank = 0;
  // 1-based segment numbers; entries past `rank` must be 0.
  std::array<int, blas::kMaxRank> segments{};

  BlockId() = default;
  BlockId(int array, std::span<const int> segs);

  bool operator==(const BlockId&) const = default;

  // Linearizes the segment tuple with the given per-dimension segment
  // counts (row-major over segment numbers); used for message headers and
  // owner assignment. Inverse: from_linear.
  std::int64_t linearize(std::span<const int> num_segments) const;
  static BlockId from_linear(int array_id, std::int64_t linear,
                             std::span<const int> num_segments);

  std::uint64_t hash() const;
  std::string to_string() const;
};

struct BlockIdHash {
  std::size_t operator()(const BlockId& id) const {
    return static_cast<std::size_t>(id.hash());
  }
};

}  // namespace sia
