#include "block/block_pool.hpp"

#include <algorithm>
#include <array>
#include <atomic>

#include "common/error.hpp"

namespace sia {

namespace detail {

namespace {

// Stable small shard index per thread: threads get round-robin shard
// homes process-wide, so an interpreter thread and its pool workers land
// on different shards and the fast path never contends.
std::size_t this_thread_shard() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed);
  return shard;
}

}  // namespace

// Shared slot storage. Referenced by the owning BlockPool and by every
// outstanding PoolBuffer, so buffers stay valid after the BlockPool
// object is gone (zero-copy messaging hands pool-backed blocks across
// rank boundaries and destruction order between ranks is arbitrary).
//
// Free lists are sharded: each size class splits its slots over
// kShards independently locked stacks, and a thread allocates from its
// home shard, stealing from the others only when the home stack is
// empty. With the dataflow executor several threads allocate scratch
// concurrently; sharding keeps them off one global mutex.
class PoolCore {
 public:
  static constexpr std::size_t kShards = 8;

  PoolCore() = default;
  PoolCore(std::map<std::size_t, std::size_t> size_classes,
           bool allow_heap_fallback)
      : allow_heap_fallback_(allow_heap_fallback) {
    std::size_t total = 0;
    for (const auto& [capacity, slots] : size_classes) {
      SIA_CHECK(capacity > 0, "BlockPool: zero-capacity size class");
      total += capacity * slots;
    }
    arena_.resize(total);
    std::size_t offset = 0;
    for (const auto& [capacity, slots] : size_classes) {  // map: ascending
      auto cls = std::make_unique<SizeClass>();
      cls->capacity = capacity;
      // Deal slots round-robin so every shard starts with its share.
      for (std::size_t s = 0; s < slots; ++s) {
        cls->shards[s % kShards].free_slots.push_back(arena_.data() +
                                                      offset);
        offset += capacity;
      }
      cls->free_count.store(slots, std::memory_order_relaxed);
      classes_.push_back(std::move(cls));
    }
  }

  PoolBuffer allocate(const std::shared_ptr<PoolCore>& self,
                      std::size_t count) {
    SIA_CHECK(count > 0, "BlockPool: zero-size allocation");
    const std::size_t home = this_thread_shard();
    for (auto& cls : classes_) {
      if (cls->capacity < count) continue;
      // Cheap skip of drained classes; the per-shard locks make the
      // count advisory, so a miss here just means one wasted scan.
      if (cls->free_count.load(std::memory_order_relaxed) == 0) continue;
      for (std::size_t probe = 0; probe < kShards; ++probe) {
        Shard& shard = cls->shards[(home + probe) % kShards];
        std::lock_guard<std::mutex> lock(shard.mutex);
        if (shard.free_slots.empty()) continue;
        double* slot = shard.free_slots.back();
        shard.free_slots.pop_back();
        cls->free_count.fetch_sub(1, std::memory_order_relaxed);
        pool_allocs_.fetch_add(1, std::memory_order_relaxed);
        add_in_use(cls->capacity);
        return PoolBuffer(self, slot, cls->capacity, cls->capacity, false);
      }
    }
    if (!allow_heap_fallback_) {
      // Every shard of every fitting class was scanned under its lock
      // above, so this really is exhaustion, not an unlucky race.
      throw RuntimeError("block pool exhausted for request of " +
                         std::to_string(count) +
                         " doubles; dry-run sizing was violated");
    }
    heap_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    add_in_use(count);
    return PoolBuffer(self, new double[count], count, count, true);
  }

  void release_slot(double* data, std::size_t size_class, bool heap,
                    std::size_t capacity) {
    in_use_doubles_.fetch_sub(capacity, std::memory_order_relaxed);
    if (heap) {
      delete[] data;
      return;
    }
    for (auto& cls : classes_) {
      if (cls->capacity == size_class) {
        Shard& shard = cls->shards[this_thread_shard() % kShards];
        {
          std::lock_guard<std::mutex> lock(shard.mutex);
          shard.free_slots.push_back(data);
        }
        cls->free_count.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
    // Unreachable if the buffer came from this pool.
    throw InternalError("BlockPool: released slot of unknown size class");
  }

  BlockPool::Stats stats() const {
    BlockPool::Stats stats;
    stats.pool_allocs = pool_allocs_.load(std::memory_order_relaxed);
    stats.heap_fallbacks = heap_fallbacks_.load(std::memory_order_relaxed);
    stats.in_use_doubles = in_use_doubles_.load(std::memory_order_relaxed);
    stats.peak_in_use_doubles =
        peak_in_use_doubles_.load(std::memory_order_relaxed);
    return stats;
  }

  std::size_t total_pool_doubles() const { return arena_.size(); }

  std::size_t free_slots_for(std::size_t count) const {
    for (const auto& cls : classes_) {
      if (cls->capacity >= count) {
        return cls->free_count.load(std::memory_order_relaxed);
      }
    }
    return 0;
  }

 private:
  struct Shard {
    std::mutex mutex;
    std::vector<double*> free_slots;  // stack of available slots
  };
  struct SizeClass {
    std::size_t capacity = 0;  // doubles per slot
    std::array<Shard, kShards> shards;
    std::atomic<std::size_t> free_count{0};  // advisory sum over shards
  };

  void add_in_use(std::size_t doubles) {
    const std::size_t now =
        in_use_doubles_.fetch_add(doubles, std::memory_order_relaxed) +
        doubles;
    std::size_t peak = peak_in_use_doubles_.load(std::memory_order_relaxed);
    while (now > peak && !peak_in_use_doubles_.compare_exchange_weak(
                             peak, now, std::memory_order_relaxed)) {
    }
  }

  std::vector<double> arena_;
  // unique_ptr: SizeClass holds mutexes and atomics, so it must not move.
  std::vector<std::unique_ptr<SizeClass>> classes_;  // capacity ascending
  bool allow_heap_fallback_ = true;
  std::atomic<std::size_t> pool_allocs_{0};
  std::atomic<std::size_t> heap_fallbacks_{0};
  std::atomic<std::size_t> in_use_doubles_{0};
  std::atomic<std::size_t> peak_in_use_doubles_{0};
};

}  // namespace detail

PoolBuffer::~PoolBuffer() { release(); }

PoolBuffer::PoolBuffer(PoolBuffer&& other) noexcept
    : core_(std::move(other.core_)), data_(other.data_),
      capacity_(other.capacity_), size_class_(other.size_class_),
      heap_(other.heap_) {
  other.data_ = nullptr;
  other.capacity_ = 0;
}

PoolBuffer& PoolBuffer::operator=(PoolBuffer&& other) noexcept {
  if (this != &other) {
    release();
    core_ = std::move(other.core_);
    data_ = other.data_;
    capacity_ = other.capacity_;
    size_class_ = other.size_class_;
    heap_ = other.heap_;
    other.data_ = nullptr;
    other.capacity_ = 0;
  }
  return *this;
}

void PoolBuffer::release() {
  if (data_ != nullptr && core_ != nullptr) {
    core_->release_slot(data_, size_class_, heap_, capacity_);
  } else if (data_ != nullptr && heap_) {
    delete[] data_;
  }
  data_ = nullptr;
  core_.reset();
}

BlockPool::BlockPool() : core_(std::make_shared<detail::PoolCore>()) {}

BlockPool::BlockPool(std::map<std::size_t, std::size_t> size_classes,
                     bool allow_heap_fallback)
    : core_(std::make_shared<detail::PoolCore>(std::move(size_classes),
                                               allow_heap_fallback)) {}

BlockPool::~BlockPool() = default;

PoolBuffer BlockPool::allocate(std::size_t count) {
  return core_->allocate(core_, count);
}

BlockPool::Stats BlockPool::stats() const { return core_->stats(); }

std::size_t BlockPool::total_pool_doubles() const {
  return core_->total_pool_doubles();
}

std::size_t BlockPool::free_slots_for(std::size_t count) const {
  return core_->free_slots_for(count);
}

}  // namespace sia
