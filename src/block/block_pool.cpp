#include "block/block_pool.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace sia {

namespace detail {

// Shared slot storage. Referenced by the owning BlockPool and by every
// outstanding PoolBuffer, so buffers stay valid after the BlockPool
// object is gone (zero-copy messaging hands pool-backed blocks across
// rank boundaries and destruction order between ranks is arbitrary).
class PoolCore {
 public:
  PoolCore() = default;
  PoolCore(std::map<std::size_t, std::size_t> size_classes,
           bool allow_heap_fallback)
      : allow_heap_fallback_(allow_heap_fallback) {
    std::size_t total = 0;
    for (const auto& [capacity, slots] : size_classes) {
      SIA_CHECK(capacity > 0, "BlockPool: zero-capacity size class");
      total += capacity * slots;
    }
    arena_.resize(total);
    std::size_t offset = 0;
    for (const auto& [capacity, slots] : size_classes) {  // map: ascending
      SizeClass cls;
      cls.capacity = capacity;
      cls.free_slots.reserve(slots);
      for (std::size_t s = 0; s < slots; ++s) {
        cls.free_slots.push_back(arena_.data() + offset);
        offset += capacity;
      }
      classes_.push_back(std::move(cls));
    }
  }

  PoolBuffer allocate(const std::shared_ptr<PoolCore>& self,
                      std::size_t count) {
    SIA_CHECK(count > 0, "BlockPool: zero-size allocation");
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (auto& cls : classes_) {
        if (cls.capacity >= count && !cls.free_slots.empty()) {
          double* slot = cls.free_slots.back();
          cls.free_slots.pop_back();
          ++stats_.pool_allocs;
          stats_.in_use_doubles += cls.capacity;
          stats_.peak_in_use_doubles =
              std::max(stats_.peak_in_use_doubles, stats_.in_use_doubles);
          return PoolBuffer(self, slot, cls.capacity, cls.capacity, false);
        }
      }
      if (!allow_heap_fallback_) {
        throw RuntimeError("block pool exhausted for request of " +
                           std::to_string(count) +
                           " doubles; dry-run sizing was violated");
      }
      ++stats_.heap_fallbacks;
      stats_.in_use_doubles += count;
      stats_.peak_in_use_doubles =
          std::max(stats_.peak_in_use_doubles, stats_.in_use_doubles);
    }
    return PoolBuffer(self, new double[count], count, count, true);
  }

  void release_slot(double* data, std::size_t size_class, bool heap,
                    std::size_t capacity) {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.in_use_doubles -= capacity;
    if (heap) {
      delete[] data;
      return;
    }
    for (auto& cls : classes_) {
      if (cls.capacity == size_class) {
        cls.free_slots.push_back(data);
        return;
      }
    }
    // Unreachable if the buffer came from this pool.
    throw InternalError("BlockPool: released slot of unknown size class");
  }

  BlockPool::Stats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }

  std::size_t total_pool_doubles() const { return arena_.size(); }

  std::size_t free_slots_for(std::size_t count) const {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& cls : classes_) {
      if (cls.capacity >= count) return cls.free_slots.size();
    }
    return 0;
  }

 private:
  struct SizeClass {
    std::size_t capacity = 0;         // doubles per slot
    std::vector<double*> free_slots;  // stack of available slots
  };

  mutable std::mutex mutex_;
  std::vector<double> arena_;
  std::vector<SizeClass> classes_;  // sorted by capacity ascending
  bool allow_heap_fallback_ = true;
  BlockPool::Stats stats_;
};

}  // namespace detail

PoolBuffer::~PoolBuffer() { release(); }

PoolBuffer::PoolBuffer(PoolBuffer&& other) noexcept
    : core_(std::move(other.core_)), data_(other.data_),
      capacity_(other.capacity_), size_class_(other.size_class_),
      heap_(other.heap_) {
  other.data_ = nullptr;
  other.capacity_ = 0;
}

PoolBuffer& PoolBuffer::operator=(PoolBuffer&& other) noexcept {
  if (this != &other) {
    release();
    core_ = std::move(other.core_);
    data_ = other.data_;
    capacity_ = other.capacity_;
    size_class_ = other.size_class_;
    heap_ = other.heap_;
    other.data_ = nullptr;
    other.capacity_ = 0;
  }
  return *this;
}

void PoolBuffer::release() {
  if (data_ != nullptr && core_ != nullptr) {
    core_->release_slot(data_, size_class_, heap_, capacity_);
  } else if (data_ != nullptr && heap_) {
    delete[] data_;
  }
  data_ = nullptr;
  core_.reset();
}

BlockPool::BlockPool() : core_(std::make_shared<detail::PoolCore>()) {}

BlockPool::BlockPool(std::map<std::size_t, std::size_t> size_classes,
                     bool allow_heap_fallback)
    : core_(std::make_shared<detail::PoolCore>(std::move(size_classes),
                                               allow_heap_fallback)) {}

BlockPool::~BlockPool() = default;

PoolBuffer BlockPool::allocate(std::size_t count) {
  return core_->allocate(core_, count);
}

BlockPool::Stats BlockPool::stats() const { return core_->stats(); }

std::size_t BlockPool::total_pool_doubles() const {
  return core_->total_pool_doubles();
}

std::size_t BlockPool::free_slots_for(std::size_t count) const {
  return core_->free_slots_for(count);
}

}  // namespace sia
