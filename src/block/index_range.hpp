// Segmented index ranges.
//
// SIAL declares indices over *element* ranges (e.g. `aoindex mu = 1, norb`)
// but programs loop over *segment numbers*: each dimension of a large array
// is broken into segments which in turn define blocks (paper §III). The
// segment size is a runtime parameter, never visible in SIAL source. This
// class is the element<->segment arithmetic used everywhere: block shapes,
// dry-run sizing, and the on-demand integral generator (which needs global
// element offsets for each block).
#pragma once

#include <string>

namespace sia {

class SegmentedRange {
 public:
  SegmentedRange() = default;

  // Inclusive 1-based element range [low, high] cut into segments of
  // `segment_size` elements; the last segment may be smaller.
  SegmentedRange(long low, long high, int segment_size);

  long low() const { return low_; }
  long high() const { return high_; }
  long extent() const { return high_ - low_ + 1; }
  int segment_size() const { return segment_size_; }

  // Number of segments (1-based segment numbers 1..num_segments()).
  int num_segments() const { return num_segments_; }

  // First element (1-based, absolute) of segment `s`.
  long segment_low(int s) const;
  // Last element of segment `s`.
  long segment_high(int s) const;
  // Elements in segment `s` (== segment_size except possibly the last).
  int segment_extent(int s) const;

  // Segment number containing absolute element `e`.
  int segment_of(long element) const;

  bool operator==(const SegmentedRange&) const = default;

  std::string to_string() const;

 private:
  long low_ = 1;
  long high_ = 0;
  int segment_size_ = 1;
  int num_segments_ = 0;
};

}  // namespace sia
