// Bytecode disassembler for debugging and the `sial_tool` example.
#pragma once

#include <string>

#include "sial/bytecode.hpp"

namespace sia::sial {

// One-line rendering of a single instruction.
std::string disassemble_instruction(const CompiledProgram& program, int pc);

// Full listing: tables summary followed by the instruction stream.
std::string disassemble(const CompiledProgram& program);

}  // namespace sia::sial
