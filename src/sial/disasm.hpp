// Bytecode disassembler for debugging and the `sial_tool` example.
#pragma once

#include <string>

#include "sial/bytecode.hpp"

namespace sia::sial {

// One-line rendering of a single instruction.
std::string disassemble_instruction(const CompiledProgram& program, int pc);

// Full listing: tables summary followed by the instruction stream.
std::string disassemble(const CompiledProgram& program);

// Like disassemble(), but each instruction line is annotated with the
// optimizer's static facts when present: per-instruction read/write
// sets (`R={...} W={...}`, a `!` marking full overwrites), a `renames`
// marker on proven-renamable destinations, and the optimizer note for
// hoisted kPrefetch / eliminated kNop slots. Window-safe pardos are
// flagged on their kPardoStart line.
std::string disassemble_annotated(const CompiledProgram& program);

}  // namespace sia::sial
