// SIAL lexer.
//
// Converts SIAL source text into a token stream. Comments run from '#' to
// end of line. Newlines are significant (statement separators) but runs of
// blank/comment lines collapse to one kNewline token. Keywords are case
// insensitive; identifiers keep their case.
#pragma once

#include <string>
#include <vector>

#include "sial/token.hpp"

namespace sia::sial {

class Lexer {
 public:
  explicit Lexer(std::string source);

  // Tokenizes the whole input; throws CompileError on bad characters or
  // unterminated strings. The result always ends with kEof.
  std::vector<Token> tokenize();

 private:
  char peek(int ahead = 0) const;
  char advance();
  bool at_end() const;
  // 1-based column of the next unread character.
  int column() const;
  void skip_spaces_and_comments();
  Token lex_number();
  Token lex_word();
  Token lex_string();

  std::string source_;
  std::size_t pos_ = 0;
  int line_ = 1;
  std::size_t line_start_ = 0;  // byte offset where line_ begins
};

}  // namespace sia::sial
