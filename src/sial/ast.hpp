// Abstract syntax tree for SIAL.
//
// The parser produces this tree; semantic analysis annotates/validates it;
// the compiler lowers it to bytecode. Statement nodes use std::variant —
// SIAL is an "assembly" level language, so the statement set is flat and
// closed.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "sial/source.hpp"

namespace sia::sial {

// ---------------------------------------------------------------------
// Compile-time integer expressions (index bounds): literals, symbolic
// constants resolved at program initialization, and + - * /.
struct IntExpr {
  enum class Kind { kLiteral, kConstant, kAdd, kSub, kMul, kDiv };
  Kind kind = Kind::kLiteral;
  long literal = 0;
  std::string constant;  // kConstant
  std::unique_ptr<IntExpr> lhs, rhs;
  int line = 0;

  IntExpr() = default;
  IntExpr(const IntExpr& other) { *this = other; }
  IntExpr& operator=(const IntExpr& other) {
    if (this == &other) return *this;
    kind = other.kind;
    literal = other.literal;
    constant = other.constant;
    line = other.line;
    lhs = other.lhs ? std::make_unique<IntExpr>(*other.lhs) : nullptr;
    rhs = other.rhs ? std::make_unique<IntExpr>(*other.rhs) : nullptr;
    return *this;
  }
  IntExpr(IntExpr&&) = default;
  IntExpr& operator=(IntExpr&&) = default;
};

// ---------------------------------------------------------------------
// Declarations.

enum class IndexType { kSimple, kAo, kMo, kMoa, kMob, kSub };

const char* index_type_name(IndexType type);

struct IndexDecl {
  std::string name;
  IndexType type = IndexType::kSimple;
  IntExpr low, high;      // element range (ignored for kSub)
  std::string super;      // kSub: name of the super index
  int line = 0;
};

enum class ArrayKind { kStatic, kTemp, kLocal, kDistributed, kServed };

const char* array_kind_name(ArrayKind kind);

struct ArrayDecl {
  std::string name;
  ArrayKind kind = ArrayKind::kTemp;
  bool sparse = false;  // screenable under the runtime sparse threshold
  std::vector<std::string> indices;  // index names per dimension
  int line = 0;
};

struct ScalarDecl {
  std::string name;
  int line = 0;
};

// ---------------------------------------------------------------------
// References and runtime expressions.

// A block reference: array(ix1, ..., ixN). In allocate/deallocate an index
// slot may be "*" (all segments of that dimension).
struct BlockRef {
  std::string array;
  std::vector<std::string> indices;
  int line = 0;
  SrcRange range;  // array name through closing paren
};

// Scalar-valued runtime expression. `kBlockDot` is a full contraction of
// two blocks yielding a scalar (e.g. `e += r(i,j) * r(i,j)`).
struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class BinOp { kAdd, kSub, kMul, kDiv };
enum class CmpOp { kLt, kLe, kGt, kGe, kEq, kNe };

const char* cmp_op_name(CmpOp op);

struct Expr {
  enum class Kind {
    kNumber,    // literal (value)
    kName,      // scalar variable, symbolic constant, or index value;
                // disambiguated by the compiler
    kNeg,       // -lhs
    kBinary,    // lhs binop rhs
    kCompare,   // lhs cmp rhs -> 0.0 / 1.0
    kBlockDot,  // full contraction a . b (written a(...) * b(...))
    kFunc,      // func(lhs): sqrt, abs, exp
  };
  Kind kind = Kind::kNumber;
  double number = 0.0;
  std::string name;   // kName / kFunc function name
  BinOp binop = BinOp::kAdd;
  CmpOp cmpop = CmpOp::kLt;
  ExprPtr lhs, rhs;
  BlockRef a, b;      // kBlockDot
  int line = 0;
};

// ---------------------------------------------------------------------
// Statements.

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Body {
  std::vector<StmtPtr> stmts;
};

// `where lhs CMP rhs`; rhs is an index name or a constant expression.
struct WhereClause {
  std::string lhs;
  CmpOp op = CmpOp::kLt;
  std::string rhs_index;          // non-empty if comparing to an index
  std::optional<IntExpr> rhs_const;  // set if comparing to a constant
  int line = 0;
};

struct PardoStmt {
  std::vector<std::string> indices;
  std::vector<WhereClause> wheres;
  Body body;
};

// do i / do ii in i / pardo ii in i.
struct DoStmt {
  std::string index;
  std::string super;   // non-empty for the `in` forms
  bool parallel = false;  // pardo ii in i
  Body body;
};

struct IfStmt {
  ExprPtr cond;
  Body then_body;
  Body else_body;  // empty when no else
};

struct CallStmt {
  std::string proc;
};

struct GetStmt { BlockRef ref; };
struct PutStmt { BlockRef dst; BlockRef src; bool accumulate = false; };
struct RequestStmt { BlockRef ref; };
struct PrepareStmt { BlockRef dst; BlockRef src; bool accumulate = false; };
struct AllocateStmt { BlockRef ref; };
struct DeallocateStmt { BlockRef ref; };
struct CreateStmt { std::string array; };
struct DeleteStmt { std::string array; };

// Assignment statement. The destination is a block ref or a scalar name.
// RHS forms (SIAL is one operation per statement for blocks):
//   kScalarExpr:   dst  op  <scalar expression>
//   kBlockCopy:    dstb op  src_a                      (copy/permute/slice)
//   kBlockBinary:  dstb op  src_a (*|+|-) src_b        (contract/add/sub)
//   kScaledBlock:  dstb op  <scalar expression> * src_b
struct AssignStmt {
  enum class Op { kAssign, kPlusAssign, kMinusAssign, kStarAssign };
  enum class Rhs { kScalarExpr, kBlockCopy, kBlockBinary, kScaledBlock };

  Op op = Op::kAssign;
  std::optional<BlockRef> dst_block;  // block destination
  std::string dst_scalar;             // scalar destination (if no block)

  Rhs rhs = Rhs::kScalarExpr;
  ExprPtr scalar;      // kScalarExpr / kScaledBlock coefficient
  BlockRef a, b;       // block operands
  BinOp block_op = BinOp::kMul;  // kBlockBinary: * + -
};

// Argument of an `execute` statement.
struct ExecArg {
  enum class Kind { kBlock, kScalar, kString, kNumber };
  Kind kind = Kind::kScalar;
  BlockRef block;
  std::string name;    // scalar variable name
  std::string text;    // string literal
  double number = 0.0;
  int line = 0;
};

struct ExecuteStmt {
  std::string name;
  std::vector<ExecArg> args;
};

struct BarrierStmt { bool server = false; };
struct CollectiveStmt { std::string dst; std::string src; };

// print <expr> / println "text".
struct PrintStmt {
  std::string text;    // println form
  ExprPtr value;       // print form
};

// checkpoint A "file" / restore A "file" (blocks_to_list / list_to_blocks).
struct CheckpointStmt {
  std::string array;
  std::string file;
  bool is_restore = false;
};

struct ExitStmt {};  // exits the innermost do loop

struct Stmt {
  int line = 0;
  SrcRange range;  // first token of the statement through its last
  std::variant<PardoStmt, DoStmt, IfStmt, CallStmt, GetStmt, PutStmt,
               RequestStmt, PrepareStmt, AllocateStmt, DeallocateStmt,
               CreateStmt, DeleteStmt, AssignStmt, ExecuteStmt, BarrierStmt,
               CollectiveStmt, PrintStmt, CheckpointStmt, ExitStmt>
      node;
};

struct ProcDecl {
  std::string name;
  Body body;
  int line = 0;
};

struct ProgramAst {
  std::string name;
  std::vector<IndexDecl> indices;
  std::vector<ArrayDecl> arrays;
  std::vector<ScalarDecl> scalars;
  std::vector<ProcDecl> procs;
  Body main;
};

}  // namespace sia::sial
