// SIAL parser.
//
// Recursive-descent over the token stream. SIAL requires declaration
// before use, and the parser exploits that: it tracks which identifiers
// name indices, arrays, and scalars, which is what disambiguates
// `t(i,j) = a(i,k) * b(k,j)` (block contraction) from
// `e = x * y` (scalar expression) without type feedback from later passes.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "sial/ast.hpp"
#include "sial/token.hpp"

namespace sia::sial {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens);

  // Parses a whole program; throws CompileError with source line info.
  ProgramAst parse_program();

 private:
  enum class NameKind { kIndex, kArray, kScalar, kProc };

  // Token cursor helpers.
  const Token& peek(int ahead = 0) const;
  const Token& advance();
  bool check(TokenKind kind) const;
  bool check_keyword(const char* word) const;
  bool match(TokenKind kind);
  bool match_keyword(const char* word);
  const Token& expect(TokenKind kind, const std::string& context);
  const Token& expect_keyword(const char* word);
  std::string expect_identifier(const std::string& context);
  void expect_statement_end();
  void skip_newlines();
  [[noreturn]] void fail(const std::string& message) const;
  // The source span from `start` through the last non-newline token the
  // cursor has consumed (statement and block-reference ranges).
  SrcRange range_since(const Token& start) const;

  // Declarations.
  void declare(const std::string& name, NameKind kind, int line);
  NameKind lookup(const std::string& name, int line) const;
  bool is_declared(const std::string& name, NameKind kind) const;

  void parse_index_decl(IndexType type);
  void parse_subindex_decl();
  void parse_scalar_decl();
  void parse_array_decl(ArrayKind kind, bool sparse = false);
  void parse_proc_decl();

  // Statements.
  Body parse_body(const std::vector<std::string>& terminators,
                  std::string* which_terminator);
  StmtPtr parse_statement();
  StmtPtr parse_pardo();
  StmtPtr parse_do();
  StmtPtr parse_if();
  StmtPtr parse_assignment();
  StmtPtr parse_execute();
  BlockRef parse_block_ref(bool allow_wildcard = false);
  WhereClause parse_where_clause();
  CmpOp parse_cmp_op();

  // Expressions.
  IntExpr parse_int_expr();
  IntExpr parse_int_term();
  IntExpr parse_int_primary();
  ExprPtr parse_expr();        // comparison level
  ExprPtr parse_additive();
  ExprPtr parse_multiplicative();
  ExprPtr parse_unary();
  ExprPtr parse_primary();

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::map<std::string, NameKind> names_;
  ProgramAst program_;
};

// Convenience: lex + parse.
ProgramAst parse_sial(const std::string& source);

}  // namespace sia::sial
