// SIAL semantic analysis.
//
// Validates the AST before compilation and throws CompileError with a
// source line on violations. This is where SIAL's "the type system
// performs useful checks on the consistent use of index variables" (paper
// §IV-A footnote) lives:
//   * every block reference matches its array's rank,
//   * each reference index agrees in *index type* with the declared
//     dimension (an aoindex slot takes any aoindex variable, which is what
//     makes V(M,N,L,S) work on an array declared over other ao indices),
//   * a subindex may stand in for its super's type only on static, temp,
//     and local arrays (slice/insert semantics),
//   * contraction / add / copy operand index sets are consistent,
//   * get/put target distributed arrays, request/prepare served ones,
//   * pardo never nests syntactically, `pardo ii in i` is not inside a
//     pardo, allocate/deallocate apply to local arrays only, etc.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "sial/ast.hpp"

namespace sia::sial {

class Sema {
 public:
  explicit Sema(const ProgramAst& program);

  // Runs all checks; throws CompileError on the first violation.
  void check();

 private:
  struct Context {
    int pardo_depth = 0;
    int do_depth = 0;
    bool in_proc = false;
  };

  void check_declarations();
  void check_body(const Body& body, Context context);
  void check_statement(const Stmt& stmt, Context& context);

  const IndexDecl& index_decl(const std::string& name, int line) const;
  const ArrayDecl& array_decl(const std::string& name, int line) const;
  void require_scalar(const std::string& name, int line) const;

  // Validates a block reference (rank, index types, subindex rules).
  void check_block_ref(const BlockRef& ref, bool allow_wildcard = false) const;
  // Effective index name list of a reference (wildcards excluded).
  std::vector<std::string> index_names(const BlockRef& ref) const;
  // True if the two references' index-name sets are equal (any order).
  static bool same_name_set(const std::vector<std::string>& a,
                            const std::vector<std::string>& b);

  void check_assign(const AssignStmt& node, int line) const;
  void check_expr(const Expr& expr) const;
  void check_contraction(const BlockRef& dst, const BlockRef& a,
                         const BlockRef& b, int line) const;

  const ProgramAst& program_;
  std::map<std::string, const IndexDecl*> indices_;
  std::map<std::string, const ArrayDecl*> arrays_;
  std::map<std::string, const ScalarDecl*> scalars_;
  std::map<std::string, const ProcDecl*> procs_;
};

// Convenience: run semantic checks on a parsed program.
void check_sial(const ProgramAst& program);

}  // namespace sia::sial
