#include "sial/diag.hpp"

#include <algorithm>
#include <sstream>

namespace sia::sial {

namespace {

const char* severity_name(Diag::Severity severity) {
  switch (severity) {
    case Diag::Severity::kNote: return "note";
    case Diag::Severity::kWarning: return "warning";
    case Diag::Severity::kError: return "error";
  }
  return "?";
}

// The 1-based line `line` of `source` (without its newline); empty when
// out of range.
std::string source_line(const std::string& source, int line) {
  int current = 1;
  std::size_t begin = 0;
  while (current < line) {
    const std::size_t nl = source.find('\n', begin);
    if (nl == std::string::npos) return {};
    begin = nl + 1;
    ++current;
  }
  std::size_t end = source.find('\n', begin);
  if (end == std::string::npos) end = source.size();
  std::string text = source.substr(begin, end - begin);
  if (!text.empty() && text.back() == '\r') text.pop_back();
  return text;
}

// One location + message + caret snippet. A multi-line range carets the
// start line from its column to the end of that line's text.
void render_one(std::ostream& out, const std::string& file,
                const std::string& source, Diag::Severity severity,
                const SrcRange& range, const std::string& message,
                const std::string& code) {
  out << file << ":";
  if (range.valid()) {
    out << range.line << ":" << range.col << ": ";
  } else {
    out << " ";
  }
  out << severity_name(severity) << ": " << message;
  if (!code.empty()) out << " [" << code << "]";
  out << "\n";
  if (!range.valid() || source.empty()) return;

  const std::string text = source_line(source, range.line);
  if (text.empty()) return;
  out << "    " << text << "\n";

  const int len = static_cast<int>(text.size());
  const int start = std::clamp(range.col, 1, len);
  int end = range.end_line == range.line ? range.end_col : len + 1;
  end = std::clamp(end, start + 1, len + 1);
  std::string caret(static_cast<std::size_t>(start - 1), ' ');
  caret += '^';
  caret.append(static_cast<std::size_t>(end - start - 1), '~');
  out << "    " << caret << "\n";
}

}  // namespace

std::string render_diag(const Diag& diag, const std::string& source,
                        const std::string& file) {
  std::ostringstream out;
  render_one(out, file, source, diag.severity, diag.range, diag.message,
             diag.code);
  for (const Diag::Note& note : diag.notes) {
    render_one(out, file, source, Diag::Severity::kNote, note.range,
               note.message, "");
  }
  return out.str();
}

std::string render_diags(const std::vector<Diag>& diags,
                         const std::string& source,
                         const std::string& file) {
  std::string out;
  for (const Diag& diag : diags) out += render_diag(diag, source, file);
  return out;
}

}  // namespace sia::sial
