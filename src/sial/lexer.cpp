#include "sial/lexer.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstdlib>

#include "common/error.hpp"

namespace sia::sial {

namespace {

constexpr std::array kReserved = {
    "sial", "endsial", "index", "aoindex", "moindex", "moaindex", "mobindex",
    "subindex", "of", "scalar", "static", "temp", "local", "distributed",
    "served", "sparse", "proc", "endproc", "call", "pardo", "endpardo",
    "do", "enddo",
    "in", "where", "if", "else", "endif", "get", "put", "request", "prepare",
    "allocate", "deallocate", "create", "delete", "execute", "sip_barrier",
    "server_barrier", "collective", "print", "println", "exit",
    "checkpoint", "restore",
};

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

bool is_reserved_word(const std::string& word) {
  return std::find(kReserved.begin(), kReserved.end(), word) !=
         kReserved.end();
}

const char* token_kind_name(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEof: return "end of file";
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kInteger: return "integer";
    case TokenKind::kFloat: return "float";
    case TokenKind::kString: return "string";
    case TokenKind::kKeyword: return "keyword";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kComma: return "','";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kAssign: return "'='";
    case TokenKind::kPlusAssign: return "'+='";
    case TokenKind::kMinusAssign: return "'-='";
    case TokenKind::kStarAssign: return "'*='";
    case TokenKind::kLess: return "'<'";
    case TokenKind::kLessEq: return "'<='";
    case TokenKind::kGreater: return "'>'";
    case TokenKind::kGreaterEq: return "'>='";
    case TokenKind::kEqEq: return "'=='";
    case TokenKind::kNotEq: return "'!='";
    case TokenKind::kNewline: return "end of line";
  }
  return "?";
}

Lexer::Lexer(std::string source) : source_(std::move(source)) {}

char Lexer::peek(int ahead) const {
  const std::size_t p = pos_ + static_cast<std::size_t>(ahead);
  return p < source_.size() ? source_[p] : '\0';
}

char Lexer::advance() {
  const char c = source_[pos_++];
  if (c == '\n') ++line_;
  return c;
}

bool Lexer::at_end() const { return pos_ >= source_.size(); }

void Lexer::skip_spaces_and_comments() {
  while (!at_end()) {
    const char c = peek();
    if (c == ' ' || c == '\t' || c == '\r') {
      advance();
    } else if (c == '#') {
      while (!at_end() && peek() != '\n') advance();
    } else {
      return;
    }
  }
}

Token Lexer::lex_number() {
  const int line = line_;
  std::string text;
  bool is_float = false;
  while (!at_end() && (std::isdigit(static_cast<unsigned char>(peek())) ||
                       peek() == '.')) {
    if (peek() == '.') {
      if (is_float) break;
      is_float = true;
    }
    text += advance();
  }
  if (!at_end() && (peek() == 'e' || peek() == 'E')) {
    // Exponent: e[+-]?digits
    std::size_t save = pos_;
    std::string exp;
    exp += advance();
    if (!at_end() && (peek() == '+' || peek() == '-')) exp += advance();
    if (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
        exp += advance();
      }
      text += exp;
      is_float = true;
    } else {
      pos_ = save;
    }
  }
  Token token;
  token.line = line;
  if (is_float) {
    token.kind = TokenKind::kFloat;
    token.float_value = std::strtod(text.c_str(), nullptr);
  } else {
    token.kind = TokenKind::kInteger;
    token.int_value = std::strtol(text.c_str(), nullptr, 10);
  }
  return token;
}

Token Lexer::lex_word() {
  const int line = line_;
  std::string text;
  while (!at_end() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                       peek() == '_')) {
    text += advance();
  }
  Token token;
  token.line = line;
  const std::string lower = to_lower(text);
  if (is_reserved_word(lower)) {
    token.kind = TokenKind::kKeyword;
    token.text = lower;
  } else {
    token.kind = TokenKind::kIdentifier;
    token.text = text;
  }
  return token;
}

Token Lexer::lex_string() {
  const int line = line_;
  advance();  // opening quote
  std::string text;
  while (!at_end() && peek() != '"' && peek() != '\n') {
    text += advance();
  }
  if (at_end() || peek() != '"') {
    throw CompileError("unterminated string literal", line);
  }
  advance();  // closing quote
  Token token;
  token.kind = TokenKind::kString;
  token.text = std::move(text);
  token.line = line;
  return token;
}

std::vector<Token> Lexer::tokenize() {
  std::vector<Token> tokens;
  auto push_simple = [&](TokenKind kind) {
    Token token;
    token.kind = kind;
    token.line = line_;
    tokens.push_back(token);
  };
  auto maybe_newline = [&] {
    if (!tokens.empty() && tokens.back().kind != TokenKind::kNewline) {
      push_simple(TokenKind::kNewline);
    }
  };

  while (true) {
    skip_spaces_and_comments();
    if (at_end()) break;
    const char c = peek();
    if (c == '\n') {
      advance();
      maybe_newline();
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      tokens.push_back(lex_number());
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      tokens.push_back(lex_word());
      continue;
    }
    if (c == '"') {
      tokens.push_back(lex_string());
      continue;
    }
    const int line = line_;
    advance();
    const char next = peek();
    switch (c) {
      case '(': push_simple(TokenKind::kLParen); break;
      case ')': push_simple(TokenKind::kRParen); break;
      case ',': push_simple(TokenKind::kComma); break;
      case '/': push_simple(TokenKind::kSlash); break;
      case '*':
        if (next == '=') { advance(); push_simple(TokenKind::kStarAssign); }
        else push_simple(TokenKind::kStar);
        break;
      case '+':
        if (next == '=') { advance(); push_simple(TokenKind::kPlusAssign); }
        else push_simple(TokenKind::kPlus);
        break;
      case '-':
        if (next == '=') { advance(); push_simple(TokenKind::kMinusAssign); }
        else push_simple(TokenKind::kMinus);
        break;
      case '=':
        if (next == '=') { advance(); push_simple(TokenKind::kEqEq); }
        else push_simple(TokenKind::kAssign);
        break;
      case '<':
        if (next == '=') { advance(); push_simple(TokenKind::kLessEq); }
        else push_simple(TokenKind::kLess);
        break;
      case '>':
        if (next == '=') { advance(); push_simple(TokenKind::kGreaterEq); }
        else push_simple(TokenKind::kGreater);
        break;
      case '!':
        if (next == '=') { advance(); push_simple(TokenKind::kNotEq); }
        else throw CompileError("unexpected character '!'", line);
        break;
      default:
        throw CompileError(std::string("unexpected character '") + c + "'",
                           line);
    }
  }
  maybe_newline();
  Token eof;
  eof.kind = TokenKind::kEof;
  eof.line = line_;
  tokens.push_back(eof);
  return tokens;
}

}  // namespace sia::sial
