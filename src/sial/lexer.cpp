#include "sial/lexer.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstdlib>

#include "common/error.hpp"

namespace sia::sial {

namespace {

constexpr std::array kReserved = {
    "sial", "endsial", "index", "aoindex", "moindex", "moaindex", "mobindex",
    "subindex", "of", "scalar", "static", "temp", "local", "distributed",
    "served", "sparse", "proc", "endproc", "call", "pardo", "endpardo",
    "do", "enddo",
    "in", "where", "if", "else", "endif", "get", "put", "request", "prepare",
    "allocate", "deallocate", "create", "delete", "execute", "sip_barrier",
    "server_barrier", "collective", "print", "println", "exit",
    "checkpoint", "restore",
};

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

bool is_reserved_word(const std::string& word) {
  return std::find(kReserved.begin(), kReserved.end(), word) !=
         kReserved.end();
}

const char* token_kind_name(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEof: return "end of file";
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kInteger: return "integer";
    case TokenKind::kFloat: return "float";
    case TokenKind::kString: return "string";
    case TokenKind::kKeyword: return "keyword";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kComma: return "','";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kAssign: return "'='";
    case TokenKind::kPlusAssign: return "'+='";
    case TokenKind::kMinusAssign: return "'-='";
    case TokenKind::kStarAssign: return "'*='";
    case TokenKind::kLess: return "'<'";
    case TokenKind::kLessEq: return "'<='";
    case TokenKind::kGreater: return "'>'";
    case TokenKind::kGreaterEq: return "'>='";
    case TokenKind::kEqEq: return "'=='";
    case TokenKind::kNotEq: return "'!='";
    case TokenKind::kNewline: return "end of line";
  }
  return "?";
}

Lexer::Lexer(std::string source) : source_(std::move(source)) {}

char Lexer::peek(int ahead) const {
  const std::size_t p = pos_ + static_cast<std::size_t>(ahead);
  return p < source_.size() ? source_[p] : '\0';
}

char Lexer::advance() {
  const char c = source_[pos_++];
  if (c == '\n') {
    ++line_;
    line_start_ = pos_;
  }
  return c;
}

int Lexer::column() const {
  return static_cast<int>(pos_ - line_start_) + 1;
}

bool Lexer::at_end() const { return pos_ >= source_.size(); }

void Lexer::skip_spaces_and_comments() {
  while (!at_end()) {
    const char c = peek();
    if (c == ' ' || c == '\t' || c == '\r') {
      advance();
    } else if (c == '#') {
      while (!at_end() && peek() != '\n') advance();
    } else {
      return;
    }
  }
}

Token Lexer::lex_number() {
  const int line = line_;
  const int col = column();
  std::string text;
  bool is_float = false;
  while (!at_end() && (std::isdigit(static_cast<unsigned char>(peek())) ||
                       peek() == '.')) {
    if (peek() == '.') {
      if (is_float) break;
      is_float = true;
    }
    text += advance();
  }
  if (!at_end() && (peek() == 'e' || peek() == 'E')) {
    // Exponent: e[+-]?digits
    std::size_t save = pos_;
    std::string exp;
    exp += advance();
    if (!at_end() && (peek() == '+' || peek() == '-')) exp += advance();
    if (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
        exp += advance();
      }
      text += exp;
      is_float = true;
    } else {
      pos_ = save;
    }
  }
  Token token;
  token.line = line;
  token.col = col;
  token.end_col = column();
  if (is_float) {
    token.kind = TokenKind::kFloat;
    token.float_value = std::strtod(text.c_str(), nullptr);
  } else {
    token.kind = TokenKind::kInteger;
    token.int_value = std::strtol(text.c_str(), nullptr, 10);
  }
  return token;
}

Token Lexer::lex_word() {
  const int line = line_;
  const int col = column();
  std::string text;
  while (!at_end() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                       peek() == '_')) {
    text += advance();
  }
  Token token;
  token.line = line;
  token.col = col;
  token.end_col = column();
  const std::string lower = to_lower(text);
  if (is_reserved_word(lower)) {
    token.kind = TokenKind::kKeyword;
    token.text = lower;
  } else {
    token.kind = TokenKind::kIdentifier;
    token.text = text;
  }
  return token;
}

Token Lexer::lex_string() {
  const int line = line_;
  const int col = column();
  advance();  // opening quote
  std::string text;
  while (!at_end() && peek() != '"' && peek() != '\n') {
    text += advance();
  }
  if (at_end() || peek() != '"') {
    throw CompileError("unterminated string literal", line, col);
  }
  advance();  // closing quote
  Token token;
  token.kind = TokenKind::kString;
  token.text = std::move(text);
  token.line = line;
  token.col = col;
  token.end_col = column();
  return token;
}

std::vector<Token> Lexer::tokenize() {
  std::vector<Token> tokens;
  // Punctuation tokens are pushed after their characters were consumed,
  // so the start position is captured by the caller; the end column is
  // wherever the cursor is now.
  auto push_at = [&](TokenKind kind, int line, int col) {
    Token token;
    token.kind = kind;
    token.line = line;
    token.col = col;
    token.end_col = column() > col ? column() : col + 1;
    tokens.push_back(token);
  };
  auto push_simple = [&](TokenKind kind) {
    push_at(kind, line_, column());
  };
  auto maybe_newline = [&] {
    if (!tokens.empty() && tokens.back().kind != TokenKind::kNewline) {
      push_simple(TokenKind::kNewline);
    }
  };

  while (true) {
    skip_spaces_and_comments();
    if (at_end()) break;
    const char c = peek();
    if (c == '\n') {
      advance();
      maybe_newline();
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      tokens.push_back(lex_number());
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      tokens.push_back(lex_word());
      continue;
    }
    if (c == '"') {
      tokens.push_back(lex_string());
      continue;
    }
    const int line = line_;
    const int col = column();
    advance();
    const char next = peek();
    switch (c) {
      case '(': push_at(TokenKind::kLParen, line, col); break;
      case ')': push_at(TokenKind::kRParen, line, col); break;
      case ',': push_at(TokenKind::kComma, line, col); break;
      case '/': push_at(TokenKind::kSlash, line, col); break;
      case '*':
        if (next == '=') { advance(); push_at(TokenKind::kStarAssign, line, col); }
        else push_at(TokenKind::kStar, line, col);
        break;
      case '+':
        if (next == '=') { advance(); push_at(TokenKind::kPlusAssign, line, col); }
        else push_at(TokenKind::kPlus, line, col);
        break;
      case '-':
        if (next == '=') { advance(); push_at(TokenKind::kMinusAssign, line, col); }
        else push_at(TokenKind::kMinus, line, col);
        break;
      case '=':
        if (next == '=') { advance(); push_at(TokenKind::kEqEq, line, col); }
        else push_at(TokenKind::kAssign, line, col);
        break;
      case '<':
        if (next == '=') { advance(); push_at(TokenKind::kLessEq, line, col); }
        else push_at(TokenKind::kLess, line, col);
        break;
      case '>':
        if (next == '=') { advance(); push_at(TokenKind::kGreaterEq, line, col); }
        else push_at(TokenKind::kGreater, line, col);
        break;
      case '!':
        if (next == '=') { advance(); push_at(TokenKind::kNotEq, line, col); }
        else throw CompileError("unexpected character '!'", line, col);
        break;
      default:
        throw CompileError(std::string("unexpected character '") + c + "'",
                           line, col);
    }
  }
  maybe_newline();
  Token eof;
  eof.kind = TokenKind::kEof;
  eof.line = line_;
  eof.col = column();
  eof.end_col = column() + 1;
  tokens.push_back(eof);
  return tokens;
}

}  // namespace sia::sial
