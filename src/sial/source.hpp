// Source locations for SIAL diagnostics.
//
// A SrcRange is a half-open [start, end) span over the original source
// text, tracked as 1-based line/column pairs. The lexer stamps every
// token with its range; the parser unions token ranges into statement
// and block-reference ranges; the compiler copies statement ranges onto
// the bytecode instructions it emits, so the optimizer's diagnostics and
// the executor's error attribution can point back at the exact span of
// SIAL text with caret accuracy.
#pragma once

namespace sia::sial {

struct SrcRange {
  int line = 0;      // 1-based; 0 = unknown
  int col = 0;       // 1-based start column
  int end_line = 0;  // line of the last covered character
  int end_col = 0;   // column one past the last covered character

  bool valid() const { return line > 0; }

  // The union of two ranges (either may be invalid).
  static SrcRange merge(const SrcRange& a, const SrcRange& b) {
    if (!a.valid()) return b;
    if (!b.valid()) return a;
    SrcRange out = a;
    if (b.line < out.line || (b.line == out.line && b.col < out.col)) {
      out.line = b.line;
      out.col = b.col;
    }
    if (b.end_line > out.end_line ||
        (b.end_line == out.end_line && b.end_col > out.end_col)) {
      out.end_line = b.end_line;
      out.end_col = b.end_col;
    }
    return out;
  }
};

}  // namespace sia::sial
