#include "sial/parser.hpp"

#include "common/error.hpp"
#include "sial/lexer.hpp"

namespace sia::sial {

namespace {

// Scalar functions accepted in expressions.
bool is_builtin_function(const std::string& name) {
  return name == "sqrt" || name == "abs" || name == "exp";
}

}  // namespace

const char* index_type_name(IndexType type) {
  switch (type) {
    case IndexType::kSimple: return "index";
    case IndexType::kAo: return "aoindex";
    case IndexType::kMo: return "moindex";
    case IndexType::kMoa: return "moaindex";
    case IndexType::kMob: return "mobindex";
    case IndexType::kSub: return "subindex";
  }
  return "?";
}

const char* array_kind_name(ArrayKind kind) {
  switch (kind) {
    case ArrayKind::kStatic: return "static";
    case ArrayKind::kTemp: return "temp";
    case ArrayKind::kLocal: return "local";
    case ArrayKind::kDistributed: return "distributed";
    case ArrayKind::kServed: return "served";
  }
  return "?";
}

const char* cmp_op_name(CmpOp op) {
  switch (op) {
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
    case CmpOp::kEq: return "==";
    case CmpOp::kNe: return "!=";
  }
  return "?";
}

Parser::Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

const Token& Parser::peek(int ahead) const {
  const std::size_t p = pos_ + static_cast<std::size_t>(ahead);
  return p < tokens_.size() ? tokens_[p] : tokens_.back();
}

const Token& Parser::advance() {
  const Token& token = tokens_[pos_];
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return token;
}

bool Parser::check(TokenKind kind) const { return peek().kind == kind; }

bool Parser::check_keyword(const char* word) const {
  return peek().is_keyword(word);
}

bool Parser::match(TokenKind kind) {
  if (!check(kind)) return false;
  advance();
  return true;
}

bool Parser::match_keyword(const char* word) {
  if (!check_keyword(word)) return false;
  advance();
  return true;
}

const Token& Parser::expect(TokenKind kind, const std::string& context) {
  if (!check(kind)) {
    fail("expected " + std::string(token_kind_name(kind)) + " " + context +
         ", found " + token_kind_name(peek().kind) +
         (peek().text.empty() ? "" : " '" + peek().text + "'"));
  }
  return advance();
}

const Token& Parser::expect_keyword(const char* word) {
  if (!check_keyword(word)) {
    fail("expected '" + std::string(word) + "', found " +
         std::string(token_kind_name(peek().kind)) +
         (peek().text.empty() ? "" : " '" + peek().text + "'"));
  }
  return advance();
}

std::string Parser::expect_identifier(const std::string& context) {
  if (!check(TokenKind::kIdentifier)) {
    fail("expected identifier " + context + ", found " +
         std::string(token_kind_name(peek().kind)) +
         (peek().text.empty() ? "" : " '" + peek().text + "'"));
  }
  return advance().text;
}

void Parser::expect_statement_end() {
  if (check(TokenKind::kEof)) return;
  expect(TokenKind::kNewline, "at end of statement");
}

void Parser::skip_newlines() {
  while (match(TokenKind::kNewline)) {
  }
}

void Parser::fail(const std::string& message) const {
  throw CompileError(message, peek().line, peek().col);
}

SrcRange Parser::range_since(const Token& start) const {
  std::size_t p = pos_;
  while (p > 0 && tokens_[p - 1].kind == TokenKind::kNewline) --p;
  const Token& last = p > 0 ? tokens_[p - 1] : start;
  return SrcRange::merge(start.range(), last.range());
}

void Parser::declare(const std::string& name, NameKind kind, int line) {
  auto [it, inserted] = names_.emplace(name, kind);
  (void)it;
  if (!inserted) {
    throw CompileError("redeclaration of '" + name + "'", line);
  }
}

Parser::NameKind Parser::lookup(const std::string& name, int line) const {
  auto it = names_.find(name);
  if (it == names_.end()) {
    throw CompileError("undeclared identifier '" + name + "'", line);
  }
  return it->second;
}

bool Parser::is_declared(const std::string& name, NameKind kind) const {
  auto it = names_.find(name);
  return it != names_.end() && it->second == kind;
}

// ---------------------------------------------------------------------
// Program and declarations.

ProgramAst Parser::parse_program() {
  skip_newlines();
  expect_keyword("sial");
  program_.name = expect_identifier("after 'sial'");
  expect_statement_end();

  std::string terminator;
  program_.main = parse_body({"endsial"}, &terminator);
  skip_newlines();
  if (!check(TokenKind::kEof)) {
    fail("unexpected content after 'endsial'");
  }
  return std::move(program_);
}

void Parser::parse_index_decl(IndexType type) {
  IndexDecl decl;
  decl.type = type;
  decl.line = peek().line;
  decl.name = expect_identifier("as index name");
  expect(TokenKind::kAssign, "in index declaration");
  decl.low = parse_int_expr();
  expect(TokenKind::kComma, "between index bounds");
  decl.high = parse_int_expr();
  expect_statement_end();
  declare(decl.name, NameKind::kIndex, decl.line);
  program_.indices.push_back(std::move(decl));
}

void Parser::parse_subindex_decl() {
  IndexDecl decl;
  decl.type = IndexType::kSub;
  decl.line = peek().line;
  decl.name = expect_identifier("as subindex name");
  expect_keyword("of");
  decl.super = expect_identifier("as super index name");
  if (!is_declared(decl.super, NameKind::kIndex)) {
    throw CompileError(
        "subindex '" + decl.name + "' refers to undeclared index '" +
            decl.super + "'",
        decl.line);
  }
  expect_statement_end();
  declare(decl.name, NameKind::kIndex, decl.line);
  program_.indices.push_back(std::move(decl));
}

void Parser::parse_scalar_decl() {
  ScalarDecl decl;
  decl.line = peek().line;
  decl.name = expect_identifier("as scalar name");
  expect_statement_end();
  declare(decl.name, NameKind::kScalar, decl.line);
  program_.scalars.push_back(std::move(decl));
}

void Parser::parse_array_decl(ArrayKind kind, bool sparse) {
  ArrayDecl decl;
  decl.kind = kind;
  decl.sparse = sparse;
  decl.line = peek().line;
  decl.name = expect_identifier("as array name");
  expect(TokenKind::kLParen, "in array declaration");
  do {
    const std::string index = expect_identifier("as array dimension");
    if (!is_declared(index, NameKind::kIndex)) {
      throw CompileError("array '" + decl.name +
                             "' dimensioned with undeclared index '" + index +
                             "'",
                         decl.line);
    }
    decl.indices.push_back(index);
  } while (match(TokenKind::kComma));
  expect(TokenKind::kRParen, "after array dimensions");
  expect_statement_end();
  declare(decl.name, NameKind::kArray, decl.line);
  program_.arrays.push_back(std::move(decl));
}

void Parser::parse_proc_decl() {
  ProcDecl decl;
  decl.line = peek().line;
  decl.name = expect_identifier("as procedure name");
  declare(decl.name, NameKind::kProc, decl.line);
  expect_statement_end();
  std::string terminator;
  decl.body = parse_body({"endproc"}, &terminator);
  // Optional trailing name after endproc.
  if (check(TokenKind::kIdentifier)) advance();
  expect_statement_end();
  program_.procs.push_back(std::move(decl));
}

// ---------------------------------------------------------------------
// Statement bodies.

Body Parser::parse_body(const std::vector<std::string>& terminators,
                        std::string* which_terminator) {
  Body body;
  while (true) {
    skip_newlines();
    if (check(TokenKind::kEof)) {
      fail("unexpected end of file; expected '" + terminators.front() + "'");
    }
    for (const std::string& terminator : terminators) {
      if (check_keyword(terminator.c_str())) {
        if (which_terminator != nullptr) *which_terminator = terminator;
        advance();
        return body;
      }
    }
    // Declarations are only legal at the top level (terminator endsial).
    const bool top_level =
        terminators.size() == 1 && terminators.front() == "endsial";
    const Token& token = peek();
    if (token.kind == TokenKind::kKeyword) {
      auto decl_only_at_top = [&](const char* what) {
        if (!top_level) {
          fail(std::string(what) + " declarations are only allowed at the "
               "top level of the program");
        }
      };
      if (token.text == "index" || token.text == "aoindex" ||
          token.text == "moindex" || token.text == "moaindex" ||
          token.text == "mobindex") {
        decl_only_at_top("index");
        advance();
        IndexType type = IndexType::kSimple;
        if (token.text == "aoindex") type = IndexType::kAo;
        if (token.text == "moindex") type = IndexType::kMo;
        if (token.text == "moaindex") type = IndexType::kMoa;
        if (token.text == "mobindex") type = IndexType::kMob;
        parse_index_decl(type);
        continue;
      }
      if (token.text == "subindex") {
        decl_only_at_top("subindex");
        advance();
        parse_subindex_decl();
        continue;
      }
      if (token.text == "scalar") {
        decl_only_at_top("scalar");
        advance();
        parse_scalar_decl();
        continue;
      }
      if (token.text == "static" || token.text == "temp" ||
          token.text == "local" || token.text == "distributed" ||
          token.text == "served") {
        decl_only_at_top("array");
        advance();
        ArrayKind kind = ArrayKind::kStatic;
        if (token.text == "temp") kind = ArrayKind::kTemp;
        if (token.text == "local") kind = ArrayKind::kLocal;
        if (token.text == "distributed") kind = ArrayKind::kDistributed;
        if (token.text == "served") kind = ArrayKind::kServed;
        parse_array_decl(kind);
        continue;
      }
      if (token.text == "sparse") {
        // `sparse distributed A(i,j)` / `sparse served B(i,j)`: marks the
        // array as screenable under SipConfig::sparse_threshold.
        decl_only_at_top("array");
        advance();
        const Token& kind_token = peek();
        if (kind_token.kind != TokenKind::kKeyword ||
            (kind_token.text != "distributed" &&
             kind_token.text != "served")) {
          fail("'sparse' must be followed by 'distributed' or 'served'");
        }
        const ArrayKind kind = kind_token.text == "served"
                                   ? ArrayKind::kServed
                                   : ArrayKind::kDistributed;
        advance();
        parse_array_decl(kind, /*sparse=*/true);
        continue;
      }
      if (token.text == "proc") {
        decl_only_at_top("procedure");
        advance();
        parse_proc_decl();
        continue;
      }
    }
    body.stmts.push_back(parse_statement());
  }
}

StmtPtr Parser::parse_statement() {
  const int line = peek().line;
  const Token start = peek();
  auto make = [&](auto node) {
    auto stmt = std::make_unique<Stmt>();
    stmt->line = line;
    stmt->range = range_since(start);
    stmt->node = std::move(node);
    return stmt;
  };

  if (check_keyword("pardo")) return parse_pardo();
  if (check_keyword("do")) return parse_do();
  if (check_keyword("if")) return parse_if();

  if (match_keyword("call")) {
    CallStmt node;
    node.proc = expect_identifier("as procedure name");
    if (!is_declared(node.proc, NameKind::kProc)) {
      throw CompileError("call of undeclared procedure '" + node.proc + "'",
                         line);
    }
    expect_statement_end();
    return make(std::move(node));
  }
  if (match_keyword("get")) {
    GetStmt node;
    node.ref = parse_block_ref();
    expect_statement_end();
    return make(std::move(node));
  }
  if (match_keyword("put")) {
    PutStmt node;
    node.dst = parse_block_ref();
    if (match(TokenKind::kPlusAssign)) {
      node.accumulate = true;
    } else {
      expect(TokenKind::kAssign, "in put statement");
    }
    node.src = parse_block_ref();
    expect_statement_end();
    return make(std::move(node));
  }
  if (match_keyword("request")) {
    RequestStmt node;
    node.ref = parse_block_ref();
    expect_statement_end();
    return make(std::move(node));
  }
  if (match_keyword("prepare")) {
    PrepareStmt node;
    node.dst = parse_block_ref();
    if (match(TokenKind::kPlusAssign)) {
      node.accumulate = true;
    } else {
      expect(TokenKind::kAssign, "in prepare statement");
    }
    node.src = parse_block_ref();
    expect_statement_end();
    return make(std::move(node));
  }
  if (match_keyword("allocate")) {
    AllocateStmt node;
    node.ref = parse_block_ref(/*allow_wildcard=*/true);
    expect_statement_end();
    return make(std::move(node));
  }
  if (match_keyword("deallocate")) {
    DeallocateStmt node;
    node.ref = parse_block_ref(/*allow_wildcard=*/true);
    expect_statement_end();
    return make(std::move(node));
  }
  if (match_keyword("create")) {
    CreateStmt node;
    node.array = expect_identifier("as array name");
    expect_statement_end();
    return make(std::move(node));
  }
  if (match_keyword("delete")) {
    DeleteStmt node;
    node.array = expect_identifier("as array name");
    expect_statement_end();
    return make(std::move(node));
  }
  if (check_keyword("execute")) return parse_execute();
  if (match_keyword("sip_barrier")) {
    expect_statement_end();
    return make(BarrierStmt{/*server=*/false});
  }
  if (match_keyword("server_barrier")) {
    expect_statement_end();
    return make(BarrierStmt{/*server=*/true});
  }
  if (match_keyword("collective")) {
    CollectiveStmt node;
    node.dst = expect_identifier("as collective destination scalar");
    expect(TokenKind::kPlusAssign, "in collective statement");
    node.src = expect_identifier("as collective source scalar");
    expect_statement_end();
    return make(std::move(node));
  }
  if (match_keyword("print")) {
    PrintStmt node;
    node.value = parse_expr();
    expect_statement_end();
    return make(std::move(node));
  }
  if (match_keyword("println")) {
    PrintStmt node;
    node.text = expect(TokenKind::kString, "after println").text;
    expect_statement_end();
    return make(std::move(node));
  }
  if (match_keyword("checkpoint") || check_keyword("restore")) {
    CheckpointStmt node;
    node.is_restore = match_keyword("restore");
    node.array = expect_identifier("as array name");
    node.file = expect(TokenKind::kString, "as checkpoint file name").text;
    expect_statement_end();
    return make(std::move(node));
  }
  if (match_keyword("exit")) {
    expect_statement_end();
    return make(ExitStmt{});
  }

  if (check(TokenKind::kIdentifier)) return parse_assignment();

  fail("expected a statement");
}

StmtPtr Parser::parse_pardo() {
  const int line = peek().line;
  const Token start = peek();
  expect_keyword("pardo");
  PardoStmt node;

  // pardo ii in i  (subindex form) vs pardo i, j, k [where ...].
  const std::string first = expect_identifier("after pardo");
  if (check_keyword("in")) {
    advance();
    DoStmt sub;
    sub.parallel = true;
    sub.index = first;
    sub.super = expect_identifier("after 'in'");
    expect_statement_end();
    std::string terminator;
    sub.body = parse_body({"endpardo"}, &terminator);
    while (check(TokenKind::kIdentifier) || check(TokenKind::kComma)) advance();
    expect_statement_end();
    auto stmt = std::make_unique<Stmt>();
    stmt->line = line;
    stmt->range = range_since(start);
    stmt->node = std::move(sub);
    return stmt;
  }

  node.indices.push_back(first);
  while (match(TokenKind::kComma)) {
    node.indices.push_back(expect_identifier("in pardo index list"));
  }
  while (check_keyword("where")) {
    node.wheres.push_back(parse_where_clause());
    match(TokenKind::kComma);
  }
  expect_statement_end();
  std::string terminator;
  node.body = parse_body({"endpardo"}, &terminator);
  // Optional repeated index list after endpardo.
  while (check(TokenKind::kIdentifier) || check(TokenKind::kComma)) advance();
  expect_statement_end();

  auto stmt = std::make_unique<Stmt>();
  stmt->line = line;
  stmt->range = range_since(start);
  stmt->node = std::move(node);
  return stmt;
}

StmtPtr Parser::parse_do() {
  const int line = peek().line;
  const Token start = peek();
  expect_keyword("do");
  DoStmt node;
  node.index = expect_identifier("after do");
  if (match_keyword("in")) {
    node.super = expect_identifier("after 'in'");
  }
  expect_statement_end();
  std::string terminator;
  node.body = parse_body({"enddo"}, &terminator);
  while (check(TokenKind::kIdentifier) || check(TokenKind::kComma)) advance();
  expect_statement_end();

  auto stmt = std::make_unique<Stmt>();
  stmt->line = line;
  stmt->range = range_since(start);
  stmt->node = std::move(node);
  return stmt;
}

StmtPtr Parser::parse_if() {
  const int line = peek().line;
  const Token start = peek();
  expect_keyword("if");
  IfStmt node;
  node.cond = parse_expr();
  expect_statement_end();
  std::string terminator;
  node.then_body = parse_body({"else", "endif"}, &terminator);
  if (terminator == "else") {
    expect_statement_end();
    node.else_body = parse_body({"endif"}, &terminator);
  }
  expect_statement_end();

  auto stmt = std::make_unique<Stmt>();
  stmt->line = line;
  stmt->range = range_since(start);
  stmt->node = std::move(node);
  return stmt;
}

BlockRef Parser::parse_block_ref(bool allow_wildcard) {
  BlockRef ref;
  const Token start = peek();
  ref.line = peek().line;
  ref.array = expect_identifier("as array name");
  if (!is_declared(ref.array, NameKind::kArray)) {
    throw CompileError("'" + ref.array + "' is not a declared array",
                       ref.line);
  }
  expect(TokenKind::kLParen, "in block reference");
  do {
    if (allow_wildcard && match(TokenKind::kStar)) {
      ref.indices.push_back("*");
    } else {
      ref.indices.push_back(expect_identifier("as block index"));
    }
  } while (match(TokenKind::kComma));
  expect(TokenKind::kRParen, "after block indices");
  ref.range = range_since(start);
  return ref;
}

CmpOp Parser::parse_cmp_op() {
  if (match(TokenKind::kLess)) return CmpOp::kLt;
  if (match(TokenKind::kLessEq)) return CmpOp::kLe;
  if (match(TokenKind::kGreater)) return CmpOp::kGt;
  if (match(TokenKind::kGreaterEq)) return CmpOp::kGe;
  if (match(TokenKind::kEqEq)) return CmpOp::kEq;
  if (match(TokenKind::kNotEq)) return CmpOp::kNe;
  fail("expected a comparison operator");
}

WhereClause Parser::parse_where_clause() {
  WhereClause clause;
  clause.line = peek().line;
  expect_keyword("where");
  clause.lhs = expect_identifier("on left of where comparison");
  clause.op = parse_cmp_op();
  if (check(TokenKind::kIdentifier) &&
      is_declared(peek().text, NameKind::kIndex)) {
    clause.rhs_index = advance().text;
  } else {
    clause.rhs_const = parse_int_expr();
  }
  return clause;
}

StmtPtr Parser::parse_assignment() {
  const int line = peek().line;
  const Token start = peek();
  AssignStmt node;

  const std::string target = peek().text;
  const NameKind kind = lookup(target, line);
  if (kind == NameKind::kArray) {
    node.dst_block = parse_block_ref();
  } else if (kind == NameKind::kScalar) {
    advance();
    node.dst_scalar = target;
  } else {
    fail("cannot assign to '" + target + "'");
  }

  if (match(TokenKind::kAssign)) {
    node.op = AssignStmt::Op::kAssign;
  } else if (match(TokenKind::kPlusAssign)) {
    node.op = AssignStmt::Op::kPlusAssign;
  } else if (match(TokenKind::kMinusAssign)) {
    node.op = AssignStmt::Op::kMinusAssign;
  } else if (match(TokenKind::kStarAssign)) {
    node.op = AssignStmt::Op::kStarAssign;
  } else {
    fail("expected an assignment operator");
  }

  // Scalar destination: the RHS is always a scalar expression (which may
  // contain full-contraction block dots).
  if (!node.dst_block.has_value()) {
    node.rhs = AssignStmt::Rhs::kScalarExpr;
    node.scalar = parse_expr();
    expect_statement_end();
    auto stmt = std::make_unique<Stmt>();
    stmt->line = line;
    stmt->range = range_since(start);
    stmt->node = std::move(node);
    return stmt;
  }

  // Block destination. If the RHS starts with an array name it is a block
  // form; otherwise it is a scalar expression, possibly followed by
  // '* block' (scaled copy).
  if (check(TokenKind::kIdentifier) &&
      is_declared(peek().text, NameKind::kArray)) {
    node.a = parse_block_ref();
    if (match(TokenKind::kStar)) {
      // block * block (contraction) or block * scalar-expression (scale).
      if (check(TokenKind::kIdentifier) &&
          is_declared(peek().text, NameKind::kArray)) {
        node.rhs = AssignStmt::Rhs::kBlockBinary;
        node.block_op = BinOp::kMul;
        node.b = parse_block_ref();
      } else {
        node.rhs = AssignStmt::Rhs::kScaledBlock;
        node.b = node.a;
        node.scalar = parse_expr();
      }
    } else if (match(TokenKind::kPlus)) {
      node.rhs = AssignStmt::Rhs::kBlockBinary;
      node.block_op = BinOp::kAdd;
      node.b = parse_block_ref();
    } else if (match(TokenKind::kMinus)) {
      node.rhs = AssignStmt::Rhs::kBlockBinary;
      node.block_op = BinOp::kSub;
      node.b = parse_block_ref();
    } else {
      node.rhs = AssignStmt::Rhs::kBlockCopy;
    }
  } else {
    node.scalar = parse_expr();
    if (match(TokenKind::kStar)) {
      node.rhs = AssignStmt::Rhs::kScaledBlock;
      node.b = parse_block_ref();
    } else {
      node.rhs = AssignStmt::Rhs::kScalarExpr;
    }
  }
  expect_statement_end();

  auto stmt = std::make_unique<Stmt>();
  stmt->line = line;
  stmt->range = range_since(start);
  stmt->node = std::move(node);
  return stmt;
}

StmtPtr Parser::parse_execute() {
  const int line = peek().line;
  const Token start = peek();
  expect_keyword("execute");
  ExecuteStmt node;
  node.name = expect_identifier("as super instruction name");
  while (!check(TokenKind::kNewline) && !check(TokenKind::kEof)) {
    ExecArg arg;
    arg.line = peek().line;
    if (check(TokenKind::kString)) {
      arg.kind = ExecArg::Kind::kString;
      arg.text = advance().text;
    } else if (check(TokenKind::kInteger)) {
      arg.kind = ExecArg::Kind::kNumber;
      arg.number = static_cast<double>(advance().int_value);
    } else if (check(TokenKind::kFloat)) {
      arg.kind = ExecArg::Kind::kNumber;
      arg.number = advance().float_value;
    } else if (check(TokenKind::kIdentifier)) {
      const std::string name = peek().text;
      const NameKind kind = lookup(name, arg.line);
      if (kind == NameKind::kArray) {
        arg.kind = ExecArg::Kind::kBlock;
        arg.block = parse_block_ref();
      } else if (kind == NameKind::kScalar) {
        advance();
        arg.kind = ExecArg::Kind::kScalar;
        arg.name = name;
      } else {
        fail("execute argument '" + name + "' must be an array or scalar");
      }
    } else {
      fail("bad execute argument");
    }
    node.args.push_back(std::move(arg));
    match(TokenKind::kComma);
  }
  expect_statement_end();

  auto stmt = std::make_unique<Stmt>();
  stmt->line = line;
  stmt->range = range_since(start);
  stmt->node = std::move(node);
  return stmt;
}

// ---------------------------------------------------------------------
// Integer constant expressions (index bounds).

IntExpr Parser::parse_int_expr() {
  IntExpr lhs = parse_int_term();
  while (check(TokenKind::kPlus) || check(TokenKind::kMinus)) {
    const bool plus = advance().kind == TokenKind::kPlus;
    IntExpr node;
    node.kind = plus ? IntExpr::Kind::kAdd : IntExpr::Kind::kSub;
    node.line = peek().line;
    node.lhs = std::make_unique<IntExpr>(std::move(lhs));
    node.rhs = std::make_unique<IntExpr>(parse_int_term());
    lhs = std::move(node);
  }
  return lhs;
}

IntExpr Parser::parse_int_term() {
  IntExpr lhs = parse_int_primary();
  while (check(TokenKind::kStar) || check(TokenKind::kSlash)) {
    const bool mul = advance().kind == TokenKind::kStar;
    IntExpr node;
    node.kind = mul ? IntExpr::Kind::kMul : IntExpr::Kind::kDiv;
    node.line = peek().line;
    node.lhs = std::make_unique<IntExpr>(std::move(lhs));
    node.rhs = std::make_unique<IntExpr>(parse_int_primary());
    lhs = std::move(node);
  }
  return lhs;
}

IntExpr Parser::parse_int_primary() {
  IntExpr node;
  node.line = peek().line;
  if (check(TokenKind::kInteger)) {
    node.kind = IntExpr::Kind::kLiteral;
    node.literal = advance().int_value;
    return node;
  }
  if (check(TokenKind::kIdentifier)) {
    node.kind = IntExpr::Kind::kConstant;
    node.constant = advance().text;
    return node;
  }
  if (match(TokenKind::kLParen)) {
    node = parse_int_expr();
    expect(TokenKind::kRParen, "in constant expression");
    return node;
  }
  fail("expected an integer constant expression");
}

// ---------------------------------------------------------------------
// Runtime scalar expressions.

ExprPtr Parser::parse_expr() {
  ExprPtr lhs = parse_additive();
  if (check(TokenKind::kLess) || check(TokenKind::kLessEq) ||
      check(TokenKind::kGreater) || check(TokenKind::kGreaterEq) ||
      check(TokenKind::kEqEq) || check(TokenKind::kNotEq)) {
    auto node = std::make_unique<Expr>();
    node->kind = Expr::Kind::kCompare;
    node->line = peek().line;
    node->cmpop = parse_cmp_op();
    node->lhs = std::move(lhs);
    node->rhs = parse_additive();
    return node;
  }
  return lhs;
}

ExprPtr Parser::parse_additive() {
  ExprPtr lhs = parse_multiplicative();
  while (check(TokenKind::kPlus) || check(TokenKind::kMinus)) {
    const bool plus = advance().kind == TokenKind::kPlus;
    auto node = std::make_unique<Expr>();
    node->kind = Expr::Kind::kBinary;
    node->binop = plus ? BinOp::kAdd : BinOp::kSub;
    node->line = peek().line;
    node->lhs = std::move(lhs);
    node->rhs = parse_multiplicative();
    lhs = std::move(node);
  }
  return lhs;
}

ExprPtr Parser::parse_multiplicative() {
  ExprPtr lhs = parse_unary();
  while (check(TokenKind::kStar) || check(TokenKind::kSlash)) {
    // Ambiguity: `expr * array(...)` is either the start of a block dot
    // product (`expr * a(...) * b(...)`, a scalar) or the tail of a
    // scaled-block assignment (`t(i,j) = 2.0 * x(i,j)`), which belongs to
    // the enclosing assignment. Look ahead across the block reference: a
    // second '*' followed by an array means dot product; otherwise back
    // off and let the assignment statement consume the `* block` tail.
    if (check(TokenKind::kStar) && peek(1).kind == TokenKind::kIdentifier &&
        is_declared(peek(1).text, NameKind::kArray)) {
      const std::size_t save = pos_;
      advance();  // '*'
      auto dot = std::make_unique<Expr>();
      dot->kind = Expr::Kind::kBlockDot;
      dot->line = peek().line;
      dot->a = parse_block_ref();
      if (check(TokenKind::kStar) &&
          peek(1).kind == TokenKind::kIdentifier &&
          is_declared(peek(1).text, NameKind::kArray)) {
        advance();  // '*'
        dot->b = parse_block_ref();
        auto product = std::make_unique<Expr>();
        product->kind = Expr::Kind::kBinary;
        product->binop = BinOp::kMul;
        product->line = dot->line;
        product->lhs = std::move(lhs);
        product->rhs = std::move(dot);
        lhs = std::move(product);
        continue;
      }
      pos_ = save;  // scaled-block tail; not part of this expression
      return lhs;
    }
    const bool mul = advance().kind == TokenKind::kStar;
    auto node = std::make_unique<Expr>();
    node->kind = Expr::Kind::kBinary;
    node->binop = mul ? BinOp::kMul : BinOp::kDiv;
    node->line = peek().line;
    node->lhs = std::move(lhs);
    node->rhs = parse_unary();
    lhs = std::move(node);
  }
  return lhs;
}

ExprPtr Parser::parse_unary() {
  if (check(TokenKind::kMinus)) {
    auto node = std::make_unique<Expr>();
    node->kind = Expr::Kind::kNeg;
    node->line = advance().line;
    node->lhs = parse_unary();
    return node;
  }
  return parse_primary();
}

ExprPtr Parser::parse_primary() {
  auto node = std::make_unique<Expr>();
  node->line = peek().line;
  if (check(TokenKind::kFloat)) {
    node->kind = Expr::Kind::kNumber;
    node->number = advance().float_value;
    return node;
  }
  if (check(TokenKind::kInteger)) {
    node->kind = Expr::Kind::kNumber;
    node->number = static_cast<double>(advance().int_value);
    return node;
  }
  if (match(TokenKind::kLParen)) {
    node = parse_expr();
    expect(TokenKind::kRParen, "in expression");
    return node;
  }
  if (check(TokenKind::kIdentifier)) {
    const std::string name = peek().text;
    if (is_builtin_function(name) && peek(1).kind == TokenKind::kLParen) {
      advance();
      advance();
      node->kind = Expr::Kind::kFunc;
      node->name = name;
      node->lhs = parse_expr();
      expect(TokenKind::kRParen, "after function argument");
      return node;
    }
    if (is_declared(name, NameKind::kArray)) {
      // Full contraction: array(...) * array(...) yielding a scalar.
      node->kind = Expr::Kind::kBlockDot;
      node->a = parse_block_ref();
      expect(TokenKind::kStar, "in block dot product");
      node->b = parse_block_ref();
      return node;
    }
    advance();
    node->kind = Expr::Kind::kName;
    node->name = name;
    return node;
  }
  fail("expected an expression");
}

ProgramAst parse_sial(const std::string& source) {
  Lexer lexer(source);
  Parser parser(lexer.tokenize());
  return parser.parse_program();
}

}  // namespace sia::sial
