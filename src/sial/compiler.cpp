#include "sial/compiler.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "sial/parser.hpp"
#include "sial/sema.hpp"

namespace sia::sial {
namespace {

class Compiler {
 public:
  explicit Compiler(const ProgramAst& ast) : ast_(ast) {}

  CompiledProgram run() {
    build_tables();
    compile_body(ast_.main);
    emit(Opcode::kHalt, 0);
    compile_procs();
    return std::move(program_);
  }

 private:
  // -------------------------------------------------------------------
  // Tables.

  void build_tables() {
    program_.name = ast_.name;
    for (const IndexDecl& decl : ast_.indices) {
      IndexInfo info;
      info.name = decl.name;
      info.type = decl.type;
      info.low = decl.low;
      info.high = decl.high;
      program_.indices.push_back(std::move(info));
      register_int_expr_constants(decl.low);
      register_int_expr_constants(decl.high);
    }
    // Resolve subindex super ids in a second pass (supers precede subs by
    // declaration order, but be permissive).
    for (std::size_t i = 0; i < ast_.indices.size(); ++i) {
      if (ast_.indices[i].type == IndexType::kSub) {
        const int super = program_.index_id(ast_.indices[i].super);
        SIA_CHECK(super >= 0, "sema admitted unknown super index");
        program_.indices[i].super_id = super;
      }
    }
    for (const ArrayDecl& decl : ast_.arrays) {
      ArrayInfo info;
      info.name = decl.name;
      info.kind = decl.kind;
      info.sparse = decl.sparse;
      for (const std::string& index : decl.indices) {
        const int id = program_.index_id(index);
        SIA_CHECK(id >= 0, "sema admitted unknown array index");
        info.index_ids.push_back(id);
      }
      program_.arrays.push_back(std::move(info));
    }
    for (const ScalarDecl& decl : ast_.scalars) {
      program_.scalars.push_back(ScalarInfo{decl.name});
    }
    for (const ProcDecl& decl : ast_.procs) {
      program_.procs.push_back(ProcInfo{decl.name, -1});
    }
  }

  int constant_id(const std::string& name) {
    auto it = std::find(program_.constants.begin(), program_.constants.end(),
                        name);
    if (it != program_.constants.end()) {
      return static_cast<int>(it - program_.constants.begin());
    }
    program_.constants.push_back(name);
    return static_cast<int>(program_.constants.size() - 1);
  }

  void register_int_expr_constants(const IntExpr& expr) {
    if (expr.kind == IntExpr::Kind::kConstant) {
      constant_id(expr.constant);
    }
    if (expr.lhs) register_int_expr_constants(*expr.lhs);
    if (expr.rhs) register_int_expr_constants(*expr.rhs);
  }

  int string_id(const std::string& text) {
    auto it =
        std::find(program_.strings.begin(), program_.strings.end(), text);
    if (it != program_.strings.end()) {
      return static_cast<int>(it - program_.strings.begin());
    }
    program_.strings.push_back(text);
    return static_cast<int>(program_.strings.size() - 1);
  }

  int superinstruction_id(const std::string& name) {
    auto& table = program_.superinstructions;
    auto it = std::find(table.begin(), table.end(), name);
    if (it != table.end()) return static_cast<int>(it - table.begin());
    table.push_back(name);
    return static_cast<int>(table.size() - 1);
  }

  // -------------------------------------------------------------------
  // Emission helpers.

  int pc() const { return static_cast<int>(program_.code.size()); }

  Instruction& emit(Opcode op, int line) {
    Instruction instr;
    instr.op = op;
    instr.line = line;
    // Every instruction a statement lowers to carries the statement's
    // source span (compile_statement keeps current_range_ in sync).
    instr.range = current_range_;
    program_.code.push_back(std::move(instr));
    return program_.code.back();
  }

  BlockOperand make_operand(const BlockRef& ref) const {
    BlockOperand operand;
    operand.array_id = program_.array_id(ref.array);
    SIA_CHECK(operand.array_id >= 0, "sema admitted unknown array");
    operand.rank = static_cast<int>(ref.indices.size());
    for (std::size_t d = 0; d < ref.indices.size(); ++d) {
      if (ref.indices[d] == "*") {
        operand.index_ids[d] = kWildcardIndex;
      } else {
        const int id = program_.index_id(ref.indices[d]);
        SIA_CHECK(id >= 0, "sema admitted unknown index");
        operand.index_ids[d] = id;
      }
    }
    return operand;
  }

  static int assign_mode(AssignStmt::Op op) { return static_cast<int>(op); }

  // -------------------------------------------------------------------
  // Expressions.

  void compile_expr(const Expr& expr) {
    switch (expr.kind) {
      case Expr::Kind::kNumber: {
        emit(Opcode::kPushNumber, expr.line).f0 = expr.number;
        return;
      }
      case Expr::Kind::kName: {
        const int scalar = program_.scalar_id(expr.name);
        if (scalar >= 0) {
          emit(Opcode::kPushScalar, expr.line).a0 = scalar;
          return;
        }
        const int index = program_.index_id(expr.name);
        if (index >= 0) {
          emit(Opcode::kPushIndex, expr.line).a0 = index;
          return;
        }
        emit(Opcode::kPushConst, expr.line).a0 = constant_id(expr.name);
        return;
      }
      case Expr::Kind::kNeg:
        compile_expr(*expr.lhs);
        emit(Opcode::kNeg, expr.line);
        return;
      case Expr::Kind::kFunc: {
        compile_expr(*expr.lhs);
        if (expr.name == "sqrt") {
          emit(Opcode::kSqrt, expr.line);
        } else if (expr.name == "abs") {
          emit(Opcode::kAbs, expr.line);
        } else {
          emit(Opcode::kExpFn, expr.line);
        }
        return;
      }
      case Expr::Kind::kBinary: {
        compile_expr(*expr.lhs);
        compile_expr(*expr.rhs);
        switch (expr.binop) {
          case BinOp::kAdd: emit(Opcode::kAdd, expr.line); break;
          case BinOp::kSub: emit(Opcode::kSub, expr.line); break;
          case BinOp::kMul: emit(Opcode::kMul, expr.line); break;
          case BinOp::kDiv: emit(Opcode::kDiv, expr.line); break;
        }
        return;
      }
      case Expr::Kind::kCompare: {
        compile_expr(*expr.lhs);
        compile_expr(*expr.rhs);
        emit(Opcode::kCompare, expr.line).a0 = static_cast<int>(expr.cmpop);
        return;
      }
      case Expr::Kind::kBlockDot: {
        Instruction& instr = emit(Opcode::kBlockDot, expr.line);
        instr.blocks.push_back(make_operand(expr.a));
        instr.blocks.push_back(make_operand(expr.b));
        return;
      }
    }
  }

  // -------------------------------------------------------------------
  // Statements.

  struct LoopFrame {
    bool is_do = false;
    std::vector<int> exit_pcs;  // kExitLoop instructions to patch
  };

  void compile_body(const Body& body) {
    for (const StmtPtr& stmt : body.stmts) compile_statement(*stmt);
  }

  void compile_statement(const Stmt& stmt) {
    const int line = stmt.line;
    const SrcRange saved_range = current_range_;
    current_range_ = stmt.range;
    std::visit(
        [&](const auto& node) {
          using T = std::decay_t<decltype(node)>;
          if constexpr (std::is_same_v<T, PardoStmt>) {
            compile_pardo(node, line);
          } else if constexpr (std::is_same_v<T, DoStmt>) {
            compile_do(node, line);
          } else if constexpr (std::is_same_v<T, IfStmt>) {
            compile_if(node, line);
          } else if constexpr (std::is_same_v<T, CallStmt>) {
            int proc = -1;
            for (std::size_t i = 0; i < program_.procs.size(); ++i) {
              if (program_.procs[i].name == node.proc) {
                proc = static_cast<int>(i);
              }
            }
            SIA_CHECK(proc >= 0, "parser admitted unknown proc");
            emit(Opcode::kCall, line).a0 = proc;
          } else if constexpr (std::is_same_v<T, GetStmt>) {
            emit(Opcode::kGet, line).blocks.push_back(make_operand(node.ref));
          } else if constexpr (std::is_same_v<T, PutStmt>) {
            Instruction& instr = emit(Opcode::kPut, line);
            instr.a0 = node.accumulate ? 1 : 0;
            instr.blocks.push_back(make_operand(node.dst));
            instr.blocks.push_back(make_operand(node.src));
          } else if constexpr (std::is_same_v<T, RequestStmt>) {
            emit(Opcode::kRequest, line)
                .blocks.push_back(make_operand(node.ref));
          } else if constexpr (std::is_same_v<T, PrepareStmt>) {
            Instruction& instr = emit(Opcode::kPrepare, line);
            instr.a0 = node.accumulate ? 1 : 0;
            instr.blocks.push_back(make_operand(node.dst));
            instr.blocks.push_back(make_operand(node.src));
          } else if constexpr (std::is_same_v<T, AllocateStmt>) {
            emit(Opcode::kAllocate, line)
                .blocks.push_back(make_operand(node.ref));
          } else if constexpr (std::is_same_v<T, DeallocateStmt>) {
            emit(Opcode::kDeallocate, line)
                .blocks.push_back(make_operand(node.ref));
          } else if constexpr (std::is_same_v<T, CreateStmt>) {
            emit(Opcode::kCreate, line).a0 = program_.array_id(node.array);
          } else if constexpr (std::is_same_v<T, DeleteStmt>) {
            emit(Opcode::kDeleteArr, line).a0 = program_.array_id(node.array);
          } else if constexpr (std::is_same_v<T, AssignStmt>) {
            compile_assign(node, line);
          } else if constexpr (std::is_same_v<T, ExecuteStmt>) {
            Instruction& instr = emit(Opcode::kExecute, line);
            instr.a0 = superinstruction_id(node.name);
            for (const ExecArg& arg : node.args) {
              ExecOperand operand;
              switch (arg.kind) {
                case ExecArg::Kind::kBlock:
                  operand.kind = ExecOperand::Kind::kBlock;
                  operand.block = make_operand(arg.block);
                  break;
                case ExecArg::Kind::kScalar:
                  operand.kind = ExecOperand::Kind::kScalar;
                  operand.slot = program_.scalar_id(arg.name);
                  break;
                case ExecArg::Kind::kString:
                  operand.kind = ExecOperand::Kind::kString;
                  operand.slot = string_id(arg.text);
                  break;
                case ExecArg::Kind::kNumber:
                  operand.kind = ExecOperand::Kind::kNumber;
                  operand.number = arg.number;
                  break;
              }
              instr.eargs.push_back(std::move(operand));
            }
          } else if constexpr (std::is_same_v<T, BarrierStmt>) {
            emit(node.server ? Opcode::kServerBarrier : Opcode::kSipBarrier,
                 line);
          } else if constexpr (std::is_same_v<T, CollectiveStmt>) {
            Instruction& instr = emit(Opcode::kCollective, line);
            instr.a0 = program_.scalar_id(node.dst);
            instr.a1 = program_.scalar_id(node.src);
          } else if constexpr (std::is_same_v<T, PrintStmt>) {
            if (node.value) {
              compile_expr(*node.value);
              emit(Opcode::kPrintTop, line);
            } else {
              emit(Opcode::kPrintString, line).a0 = string_id(node.text);
            }
          } else if constexpr (std::is_same_v<T, CheckpointStmt>) {
            Instruction& instr = emit(
                node.is_restore ? Opcode::kRestoreArr : Opcode::kCheckpoint,
                line);
            instr.a0 = program_.array_id(node.array);
            instr.a1 = string_id(node.file);
          } else if constexpr (std::is_same_v<T, ExitStmt>) {
            const int exit_pc = pc();
            emit(Opcode::kExitLoop, line);
            // Find the innermost do frame.
            for (auto it = loops_.rbegin(); it != loops_.rend(); ++it) {
              if (it->is_do) {
                it->exit_pcs.push_back(exit_pc);
                return;
              }
            }
            throw CompileError("'exit' outside of a do loop", line);
          }
        },
        stmt.node);
    current_range_ = saved_range;
  }

  void compile_pardo(const PardoStmt& node, int line) {
    PardoInfo info;
    for (const std::string& name : node.indices) {
      info.index_ids.push_back(program_.index_id(name));
    }
    for (const WhereClause& clause : node.wheres) {
      WhereOp where;
      where.lhs_index_id = program_.index_id(clause.lhs);
      where.op = clause.op;
      if (!clause.rhs_index.empty()) {
        where.rhs_is_index = true;
        where.rhs_index_id = program_.index_id(clause.rhs_index);
      } else {
        where.rhs_const = *clause.rhs_const;
        register_int_expr_constants(where.rhs_const);
      }
      info.wheres.push_back(std::move(where));
    }
    const int pardo_id = static_cast<int>(program_.pardos.size());
    program_.pardos.push_back(std::move(info));

    const int start_pc = pc();
    emit(Opcode::kPardoStart, line).a0 = pardo_id;
    loops_.push_back(LoopFrame{/*is_do=*/false, {}});
    compile_body(node.body);
    loops_.pop_back();
    const int end_pc = pc();
    Instruction& end = emit(Opcode::kPardoEnd, line);
    end.a0 = start_pc;
    end.a1 = pardo_id;
    program_.code[static_cast<std::size_t>(start_pc)].a1 = end_pc;
    program_.pardos[static_cast<std::size_t>(pardo_id)].start_pc = start_pc;
    program_.pardos[static_cast<std::size_t>(pardo_id)].end_pc = end_pc;
  }

  void compile_do(const DoStmt& node, int line) {
    if (node.parallel) {
      // pardo ii in i: scheduled like a pardo whose space is the
      // subsegments of the current segment of the super index.
      PardoInfo info;
      info.index_ids.push_back(program_.index_id(node.index));
      info.sub_of = program_.index_id(node.super);
      const int pardo_id = static_cast<int>(program_.pardos.size());
      program_.pardos.push_back(std::move(info));

      const int start_pc = pc();
      emit(Opcode::kPardoStart, line).a0 = pardo_id;
      loops_.push_back(LoopFrame{/*is_do=*/false, {}});
      compile_body(node.body);
      loops_.pop_back();
      const int end_pc = pc();
      Instruction& end = emit(Opcode::kPardoEnd, line);
      end.a0 = start_pc;
      end.a1 = pardo_id;
      program_.code[static_cast<std::size_t>(start_pc)].a1 = end_pc;
      program_.pardos[static_cast<std::size_t>(pardo_id)].start_pc = start_pc;
      program_.pardos[static_cast<std::size_t>(pardo_id)].end_pc = end_pc;
      return;
    }

    const int start_pc = pc();
    Instruction& start = emit(Opcode::kDoStart, line);
    start.a0 = program_.index_id(node.index);
    start.a2 = node.super.empty() ? -1 : program_.index_id(node.super);
    loops_.push_back(LoopFrame{/*is_do=*/true, {}});
    compile_body(node.body);
    LoopFrame frame = loops_.back();
    loops_.pop_back();
    const int end_pc = pc();
    emit(Opcode::kDoEnd, line).a0 = start_pc;
    program_.code[static_cast<std::size_t>(start_pc)].a1 = end_pc;
    for (const int exit_pc : frame.exit_pcs) {
      program_.code[static_cast<std::size_t>(exit_pc)].a0 = end_pc;
    }
  }

  void compile_if(const IfStmt& node, int line) {
    compile_expr(*node.cond);
    const int branch_pc = pc();
    emit(Opcode::kJumpIfFalse, line);
    compile_body(node.then_body);
    if (node.else_body.stmts.empty()) {
      program_.code[static_cast<std::size_t>(branch_pc)].a0 = pc();
      return;
    }
    const int jump_pc = pc();
    emit(Opcode::kJump, line);
    program_.code[static_cast<std::size_t>(branch_pc)].a0 = pc();
    compile_body(node.else_body);
    program_.code[static_cast<std::size_t>(jump_pc)].a0 = pc();
  }

  void compile_assign(const AssignStmt& node, int line) {
    if (!node.dst_block.has_value()) {
      compile_expr(*node.scalar);
      Instruction& instr = emit(Opcode::kStoreScalar, line);
      instr.a0 = program_.scalar_id(node.dst_scalar);
      instr.a1 = assign_mode(node.op);
      return;
    }
    const BlockOperand dst = make_operand(*node.dst_block);
    switch (node.rhs) {
      case AssignStmt::Rhs::kScalarExpr: {
        compile_expr(*node.scalar);
        Instruction& instr = emit(Opcode::kBlockScalarOp, line);
        instr.a0 = assign_mode(node.op);
        instr.blocks.push_back(dst);
        return;
      }
      case AssignStmt::Rhs::kBlockCopy: {
        Instruction& instr = emit(Opcode::kBlockCopy, line);
        instr.a0 = assign_mode(node.op);
        instr.blocks.push_back(dst);
        instr.blocks.push_back(make_operand(node.a));
        return;
      }
      case AssignStmt::Rhs::kScaledBlock: {
        compile_expr(*node.scalar);
        Instruction& instr = emit(Opcode::kBlockScaledCopy, line);
        instr.a0 = assign_mode(node.op);
        instr.blocks.push_back(dst);
        instr.blocks.push_back(make_operand(node.b));
        return;
      }
      case AssignStmt::Rhs::kBlockBinary: {
        Instruction& instr = emit(Opcode::kBlockBinary, line);
        instr.a0 = assign_mode(node.op);
        instr.a1 = static_cast<int>(node.block_op);
        instr.blocks.push_back(dst);
        instr.blocks.push_back(make_operand(node.a));
        instr.blocks.push_back(make_operand(node.b));
        return;
      }
    }
  }

  void compile_procs() {
    for (std::size_t i = 0; i < ast_.procs.size(); ++i) {
      program_.procs[i].entry_pc = pc();
      compile_body(ast_.procs[i].body);
      emit(Opcode::kReturn, ast_.procs[i].line);
    }
  }

  const ProgramAst& ast_;
  CompiledProgram program_;
  std::vector<LoopFrame> loops_;
  SrcRange current_range_;  // range of the statement being compiled
};

}  // namespace

CompiledProgram compile(const ProgramAst& program) {
  Compiler compiler(program);
  return compiler.run();
}

CompiledProgram compile_sial(const std::string& source) {
  ProgramAst ast = parse_sial(source);
  check_sial(ast);
  CompiledProgram program = compile(ast);
  program.source = source;
  return program;
}

}  // namespace sia::sial
