// Token definitions for the SIAL lexer.
#pragma once

#include <string>

#include "sial/source.hpp"

namespace sia::sial {

enum class TokenKind {
  kEof,
  kIdentifier,   // names: indices, arrays, scalars, procs
  kInteger,      // integer literal
  kFloat,        // floating literal (contains '.' or exponent)
  kString,       // "double quoted"
  kKeyword,      // reserved word (text in `text`)
  // Punctuation / operators.
  kLParen,       // (
  kRParen,       // )
  kComma,        // ,
  kStar,         // *
  kPlus,         // +
  kMinus,        // -
  kSlash,        // /
  kAssign,       // =
  kPlusAssign,   // +=
  kMinusAssign,  // -=
  kStarAssign,   // *=
  kLess,         // <
  kLessEq,       // <=
  kGreater,      // >
  kGreaterEq,    // >=
  kEqEq,         // ==
  kNotEq,        // !=
  kNewline,      // statement separator (newlines collapse)
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;     // identifier/keyword/string contents
  long int_value = 0;   // kInteger
  double float_value = 0.0;  // kFloat
  int line = 0;         // 1-based source line
  int col = 0;          // 1-based start column
  int end_col = 0;      // column one past the token's last character

  bool is_keyword(const char* word) const {
    return kind == TokenKind::kKeyword && text == word;
  }

  SrcRange range() const { return SrcRange{line, col, line, end_col}; }
};

// Keyword list; SIAL is case-insensitive for keywords (we lower-case
// identifiers that match). Returns true if `word` (lower case) is
// reserved.
bool is_reserved_word(const std::string& word);

const char* token_kind_name(TokenKind kind);

}  // namespace sia::sial
