#include "sial/sema.hpp"

#include <algorithm>
#include <set>

#include "common/error.hpp"

namespace sia::sial {

Sema::Sema(const ProgramAst& program) : program_(program) {
  for (const auto& decl : program_.indices) indices_[decl.name] = &decl;
  for (const auto& decl : program_.arrays) arrays_[decl.name] = &decl;
  for (const auto& decl : program_.scalars) scalars_[decl.name] = &decl;
  for (const auto& decl : program_.procs) procs_[decl.name] = &decl;
}

void Sema::check() {
  check_declarations();
  Context context;
  check_body(program_.main, context);
  for (const auto& proc : program_.procs) {
    Context proc_context;
    proc_context.in_proc = true;
    check_body(proc.body, proc_context);
  }
}

void Sema::check_declarations() {
  for (const auto& decl : program_.indices) {
    if (decl.type == IndexType::kSub) {
      const auto it = indices_.find(decl.super);
      SIA_CHECK(it != indices_.end(), "parser admitted unknown super index");
      if (it->second->type == IndexType::kSub) {
        throw CompileError("subindex '" + decl.name +
                               "' may not have another subindex as its super",
                           decl.line);
      }
    }
  }
  for (const auto& decl : program_.arrays) {
    if (decl.indices.empty()) {
      throw CompileError("array '" + decl.name + "' has no dimensions",
                         decl.line);
    }
    // The parser only attaches `sparse` to distributed/served
    // declarations; re-check here for programmatically built ASTs.
    if (decl.sparse && decl.kind != ArrayKind::kDistributed &&
        decl.kind != ArrayKind::kServed) {
      throw CompileError("array '" + decl.name +
                             "' may not be sparse: only distributed and "
                             "served arrays are screened",
                         decl.line);
    }
    if (decl.indices.size() > 6) {
      throw CompileError("array '" + decl.name + "' exceeds rank 6",
                         decl.line);
    }
    for (const std::string& index : decl.indices) {
      const IndexDecl& idx = index_decl(index, decl.line);
      if (idx.type == IndexType::kSub &&
          (decl.kind == ArrayKind::kDistributed ||
           decl.kind == ArrayKind::kServed)) {
        throw CompileError("distributed/served array '" + decl.name +
                               "' may not be declared with subindex '" +
                               index + "'",
                           decl.line);
      }
    }
  }
}

const IndexDecl& Sema::index_decl(const std::string& name, int line) const {
  const auto it = indices_.find(name);
  if (it == indices_.end()) {
    throw CompileError("'" + name + "' is not a declared index", line);
  }
  return *it->second;
}

const ArrayDecl& Sema::array_decl(const std::string& name, int line) const {
  const auto it = arrays_.find(name);
  if (it == arrays_.end()) {
    throw CompileError("'" + name + "' is not a declared array", line);
  }
  return *it->second;
}

void Sema::require_scalar(const std::string& name, int line) const {
  if (scalars_.find(name) == scalars_.end()) {
    throw CompileError("'" + name + "' is not a declared scalar", line);
  }
}

void Sema::check_block_ref(const BlockRef& ref, bool allow_wildcard) const {
  const ArrayDecl& array = array_decl(ref.array, ref.line);
  if (ref.indices.size() != array.indices.size()) {
    throw CompileError(
        "array '" + ref.array + "' has rank " +
            std::to_string(array.indices.size()) + " but is used with " +
            std::to_string(ref.indices.size()) + " indices",
        ref.line);
  }
  for (std::size_t d = 0; d < ref.indices.size(); ++d) {
    const std::string& name = ref.indices[d];
    if (name == "*") {
      if (!allow_wildcard) {
        throw CompileError(
            "wildcard '*' is only allowed in allocate/deallocate", ref.line);
      }
      continue;
    }
    const IndexDecl& used = index_decl(name, ref.line);
    const IndexDecl& declared = index_decl(array.indices[d], ref.line);

    if (declared.type == IndexType::kSub) {
      // Dimension declared over a subindex: a subindex of the same super
      // type is required.
      if (used.type != IndexType::kSub) {
        throw CompileError("dimension " + std::to_string(d + 1) + " of '" +
                               ref.array + "' requires a subindex, got '" +
                               name + "'",
                           ref.line);
      }
      const IndexDecl& used_super = index_decl(used.super, ref.line);
      const IndexDecl& decl_super = index_decl(declared.super, ref.line);
      if (used_super.type != decl_super.type) {
        throw CompileError("subindex '" + name + "' has super type " +
                               std::string(index_type_name(used_super.type)) +
                               " but dimension requires " +
                               index_type_name(decl_super.type),
                           ref.line);
      }
      continue;
    }

    if (used.type == IndexType::kSub) {
      // Slice/insert: subindex standing in for its super's type; only
      // meaningful for node-local array kinds.
      if (array.kind == ArrayKind::kDistributed ||
          array.kind == ArrayKind::kServed) {
        throw CompileError(
            "subindex '" + name + "' cannot address distributed/served "
            "array '" + ref.array + "'; copy the block to a temp first",
            ref.line);
      }
      const IndexDecl& super = index_decl(used.super, ref.line);
      if (super.type != declared.type) {
        throw CompileError(
            "subindex '" + name + "' (super type " +
                std::string(index_type_name(super.type)) +
                ") does not match dimension type " +
                index_type_name(declared.type),
            ref.line);
      }
      continue;
    }

    if (used.type != declared.type) {
      throw CompileError(
          "index '" + name + "' of type " +
              std::string(index_type_name(used.type)) +
              " used for dimension " + std::to_string(d + 1) + " of '" +
              ref.array + "' which requires " +
              index_type_name(declared.type),
          ref.line);
    }
  }
}

std::vector<std::string> Sema::index_names(const BlockRef& ref) const {
  std::vector<std::string> names;
  for (const std::string& name : ref.indices) {
    if (name != "*") names.push_back(name);
  }
  return names;
}

bool Sema::same_name_set(const std::vector<std::string>& a,
                         const std::vector<std::string>& b) {
  std::vector<std::string> sa = a, sb = b;
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  return sa == sb;
}

void Sema::check_contraction(const BlockRef& dst, const BlockRef& a,
                             const BlockRef& b, int line) const {
  const std::vector<std::string> na = index_names(a);
  const std::vector<std::string> nb = index_names(b);
  const std::vector<std::string> nd = index_names(dst);

  auto has_dups = [](std::vector<std::string> names) {
    std::sort(names.begin(), names.end());
    return std::adjacent_find(names.begin(), names.end()) != names.end();
  };
  if (has_dups(na) || has_dups(nb) || has_dups(nd)) {
    throw CompileError(
        "contraction operands may not repeat an index variable", line);
  }

  std::set<std::string> sa(na.begin(), na.end());
  std::set<std::string> sb(nb.begin(), nb.end());
  std::vector<std::string> expected;
  for (const auto& n : na) {
    if (sb.find(n) == sb.end()) expected.push_back(n);
  }
  for (const auto& n : nb) {
    if (sa.find(n) == sa.end()) expected.push_back(n);
  }
  if (!same_name_set(expected, nd)) {
    std::string want;
    for (const auto& n : expected) want += (want.empty() ? "" : ",") + n;
    throw CompileError(
        "contraction result of " + a.array + "*" + b.array +
            " must be indexed by {" + want + "}",
        line);
  }
}

void Sema::check_expr(const Expr& expr) const {
  switch (expr.kind) {
    case Expr::Kind::kNumber:
      return;
    case Expr::Kind::kName: {
      // Scalar variable, index value, or symbolic constant (resolved at
      // init). Arrays are a parse error here already; nothing to check
      // beyond "not an array".
      if (arrays_.find(expr.name) != arrays_.end()) {
        throw CompileError("array '" + expr.name +
                               "' cannot appear as a scalar value",
                           expr.line);
      }
      return;
    }
    case Expr::Kind::kNeg:
    case Expr::Kind::kFunc:
      check_expr(*expr.lhs);
      return;
    case Expr::Kind::kBinary:
    case Expr::Kind::kCompare:
      check_expr(*expr.lhs);
      check_expr(*expr.rhs);
      return;
    case Expr::Kind::kBlockDot: {
      check_block_ref(expr.a);
      check_block_ref(expr.b);
      if (!same_name_set(index_names(expr.a), index_names(expr.b))) {
        throw CompileError(
            "full contraction requires both blocks to use the same index "
            "variables",
            expr.line);
      }
      return;
    }
  }
}

void Sema::check_assign(const AssignStmt& node, int line) const {
  if (!node.dst_block.has_value()) {
    require_scalar(node.dst_scalar, line);
    SIA_CHECK(node.rhs == AssignStmt::Rhs::kScalarExpr,
              "scalar destination with block rhs");
    check_expr(*node.scalar);
    if (node.op == AssignStmt::Op::kStarAssign) {
      // fine: scalar *= expr
    }
    return;
  }

  const BlockRef& dst = *node.dst_block;
  check_block_ref(dst);
  const ArrayDecl& dst_array = array_decl(dst.array, dst.line);
  if (dst_array.kind == ArrayKind::kDistributed ||
      dst_array.kind == ArrayKind::kServed) {
    throw CompileError(
        "blocks of " + std::string(array_kind_name(dst_array.kind)) +
            " array '" + dst.array +
            "' must be written with put/prepare, not assignment",
        line);
  }

  switch (node.rhs) {
    case AssignStmt::Rhs::kScalarExpr:
      check_expr(*node.scalar);
      return;
    case AssignStmt::Rhs::kBlockCopy: {
      check_block_ref(node.a);
      if (!same_name_set(index_names(dst), index_names(node.a))) {
        throw CompileError(
            "block assignment requires both sides to use the same index "
            "variables (permutations allowed)",
            line);
      }
      if (node.op == AssignStmt::Op::kStarAssign) {
        throw CompileError("'*=' requires a scalar right-hand side", line);
      }
      return;
    }
    case AssignStmt::Rhs::kScaledBlock: {
      check_expr(*node.scalar);
      check_block_ref(node.b);
      if (!same_name_set(index_names(dst), index_names(node.b))) {
        throw CompileError(
            "scaled block assignment requires matching index variables",
            line);
      }
      if (node.op == AssignStmt::Op::kStarAssign) {
        throw CompileError("'*=' requires a scalar right-hand side", line);
      }
      return;
    }
    case AssignStmt::Rhs::kBlockBinary: {
      check_block_ref(node.a);
      check_block_ref(node.b);
      if (node.op == AssignStmt::Op::kMinusAssign ||
          node.op == AssignStmt::Op::kStarAssign) {
        throw CompileError(
            "block binary operations support '=' and '+=' only", line);
      }
      if (node.block_op == BinOp::kMul) {
        check_contraction(dst, node.a, node.b, line);
      } else {
        if (!same_name_set(index_names(dst), index_names(node.a)) ||
            !same_name_set(index_names(dst), index_names(node.b))) {
          throw CompileError(
              "block addition requires all operands to use the same index "
              "variables",
              line);
        }
      }
      return;
    }
  }
}

void Sema::check_statement(const Stmt& stmt, Context& context) {
  const int line = stmt.line;
  std::visit(
      [&](const auto& node) {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, PardoStmt>) {
          if (context.pardo_depth > 0) {
            throw CompileError("pardo loops may not be nested", line);
          }
          std::set<std::string> seen;
          for (const std::string& name : node.indices) {
            const IndexDecl& decl = index_decl(name, line);
            if (decl.type == IndexType::kSub) {
              throw CompileError(
                  "pardo over subindex '" + name + "'; use 'pardo " + name +
                      " in <super>' instead",
                  line);
            }
            if (!seen.insert(name).second) {
              throw CompileError("duplicate pardo index '" + name + "'",
                                 line);
            }
          }
          for (const WhereClause& where : node.wheres) {
            const IndexDecl& lhs = index_decl(where.lhs, where.line);
            if (lhs.type == IndexType::kSub) {
              throw CompileError("where clause over subindex", where.line);
            }
            if (seen.find(where.lhs) == seen.end()) {
              throw CompileError(
                  "where clause index '" + where.lhs +
                      "' is not a pardo index of this loop",
                  where.line);
            }
            if (!where.rhs_index.empty()) {
              index_decl(where.rhs_index, where.line);
            }
          }
          Context inner = context;
          inner.pardo_depth += 1;
          check_body(node.body, inner);
        } else if constexpr (std::is_same_v<T, DoStmt>) {
          const IndexDecl& decl = index_decl(node.index, line);
          if (!node.super.empty()) {
            if (decl.type != IndexType::kSub) {
              throw CompileError("'do " + node.index + " in " + node.super +
                                     "' requires a subindex",
                                 line);
            }
            if (decl.super != node.super) {
              throw CompileError("subindex '" + node.index +
                                     "' is a subindex of '" + decl.super +
                                     "', not of '" + node.super + "'",
                                 line);
            }
            if (node.parallel && context.pardo_depth > 0) {
              throw CompileError(
                  "'pardo " + node.index +
                      " in ...' may not be nested inside a pardo loop",
                  line);
            }
          } else {
            if (decl.type == IndexType::kSub) {
              throw CompileError("'do " + node.index +
                                     "' over a subindex requires the 'in' "
                                     "form",
                                 line);
            }
            if (node.parallel) {
              throw CompileError("bad pardo form", line);
            }
          }
          Context inner = context;
          inner.do_depth += 1;
          if (node.parallel) inner.pardo_depth += 1;
          check_body(node.body, inner);
        } else if constexpr (std::is_same_v<T, IfStmt>) {
          check_expr(*node.cond);
          check_body(node.then_body, context);
          check_body(node.else_body, context);
        } else if constexpr (std::is_same_v<T, CallStmt>) {
          // Existence validated by the parser.
        } else if constexpr (std::is_same_v<T, GetStmt>) {
          check_block_ref(node.ref);
          const ArrayDecl& array = array_decl(node.ref.array, line);
          if (array.kind != ArrayKind::kDistributed) {
            throw CompileError(
                array.kind == ArrayKind::kServed
                    ? "'get' targets distributed arrays; use 'request' for "
                      "served array '" + node.ref.array + "'"
                    : "'get' requires a distributed array",
                line);
          }
        } else if constexpr (std::is_same_v<T, PutStmt>) {
          check_block_ref(node.dst);
          check_block_ref(node.src);
          const ArrayDecl& array = array_decl(node.dst.array, line);
          if (array.kind != ArrayKind::kDistributed) {
            throw CompileError(
                array.kind == ArrayKind::kServed
                    ? "'put' targets distributed arrays; use 'prepare' for "
                      "served array '" + node.dst.array + "'"
                    : "'put' requires a distributed array",
                line);
          }
          if (!same_name_set(index_names(node.dst), index_names(node.src))) {
            throw CompileError("put requires matching index variables", line);
          }
        } else if constexpr (std::is_same_v<T, RequestStmt>) {
          check_block_ref(node.ref);
          if (array_decl(node.ref.array, line).kind != ArrayKind::kServed) {
            throw CompileError("'request' requires a served array", line);
          }
        } else if constexpr (std::is_same_v<T, PrepareStmt>) {
          check_block_ref(node.dst);
          check_block_ref(node.src);
          if (array_decl(node.dst.array, line).kind != ArrayKind::kServed) {
            throw CompileError("'prepare' requires a served array", line);
          }
          if (!same_name_set(index_names(node.dst), index_names(node.src))) {
            throw CompileError("prepare requires matching index variables",
                               line);
          }
        } else if constexpr (std::is_same_v<T, AllocateStmt> ||
                             std::is_same_v<T, DeallocateStmt>) {
          check_block_ref(node.ref, /*allow_wildcard=*/true);
          if (array_decl(node.ref.array, line).kind != ArrayKind::kLocal) {
            throw CompileError("allocate/deallocate require a local array",
                               line);
          }
        } else if constexpr (std::is_same_v<T, CreateStmt> ||
                             std::is_same_v<T, DeleteStmt>) {
          if (array_decl(node.array, line).kind != ArrayKind::kDistributed) {
            throw CompileError("create/delete require a distributed array",
                               line);
          }
        } else if constexpr (std::is_same_v<T, AssignStmt>) {
          check_assign(node, line);
        } else if constexpr (std::is_same_v<T, ExecuteStmt>) {
          for (const ExecArg& arg : node.args) {
            if (arg.kind == ExecArg::Kind::kBlock) {
              check_block_ref(arg.block);
            } else if (arg.kind == ExecArg::Kind::kScalar) {
              require_scalar(arg.name, arg.line);
            }
          }
        } else if constexpr (std::is_same_v<T, BarrierStmt>) {
          if (context.pardo_depth > 0) {
            throw CompileError("barriers may not appear inside a pardo loop",
                               line);
          }
        } else if constexpr (std::is_same_v<T, CollectiveStmt>) {
          require_scalar(node.dst, line);
          require_scalar(node.src, line);
          if (context.pardo_depth > 0) {
            throw CompileError(
                "collective may not appear inside a pardo loop", line);
          }
        } else if constexpr (std::is_same_v<T, PrintStmt>) {
          if (node.value) check_expr(*node.value);
        } else if constexpr (std::is_same_v<T, CheckpointStmt>) {
          if (array_decl(node.array, line).kind != ArrayKind::kDistributed) {
            throw CompileError(
                "checkpoint/restore require a distributed array", line);
          }
        } else if constexpr (std::is_same_v<T, ExitStmt>) {
          if (context.do_depth == 0) {
            throw CompileError("'exit' must be inside a do loop", line);
          }
        }
      },
      stmt.node);
}

void Sema::check_body(const Body& body, Context context) {
  for (const StmtPtr& stmt : body.stmts) {
    check_statement(*stmt, context);
  }
}

void check_sial(const ProgramAst& program) {
  Sema sema(program);
  sema.check();
}

}  // namespace sia::sial
